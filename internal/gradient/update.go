package gradient

import (
	"math"

	"repro/internal/flow"
	"repro/internal/transform"
)

// ApplyGamma performs the §5 routing update Γ (eqs. 14–17) for
// commodity j, writing the new routing variables into next (which may
// alias u's routing for in-place update only if callers do not need the
// old values; the engine always passes a clone). tagged uses commodity
// j's local node indexing, as returned by ComputeTags.
//
// At each node the fraction routed over every non-best unblocked link
// decreases by Δ = min(φ, η·a/t) where a is the link's marginal excess
// over the best link (eq. 15–16), and the total removed mass moves to
// the best link (eq. 17). When t_i(j) = 0 the step η·a/t is unbounded
// and the update shifts the full fraction — the limit Gallager's
// analysis prescribes (DESIGN.md §6).
func ApplyGamma(u *flow.Usage, j int, m *Marginals, tagged []bool, eta float64, next *flow.Routing) {
	sg := &u.R.X.Sub[j]
	for _, ln := range sg.Topo {
		if ln == sg.Sink {
			continue
		}
		updateNode(u, j, sg, m, tagged, eta, next, ln)
	}
}

func updateNode(u *flow.Usage, j int, sg *transform.Subgraph, m *Marginals, tagged []bool, eta float64, next *flow.Routing, ln int32) {
	phi := u.R.Phi[j]

	// Find the best (minimum-marginal) unblocked out-link; ties break
	// toward the lowest edge ID for determinism. A node k is blocked
	// (k ∈ B_i(j)) when φ_ik = 0 and k's broadcast was tagged.
	best := int32(-1)
	bestD := math.Inf(1)
	outs := sg.Out(ln)
	for _, le := range outs {
		if blocked(phi, sg, tagged, le) {
			continue
		}
		if d := m.LinkD[le]; d < bestD {
			bestD = d
			best = le
		}
	}
	if best < 0 {
		return // node carries no commodity-j traffic options
	}

	t := u.T[j][ln]
	moved := 0.0
	for _, le := range outs {
		if le == best {
			continue
		}
		if blocked(phi, sg, tagged, le) {
			next.Phi[j][le] = 0 // eq. 14
			continue
		}
		a := m.LinkD[le] - bestD // eq. 15
		var delta float64
		if t > 0 {
			delta = math.Min(phi[le], eta*a/t) // eq. 16
		} else {
			delta = phi[le] // t → 0 limit: empty every non-best link
		}
		next.Phi[j][le] = phi[le] - delta
		moved += delta
	}
	next.Phi[j][best] = phi[best] + moved // eq. 17
}

// blocked reports whether member edge le's head is in the tail's
// blocked set: zero routing fraction and a tagged broadcast.
func blocked(phi []float64, sg *transform.Subgraph, tagged []bool, le int32) bool {
	if tagged == nil {
		return false
	}
	return phi[le] == 0 && tagged[sg.Head[le]]
}
