package gradient

import (
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
)

// ApplyGamma performs the §5 routing update Γ (eqs. 14–17) for
// commodity j, writing the new routing variables into next (which may
// alias u's routing for in-place update only if callers do not need the
// old values; the engine always passes a clone).
//
// At each node the fraction routed over every non-best unblocked link
// decreases by Δ = min(φ, η·a/t) where a is the link's marginal excess
// over the best link (eq. 15–16), and the total removed mass moves to
// the best link (eq. 17). When t_i(j) = 0 the step η·a/t is unbounded
// and the update shifts the full fraction — the limit Gallager's
// analysis prescribes (DESIGN.md §6).
func ApplyGamma(u *flow.Usage, j int, m *Marginals, tagged []bool, eta float64, next *flow.Routing) {
	x := u.R.X
	sink := x.Commodities[j].Sink
	for _, n := range x.Topo[j] {
		if n == sink {
			continue
		}
		updateNode(u, j, m, tagged, eta, next, n)
	}
}

func updateNode(u *flow.Usage, j int, m *Marginals, tagged []bool, eta float64, next *flow.Routing, n graph.NodeID) {
	x := u.R.X
	phi := u.R.Phi[j]

	// Find the best (minimum-marginal) unblocked out-link; ties break
	// toward the lowest edge ID for determinism. A node k is blocked
	// (k ∈ B_i(j)) when φ_ik = 0 and k's broadcast was tagged.
	best := graph.EdgeID(graph.Invalid)
	bestD := math.Inf(1)
	outs := x.MemberOut(j, n)
	for _, e := range outs {
		if blocked(u, j, tagged, e) {
			continue
		}
		if d := m.LinkD[e]; d < bestD {
			bestD = d
			best = e
		}
	}
	if best == graph.Invalid {
		return // node carries no commodity-j traffic options
	}

	t := u.T[j][n]
	moved := 0.0
	for _, e := range outs {
		if e == best {
			continue
		}
		if blocked(u, j, tagged, e) {
			next.Phi[j][e] = 0 // eq. 14
			continue
		}
		a := m.LinkD[e] - bestD // eq. 15
		var delta float64
		if t > 0 {
			delta = math.Min(phi[e], eta*a/t) // eq. 16
		} else {
			delta = phi[e] // t → 0 limit: empty every non-best link
		}
		next.Phi[j][e] = phi[e] - delta
		moved += delta
	}
	next.Phi[j][best] = phi[best] + moved // eq. 17
}

// blocked reports whether edge e's head is in the tail's blocked set:
// zero routing fraction and a tagged broadcast.
func blocked(u *flow.Usage, j int, tagged []bool, e graph.EdgeID) bool {
	if tagged == nil {
		return false
	}
	return u.R.Phi[j][e] == 0 && tagged[u.R.X.G.Edge(e).To]
}
