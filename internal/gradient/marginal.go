// Package gradient implements the paper's §5 distributed algorithm for
// joint routing optimization and resource allocation, generalizing
// Gallager's minimum-delay routing (ref. [10]) to stream processing
// with shrinkage factors and per-node resource penalties.
//
// Each iteration performs the three protocol phases of §5 on a
// synchronous schedule:
//
//  1. flow forecast: solve the flow-balance equations under the current
//     routing set (internal/flow.Evaluate);
//  2. marginal-cost wave: compute ∂A/∂r_i(j) from the sinks upstream
//     (eq. 9) together with the per-link marginals of eq. 10/13 and
//     the loop-freedom tags of eq. 18;
//  3. routing update Γ: shift routing fraction from expensive links to
//     each node's best unblocked link (eqs. 14–17).
//
// The synchronous engine is deterministic and exactly equivalent to
// the message-passing execution in internal/dist (tests in that
// package assert trajectory equality); it also accounts for the
// messages and rounds the distributed protocol would need, supporting
// the paper's O(L)-vs-O(1) message-cost discussion in §6.
package gradient

import (
	"repro/internal/flow"
	"repro/internal/graph"
)

// Marginals holds the first-order information of one iteration for one
// commodity.
type Marginals struct {
	// Rho[n] is ∂A/∂r_n(j): the marginal cost of injecting one more
	// unit of commodity-j traffic at node n (eq. 9); zero at the sink.
	Rho []float64
	// LinkD[e] is the per-link marginal of eqs. (10) and (13):
	// ∂A_i/∂f_e·c_e(j) + β_e(j)·Rho[head(e)], defined on member edges.
	LinkD []float64
	// Rounds is the number of sequential message-exchange steps the
	// upstream wave needs: the depth of the member DAG below each node,
	// maximized — the L in the paper's O(L) analysis.
	Rounds int
	// Messages counts the rho broadcasts the wave sends (one per member
	// edge, tail <- head).
	Messages int
}

// ComputeMarginals runs the marginal-cost wave for commodity j on the
// evaluated usage u. Nodes are processed in reverse topological order
// of the member DAG, which is exactly the order in which the
// distributed protocol's "wait for all downstream values" rule fires.
// It allocates fresh buffers per call; iteration loops reuse a
// workspace through ComputeMarginalsInto.
func ComputeMarginals(u *flow.Usage, j int) *Marginals {
	x := u.R.X
	nn, ne := x.G.NumNodes(), x.G.NumEdges()
	m := &Marginals{
		Rho:   make([]float64, nn),
		LinkD: make([]float64, ne),
	}
	ComputeMarginalsInto(u, j, m, make([]int, nn))
	return m
}

// ComputeMarginalsInto runs the marginal-cost wave into the
// preallocated m (Rho sized NumNodes, LinkD sized NumEdges) using depth
// (sized NumNodes) as scratch for the per-node wave-round counters. All
// buffers are zeroed and refilled; the result is bit-identical to
// ComputeMarginals.
func ComputeMarginalsInto(u *flow.Usage, j int, m *Marginals, depth []int) {
	x := u.R.X
	clear(m.Rho)
	clear(m.LinkD)
	clear(depth)
	m.Rounds, m.Messages = 0, 0
	sink := x.Commodities[j].Sink
	phi := u.R.Phi[j]
	beta := x.Beta[j]
	for _, n := range x.RevTopo(j) {
		if n == sink {
			m.Rho[n] = 0 // convention ∂A/∂r_j(j) = 0
			continue
		}
		var (
			rho    float64
			rounds int
		)
		for _, e := range x.MemberOut(j, n) {
			head := x.G.Edge(e).To
			d := marginalCostPerUnit(u, j, n, e) + beta[e]*m.Rho[head]
			m.LinkD[e] = d
			rho += phi[e] * d
			m.Messages++ // head broadcasts rho to this tail
			if depth[head]+1 > rounds {
				rounds = depth[head] + 1
			}
		}
		m.Rho[n] = rho
		depth[n] = rounds
		if rounds > m.Rounds {
			m.Rounds = rounds
		}
	}
}

// marginalCostPerUnit is ∂A_i/∂f_e·c_e(j): the direct cost of pushing
// one more unit of commodity j over edge e at its tail i. From eq. 11,
// ∂A_i/∂f_e is the barrier derivative ε·D'_i(f_i) everywhere except on
// a difference link, where it is the utility-loss derivative
// U'_j(λ_j − f_e).
func marginalCostPerUnit(u *flow.Usage, j int, i graph.NodeID, e graph.EdgeID) float64 {
	x := u.R.X
	dAdf := x.PenaltyDeriv(i, u.FNode[i]) + x.LossDeriv(j, e, u.FEdge[j][e])
	return dAdf * x.Cost[j][e]
}
