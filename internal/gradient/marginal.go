// Package gradient implements the paper's §5 distributed algorithm for
// joint routing optimization and resource allocation, generalizing
// Gallager's minimum-delay routing (ref. [10]) to stream processing
// with shrinkage factors and per-node resource penalties.
//
// Each iteration performs the three protocol phases of §5 on a
// synchronous schedule:
//
//  1. flow forecast: solve the flow-balance equations under the current
//     routing set (internal/flow.Evaluate);
//  2. marginal-cost wave: compute ∂A/∂r_i(j) from the sinks upstream
//     (eq. 9) together with the per-link marginals of eq. 10/13 and
//     the loop-freedom tags of eq. 18;
//  3. routing update Γ: shift routing fraction from expensive links to
//     each node's best unblocked link (eqs. 14–17).
//
// All per-commodity state is held in the commodity's Subgraph local
// indexing (transform.Subgraph), so one commodity's wave costs O(its
// member edges) in both time and memory.
//
// The synchronous engine is deterministic and exactly equivalent to
// the message-passing execution in internal/dist (tests in that
// package assert trajectory equality); it also accounts for the
// messages and rounds the distributed protocol would need, supporting
// the paper's O(L)-vs-O(1) message-cost discussion in §6.
package gradient

import (
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/transform"
)

// Marginals holds the first-order information of one iteration for one
// commodity, indexed by the commodity's Subgraph local node/edge
// indexes.
type Marginals struct {
	// Rho[ln] is ∂A/∂r_n(j): the marginal cost of injecting one more
	// unit of commodity-j traffic at member node ln (eq. 9); zero at
	// the sink.
	Rho []float64
	// LinkD[le] is the per-link marginal of eqs. (10) and (13):
	// ∂A_i/∂f_e·c_e(j) + β_e(j)·Rho[head(e)], per member edge.
	LinkD []float64
	// Rounds is the number of sequential message-exchange steps the
	// upstream wave needs: the depth of the member DAG below each node,
	// maximized — the L in the paper's O(L) analysis.
	Rounds int
	// Messages counts the rho broadcasts the wave sends (one per member
	// edge, tail <- head).
	Messages int
}

// ComputeMarginals runs the marginal-cost wave for commodity j on the
// evaluated usage u. Nodes are processed in reverse topological order
// of the member DAG, which is exactly the order in which the
// distributed protocol's "wait for all downstream values" rule fires.
// It allocates fresh buffers per call; iteration loops reuse a
// workspace through ComputeMarginalsInto.
func ComputeMarginals(u *flow.Usage, j int) *Marginals {
	sg := &u.R.X.Sub[j]
	m := &Marginals{
		Rho:   make([]float64, sg.NumNodes()),
		LinkD: make([]float64, sg.NumEdges()),
	}
	ComputeMarginalsInto(u, j, m, make([]int, sg.NumNodes()))
	return m
}

// ComputeMarginalsInto runs the marginal-cost wave into the
// preallocated m, using depth as scratch for the per-node wave-round
// counters. m.Rho and depth need capacity for the commodity's member
// node count, m.LinkD for its member edge count (a workspace sized for
// the largest commodity serves all of them — the buffers are resliced
// to this commodity's sizes). All buffers are zeroed and refilled; the
// result is bit-identical to ComputeMarginals.
func ComputeMarginalsInto(u *flow.Usage, j int, m *Marginals, depth []int) {
	x := u.R.X
	sg := &x.Sub[j]
	nn, ne := sg.NumNodes(), sg.NumEdges()
	m.Rho = m.Rho[:nn]
	m.LinkD = m.LinkD[:ne]
	depth = depth[:nn]
	clear(m.Rho)
	clear(m.LinkD)
	clear(depth)
	m.Rounds, m.Messages = 0, 0
	phi := u.R.Phi[j]
	beta := sg.Beta
	for _, ln := range sg.RevTopo() {
		if ln == sg.Sink {
			m.Rho[ln] = 0 // convention ∂A/∂r_j(j) = 0
			continue
		}
		var (
			rho    float64
			rounds int
		)
		n := sg.Nodes[ln]
		for _, le := range sg.Out(ln) {
			head := sg.Head[le]
			d := marginalCostPerUnit(u, j, sg, n, le) + beta[le]*m.Rho[head]
			m.LinkD[le] = d
			rho += phi[le] * d
			m.Messages++ // head broadcasts rho to this tail
			if depth[head]+1 > rounds {
				rounds = depth[head] + 1
			}
		}
		m.Rho[ln] = rho
		depth[ln] = rounds
		if rounds > m.Rounds {
			m.Rounds = rounds
		}
	}
}

// RhoAt reads Rho by extended node ID (zero for non-member nodes).
// O(log member nodes); diagnostics and tests only — hot loops index the
// local arrays directly.
func (m *Marginals) RhoAt(sg *transform.Subgraph, n graph.NodeID) float64 {
	if ln := sg.LocalNode(n); ln >= 0 {
		return m.Rho[ln]
	}
	return 0
}

// LinkDAt reads LinkD by extended edge ID (zero for non-member edges).
func (m *Marginals) LinkDAt(sg *transform.Subgraph, e graph.EdgeID) float64 {
	if le := sg.LocalEdge(e); le >= 0 {
		return m.LinkD[le]
	}
	return 0
}

// marginalCostPerUnit is ∂A_i/∂f_e·c_e(j): the direct cost of pushing
// one more unit of commodity j over member edge le at its tail i (the
// extended node n). From eq. 11, ∂A_i/∂f_e is the barrier derivative
// ε·D'_i(f_i) everywhere except on a difference link, where it is the
// utility-loss derivative U'_j(λ_j − f_e).
func marginalCostPerUnit(u *flow.Usage, j int, sg *transform.Subgraph, n graph.NodeID, le int32) float64 {
	x := u.R.X
	var loss float64
	if le == sg.DiffLink {
		loss = x.LossDeriv(j, x.Commodities[j].DiffLink, u.FEdge[j][le])
	}
	dAdf := x.PenaltyDeriv(n, u.FNode[n]) + loss
	return dAdf * sg.Cost[le]
}
