package gradient

import (
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// singlePath builds dummy → src → bw → sink with the given capacities
// and offered rate, linear utility.
func singlePath(t *testing.T, srcCap, bw, lambda float64) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", srcCap)
	sink, _ := net.AddSink("sink")
	e, _ := net.AddLink(src, sink, bw)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, lambda, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// twoPath builds src -> {a,b} -> sink with asymmetric costs so the
// optimizer must prefer one path.
func twoPath(t *testing.T, lambda float64, util utility.Function) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 50)
	a, _ := net.AddServer("a", 12)
	b, _ := net.AddServer("b", 40)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 60)
	e2, _ := net.AddLink(src, b, 60)
	e3, _ := net.AddLink(a, sink, 60)
	e4, _ := net.AddLink(b, sink, 60)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, lambda, util)
	if err != nil {
		t.Fatal(err)
	}
	for e, params := range map[graph.EdgeID]stream.EdgeParams{
		e1: {Beta: 1, Cost: 1},
		e2: {Beta: 1, Cost: 1},
		e3: {Beta: 1, Cost: 1}, // path a: cheap but tight (cap 12)
		e4: {Beta: 1, Cost: 3}, // path b: pricier per unit
	} {
		if err := p.SetEdge(c, e, params); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMarginalMatchesFiniteDifference(t *testing.T) {
	// Eq. (10): ∂A/∂φ_ik(j) = t_i(j)·LinkD[e]. Verify by bumping φ on
	// every member edge and differencing the total cost.
	x := twoPath(t, 20, utility.Log{Weight: 10, Scale: 1})
	r := flow.NewInitial(x)
	// A non-trivial interior point: admit 60%, lean 70/30 toward a.
	c := &x.Commodities[0]
	sg := &x.Sub[0]
	r.SetAt(0, c.InputLink, 0.6)
	r.SetAt(0, c.DiffLink, 0.4)
	src := c.Source
	var srcOuts []graph.EdgeID
	for _, e := range x.G.Out(src) {
		if x.MemberEdge(0, e) {
			srcOuts = append(srcOuts, e)
		}
	}
	r.SetAt(0, srcOuts[0], 0.7)
	r.SetAt(0, srcOuts[1], 0.3)

	u := flow.Evaluate(r)
	m := ComputeMarginals(u, 0)

	const h = 1e-7
	base := u.TotalCost()
	for _, e := range x.MemberEdges(0) {
		tail := x.G.Edge(e).From
		ti := u.TAt(0, tail)
		if ti == 0 {
			continue // derivative information is 0·d; skip
		}
		bumped := r.Clone()
		bumped.SetAt(0, e, bumped.At(0, e)+h)
		got := (flow.Evaluate(bumped).TotalCost() - base) / h
		want := ti * m.LinkDAt(sg, e)
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Errorf("edge %d (%s→%s): dA/dphi = %g, analytic %g",
				e, x.Names[x.G.Edge(e).From], x.Names[x.G.Edge(e).To], got, want)
		}
	}
}

func TestRhoZeroAtSinkAndCompositionality(t *testing.T) {
	// Eq. (9): rho_i = Σ φ_e · LinkD[e]. Spot-check the recursion.
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	r := flow.NewInitial(x)
	c := &x.Commodities[0]
	sg := &x.Sub[0]
	r.SetAt(0, c.InputLink, 0.5)
	r.SetAt(0, c.DiffLink, 0.5)
	u := flow.Evaluate(r)
	m := ComputeMarginals(u, 0)

	if m.RhoAt(sg, c.Sink) != 0 {
		t.Fatalf("rho(sink) = %g, want 0", m.RhoAt(sg, c.Sink))
	}
	for n := 0; n < x.G.NumNodes(); n++ {
		node := graph.NodeID(n)
		if node == c.Sink {
			continue
		}
		sum, any := 0.0, false
		for _, e := range x.G.Out(node) {
			if x.MemberEdge(0, e) {
				sum += r.At(0, e) * m.LinkDAt(sg, e)
				any = true
			}
		}
		if any && math.Abs(m.RhoAt(sg, node)-sum) > 1e-12 {
			t.Fatalf("rho(%s) = %g, want %g", x.Names[n], m.RhoAt(sg, node), sum)
		}
	}
}

func TestDiffLinkMarginalIsMarginalUtility(t *testing.T) {
	// On the difference link, LinkD = Y'(λ−a) = U'(a) (eq. 11).
	lambda := 20.0
	util := utility.Log{Weight: 10, Scale: 1}
	x := twoPath(t, lambda, util)
	r := flow.NewInitial(x)
	c := &x.Commodities[0]
	r.SetAt(0, c.InputLink, 0.25)
	r.SetAt(0, c.DiffLink, 0.75)
	u := flow.Evaluate(r)
	m := ComputeMarginals(u, 0)
	admitted := 0.25 * lambda
	if got, want := m.LinkDAt(&x.Sub[0], c.DiffLink), util.Deriv(admitted); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LinkD(diff) = %g, want U'(a) = %g", got, want)
	}
}

func TestGammaPreservesSimplex(t *testing.T) {
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	e := New(x, Config{Eta: 0.1})
	for i := 0; i < 200; i++ {
		e.Step()
		if err := e.R.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestConvergesToFullAdmissionWhenUnconstrained(t *testing.T) {
	// Plenty of capacity: optimal admits everything (a* = λ = 5).
	x := singlePath(t, 100, 100, 5)
	e := New(x, Config{Eta: 0.5})
	trace, err := e.Run(3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := trace[len(trace)-1]
	if final.Utility < 4.9 {
		t.Fatalf("final utility = %g, want ≈ 5", final.Utility)
	}
}

func TestConvergesToBarrierOptimumWhenConstrained(t *testing.T) {
	// λ = 20 into capacity 10 (src) with huge bandwidth: the barrier
	// optimum solves 1 = ε[D'_src(a) + D'_bw(a)]; with B = 1000 the bw
	// term is negligible and a* ≈ 10 − sqrt(0.2) ≈ 9.5528.
	x := singlePath(t, 10, 1000, 20)
	// Anneal: a large step reaches the neighborhood fast, then a small
	// step settles the oscillation band (§5's speed/stability trade).
	coarse := New(x, Config{Eta: 0.5})
	if _, err := coarse.Run(3000, nil); err != nil {
		t.Fatal(err)
	}
	fine, err := NewFrom(x, coarse.Routing(), Config{Eta: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := fine.Run(3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := trace[len(trace)-1]
	want := 10 - math.Sqrt(0.2)
	if math.Abs(final.Admitted[0]-want) > 0.05 {
		t.Fatalf("admitted = %g, want ≈ %g", final.Admitted[0], want)
	}
	if !final.Feasible {
		t.Fatal("final point infeasible")
	}
}

func TestCostDecreasesMonotonically(t *testing.T) {
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	e := New(x, Config{Eta: 0.04})
	trace, err := e.Run(2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Cost > trace[i-1].Cost+1e-9 {
			t.Fatalf("cost increased at iteration %d: %g -> %g", i, trace[i-1].Cost, trace[i].Cost)
		}
	}
}

func TestSplitsMatchBarrierOptimum(t *testing.T) {
	// With full admission (capacity is ample: marginal barrier cost at
	// a=20 is far below U' = 1) the split minimizes
	// 1/(12−t_a) + 1/(40−3·(20−t_a)), whose stationary point is
	// (3t_a−20)² = 3(12−t_a)² ⇒ t_a ≈ 8.6188.
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	e := New(x, Config{Eta: 0.2})
	if _, err := e.Run(8000, nil); err != nil {
		t.Fatal(err)
	}
	u := e.Solution()
	aNode := graph.NodeID(1) // server "a"
	bNode := graph.NodeID(2) // server "b"
	if x.Names[aNode] != "a" || x.Names[bNode] != "b" {
		t.Fatal("node naming assumption broken")
	}
	admitted := u.AdmittedRate(0)
	if admitted < 19.5 {
		t.Fatalf("admitted = %g, want ≈ λ = 20", admitted)
	}
	wantA := (20 + 12*math.Sqrt(3)) / (3 + math.Sqrt(3))
	ta, tb := u.TAt(0, aNode), u.TAt(0, bNode)
	if math.Abs(ta-wantA) > 0.15 {
		t.Fatalf("t(a) = %g, want barrier optimum ≈ %g", ta, wantA)
	}
	if math.Abs(ta+tb-admitted) > 1e-6 {
		t.Fatalf("t(a)+t(b) = %g ≠ admitted %g", ta+tb, admitted)
	}
}

func TestStatsAccounting(t *testing.T) {
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	e := New(x, Config{})
	e.Step()
	s := e.Stats()
	if s.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", s.Iterations)
	}
	// Member edges for the single commodity: 4 physical edges × 2
	// halves + 2 dummy links = 10; messages = 2 waves × 10.
	if s.Messages != 20 {
		t.Fatalf("messages = %d, want 20", s.Messages)
	}
	// Longest member path: dummy→src→bw→mid→bw→sink = 5 edges; two
	// waves per iteration.
	if s.Rounds != 10 {
		t.Fatalf("rounds = %d, want 10", s.Rounds)
	}
}

func TestRunToTarget(t *testing.T) {
	x := singlePath(t, 100, 100, 5)
	e := New(x, Config{Eta: 0.5})
	_, hit, err := e.RunToTarget(5.0, 0.95, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if hit < 0 {
		t.Fatal("never reached 95% of optimum")
	}
	if hit > 4000 {
		t.Fatalf("took %d iterations, unexpectedly slow", hit)
	}
}

func TestLargeEtaDivergesOrOscillates(t *testing.T) {
	// §5: "As η increases ... the danger of no convergence increases."
	// With an absurd η the trajectory must either blow up (ErrDiverged)
	// or fail to settle; it must NOT converge to the optimum cost that
	// a small η reaches.
	x := twoPath(t, 20, utility.Linear{Slope: 1})

	small := New(x, Config{Eta: 0.1})
	traceS, err := small.Run(6000, nil)
	if err != nil {
		t.Fatal(err)
	}
	goodCost := traceS[len(traceS)-1].Cost

	big := New(x, Config{Eta: 1e4})
	traceB, err := big.Run(6000, nil)
	if err == nil {
		finalCost := traceB[len(traceB)-1].Cost
		if finalCost <= goodCost+0.05 {
			t.Fatalf("eta=1e4 converged to %g (small-eta %g); expected divergence or oscillation", finalCost, goodCost)
		}
	}
}

func TestBlockingAblationSameOptimumOnDAG(t *testing.T) {
	// Member subgraphs are DAGs, so blocking only affects the path, not
	// the fixed point.
	x := twoPath(t, 20, utility.Linear{Slope: 1})
	withB := New(x, Config{Eta: 0.1})
	without := New(x, Config{Eta: 0.1, DisableBlocking: true})
	tb, err := withB.Run(5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := without.Run(5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(tb[len(tb)-1].Utility - tn[len(tn)-1].Utility); diff > 0.02 {
		t.Fatalf("blocking changed the optimum by %g", diff)
	}
}

func TestWarmStartFasterThanCold(t *testing.T) {
	// E7 mechanism: after converging at λ=18, restarting at λ=20 from
	// the converged routing must reach 95% of the new optimum in fewer
	// iterations than a cold start.
	xA := twoPath(t, 18, utility.Linear{Slope: 1})
	warmup := New(xA, Config{Eta: 0.2})
	if _, err := warmup.Run(6000, nil); err != nil {
		t.Fatal(err)
	}

	xB := twoPath(t, 20, utility.Linear{Slope: 1})
	cold := New(xB, Config{Eta: 0.2})
	_, coldHit, err := cold.RunToTarget(18, 0.95, 20000)
	if err != nil {
		t.Fatal(err)
	}

	// Same topology, so routing vectors are index-compatible.
	warm, err := NewFrom(xB, warmup.Routing(), Config{Eta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, warmHit, err := warm.RunToTarget(18, 0.95, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if coldHit < 0 || warmHit < 0 {
		t.Fatalf("targets not reached: cold=%d warm=%d", coldHit, warmHit)
	}
	if warmHit >= coldHit {
		t.Fatalf("warm start (%d iters) not faster than cold (%d)", warmHit, coldHit)
	}
}

func TestUtilityApproachesLambdaNeverExceeds(t *testing.T) {
	x := singlePath(t, 1000, 1000, 5)
	e := New(x, Config{Eta: 1})
	trace, err := e.Run(4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range trace {
		if info.Admitted[0] > 5+1e-9 {
			t.Fatalf("admitted %g exceeds λ = 5", info.Admitted[0])
		}
	}
}

func TestBlockingScaleCorrectness(t *testing.T) {
	// Regression for the shrinkage-aware improper-link test (see
	// ComputeTags): on this deep instance the verbatim (unscaled)
	// comparison permanently tags the routes commodity S2 needs and the
	// iteration pins at ≈61% of the optimum; the scale-corrected test
	// must reach what the no-blocking ablation reaches.
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 40, Layers: 9, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withBlocking := New(x, Config{Eta: 0.04})
	noBlocking := New(x, Config{Eta: 0.04, DisableBlocking: true})
	var wb, nb StepInfo
	for i := 0; i < 30000; i++ {
		wb = withBlocking.Step()
		nb = noBlocking.Step()
	}
	if wb.Utility < 0.95*ref.Utility {
		t.Fatalf("blocking run reached %.3f of optimum; spurious-tag trap is back", wb.Utility/ref.Utility)
	}
	if math.Abs(wb.Utility-nb.Utility) > 0.05*(1+nb.Utility) {
		t.Fatalf("blocking (%g) and no-blocking (%g) fixed points diverge", wb.Utility, nb.Utility)
	}
}
