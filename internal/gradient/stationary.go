package gradient

import (
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
)

// StationarityReport quantifies how far a routing set is from
// satisfying Theorem 2's optimality conditions, as a convergence
// diagnostic: at an optimal routing every used link's marginal equals
// the node's minimum marginal (eq. 12), and every link — used or not —
// satisfies the sufficient condition d_e ≥ ρ_i (eq. 13).
type StationarityReport struct {
	// MaxUsedGap is the largest (d_e − min_d)/(1+min_d) over links with
	// φ_e > MinPhi at nodes with t_i > MinTraffic: the necessary
	// condition's residual. Zero at a stationary point.
	MaxUsedGap float64
	// MaxSufficientViolation is the largest (ρ_i − d_e)/(1+ρ_i) over
	// ALL member links at traffic-carrying nodes: positive values mean
	// eq. 13 fails somewhere, i.e. the point may not be globally
	// optimal even if stationary.
	MaxSufficientViolation float64
	// WorstNode locates MaxUsedGap.
	WorstNode graph.NodeID
	// WorstCommodity locates MaxUsedGap.
	WorstCommodity int
}

// Thresholds below which traffic and routing fractions are treated as
// zero by CheckStationarity.
const (
	MinTraffic = 1e-6
	MinPhi     = 1e-6
)

// CheckStationarity evaluates Theorem 2's conditions on the current
// flows. Engines can call it periodically to implement convergence
// detection that is grounded in the paper's optimality theory rather
// than in utility deltas.
func CheckStationarity(u *flow.Usage) StationarityReport {
	x := u.R.X
	rep := StationarityReport{WorstNode: graph.Invalid, WorstCommodity: -1}
	for j := range x.Commodities {
		m := ComputeMarginals(u, j)
		sg := &x.Sub[j]
		// Member nodes in ascending local index — the same ascending
		// global-ID order the dense full-graph scan visited, since
		// non-member nodes carried no traffic and were skipped.
		for ln := int32(0); ln < int32(sg.NumNodes()); ln++ {
			if ln == sg.Sink || u.T[j][ln] <= MinTraffic {
				continue
			}
			outs := sg.Out(ln)
			minD := math.Inf(1)
			for _, le := range outs {
				if m.LinkD[le] < minD {
					minD = m.LinkD[le]
				}
			}
			if math.IsInf(minD, 1) {
				continue
			}
			for _, le := range outs {
				if u.R.Phi[j][le] > MinPhi {
					gap := (m.LinkD[le] - minD) / (1 + minD)
					if gap > rep.MaxUsedGap {
						rep.MaxUsedGap = gap
						rep.WorstNode = sg.Nodes[ln]
						rep.WorstCommodity = j
					}
				}
				if viol := (m.Rho[ln] - m.LinkD[le]) / (1 + m.Rho[ln]); viol > rep.MaxSufficientViolation {
					rep.MaxSufficientViolation = viol
				}
			}
		}
	}
	return rep
}
