package gradient

import (
	"math"

	"repro/internal/flow"
	"repro/internal/graph"
)

// StationarityReport quantifies how far a routing set is from
// satisfying Theorem 2's optimality conditions, as a convergence
// diagnostic: at an optimal routing every used link's marginal equals
// the node's minimum marginal (eq. 12), and every link — used or not —
// satisfies the sufficient condition d_e ≥ ρ_i (eq. 13).
type StationarityReport struct {
	// MaxUsedGap is the largest (d_e − min_d)/(1+min_d) over links with
	// φ_e > MinPhi at nodes with t_i > MinTraffic: the necessary
	// condition's residual. Zero at a stationary point.
	MaxUsedGap float64
	// MaxSufficientViolation is the largest (ρ_i − d_e)/(1+ρ_i) over
	// ALL member links at traffic-carrying nodes: positive values mean
	// eq. 13 fails somewhere, i.e. the point may not be globally
	// optimal even if stationary.
	MaxSufficientViolation float64
	// WorstNode locates MaxUsedGap.
	WorstNode graph.NodeID
	// WorstCommodity locates MaxUsedGap.
	WorstCommodity int
}

// Thresholds below which traffic and routing fractions are treated as
// zero by CheckStationarity.
const (
	MinTraffic = 1e-6
	MinPhi     = 1e-6
)

// CheckStationarity evaluates Theorem 2's conditions on the current
// flows. Engines can call it periodically to implement convergence
// detection that is grounded in the paper's optimality theory rather
// than in utility deltas.
func CheckStationarity(u *flow.Usage) StationarityReport {
	x := u.R.X
	rep := StationarityReport{WorstNode: graph.Invalid, WorstCommodity: -1}
	for j := range x.Commodities {
		m := ComputeMarginals(u, j)
		sink := x.Commodities[j].Sink
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == sink || u.T[j][n] <= MinTraffic {
				continue
			}
			minD := math.Inf(1)
			for _, e := range x.MemberOut(j, node) {
				if m.LinkD[e] < minD {
					minD = m.LinkD[e]
				}
			}
			if math.IsInf(minD, 1) {
				continue
			}
			for _, e := range x.MemberOut(j, node) {
				if u.R.Phi[j][e] > MinPhi {
					gap := (m.LinkD[e] - minD) / (1 + minD)
					if gap > rep.MaxUsedGap {
						rep.MaxUsedGap = gap
						rep.WorstNode = node
						rep.WorstCommodity = j
					}
				}
				if viol := (m.Rho[n] - m.LinkD[e]) / (1 + m.Rho[n]); viol > rep.MaxSufficientViolation {
					rep.MaxSufficientViolation = viol
				}
			}
		}
	}
	return rep
}
