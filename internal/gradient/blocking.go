package gradient

import (
	"repro/internal/flow"
)

// ComputeTags runs the §5 loop-freedom tagging protocol for commodity
// j: node l attaches a tag to its rho broadcast when it has a
// downstream link (l,m) (φ_lm(j) > 0) that is *improper*
// (∂A/∂r_l ≤ ∂A/∂r_m) and will not be emptied this iteration
// (condition 18), or when any downstream neighbor's broadcast was
// already tagged. The update Γ then refuses to raise φ_ik(j) from zero
// toward any tagged node k (the blocked set B_i(j)).
//
// One deliberate deviation from the text (documented in DESIGN.md §6):
// the paper prints the improper-link test as ∂A/∂r_l ≤ ∂A/∂r_m,
// verbatim from Gallager's conservation setting. Marginal input costs
// are *per local unit*, so under shrinkage (β_lm < 1) the raw
// comparison fires at perfectly proper links — rho_l ≈ c + β·rho_m can
// sit below rho_m forever — and the resulting permanent tags fence
// whole subgraphs off from the update, pinning the iteration at badly
// suboptimal points (≈60% of optimal on deep instances; see
// TestBlockingScaleCorrectness). Comparing costs per *source* unit,
// g_l·rho_l ≤ g_m·rho_m ⇔ rho_l ≤ β_lm·rho_m, restores Gallager's
// meaning and reduces to his condition exactly when β = 1.
//
// In this system every commodity's member subgraph is a DAG, so loops
// cannot form even without blocking; the protocol is implemented
// faithfully anyway, and Config.DisableBlocking ablates it (bench
// BenchmarkBlockingAblation).
func ComputeTags(u *flow.Usage, j int, m *Marginals, eta float64) []bool {
	return ComputeTagsInto(u, j, m, eta, make([]bool, u.R.X.Sub[j].NumNodes()))
}

// ComputeTagsInto is the workspace form of ComputeTags: tagged (with
// capacity for the commodity's member node count, local indexing) is
// resliced, zeroed, refilled, and returned.
func ComputeTagsInto(u *flow.Usage, j int, m *Marginals, eta float64, tagged []bool) []bool {
	x := u.R.X
	sg := &x.Sub[j]
	tagged = tagged[:sg.NumNodes()]
	clear(tagged)
	phi := u.R.Phi[j]
	for _, l := range sg.RevTopo() {
		if l == sg.Sink {
			continue
		}
		t := u.T[j][l]
		for _, le := range sg.Out(l) {
			if phi[le] <= 0 {
				continue
			}
			head := sg.Head[le]
			if tagged[head] {
				tagged[l] = true
				break
			}
			// Improper link: routing positive fraction toward a node
			// whose marginal cost per source unit is no better than
			// ours (the β factor converts both sides to source units;
			// see the doc comment above).
			if m.Rho[l] > sg.Beta[le]*m.Rho[head] {
				continue
			}
			// Condition (18): the improper link survives this
			// iteration's update. With t = 0 the update empties every
			// non-best link outright, so nothing survives.
			if t == 0 {
				continue
			}
			if phi[le] >= eta/t*(m.LinkD[le]-m.Rho[l]) {
				tagged[l] = true
				break
			}
		}
	}
	return tagged
}
