package gradient

import (
	"math"

	"repro/internal/transform"
)

// ShadowPrices fills price[i] = ε·D'_i(F_i) for each node of the merged
// global usage vector — the same per-node shadow price the attribution
// ρ-wave reports for binding resources (Attribute's BindingNode.Price),
// rederived by a price-exchange coordinator at the merged operating
// point F instead of a single engine's local usage. Uncapacitated nodes
// price at zero. The computation deliberately bypasses
// transform.PenaltyDeriv: F is already the global total, so no External
// term may be added on top.
//
// price and merged must have equal length (at most x.SharedNodes when
// called on cross-shard state).
func ShadowPrices(x *transform.Extended, merged, price []float64) {
	if len(price) != len(merged) {
		panic("gradient: ShadowPrices length mismatch")
	}
	for i, f := range merged {
		c := x.Capacity[i]
		if math.IsInf(c, 1) {
			price[i] = 0
			continue
		}
		price[i] = x.Epsilon * x.Penalty.Deriv(f, c)
	}
}
