package gradient

import (
	"runtime"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/transform"
)

// AdaptiveConfig tunes the self-adjusting step-size controller.
//
// §5 leaves the choice of η open ("it is possible to choose a η much
// larger to expedite the convergence") and §6 shows the failure mode of
// guessing wrong: too-small η converges slowly, too-large η cycles (see
// experiment T2). AdaptiveEngine automates the choice with a standard
// backtracking rule on the iteration's own cost signal: shrink η
// whenever a step increases the cost A = Y + εD (and roll the step
// back), grow it gently after a run of clean descents. Every decision
// uses only quantities the §5 protocol already computes, so the rule
// is implementable distributedly by piggybacking one scalar (the cost
// sum) on the existing waves.
type AdaptiveConfig struct {
	// InitialEta seeds the search; default 0.04 (§6).
	InitialEta float64
	// MinEta / MaxEta clamp the search range; defaults 1e-5 and 1.0.
	MinEta, MaxEta float64
	// Shrink multiplies η after a cost increase (default 0.5); Grow
	// multiplies it after GrowAfter consecutive descents (default 1.05
	// after 20).
	Shrink, Grow float64
	GrowAfter    int
	// DisableBlocking mirrors Config.DisableBlocking.
	DisableBlocking bool
	// Workers mirrors Config.Workers: the per-commodity wave pool
	// bound, defaulting to GOMAXPROCS.
	Workers int
	// Recorder mirrors Config.Recorder; it additionally receives the
	// current η and a counter of rejected (backtracked) steps.
	Recorder *obs.Recorder
}

func (c *AdaptiveConfig) setDefaults() {
	if c.InitialEta <= 0 {
		c.InitialEta = 0.04
	}
	if c.MinEta <= 0 {
		c.MinEta = 1e-5
	}
	if c.MaxEta <= 0 {
		c.MaxEta = 1.0
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		c.Shrink = 0.5
	}
	if c.Grow <= 1 {
		c.Grow = 1.05
	}
	if c.GrowAfter <= 0 {
		c.GrowAfter = 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// AdaptiveEngine wraps the §5 iteration with backtracking step-size
// control.
type AdaptiveEngine struct {
	X   *transform.Extended
	cfg AdaptiveConfig

	eta      float64
	routing  *flow.Routing
	lastCost float64
	descents int
	iter     int

	// Iteration workspaces, allocated once (see Engine): the usage of
	// the current routing, the usage of the proposed step, the spare
	// routing the accept path swaps in, and the wave arena.
	u, uProposed *flow.Usage
	spare        *flow.Routing
	arena        *arena

	// Backtracks counts rejected steps (η halvings).
	Backtracks int
}

// NewAdaptive prepares an adaptive engine from the paper-faithful
// initial routing.
func NewAdaptive(x *transform.Extended, cfg AdaptiveConfig) *AdaptiveEngine {
	cfg.setDefaults()
	r := flow.NewInitial(x)
	e := &AdaptiveEngine{
		X:         x,
		cfg:       cfg,
		eta:       cfg.InitialEta,
		routing:   r,
		u:         flow.NewUsage(x),
		uProposed: flow.NewUsage(x),
		spare:     flow.NewZero(x),
		arena:     newArena(x, cfg.Workers),
	}
	flow.EvaluateInto(e.u, r)
	e.lastCost = e.u.TotalCost()
	return e
}

// Eta reports the current step scale.
func (e *AdaptiveEngine) Eta() float64 { return e.eta }

// Routing exposes the current routing variables (not a copy). Like
// Engine, the adaptive engine double-buffers, so the returned set is
// only valid until the next Step.
func (e *AdaptiveEngine) Routing() *flow.Routing { return e.routing }

// Solution evaluates the current routing set.
func (e *AdaptiveEngine) Solution() *flow.Usage { return flow.Evaluate(e.routing) }

// Step proposes one Γ update at the current η; if the step raises the
// cost it is rolled back and η halves, otherwise it is kept (and η
// grows after a clean run). The returned StepInfo measures the state
// *after* the accept/reject decision.
func (e *AdaptiveEngine) Step() StepInfo {
	rec := e.cfg.Recorder
	tf := rec.StartPhase(obs.PhaseForecast)
	flow.EvaluateInto(e.u, e.routing)
	tf.Done()
	u := e.u

	next := e.spare
	e.arena.runWave(u, e.eta, !e.cfg.DisableBlocking, false, rec, next)

	flow.EvaluateInto(e.uProposed, next)
	cost := e.uProposed.TotalCost()
	if cost <= e.lastCost+1e-12 {
		// Accept.
		e.spare, e.routing = e.routing, next
		e.lastCost = cost
		e.descents++
		if e.descents >= e.cfg.GrowAfter {
			e.descents = 0
			if grown := e.eta * e.cfg.Grow; grown <= e.cfg.MaxEta {
				e.eta = grown
			}
		}
		u = e.uProposed
	} else {
		// Reject: keep the old routing, halve the step.
		e.Backtracks++
		rec.Backtrack()
		e.descents = 0
		if shrunk := e.eta * e.cfg.Shrink; shrunk >= e.cfg.MinEta {
			e.eta = shrunk
		}
	}

	info := StepInfo{
		Iteration: e.iter,
		Utility:   u.Utility(),
		Cost:      u.TotalCost(),
	}
	info.Admitted = make([]float64, e.X.NumCommodities())
	for j := range info.Admitted {
		info.Admitted[j] = u.AdmittedRate(j)
	}
	info.Feasible, _ = u.Feasible()
	e.iter++
	rec.SetEta(e.eta)
	rec.Iteration("gradient-adaptive", info.Iteration, info.Utility, info.Cost, info.Admitted, info.Feasible)
	return info
}

// Run executes n iterations and returns the final StepInfo.
func (e *AdaptiveEngine) Run(n int) StepInfo {
	var last StepInfo
	for i := 0; i < n; i++ {
		last = e.Step()
	}
	return last
}
