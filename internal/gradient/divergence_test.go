package gradient

import (
	"errors"
	"math"
	"testing"
)

// TestDivergenceDetectorNaN: NaN anywhere is immediately fatal — it can
// never recover, unlike a barrier overshoot.
func TestDivergenceDetectorNaN(t *testing.T) {
	cases := []StepInfo{
		{Iteration: 7, Cost: math.NaN(), Utility: 1},
		{Iteration: 7, Cost: 1, Utility: math.NaN()},
		{Iteration: 7, Cost: math.NaN(), Utility: math.NaN()},
	}
	for _, info := range cases {
		var det DivergenceDetector
		err := det.Observe(info)
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("Observe(%+v) = %v, want ErrDiverged", info, err)
		}
	}
}

// TestDivergenceDetectorSustainedInf: +Inf cost is tolerated as a
// transient overshoot until it persists for nonFiniteLimit iterations.
func TestDivergenceDetectorSustainedInf(t *testing.T) {
	var det DivergenceDetector
	inf := StepInfo{Cost: math.Inf(1), Utility: 1}
	for i := 0; i < nonFiniteLimit-1; i++ {
		inf.Iteration = i
		if err := det.Observe(inf); err != nil {
			t.Fatalf("diverged after only %d non-finite iterations: %v", i+1, err)
		}
	}
	inf.Iteration = nonFiniteLimit - 1
	if err := det.Observe(inf); !errors.Is(err, ErrDiverged) {
		t.Fatalf("Observe #%d = %v, want ErrDiverged", nonFiniteLimit, err)
	}
}

// TestDivergenceDetectorRecovery: a finite cost resets the counter, so
// repeated overshoot-recover cycles never trip the detector.
func TestDivergenceDetectorRecovery(t *testing.T) {
	var det DivergenceDetector
	inf := StepInfo{Cost: math.Inf(1), Utility: 1}
	fin := StepInfo{Cost: 3.5, Utility: 1}
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < nonFiniteLimit-1; i++ {
			if err := det.Observe(inf); err != nil {
				t.Fatalf("cycle %d: diverged at non-finite run %d: %v", cycle, i+1, err)
			}
		}
		if err := det.Observe(fin); err != nil {
			t.Fatalf("cycle %d: finite observation errored: %v", cycle, err)
		}
	}
	// After a reset the full budget is available again.
	for i := 0; i < nonFiniteLimit-1; i++ {
		if err := det.Observe(inf); err != nil {
			t.Fatalf("post-reset run %d: %v", i+1, err)
		}
	}
	if err := det.Observe(inf); !errors.Is(err, ErrDiverged) {
		t.Fatalf("post-reset Observe #%d = %v, want ErrDiverged", nonFiniteLimit, err)
	}
}
