package gradient

import (
	"errors"
	"testing"

	"repro/internal/flow"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// iterationsToTarget converges eng until utility reaches the fraction
// of the reference optimum, returning the iteration count (or maxIters
// if never reached).
func iterationsToTarget(t *testing.T, eng *Engine, target, fraction float64, maxIters int) int {
	t.Helper()
	_, hit, err := eng.RunToTarget(target, fraction, maxIters)
	if err != nil {
		t.Fatal(err)
	}
	if hit < 0 {
		return maxIters
	}
	return hit
}

// TestWarmStartBeatsColdUnderRateUpdates is the admission server's core
// performance assumption: after several offered rates λ_j move, a
// re-solve warm-started from the previously converged routing reaches
// the new optimum in fewer iterations than a cold start. Table covers
// rate increases, decreases, and mixed perturbations across multiple
// commodities.
func TestWarmStartBeatsColdUnderRateUpdates(t *testing.T) {
	cases := []struct {
		name    string
		seed    int64
		scale   map[int]float64 // commodity index -> λ multiplier
		nodes   int
		commods int
	}{
		{name: "two rates up", seed: 11, scale: map[int]float64{0: 1.3, 1: 1.5}, nodes: 20, commods: 3},
		{name: "two rates down", seed: 11, scale: map[int]float64{0: 0.6, 2: 0.7}, nodes: 20, commods: 3},
		{name: "mixed shift", seed: 23, scale: map[int]float64{0: 0.5, 1: 1.4, 2: 0.8}, nodes: 24, commods: 3},
		{name: "single burst", seed: 37, scale: map[int]float64{1: 2.0}, nodes: 16, commods: 2},
	}
	const (
		preIters = 1500
		budget   = 4000
		fraction = 0.90
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen := func() *stream.Problem {
				p, err := randnet.Generate(randnet.Config{
					Seed: tc.seed, Nodes: tc.nodes, Commodities: tc.commods,
					CapMin: 20, CapMax: 60, CostMin: 1, CostMax: 3,
					LambdaMin: 10, LambdaMax: 30,
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			}

			// Converge on the original rates.
			x0, err := transform.Build(gen(), transform.Options{Epsilon: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			pre := New(x0, Config{Eta: 0.04})
			if _, err := pre.Run(preIters, nil); err != nil {
				t.Fatal(err)
			}

			// Perturb several offered rates; same topology.
			perturbed := gen()
			for j, mult := range tc.scale {
				perturbed.Commodities[j].MaxRate *= mult
			}
			x1, err := transform.Build(perturbed, transform.Options{Epsilon: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refopt.Solve(x1, refopt.Options{})
			if err != nil {
				t.Fatal(err)
			}

			warmEng, err := NewFrom(x1, pre.Routing(), Config{Eta: 0.04})
			if err != nil {
				t.Fatalf("warm start rebind failed on unchanged topology: %v", err)
			}
			warm := iterationsToTarget(t, warmEng, ref.Utility, fraction, budget)
			cold := iterationsToTarget(t, New(x1, Config{Eta: 0.04}), ref.Utility, fraction, budget)

			if warm >= cold {
				t.Fatalf("warm start did not help: warm %d iterations, cold %d (target %.0f%% of %.4f)",
					warm, cold, 100*fraction, ref.Utility)
			}
			t.Logf("warm %d vs cold %d iterations to %.0f%% of optimum", warm, cold, 100*fraction)
		})
	}
}

// TestNewFromTopologyChangeError checks the fallback ergonomics the
// server depends on: adding a commodity changes the extended topology,
// and the rebind error both matches flow.ErrTopologyChanged and names
// the dimension that moved.
func TestNewFromTopologyChangeError(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 12, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	x0, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(x0, Config{})
	if _, err := eng.Run(10, nil); err != nil {
		t.Fatal(err)
	}

	// Same network, one more commodity: extended shape changes.
	p2 := p.Clone()
	src := p2.Commodities[0].Source
	sink, err := p2.Net.AddSink("sink:extra")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Net.AddLink(src, sink, 10); err != nil {
		t.Fatal(err)
	}
	c, err := p2.AddCommodity("extra", src, sink, 5, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := p2.Net.G.EdgeBetween(src, sink)
	if err := p2.SetEdge(c, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	x1, err := transform.Build(p2, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}

	_, err = NewFrom(x1, eng.Routing(), Config{})
	if err == nil {
		t.Fatal("NewFrom succeeded across a topology change")
	}
	if !errors.Is(err, flow.ErrTopologyChanged) {
		t.Fatalf("error does not match flow.ErrTopologyChanged: %v", err)
	}
	t.Logf("topology-change error: %v", err)
}
