package gradient

import (
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/utility"
)

// solveToConvergence runs the engine until near-stationary.
func solveToConvergence(t *testing.T, eng *Engine, iters int) *flow.Usage {
	t.Helper()
	if _, err := eng.Run(iters, func(info StepInfo) bool {
		return CheckStationarity(flow.Evaluate(eng.Routing())).MaxUsedGap < 1e-4
	}); err != nil {
		t.Fatal(err)
	}
	return eng.Solution()
}

// TestAttributeCapacityConstrained: a single path whose server can
// carry only half the offered rate. The attribution must blame that
// server (binding, positive shadow price) and show the marginal
// utility priced against the path cost (gap ≈ 0 at the interior
// optimum where admission is cut by capacity).
func TestAttributeCapacityConstrained(t *testing.T) {
	x := singlePath(t, 10, 40, 20) // server cap 10, λ = 20
	eng := New(x, Config{Eta: 0.04})
	u := solveToConvergence(t, eng, 8000)

	at := Attribute(u, 0)
	if at.Offered != 20 {
		t.Fatalf("offered = %g, want 20", at.Offered)
	}
	if at.Admitted >= at.Offered-1 {
		t.Fatalf("instance not capacity-limited: admitted %g of %g", at.Admitted, at.Offered)
	}
	if len(at.Binding) == 0 {
		t.Fatalf("capacity-constrained commodity has no binding nodes: %+v", at)
	}
	top := at.Binding[0]
	if top.Price <= 0 {
		t.Fatalf("binding node has non-positive shadow price: %+v", top)
	}
	if name := u.R.X.Names[top.Node]; name != "src" {
		t.Fatalf("bottleneck should be the tight server src, got %q (util %.3f)", name, top.Utilization)
	}
	if top.Utilization <= 0.5 || top.Utilization > 1.01 {
		t.Fatalf("bottleneck utilization %.3f implausible for a binding server", top.Utilization)
	}
	// At a converged interior point the admit-vs-reject marginals agree:
	// U'(a) ≈ path cost.
	if rel := math.Abs(at.Gap) / math.Max(1, at.MarginalUtility); rel > 0.1 {
		t.Fatalf("marginal-utility gap not closed at convergence: U'=%g pathCost=%g gap=%g",
			at.MarginalUtility, at.PathCost, at.Gap)
	}
}

// TestAttributeUnconstrained: generous capacities, full admission. The
// gap must be positive (utility beats cost, admit everything) and no
// resource reported binding.
func TestAttributeUnconstrained(t *testing.T) {
	x := singlePath(t, 200, 400, 10) // huge headroom
	eng := New(x, Config{Eta: 0.04})
	u := solveToConvergence(t, eng, 6000)

	at := Attribute(u, 0)
	if at.Admitted < at.Offered-0.05 {
		t.Fatalf("uncongested instance should admit ~everything: %g of %g", at.Admitted, at.Offered)
	}
	if at.Gap <= 0 {
		t.Fatalf("fully-admitted commodity must have positive gap, got %g", at.Gap)
	}
	if len(at.Binding) != 0 {
		t.Fatalf("no resource should be binding with 20x headroom: %+v", at.Binding)
	}
}

// TestAttributeAllPicksTheTightPath: in the twoPath instance the cheap
// path runs through server a (cap 12); pushing λ = 40 saturates it.
// The attribution's binding list must include a.
func TestAttributeAllPicksTheTightPath(t *testing.T) {
	x := twoPath(t, 40, utility.Log{Weight: 30, Scale: 1})
	eng := New(x, Config{Eta: 0.04})
	u := solveToConvergence(t, eng, 8000)

	all := AttributeAll(u)
	if len(all) != 1 {
		t.Fatalf("AttributeAll returned %d entries, want 1", len(all))
	}
	found := false
	for _, bn := range all[0].Binding {
		if u.R.X.Names[bn.Node] == "a" {
			found = true
			if bn.Price <= 0 {
				t.Fatalf("tight server a has zero price: %+v", bn)
			}
		}
	}
	if !found {
		t.Fatalf("tight server a missing from binding set: %+v", all[0].Binding)
	}
}
