package gradient

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Config tunes the algorithm.
type Config struct {
	// Eta is the scale factor η of Γ (eq. 16). §6 uses 0.04 for the
	// headline experiment; larger values converge faster but may
	// oscillate. Zero or negative means 0.04.
	Eta float64
	// DisableBlocking turns the loop-freedom tagging protocol off.
	// Safe here because member subgraphs are DAGs; exists for the
	// ablation benches.
	DisableBlocking bool
	// Workers bounds the worker pool that runs the per-commodity §5
	// waves concurrently (the phases are independent across commodities,
	// mirroring the paper's distributed execution). Zero or negative
	// means GOMAXPROCS. Any value produces the same trajectory bit for
	// bit; Workers: 1 runs the waves inline.
	Workers int
	// Recorder, when non-nil, receives per-iteration events, metrics,
	// and per-phase wall-clock timings. Nil (the default) costs nothing
	// on the hot path.
	Recorder *obs.Recorder
}

func (c *Config) setDefaults() {
	if c.Eta <= 0 {
		c.Eta = 0.04
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Stats accumulates the distributed-protocol accounting across
// iterations: the paper's §6 comparison of per-iteration message
// exchanges (gradient needs O(L) sequential rounds per iteration,
// back-pressure O(1)).
type Stats struct {
	Iterations int
	// Messages counts protocol messages: one rho broadcast per member
	// edge in the marginal-cost wave plus one forecast message per
	// member edge in the flow-forecast wave, per commodity.
	Messages int
	// Rounds counts sequential message-exchange steps: per iteration
	// the deepest commodity DAG bounds the wave latency.
	Rounds int
}

// StepInfo reports the state measured at the start of an iteration
// (before the routing update), so a trace of StepInfo values is the
// utility-versus-iteration curve of Figure 4.
type StepInfo struct {
	Iteration int
	Utility   float64   // Σ_j U_j(a_j)
	Cost      float64   // A = Y + εD
	Admitted  []float64 // a_j per commodity
	Feasible  bool      // f_i ≤ C_i at every node
}

// Engine runs the gradient-based algorithm synchronously.
type Engine struct {
	X   *transform.Extended
	R   *flow.Routing
	cfg Config

	// Iteration workspaces, allocated once: the evaluated usage, the
	// spare routing Step swaps with R (double-buffering in place of the
	// old per-step Clone), and the per-commodity wave arena.
	u     *flow.Usage
	spare *flow.Routing
	arena *arena

	stats Stats
	iter  int
}

// New prepares an engine from the paper-faithful initial routing
// (everything rejected; see flow.NewInitial).
func New(x *transform.Extended, cfg Config) *Engine {
	cfg.setDefaults()
	cfg.Recorder.SetEta(cfg.Eta)
	cfg.Recorder.SetWorkers(cfg.Workers)
	e := &Engine{X: x, R: flow.NewInitial(x), cfg: cfg}
	e.initWorkspace()
	return e
}

func (e *Engine) initWorkspace() {
	e.u = flow.NewUsage(e.X)
	e.spare = flow.NewZero(e.X)
	e.arena = newArena(e.X, e.cfg.Workers)
}

// NewFrom starts from an explicit routing set (used for warm starts in
// the dynamic-tracking experiment E7 and by the admission server). The
// routing is rebound to x, so a routing converged under old parameters
// (offered rates, capacities) is evaluated against the new ones; x must
// share the topology of the routing's original problem or NewFrom
// returns the rebind error. Callers that fall back to a cold start
// check errors.Is(err, flow.ErrTopologyChanged): true means the
// extended problem changed shape (commodities added/removed, network
// elements changed) and a cold start is the expected recovery; false
// means a real bug worth surfacing.
func NewFrom(x *transform.Extended, r *flow.Routing, cfg Config) (*Engine, error) {
	cfg.setDefaults()
	bound, err := r.Rebind(x)
	if err != nil {
		return nil, fmt.Errorf("gradient: warm start: %w", err)
	}
	cfg.Recorder.SetEta(cfg.Eta)
	cfg.Recorder.SetWorkers(cfg.Workers)
	e := &Engine{X: x, R: bound, cfg: cfg}
	e.initWorkspace()
	return e, nil
}

// Stats returns protocol accounting accumulated so far.
func (e *Engine) Stats() Stats { return e.stats }

// Routing exposes the current routing variables (not a copy). The
// engine double-buffers its routing, so the returned set is only valid
// until the next Step; callers that need a durable snapshot Clone it.
func (e *Engine) Routing() *flow.Routing { return e.R }

// Step executes one full iteration — forecast, marginal-cost wave,
// tagging, routing update — and returns the pre-update measurements.
// All iteration state lives in workspaces allocated at construction, so
// the steady-state step performs no heap allocation beyond the returned
// Admitted slice.
func (e *Engine) Step() StepInfo {
	rec := e.cfg.Recorder
	tf := rec.StartPhase(obs.PhaseForecast)
	flow.EvaluateInto(e.u, e.R)
	tf.Done()
	u := e.u
	info := e.measure(u)

	next := e.spare
	msgs, maxRounds, iterTagged := e.arena.runWave(u, e.cfg.Eta, !e.cfg.DisableBlocking, rec.Enabled(), rec, next)
	e.spare, e.R = e.R, next
	// Forecast wave mirrors the marginal wave downstream: same message
	// count, same depth.
	iterMessages := 2 * msgs
	e.stats.Messages += iterMessages
	e.stats.Rounds += 2 * maxRounds
	e.stats.Iterations++
	e.iter++
	rec.Iteration("gradient", info.Iteration, info.Utility, info.Cost, info.Admitted, info.Feasible)
	rec.Protocol("gradient", info.Iteration, iterMessages, 2*maxRounds)
	rec.Blocking("gradient", info.Iteration, iterTagged)
	return info
}

func (e *Engine) measure(u *flow.Usage) StepInfo {
	admitted := make([]float64, e.X.NumCommodities())
	for j := range admitted {
		admitted[j] = u.AdmittedRate(j)
	}
	feasible, _ := u.Feasible()
	return StepInfo{
		Iteration: e.iter,
		Utility:   u.Utility(),
		Cost:      u.TotalCost(),
		Admitted:  admitted,
		Feasible:  feasible,
	}
}

// ErrDiverged is returned by Run when the iteration has genuinely
// diverged — η too large for the instance (§5's "danger of no
// convergence").
var ErrDiverged = errors.New("gradient: iteration diverged; reduce eta")

// DivergenceDetector distinguishes real divergence from the transient
// capacity overshoots the barrier recovers from. A single iteration
// with f_i ≥ C_i makes the cost +Inf, but the clamped barrier
// derivative (DESIGN.md §6) immediately pushes the flow back out;
// only a *sustained* non-finite cost, or NaN anywhere, is divergence.
type DivergenceDetector struct {
	nonFinite int
}

// nonFiniteLimit is how many consecutive +Inf-cost iterations count as
// divergence rather than a recoverable overshoot.
const nonFiniteLimit = 100

// Observe inspects one StepInfo and reports ErrDiverged when the
// trajectory is beyond recovery.
func (d *DivergenceDetector) Observe(info StepInfo) error {
	if math.IsNaN(info.Cost) || math.IsNaN(info.Utility) {
		return fmt.Errorf("%w: NaN at iteration %d", ErrDiverged, info.Iteration)
	}
	if math.IsInf(info.Cost, 0) {
		d.nonFinite++
		if d.nonFinite >= nonFiniteLimit {
			return fmt.Errorf("%w: cost non-finite for %d iterations (at %d)",
				ErrDiverged, d.nonFinite, info.Iteration)
		}
		return nil
	}
	d.nonFinite = 0
	return nil
}

// Run executes up to maxIters iterations, appending one StepInfo per
// iteration to the returned trace. It stops early when stop (if
// non-nil) returns true for the latest StepInfo.
func (e *Engine) Run(maxIters int, stop func(StepInfo) bool) ([]StepInfo, error) {
	trace := make([]StepInfo, 0, maxIters)
	var det DivergenceDetector
	for i := 0; i < maxIters; i++ {
		info := e.Step()
		trace = append(trace, info)
		if err := det.Observe(info); err != nil {
			e.cfg.Recorder.Divergence("gradient", info.Iteration, err.Error())
			return trace, err
		}
		if stop != nil && stop(info) {
			break
		}
	}
	return trace, nil
}

// RunToTarget iterates until the measured utility reaches the given
// fraction of target (e.g. 0.95 × the LP optimum, the paper's
// convergence criterion in §6), or maxIters. It returns the trace and
// the first iteration index reaching the target (-1 if never).
func (e *Engine) RunToTarget(target, fraction float64, maxIters int) ([]StepInfo, int, error) {
	hit := -1
	trace, err := e.Run(maxIters, func(info StepInfo) bool {
		if hit < 0 && info.Utility >= fraction*target {
			hit = info.Iteration
		}
		return hit >= 0
	})
	return trace, hit, err
}

// Solution evaluates the current routing set.
func (e *Engine) Solution() *flow.Usage { return flow.Evaluate(e.R) }
