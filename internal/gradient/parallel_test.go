package gradient

import (
	"testing"

	"repro/internal/randnet"
	"repro/internal/transform"
)

// buildInstance generates a randnet problem and its extended form.
func buildInstance(t *testing.T, cfg randnet.Config) *transform.Extended {
	t.Helper()
	p, err := randnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func assertTraceBitwiseEqual(t *testing.T, got, want []StepInfo, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: trace length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Iteration != w.Iteration || g.Utility != w.Utility ||
			g.Cost != w.Cost || g.Feasible != w.Feasible {
			t.Fatalf("%s: iteration %d differs: %+v vs %+v", label, i, g, w)
		}
		if len(g.Admitted) != len(w.Admitted) {
			t.Fatalf("%s: iteration %d: admitted length %d vs %d", label, i, len(g.Admitted), len(w.Admitted))
		}
		for j := range w.Admitted {
			if g.Admitted[j] != w.Admitted[j] {
				t.Fatalf("%s: iteration %d commodity %d: admitted %v vs %v",
					label, i, j, g.Admitted[j], w.Admitted[j])
			}
		}
	}
}

// TestParallelTrajectoryBitwiseIdentical is the determinism contract of
// the worker pool: any Workers value must reproduce the sequential
// trajectory bit for bit — utility, cost, admitted rates, and the
// protocol accounting (messages, rounds) all exact.
func TestParallelTrajectoryBitwiseIdentical(t *testing.T) {
	instances := []struct {
		name  string
		cfg   randnet.Config
		steps int
	}{
		// The §6 paper instance (E4 scale).
		{"paper", randnet.Config{Seed: 2, Nodes: 40, Commodities: 3}, 300},
		// A many-commodity instance (E6 scale) where the pool has real
		// work to split.
		{"many-commodity", randnet.Config{Seed: 5, Nodes: 32, Layers: 4, Commodities: 8}, 200},
		// The seed sweep the sharded parity tests use — same instances,
		// so the worker-pool and shard determinism contracts are checked
		// on identical ground.
		{"sweep-seed2", randnet.Config{Seed: 2, Nodes: 24, Commodities: 4}, 150},
		{"sweep-seed3", randnet.Config{Seed: 3, Nodes: 24, Commodities: 4}, 150},
		{"sweep-seed5", randnet.Config{Seed: 5, Nodes: 24, Commodities: 4}, 150},
	}
	for _, tc := range instances {
		t.Run(tc.name, func(t *testing.T) {
			x := buildInstance(t, tc.cfg)
			seq := New(x, Config{Workers: 1})
			seqTrace, err := seq.Run(tc.steps, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par := New(x, Config{Workers: workers})
				parTrace, err := par.Run(tc.steps, nil)
				if err != nil {
					t.Fatal(err)
				}
				assertTraceBitwiseEqual(t, parTrace, seqTrace, tc.name)
				if par.Stats() != seq.Stats() {
					t.Fatalf("workers=%d: stats %+v vs sequential %+v", workers, par.Stats(), seq.Stats())
				}
			}
		})
	}
}

// TestParallelTrajectoryIdenticalAcrossSeeds sweeps generator seeds so
// the determinism guarantee is not an artifact of one topology.
func TestParallelTrajectoryIdenticalAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		x := buildInstance(t, randnet.Config{Seed: seed, Nodes: 24, Commodities: 4})
		seq := New(x, Config{Workers: 1})
		par := New(x, Config{Workers: 4})
		seqTrace, err := seq.Run(120, nil)
		if err != nil {
			t.Fatal(err)
		}
		parTrace, err := par.Run(120, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertTraceBitwiseEqual(t, parTrace, seqTrace, "seed sweep")
		if par.Stats() != seq.Stats() {
			t.Fatalf("seed %d: stats %+v vs %+v", seed, par.Stats(), seq.Stats())
		}
	}
}

// TestAdaptiveParallelTrajectoryIdentical covers the backtracking
// engine, whose accept/reject decisions would amplify any trajectory
// divergence.
func TestAdaptiveParallelTrajectoryIdentical(t *testing.T) {
	x := buildInstance(t, randnet.Config{Seed: 3, Nodes: 24, Commodities: 4})
	seq := NewAdaptive(x, AdaptiveConfig{Workers: 1})
	par := NewAdaptive(x, AdaptiveConfig{Workers: 4})
	for i := 0; i < 200; i++ {
		si, pi := seq.Step(), par.Step()
		if si.Utility != pi.Utility || si.Cost != pi.Cost || si.Feasible != pi.Feasible {
			t.Fatalf("iteration %d: %+v vs %+v", i, pi, si)
		}
		if seq.Eta() != par.Eta() {
			t.Fatalf("iteration %d: eta %v vs %v", i, par.Eta(), seq.Eta())
		}
	}
	if seq.Backtracks != par.Backtracks {
		t.Fatalf("backtracks %d vs %d", par.Backtracks, seq.Backtracks)
	}
}

// TestStepSteadyStateAllocs pins the workspace-arena contract: with
// observability off and a single worker, the only steady-state Step
// allocation is the Admitted slice in the returned StepInfo.
func TestStepSteadyStateAllocs(t *testing.T) {
	x := buildInstance(t, randnet.Config{Seed: 2, Nodes: 40, Commodities: 3})
	e := New(x, Config{Workers: 1})
	for i := 0; i < 10; i++ {
		e.Step() // warm up past any lazy growth
	}
	if allocs := testing.AllocsPerRun(100, func() { e.Step() }); allocs > 1 {
		t.Fatalf("Step allocates %v objects per run in steady state, want <= 1", allocs)
	}
}
