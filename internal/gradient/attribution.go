package gradient

import (
	"math"
	"sort"

	"repro/internal/flow"
	"repro/internal/graph"
)

// Bottleneck attribution: the operator-facing answer to "why is
// commodity j admitted at rate a_j, and which resource is holding it
// back?". The paper's marginal-cost machinery already contains the
// answer — ρ_i(j) prices injection at every node (eq. 9), the barrier
// derivative ε·D'_i(f_i) is each resource's local congestion (shadow)
// price, and at an optimal operating point the marginal utility of one
// more admitted unit, U'_j(a_j), equals the marginal cost of carrying
// it (Theorem 2). Attribute packages those signals per commodity.

// BindingNode is one capacity-constrained resource carrying commodity-j
// traffic whose congestion price is materially shaping the solution.
type BindingNode struct {
	// Node is the extended-graph node (a Proc or Bandwidth node).
	Node graph.NodeID
	// Utilization is f_i/C_i at the operating point.
	Utilization float64
	// Price is ε·D'_i(f_i): the marginal cost this resource adds per
	// unit of flow through it — the barrier's live shadow price.
	Price float64
}

// Attribution explains one commodity's admission decision.
type Attribution struct {
	Commodity int
	// Offered is λ_j; Admitted is a_j; Utility is U_j(a_j).
	Offered  float64
	Admitted float64
	Utility  float64
	// MarginalUtility is U'_j(a_j): the utility value of admitting one
	// more unit.
	MarginalUtility float64
	// PathCost is the marginal cost of pushing one more unit into the
	// network via the input link: d_(s̄_j,s_j) = ρ_{s_j}(j) under unit
	// input shrinkage. At an interior optimum with partial rejection it
	// equals MarginalUtility.
	PathCost float64
	// Gap is MarginalUtility − PathCost. Near zero when admission is
	// capacity-priced; positive when the commodity is fully admitted
	// with headroom (utility still exceeds cost, nothing to reject);
	// negative transiently before convergence.
	Gap float64
	// Binding lists the commodity's saturated resources, highest shadow
	// price first. Empty when the commodity's paths have headroom
	// everywhere and its admission is limited only by its offered rate.
	Binding []BindingNode
}

// Thresholds classifying a resource as binding: utilization at or above
// BindingUtilization, or — when congestion pricing is actually shaping
// admission, i.e. the path cost is a material fraction of the marginal
// utility — a shadow price carrying at least BindingPriceShare of the
// commodity's total path cost. The price test catches barrier operating
// points that hold utilization below 1 while the node still dominates
// the path price; the materiality guard keeps the noise-level prices of
// an uncongested network from reporting phantom bottlenecks.
const (
	BindingUtilization = 0.9
	BindingPriceShare  = 0.10
	minFlow            = 1e-9
)

// Attribute explains commodity j at the evaluated operating point u.
// Cost: one marginal-cost wave (O(member edges)).
func Attribute(u *flow.Usage, j int) Attribution {
	x := u.R.X
	c := &x.Commodities[j]
	sg := &x.Sub[j]
	m := ComputeMarginals(u, j)
	a := u.AdmittedRate(j)

	at := Attribution{
		Commodity:       j,
		Offered:         c.MaxRate,
		Admitted:        a,
		Utility:         c.Utility.Value(a),
		MarginalUtility: c.Utility.Deriv(a),
		PathCost:        m.LinkD[sg.InputLink],
	}
	at.Gap = at.MarginalUtility - at.PathCost

	// Walk the capacitated member nodes carrying commodity-j flow; a
	// node's commodity-j throughput is Σ_{e∈out(n)} FEdge[j][e].
	// (Ascending local index = ascending global ID; non-member nodes
	// carry no commodity-j flow, so restricting the walk loses nothing.)
	var worst *BindingNode
	for ln := int32(0); ln < int32(sg.NumNodes()); ln++ {
		node := sg.Nodes[ln]
		capacity := x.Capacity[node]
		if math.IsInf(capacity, 1) || capacity <= 0 {
			continue
		}
		used := 0.0
		for _, le := range sg.Out(ln) {
			used += u.FEdge[j][le]
		}
		if used <= minFlow {
			continue
		}
		bn := BindingNode{
			Node:        node,
			Utilization: u.FNode[node] / capacity,
			Price:       x.PenaltyDeriv(node, u.FNode[node]),
		}
		if worst == nil || bn.Price > worst.Price {
			w := bn
			worst = &w
		}
		priced := at.PathCost >= BindingPriceShare*at.MarginalUtility &&
			at.PathCost > 0 && bn.Price >= BindingPriceShare*at.PathCost
		if bn.Utilization >= BindingUtilization || priced {
			at.Binding = append(at.Binding, bn)
		}
	}
	// A commodity that is being partially rejected is by definition
	// capacity-limited somewhere: if the thresholds caught nothing (flat
	// prices spread along a long path), blame the priciest used node so
	// the operator always gets a bottleneck to look at.
	if len(at.Binding) == 0 && worst != nil && at.Admitted < at.Offered-1e-6 {
		at.Binding = append(at.Binding, *worst)
	}
	sort.Slice(at.Binding, func(a, b int) bool {
		return at.Binding[a].Price > at.Binding[b].Price
	})
	return at
}

// AttributeAll runs Attribute for every commodity.
func AttributeAll(u *flow.Usage) []Attribution {
	out := make([]Attribution, u.R.X.NumCommodities())
	for j := range out {
		out[j] = Attribute(u, j)
	}
	return out
}
