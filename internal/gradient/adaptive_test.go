package gradient

import (
	"math"
	"testing"

	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/transform"
)

func TestAdaptiveCostMonotone(t *testing.T) {
	// The accept/reject rule makes the cost non-increasing by
	// construction; verify over a real trajectory.
	x := randomExtended(t, 13)
	e := NewAdaptive(x, AdaptiveConfig{})
	prev := math.Inf(1)
	for i := 0; i < 800; i++ {
		info := e.Step()
		if info.Cost > prev+1e-9 {
			t.Fatalf("iteration %d: cost rose %g -> %g", i, prev, info.Cost)
		}
		prev = info.Cost
	}
}

func TestAdaptiveSurvivesHostileInitialEta(t *testing.T) {
	// A wildly too-large initial η must be tamed by backtracking and
	// still converge near the fixed-η optimum.
	x := randomExtended(t, 17)
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewAdaptive(x, AdaptiveConfig{InitialEta: 50})
	last := e.Run(6000)
	if e.Backtracks == 0 {
		t.Fatal("hostile eta never backtracked")
	}
	if e.Eta() >= 50 {
		t.Fatalf("eta did not shrink: %g", e.Eta())
	}
	if last.Utility < 0.80*ref.Utility {
		t.Fatalf("adaptive converged to %g, reference %g", last.Utility, ref.Utility)
	}
	if !last.Feasible {
		t.Fatal("adaptive final point infeasible")
	}
}

func TestAdaptiveMatchesFixedEtaQuality(t *testing.T) {
	// On the E5-style steep instance a fixed η = 0.04 limit-cycles; the
	// adaptive engine must do at least as well as the well-tuned fixed
	// step.
	x := randomExtended(t, 23)
	fixed := New(x, Config{Eta: 0.01})
	traceFixed, err := fixed.Run(4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := NewAdaptive(x, AdaptiveConfig{})
	lastAdaptive := adaptive.Run(4000)
	fixedU := traceFixed[len(traceFixed)-1].Utility
	if lastAdaptive.Utility < 0.95*fixedU {
		t.Fatalf("adaptive %g well below tuned fixed %g", lastAdaptive.Utility, fixedU)
	}
}

func TestAdaptiveEtaGrowsOnEasyInstance(t *testing.T) {
	// Plenty of capacity and a tiny starting step: the controller must
	// grow η (descents accumulate) rather than stay at the floor.
	p, err := randnet.Generate(randnet.Config{
		Seed: 5, Nodes: 12, Commodities: 2, Layers: 3,
		CapMin: 500, CapMax: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewAdaptive(x, AdaptiveConfig{InitialEta: 0.001})
	e.Run(2000)
	if e.Eta() <= 0.001 {
		t.Fatalf("eta never grew: %g", e.Eta())
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	cfg := AdaptiveConfig{}
	cfg.setDefaults()
	if cfg.InitialEta != 0.04 || cfg.Shrink != 0.5 || cfg.Grow != 1.05 || cfg.GrowAfter != 20 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Degenerate values fall back too.
	cfg = AdaptiveConfig{Shrink: 2, Grow: 0.5}
	cfg.setDefaults()
	if cfg.Shrink != 0.5 || cfg.Grow != 1.05 {
		t.Fatalf("degenerate values not corrected: %+v", cfg)
	}
}
