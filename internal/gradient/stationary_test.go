package gradient

import (
	"testing"

	"repro/internal/flow"
)

func TestStationarityImprovesWithConvergence(t *testing.T) {
	x := randomExtended(t, 29)
	eng := NewAdaptive(x, AdaptiveConfig{})

	eng.Run(50)
	early := CheckStationarity(flow.Evaluate(eng.Routing()))
	eng.Run(8000)
	late := CheckStationarity(flow.Evaluate(eng.Routing()))

	if late.MaxUsedGap >= early.MaxUsedGap {
		t.Fatalf("stationarity residual did not shrink: %g -> %g",
			early.MaxUsedGap, late.MaxUsedGap)
	}
	if late.MaxUsedGap > 0.2 {
		t.Fatalf("residual %g after 8050 iterations; not near-stationary", late.MaxUsedGap)
	}
}

func TestStationarityLocatesWorstNode(t *testing.T) {
	x := randomExtended(t, 31)
	eng := New(x, Config{Eta: 0.04})
	for i := 0; i < 30; i++ {
		eng.Step()
	}
	rep := CheckStationarity(flow.Evaluate(eng.Routing()))
	if rep.MaxUsedGap > 0 {
		if rep.WorstNode < 0 || rep.WorstCommodity < 0 {
			t.Fatalf("gap %g reported with no location", rep.MaxUsedGap)
		}
	}
}

func TestStationarityZeroGapAtFixedPoint(t *testing.T) {
	// A trivially optimal configuration: single path with enormous
	// capacity, fully converged — both residuals near zero.
	x := singlePath(t, 1e6, 1e6, 5)
	eng := New(x, Config{Eta: 1})
	if _, err := eng.Run(4000, nil); err != nil {
		t.Fatal(err)
	}
	rep := CheckStationarity(flow.Evaluate(eng.Routing()))
	if rep.MaxUsedGap > 1e-3 {
		t.Fatalf("used-link gap %g at the fixed point", rep.MaxUsedGap)
	}
	if rep.MaxSufficientViolation > 1e-3 {
		t.Fatalf("sufficient-condition violation %g at the fixed point", rep.MaxSufficientViolation)
	}
}
