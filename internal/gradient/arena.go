package gradient

import (
	"sync"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/transform"
)

// waveWorkspace is one commodity's scratch for the marginal→tag→update
// chain of a single iteration, allocated once per engine and zeroed in
// place each step by the *Into wave functions.
type waveWorkspace struct {
	m      Marginals
	depth  []int
	tagged []bool

	// Per-commodity results of the last wave, reduced in fixed j order
	// by runWave so the totals are independent of worker scheduling.
	messages    int
	rounds      int
	taggedCount int
}

// arena owns the per-commodity workspaces and the worker pool that runs
// the §5 waves. The paper's protocol phases are independent across
// commodities — each commodity's marginal-cost wave reads only the
// shared (read-only) usage and writes only its own φ row — so the pool
// parallelizes them without changing a single bit of the trajectory:
// every commodity computes in its own workspace, and the
// messages/rounds/tag-count reduction happens afterwards in commodity
// order.
type arena struct {
	ws      []waveWorkspace
	workers int
}

func newArena(x *transform.Extended, workers int) *arena {
	a := &arena{ws: make([]waveWorkspace, x.NumCommodities()), workers: workers}
	for j := range a.ws {
		nn, ne := x.Sub[j].NumNodes(), x.Sub[j].NumEdges()
		a.ws[j] = waveWorkspace{
			m:      Marginals{Rho: make([]float64, nn), LinkD: make([]float64, ne)},
			depth:  make([]int, nn),
			tagged: make([]bool, nn),
		}
	}
	return a
}

// runWave executes the marginal-cost wave, the loop-freedom tagging
// protocol (when blocking is true), and the routing update Γ for every
// commodity against the evaluated usage u, writing each commodity's new
// φ row into next (after seeding it with the current row, so next is a
// full routing even though the engine double-buffers instead of
// cloning). With workers > 1 commodities are processed concurrently by
// a bounded pool; the returned totals (messages, the max of the wave
// depths, tag count) are reduced in fixed commodity order afterwards,
// so the results are bitwise-identical to the sequential execution.
// Tag counting is skipped unless countTags is set (it is only consumed
// by the recorder).
func (a *arena) runWave(u *flow.Usage, eta float64, blocking, countTags bool, rec *obs.Recorder, next *flow.Routing) (messages, maxRounds, taggedCount int) {
	nc := len(a.ws)
	if workers := min(a.workers, nc); workers > 1 {
		var idx atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				for {
					j := int(idx.Add(1)) - 1
					if j >= nc {
						return
					}
					a.runOne(j, u, eta, blocking, countTags, rec, next)
				}
			}()
		}
		wg.Wait()
	} else {
		for j := 0; j < nc; j++ {
			a.runOne(j, u, eta, blocking, countTags, rec, next)
		}
	}
	for j := 0; j < nc; j++ {
		w := &a.ws[j]
		messages += w.messages
		if w.rounds > maxRounds {
			maxRounds = w.rounds
		}
		taggedCount += w.taggedCount
	}
	return messages, maxRounds, taggedCount
}

// runOne executes one commodity's wave chain into its workspace slot.
// A named method rather than a closure so the sequential path stays
// allocation-free (a closure shared with the goroutine launch would
// escape to the heap on every Step).
func (a *arena) runOne(j int, u *flow.Usage, eta float64, blocking, countTags bool, rec *obs.Recorder, next *flow.Routing) {
	w := &a.ws[j]
	tm := rec.StartPhase(obs.PhaseMarginal)
	ComputeMarginalsInto(u, j, &w.m, w.depth)
	tm.Done()
	var tagged []bool
	w.taggedCount = 0
	if blocking {
		tt := rec.StartPhase(obs.PhaseTagging)
		tagged = ComputeTagsInto(u, j, &w.m, eta, w.tagged)
		tt.Done()
		if countTags {
			for _, tag := range tagged {
				if tag {
					w.taggedCount++
				}
			}
		}
	}
	tu := rec.StartPhase(obs.PhaseUpdate)
	copy(next.Phi[j], u.R.Phi[j])
	ApplyGamma(u, j, &w.m, tagged, eta, next)
	tu.Done()
	w.messages = w.m.Messages
	w.rounds = w.m.Rounds
}
