package gradient

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/randnet"
	"repro/internal/transform"
)

func randomExtended(t testing.TB, seed int64) *transform.Extended {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nodes := 10 + r.Intn(16)
	layers := 3 + r.Intn(3)
	maxCom := nodes / layers
	if maxCom > 3 {
		maxCom = 3
	}
	p, err := randnet.Generate(randnet.Config{
		Seed:        seed,
		Nodes:       nodes,
		Commodities: 1 + r.Intn(maxCom),
		Layers:      layers,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// TestQuickGammaPreservesSimplex: after any number of update steps on
// random instances, the routing variables stay a valid distribution at
// every node (φ ≥ 0, Σ = 1, zero off the member subgraph).
func TestQuickGammaPreservesSimplex(t *testing.T) {
	f := func(seed int64) bool {
		x := randomExtended(t, seed)
		eng := New(x, Config{Eta: 0.1})
		for i := 0; i < 40; i++ {
			eng.Step()
		}
		if err := eng.R.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCostNonIncreasingSmallEta: with a small step size the §5
// iteration is a descent method on random instances (transient barrier
// overshoots excepted — they appear as +Inf and must recover, so the
// check skips non-finite pairs).
func TestQuickCostNonIncreasingSmallEta(t *testing.T) {
	f := func(seed int64) bool {
		x := randomExtended(t, seed)
		eng := New(x, Config{Eta: 0.005})
		prev := math.Inf(1)
		for i := 0; i < 120; i++ {
			info := eng.Step()
			if !math.IsInf(info.Cost, 0) && !math.IsInf(prev, 0) {
				if info.Cost > prev+1e-7*(1+math.Abs(prev)) {
					t.Logf("seed %d iter %d: cost %g -> %g", seed, i, prev, info.Cost)
					return false
				}
			}
			prev = info.Cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMarginalsNonNegative: all marginal input costs are ≥ 0
// (costs Y and D are increasing, β and c positive), and exactly zero at
// each commodity's sink.
func TestQuickMarginalsNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		x := randomExtended(t, seed)
		eng := New(x, Config{Eta: 0.1})
		for i := 0; i < 30; i++ {
			eng.Step()
		}
		u := flow.Evaluate(eng.Routing())
		for j := range x.Commodities {
			m := ComputeMarginals(u, j)
			if m.RhoAt(&x.Sub[j], x.Commodities[j].Sink) != 0 {
				return false
			}
			for n, rho := range m.Rho {
				if rho < 0 || math.IsNaN(rho) {
					t.Logf("seed %d: rho[%d] = %g", seed, n, rho)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAdmissionWithinOffered: the admitted rate never exceeds λ_j
// and never goes negative at any point of any trajectory.
func TestQuickAdmissionWithinOffered(t *testing.T) {
	f := func(seed int64) bool {
		x := randomExtended(t, seed)
		eng := New(x, Config{Eta: 0.2})
		for i := 0; i < 60; i++ {
			info := eng.Step()
			for j, a := range info.Admitted {
				if a < -1e-9 || a > x.Commodities[j].MaxRate+1e-9 {
					t.Logf("seed %d iter %d: a_%d = %g of λ %g", seed, i, j, a, x.Commodities[j].MaxRate)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStationaryPointSatisfiesOptimalityCondition: after long
// convergence, Theorem 2's necessary condition holds approximately —
// at every node carrying traffic, every used out-link's marginal is
// within tolerance of the node's minimum marginal. The adaptive engine
// is used because a fixed η limit-cycles on the steepest random
// instances (see T2), where no stationary point is ever reached.
func TestQuickStationaryPointSatisfiesOptimalityCondition(t *testing.T) {
	f := func(seed int64) bool {
		x := randomExtended(t, seed)
		eng := NewAdaptive(x, AdaptiveConfig{})
		eng.Run(4000)
		u := flow.Evaluate(eng.Routing())
		for j := range x.Commodities {
			m := ComputeMarginals(u, j)
			sg := &x.Sub[j]
			for ln := int32(0); ln < int32(sg.NumNodes()); ln++ {
				node := sg.Nodes[ln]
				if node == x.Commodities[j].Sink || u.T[j][ln] < 1e-3 {
					continue
				}
				min := math.Inf(1)
				for _, le := range sg.Out(ln) {
					if m.LinkD[le] < min {
						min = m.LinkD[le]
					}
				}
				for _, le := range sg.Out(ln) {
					if u.R.Phi[j][le] < 1e-3 {
						continue
					}
					// Used links must be near-optimal (eq. 12). The
					// tolerance is loose: finite η stops short of the
					// exact stationary point.
					if m.LinkD[le] > min+0.35*(1+min) {
						t.Logf("seed %d commodity %d node %d: used link %d marginal %g, min %g",
							seed, j, node, sg.Edges[le], m.LinkD[le], min)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
