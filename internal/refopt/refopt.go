// Package refopt computes the reference optimum the paper draws as the
// horizontal "optimal total throughput" line in Figure 4. For linear
// utilities the joint admission/routing/allocation problem is exactly a
// linear program (the §2 formulation with flow-balance, node-capacity
// and admission constraints); for concave utilities the objective is
// replaced by a piecewise-linear inner approximation whose error
// vanishes with the segment count (concavity makes the approximation a
// true lower bound that the LP fills greedily in slope order).
//
// The LP is formulated on the extended graph of internal/transform so
// node capacities and link bandwidths are a single uniform constraint
// family, exactly as §3 argues.
package refopt

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/transform"
	"repro/internal/utility"
)

// Result is the reference optimum.
type Result struct {
	// Utility is Σ_j U_j(a_j) at the optimum (for PWL objectives this
	// evaluates the true U at the optimal admitted rates, not the PWL
	// surrogate).
	Utility float64
	// Admitted is a_j per commodity.
	Admitted []float64
	// EdgeInput[j][e] is the optimal input rate processed over extended
	// edge e for commodity j (the y variables).
	EdgeInput [][]float64
	// ShadowPrice[n] is the dual value of node n's capacity constraint:
	// the marginal utility of one more unit of capacity there (Kelly's
	// shadow prices, ref. [13]). Zero for uncapacitated and non-binding
	// nodes.
	ShadowPrice []float64
}

// DefaultSegments is the PWL segment count used when Options.Segments
// is zero; at 64 segments the approximation error of a concave utility
// is far below the convergence tolerances used anywhere in this repo.
const DefaultSegments = 64

// Options tunes the reference solve.
type Options struct {
	// Segments is the piecewise-linear segment count per concave
	// utility. Linear utilities always use a single exact segment.
	Segments int
}

// Solve computes the reference optimum for the instance.
func Solve(x *transform.Extended, opts Options) (*Result, error) {
	if opts.Segments <= 0 {
		opts.Segments = DefaultSegments
	}

	ne := x.G.NumEdges()
	nc := x.NumCommodities()

	// Variable layout: per commodity, one y variable per member edge
	// (Subgraph local index; ascending local index is ascending global
	// edge ID, so the numbering matches the old dense member scan), then
	// PWL segment variables per commodity.
	varOf := make([][]int, nc) // varOf[j][le] = LP variable
	numVars := 0
	for j := 0; j < nc; j++ {
		varOf[j] = make([]int, x.Sub[j].NumEdges())
		for le := range varOf[j] {
			varOf[j][le] = numVars
			numVars++
		}
	}
	type segment struct {
		v     int
		slope float64
		width float64
	}
	segs := make([][]segment, nc)
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		n := opts.Segments
		if _, linear := c.Utility.(utility.Linear); linear {
			n = 1
		}
		width := c.MaxRate / float64(n)
		for k := 0; k < n; k++ {
			lo, hi := width*float64(k), width*float64(k+1)
			segs[j] = append(segs[j], segment{
				v:     numVars,
				slope: (c.Utility.Value(hi) - c.Utility.Value(lo)) / width,
				width: width,
			})
			numVars++
		}
	}

	p := lp.NewProblem(numVars)
	for j := 0; j < nc; j++ {
		for _, s := range segs[j] {
			if err := p.SetObjective(s.v, s.slope); err != nil {
				return nil, err
			}
			if err := p.AddConstraint(map[int]float64{s.v: 1}, lp.LE, s.width); err != nil {
				return nil, err
			}
		}
	}

	// Admission coupling: Σ_k s_jk = a_j = y on the input link.
	for j := 0; j < nc; j++ {
		coeffs := map[int]float64{varOf[j][x.Sub[j].InputLink]: 1}
		for _, s := range segs[j] {
			coeffs[s.v] -= 1
			if coeffs[s.v] == 0 {
				delete(coeffs, s.v)
			}
		}
		if err := p.AddConstraint(coeffs, lp.EQ, 0); err != nil {
			return nil, err
		}
	}

	// Flow balance with shrinkage (eq. 7) per commodity per member node:
	// Σ_out y_e − Σ_in β_e·y_e = r (λ_j at the dummy, 0 elsewhere,
	// unconstrained at the sink). Ascending local node index visits the
	// same nodes in the same order as the old full-graph scan (nodes
	// without member edges produced no constraint rows there), so the LP
	// rows — and therefore the dual indices — are unchanged.
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		sg := &x.Sub[j]
		for ln := int32(0); ln < int32(sg.NumNodes()); ln++ {
			if ln == sg.Sink {
				continue
			}
			coeffs := make(map[int]float64)
			for _, le := range sg.Out(ln) {
				coeffs[varOf[j][le]] += 1
			}
			for _, le := range sg.In(ln) {
				coeffs[varOf[j][le]] -= sg.Beta[le]
			}
			rhs := 0.0
			if ln == sg.Dummy {
				rhs = c.MaxRate
			}
			if len(coeffs) == 0 {
				if rhs != 0 {
					return nil, fmt.Errorf("refopt: commodity %q: dummy node has no member edges", c.Name)
				}
				continue
			}
			if err := p.AddConstraint(coeffs, lp.EQ, rhs); err != nil {
				return nil, err
			}
		}
	}

	// Capacity (eq. 6): Σ_j Σ_{e ∈ out(n)} c_e(j)·y_e(j) ≤ C_n for
	// every capacitated node (bandwidth nodes carry B_ik here), scanned
	// via a per-node inverted list of (commodity, local node) presences.
	// capRow[n] records each capacity constraint's LP row so the dual
	// values can be read back as per-node shadow prices.
	type visit struct{ j, ln int32 }
	at := make([][]visit, x.G.NumNodes())
	for j := 0; j < nc; j++ {
		for ln, n := range x.Sub[j].Nodes {
			at[n] = append(at[n], visit{j: int32(j), ln: int32(ln)})
		}
	}
	capRow := make([]int, x.G.NumNodes())
	nRows := countRows(p)
	for n := 0; n < x.G.NumNodes(); n++ {
		capRow[n] = -1
		capn := x.Capacity[n]
		if math.IsInf(capn, 1) {
			continue
		}
		coeffs := make(map[int]float64)
		for _, v := range at[n] {
			sg := &x.Sub[v.j]
			for _, le := range sg.Out(v.ln) {
				coeffs[varOf[v.j][le]] += sg.Cost[le]
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		if err := p.AddConstraint(coeffs, lp.LE, capn); err != nil {
			return nil, err
		}
		capRow[n] = nRows
		nRows++
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("refopt: %w", err)
	}

	res := &Result{
		Admitted:    make([]float64, nc),
		EdgeInput:   make([][]float64, nc),
		ShadowPrice: make([]float64, x.G.NumNodes()),
	}
	for n, row := range capRow {
		if row >= 0 {
			res.ShadowPrice[n] = sol.Duals[row]
		}
	}
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		sg := &x.Sub[j]
		res.Admitted[j] = sol.X[varOf[j][sg.InputLink]]
		res.Utility += c.Utility.Value(res.Admitted[j])
		// EdgeInput stays dense over extended edges: external consumers
		// (experiments, reports) index it by global edge ID.
		res.EdgeInput[j] = make([]float64, ne)
		for le, e := range sg.Edges {
			res.EdgeInput[j][e] = sol.X[varOf[j][le]]
		}
	}
	return res, nil
}

// countRows reports how many constraints a problem has so far (used to
// map capacity constraints to dual indices).
func countRows(p *lp.Problem) int { return p.NumConstraints() }
