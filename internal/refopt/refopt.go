// Package refopt computes the reference optimum the paper draws as the
// horizontal "optimal total throughput" line in Figure 4. For linear
// utilities the joint admission/routing/allocation problem is exactly a
// linear program (the §2 formulation with flow-balance, node-capacity
// and admission constraints); for concave utilities the objective is
// replaced by a piecewise-linear inner approximation whose error
// vanishes with the segment count (concavity makes the approximation a
// true lower bound that the LP fills greedily in slope order).
//
// The LP is formulated on the extended graph of internal/transform so
// node capacities and link bandwidths are a single uniform constraint
// family, exactly as §3 argues.
package refopt

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/transform"
	"repro/internal/utility"
)

// Result is the reference optimum.
type Result struct {
	// Utility is Σ_j U_j(a_j) at the optimum (for PWL objectives this
	// evaluates the true U at the optimal admitted rates, not the PWL
	// surrogate).
	Utility float64
	// Admitted is a_j per commodity.
	Admitted []float64
	// EdgeInput[j][e] is the optimal input rate processed over extended
	// edge e for commodity j (the y variables).
	EdgeInput [][]float64
	// ShadowPrice[n] is the dual value of node n's capacity constraint:
	// the marginal utility of one more unit of capacity there (Kelly's
	// shadow prices, ref. [13]). Zero for uncapacitated and non-binding
	// nodes.
	ShadowPrice []float64
}

// DefaultSegments is the PWL segment count used when Options.Segments
// is zero; at 64 segments the approximation error of a concave utility
// is far below the convergence tolerances used anywhere in this repo.
const DefaultSegments = 64

// Options tunes the reference solve.
type Options struct {
	// Segments is the piecewise-linear segment count per concave
	// utility. Linear utilities always use a single exact segment.
	Segments int
}

// Solve computes the reference optimum for the instance.
func Solve(x *transform.Extended, opts Options) (*Result, error) {
	if opts.Segments <= 0 {
		opts.Segments = DefaultSegments
	}

	ne := x.G.NumEdges()
	nc := x.NumCommodities()

	// Variable layout: per commodity, one y variable per member edge,
	// then PWL segment variables per commodity.
	varOf := make([][]int, nc) // varOf[j][e] = LP variable or -1
	numVars := 0
	for j := 0; j < nc; j++ {
		varOf[j] = make([]int, ne)
		for e := 0; e < ne; e++ {
			varOf[j][e] = -1
			if x.Member[j][e] {
				varOf[j][e] = numVars
				numVars++
			}
		}
	}
	type segment struct {
		v     int
		slope float64
		width float64
	}
	segs := make([][]segment, nc)
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		n := opts.Segments
		if _, linear := c.Utility.(utility.Linear); linear {
			n = 1
		}
		width := c.MaxRate / float64(n)
		for k := 0; k < n; k++ {
			lo, hi := width*float64(k), width*float64(k+1)
			segs[j] = append(segs[j], segment{
				v:     numVars,
				slope: (c.Utility.Value(hi) - c.Utility.Value(lo)) / width,
				width: width,
			})
			numVars++
		}
	}

	p := lp.NewProblem(numVars)
	for j := 0; j < nc; j++ {
		for _, s := range segs[j] {
			if err := p.SetObjective(s.v, s.slope); err != nil {
				return nil, err
			}
			if err := p.AddConstraint(map[int]float64{s.v: 1}, lp.LE, s.width); err != nil {
				return nil, err
			}
		}
	}

	// Admission coupling: Σ_k s_jk = a_j = y on the input link.
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		coeffs := map[int]float64{varOf[j][c.InputLink]: 1}
		for _, s := range segs[j] {
			coeffs[s.v] -= 1
			if coeffs[s.v] == 0 {
				delete(coeffs, s.v)
			}
		}
		if err := p.AddConstraint(coeffs, lp.EQ, 0); err != nil {
			return nil, err
		}
	}

	// Flow balance with shrinkage (eq. 7) per commodity per node:
	// Σ_out y_e − Σ_in β_e·y_e = r (λ_j at the dummy, 0 elsewhere,
	// unconstrained at the sink).
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == c.Sink {
				continue
			}
			coeffs := make(map[int]float64)
			for _, e := range x.G.Out(node) {
				if v := varOf[j][e]; v >= 0 {
					coeffs[v] += 1
				}
			}
			for _, e := range x.G.In(node) {
				if v := varOf[j][e]; v >= 0 {
					coeffs[v] -= x.Beta[j][e]
				}
			}
			rhs := 0.0
			if node == c.Dummy {
				rhs = c.MaxRate
			}
			if len(coeffs) == 0 {
				if rhs != 0 {
					return nil, fmt.Errorf("refopt: commodity %q: dummy node has no member edges", c.Name)
				}
				continue
			}
			if err := p.AddConstraint(coeffs, lp.EQ, rhs); err != nil {
				return nil, err
			}
		}
	}

	// Capacity (eq. 6): Σ_j Σ_{e ∈ out(n)} c_e(j)·y_e(j) ≤ C_n for
	// every capacitated node (bandwidth nodes carry B_ik here).
	// capRow[n] records each capacity constraint's LP row so the dual
	// values can be read back as per-node shadow prices.
	capRow := make([]int, x.G.NumNodes())
	nRows := countRows(p)
	for n := 0; n < x.G.NumNodes(); n++ {
		capRow[n] = -1
		capn := x.Capacity[n]
		if math.IsInf(capn, 1) {
			continue
		}
		coeffs := make(map[int]float64)
		for j := 0; j < nc; j++ {
			for _, e := range x.G.Out(graph.NodeID(n)) {
				if v := varOf[j][e]; v >= 0 {
					coeffs[v] += x.Cost[j][e]
				}
			}
		}
		if len(coeffs) == 0 {
			continue
		}
		if err := p.AddConstraint(coeffs, lp.LE, capn); err != nil {
			return nil, err
		}
		capRow[n] = nRows
		nRows++
	}

	sol, err := lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("refopt: %w", err)
	}

	res := &Result{
		Admitted:    make([]float64, nc),
		EdgeInput:   make([][]float64, nc),
		ShadowPrice: make([]float64, x.G.NumNodes()),
	}
	for n, row := range capRow {
		if row >= 0 {
			res.ShadowPrice[n] = sol.Duals[row]
		}
	}
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		res.Admitted[j] = sol.X[varOf[j][c.InputLink]]
		res.Utility += c.Utility.Value(res.Admitted[j])
		res.EdgeInput[j] = make([]float64, ne)
		for e := 0; e < ne; e++ {
			if v := varOf[j][e]; v >= 0 {
				res.EdgeInput[j][e] = sol.X[v]
			}
		}
	}
	return res, nil
}

// countRows reports how many constraints a problem has so far (used to
// map capacity constraints to dual indices).
func countRows(p *lp.Problem) int { return p.NumConstraints() }
