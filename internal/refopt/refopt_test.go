package refopt

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

func buildChain(t *testing.T, srcCap, bw, lambda float64, beta, cost float64, u utility.Function) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", srcCap)
	sink, _ := net.AddSink("sink")
	e, _ := net.AddLink(src, sink, bw)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, lambda, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e, stream.EdgeParams{Beta: beta, Cost: cost}); err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func solve(t *testing.T, x *transform.Extended) *Result {
	t.Helper()
	res, err := Solve(x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNodeCapacityBinds(t *testing.T) {
	// src capacity 10 with cost 2/unit: a* = 5 even though λ = 20.
	x := buildChain(t, 10, 1e6, 20, 1, 2, utility.Linear{Slope: 1})
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-5) > 1e-6 {
		t.Fatalf("a = %g, want 5 (CPU-bound)", res.Admitted[0])
	}
	if math.Abs(res.Utility-5) > 1e-6 {
		t.Fatalf("U = %g, want 5", res.Utility)
	}
}

func TestBandwidthBindsAfterShrinkage(t *testing.T) {
	// β = 0.5: the wire carries 0.5a, so B = 4 allows a = 8; CPU allows
	// 10. Bandwidth binds: a* = 8.
	x := buildChain(t, 10, 4, 20, 0.5, 1, utility.Linear{Slope: 1})
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-8) > 1e-6 {
		t.Fatalf("a = %g, want 8 (bandwidth-bound after shrinkage)", res.Admitted[0])
	}
}

func TestExpansionTightensBandwidth(t *testing.T) {
	// β = 2: wire carries 2a, B = 4 allows a = 2 < CPU bound 10.
	x := buildChain(t, 10, 4, 20, 2, 1, utility.Linear{Slope: 1})
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-2) > 1e-6 {
		t.Fatalf("a = %g, want 2 (expansion-bound)", res.Admitted[0])
	}
}

func TestOfferedRateBinds(t *testing.T) {
	x := buildChain(t, 1e6, 1e6, 7, 1, 1, utility.Linear{Slope: 1})
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-7) > 1e-6 {
		t.Fatalf("a = %g, want λ = 7", res.Admitted[0])
	}
}

func TestLogUtilityFullAdmissionWhenUncapacitated(t *testing.T) {
	u := utility.Log{Weight: 3, Scale: 1}
	x := buildChain(t, 1e6, 1e6, 10, 1, 1, u)
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-10) > 1e-4 {
		t.Fatalf("a = %g, want 10 (U increasing)", res.Admitted[0])
	}
	if math.Abs(res.Utility-u.Value(10)) > 1e-6 {
		t.Fatalf("U = %g, want %g", res.Utility, u.Value(10))
	}
}

// sharedCapacity builds two commodities through one shared server of
// capacity 10 (cost 1 each).
func sharedCapacity(t *testing.T, u1, u2 utility.Function, l1, l2 float64) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	s1, _ := net.AddServer("s1", 1e6)
	s2, _ := net.AddServer("s2", 1e6)
	mid, _ := net.AddServer("mid", 10)
	k1, _ := net.AddSink("k1")
	k2, _ := net.AddSink("k2")
	a1, _ := net.AddLink(s1, mid, 1e6)
	a2, _ := net.AddLink(s2, mid, 1e6)
	b1, _ := net.AddLink(mid, k1, 1e6)
	b2, _ := net.AddLink(mid, k2, 1e6)
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("C1", s1, k1, l1, u1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.AddCommodity("C2", s2, k2, l2, u2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.EdgeID{a1, b1} {
		if err := p.SetEdge(c1, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.EdgeID{a2, b2} {
		if err := p.SetEdge(c2, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestSymmetricLogSplitsEvenly(t *testing.T) {
	// Two identical log utilities sharing capacity 10 at "mid" (cost 1
	// at mid, but note each commodity also consumes mid's capacity on
	// its outbound processing): by symmetry a1 = a2.
	u := utility.Log{Weight: 1, Scale: 1}
	x := sharedCapacity(t, u, u, 50, 50)
	// The PWL surrogate is flat within one segment, so the split is
	// only determined up to a segment width (λ/segments); use fine
	// segments and a matching tolerance.
	res, err := Solve(x, Options{Segments: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Admitted[0]-res.Admitted[1]) > 0.11 {
		t.Fatalf("asymmetric split: %v", res.Admitted)
	}
	total := res.Admitted[0] + res.Admitted[1]
	// mid processes each commodity once (cost 1 per unit): a1+a2 = 10.
	if math.Abs(total-10) > 1e-6 {
		t.Fatalf("total = %g, want 10 (capacity exhausted)", total)
	}
}

func TestWeightedLogSplitsProportionally(t *testing.T) {
	// max w1·log(1+a1) + w2·log(1+a2) s.t. a1+a2 = C: water-filling
	// gives (1+a1)/(1+a2) = w1/w2.
	u1 := utility.Log{Weight: 3, Scale: 1}
	u2 := utility.Log{Weight: 1, Scale: 1}
	x := sharedCapacity(t, u1, u2, 50, 50)
	res, err := Solve(x, Options{Segments: 400})
	if err != nil {
		t.Fatal(err)
	}
	ratio := (1 + res.Admitted[0]) / (1 + res.Admitted[1])
	if math.Abs(ratio-3) > 0.15 {
		t.Fatalf("(1+a1)/(1+a2) = %g, want 3", ratio)
	}
}

func TestLinearPrefersHigherSlope(t *testing.T) {
	// Linear utilities: all shared capacity goes to the higher slope.
	x := sharedCapacity(t, utility.Linear{Slope: 2}, utility.Linear{Slope: 1}, 50, 50)
	res := solve(t, x)
	if res.Admitted[0] < 10-1e-6 || res.Admitted[1] > 1e-6 {
		t.Fatalf("admitted = %v, want [10 0]", res.Admitted)
	}
}

func TestSegmentsImproveAccuracy(t *testing.T) {
	u := utility.Log{Weight: 1, Scale: 1}
	x := sharedCapacity(t, u, utility.Linear{Slope: 0.05}, 50, 50)
	coarse, err := Solve(x, Options{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Solve(x, Options{Segments: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Finer PWL can only improve (inner approximation).
	if fine.Utility < coarse.Utility-1e-9 {
		t.Fatalf("finer segments decreased utility: %g -> %g", coarse.Utility, fine.Utility)
	}
}

func TestMultiPathUsesBothPaths(t *testing.T) {
	// src -> {a,b} -> sink with per-path capacity 6 each and λ = 20:
	// optimal admits 12 using both paths.
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 1e6)
	a, _ := net.AddServer("a", 6)
	b, _ := net.AddServer("b", 6)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 1e6)
	e2, _ := net.AddLink(src, b, 1e6)
	e3, _ := net.AddLink(a, sink, 1e6)
	e4, _ := net.AddLink(b, sink, 1e6)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 20, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.EdgeID{e1, e2, e3, e4} {
		if err := p.SetEdge(c, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := solve(t, x)
	if math.Abs(res.Admitted[0]-12) > 1e-6 {
		t.Fatalf("a = %g, want 12 (both paths saturated)", res.Admitted[0])
	}
}

func TestFigure1Reference(t *testing.T) {
	// Figure-1 topology with unit parameters and capacity 10 per
	// server: both streams are 4 stages deep; server3 and server5 are
	// shared. Solvable sanity bound: each stream admits at most 10, and
	// total utility is bounded by shared-server capacity.
	p, err := stream.Figure1(stream.Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       30,
		MaxRate2:       30,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := solve(t, x)
	// Stream S1 can route around the shared servers (via 2 and 4) up to
	// 10; S2 must pass through both 3 and 5. Whatever the split, the
	// reference optimum must be feasible and nontrivial.
	if res.Utility < 10 || res.Utility > 20+1e-9 {
		t.Fatalf("utility = %g, want within (10, 20]", res.Utility)
	}
	// Cross-check: the gradient algorithm cannot beat the reference.
	if res.Admitted[0] > 30+1e-9 || res.Admitted[1] > 30+1e-9 {
		t.Fatalf("admitted exceeds offered: %v", res.Admitted)
	}
}

func TestShadowPriceOnBindingBottleneck(t *testing.T) {
	// Node capacity 10 binds (cost 2 ⇒ a* = 5 of λ = 20): its shadow
	// price must be U'(a)/c = 0.5 — one more capacity unit admits 0.5
	// more source units, each worth 1.
	x := buildChain(t, 10, 1e6, 20, 1, 2, utility.Linear{Slope: 1})
	res := solve(t, x)
	src, _ := x.G.NumNodes(), 0
	_ = src
	var price float64
	for n := 0; n < x.G.NumNodes(); n++ {
		if x.Names[n] == "src" {
			price = res.ShadowPrice[n]
		}
	}
	if math.Abs(price-0.5) > 1e-6 {
		t.Fatalf("shadow price = %g, want 0.5", price)
	}
}

func TestShadowPriceZeroWhenOfferBound(t *testing.T) {
	// λ binds, capacity does not: every shadow price is zero.
	x := buildChain(t, 1e6, 1e6, 7, 1, 1, utility.Linear{Slope: 1})
	res := solve(t, x)
	for n, price := range res.ShadowPrice {
		if math.Abs(price) > 1e-9 {
			t.Fatalf("node %d: shadow price %g on a non-binding instance", n, price)
		}
	}
}

func TestShadowPricePredictsCapacityValue(t *testing.T) {
	// Complementary check on a random instance: bump the highest-priced
	// node's capacity by δ; the optimum must rise by ≈ price·δ.
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 16, Commodities: 2, Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := solve(t, x)
	best, bestPrice := -1, 0.0
	for n, price := range base.ShadowPrice {
		if x.Kinds[n] == transform.Proc && price > bestPrice {
			best, bestPrice = n, price
		}
	}
	if best < 0 {
		t.Skip("no binding processing node on this instance")
	}
	const h = 1e-3
	q, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 16, Commodities: 2, Layers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q.Net.Capacity[x.OrigNode[best]] += h
	xq, err := transform.Build(q, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bumped := solve(t, xq)
	predicted := bestPrice * h
	actual := bumped.Utility - base.Utility
	if math.Abs(predicted-actual) > 1e-6 {
		t.Fatalf("price %g predicts Δ %g, measured %g", bestPrice, predicted, actual)
	}
}
