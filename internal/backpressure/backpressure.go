// Package backpressure implements the baseline algorithm the paper
// compares against in §6: the buffer/potential-based local-control
// scheme of the authors' earlier work (ref. [6], an Awerbuch–Leighton
// style multicommodity-flow algorithm generalized to stream processing
// with shrinkage).
//
// Reference [6] is summarized but not fully specified in this paper;
// this reconstruction matches every property §6 states (see DESIGN.md
// §6 "Back-pressure reconstruction"):
//
//   - each node maintains local buffers per commodity and a potential
//     function over buffer levels;
//   - each iteration a node only learns its neighbors' buffer levels —
//     O(1) message exchanges, all nodes in parallel;
//   - the node then allocates its resource to the transfers that reduce
//     the potential the most;
//   - the long-run delivered rate approaches the optimum, but orders of
//     magnitude more slowly than the gradient algorithm.
//
// The algorithm runs on the extended graph (single resource per node)
// with the dummy difference links excluded: admission control comes
// from a capped source buffer whose overflow is dropped, not from
// explicit rejection routing. Buffers and transfer scans use each
// commodity's Subgraph local indexing, with a per-node inverted list of
// (commodity, local node) pairs standing in for the old dense
// member-adjacency scans.
package backpressure

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Config tunes the baseline.
type Config struct {
	// BufferCap bounds every source (dummy) buffer; arrivals beyond it
	// are dropped — this is the admission control. Sustaining a rate r
	// across an L-hop path against damped transfers needs queue
	// differentials summing to ~r·L/Damping, so the cap must scale
	// with L/ε (the classic Awerbuch–Leighton trade-off). The default
	// 1600·L makes the long-run plateau clear 95%-of-optimal on the §6
	// instances at the cost of the slow convergence Figure 4 shows.
	BufferCap float64
	// Damping scales every balancing transfer. The Awerbuch–Leighton
	// analysis moves only a Θ(1/L) share of each queue imbalance per
	// round (L = longest path) to keep the potential argument sound
	// under contention; the default 1/(2·L) follows that scaling and
	// is what makes the baseline need the ~100× more iterations §6
	// reports. Set to 1 for the undamped greedy variant.
	Damping float64
	// Recorder, when non-nil, receives per-iteration events and message
	// counts. Nil (the default) costs nothing on the hot path.
	Recorder *obs.Recorder
}

func (c *Config) setDefaults(x *transform.Extended) {
	depth := 1
	for j := range x.Commodities {
		if l := x.Sub[j].Depth(); l > depth {
			depth = l
		}
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 1600 * float64(depth)
	}
	if c.Damping <= 0 {
		c.Damping = 1 / float64(2*depth)
	}
}

// StepInfo measures one iteration.
type StepInfo struct {
	Iteration int
	// Delivered[j] is the commodity-j flow delivered to its sink this
	// iteration, converted to source units (divided by g_sink).
	Delivered []float64
	// Cumulative is the paper's "Cumulative System Utility": the
	// weighted delivered volume so far divided by elapsed iterations.
	Cumulative float64
	// Messages is the neighbor buffer-level exchanges this iteration.
	Messages int
}

// visit is one entry of a node's inverted member list: commodity j is
// present at this node with local node index ln in X.Sub[j].
type visit struct {
	j  int32
	ln int32
}

// Engine is the back-pressure runtime.
type Engine struct {
	X   *transform.Extended
	cfg Config

	// q[j][ln]: commodity-j buffer at member node ln (X.Sub[j] local
	// indexing), in node-local input units.
	q [][]float64
	// at[n] lists the commodities present at extended node n in
	// ascending commodity order, so a per-node scan visits (j asc,
	// member out-edge asc) — the same order as the old dense scan.
	at [][]visit
	// gSink[j] converts sink-unit arrivals back to source units.
	gSink []float64
	// weight[j] values one source unit of commodity j (U'_j(0); exact
	// for the linear utilities §6 uses).
	weight []float64

	iter           int
	totalDelivered []float64 // source units per commodity
	totalMessages  int
}

// New prepares a back-pressure engine.
func New(x *transform.Extended, cfg Config) *Engine {
	cfg.setDefaults(x)
	nc := x.NumCommodities()
	e := &Engine{
		X:              x,
		cfg:            cfg,
		q:              make([][]float64, nc),
		at:             make([][]visit, x.G.NumNodes()),
		gSink:          make([]float64, nc),
		weight:         make([]float64, nc),
		totalDelivered: make([]float64, nc),
	}
	for j := 0; j < nc; j++ {
		sg := &x.Sub[j]
		e.q[j] = make([]float64, sg.NumNodes())
		for ln, n := range sg.Nodes {
			e.at[n] = append(e.at[n], visit{j: int32(j), ln: int32(ln)})
		}
		e.gSink[j] = sinkPotential(x, j)
		e.weight[j] = x.Commodities[j].Utility.Deriv(0)
	}
	return e
}

// sinkPotential computes g_sink(j): the β path-product from the dummy
// node to the sink over member edges (well defined by Property 1).
func sinkPotential(x *transform.Extended, j int) float64 {
	sg := &x.Sub[j]
	g := make([]float64, sg.NumNodes())
	g[sg.Dummy] = 1
	for _, ln := range sg.Topo {
		if g[ln] == 0 {
			continue
		}
		for _, le := range sg.Out(ln) {
			if le == sg.DiffLink {
				continue
			}
			if head := sg.Head[le]; g[head] == 0 {
				g[head] = g[ln] * sg.Beta[le]
			}
		}
	}
	if g[sg.Sink] == 0 {
		return 1
	}
	return g[sg.Sink]
}

// transfer is one candidate (commodity, edge) move considered by a
// node's local allocation.
type transfer struct {
	j  int32
	le int32        // local edge index in X.Sub[j]
	e  graph.EdgeID // global edge ID, for deterministic tie-breaks
	// gain is the potential decrease per unit of node resource spent:
	// (q_tail − β·q_head)/c under the quadratic potential Σ q²/2.
	gain float64
	// want is the potential-minimizing transfer along this edge in
	// isolation: arg min over x of the quadratic potential change
	// −q_t·x + β·q_h·x + (1+β²)x²/2, i.e. (q_t − β·q_h)/(1+β²).
	// Moving only this much (instead of the whole buffer) is the
	// Awerbuch–Leighton balancing step that [6] builds on; it is what
	// makes back-pressure's convergence diffusive and slow (§6's
	// ~100,000 iterations) while remaining provably optimal in the
	// long run.
	want float64
}

// Step runs one synchronous iteration: inject, exchange buffer levels,
// allocate each node's resource greedily by potential drop, apply the
// transfers, drain sinks.
func (e *Engine) Step() StepInfo {
	x := e.X
	nc := x.NumCommodities()

	// Inject λ_j at the dummy buffers, dropping overflow (admission).
	for j := 0; j < nc; j++ {
		c := &x.Commodities[j]
		sg := &x.Sub[j]
		e.q[j][sg.Dummy] = math.Min(e.q[j][sg.Dummy]+c.MaxRate, e.cfg.BufferCap)
	}

	// Snapshot buffer levels: every node decides on its neighbors'
	// *previous* levels, which is exactly what the one-round buffer
	// exchange provides.
	snapshot := make([][]float64, nc)
	for j := 0; j < nc; j++ {
		snapshot[j] = append([]float64(nil), e.q[j]...)
	}

	delivered := make([]float64, nc)
	messages := 0
	for n := 0; n < x.G.NumNodes(); n++ {
		node := graph.NodeID(n)
		capacity := x.Capacity[n]
		if x.G.OutDegree(node) == 0 {
			continue
		}

		// Collect positive-gain transfer options.
		var options []transfer
		for _, v := range e.at[n] {
			sg := &x.Sub[v.j]
			for _, le := range sg.Out(v.ln) {
				if le == sg.DiffLink {
					continue
				}
				messages++ // head told this tail its buffer level
				if snapshot[v.j][v.ln] <= 0 {
					continue
				}
				beta := sg.Beta[le]
				gain := snapshot[v.j][v.ln] - beta*snapshot[v.j][sg.Head[le]]
				if gain <= 0 {
					continue
				}
				options = append(options, transfer{
					j:    v.j,
					le:   le,
					e:    sg.Edges[le],
					gain: gain / sg.Cost[le],
					want: e.cfg.Damping * gain / (1 + beta*beta),
				})
			}
		}
		if len(options) == 0 {
			continue
		}
		sort.Slice(options, func(a, b int) bool {
			if options[a].gain != options[b].gain {
				return options[a].gain > options[b].gain
			}
			return options[a].e < options[b].e // deterministic ties
		})

		// Greedy fractional allocation of the node's resource.
		remaining := capacity
		avail := make([]float64, nc)
		for _, v := range e.at[n] {
			avail[v.j] = snapshot[v.j][v.ln]
		}
		for _, opt := range options {
			if remaining <= 0 && !math.IsInf(capacity, 1) {
				break
			}
			sg := &x.Sub[opt.j]
			cost := sg.Cost[opt.le]
			amount := math.Min(avail[opt.j], opt.want)
			if !math.IsInf(capacity, 1) {
				amount = math.Min(amount, remaining/cost)
			}
			if amount <= 0 {
				continue
			}
			head := sg.Head[opt.le]
			out := amount * sg.Beta[opt.le]
			e.q[opt.j][sg.Tail[opt.le]] -= amount
			avail[opt.j] -= amount
			if head == sg.Sink {
				delivered[opt.j] += out / e.gSink[opt.j]
			} else {
				e.q[opt.j][head] += out
			}
			if !math.IsInf(capacity, 1) {
				remaining -= amount * cost
			}
		}
	}

	e.iter++
	e.totalMessages += messages
	cum := 0.0
	for j := 0; j < nc; j++ {
		e.totalDelivered[j] += delivered[j]
		cum += e.weight[j] * e.totalDelivered[j]
	}
	info := StepInfo{
		Iteration:  e.iter - 1,
		Delivered:  delivered,
		Cumulative: cum / float64(e.iter),
		Messages:   messages,
	}
	// The buffer-based scheme never exceeds capacities by construction,
	// so the iterate is always feasible; "utility" is the cumulative
	// delivered utility §6 plots.
	e.cfg.Recorder.Iteration("backpressure", info.Iteration, info.Cumulative, 0, info.Delivered, true)
	e.cfg.Recorder.Protocol("backpressure", info.Iteration, messages, 1)
	return info
}

// Run executes n iterations, recording every sampleEvery-th StepInfo
// (sampleEvery ≤ 1 records all); the final iteration is always
// recorded.
func (e *Engine) Run(n, sampleEvery int) []StepInfo {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var trace []StepInfo
	for i := 0; i < n; i++ {
		info := e.Step()
		if i%sampleEvery == 0 || i == n-1 {
			trace = append(trace, info)
		}
	}
	return trace
}

// Buffers exposes a copy of the commodity-j buffer levels indexed by
// extended node ID (for tests); non-member nodes report zero.
func (e *Engine) Buffers(j int) []float64 {
	out := make([]float64, e.X.G.NumNodes())
	for ln, n := range e.X.Sub[j].Nodes {
		out[n] = e.q[j][ln]
	}
	return out
}

// TotalMessages reports buffer-level exchanges across all iterations.
func (e *Engine) TotalMessages() int { return e.totalMessages }

// AverageRate returns the long-run admitted/delivered rate of commodity
// j in source units per iteration.
func (e *Engine) AverageRate(j int) float64 {
	if e.iter == 0 {
		return 0
	}
	return e.totalDelivered[j] / float64(e.iter)
}
