package backpressure

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// chain builds dummy → src → bw → sink with the given parameters.
func chain(t *testing.T, srcCap, bw, lambda, beta, cost float64) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", srcCap)
	sink, _ := net.AddSink("sink")
	e, _ := net.AddLink(src, sink, bw)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, lambda, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e, stream.EdgeParams{Beta: beta, Cost: cost}); err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestDeliversUnconstrainedRate(t *testing.T) {
	// Capacity far above λ: the long-run delivered rate must approach λ.
	x := chain(t, 1000, 1000, 5, 1, 1)
	e := New(x, Config{Damping: 0.5, BufferCap: 100})
	e.Run(4000, 0)
	if got := e.AverageRate(0); math.Abs(got-5) > 0.3 {
		t.Fatalf("average delivered rate = %g, want ≈ 5", got)
	}
}

func TestAdmissionControlUnderOverload(t *testing.T) {
	// λ = 50 into capacity 10 (cost 1): sustained delivery can never
	// exceed 10; the source buffer cap sheds the rest.
	// Sustaining rate r over the 3-hop extended chain with damping d
	// needs a source buffer of ~2·3·r/d, so cap 400 supports up to ~33.
	x := chain(t, 10, 1000, 50, 1, 1)
	e := New(x, Config{Damping: 0.5, BufferCap: 400})
	e.Run(8000, 0)
	rate := e.AverageRate(0)
	if rate > 10+1e-6 {
		t.Fatalf("delivered %g exceeds capacity 10", rate)
	}
	if rate < 8.5 {
		t.Fatalf("delivered %g, want close to capacity 10", rate)
	}
}

func TestShrinkageConversionToSourceUnits(t *testing.T) {
	// β = 2 on the processing edge: 1 source unit arrives at the sink
	// as 2 sink units. AverageRate reports source units, so it is
	// bounded by λ = 3 and approaches it.
	x := chain(t, 1000, 1000, 3, 2, 1)
	e := New(x, Config{Damping: 0.5, BufferCap: 100})
	e.Run(5000, 0)
	rate := e.AverageRate(0)
	if rate > 3+1e-6 {
		t.Fatalf("source-unit rate %g exceeds λ = 3 (g_sink conversion broken)", rate)
	}
	if rate < 2.5 {
		t.Fatalf("rate = %g, want ≈ 3", rate)
	}
}

func TestBuffersStayNonNegativeAndBounded(t *testing.T) {
	x := chain(t, 10, 8, 50, 1, 1)
	e := New(x, Config{Damping: 0.5, BufferCap: 60})
	for i := 0; i < 2000; i++ {
		e.Step()
	}
	for _, q := range e.Buffers(0) {
		if q < -1e-9 {
			t.Fatalf("negative buffer %g", q)
		}
		if q > 1e6 {
			t.Fatalf("buffer %g blew up", q)
		}
	}
}

func TestCumulativeUtilityMonotoneAfterWarmup(t *testing.T) {
	// The paper's Figure 4 shows the cumulative utility increasing
	// monotonically; verify after a short warmup (before any delivery
	// the ratio is 0 and flat).
	x := chain(t, 20, 20, 50, 1, 1)
	e := New(x, Config{Damping: 0.25, BufferCap: 200})
	trace := e.Run(3000, 0)
	prev := -1.0
	for _, info := range trace[100:] {
		if info.Cumulative < prev-0.15 {
			t.Fatalf("cumulative utility dropped at iter %d: %g -> %g",
				info.Iteration, prev, info.Cumulative)
		}
		if info.Cumulative > prev {
			prev = info.Cumulative
		}
	}
}

func TestMessagesPerIterationConstant(t *testing.T) {
	// O(1) message exchanges per iteration: the count is the same every
	// iteration (buffer levels of every member edge's head).
	x := chain(t, 10, 10, 5, 1, 1)
	e := New(x, Config{})
	first := e.Step().Messages
	for i := 0; i < 10; i++ {
		if got := e.Step().Messages; got != first {
			t.Fatalf("message count varies: %d vs %d", got, first)
		}
	}
	if first == 0 {
		t.Fatal("no messages counted")
	}
	if e.TotalMessages() != 11*first {
		t.Fatalf("TotalMessages = %d, want %d", e.TotalMessages(), 11*first)
	}
}

// multiPath builds src -> {a,b} -> sink where path a is far cheaper.
func multiPath(t *testing.T) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 1000)
	a, _ := net.AddServer("a", 100)
	b, _ := net.AddServer("b", 100)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 1000)
	e2, _ := net.AddLink(src, b, 1000)
	e3, _ := net.AddLink(a, sink, 1000)
	e4, _ := net.AddLink(b, sink, 1000)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 30, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for e, cost := range map[graph.EdgeID]float64{e1: 1, e2: 1, e3: 1, e4: 10} {
		if err := p.SetEdge(c, e, stream.EdgeParams{Beta: 1, Cost: cost}); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestApproachesLPOptimum(t *testing.T) {
	x := multiPath(t)
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 5-hop extended path sustains rate d·cap/(2·hops); cap 1500
	// with d = 0.5 supports 75 ≫ the LP optimum 30.
	e := New(x, Config{Damping: 0.5, BufferCap: 1500})
	var last StepInfo
	for i := 0; i < 20000; i++ {
		last = e.Step()
	}
	if last.Cumulative < 0.9*ref.Utility {
		t.Fatalf("cumulative = %g, want ≥ 90%% of LP optimum %g", last.Cumulative, ref.Utility)
	}
	if last.Cumulative > ref.Utility+1e-6 {
		t.Fatalf("cumulative = %g exceeds the optimum %g", last.Cumulative, ref.Utility)
	}
}

func TestDampingSlowsConvergence(t *testing.T) {
	// The §6 shape hinges on this: smaller damping (the provable AL
	// regime) needs more iterations to the same cumulative utility.
	x := multiPath(t)
	fast := New(x, Config{Damping: 0.5, BufferCap: 300})
	slow := New(x, Config{Damping: 0.05, BufferCap: 300})
	var fastCum, slowCum float64
	for i := 0; i < 4000; i++ {
		fastCum = fast.Step().Cumulative
		slowCum = slow.Step().Cumulative
	}
	if slowCum >= fastCum {
		t.Fatalf("damped run (%g) not slower than undamped (%g)", slowCum, fastCum)
	}
}

func TestRunSampling(t *testing.T) {
	x := chain(t, 10, 10, 5, 1, 1)
	e := New(x, Config{})
	trace := e.Run(100, 10)
	if len(trace) != 11 { // 0,10,...,90 plus final 99
		t.Fatalf("trace length = %d, want 11", len(trace))
	}
	if trace[len(trace)-1].Iteration != 99 {
		t.Fatalf("final sample iteration = %d, want 99", trace[len(trace)-1].Iteration)
	}
}

func TestDefaultsScaleWithDepth(t *testing.T) {
	x := chain(t, 10, 10, 5, 1, 1)
	cfg := Config{}
	cfg.setDefaults(x)
	// Extended chain depth: dummy→src→bw→sink = 3 edges.
	if cfg.Damping != 1.0/6 {
		t.Fatalf("default damping = %g, want 1/6", cfg.Damping)
	}
	if cfg.BufferCap != 4800 {
		t.Fatalf("default buffer cap = %g, want 4800", cfg.BufferCap)
	}
}
