package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDecomposeRatesSumToLambda(t *testing.T) {
	x := randomInstance(t, 11)
	r := rand.New(rand.NewSource(99))
	rt := randomRouting(x, r)
	u := Evaluate(rt)
	for j := range x.Commodities {
		paths, err := DecomposePaths(u, j)
		if err != nil {
			t.Fatal(err)
		}
		total, rejected := 0.0, 0.0
		for _, p := range paths {
			if p.Rate <= 0 {
				t.Fatalf("non-positive path rate %g", p.Rate)
			}
			total += p.Rate
			if p.ViaDiffLink {
				rejected += p.Rate
			}
		}
		lambda := x.Commodities[j].MaxRate
		if math.Abs(total-lambda) > 1e-6*(1+lambda) {
			t.Fatalf("commodity %d: path rates sum to %g, want λ = %g", j, total, lambda)
		}
		if math.Abs(rejected-u.RejectedRate(j)) > 1e-6*(1+lambda) {
			t.Fatalf("commodity %d: rejected paths carry %g, want %g", j, rejected, u.RejectedRate(j))
		}
	}
}

func TestDecomposePathsAreConnected(t *testing.T) {
	x := randomInstance(t, 4)
	r := rand.New(rand.NewSource(5))
	rt := randomRouting(x, r)
	u := Evaluate(rt)
	for j := range x.Commodities {
		c := &x.Commodities[j]
		paths, err := DecomposePaths(u, j)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatal("no paths")
		}
		for _, p := range paths {
			if p.Nodes[0] != c.Dummy || p.Nodes[len(p.Nodes)-1] != c.Sink {
				t.Fatalf("path %v does not run dummy→sink", p.Nodes)
			}
			for i := 0; i+1 < len(p.Nodes); i++ {
				e := x.G.EdgeBetween(p.Nodes[i], p.Nodes[i+1])
				if e == graph.Invalid || !x.MemberEdge(j, e) {
					t.Fatalf("path hop %d→%d not a member edge", p.Nodes[i], p.Nodes[i+1])
				}
			}
		}
	}
}

func TestDecomposeDeliveredMatchesBetaProduct(t *testing.T) {
	x := randomInstance(t, 8)
	r := rand.New(rand.NewSource(21))
	rt := randomRouting(x, r)
	u := Evaluate(rt)
	for j := range x.Commodities {
		paths, err := DecomposePaths(u, j)
		if err != nil {
			t.Fatal(err)
		}
		// Delivered (non-rejected) path rates must add to DeliveredRate.
		sum := 0.0
		for _, p := range paths {
			if !p.ViaDiffLink {
				sum += p.DeliveredRate
			}
		}
		if want := u.DeliveredRate(j); math.Abs(sum-want) > 1e-6*(1+want) {
			t.Fatalf("commodity %d: delivered path rates %g, want %g", j, sum, want)
		}
	}
}

func TestDecomposeFullRejection(t *testing.T) {
	x := randomInstance(t, 3)
	rt := NewInitial(x) // everything rejected
	u := Evaluate(rt)
	paths, err := DecomposePaths(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].ViaDiffLink {
		t.Fatalf("want exactly the rejection path, got %d paths", len(paths))
	}
	if math.Abs(paths[0].Rate-x.Commodities[0].MaxRate) > 1e-9 {
		t.Fatalf("rejection path rate %g, want λ", paths[0].Rate)
	}
}

func TestQuickDecomposeCoversAllEdgesWithinBound(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0x70))
		rt := randomRouting(x, r)
		u := Evaluate(rt)
		for j := range x.Commodities {
			paths, err := DecomposePaths(u, j)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			// Classic decomposition bound: at most |E| paths.
			if len(paths) > x.G.NumEdges() {
				return false
			}
			// Reconstruct per-edge input rates from the paths and
			// compare with the evaluation.
			rebuilt := make([]float64, x.G.NumEdges())
			for _, p := range paths {
				carried := p.Rate // source units
				for i := 0; i+1 < len(p.Nodes); i++ {
					e := x.G.EdgeBetween(p.Nodes[i], p.Nodes[i+1])
					rebuilt[e] += carried
					carried *= x.EdgeBeta(j, e)
				}
			}
			for _, e := range x.MemberEdges(j) {
				tail := x.G.Edge(e).From
				want := u.TAt(j, tail) * rt.At(j, e)
				if math.Abs(rebuilt[e]-want) > 1e-6*(1+want) {
					t.Logf("seed %d commodity %d edge %d: rebuilt %g, want %g", seed, j, e, rebuilt[e], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
