package flow

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// buildTwoPath returns the extended form of src -> {a,b} -> sink with
// shrinkage consistent with Property 1 (path product 2).
func buildTwoPath(t *testing.T) *transform.Extended {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 10)
	a, _ := net.AddServer("a", 8)
	b, _ := net.AddServer("b", 6)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 20)
	e2, _ := net.AddLink(src, b, 30)
	e3, _ := net.AddLink(a, sink, 40)
	e4, _ := net.AddLink(b, sink, 50)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 5, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for e, params := range map[graph.EdgeID]stream.EdgeParams{
		e1: {Beta: 0.5, Cost: 2},
		e2: {Beta: 2, Cost: 3},
		e3: {Beta: 4, Cost: 1},
		e4: {Beta: 1, Cost: 5},
	} {
		if err := p.SetEdge(c, e, params); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestNewInitialRoutesEverythingToDiffLink(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	c := &x.Commodities[0]
	if r.At(0, c.DiffLink) != 1 {
		t.Fatalf("phi(diff) = %g, want 1", r.At(0, c.DiffLink))
	}
	if r.At(0, c.InputLink) != 0 {
		t.Fatalf("phi(input) = %g, want 0", r.At(0, c.InputLink))
	}
	u := Evaluate(r)
	if got := u.AdmittedRate(0); got != 0 {
		t.Fatalf("admitted = %g, want 0", got)
	}
	if got := u.RejectedRate(0); got != 5 {
		t.Fatalf("rejected = %g, want 5", got)
	}
	if got := u.Utility(); got != 0 {
		t.Fatalf("utility = %g, want 0", got)
	}
	// Rejecting all of λ costs the full utility: Y = U(5) = 5.
	if got := u.UtilityLoss(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("loss = %g, want 5", got)
	}
}

func TestInitialInteriorUniform(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	// src has two member out-edges (toward bw nodes of e1, e2).
	src := x.Commodities[0].Source
	var phis []float64
	for _, e := range x.G.Out(src) {
		if x.MemberEdge(0, e) {
			phis = append(phis, r.At(0, e))
		}
	}
	if len(phis) != 2 || phis[0] != 0.5 || phis[1] != 0.5 {
		t.Fatalf("src phis = %v, want [0.5 0.5]", phis)
	}
}

func TestValidateCatchesBadRouting(t *testing.T) {
	x := buildTwoPath(t)

	r := NewInitial(x)
	r.SetAt(0, x.Commodities[0].DiffLink, 0.7) // sums to 0.7 at dummy
	if err := r.Validate(); err == nil {
		t.Fatal("unnormalized phi accepted")
	}

	r = NewInitial(x)
	r.SetAt(0, x.Commodities[0].DiffLink, -0.2)
	if err := r.Validate(); err == nil {
		t.Fatal("negative phi accepted")
	}

	// phi on a non-member edge is unrepresentable in the sparse rows:
	// SetAt must refuse it outright.
	r = NewInitial(x)
	for e := 0; e < x.G.NumEdges(); e++ {
		if !x.MemberEdge(0, graph.EdgeID(e)) {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("SetAt on a non-member edge did not panic")
					}
				}()
				r.SetAt(0, graph.EdgeID(e), 0.5)
			}()
			return
		}
	}
	t.Skip("all edges are member edges in this instance")
}

// setSplit routes fraction p of the admitted flow via path a.
func setSplit(x *transform.Extended, r *Routing, admit, viaA float64) {
	c := &x.Commodities[0]
	r.SetAt(0, c.InputLink, admit)
	r.SetAt(0, c.DiffLink, 1-admit)
	src := c.Source
	outs := memberOuts(x, 0, src)
	r.SetAt(0, outs[0], viaA)
	r.SetAt(0, outs[1], 1-viaA)
}

func memberOuts(x *transform.Extended, j int, n graph.NodeID) []graph.EdgeID {
	var outs []graph.EdgeID
	for _, e := range x.G.Out(n) {
		if x.MemberEdge(j, e) {
			outs = append(outs, e)
		}
	}
	return outs
}

func TestEvaluateFlowBalanceWithShrinkage(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	setSplit(x, r, 0.6, 1.0) // admit 3, all via a
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	u := Evaluate(r)

	if got := u.AdmittedRate(0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("admitted = %g, want 3", got)
	}
	// Path src -(β=0.5)-> a -(β=4)-> sink: t(a) = 3·0.5 = 1.5,
	// delivered = 1.5·4 = 6 (sink units).
	aNode, _ := nodeByName(x, "a")
	if got := u.TAt(0, aNode); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("t(a) = %g, want 1.5", got)
	}
	if got := u.DeliveredRate(0); math.Abs(got-6) > 1e-12 {
		t.Fatalf("delivered = %g, want 6 = g_sink·a", got)
	}
	// Utility counts source units.
	if got := u.Utility(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("utility = %g, want 3", got)
	}
}

func nodeByName(x *transform.Extended, name string) (graph.NodeID, bool) {
	for n, got := range x.Names {
		if got == name {
			return graph.NodeID(n), true
		}
	}
	return graph.Invalid, false
}

func TestEvaluateResourceUsage(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	setSplit(x, r, 0.6, 1.0) // admit 3 via a
	u := Evaluate(r)

	// src processes 3 units toward a at cost 2/unit: f(src) = 6.
	src := x.Commodities[0].Source
	if got := u.FNode[src]; math.Abs(got-6) > 1e-12 {
		t.Fatalf("f(src) = %g, want 6", got)
	}
	// Wire src->a carries 3·0.5 = 1.5 units; bandwidth node usage 1.5.
	bw, ok := nodeByName(x, "bw:src>a")
	if !ok {
		t.Fatal("bandwidth node missing")
	}
	if got := u.FNode[bw]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("f(bw src>a) = %g, want 1.5", got)
	}
	// a processes t(a)=1.5 units at cost 1: f(a) = 1.5.
	aNode, _ := nodeByName(x, "a")
	if got := u.FNode[aNode]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("f(a) = %g, want 1.5", got)
	}
}

func TestFeasible(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	setSplit(x, r, 0.6, 1.0)
	u := Evaluate(r)
	ok, slack := u.Feasible()
	if !ok {
		t.Fatal("feasible flow reported infeasible")
	}
	// src: f=6 of C=10 -> slack 0.4 is the minimum across nodes here.
	if math.Abs(slack-0.4) > 1e-9 {
		t.Fatalf("slack = %g, want 0.4", slack)
	}

	// Admit everything via a: f(src) = 5·2 = 10 = C -> infeasible edge.
	setSplit(x, r, 1.0, 1.0)
	u = Evaluate(r)
	if _, slack := u.Feasible(); slack > 1e-9 {
		t.Fatalf("slack = %g, want <= 0", slack)
	}
}

func TestTotalCostDecomposition(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	setSplit(x, r, 0.6, 0.5)
	u := Evaluate(r)
	if got, want := u.TotalCost(), u.UtilityLoss()+u.PenaltyCost(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalCost = %g, want Y+εD = %g", got, want)
	}
	// Loss of rejecting 2 of λ=5 under slope-1 linear utility is 2.
	if got := u.UtilityLoss(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Y = %g, want 2", got)
	}
	if u.PenaltyCost() <= 0 {
		t.Fatal("penalty cost should be positive with flow in the network")
	}
}

func TestUtilityLossPlusUtilityIsConstant(t *testing.T) {
	// U(a) + Y(λ−a) = U(λ) for every admitted rate: check across splits.
	x := buildTwoPath(t)
	for _, admit := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r := NewInitial(x)
		setSplit(x, r, admit, 0.5)
		u := Evaluate(r)
		got := u.Utility() + u.UtilityLoss()
		if math.Abs(got-5) > 1e-9 {
			t.Fatalf("admit=%g: U+Y = %g, want U(λ) = 5", admit, got)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := buildTwoPath(t)
	r := NewInitial(x)
	c := r.Clone()
	c.Phi[0][0] = 0.123
	if r.Phi[0][0] == 0.123 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestTwoCommoditySharedNode(t *testing.T) {
	// Two commodities share server "mid"; per-commodity usage adds up.
	net := stream.NewNetwork()
	s1, _ := net.AddServer("s1", 10)
	s2, _ := net.AddServer("s2", 10)
	mid, _ := net.AddServer("mid", 10)
	k1, _ := net.AddSink("k1")
	k2, _ := net.AddSink("k2")
	a1, _ := net.AddLink(s1, mid, 100)
	a2, _ := net.AddLink(s2, mid, 100)
	b1, _ := net.AddLink(mid, k1, 100)
	b2, _ := net.AddLink(mid, k2, 100)
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("C1", s1, k1, 4, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.AddCommodity("C2", s2, k2, 4, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.EdgeID{a1, b1} {
		if err := p.SetEdge(c1, e, stream.EdgeParams{Beta: 1, Cost: 2}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []graph.EdgeID{a2, b2} {
		if err := p.SetEdge(c2, e, stream.EdgeParams{Beta: 1, Cost: 3}); err != nil {
			t.Fatal(err)
		}
	}
	x, err := transform.Build(p, transform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewInitial(x)
	for j := range x.Commodities {
		c := &x.Commodities[j]
		r.SetAt(j, c.InputLink, 0.5)
		r.SetAt(j, c.DiffLink, 0.5)
	}
	u := Evaluate(r)
	// Each commodity admits 2; at mid both are processed at their own
	// cost: f(mid) = 2·2 + 2·3 = 10.
	midExt := graph.NodeID(mid)
	if got := u.FNode[midExt]; math.Abs(got-10) > 1e-12 {
		t.Fatalf("f(mid) = %g, want 10", got)
	}
}
