package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// PathFlow is one path of a flow decomposition, with the rate it
// carries expressed in source units (the rate leaving the dummy node
// along this path). The rate arriving at the path's last node is
// Rate times the β product along the path.
type PathFlow struct {
	Nodes []graph.NodeID
	// Rate in source units.
	Rate float64
	// DeliveredRate at the path's end (Rate × Π β).
	DeliveredRate float64
	// ViaDiffLink marks the rejection path (dummy → sink directly).
	ViaDiffLink bool
}

// decomposeEps is the rate below which residual flow is considered
// numerical noise and dropped during decomposition.
const decomposeEps = 1e-9

// DecomposePaths performs a flow decomposition of commodity j's
// evaluated flow into at most |member edges| source→sink paths.
// Shrinkage is handled by measuring every edge's residual in *source
// units*: edge e with tail potential g_tail carries y_e = t·φ input
// units, which is y_e/g_tail source units. The decomposition greedily
// extracts the widest-first path until everything is assigned; on a DAG
// this always terminates with each edge's flow fully covered. All work
// is over commodity j's member subgraph — O(member), not O(n+m) — with
// path nodes reported as extended (global) node IDs.
//
// The rejected share (dummy → sink over the difference link) comes out
// as one path with ViaDiffLink set, so the returned rates always sum to
// λ_j.
func DecomposePaths(u *Usage, j int) ([]PathFlow, error) {
	x := u.R.X
	sg := &x.Sub[j]
	ne := sg.NumEdges()

	// Residual per member edge, in source units. g is the potential (β
	// path product from the dummy), well defined by Property 1.
	g := make([]float64, sg.NumNodes())
	g[sg.Dummy] = 1
	for _, ln := range sg.Topo {
		if g[ln] == 0 {
			continue
		}
		for _, le := range sg.Out(ln) {
			if le == sg.DiffLink {
				continue
			}
			head := sg.Head[le]
			if g[head] == 0 {
				g[head] = g[ln] * sg.Beta[le]
			}
		}
	}
	residual := make([]float64, ne)
	for le := int32(0); le < int32(ne); le++ {
		tail := sg.Tail[le]
		inputRate := u.T[j][tail] * u.R.Phi[j][le]
		if g[tail] > 0 {
			residual[le] = inputRate / g[tail]
		}
	}

	var paths []PathFlow
	for iter := 0; iter <= ne; iter++ {
		// Follow the widest positive-residual edge from the dummy.
		var (
			nodes  = []graph.NodeID{x.Commodities[j].Dummy}
			edges  []int32
			rate   = math.Inf(1)
			viaDif = false
		)
		node := sg.Dummy
		for node != sg.Sink {
			best := int32(-1)
			width := decomposeEps
			for _, le := range sg.Out(node) {
				if residual[le] > width {
					width = residual[le]
					best = le
				}
			}
			if best < 0 {
				if node == sg.Dummy {
					// All flow decomposed.
					return paths, nil
				}
				return nil, fmt.Errorf("flow: decompose: stranded at node %d (flow balance violated?)", sg.Nodes[node])
			}
			if residual[best] < rate {
				rate = residual[best]
			}
			if best == sg.DiffLink {
				viaDif = true
			}
			edges = append(edges, best)
			node = sg.Head[best]
			nodes = append(nodes, sg.Nodes[node])
		}
		for _, le := range edges {
			residual[le] -= rate
		}
		delivered := rate
		for _, le := range edges {
			delivered *= sg.Beta[le]
		}
		paths = append(paths, PathFlow{
			Nodes:         nodes,
			Rate:          rate,
			DeliveredRate: delivered,
			ViaDiffLink:   viaDif,
		})
	}
	return nil, fmt.Errorf("flow: decompose: did not terminate in %d paths", ne)
}
