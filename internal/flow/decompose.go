package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// PathFlow is one path of a flow decomposition, with the rate it
// carries expressed in source units (the rate leaving the dummy node
// along this path). The rate arriving at the path's last node is
// Rate times the β product along the path.
type PathFlow struct {
	Nodes []graph.NodeID
	// Rate in source units.
	Rate float64
	// DeliveredRate at the path's end (Rate × Π β).
	DeliveredRate float64
	// ViaDiffLink marks the rejection path (dummy → sink directly).
	ViaDiffLink bool
}

// decomposeEps is the rate below which residual flow is considered
// numerical noise and dropped during decomposition.
const decomposeEps = 1e-9

// DecomposePaths performs a flow decomposition of commodity j's
// evaluated flow into at most |E| source→sink paths. Shrinkage is
// handled by measuring every edge's residual in *source units*: edge e
// with tail potential g_tail carries y_e = t·φ input units, which is
// y_e/g_tail source units. The decomposition greedily extracts the
// widest-first path until everything is assigned; on a DAG this always
// terminates with each edge's flow fully covered.
//
// The rejected share (dummy → sink over the difference link) comes out
// as one path with ViaDiffLink set, so the returned rates always sum to
// λ_j.
func DecomposePaths(u *Usage, j int) ([]PathFlow, error) {
	x := u.R.X
	c := &x.Commodities[j]
	member := x.Member[j]

	// Residual per edge, in source units. g is the potential (β path
	// product from the dummy), well defined by Property 1.
	g := make([]float64, x.G.NumNodes())
	g[c.Dummy] = 1
	for _, n := range x.Topo[j] {
		if g[n] == 0 {
			continue
		}
		for _, e := range x.G.Out(n) {
			if !member[e] || e == c.DiffLink {
				continue
			}
			head := x.G.Edge(e).To
			if g[head] == 0 {
				g[head] = g[n] * x.Beta[j][e]
			}
		}
	}
	residual := make([]float64, x.G.NumEdges())
	for e := 0; e < x.G.NumEdges(); e++ {
		if !member[e] {
			continue
		}
		tail := x.G.Edge(graph.EdgeID(e)).From
		inputRate := u.T[j][tail] * u.R.Phi[j][graph.EdgeID(e)]
		if g[tail] > 0 {
			residual[e] = inputRate / g[tail]
		}
	}

	var paths []PathFlow
	for iter := 0; iter <= x.G.NumEdges(); iter++ {
		// Follow the widest positive-residual edge from the dummy.
		var (
			nodes  = []graph.NodeID{c.Dummy}
			edges  []graph.EdgeID
			rate   = math.Inf(1)
			viaDif = false
		)
		node := c.Dummy
		for node != c.Sink {
			best := graph.EdgeID(graph.Invalid)
			width := decomposeEps
			for _, e := range x.G.Out(node) {
				if member[e] && residual[e] > width {
					width = residual[e]
					best = e
				}
			}
			if best == graph.Invalid {
				if node == c.Dummy {
					// All flow decomposed.
					return paths, nil
				}
				return nil, fmt.Errorf("flow: decompose: stranded at node %d (flow balance violated?)", node)
			}
			if residual[best] < rate {
				rate = residual[best]
			}
			if best == c.DiffLink {
				viaDif = true
			}
			edges = append(edges, best)
			node = x.G.Edge(best).To
			nodes = append(nodes, node)
		}
		for _, e := range edges {
			residual[e] -= rate
		}
		delivered := rate
		for _, e := range edges {
			delivered *= x.Beta[j][e]
		}
		paths = append(paths, PathFlow{
			Nodes:         nodes,
			Rate:          rate,
			DeliveredRate: delivered,
			ViaDiffLink:   viaDif,
		})
	}
	return nil, fmt.Errorf("flow: decompose: did not terminate in %d paths", x.G.NumEdges())
}
