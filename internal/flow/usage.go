package flow

import (
	"math"

	"repro/internal/graph"
	"repro/internal/transform"
)

// Usage is the traffic and resource state induced by a routing set:
// the unique solution of the flow-balance equations (eq. 3) plus the
// resource usage rates of eqs. (4)–(5).
type Usage struct {
	R *Routing
	// T[j][n] is t_n(j): the expected commodity-j traffic rate at node
	// n, in node-local input units.
	T [][]float64
	// FEdge[j][e] is node-resource usage from the tail of e by
	// commodity j: t_i(j)·φ_e(j)·c_e(j) (eq. 4 per commodity).
	FEdge [][]float64
	// Arrive[j][e] is the flow delivered to the head of e:
	// t_i(j)·φ_e(j)·β_e(j).
	Arrive [][]float64
	// FNode[n] is f_n = Σ_e Σ_j FEdge[j][e] over e ∈ out(n) (eq. 5).
	FNode []float64

	// Flat backing arrays of the row slices above (tBack is nc×nn,
	// feBack and arBack are nc×ne). EvaluateInto zeroes them with
	// single clear() passes instead of reallocating; they are nil for a
	// Usage assembled by hand, in which case EvaluateInto falls back to
	// row-by-row clearing.
	tBack, feBack, arBack []float64
}

// NewUsage allocates a reusable evaluation workspace for the extended
// problem x: one flat float64 array per field, row-sliced per
// commodity, so repeated EvaluateInto calls touch contiguous memory and
// allocate nothing.
func NewUsage(x *transform.Extended) *Usage {
	nn, ne, nc := x.G.NumNodes(), x.G.NumEdges(), x.NumCommodities()
	u := &Usage{
		T:      make([][]float64, nc),
		FEdge:  make([][]float64, nc),
		Arrive: make([][]float64, nc),
		FNode:  make([]float64, nn),
		tBack:  make([]float64, nc*nn),
		feBack: make([]float64, nc*ne),
		arBack: make([]float64, nc*ne),
	}
	for j := 0; j < nc; j++ {
		u.T[j] = u.tBack[j*nn : (j+1)*nn : (j+1)*nn]
		u.FEdge[j] = u.feBack[j*ne : (j+1)*ne : (j+1)*ne]
		u.Arrive[j] = u.arBack[j*ne : (j+1)*ne : (j+1)*ne]
	}
	return u
}

// Evaluate solves the flow-balance equations by a forward sweep in
// topological order of each commodity's member DAG (the routing set is
// loop-free by construction, so eq. 3 has a unique solution computable
// in one pass). It allocates a fresh Usage per call; iteration loops
// use a NewUsage workspace with EvaluateInto instead.
func Evaluate(r *Routing) *Usage {
	u := NewUsage(r.X)
	EvaluateInto(u, r)
	return u
}

// EvaluateInto runs the forward sweep into the preallocated workspace
// u, which must be shaped for r's extended problem (NewUsage). The
// workspace is zeroed and refilled; the result is bit-identical to
// Evaluate(r). After the call u.R is r.
func EvaluateInto(u *Usage, r *Routing) {
	x := r.X
	nn, nc := x.G.NumNodes(), x.NumCommodities()
	if len(u.FNode) != nn || len(u.T) != nc {
		panic("flow: EvaluateInto workspace shaped for a different extended problem")
	}
	if u.tBack != nil {
		clear(u.tBack)
		clear(u.feBack)
		clear(u.arBack)
	} else {
		for j := 0; j < nc; j++ {
			clear(u.T[j])
			clear(u.FEdge[j])
			clear(u.Arrive[j])
		}
	}
	clear(u.FNode)
	u.R = r
	for j := 0; j < nc; j++ {
		t, fe, ar := u.T[j], u.FEdge[j], u.Arrive[j]
		cost, beta, phi := x.Cost[j], x.Beta[j], r.Phi[j]
		c := &x.Commodities[j]
		t[c.Dummy] = c.MaxRate // r_i(j) of eq. 2
		for _, n := range x.Topo[j] {
			tn := t[n]
			if tn == 0 || n == c.Sink {
				continue
			}
			for _, e := range x.MemberOut(j, n) {
				p := phi[e]
				if p == 0 {
					continue
				}
				f := tn * p * cost[e]
				fe[e] = f
				a := tn * p * beta[e]
				ar[e] = a
				t[x.G.Edge(e).To] += a
				u.FNode[n] += f
			}
		}
	}
}

// AdmittedRate returns a_j: the rate the dummy node sends into the real
// network over the input link.
func (u *Usage) AdmittedRate(j int) float64 {
	c := &u.R.X.Commodities[j]
	return c.MaxRate * u.R.Phi[j][c.InputLink]
}

// RejectedRate returns λ_j − a_j, the flow on the difference link.
func (u *Usage) RejectedRate(j int) float64 {
	c := &u.R.X.Commodities[j]
	return c.MaxRate * u.R.Phi[j][c.DiffLink]
}

// Utility returns Σ_j U_j(a_j), the quantity the paper maximizes.
func (u *Usage) Utility() float64 {
	total := 0.0
	for j := range u.R.X.Commodities {
		total += u.R.X.Commodities[j].Utility.Value(u.AdmittedRate(j))
	}
	return total
}

// UtilityLoss returns Y = Σ_j Y_j(λ_j − a_j).
func (u *Usage) UtilityLoss() float64 {
	x := u.R.X
	total := 0.0
	for j := range x.Commodities {
		c := &x.Commodities[j]
		total += x.LossValue(j, c.DiffLink, u.FEdge[j][c.DiffLink])
	}
	return total
}

// PenaltyCost returns ε·D = Σ_i ε·D_i(f_i).
func (u *Usage) PenaltyCost() float64 {
	total := 0.0
	for n, f := range u.FNode {
		total += u.R.X.PenaltyValue(graph.NodeID(n), f)
	}
	return total
}

// TotalCost returns A = Y + ε·D, the objective the routing problem
// minimizes (§3).
func (u *Usage) TotalCost() float64 {
	return u.UtilityLoss() + u.PenaltyCost()
}

// Feasible reports whether every capacitated node satisfies f_i ≤ C_i
// (eq. 6), with slack reporting the minimum remaining headroom ratio
// min_i (C_i − f_i)/C_i over capacitated nodes. Under sharding the
// check is at the global operating point: own flow plus the external
// usage installed on the extended problem (nil External adds nothing).
func (u *Usage) Feasible() (ok bool, slack float64) {
	ok, slack = true, 1.0
	ext := u.R.X.External
	for n, f := range u.FNode {
		c := u.R.X.Capacity[n]
		if math.IsInf(c, 1) {
			continue
		}
		if n < len(ext) {
			f += ext[n]
		}
		s := (c - f) / c
		if s < slack {
			slack = s
		}
		if f > c+1e-9 {
			ok = false
		}
	}
	return ok, slack
}

// SharedUsage copies this routing set's flow through the shared node
// prefix (originals + bandwidth nodes) into dst, which must have length
// X.SharedNodes. This is the usage summary a shard reports to the
// price-exchange coordinator: dummy-node flow is shard-private and
// uncapacitated, so it never crosses the boundary.
func (u *Usage) SharedUsage(dst []float64) {
	if len(dst) != u.R.X.SharedNodes {
		panic("flow: SharedUsage dst not sized to SharedNodes")
	}
	copy(dst, u.FNode[:len(dst)])
}

// MergeShared sums per-shard shared-usage vectors into dst, the global
// congestion view over the shared node prefix. Parts are accumulated in
// slice order so the reduction is deterministic for a fixed shard
// ordering.
func MergeShared(dst []float64, parts ...[]float64) {
	clear(dst)
	for _, p := range parts {
		if len(p) != len(dst) {
			panic("flow: MergeShared part length mismatch")
		}
		for i, v := range p {
			dst[i] += v
		}
	}
}

// FeasibleShared reports feasibility of a merged global usage vector
// against the shared-prefix capacities of x (same tolerance and slack
// convention as Usage.Feasible, restricted to the shared nodes).
func FeasibleShared(x *transform.Extended, merged []float64) (ok bool, slack float64) {
	ok, slack = true, 1.0
	for n, f := range merged {
		c := x.Capacity[n]
		if math.IsInf(c, 1) {
			continue
		}
		s := (c - f) / c
		if s < slack {
			slack = s
		}
		if f > c+1e-9 {
			ok = false
		}
	}
	return ok, slack
}

// DeliveredRate returns the flow arriving at commodity j's sink through
// the real network (excluding the difference link), in sink units: this
// is g_sink(j)·a_j when Property 1 holds.
func (u *Usage) DeliveredRate(j int) float64 {
	x := u.R.X
	c := &x.Commodities[j]
	total := 0.0
	for _, e := range x.G.In(c.Sink) {
		if e == c.DiffLink {
			continue
		}
		total += u.Arrive[j][e]
	}
	return total
}
