package flow

import (
	"math"

	"repro/internal/graph"
)

// Usage is the traffic and resource state induced by a routing set:
// the unique solution of the flow-balance equations (eq. 3) plus the
// resource usage rates of eqs. (4)–(5).
type Usage struct {
	R *Routing
	// T[j][n] is t_n(j): the expected commodity-j traffic rate at node
	// n, in node-local input units.
	T [][]float64
	// FEdge[j][e] is node-resource usage from the tail of e by
	// commodity j: t_i(j)·φ_e(j)·c_e(j) (eq. 4 per commodity).
	FEdge [][]float64
	// Arrive[j][e] is the flow delivered to the head of e:
	// t_i(j)·φ_e(j)·β_e(j).
	Arrive [][]float64
	// FNode[n] is f_n = Σ_e Σ_j FEdge[j][e] over e ∈ out(n) (eq. 5).
	FNode []float64
}

// Evaluate solves the flow-balance equations by a forward sweep in
// topological order of each commodity's member DAG (the routing set is
// loop-free by construction, so eq. 3 has a unique solution computable
// in one pass).
func Evaluate(r *Routing) *Usage {
	x := r.X
	nn, ne, nc := x.G.NumNodes(), x.G.NumEdges(), x.NumCommodities()
	u := &Usage{
		R:      r,
		T:      make([][]float64, nc),
		FEdge:  make([][]float64, nc),
		Arrive: make([][]float64, nc),
		FNode:  make([]float64, nn),
	}
	for j := 0; j < nc; j++ {
		t := make([]float64, nn)
		fe := make([]float64, ne)
		ar := make([]float64, ne)
		c := &x.Commodities[j]
		member := x.Member[j]
		t[c.Dummy] = c.MaxRate // r_i(j) of eq. 2
		for _, n := range x.Topo[j] {
			if t[n] == 0 || n == c.Sink {
				continue
			}
			for _, e := range x.G.Out(n) {
				if !member[e] {
					continue
				}
				phi := r.Phi[j][e]
				if phi == 0 {
					continue
				}
				fe[e] = t[n] * phi * x.Cost[j][e]
				ar[e] = t[n] * phi * x.Beta[j][e]
				t[x.G.Edge(e).To] += ar[e]
			}
		}
		u.T[j] = t
		u.FEdge[j] = fe
		u.Arrive[j] = ar
		for e := 0; e < ne; e++ {
			u.FNode[x.G.Edge(graph.EdgeID(e)).From] += fe[e]
		}
	}
	return u
}

// AdmittedRate returns a_j: the rate the dummy node sends into the real
// network over the input link.
func (u *Usage) AdmittedRate(j int) float64 {
	c := &u.R.X.Commodities[j]
	return c.MaxRate * u.R.Phi[j][c.InputLink]
}

// RejectedRate returns λ_j − a_j, the flow on the difference link.
func (u *Usage) RejectedRate(j int) float64 {
	c := &u.R.X.Commodities[j]
	return c.MaxRate * u.R.Phi[j][c.DiffLink]
}

// Utility returns Σ_j U_j(a_j), the quantity the paper maximizes.
func (u *Usage) Utility() float64 {
	total := 0.0
	for j := range u.R.X.Commodities {
		total += u.R.X.Commodities[j].Utility.Value(u.AdmittedRate(j))
	}
	return total
}

// UtilityLoss returns Y = Σ_j Y_j(λ_j − a_j).
func (u *Usage) UtilityLoss() float64 {
	x := u.R.X
	total := 0.0
	for j := range x.Commodities {
		c := &x.Commodities[j]
		total += x.LossValue(j, c.DiffLink, u.FEdge[j][c.DiffLink])
	}
	return total
}

// PenaltyCost returns ε·D = Σ_i ε·D_i(f_i).
func (u *Usage) PenaltyCost() float64 {
	total := 0.0
	for n, f := range u.FNode {
		total += u.R.X.PenaltyValue(graph.NodeID(n), f)
	}
	return total
}

// TotalCost returns A = Y + ε·D, the objective the routing problem
// minimizes (§3).
func (u *Usage) TotalCost() float64 {
	return u.UtilityLoss() + u.PenaltyCost()
}

// Feasible reports whether every capacitated node satisfies f_i ≤ C_i
// (eq. 6), with slack reporting the minimum remaining headroom ratio
// min_i (C_i − f_i)/C_i over capacitated nodes.
func (u *Usage) Feasible() (ok bool, slack float64) {
	ok, slack = true, 1.0
	for n, f := range u.FNode {
		c := u.R.X.Capacity[n]
		if math.IsInf(c, 1) {
			continue
		}
		s := (c - f) / c
		if s < slack {
			slack = s
		}
		if f > c+1e-9 {
			ok = false
		}
	}
	return ok, slack
}

// DeliveredRate returns the flow arriving at commodity j's sink through
// the real network (excluding the difference link), in sink units: this
// is g_sink(j)·a_j when Property 1 holds.
func (u *Usage) DeliveredRate(j int) float64 {
	x := u.R.X
	c := &x.Commodities[j]
	total := 0.0
	for _, e := range x.G.In(c.Sink) {
		if e == c.DiffLink {
			continue
		}
		total += u.Arrive[j][e]
	}
	return total
}
