package flow

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/transform"
)

// Usage is the traffic and resource state induced by a routing set:
// the unique solution of the flow-balance equations (eq. 3) plus the
// resource usage rates of eqs. (4)–(5). Per-commodity rows use the
// commodity's Subgraph local indexing (T by local node, FEdge/Arrive by
// local edge); only FNode spans the full extended node range, because
// it accumulates cross-commodity flow at shared nodes.
type Usage struct {
	R *Routing
	// T[j][ln] is t_n(j): the expected commodity-j traffic rate at
	// member node ln (local index), in node-local input units.
	T [][]float64
	// FEdge[j][le] is node-resource usage from the tail of member edge
	// le by commodity j: t_i(j)·φ_e(j)·c_e(j) (eq. 4 per commodity).
	FEdge [][]float64
	// Arrive[j][le] is the flow delivered to the head of member edge le:
	// t_i(j)·φ_e(j)·β_e(j).
	Arrive [][]float64
	// FNode[n] is f_n = Σ_e Σ_j FEdge over e ∈ out(n) (eq. 5), indexed
	// by extended node ID.
	FNode []float64

	// Flat backing arrays of the row slices above (tBack is Σ member
	// nodes, feBack and arBack are Σ member edges). EvaluateInto zeroes
	// them with single clear() passes instead of reallocating; they are
	// nil for a Usage assembled by hand, in which case EvaluateInto
	// falls back to row-by-row clearing.
	tBack, feBack, arBack []float64
}

// NewUsage allocates a reusable evaluation workspace for the extended
// problem x: per-commodity rows sized by each commodity's member node
// and edge counts (sliced from one flat array per field, so repeated
// EvaluateInto calls touch contiguous memory and allocate nothing),
// plus a full-width FNode accumulator. Total memory is O(Σ member),
// not O(J·(n+m)).
func NewUsage(x *transform.Extended) *Usage {
	nc := x.NumCommodities()
	totalN, totalE := 0, 0
	for j := 0; j < nc; j++ {
		totalN += x.Sub[j].NumNodes()
		totalE += x.Sub[j].NumEdges()
	}
	u := &Usage{
		T:      make([][]float64, nc),
		FEdge:  make([][]float64, nc),
		Arrive: make([][]float64, nc),
		FNode:  make([]float64, x.G.NumNodes()),
		tBack:  make([]float64, totalN),
		feBack: make([]float64, totalE),
		arBack: make([]float64, totalE),
	}
	offN, offE := 0, 0
	for j := 0; j < nc; j++ {
		endN := offN + x.Sub[j].NumNodes()
		endE := offE + x.Sub[j].NumEdges()
		u.T[j] = u.tBack[offN:endN:endN]
		u.FEdge[j] = u.feBack[offE:endE:endE]
		u.Arrive[j] = u.arBack[offE:endE:endE]
		offN, offE = endN, endE
	}
	return u
}

// ErrWorkspaceShape is wrapped by the error EvaluateInto panics with
// (and TryEvaluateInto returns) when a workspace does not match the
// routing's extended problem — wrong commodity count, node count, or
// per-commodity member row sizes. Callers that reuse workspaces across
// rebuilds (the admission server's solve loop, shard runners) match it
// with errors.Is and recover by allocating a fresh workspace with
// NewUsage, the same cold-fallback shape as flow.ErrTopologyChanged.
var ErrWorkspaceShape = errors.New("flow: usage workspace shape mismatch")

// shapeErr builds the detailed ErrWorkspaceShape wrapper.
func shapeErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s (workspace from NewUsage on a different or rebuilt extended problem?)",
		ErrWorkspaceShape, fmt.Sprintf(format, args...))
}

// checkShape verifies that u was allocated for x's per-commodity member
// sizes. O(commodities).
func (u *Usage) checkShape(x *transform.Extended) error {
	nc, nn := x.NumCommodities(), x.G.NumNodes()
	if len(u.T) != nc || len(u.FEdge) != nc || len(u.Arrive) != nc {
		return shapeErr("workspace has %d commodity rows, problem has %d", len(u.T), nc)
	}
	if len(u.FNode) != nn {
		return shapeErr("workspace FNode spans %d nodes, problem has %d", len(u.FNode), nn)
	}
	for j := 0; j < nc; j++ {
		sg := &x.Sub[j]
		if len(u.T[j]) != sg.NumNodes() || len(u.FEdge[j]) != sg.NumEdges() || len(u.Arrive[j]) != sg.NumEdges() {
			return shapeErr("commodity %d rows sized (%d nodes, %d edges), member subgraph has (%d, %d)",
				j, len(u.T[j]), len(u.FEdge[j]), sg.NumNodes(), sg.NumEdges())
		}
	}
	return nil
}

// Evaluate solves the flow-balance equations by a forward sweep in
// topological order of each commodity's member DAG (the routing set is
// loop-free by construction, so eq. 3 has a unique solution computable
// in one pass). It allocates a fresh Usage per call; iteration loops
// use a NewUsage workspace with EvaluateInto instead.
func Evaluate(r *Routing) *Usage {
	u := NewUsage(r.X)
	EvaluateInto(u, r)
	return u
}

// EvaluateInto runs the forward sweep into the preallocated workspace
// u, which must have been allocated by NewUsage for r's extended
// problem (per-commodity member-sized rows plus the full-width FNode
// accumulator). The workspace is zeroed and refilled; the result is
// bit-identical to Evaluate(r). After the call u.R is r. A mismatched
// workspace panics with an error wrapping ErrWorkspaceShape; callers
// that want to recover instead use TryEvaluateInto.
func EvaluateInto(u *Usage, r *Routing) {
	if err := u.checkShape(r.X); err != nil {
		panic(err)
	}
	evaluateInto(u, r)
}

// TryEvaluateInto is EvaluateInto returning the shape mismatch as an
// error (wrapping ErrWorkspaceShape) instead of panicking, for callers
// with a recovery path — e.g. falling back to a freshly allocated
// workspace after an extended problem was rebuilt underneath them.
func TryEvaluateInto(u *Usage, r *Routing) error {
	if err := u.checkShape(r.X); err != nil {
		return err
	}
	evaluateInto(u, r)
	return nil
}

// evaluateInto is the shape-checked forward sweep. Per commodity it
// walks the member subgraph in local topo order, scattering node usage
// into the shared FNode accumulator in exactly the (commodity, topo
// position, ascending edge) order the dense filtered scan used, so
// floating-point accumulation — and therefore whole solver
// trajectories — stays bitwise-identical to the dense representation.
func evaluateInto(u *Usage, r *Routing) {
	x := r.X
	nc := x.NumCommodities()
	if u.tBack != nil {
		clear(u.tBack)
		clear(u.feBack)
		clear(u.arBack)
	} else {
		for j := 0; j < nc; j++ {
			clear(u.T[j])
			clear(u.FEdge[j])
			clear(u.Arrive[j])
		}
	}
	clear(u.FNode)
	u.R = r
	for j := 0; j < nc; j++ {
		sg := &x.Sub[j]
		t, fe, ar := u.T[j], u.FEdge[j], u.Arrive[j]
		cost, beta, phi := sg.Cost, sg.Beta, r.Phi[j]
		t[sg.Dummy] = x.Commodities[j].MaxRate // r_i(j) of eq. 2
		for _, ln := range sg.Topo {
			tn := t[ln]
			if tn == 0 || ln == sg.Sink {
				continue
			}
			n := sg.Nodes[ln]
			for _, le := range sg.Out(ln) {
				p := phi[le]
				if p == 0 {
					continue
				}
				f := tn * p * cost[le]
				fe[le] = f
				a := tn * p * beta[le]
				ar[le] = a
				t[sg.Head[le]] += a
				u.FNode[n] += f
			}
		}
	}
}

// TAt returns t_n(j) for extended node n, zero when n is not a member
// node. O(log member nodes) — for cold paths and tests.
func (u *Usage) TAt(j int, n graph.NodeID) float64 {
	if ln := u.R.X.Sub[j].LocalNode(n); ln >= 0 {
		return u.T[j][ln]
	}
	return 0
}

// FEdgeAt returns commodity j's resource usage on extended edge e, zero
// when e is not a member edge. O(log member edges).
func (u *Usage) FEdgeAt(j int, e graph.EdgeID) float64 {
	if le := u.R.X.Sub[j].LocalEdge(e); le >= 0 {
		return u.FEdge[j][le]
	}
	return 0
}

// ArriveAt returns the flow commodity j delivers to the head of
// extended edge e, zero when e is not a member edge. O(log member
// edges).
func (u *Usage) ArriveAt(j int, e graph.EdgeID) float64 {
	if le := u.R.X.Sub[j].LocalEdge(e); le >= 0 {
		return u.Arrive[j][le]
	}
	return 0
}

// AdmittedRate returns a_j: the rate the dummy node sends into the real
// network over the input link.
func (u *Usage) AdmittedRate(j int) float64 {
	x := u.R.X
	return x.Commodities[j].MaxRate * u.R.Phi[j][x.Sub[j].InputLink]
}

// RejectedRate returns λ_j − a_j, the flow on the difference link.
func (u *Usage) RejectedRate(j int) float64 {
	x := u.R.X
	return x.Commodities[j].MaxRate * u.R.Phi[j][x.Sub[j].DiffLink]
}

// Utility returns Σ_j U_j(a_j), the quantity the paper maximizes.
func (u *Usage) Utility() float64 {
	total := 0.0
	for j := range u.R.X.Commodities {
		total += u.R.X.Commodities[j].Utility.Value(u.AdmittedRate(j))
	}
	return total
}

// UtilityLoss returns Y = Σ_j Y_j(λ_j − a_j).
func (u *Usage) UtilityLoss() float64 {
	x := u.R.X
	total := 0.0
	for j := range x.Commodities {
		c := &x.Commodities[j]
		total += x.LossValue(j, c.DiffLink, u.FEdge[j][x.Sub[j].DiffLink])
	}
	return total
}

// PenaltyCost returns ε·D = Σ_i ε·D_i(f_i).
func (u *Usage) PenaltyCost() float64 {
	total := 0.0
	for n, f := range u.FNode {
		total += u.R.X.PenaltyValue(graph.NodeID(n), f)
	}
	return total
}

// TotalCost returns A = Y + ε·D, the objective the routing problem
// minimizes (§3).
func (u *Usage) TotalCost() float64 {
	return u.UtilityLoss() + u.PenaltyCost()
}

// Feasible reports whether every capacitated node satisfies f_i ≤ C_i
// (eq. 6), with slack reporting the minimum remaining headroom ratio
// min_i (C_i − f_i)/C_i over capacitated nodes. Under sharding the
// check is at the global operating point: own flow plus the external
// usage installed on the extended problem (nil External adds nothing).
func (u *Usage) Feasible() (ok bool, slack float64) {
	ok, slack = true, 1.0
	ext := u.R.X.External
	for n, f := range u.FNode {
		c := u.R.X.Capacity[n]
		if math.IsInf(c, 1) {
			continue
		}
		if n < len(ext) {
			f += ext[n]
		}
		s := (c - f) / c
		if s < slack {
			slack = s
		}
		if f > c+1e-9 {
			ok = false
		}
	}
	return ok, slack
}

// SharedUsage copies this routing set's flow through the shared node
// prefix (originals + bandwidth nodes) into dst, which must have length
// X.SharedNodes. This is the usage summary a shard reports to the
// price-exchange coordinator: dummy-node flow is shard-private and
// uncapacitated, so it never crosses the boundary.
func (u *Usage) SharedUsage(dst []float64) {
	if len(dst) != u.R.X.SharedNodes {
		panic("flow: SharedUsage dst not sized to SharedNodes")
	}
	copy(dst, u.FNode[:len(dst)])
}

// MergeShared sums per-shard shared-usage vectors into dst, the global
// congestion view over the shared node prefix. Parts are accumulated in
// slice order so the reduction is deterministic for a fixed shard
// ordering.
func MergeShared(dst []float64, parts ...[]float64) {
	clear(dst)
	for _, p := range parts {
		if len(p) != len(dst) {
			panic("flow: MergeShared part length mismatch")
		}
		for i, v := range p {
			dst[i] += v
		}
	}
}

// FeasibleShared reports feasibility of a merged global usage vector
// against the shared-prefix capacities of x (same tolerance and slack
// convention as Usage.Feasible, restricted to the shared nodes).
func FeasibleShared(x *transform.Extended, merged []float64) (ok bool, slack float64) {
	ok, slack = true, 1.0
	for n, f := range merged {
		c := x.Capacity[n]
		if math.IsInf(c, 1) {
			continue
		}
		s := (c - f) / c
		if s < slack {
			slack = s
		}
		if f > c+1e-9 {
			ok = false
		}
	}
	return ok, slack
}

// DeliveredRate returns the flow arriving at commodity j's sink through
// the real network (excluding the difference link), in sink units: this
// is g_sink(j)·a_j when Property 1 holds.
func (u *Usage) DeliveredRate(j int) float64 {
	sg := &u.R.X.Sub[j]
	total := 0.0
	for _, le := range sg.In(sg.Sink) {
		if le == sg.DiffLink {
			continue
		}
		total += u.Arrive[j][le]
	}
	return total
}
