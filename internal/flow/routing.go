// Package flow implements §4's distributed problem formulation: routing
// fractions φ as control variables, the flow-balance equations with
// shrinkage (eq. 3), resource usage rates (eqs. 4–5), and the cost
// decomposition A = Σ_i A_i (eq. 8).
package flow

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/transform"
)

// Routing is a per-commodity routing-variable set φ: Phi[j][e] is the
// fraction of commodity j's traffic at the tail of extended edge e that
// is processed over e. Fractions are positive only on member edges, and
// sum to one over the member out-edges of every node that can carry
// commodity-j traffic.
type Routing struct {
	X   *transform.Extended
	Phi [][]float64
}

// NewZero returns an all-zero routing-variable set. The per-commodity
// rows share one flat nc×ne backing array, so a routing used as an
// iteration buffer stays cache-contiguous.
func NewZero(x *transform.Extended) *Routing {
	nc, ne := x.NumCommodities(), x.G.NumEdges()
	back := make([]float64, nc*ne)
	phi := make([][]float64, nc)
	for j := range phi {
		phi[j] = back[j*ne : (j+1)*ne : (j+1)*ne]
	}
	return &Routing{X: x, Phi: phi}
}

// NewInitial returns the paper-faithful starting point (DESIGN.md §6):
// each dummy node routes everything to its difference link (admitted
// rate 0, so utility climbs monotonically from zero as in Figure 4),
// and every other node splits uniformly across its member out-edges.
func NewInitial(x *transform.Extended) *Routing {
	r := NewZero(x)
	for j := range x.Commodities {
		c := &x.Commodities[j]
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == c.Sink {
				continue
			}
			if node == c.Dummy {
				r.Phi[j][c.DiffLink] = 1
				continue
			}
			outs := x.MemberOut(j, node)
			for _, e := range outs {
				r.Phi[j][e] = 1 / float64(len(outs))
			}
		}
	}
	return r
}

// Clone deep-copies the routing set.
func (r *Routing) Clone() *Routing {
	c := NewZero(r.X)
	for j := range r.Phi {
		copy(c.Phi[j], r.Phi[j])
	}
	return c
}

// ErrTopologyChanged is wrapped by Rebind when the target extended
// problem has a different shape than the one the routing was built on.
// Callers that warm-start opportunistically (the admission server, the
// dynamic-tracking experiments) match it with errors.Is to tell
// "commodities or network elements changed — a cold start is the
// expected recovery" apart from a genuine bug.
var ErrTopologyChanged = errors.New("flow: extended topology changed")

// Rebind deep-copies the routing set onto another extended problem with
// the same topology (same node/edge/commodity layout). This is how a
// converged routing warm-starts the optimizer after problem parameters
// (offered rates, capacities) change: the φ values carry over, the
// evaluation context does not. A shape mismatch wraps
// ErrTopologyChanged and names the dimension that moved.
func (r *Routing) Rebind(x *transform.Extended) (*Routing, error) {
	if nx, nr := x.NumCommodities(), r.X.NumCommodities(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d commodities, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	if nx, nr := x.G.NumNodes(), r.X.G.NumNodes(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d extended nodes, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	if nx, nr := x.G.NumEdges(), r.X.G.NumEdges(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d extended edges, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	c := NewZero(x)
	for j := range r.Phi {
		copy(c.Phi[j], r.Phi[j])
	}
	return c, nil
}

// Validate checks the §4 routing-decision conditions: φ ≥ 0, φ = 0 off
// the member subgraph, and Σ_k φ_ik(j) = 1 at every non-sink node with
// member out-edges.
func (r *Routing) Validate() error {
	x := r.X
	const tol = 1e-9
	for j := range x.Commodities {
		member := x.Member[j]
		for e, v := range r.Phi[j] {
			if v < -tol || math.IsNaN(v) {
				return fmt.Errorf("flow: commodity %d edge %d: phi = %g", j, e, v)
			}
			if !member[e] && v > tol {
				return fmt.Errorf("flow: commodity %d edge %d: phi = %g on non-member edge", j, e, v)
			}
		}
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == x.Commodities[j].Sink {
				continue
			}
			outs := x.MemberOut(j, node)
			sum, hasMember := 0.0, len(outs) > 0
			for _, e := range outs {
				sum += r.Phi[j][e]
			}
			if hasMember && math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("flow: commodity %d node %q: phi sums to %g", j, x.Names[n], sum)
			}
		}
	}
	return nil
}
