// Package flow implements §4's distributed problem formulation: routing
// fractions φ as control variables, the flow-balance equations with
// shrinkage (eq. 3), resource usage rates (eqs. 4–5), and the cost
// decomposition A = Σ_i A_i (eq. 8).
package flow

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/graph"
	"repro/internal/transform"
)

// Routing is a per-commodity routing-variable set φ: Phi[j][le] is the
// fraction of commodity j's traffic at the tail of member edge le
// (X.Sub[j] local edge indexing) that is processed over it. Rows are
// sized by each commodity's member edge count — O(member), not O(ne) —
// and sum to one over the member out-edges of every node that can carry
// commodity-j traffic. Callers holding global edge IDs use At/SetAt.
type Routing struct {
	X   *transform.Extended
	Phi [][]float64
}

// NewZero returns an all-zero routing-variable set. The per-commodity
// rows share one flat backing array sized to the total member edge
// count, so a routing used as an iteration buffer stays
// cache-contiguous.
func NewZero(x *transform.Extended) *Routing {
	nc := x.NumCommodities()
	total := 0
	for j := 0; j < nc; j++ {
		total += x.Sub[j].NumEdges()
	}
	back := make([]float64, total)
	phi := make([][]float64, nc)
	off := 0
	for j := 0; j < nc; j++ {
		end := off + x.Sub[j].NumEdges()
		phi[j] = back[off:end:end]
		off = end
	}
	return &Routing{X: x, Phi: phi}
}

// NewInitial returns the paper-faithful starting point (DESIGN.md §6):
// each dummy node routes everything to its difference link (admitted
// rate 0, so utility climbs monotonically from zero as in Figure 4),
// and every other node splits uniformly across its member out-edges.
func NewInitial(x *transform.Extended) *Routing {
	r := NewZero(x)
	for j := range x.Commodities {
		sg := &x.Sub[j]
		for l := int32(0); l < int32(sg.NumNodes()); l++ {
			if l == sg.Sink {
				continue
			}
			if l == sg.Dummy {
				r.Phi[j][sg.DiffLink] = 1
				continue
			}
			outs := sg.Out(l)
			for _, le := range outs {
				r.Phi[j][le] = 1 / float64(len(outs))
			}
		}
	}
	return r
}

// At returns φ for commodity j on extended edge e, zero when e is not a
// member edge. O(log member edges) — a convenience for cold paths and
// tests; hot loops index Phi[j] locally.
func (r *Routing) At(j int, e graph.EdgeID) float64 {
	if le := r.X.Sub[j].LocalEdge(e); le >= 0 {
		return r.Phi[j][le]
	}
	return 0
}

// SetAt sets φ for commodity j on extended edge e, which must be a
// member edge (panics otherwise — a fraction on a non-member edge can
// never be represented, matching the old dense tables where it was a
// validation error).
func (r *Routing) SetAt(j int, e graph.EdgeID, v float64) {
	le := r.X.Sub[j].LocalEdge(e)
	if le < 0 {
		panic(fmt.Sprintf("flow: SetAt: edge %d is not a member edge of commodity %d", e, j))
	}
	r.Phi[j][le] = v
}

// Clone deep-copies the routing set.
func (r *Routing) Clone() *Routing {
	c := NewZero(r.X)
	for j := range r.Phi {
		copy(c.Phi[j], r.Phi[j])
	}
	return c
}

// ErrTopologyChanged is wrapped by Rebind when the target extended
// problem has a different shape than the one the routing was built on.
// Callers that warm-start opportunistically (the admission server, the
// dynamic-tracking experiments) match it with errors.Is to tell
// "commodities or network elements changed — a cold start is the
// expected recovery" apart from a genuine bug.
var ErrTopologyChanged = errors.New("flow: extended topology changed")

// Rebind deep-copies the routing set onto another extended problem with
// the same topology (same node/edge/commodity layout and identical
// per-commodity member edge sets). This is how a converged routing
// warm-starts the optimizer after problem parameters (offered rates,
// capacities) change: the φ values carry over, the evaluation context
// does not. A shape mismatch wraps ErrTopologyChanged and names the
// dimension that moved; the member-set comparison is O(total member),
// cheaper than the value copy it gates.
func (r *Routing) Rebind(x *transform.Extended) (*Routing, error) {
	if nx, nr := x.NumCommodities(), r.X.NumCommodities(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d commodities, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	if nx, nr := x.G.NumNodes(), r.X.G.NumNodes(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d extended nodes, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	if nx, nr := x.G.NumEdges(), r.X.G.NumEdges(); nx != nr {
		return nil, fmt.Errorf("%w: target has %d extended edges, routing was built for %d",
			ErrTopologyChanged, nx, nr)
	}
	for j := range x.Sub {
		if !slices.Equal(x.Sub[j].Edges, r.X.Sub[j].Edges) {
			return nil, fmt.Errorf("%w: commodity %d member edge set changed",
				ErrTopologyChanged, j)
		}
	}
	c := NewZero(x)
	for j := range r.Phi {
		copy(c.Phi[j], r.Phi[j])
	}
	return c, nil
}

// Validate checks the §4 routing-decision conditions: φ ≥ 0 and finite,
// and Σ_k φ_ik(j) = 1 at every non-sink node with member out-edges.
// (φ on non-member edges is unrepresentable in the sparse rows, so the
// old off-member check is structural now.)
func (r *Routing) Validate() error {
	x := r.X
	const tol = 1e-9
	for j := range x.Commodities {
		sg := &x.Sub[j]
		for le, v := range r.Phi[j] {
			if v < -tol || math.IsNaN(v) {
				return fmt.Errorf("flow: commodity %d edge %d: phi = %g", j, sg.Edges[le], v)
			}
		}
		for l := int32(0); l < int32(sg.NumNodes()); l++ {
			if l == sg.Sink {
				continue
			}
			outs := sg.Out(l)
			sum, hasMember := 0.0, len(outs) > 0
			for _, le := range outs {
				sum += r.Phi[j][le]
			}
			if hasMember && math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("flow: commodity %d node %q: phi sums to %g", j, x.Names[sg.Nodes[l]], sum)
			}
		}
	}
	return nil
}
