package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/transform"
)

// randomInstance builds a random extended problem.
func randomInstance(t testing.TB, seed int64) *transform.Extended {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nodes := 10 + r.Intn(20)
	layers := 3 + r.Intn(3)
	maxCom := nodes / layers
	if maxCom > 3 {
		maxCom = 3
	}
	p, err := randnet.Generate(randnet.Config{
		Seed:        seed,
		Nodes:       nodes,
		Commodities: 1 + r.Intn(maxCom),
		Layers:      layers,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// randomRouting draws a random valid routing set: at every node with
// member out-edges, random positive fractions normalized to one.
func randomRouting(x *transform.Extended, r *rand.Rand) *Routing {
	rt := NewZero(x)
	for j := range x.Commodities {
		sg := &x.Sub[j]
		sink := x.Commodities[j].Sink
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			if node == sink {
				continue
			}
			var outs []graph.EdgeID
			for _, e := range x.G.Out(node) {
				if x.MemberEdge(j, e) {
					outs = append(outs, e)
				}
			}
			if len(outs) == 0 {
				continue
			}
			total := 0.0
			weights := make([]float64, len(outs))
			for i := range outs {
				weights[i] = 0.05 + r.Float64()
				total += weights[i]
			}
			for i, e := range outs {
				rt.Phi[j][sg.LocalEdge(e)] = weights[i] / total
			}
		}
	}
	return rt
}

// TestQuickFlowConservation verifies eq. (7) on random instances and
// routings: for every non-sink node n and commodity j,
// Σ_out t_n·φ_e − Σ_in β_e·t_tail·φ_e = r_n(j).
func TestQuickFlowConservation(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		rt := randomRouting(x, r)
		if err := rt.Validate(); err != nil {
			t.Logf("routing invalid: %v", err)
			return false
		}
		u := Evaluate(rt)
		for j := range x.Commodities {
			c := &x.Commodities[j]
			for n := 0; n < x.G.NumNodes(); n++ {
				node := graph.NodeID(n)
				if node == c.Sink {
					continue
				}
				out := 0.0
				for _, e := range x.G.Out(node) {
					if x.MemberEdge(j, e) {
						out += u.TAt(j, node) * rt.At(j, e)
					}
				}
				in := 0.0
				for _, e := range x.G.In(node) {
					if x.MemberEdge(j, e) {
						in += u.ArriveAt(j, e)
					}
				}
				want := 0.0
				if node == c.Dummy {
					want = c.MaxRate
				}
				if math.Abs(out-in-want) > 1e-6*(1+math.Abs(out)) {
					t.Logf("seed %d commodity %d node %d: out %g in %g r %g", seed, j, n, out, in, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeliveredMatchesPotential verifies the Property-1
// consequence that sink arrivals equal g_sink(j) times the admitted
// rate, for ANY routing (path-independence of the shrinkage product).
func TestQuickDeliveredMatchesPotential(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0xfeed))
		rt := randomRouting(x, r)
		u := Evaluate(rt)
		for j := range x.Commodities {
			c := &x.Commodities[j]
			// g_sink from the member subgraph, dummy links excluded.
			g := potentials(x, j)
			want := g[c.Sink] * u.AdmittedRate(j)
			got := u.DeliveredRate(j)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Logf("seed %d commodity %d: delivered %g, g·a %g", seed, j, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// potentials recomputes g over member edges (dummy difference link
// excluded so the real network's path product is measured), walking the
// commodity's sparse subgraph and scattering to extended node IDs.
func potentials(x *transform.Extended, j int) []float64 {
	sg := &x.Sub[j]
	g := make([]float64, x.G.NumNodes())
	lg := make([]float64, sg.NumNodes())
	lg[sg.Dummy] = 1
	for _, ln := range sg.Topo {
		if lg[ln] == 0 {
			continue
		}
		for _, le := range sg.Out(ln) {
			if le == sg.DiffLink {
				continue
			}
			if head := sg.Head[le]; lg[head] == 0 {
				lg[head] = lg[ln] * sg.Beta[le]
			}
		}
	}
	for ln, n := range sg.Nodes {
		g[n] = lg[ln]
	}
	return g
}

// TestQuickUtilityLossComplement verifies U(a) + Y(λ−a) = U(λ) under
// arbitrary admission splits on random instances.
func TestQuickUtilityLossComplement(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0xab))
		rt := randomRouting(x, r)
		u := Evaluate(rt)
		want := 0.0
		for j := range x.Commodities {
			c := &x.Commodities[j]
			want += c.Utility.Value(c.MaxRate)
		}
		got := u.Utility() + u.UtilityLoss()
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFNodeAggregation verifies eq. (5): FNode is exactly the sum
// of per-commodity per-edge usage grouped by tail.
func TestQuickFNodeAggregation(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed ^ 0xcc))
		rt := randomRouting(x, r)
		u := Evaluate(rt)
		sum := make([]float64, x.G.NumNodes())
		for j := range x.Commodities {
			sg := &x.Sub[j]
			for le, e := range sg.Edges {
				sum[x.G.Edge(e).From] += u.FEdge[j][le]
			}
		}
		for n := range sum {
			if math.Abs(sum[n]-u.FNode[n]) > 1e-9*(1+sum[n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvaluateDeterministic: same routing evaluates identically.
func TestQuickEvaluateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInstance(t, seed)
		r := rand.New(rand.NewSource(seed))
		rt := randomRouting(x, r)
		a, b := Evaluate(rt), Evaluate(rt)
		for n := range a.FNode {
			if a.FNode[n] != b.FNode[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
