package flow

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/transform"
)

// denseUsage is the pre-sparse-refactor evaluation result in full-width
// global indexing, produced by denseEvaluate below.
type denseUsage struct {
	T      [][]float64 // [j][extended node]
	FEdge  [][]float64 // [j][extended edge]
	Arrive [][]float64 // [j][extended edge]
	FNode  []float64   // [extended node]
}

// denseEvaluate re-implements the dense full-graph evaluation sweep the
// sparse Subgraph representation replaced: full-width rows, the member
// DAG walked via graph.TopoSortFiltered with a per-edge membership
// filter, non-member edges skipped inline. It is the reference for the
// bitwise-parity contract: the sparse Evaluate must visit the same
// (node, edge) pairs in the same order, so every float operation — and
// therefore every accumulated rounding — is identical.
func denseEvaluate(t *testing.T, r *Routing) *denseUsage {
	t.Helper()
	x := r.X
	nn, ne := x.G.NumNodes(), x.G.NumEdges()
	nc := x.NumCommodities()
	d := &denseUsage{
		T:      make([][]float64, nc),
		FEdge:  make([][]float64, nc),
		Arrive: make([][]float64, nc),
		FNode:  make([]float64, nn),
	}
	for j := 0; j < nc; j++ {
		d.T[j] = make([]float64, nn)
		d.FEdge[j] = make([]float64, ne)
		d.Arrive[j] = make([]float64, ne)
		c := &x.Commodities[j]
		topo, err := x.G.TopoSortFiltered(func(e graph.EdgeID) bool { return x.MemberEdge(j, e) })
		if err != nil {
			t.Fatal(err)
		}
		d.T[j][c.Dummy] = c.MaxRate
		for _, n := range topo {
			tn := d.T[j][n]
			if tn == 0 || n == c.Sink {
				continue
			}
			for _, e := range x.G.Out(n) {
				if !x.MemberEdge(j, e) {
					continue
				}
				p := r.At(j, e)
				if p == 0 {
					continue
				}
				f := tn * p * x.EdgeCost(j, e)
				d.FEdge[j][e] = f
				a := tn * p * x.EdgeBeta(j, e)
				d.Arrive[j][e] = a
				d.T[j][x.G.Edge(e).To] += a
				d.FNode[n] += f
			}
		}
	}
	return d
}

// parityInstances are the instances the sparse-vs-dense contract is
// checked on: the §6 paper instance (E4 scale), the many-commodity E6
// shape, and the seed sweep the sharded-parity tests use.
func parityInstances(t *testing.T) map[string]*transform.Extended {
	t.Helper()
	cfgs := map[string]randnet.Config{
		"paper-e4":          {Seed: 2, Nodes: 40, Commodities: 3},
		"many-commodity-e6": {Seed: 5, Nodes: 32, Layers: 4, Commodities: 8},
		"sweep-seed2":       {Seed: 2, Nodes: 24, Commodities: 4},
		"sweep-seed3":       {Seed: 3, Nodes: 24, Commodities: 4},
		"sweep-seed5":       {Seed: 5, Nodes: 24, Commodities: 4},
	}
	out := make(map[string]*transform.Extended, len(cfgs))
	for name, cfg := range cfgs {
		p, err := randnet.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = x
	}
	return out
}

// TestSparseEvaluateMatchesDenseReferenceBitwise: on every parity
// instance and several routings, the sparse evaluation equals the
// dense full-graph reference scan bit for bit — t, per-edge flows,
// arrivals, node usage, and the derived admitted/delivered rates.
func TestSparseEvaluateMatchesDenseReferenceBitwise(t *testing.T) {
	for name, x := range parityInstances(t) {
		t.Run(name, func(t *testing.T) {
			for _, frac := range []float64{0, 0.3, 0.75, 1} {
				r := NewInitial(x)
				for j := range x.Commodities {
					c := &x.Commodities[j]
					r.SetAt(j, c.InputLink, frac)
					r.SetAt(j, c.DiffLink, 1-frac)
				}
				u := Evaluate(r)
				d := denseEvaluate(t, r)
				if !sameBits(u.FNode, d.FNode) {
					t.Fatalf("frac %g: FNode differs from dense reference", frac)
				}
				for j := range x.Commodities {
					sg := &x.Sub[j]
					for ln, n := range sg.Nodes {
						if u.T[j][ln] != d.T[j][n] {
							t.Fatalf("frac %g commodity %d node %d: t %v vs dense %v",
								frac, j, n, u.T[j][ln], d.T[j][n])
						}
					}
					for le, e := range sg.Edges {
						if u.FEdge[j][le] != d.FEdge[j][e] {
							t.Fatalf("frac %g commodity %d edge %d: f %v vs dense %v",
								frac, j, e, u.FEdge[j][le], d.FEdge[j][e])
						}
						if u.Arrive[j][le] != d.Arrive[j][e] {
							t.Fatalf("frac %g commodity %d edge %d: arrive %v vs dense %v",
								frac, j, e, u.Arrive[j][le], d.Arrive[j][e])
						}
					}
					// Non-member rows of the dense reference must be
					// zero — the sparse layout cannot even represent
					// flow there.
					for e := 0; e < x.G.NumEdges(); e++ {
						if sg.LocalEdge(graph.EdgeID(e)) < 0 && d.FEdge[j][e] != 0 {
							t.Fatalf("dense reference put flow on non-member edge %d", e)
						}
					}
					c := &x.Commodities[j]
					wantAdmitted := c.MaxRate * r.At(j, c.InputLink)
					if got := u.AdmittedRate(j); got != wantAdmitted {
						t.Fatalf("frac %g commodity %d: admitted %v, dense %v", frac, j, got, wantAdmitted)
					}
				}
			}
		})
	}
}
