package flow

import (
	"testing"

	"repro/internal/randnet"
	"repro/internal/transform"
)

func buildRandnet(t *testing.T, seed int64) *transform.Extended {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: seed, Nodes: 20, Commodities: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// admitSome returns a copy of the initial routing with part of each
// commodity's offered rate pushed into the real network, so the
// evaluation exercises nonzero flow on interior edges.
func admitSome(x *transform.Extended, frac float64) *Routing {
	r := NewInitial(x)
	for j := range x.Commodities {
		c := &x.Commodities[j]
		r.SetAt(j, c.InputLink, frac)
		r.SetAt(j, c.DiffLink, 1-frac)
	}
	return r
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertUsageBitwiseEqual(t *testing.T, got, want *Usage) {
	t.Helper()
	if !sameBits(got.FNode, want.FNode) {
		t.Fatalf("FNode differs: %v vs %v", got.FNode, want.FNode)
	}
	for j := range want.T {
		if !sameBits(got.T[j], want.T[j]) {
			t.Fatalf("T[%d] differs", j)
		}
		if !sameBits(got.FEdge[j], want.FEdge[j]) {
			t.Fatalf("FEdge[%d] differs", j)
		}
		if !sameBits(got.Arrive[j], want.Arrive[j]) {
			t.Fatalf("Arrive[%d] differs", j)
		}
	}
}

func TestEvaluateIntoMatchesEvaluateBitwise(t *testing.T) {
	x := buildRandnet(t, 11)
	ws := NewUsage(x)
	// Reuse the same workspace across several routings: each refill must
	// match a fresh Evaluate bit for bit even though the backing arrays
	// start dirty from the previous routing.
	for _, frac := range []float64{0, 0.25, 0.8, 1} {
		r := admitSome(x, frac)
		EvaluateInto(ws, r)
		assertUsageBitwiseEqual(t, ws, Evaluate(r))
		if ws.R != r {
			t.Fatalf("workspace routing not rebound")
		}
	}
}

func TestEvaluateIntoDoesNotAllocate(t *testing.T) {
	x := buildRandnet(t, 11)
	r := admitSome(x, 0.5)
	ws := NewUsage(x)
	if allocs := testing.AllocsPerRun(100, func() { EvaluateInto(ws, r) }); allocs != 0 {
		t.Fatalf("EvaluateInto allocates %v objects per run, want 0", allocs)
	}
}

func TestEvaluateIntoRejectsWrongShape(t *testing.T) {
	x := buildRandnet(t, 11)
	p, err := randnet.Generate(randnet.Config{Seed: 12, Nodes: 26, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	other, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EvaluateInto accepted a workspace of the wrong shape")
		}
	}()
	EvaluateInto(NewUsage(x), NewInitial(other))
}

func TestNewInitialDoesNotAllocatePerNode(t *testing.T) {
	x := buildRandnet(t, 11)
	// One Routing (header + rows + flat backing) is 3 allocations; the
	// member-adjacency rewrite removed the per-node scratch slice, so the
	// count must stay flat no matter the node count.
	if allocs := testing.AllocsPerRun(50, func() { NewInitial(x) }); allocs > 4 {
		t.Fatalf("NewInitial allocates %v objects per run, want <= 4", allocs)
	}
}
