package obs

import (
	"strconv"
	"sync"
	"time"
)

// Phase names one timed section of gradient.Engine.Step.
type Phase int

// The four phases of a §5 iteration.
const (
	// PhaseForecast is the flow-forecast wave (flow.Evaluate).
	PhaseForecast Phase = iota
	// PhaseMarginal is the upstream marginal-cost wave.
	PhaseMarginal
	// PhaseTagging is the loop-freedom tag computation.
	PhaseTagging
	// PhaseUpdate is the Γ routing update.
	PhaseUpdate

	numPhases
)

// NumPhases is the number of timed Step phases; TraceSample.PhaseSeconds
// is indexed by Phase.
const NumPhases = int(numPhases)

// String names the phase for metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseForecast:
		return "forecast"
	case PhaseMarginal:
		return "marginal"
	case PhaseTagging:
		return "tagging"
	case PhaseUpdate:
		return "update"
	}
	return "unknown"
}

// TraceSample is the per-iteration solver state handed to a Tracer:
// one row of the convergence trace, including how the iteration's
// wall-clock split across the Step phases. Admitted aliases the
// engine's buffer and is only valid during the TraceIteration call;
// tracers that retain samples must copy it.
type TraceSample struct {
	Iter         int
	Utility      float64
	Cost         float64
	Eta          float64
	Feasible     bool
	Admitted     []float64
	PhaseSeconds [NumPhases]float64
}

// Tracer consumes per-iteration samples (see internal/obs/trace for the
// bounded ring implementation). Implementations must be safe for use
// from the solver goroutine; TraceIteration is called once per engine
// iteration on an enabled recorder with a tracer attached.
type Tracer interface {
	TraceIteration(TraceSample)
}

// Recorder is the handle the optimizer loops thread through their
// configs. A nil *Recorder is valid and means "observability off":
// every method nil-checks and returns, costing one predicted branch on
// the hot path and zero allocations (see recorder_test.go).
type Recorder struct {
	reg    *Registry
	sink   Sink
	tracer Tracer
	start  time.Time

	iterations *Counter
	utility    *Gauge
	cost       *Gauge
	feasible   *Gauge
	messages   *Counter
	rounds     *Counter
	tagged     *Counter
	backtracks *Counter
	eta        *Gauge
	workers    *Gauge
	diverged   *Counter

	qsimQueue     *Gauge
	qsimDelivered *Gauge
	qsimDropped   *Gauge

	srvGeneration *Gauge
	srvUtility    *Gauge
	srvWarm       *Counter
	srvCold       *Counter
	srvWarmLat    *Histogram
	srvColdLat    *Histogram
	srvMutations  *Counter

	traceSamples *Gauge
	attributions *Counter

	decisionLat  *Histogram
	flipAdmitted *Counter
	flipRejected *Counter
	spans        *Counter

	lgEpochs    *Counter
	lgMutations *Counter
	lgActive    *Gauge
	lgOffered   *Gauge
	lgAdmFrac   *Gauge

	phase [numPhases]*Histogram
	// phaseAcc accumulates the current iteration's per-phase seconds for
	// the tracer; swapped to zero when Iteration fires a TraceSample.
	phaseAcc [numPhases]Gauge

	mu       sync.Mutex
	admitted []*Gauge // per-commodity, grown on demand
}

// NewRecorder builds an enabled recorder. reg may be nil (a fresh
// registry is created); sink may be nil (metrics only, no events).
func NewRecorder(reg *Registry, sink Sink) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	r := &Recorder{reg: reg, sink: sink, start: time.Now()}
	r.iterations = reg.Counter("streamopt_iterations_total", "Optimizer iterations executed.")
	r.utility = reg.Gauge("streamopt_utility", "Total utility at the latest iteration.")
	r.cost = reg.Gauge("streamopt_cost", "Cost A = Y + epsilon*D at the latest iteration.")
	r.feasible = reg.Gauge("streamopt_feasible", "1 when the latest iterate satisfies every capacity constraint.")
	r.messages = reg.Counter("streamopt_protocol_messages_total", "Protocol messages exchanged.")
	r.rounds = reg.Counter("streamopt_protocol_rounds_total", "Sequential protocol message rounds.")
	r.tagged = reg.Counter("streamopt_blocking_tagged_total", "Loop-freedom tags raised.")
	r.backtracks = reg.Counter("streamopt_adaptive_backtracks_total", "Adaptive step-size rollbacks.")
	r.eta = reg.Gauge("streamopt_eta", "Current gradient step scale.")
	r.workers = reg.Gauge("streamopt_step_workers", "Worker-pool bound for the per-commodity Step waves.")
	r.diverged = reg.Counter("streamopt_divergence_total", "Trajectories declared diverged.")
	r.qsimQueue = reg.Gauge("streamopt_qsim_queued", "Total queued work at the latest sampled tick.")
	r.qsimDelivered = reg.Gauge("streamopt_qsim_delivered_total", "Cumulative qsim sink deliveries (sink units).")
	r.qsimDropped = reg.Gauge("streamopt_qsim_dropped_total", "Cumulative qsim admission drops (source units).")
	r.srvGeneration = reg.Gauge("streamopt_server_generation", "Latest published admission-server snapshot generation.")
	r.srvUtility = reg.Gauge("streamopt_server_utility", "Total utility of the latest published snapshot.")
	r.srvWarm = reg.Counter("streamopt_server_solves_total", "Admission-server re-solves by start kind.", "start", "warm")
	r.srvCold = reg.Counter("streamopt_server_solves_total", "Admission-server re-solves by start kind.", "start", "cold")
	r.srvWarmLat = reg.Histogram("streamopt_server_solve_seconds",
		"Wall-clock time of one admission-server re-solve.", DefaultTimeBuckets, "start", "warm")
	r.srvColdLat = reg.Histogram("streamopt_server_solve_seconds",
		"Wall-clock time of one admission-server re-solve.", DefaultTimeBuckets, "start", "cold")
	r.srvMutations = reg.Counter("streamopt_server_mutations_total", "Accepted admission-server problem mutations.")
	r.traceSamples = reg.Gauge("streamopt_trace_samples", "Samples currently held by the solver trace ring.")
	r.attributions = reg.Counter("streamopt_attributions_total", "Per-commodity bottleneck attributions published.")
	r.decisionLat = reg.Histogram("streamopt_decision_latency_seconds",
		"Mutation received to first published snapshot containing it.", DefaultTimeBuckets)
	r.flipAdmitted = reg.Counter("streamopt_admission_flips_total",
		"Commodities crossing the admitted/rejected boundary between generations.", "to", "admitted")
	r.flipRejected = reg.Counter("streamopt_admission_flips_total",
		"Commodities crossing the admitted/rejected boundary between generations.", "to", "rejected")
	r.spans = reg.Counter("streamopt_spans_total", "Decision-lifecycle spans finished.")
	r.lgEpochs = reg.Counter("streamopt_loadgen_epochs_total", "Load-generator virtual-clock epochs driven.")
	r.lgMutations = reg.Counter("streamopt_loadgen_mutations_total", "Mutations applied by the load-generator driver.")
	r.lgActive = reg.Gauge("streamopt_loadgen_active", "Commodities active in the driven scenario at the latest epoch.")
	r.lgOffered = reg.Gauge("streamopt_loadgen_offered", "Total offered load Σλ_j of the driven scenario at the latest epoch.")
	r.lgAdmFrac = reg.Gauge("streamopt_loadgen_admitted_fraction", "Σ admitted / Σ offered observed at the latest epoch.")
	if dr, ok := sink.(dropReporting); ok {
		dr.SetDropCounter(reg.Counter("streamopt_events_dropped_total",
			"Events lost to sink write errors."))
	}
	for p := Phase(0); p < numPhases; p++ {
		r.phase[p] = reg.Histogram("streamopt_step_phase_seconds",
			"Wall-clock time of one gradient.Engine.Step phase.",
			DefaultTimeBuckets, "phase", p.String())
	}
	return r
}

// SetTracer attaches a per-iteration tracer (e.g. a trace.Ring). It
// must be called before the instrumented solve starts; a nil recorder
// ignores the call. Passing nil detaches.
func (r *Recorder) SetTracer(t Tracer) {
	if r == nil {
		return
	}
	r.tracer = t
}

// Registry exposes the underlying registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Close flushes and closes the sink, if any.
func (r *Recorder) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

func (r *Recorder) emit(e Event) {
	if r.sink == nil {
		return
	}
	e.TMs = sinceMs(r.start)
	r.sink.Emit(e)
}

var (
	ptrue  = new(bool)
	pfalse = new(bool)
)

func init() { *ptrue = true }

// Iteration records one optimizer iteration. admitted is read
// synchronously and not retained.
func (r *Recorder) Iteration(alg string, iter int, utility, cost float64, admitted []float64, feasible bool) {
	if r == nil {
		return
	}
	r.iterations.Inc()
	r.utility.Set(utility)
	r.cost.Set(cost)
	fp := pfalse
	fv := 0.0
	if feasible {
		fp, fv = ptrue, 1
	}
	r.feasible.Set(fv)
	r.mu.Lock()
	for len(r.admitted) < len(admitted) {
		r.admitted = append(r.admitted, r.reg.Gauge(
			"streamopt_admitted_rate", "Admitted rate per commodity (source units).",
			"commodity", strconv.Itoa(len(r.admitted))))
	}
	gauges := r.admitted
	r.mu.Unlock()
	for j, a := range admitted {
		gauges[j].Set(a)
	}
	if r.tracer != nil {
		s := TraceSample{
			Iter: iter, Utility: utility, Cost: cost,
			Eta: r.eta.Value(), Feasible: feasible, Admitted: admitted,
		}
		for p := range s.PhaseSeconds {
			s.PhaseSeconds[p] = r.phaseAcc[p].Swap(0)
		}
		r.tracer.TraceIteration(s)
	}
	r.emit(Event{
		Type: EventIteration, Alg: alg, Iter: iter,
		Utility: utility, Cost: cost, Admitted: admitted, Feasible: fp,
	})
}

// Protocol records the distributed message cost of one iteration.
func (r *Recorder) Protocol(alg string, iter, messages, rounds int) {
	if r == nil {
		return
	}
	r.messages.Add(messages)
	r.rounds.Add(rounds)
	r.emit(Event{Type: EventProtocol, Alg: alg, Iter: iter, Messages: messages, Rounds: rounds})
}

// Blocking records loop-freedom tagging activity; tagged may be zero
// (counted in metrics, no event emitted to keep files small).
func (r *Recorder) Blocking(alg string, iter, tagged int) {
	if r == nil || tagged == 0 {
		return
	}
	r.tagged.Add(tagged)
	r.emit(Event{Type: EventBlocking, Alg: alg, Iter: iter, Tagged: tagged})
}

// Divergence records a trajectory declared diverged.
func (r *Recorder) Divergence(alg string, iter int, reason string) {
	if r == nil {
		return
	}
	r.diverged.Inc()
	r.emit(Event{Type: EventDivergence, Alg: alg, Iter: iter, Reason: reason})
}

// SetEta publishes the adaptive controller's current step scale.
func (r *Recorder) SetEta(eta float64) {
	if r == nil {
		return
	}
	r.eta.Set(eta)
}

// SetWorkers publishes the engine's per-commodity wave worker bound.
func (r *Recorder) SetWorkers(n int) {
	if r == nil {
		return
	}
	r.workers.Set(float64(n))
}

// Backtrack counts one adaptive step rollback.
func (r *Recorder) Backtrack() {
	if r == nil {
		return
	}
	r.backtracks.Inc()
}

// ServerMutation records one accepted admission-server mutation. kind
// names the operation ("add_commodity", "set_rate", ...); target the
// commodity/node/link it hit.
func (r *Recorder) ServerMutation(kind, target string) {
	if r == nil {
		return
	}
	r.srvMutations.Inc()
	r.emit(Event{Type: EventServerMutation, Alg: "server", Kind: kind, Target: target})
}

// ServerSolve records one converged admission-server re-solve and the
// snapshot it published.
func (r *Recorder) ServerSolve(generation int64, warm bool, seconds, utility float64, iterations int) {
	if r == nil {
		return
	}
	start := "cold"
	if warm {
		start = "warm"
		r.srvWarm.Inc()
		r.srvWarmLat.Observe(seconds)
	} else {
		r.srvCold.Inc()
		r.srvColdLat.Observe(seconds)
	}
	r.srvGeneration.Set(float64(generation))
	r.srvUtility.Set(utility)
	r.emit(Event{
		Type: EventServerSolve, Alg: "server", Iter: iterations,
		Generation: generation, Start: start, Seconds: seconds, Utility: utility,
	})
}

// Attribution records one commodity's bottleneck attribution at a
// published operating point: the admitted rate, the marginal-utility-
// vs-path-cost gap, and the top binding resource with its shadow price
// (empty bottleneck means the commodity is not capacity-limited). It
// updates per-commodity gauges and emits an "attribution" event.
func (r *Recorder) Attribution(generation int64, commodity string, admitted, gap float64, bottleneck string, price float64) {
	if r == nil {
		return
	}
	r.attributions.Inc()
	r.reg.Gauge("streamopt_commodity_gap",
		"Marginal-utility-vs-path-cost gap per commodity at the latest published solution.",
		"commodity", commodity).Set(gap)
	r.reg.Gauge("streamopt_bottleneck_price",
		"Shadow price of the top binding resource per commodity (0 when unconstrained).",
		"commodity", commodity).Set(price)
	r.emit(Event{
		Type: EventAttribution, Alg: "server", Generation: generation,
		Commodity: commodity, Rate: admitted, Gap: gap,
		Bottleneck: bottleneck, Price: price,
	})
}

// ServerTrace records the state of the solver trace ring when a
// snapshot is published: how many samples it holds out of its capacity,
// at which sampling stride.
func (r *Recorder) ServerTrace(generation int64, samples, capacity, stride int) {
	if r == nil {
		return
	}
	r.traceSamples.Set(float64(samples))
	r.emit(Event{
		Type: EventServerTrace, Alg: "server", Generation: generation,
		Samples: samples, TraceCap: capacity, Stride: stride,
	})
}

// Span exports one finished decision-lifecycle span as a JSONL event;
// it is the span.Emitter implementation a span.Tracer is built over, so
// spans ride the same sink (and rotation, and drop accounting) as every
// other event.
func (r *Recorder) Span(trace, spanID, parent, name string, seconds float64, attrs map[string]string) {
	if r == nil {
		return
	}
	r.spans.Inc()
	r.emit(Event{
		Type: EventSpan, Alg: "server",
		Trace: trace, Span: spanID, Parent: parent, Name: name,
		Seconds: seconds, Attrs: attrs,
	})
}

// DecisionLatency records one mutation's ingress-to-published-snapshot
// latency — the end-to-end number the span tree decomposes.
func (r *Recorder) DecisionLatency(seconds float64) {
	if r == nil {
		return
	}
	r.decisionLat.Observe(seconds)
}

// Capture records one anomaly-triggered diagnostics bundle: a counter
// labelled by the trigger reason (slo_breach, cold_fallback,
// divergence) and a structured event naming the bundle directory.
func (r *Recorder) Capture(reason, bundle string) {
	if r == nil {
		return
	}
	r.reg.Counter("streamopt_capture_total",
		"Anomaly-triggered diagnostics bundles written.", "reason", reason).Inc()
	r.emit(Event{Type: EventCapture, Alg: "server", Reason: reason, Name: bundle})
}

// AdmissionFlip records one commodity crossing the admitted↔rejected
// boundary at a published generation, attributed to the triggering
// mutation batch's trace ID (may be empty when untraced).
func (r *Recorder) AdmissionFlip(generation int64, commodity string, admitted bool, rate float64, traceID string) {
	if r == nil {
		return
	}
	to := "rejected"
	if admitted {
		to = "admitted"
		r.flipAdmitted.Inc()
	} else {
		r.flipRejected.Inc()
	}
	r.emit(Event{
		Type: EventAdmissionFlip, Alg: "server", Generation: generation,
		Commodity: commodity, Rate: rate, To: to, Trace: traceID,
	})
}

// ShardAdvance records one solver shard's state after a price-exchange
// round: cumulative solve seconds and iterations for the current solve,
// the commodity count it owns, and — when the shard actually stepped —
// its advance counter. The last-exchange timestamp feeds streamtop's
// staleness column.
func (r *Recorder) ShardAdvance(shard int, seconds float64, iterations, commodities int, stepped bool, unixSeconds float64) {
	if r == nil {
		return
	}
	label := strconv.Itoa(shard)
	if stepped {
		r.reg.Counter("streamopt_shard_solves_total",
			"Price-exchange rounds in which this shard advanced its gradient engine.",
			"shard", label).Inc()
	}
	r.reg.Gauge("streamopt_shard_solve_seconds",
		"Wall-clock seconds this shard spent advancing in the current solve.",
		"shard", label).Set(seconds)
	r.reg.Gauge("streamopt_shard_iterations",
		"Gradient iterations this shard ran in the current solve.",
		"shard", label).Set(float64(iterations))
	r.reg.Gauge("streamopt_shard_commodities",
		"Commodities currently placed on this shard.",
		"shard", label).Set(float64(commodities))
	r.reg.Gauge("streamopt_shard_last_exchange_unix",
		"Unix time of this shard's latest price-exchange round.",
		"shard", label).Set(unixSeconds)
}

// BuildFootprint records the resident bytes of the latest extended-
// problem build (transform.Extended.BuildBytes: graph, shared tables,
// and the per-commodity sparse subgraphs). shard < 0 means an
// unsharded build and sets only the total; a sharded deployment calls
// this once per shard rebuild and the per-shard series add up to the
// fleet's solver memory footprint.
func (r *Recorder) BuildFootprint(shard int, bytes int64, commodities int) {
	if r == nil {
		return
	}
	if shard >= 0 {
		r.reg.Gauge("streamopt_build_bytes",
			"Bytes held by the latest extended-problem build (sparse per-commodity subgraphs included).",
			"shard", strconv.Itoa(shard)).Set(float64(bytes))
		return
	}
	r.reg.Gauge("streamopt_build_bytes",
		"Bytes held by the latest extended-problem build (sparse per-commodity subgraphs included).").Set(float64(bytes))
	if commodities > 0 {
		r.reg.Gauge("streamopt_build_bytes_per_commodity",
			"Average build bytes per commodity of the latest extended-problem build.").Set(float64(bytes) / float64(commodities))
	}
}

// PriceExchange records one completed coordinator round of the sharded
// solve: the shard count and the largest damped external-usage update
// (relative to capacity scale) the round applied.
func (r *Recorder) PriceExchange(shards int, maxDelta float64) {
	if r == nil {
		return
	}
	r.reg.Gauge("streamopt_shard_count",
		"Solver shards the admission service is partitioned across.").Set(float64(shards))
	r.reg.Counter("streamopt_shard_exchange_rounds_total",
		"Price-exchange rounds run by the shard coordinator.").Inc()
	r.reg.Gauge("streamopt_shard_price_delta",
		"Largest relative external-usage update of the latest exchange round.").Set(maxDelta)
}

// HTTPRequest records one served admission-API request: the per-route
// counter and latency histogram, plus a structured request-log event
// (method/path/status/duration/trace ID) through the sink.
func (r *Recorder) HTTPRequest(route, method, path string, code int, seconds float64, traceID string) {
	if r == nil {
		return
	}
	r.reg.Counter("streamopt_http_requests_total",
		"Admission-API requests served, by route pattern and status.",
		"route", route, "code", strconv.Itoa(code)).Inc()
	r.reg.Histogram("streamopt_http_request_seconds",
		"Admission-API request latency by route pattern.",
		DefaultTimeBuckets, "route", route).Observe(seconds)
	r.emit(Event{
		Type: EventHTTPRequest, Alg: "server",
		Route: route, Method: method, Path: path, Code: code,
		Seconds: seconds, Trace: traceID,
	})
}

// LoadgenEpoch records one virtual-clock epoch of a load-generator run:
// how many commodities are active, the total offered load, how many
// mutations the epoch applied, and the snapshot utility and admitted
// fraction observed at epoch end (NaN admitted fraction is skipped —
// no snapshot yet).
func (r *Recorder) LoadgenEpoch(epoch, active, mutations int, offered, utility, admittedFrac float64) {
	if r == nil {
		return
	}
	r.lgEpochs.Inc()
	r.lgMutations.Add(mutations)
	r.lgActive.Set(float64(active))
	r.lgOffered.Set(offered)
	if admittedFrac == admittedFrac { // not NaN
		r.lgAdmFrac.Set(admittedFrac)
	}
	r.emit(Event{
		Type: EventLoadgenEpoch, Alg: "loadgen", Epoch: epoch,
		Active: active, Mutations: mutations, Offered: offered,
		Utility: utility, AdmittedFrac: admittedFrac,
	})
}

// LoadgenSummary records the end-of-run load-generator report.
func (r *Recorder) LoadgenSummary(epochs, mutations int, seconds, mutPerSec float64) {
	if r == nil {
		return
	}
	r.emit(Event{
		Type: EventLoadgenSummary, Alg: "loadgen", Epoch: epochs,
		Mutations: mutations, Seconds: seconds, MutPerSec: mutPerSec,
	})
}

// SaturationPoint records one offered-load sweep point from the
// saturation analyzer: the scenario scale factor, the mean offered
// load it produced, and the achieved utility, admitted fraction, and
// decision-latency stats measured there.
func (r *Recorder) SaturationPoint(scale, offered, utility, admittedFrac, meanLatency, p95Latency float64) {
	if r == nil {
		return
	}
	r.emit(Event{
		Type: EventSaturationPoint, Alg: "loadgen", Scale: scale,
		Offered: offered, Utility: utility, AdmittedFrac: admittedFrac,
		Seconds: meanLatency, P95Seconds: p95Latency,
	})
}

// QsimTick records one sampled queue-simulator tick: total queued work
// and this tick's delivered/dropped amounts.
func (r *Recorder) QsimTick(tick int, queued, delivered, dropped float64) {
	if r == nil {
		return
	}
	r.qsimQueue.Set(queued)
	r.qsimDelivered.Add(delivered)
	r.qsimDropped.Add(dropped)
	r.emit(Event{
		Type: EventQsimTick, Alg: "qsim", Iter: tick, Tick: tick,
		Queued: queued, Delivered: delivered, Dropped: dropped,
	})
}

// QsimSummary records the end-of-run queue report (stability signal:
// avg/peak queue and Little's-law delay).
func (r *Recorder) QsimSummary(ticks int, avgQueue, peakQueue, delayTicks float64) {
	if r == nil {
		return
	}
	r.emit(Event{
		Type: EventQsimSummary, Alg: "qsim", Iter: ticks, Tick: ticks,
		Queued: avgQueue, PeakQueue: peakQueue, DelayTicks: delayTicks,
	})
}

// PhaseTiming is an in-flight phase stopwatch. The zero value (from a
// nil recorder) is inert.
type PhaseTiming struct {
	r     *Recorder
	p     Phase
	start time.Time
}

// StartPhase begins timing one Step phase; call Done on the result.
// On a nil recorder this is two instructions and no clock read.
func (r *Recorder) StartPhase(p Phase) PhaseTiming {
	if r == nil {
		return PhaseTiming{}
	}
	return PhaseTiming{r: r, p: p, start: time.Now()}
}

// Done records the elapsed wall-clock into the phase histogram, and —
// when a tracer is attached — into the current iteration's phase
// accumulator so the next TraceSample carries the split.
func (t PhaseTiming) Done() {
	if t.r == nil {
		return
	}
	sec := time.Since(t.start).Seconds()
	t.r.phase[t.p].Observe(sec)
	if t.r.tracer != nil {
		t.r.phaseAcc[t.p].Add(sec)
	}
}
