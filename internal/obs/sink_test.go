package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failAfter is a writer that starts failing after n successful writes.
type failAfter struct {
	ok int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.ok <= 0 {
		return 0, errors.New("disk full")
	}
	w.ok--
	return len(p), nil
}

// TestSinkCountsDroppedEvents: write errors are counted, both on the
// sink and on the registry counter a recorder wires in.
func TestSinkCountsDroppedEvents(t *testing.T) {
	sink := NewJSONLSink(&failAfter{ok: 2})
	rec := NewRecorder(NewRegistry(), sink)
	for i := 0; i < 5; i++ {
		rec.Iteration("gradient", i, 1, 2, nil, true)
	}
	if got := sink.Drops(); got != 3 {
		t.Fatalf("sink drops = %d, want 3", got)
	}
	c := rec.Registry().Counter("streamopt_events_dropped_total", "")
	if got := c.Value(); got != 3 {
		t.Fatalf("streamopt_events_dropped_total = %d, want 3", got)
	}
}

// TestMultiSinkForwardsDropCounter: a MultiSink in front of a lossy
// JSONL sink still reports drops through the recorder's counter.
func TestMultiSinkForwardsDropCounter(t *testing.T) {
	lossy := NewJSONLSink(&failAfter{})
	rec := NewRecorder(NewRegistry(), MultiSink{lossy})
	rec.Iteration("gradient", 0, 1, 2, nil, true)
	if got := rec.Registry().Counter("streamopt_events_dropped_total", "").Value(); got != 1 {
		t.Fatalf("dropped counter through MultiSink = %d, want 1", got)
	}
}

// TestRotatingFileSink caps the live file and keeps exactly one rotated
// predecessor, with every surviving line valid JSONL.
func TestRotatingFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	const maxBytes = 2048
	sink, err := NewRotatingFileSink(path, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		sink.Emit(Event{Type: EventIteration, Iter: i, Utility: float64(i)})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Drops() != 0 {
		t.Fatalf("rotation dropped %d events", sink.Drops())
	}

	checkFile := func(p string) int {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		// A rotation triggers after crossing the cap, so allow one
		// line of overshoot.
		if st.Size() > maxBytes+256 {
			t.Fatalf("%s grew to %d bytes, cap %d", p, st.Size(), maxBytes)
		}
		n := 0
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				t.Fatalf("%s has invalid line %q: %v", p, sc.Text(), err)
			}
			n++
		}
		return n
	}
	live := checkFile(path)
	rotated := checkFile(path + ".1")
	if live == 0 || rotated == 0 {
		t.Fatalf("expected both live (%d lines) and rotated (%d lines) files populated", live, rotated)
	}
	// Only one rotation generation is kept.
	if _, err := os.Stat(path + ".2"); !os.IsNotExist(err) {
		t.Fatalf("unexpected second rotation file: %v", err)
	}
}

// TestRotatedStreamStaysParseable: the tail of the rotated file and the
// head of the live file are consecutive iterations (nothing lost at the
// rotation boundary).
func TestRotatedStreamStaysParseable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	sink, err := NewRotatingFileSink(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 0; i < total; i++ {
		sink.Emit(Event{Type: EventIteration, Iter: i})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var iters []int
	for _, p := range []string{path + ".1", path} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var e Event
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("bad line %q: %v", line, err)
			}
			iters = append(iters, e.Iter)
		}
	}
	if iters[len(iters)-1] != total-1 {
		t.Fatalf("last surviving iter = %d, want %d", iters[len(iters)-1], total-1)
	}
	for k := 1; k < len(iters); k++ {
		if iters[k] != iters[k-1]+1 {
			t.Fatalf("gap at rotation boundary: %d then %d", iters[k-1], iters[k])
		}
	}
}
