package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total", "hits")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestRegistryIdempotentCreation(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", "alg", "gradient")
	b := reg.Counter("x_total", "x", "alg", "gradient")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("x_total", "x", "alg", "backpressure")
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 5.605",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelsAndFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("iters_total", "iterations", "alg", "gradient").Add(7)
	reg.Counter("iters_total", "iterations", "alg", "backpressure").Add(2)
	reg.Gauge("utility", "current utility").Set(42.25)
	reg.Histogram("phase_seconds", "", []float64{1}, "phase", "forecast").Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP iters_total iterations",
		"# TYPE iters_total counter",
		`iters_total{alg="gradient"} 7`,
		`iters_total{alg="backpressure"} 2`,
		"utility 42.25",
		`phase_seconds_bucket{phase="forecast",le="1"} 1`,
		`phase_seconds_count{phase="forecast"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with two label sets.
	if n := strings.Count(out, "# TYPE iters_total counter"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

// TestConcurrentMetrics exercises the registry under the race detector.
func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("c_total", "")
			g := reg.Gauge("g", "")
			h := reg.Histogram("h", "", []float64{0.5})
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k%2) * 0.75)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("g", "").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %g, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("h", "", []float64{0.5}).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
