// Package obs is the observability layer for the optimizer loops: a
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus-text and expvar exposition, a structured
// JSONL event system with pluggable sinks, and wall-clock phase timing
// helpers for gradient.Engine.Step.
//
// The design constraint is that the *disabled* path must be free: a nil
// *Recorder is a valid recorder whose every method is a nil-check and a
// return, so the hot per-iteration loops pay nothing when observability
// is off (asserted by TestDisabledRecorderAllocates in this package and
// by the BenchmarkF4* benches staying at seed numbers).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent
// use. The zero value is usable but unregistered; create registered
// counters through Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Swap stores v and returns the previous value atomically.
func (g *Gauge) Swap(v float64) float64 {
	return math.Float64frombits(g.bits.Swap(math.Float64bits(v)))
}

// Histogram accumulates observations into fixed buckets (cumulative,
// Prometheus-style: bucket i counts observations ≤ Buckets[i], with an
// implicit +Inf bucket at the end). Safe for concurrent use.
type Histogram struct {
	// uppers holds the finite bucket upper bounds, ascending.
	uppers []float64
	counts []atomic.Uint64 // len(uppers)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultTimeBuckets spans 1µs to ~16s in powers of four, a good fit
// for per-phase wall-clock timings of the optimizer iterations.
var DefaultTimeBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

func newHistogram(uppers []float64) *Histogram {
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	return &Histogram{uppers: us, counts: make([]atomic.Uint64, len(us)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered time series.
type metric struct {
	family string // metric name without labels
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels string // rendered `k="v",...` (may be empty)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them for scraping. All
// methods are safe for concurrent use; metric creation is idempotent
// (same name+labels returns the existing instance), so hot paths may
// call Counter/Gauge/Histogram repeatedly, though caching the returned
// pointer is cheaper.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	order   []string // insertion order of keys, families grouped on render
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Labels is an alternating key, value, key, value... list. An odd
// trailing key is dropped.
func renderLabels(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

func (r *Registry) get(family, help, kind string, kv []string, mk func() *metric) *metric {
	labels := renderLabels(kv)
	key := family + "{" + labels + "}"
	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.metrics[key]; ok {
		return m
	}
	m = mk()
	m.family, m.help, m.kind, m.labels = family, help, kind, labels
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the registered counter, creating it on first use.
// kv is an alternating label key/value list.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return r.get(name, help, "counter", kv, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.get(name, help, "gauge", kv, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the registered histogram, creating it on first use
// with the given finite bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	return r.get(name, help, "histogram", kv, func() *metric {
		return &metric{hist: newHistogram(buckets)}
	}).hist
}

// snapshot returns the metrics grouped by family in first-registration
// order (Prometheus wants one HELP/TYPE header per family).
func (r *Registry) snapshot() [][]*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var groups [][]*metric
	index := make(map[string]int)
	for _, key := range r.order {
		m := r.metrics[key]
		if i, ok := index[m.family]; ok {
			groups[i] = append(groups[i], m)
			continue
		}
		index[m.family] = len(groups)
		groups = append(groups, []*metric{m})
	}
	return groups
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, family := range r.snapshot() {
		head := family[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", head.family, head.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", head.family, head.kind); err != nil {
			return err
		}
		for _, m := range family {
			if err := writeMetric(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, m *metric) error {
	brace := func(extra string) string {
		switch {
		case m.labels == "" && extra == "":
			return ""
		case m.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + m.labels + "}"
		default:
			return "{" + m.labels + "," + extra + "}"
		}
	}
	switch m.kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", m.family, brace(""), m.counter.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.family, brace(""), formatFloat(m.gauge.Value()))
		return err
	case "histogram":
		h := m.hist
		cum := uint64(0)
		for i, upper := range h.uppers {
			cum += h.counts[i].Load()
			le := fmt.Sprintf(`le="%s"`, formatFloat(upper))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, brace(le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.uppers)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.family, brace(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.family, brace(""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.family, brace(""), h.Count())
		return err
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
