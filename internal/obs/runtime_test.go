package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Hour) // immediate sample only
	defer stop()

	if g := reg.Gauge("streamopt_go_goroutines", "").Value(); g < 1 {
		t.Fatalf("goroutines gauge = %v", g)
	}
	if g := reg.Gauge("streamopt_go_heap_alloc_bytes", "").Value(); g <= 0 {
		t.Fatalf("heap gauge = %v", g)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"streamopt_go_goroutines",
		"streamopt_go_heap_alloc_bytes",
		"streamopt_go_gc_pause_seconds_total",
		"streamopt_go_gcs_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}

	stop()
	stop() // idempotent
}

type memSink struct {
	mu     sync.Mutex
	events []Event
}

func (m *memSink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

func (m *memSink) Close() error { return nil }

func TestRecorderCapture(t *testing.T) {
	reg := NewRegistry()
	sink := &memSink{}
	rec := NewRecorder(reg, sink)
	rec.Capture("slo_breach", "bundles/cap-000001")
	rec.Capture("slo_breach", "bundles/cap-000002")
	rec.Capture("divergence", "bundles/cap-000003")

	if v := reg.Counter("streamopt_capture_total", "", "reason", "slo_breach").Value(); v != 2 {
		t.Fatalf("slo_breach count = %v", v)
	}
	if v := reg.Counter("streamopt_capture_total", "", "reason", "divergence").Value(); v != 1 {
		t.Fatalf("divergence count = %v", v)
	}
	if len(sink.events) != 3 {
		t.Fatalf("emitted %d events", len(sink.events))
	}
	e := sink.events[0]
	if e.Type != EventCapture || e.Reason != "slo_breach" || e.Name != "bundles/cap-000001" {
		t.Fatalf("event = %+v", e)
	}

	var nilRec *Recorder
	nilRec.Capture("slo_breach", "x") // must not panic
}
