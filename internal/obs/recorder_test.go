package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNilRecorderIsSafe calls every method on a nil recorder.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	r.Iteration("gradient", 0, 1, 2, []float64{3}, true)
	r.Protocol("dist", 0, 10, 2)
	r.Blocking("gradient", 0, 1)
	r.Divergence("gradient", 5, "NaN")
	r.SetEta(0.04)
	r.Backtrack()
	r.QsimTick(1, 2, 3, 4)
	r.QsimSummary(100, 1, 2, 3)
	tm := r.StartPhase(PhaseForecast)
	tm.Done()
	if r.Registry() != nil {
		t.Fatal("nil recorder must have nil registry")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledRecorderAllocates pins the acceptance criterion: the
// disabled (nil) recorder adds zero allocations per iteration.
func TestDisabledRecorderAllocates(t *testing.T) {
	var r *Recorder
	admitted := []float64{1, 2, 3}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := r.StartPhase(PhaseForecast)
		tm.Done()
		r.Iteration("gradient", 1, 2, 3, admitted, true)
		r.Protocol("gradient", 1, 4, 2)
		r.Blocking("gradient", 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %v per iteration, want 0", allocs)
	}
}

func TestRecorderEventsAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(nil, NewJSONLSink(&buf))
	r.Iteration("gradient", 0, 10.5, 3.25, []float64{1, 2}, true)
	r.Iteration("gradient", 1, 11, 3, []float64{1.5, 2}, false)
	r.Protocol("gradient", 1, 20, 4)
	r.Blocking("gradient", 1, 2)
	r.Divergence("gradient", 1, "cost non-finite")
	r.QsimTick(10, 5, 1, 0.5)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	it := events[0]
	if it.Type != EventIteration || it.Utility != 10.5 || it.Cost != 3.25 ||
		len(it.Admitted) != 2 || it.Feasible == nil || !*it.Feasible {
		t.Fatalf("bad iteration event: %+v", it)
	}
	if events[1].Feasible == nil || *events[1].Feasible {
		t.Fatalf("second iteration should be infeasible: %+v", events[1])
	}
	if events[2].Type != EventProtocol || events[2].Messages != 20 || events[2].Rounds != 4 {
		t.Fatalf("bad protocol event: %+v", events[2])
	}
	if events[4].Type != EventDivergence || events[4].Reason == "" {
		t.Fatalf("bad divergence event: %+v", events[4])
	}

	reg := r.Registry()
	if got := reg.Counter("streamopt_iterations_total", "").Value(); got != 2 {
		t.Fatalf("iterations counter = %d, want 2", got)
	}
	if got := reg.Gauge("streamopt_utility", "").Value(); got != 11 {
		t.Fatalf("utility gauge = %g, want 11", got)
	}
	if got := reg.Gauge("streamopt_admitted_rate", "", "commodity", "0").Value(); got != 1.5 {
		t.Fatalf("admitted[0] gauge = %g, want 1.5", got)
	}
	if got := reg.Counter("streamopt_protocol_messages_total", "").Value(); got != 20 {
		t.Fatalf("messages counter = %d, want 20", got)
	}
	if got := reg.Counter("streamopt_divergence_total", "").Value(); got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
}

func TestPhaseTimingObserves(t *testing.T) {
	r := NewRecorder(nil, nil)
	tm := r.StartPhase(PhaseMarginal)
	tm.Done()
	h := r.Registry().Histogram("streamopt_step_phase_seconds", "", DefaultTimeBuckets,
		"phase", "marginal")
	if h.Count() != 1 {
		t.Fatalf("phase histogram count = %d, want 1", h.Count())
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(nil, sink)
	r.Iteration("gradient", 0, 1, 2, nil, true)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(bytes.TrimSpace(data), &e); err != nil {
		t.Fatalf("file sink wrote invalid JSON %q: %v", data, err)
	}
	if e.Type != EventIteration {
		t.Fatalf("event type = %q, want iteration", e.Type)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("streamopt_iterations_total", "iterations").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "streamopt_iterations_total 3") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "streamopt") {
		t.Errorf("/debug/vars missing registry mirror:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
