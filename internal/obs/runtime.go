package obs

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeSampler publishes Go runtime health into the registry on
// a ticker: live goroutine count, heap bytes in use, and cumulative GC
// pause time/cycle count. An immediate first sample is taken so the
// gauges are meaningful before the first tick. The returned stop
// function is idempotent and halts the sampler goroutine.
func StartRuntimeSampler(reg *Registry, every time.Duration) func() {
	if every <= 0 {
		every = 10 * time.Second
	}
	goroutines := reg.Gauge("streamopt_go_goroutines", "Live goroutines.")
	heap := reg.Gauge("streamopt_go_heap_alloc_bytes", "Heap bytes allocated and in use.")
	gcPause := reg.Gauge("streamopt_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.")
	gcCount := reg.Gauge("streamopt_go_gcs_total", "Completed GC cycles.")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		gcCount.Set(float64(ms.NumGC))
	}
	sample()

	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
