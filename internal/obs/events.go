package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// EventType tags one JSONL record.
type EventType string

// Event types emitted by the instrumented loops.
const (
	// EventIteration is one optimizer iteration: utility, cost, admitted
	// rates and feasibility (the Figure 4/6 trajectory data).
	EventIteration EventType = "iteration"
	// EventProtocol reports the distributed-protocol cost of one
	// iteration: messages exchanged and sequential rounds (§6's O(L)
	// discussion).
	EventProtocol EventType = "protocol"
	// EventDivergence is emitted when a gradient trajectory is declared
	// diverged (NaN or sustained non-finite cost).
	EventDivergence EventType = "divergence"
	// EventBlocking reports loop-freedom tagging activity: how many
	// (commodity, node) pairs were blocked this iteration.
	EventBlocking EventType = "blocking"
	// EventQsimTick is a sampled queue-simulator tick summary.
	EventQsimTick EventType = "qsim_tick"
	// EventQsimSummary is the end-of-run queue-simulator report.
	EventQsimSummary EventType = "qsim_summary"
	// EventServerMutation is one accepted admission-server mutation
	// (commodity added/removed, rate/utility/capacity/bandwidth change).
	EventServerMutation EventType = "server_mutation"
	// EventServerSolve is one converged admission-server re-solve: the
	// published snapshot generation, whether it warm-started, its
	// wall-clock, and the utility it settled at.
	EventServerSolve EventType = "server_solve"
	// EventAttribution is one commodity's bottleneck attribution at a
	// published solution: admitted rate, marginal-utility gap, and the
	// top binding resource with its shadow price.
	EventAttribution EventType = "attribution"
	// EventServerTrace reports the solver trace ring's occupancy when a
	// snapshot is published.
	EventServerTrace EventType = "server_trace"
	// EventSpan is one finished decision-lifecycle span (see
	// internal/obs/span): trace/span/parent IDs, name, duration, attrs.
	EventSpan EventType = "span"
	// EventHTTPRequest is one served admission-API request: route
	// pattern, method, path, status, latency, and the request's W3C
	// trace ID when a traceparent header was sent.
	EventHTTPRequest EventType = "http_request"
	// EventAdmissionFlip is one commodity crossing the admitted↔rejected
	// boundary between consecutive snapshot generations, attributed to
	// the trace ID of the mutation batch that triggered the re-solve.
	EventAdmissionFlip EventType = "admission_flip"
	// EventLoadgenEpoch is one virtual-clock epoch of a load-generator
	// run: active commodities, total offered load, mutations applied,
	// and the snapshot utility/admitted fraction observed at epoch end.
	EventLoadgenEpoch EventType = "loadgen_epoch"
	// EventLoadgenSummary is the end-of-run load-generator report:
	// epochs driven, mutations applied, wall-clock, and throughput.
	EventLoadgenSummary EventType = "loadgen_summary"
	// EventSaturationPoint is one offered-load sweep point from the
	// saturation analyzer: scale factor, mean offered load, achieved
	// utility, admitted fraction, and decision-latency stats.
	EventSaturationPoint EventType = "saturation_point"
	// EventCapture is one anomaly-triggered diagnostics bundle dump:
	// Reason names the trigger (slo_breach, cold_fallback, divergence),
	// Name the bundle directory written.
	EventCapture EventType = "capture"
)

// Event is one structured record. Fields not meaningful for a type are
// omitted from the JSON encoding; TMs is milliseconds since the
// recorder was created, so events from one run share a clock.
type Event struct {
	TMs  int64     `json:"t_ms"`
	Type EventType `json:"type"`
	Alg  string    `json:"alg,omitempty"`
	Iter int       `json:"iter"`

	// Iteration fields.
	Utility  float64   `json:"utility,omitempty"`
	Cost     float64   `json:"cost,omitempty"`
	Admitted []float64 `json:"admitted,omitempty"`
	Feasible *bool     `json:"feasible,omitempty"`

	// Protocol fields.
	Messages int `json:"messages,omitempty"`
	Rounds   int `json:"rounds,omitempty"`

	// Blocking fields.
	Tagged int `json:"tagged,omitempty"`

	// Divergence detail.
	Reason string `json:"reason,omitempty"`

	// Qsim fields (tick summaries and final report).
	Tick       int     `json:"tick,omitempty"`
	Queued     float64 `json:"queued,omitempty"`
	Delivered  float64 `json:"delivered,omitempty"`
	Dropped    float64 `json:"dropped,omitempty"`
	PeakQueue  float64 `json:"peak_queue,omitempty"`
	DelayTicks float64 `json:"delay_ticks,omitempty"`

	// Admission-server fields.
	Generation int64   `json:"generation,omitempty"`
	Start      string  `json:"start,omitempty"` // "warm" | "cold"
	Kind       string  `json:"kind,omitempty"`  // mutation kind
	Target     string  `json:"target,omitempty"`
	Seconds    float64 `json:"seconds,omitempty"`

	// Attribution fields.
	Commodity  string  `json:"commodity,omitempty"`
	Rate       float64 `json:"rate,omitempty"` // admitted rate a_j
	Gap        float64 `json:"gap,omitempty"`  // U'_j(a_j) − path cost
	Bottleneck string  `json:"bottleneck,omitempty"`
	Price      float64 `json:"price,omitempty"`

	// Trace-ring fields.
	Samples  int `json:"samples,omitempty"`
	TraceCap int `json:"trace_cap,omitempty"`
	Stride   int `json:"stride,omitempty"`

	// Span fields (also Seconds for the duration). Trace doubles as the
	// request trace ID on http_request and admission_flip events.
	Trace  string            `json:"trace,omitempty"`
	Span   string            `json:"span,omitempty"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`

	// HTTP request fields (also Seconds for the latency).
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	Route  string `json:"route,omitempty"`
	Code   int    `json:"code,omitempty"`

	// Admission-flip fields (also Generation, Commodity, Rate, Trace):
	// To is the new state, "admitted" or "rejected".
	To string `json:"to,omitempty"`

	// Load-generator fields (loadgen_epoch, loadgen_summary,
	// saturation_point; also Utility, Seconds).
	Epoch        int     `json:"epoch,omitempty"`
	Active       int     `json:"active,omitempty"`
	Offered      float64 `json:"offered,omitempty"`
	Mutations    int     `json:"mutations,omitempty"`
	Scale        float64 `json:"scale,omitempty"`
	AdmittedFrac float64 `json:"admitted_frac,omitempty"`
	MutPerSec    float64 `json:"mut_per_sec,omitempty"`
	P95Seconds   float64 `json:"p95_seconds,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
	Close() error
}

// dropReporting is implemented by sinks that can lose events and count
// the losses; NewRecorder wires a registry counter
// (streamopt_events_dropped_total) into any such sink it is given.
type dropReporting interface {
	SetDropCounter(*Counter)
}

// JSONLSink writes one JSON object per line to an io.Writer. Events
// that cannot be encoded or written are dropped — observability must
// never fail the solve — but, unlike silent best-effort logging, every
// drop is counted (Drops, and the streamopt_events_dropped_total
// counter when the sink is attached to a recorder). File-backed sinks
// can additionally rotate when a size cap is reached, so long soaks do
// not grow an unbounded events file.
type JSONLSink struct {
	mu      sync.Mutex
	w       io.Writer // nil after an unrecoverable rotation failure
	buf     *bufio.Writer
	c       io.Closer
	enc     *json.Encoder // bound to scratch
	scratch bytes.Buffer

	// Rotation state (zero maxBytes disables).
	path     string
	maxBytes int64
	written  int64

	drops   atomic.Uint64
	counter *Counter // optional registry mirror of drops
}

// NewJSONLSink wraps a writer. The caller keeps ownership of the
// writer; Close only flushes internal state.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: w}
	s.enc = json.NewEncoder(&s.scratch)
	return s
}

// NewFileSink creates (truncating) the named file and returns a
// buffered JSONL sink over it; Close flushes and closes the file.
func NewFileSink(path string) (*JSONLSink, error) {
	return NewRotatingFileSink(path, 0)
}

// NewRotatingFileSink is NewFileSink with a size cap: once the file
// exceeds maxBytes, it is renamed to path+".1" (replacing any previous
// rotation) and a fresh file is started, bounding total disk use at
// roughly 2×maxBytes. maxBytes ≤ 0 disables rotation.
func NewRotatingFileSink(path string, maxBytes int64) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	s := &JSONLSink{w: buf, buf: buf, c: f, path: path, maxBytes: maxBytes}
	s.enc = json.NewEncoder(&s.scratch)
	return s, nil
}

// SetDropCounter mirrors future drops into a registry counter
// (idempotent; called by NewRecorder).
func (s *JSONLSink) SetDropCounter(c *Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter = c
}

// Drops reports how many events were lost to encode or write errors.
func (s *JSONLSink) Drops() uint64 { return s.drops.Load() }

// drop counts one lost event; callers hold s.mu.
func (s *JSONLSink) drop() {
	s.drops.Add(1)
	if s.counter != nil {
		s.counter.Inc()
	}
}

// Emit encodes the event as one line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		s.drop()
		return
	}
	s.scratch.Reset()
	if err := s.enc.Encode(e); err != nil {
		s.drop()
		return
	}
	n, err := s.w.Write(s.scratch.Bytes())
	s.written += int64(n)
	if err != nil {
		s.drop()
		return
	}
	if s.maxBytes > 0 && s.written >= s.maxBytes {
		s.rotate()
	}
}

// rotate moves the current file to path+".1" and starts a fresh one.
// On failure the sink goes dead and subsequent emits count as drops —
// better a bounded gap in the event stream than unbounded disk growth.
// Callers hold s.mu.
func (s *JSONLSink) rotate() {
	if s.buf != nil {
		_ = s.buf.Flush()
	}
	if s.c != nil {
		_ = s.c.Close()
	}
	_ = os.Rename(s.path, s.path+".1")
	f, err := os.Create(s.path)
	if err != nil {
		s.w, s.buf, s.c = nil, nil, nil
		s.drop()
		return
	}
	s.buf = bufio.NewWriterSize(f, 1<<16)
	s.w, s.c = s.buf, f
	s.written = 0
}

// Close flushes buffered output and closes the file when owned.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.buf != nil {
		err = s.buf.Flush()
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	s.w, s.buf, s.c = nil, nil, nil
	return err
}

// MultiSink fans one event out to several sinks.
type MultiSink []Sink

// Emit forwards to every sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// SetDropCounter forwards the drop counter to every member sink that
// counts drops, so a MultiSink wired into a recorder still reports
// streamopt_events_dropped_total.
func (m MultiSink) SetDropCounter(c *Counter) {
	for _, s := range m {
		if dr, ok := s.(dropReporting); ok {
			dr.SetDropCounter(c)
		}
	}
}

// Close closes every sink, returning the first error.
func (m MultiSink) Close() error {
	var err error
	for _, s := range m {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// now is the recorder's clock base helper.
func sinceMs(start time.Time) int64 { return time.Since(start).Milliseconds() }
