package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// EventType tags one JSONL record.
type EventType string

// Event types emitted by the instrumented loops.
const (
	// EventIteration is one optimizer iteration: utility, cost, admitted
	// rates and feasibility (the Figure 4/6 trajectory data).
	EventIteration EventType = "iteration"
	// EventProtocol reports the distributed-protocol cost of one
	// iteration: messages exchanged and sequential rounds (§6's O(L)
	// discussion).
	EventProtocol EventType = "protocol"
	// EventDivergence is emitted when a gradient trajectory is declared
	// diverged (NaN or sustained non-finite cost).
	EventDivergence EventType = "divergence"
	// EventBlocking reports loop-freedom tagging activity: how many
	// (commodity, node) pairs were blocked this iteration.
	EventBlocking EventType = "blocking"
	// EventQsimTick is a sampled queue-simulator tick summary.
	EventQsimTick EventType = "qsim_tick"
	// EventQsimSummary is the end-of-run queue-simulator report.
	EventQsimSummary EventType = "qsim_summary"
	// EventServerMutation is one accepted admission-server mutation
	// (commodity added/removed, rate/utility/capacity/bandwidth change).
	EventServerMutation EventType = "server_mutation"
	// EventServerSolve is one converged admission-server re-solve: the
	// published snapshot generation, whether it warm-started, its
	// wall-clock, and the utility it settled at.
	EventServerSolve EventType = "server_solve"
)

// Event is one structured record. Fields not meaningful for a type are
// omitted from the JSON encoding; TMs is milliseconds since the
// recorder was created, so events from one run share a clock.
type Event struct {
	TMs  int64     `json:"t_ms"`
	Type EventType `json:"type"`
	Alg  string    `json:"alg,omitempty"`
	Iter int       `json:"iter"`

	// Iteration fields.
	Utility  float64   `json:"utility,omitempty"`
	Cost     float64   `json:"cost,omitempty"`
	Admitted []float64 `json:"admitted,omitempty"`
	Feasible *bool     `json:"feasible,omitempty"`

	// Protocol fields.
	Messages int `json:"messages,omitempty"`
	Rounds   int `json:"rounds,omitempty"`

	// Blocking fields.
	Tagged int `json:"tagged,omitempty"`

	// Divergence detail.
	Reason string `json:"reason,omitempty"`

	// Qsim fields (tick summaries and final report).
	Tick       int     `json:"tick,omitempty"`
	Queued     float64 `json:"queued,omitempty"`
	Delivered  float64 `json:"delivered,omitempty"`
	Dropped    float64 `json:"dropped,omitempty"`
	PeakQueue  float64 `json:"peak_queue,omitempty"`
	DelayTicks float64 `json:"delay_ticks,omitempty"`

	// Admission-server fields.
	Generation int64   `json:"generation,omitempty"`
	Start      string  `json:"start,omitempty"` // "warm" | "cold"
	Kind       string  `json:"kind,omitempty"`  // mutation kind
	Target     string  `json:"target,omitempty"`
	Seconds    float64 `json:"seconds,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
	Close() error
}

// JSONLSink writes one JSON object per line to an io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	buf *bufio.Writer // nil unless we own buffering
	c   io.Closer     // nil unless we own the underlying file
}

// NewJSONLSink wraps a writer. The caller keeps ownership of the
// writer; Close only flushes internal state.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// NewFileSink creates (truncating) the named file and returns a
// buffered JSONL sink over it; Close flushes and closes the file.
func NewFileSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	buf := bufio.NewWriterSize(f, 1<<16)
	return &JSONLSink{enc: json.NewEncoder(buf), buf: buf, c: f}, nil
}

// Emit encodes the event as one line. Encoding errors are dropped:
// observability must never fail the solve.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// Close flushes buffered output and closes the file when owned.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.buf != nil {
		err = s.buf.Flush()
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiSink fans one event out to several sinks.
type MultiSink []Sink

// Emit forwards to every sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Close closes every sink, returning the first error.
func (m MultiSink) Close() error {
	var err error
	for _, s := range m {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// now is the recorder's clock base helper.
func sinceMs(start time.Time) int64 { return time.Since(start).Milliseconds() }
