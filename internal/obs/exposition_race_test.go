package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentExpositionWhileWritersHot scrapes /metrics and
// /debug/vars over real HTTP while writer goroutines hammer counters,
// gauges and histograms — including creating new labeled series mid-
// scrape. Under -race (CI runs this package repeatedly with -count=5)
// it pins the registry's no-locks-on-the-hot-path claim; structurally
// it asserts every scrape succeeds and is complete. Writers only stop
// after the last scrape, so exposition is always under write pressure.
func TestConcurrentExpositionWhileWritersHot(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Pre-register one of each kind so every scrape must see them.
	reg.Counter("race_iters_total", "writes under scrape").Add(1)
	reg.Gauge("race_utility", "writes under scrape").Set(1)
	reg.Histogram("race_seconds", "writes under scrape", nil).Observe(0.01)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for wid := 0; wid < 3; wid++ {
		writers.Add(1)
		go func(wid int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("race_iters_total", "").Add(1)
				reg.Gauge("race_utility", "").Set(float64(i))
				reg.Histogram("race_seconds", "", nil).Observe(float64(i%100) / 1000)
				// New labeled series appear while exposition walks the
				// registry — the hardest case for torn reads.
				reg.Counter("race_labeled_total", "",
					"writer", fmt.Sprint(wid), "mod", fmt.Sprint(i%8)).Add(1)
			}
		}(wid)
	}

	scrape := func(path, want string) error {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("%s scrape missing %q:\n%.500s", path, want, body)
		}
		return nil
	}

	var scrapers sync.WaitGroup
	scrapeErr := make(chan error, 4)
	for r := 0; r < 2; r++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 10; i++ {
				if err := scrape("/metrics", "race_iters_total"); err != nil {
					scrapeErr <- err
					return
				}
				if err := scrape("/debug/vars", "streamopt"); err != nil {
					scrapeErr <- err
					return
				}
			}
		}()
	}

	scrapers.Wait()
	close(stop)
	writers.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// The counter survived the stampede with a coherent value.
	if got := reg.Counter("race_iters_total", "").Value(); got == 0 {
		t.Fatal("writer counter lost its updates")
	}
}
