package span

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Attach mounts the span exposition on an existing mux, the way
// obs.Attach mounts /metrics (the span ring cannot live in obs itself —
// span imports obs for the sink machinery):
//
//	GET /debug/spans                 all retained spans, oldest first
//	  ?trace=<32 hex>                one decision lifecycle's span tree
//	  ?name=<span name>              e.g. name=solve
//	  ?commodity=<name>              spans annotated with that commodity
//	  ?min_ms=<float>                spans at least this long
//
// The response is {"capacity","retained","started","finished","spans"}.
// A span tree is reassembled client-side from the parent links: every
// span of one trace shares the trace ID, and Parent names the span it
// hangs under.
func Attach(mux *http.ServeMux, t *Tracer) {
	mux.HandleFunc("GET /debug/spans", Handler(t))
}

// isTraceHex reports whether s is a 32-character lowercase-hex trace
// ID — the only spelling TraceHex produces, so anything else can never
// match and is a client error.
func isTraceHex(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Handler returns the GET /debug/spans handler for mounting on muxes
// that cannot use Attach. A nil tracer serves 404. Malformed or unknown
// query parameters are rejected with 400 rather than silently matching
// nothing.
func Handler(t *Tracer) http.HandlerFunc {
	// Errors use the admission API's uniform envelope:
	// {"error": {"code": ..., "message": ...}}.
	writeErr := func(w http.ResponseWriter, status int, code, msg string) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]map[string]string{
			"error": {"code": code, "message": msg},
		})
	}
	badRequest := func(w http.ResponseWriter, msg string) {
		writeErr(w, http.StatusBadRequest, "invalid_argument", msg)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			writeErr(w, http.StatusNotFound, "not_found", "span tracing not enabled")
			return
		}
		q := r.URL.Query()
		for key := range q {
			switch key {
			case "trace", "name", "commodity", "min_ms":
			default:
				badRequest(w, "unknown query parameter "+strconv.Quote(key)+
					" (want trace, name, commodity, min_ms)")
				return
			}
		}
		f := Filter{
			Trace: q.Get("trace"),
			Name:  q.Get("name"),
		}
		if f.Trace != "" && !isTraceHex(f.Trace) {
			badRequest(w, "trace must be 32 lowercase hex characters")
			return
		}
		if c := q.Get("commodity"); c != "" {
			f.AttrKey, f.AttrVal = "commodity", c
		}
		if ms := q.Get("min_ms"); ms != "" {
			v, err := strconv.ParseFloat(ms, 64)
			if err != nil || v < 0 {
				badRequest(w, "min_ms must be a non-negative number")
				return
			}
			f.MinDuration = time.Duration(v * float64(time.Millisecond))
		}
		started, finished := t.Stats()
		spans := t.Spans(f)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"capacity": t.Cap(),
			"retained": t.Len(),
			"started":  started,
			"finished": finished,
			"spans":    spans,
		})
	}
}
