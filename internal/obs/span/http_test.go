package span

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

type spansPage struct {
	Capacity int    `json:"capacity"`
	Retained int    `json:"retained"`
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	Spans    []Span `json:"spans"`
}

func getSpans(t *testing.T, h http.Handler, url string) (int, spansPage) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var page spansPage
	if rr.Code == http.StatusOK {
		if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return rr.Code, page
}

func TestHandlerNilTracer(t *testing.T) {
	code, _ := getSpans(t, Handler(nil), "/debug/spans")
	if code != http.StatusNotFound {
		t.Errorf("nil tracer status = %d, want 404", code)
	}
}

func TestHandlerFilters(t *testing.T) {
	tr := New(16, nil)
	a := tr.Start("decision", Context{})
	a.SetAttr("commodity", "S1")
	a.End()
	b := tr.StartAt("solve", a.Context(), time.Now().Add(-time.Second))
	b.End()
	other := tr.Start("decision", Context{})
	other.End()

	mux := http.NewServeMux()
	Attach(mux, tr)

	code, page := getSpans(t, mux, "/debug/spans")
	if code != http.StatusOK || page.Retained != 3 || len(page.Spans) != 3 {
		t.Fatalf("unfiltered: code=%d page=%+v", code, page)
	}
	if page.Capacity != 16 || page.Started != 3 || page.Finished != 3 {
		t.Errorf("page stats = %+v", page)
	}

	if _, p := getSpans(t, mux, "/debug/spans?trace="+a.Context().TraceHex()); len(p.Spans) != 2 {
		t.Errorf("trace filter returned %d spans, want 2", len(p.Spans))
	}
	if _, p := getSpans(t, mux, "/debug/spans?name=solve"); len(p.Spans) != 1 {
		t.Errorf("name filter returned %d spans, want 1", len(p.Spans))
	}
	if _, p := getSpans(t, mux, "/debug/spans?commodity=S1"); len(p.Spans) != 1 {
		t.Errorf("commodity filter returned %d spans, want 1", len(p.Spans))
	}
	if _, p := getSpans(t, mux, "/debug/spans?min_ms=500"); len(p.Spans) != 1 {
		t.Errorf("min_ms filter returned %d spans, want 1", len(p.Spans))
	}

	if code, _ := getSpans(t, mux, "/debug/spans?min_ms=banana"); code != http.StatusBadRequest {
		t.Errorf("bad min_ms status = %d, want 400", code)
	}
	if code, _ := getSpans(t, mux, "/debug/spans?min_ms=-1"); code != http.StatusBadRequest {
		t.Errorf("negative min_ms status = %d, want 400", code)
	}
}
