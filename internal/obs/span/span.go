// Package span is the decision-lifecycle tracer: cheap hierarchical
// spans with W3C trace-context interop, a bounded in-memory ring of
// finished spans, and JSONL export through the obs sink machinery.
//
// The admission server uses it to tie one HTTP mutation to the solve
// generation that incorporated it: a root "decision" span opens at
// mutation ingress (adopting the client's `traceparent` when one was
// sent), child spans cover the coalescing wait and the solve phases,
// and the root closes when the first snapshot containing the mutation
// publishes — so `GET /debug/spans?trace=...` returns the full
// ingress→coalesce→solve→publish tree for any request, and the gap
// between root start and root end IS the decision latency the
// streamopt_decision_latency_seconds histogram measures.
//
// The design constraint mirrors internal/obs and internal/obs/trace: a
// nil *Tracer is a valid, inert tracer. Every method on a nil *Tracer
// or nil *Active is a nil-check and a return — zero allocations, no
// clock reads — so the disabled path costs nothing on the solver loop
// (asserted by TestNilTracerAllocates and BenchmarkDecisionSpan).
package span

import (
	"encoding/hex"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier shared by every span of
// one decision lifecycle. The zero value is invalid per the spec.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier. The zero value is invalid.
type SpanID [8]byte

// Context identifies one position in a trace: which trace, which span.
// The zero Context is "no context" — starting a span under it begins a
// fresh trace.
type Context struct {
	Trace TraceID
	Span  SpanID
	// Flags is the W3C trace-flags byte; bit 0 is "sampled".
	Flags byte
}

// Valid reports whether the context carries a usable trace and span ID
// (both must be non-zero, per the W3C trace-context spec).
func (c Context) Valid() bool {
	return c.Trace != TraceID{} && c.Span != SpanID{}
}

// TraceHex renders the trace ID as 32 lowercase hex characters, or ""
// for the zero trace.
func (c Context) TraceHex() string {
	if c.Trace == (TraceID{}) {
		return ""
	}
	return hex.EncodeToString(c.Trace[:])
}

// SpanHex renders the span ID as 16 lowercase hex characters, or ""
// for the zero span.
func (c Context) SpanHex() string {
	if c.Span == (SpanID{}) {
		return ""
	}
	return hex.EncodeToString(c.Span[:])
}

// Traceparent renders the context in the W3C `traceparent` header form
// (version 00): 00-<trace-id>-<span-id>-<flags>.
func (c Context) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, c.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, c.Span[:])
	b = append(b, '-')
	if c.Flags < 0x10 {
		b = append(b, '0')
	}
	b = strconv.AppendUint(b, uint64(c.Flags), 16)
	return string(b)
}

// ParseTraceparent parses a W3C `traceparent` header value:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00        32 hex      16 hex        2 hex
//
// Hex digits must be lowercase, the version must not be "ff", and the
// trace and parent IDs must be non-zero. Per the spec, a version other
// than 00 may carry extra fields after the flags; they are ignored. An
// empty or malformed value returns ErrTraceparent and the zero Context,
// which is safe to pass to Tracer.Start (it begins a fresh trace).
func ParseTraceparent(s string) (Context, error) {
	var c Context
	if len(s) < 55 {
		return Context{}, ErrTraceparent
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Context{}, ErrTraceparent
	}
	ver, ok := parseHexByte(s[0:2])
	if !ok || ver == 0xff {
		return Context{}, ErrTraceparent
	}
	if ver == 0 && len(s) != 55 {
		return Context{}, ErrTraceparent
	}
	if ver != 0 && len(s) > 55 && s[55] != '-' {
		return Context{}, ErrTraceparent
	}
	if !decodeLowerHex(c.Trace[:], s[3:35]) || !decodeLowerHex(c.Span[:], s[36:52]) {
		return Context{}, ErrTraceparent
	}
	flags, ok := parseHexByte(s[53:55])
	if !ok {
		return Context{}, ErrTraceparent
	}
	c.Flags = flags
	if !c.Valid() {
		return Context{}, ErrTraceparent
	}
	return c, nil
}

// ErrTraceparent is returned by ParseTraceparent for any value that is
// not a well-formed W3C traceparent.
var ErrTraceparent = errTraceparent{}

type errTraceparent struct{}

func (errTraceparent) Error() string { return "span: malformed traceparent" }

// decodeLowerHex fills dst from the lowercase hex string src (the W3C
// spec forbids uppercase); it reports whether every digit was valid.
func decodeLowerHex(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func parseHexByte(s string) (byte, bool) {
	hi, ok1 := hexVal(s[0])
	lo, ok2 := hexVal(s[1])
	return hi<<4 | lo, ok1 && ok2
}

func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Span is one finished span as retained by the ring and served on
// GET /debug/spans. All fields are immutable after End.
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUnixMs is the wall-clock start in Unix milliseconds;
	// DurationMs the span's length. Milliseconds suit the decision
	// timescale (solves are ms to seconds); the JSONL export carries
	// full float seconds.
	StartUnixMs int64             `json:"startUnixMs"`
	DurationMs  float64           `json:"durationMs"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Emitter receives every finished span for export; *obs.Recorder
// implements it (Recorder.Span), routing spans as JSONL events through
// whatever sink the recorder owns. A nil-pointer Recorder inside the
// interface is fine — its method nil-checks.
type Emitter interface {
	Span(trace, span, parent, name string, seconds float64, attrs map[string]string)
}

// Tracer issues spans and retains the last Cap finished ones in a ring.
// A nil *Tracer is valid and inert. Safe for concurrent use from any
// number of goroutines.
type Tracer struct {
	em Emitter

	mu       sync.Mutex
	buf      []Span
	next     int
	filled   bool
	started  uint64
	finished uint64
}

// DefaultCapacity is the ring size used when New is given cap ≤ 0.
const DefaultCapacity = 4096

// New builds a tracer retaining up to capacity finished spans
// (DefaultCapacity when ≤ 0). em may be nil (ring only, no export).
func New(capacity int, em Emitter) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{em: em, buf: make([]Span, 0, capacity)}
}

// Active is one in-flight span. It is owned by the goroutine(s) that
// hold it; SetAttr and End are mutex-guarded so a span may be annotated
// from the HTTP goroutine and ended from the solver goroutine. A nil
// *Active (from a nil Tracer) is valid and inert.
type Active struct {
	t *Tracer

	mu     sync.Mutex
	ctx    Context
	parent SpanID
	name   string
	start  time.Time
	attrs  map[string]string
	ended  bool
}

// Start opens a span under parent (zero parent begins a fresh trace),
// starting now. Returns nil on a nil tracer.
func (t *Tracer) Start(name string, parent Context) *Active {
	if t == nil {
		return nil
	}
	return t.StartAt(name, parent, time.Now())
}

// StartAt is Start with an explicit start time (zero means now) — used
// to backdate a span to when an HTTP request actually arrived.
func (t *Tracer) StartAt(name string, parent Context, at time.Time) *Active {
	if t == nil {
		return nil
	}
	if at.IsZero() {
		at = time.Now()
	}
	a := &Active{t: t, name: name, start: at}
	if parent.Trace != (TraceID{}) {
		a.ctx.Trace = parent.Trace
		a.parent = parent.Span
		a.ctx.Flags = parent.Flags
	} else {
		randFill(a.ctx.Trace[:])
		a.ctx.Flags = 0x01 // sampled
	}
	randFill(a.ctx.Span[:])
	t.mu.Lock()
	t.started++
	t.mu.Unlock()
	return a
}

// randFill fills b with non-zero pseudo-random bytes (the W3C spec
// forbids all-zero IDs; re-rolling on the astronomically unlikely zero
// keeps Valid() honest).
func randFill(b []byte) {
	for {
		zero := true
		for i := 0; i < len(b); i += 8 {
			v := rand.Uint64()
			for j := i; j < len(b) && j < i+8; j++ {
				b[j] = byte(v)
				v >>= 8
				if b[j] != 0 {
					zero = false
				}
			}
		}
		if !zero {
			return
		}
	}
}

// Context returns the span's own context, for starting children or
// injecting into an outbound `traceparent`. Zero on nil.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return a.ctx
}

// SetAttr annotates the span. Attributes set after End are dropped.
func (a *Active) SetAttr(key, val string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ended {
		return
	}
	if a.attrs == nil {
		a.attrs = make(map[string]string, 4)
	}
	a.attrs[key] = val
}

// SetAttrInt annotates the span with an integer value.
func (a *Active) SetAttrInt(key string, val int64) {
	a.SetAttr(key, strconv.FormatInt(val, 10))
}

// SetAttrFloat annotates the span with a float value.
func (a *Active) SetAttrFloat(key string, val float64) {
	a.SetAttr(key, strconv.FormatFloat(val, 'g', -1, 64))
}

// SetAttrBool annotates the span with a boolean value.
func (a *Active) SetAttrBool(key string, val bool) {
	a.SetAttr(key, strconv.FormatBool(val))
}

// End finishes the span: it is appended to the tracer's ring
// (overwriting the oldest once full) and exported through the emitter.
// End is idempotent; only the first call records.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	dur := time.Since(a.start)
	s := Span{
		Trace:       hex.EncodeToString(a.ctx.Trace[:]),
		ID:          hex.EncodeToString(a.ctx.Span[:]),
		Name:        a.name,
		StartUnixMs: a.start.UnixMilli(),
		DurationMs:  float64(dur) / float64(time.Millisecond),
		Attrs:       a.attrs,
	}
	if a.parent != (SpanID{}) {
		s.Parent = hex.EncodeToString(a.parent[:])
	}
	a.mu.Unlock()

	t := a.t
	t.mu.Lock()
	t.finished++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.next] = s
		t.next = (t.next + 1) % len(t.buf)
		t.filled = true
	}
	t.mu.Unlock()
	if t.em != nil {
		t.em.Span(s.Trace, s.ID, s.Parent, s.Name, dur.Seconds(), s.Attrs)
	}
}

// Filter selects spans from the ring. Zero fields match everything.
type Filter struct {
	// Trace matches the 32-hex trace ID exactly.
	Trace string
	// Name matches the span name exactly.
	Name string
	// AttrKey/AttrVal match spans carrying that attribute; AttrKey
	// alone matches any value.
	AttrKey string
	AttrVal string
	// MinDuration drops spans shorter than this.
	MinDuration time.Duration
}

func (f Filter) match(s Span) bool {
	if f.Trace != "" && s.Trace != f.Trace {
		return false
	}
	if f.Name != "" && s.Name != f.Name {
		return false
	}
	if f.AttrKey != "" {
		v, ok := s.Attrs[f.AttrKey]
		if !ok || (f.AttrVal != "" && v != f.AttrVal) {
			return false
		}
	}
	if f.MinDuration > 0 && s.DurationMs < float64(f.MinDuration)/float64(time.Millisecond) {
		return false
	}
	return true
}

// Spans returns the retained spans matching f, oldest first, as a copy
// safe to hold across further writes. Nil tracer returns nil.
func (t *Tracer) Spans(f Filter) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	add := func(ss []Span) {
		for _, s := range ss {
			if f.match(s) {
				out = append(out, s)
			}
		}
	}
	if t.filled {
		add(t.buf[t.next:])
		add(t.buf[:t.next])
	} else {
		add(t.buf)
	}
	return out
}

// Len reports how many finished spans the ring currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Cap reports the ring's fixed capacity (0 for nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Stats reports how many spans were started and finished over the
// tracer's lifetime (finished − retained = spans evicted by the ring).
func (t *Tracer) Stats() (started, finished uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.finished
}
