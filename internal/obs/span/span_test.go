package span

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const (
	goodTrace  = "0af7651916cd43dd8448eb211c80319c"
	goodParent = "b7ad6b7169203331"
	goodTP     = "00-" + goodTrace + "-" + goodParent + "-01"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", goodTP, true},
		{"flags zero", "00-" + goodTrace + "-" + goodParent + "-00", true},
		{"future version", "cc-" + goodTrace + "-" + goodParent + "-01", true},
		{"future version with suffix", "cc-" + goodTrace + "-" + goodParent + "-01-extra-stuff", true},
		{"empty", "", false},
		{"too short", "00-abc-def-01", false},
		{"version ff", "ff-" + goodTrace + "-" + goodParent + "-01", false},
		{"version not hex", "zz-" + goodTrace + "-" + goodParent + "-01", false},
		{"uppercase trace", "00-" + strings.ToUpper(goodTrace) + "-" + goodParent + "-01", false},
		{"uppercase parent", "00-" + goodTrace + "-" + strings.ToUpper(goodParent) + "-01", false},
		{"zero trace", "00-00000000000000000000000000000000-" + goodParent + "-01", false},
		{"zero parent", "00-" + goodTrace + "-0000000000000000-01", false},
		{"missing dash", "00_" + goodTrace + "-" + goodParent + "-01", false},
		{"version 00 trailing", goodTP + "-extra", false},
		{"version 00 trailing junk", goodTP + "x", false},
		{"future version bad suffix", "cc-" + goodTrace + "-" + goodParent + "-01x", false},
		{"bad flags", "00-" + goodTrace + "-" + goodParent + "-0g", false},
		{"trace not hex", "00-" + strings.Replace(goodTrace, "0", "g", 1) + "-" + goodParent + "-01", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ctx, err := ParseTraceparent(c.in)
			if c.ok {
				if err != nil {
					t.Fatalf("ParseTraceparent(%q) error: %v", c.in, err)
				}
				if !ctx.Valid() {
					t.Fatalf("parsed context not valid: %+v", ctx)
				}
				if ctx.TraceHex() != goodTrace || ctx.SpanHex() != goodParent {
					t.Errorf("IDs = %s/%s, want %s/%s", ctx.TraceHex(), ctx.SpanHex(), goodTrace, goodParent)
				}
			} else {
				if err == nil {
					t.Fatalf("ParseTraceparent(%q) = %+v, want error", c.in, ctx)
				}
				if ctx != (Context{}) {
					t.Errorf("error case returned non-zero context %+v", ctx)
				}
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	ctx, err := ParseTraceparent(goodTP)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Traceparent(); got != goodTP {
		t.Errorf("Traceparent() = %q, want %q", got, goodTP)
	}
	back, err := ParseTraceparent(ctx.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if back != ctx {
		t.Errorf("round trip: %+v != %+v", back, ctx)
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add(goodTP)
	f.Add("00-" + goodTrace + "-" + goodParent + "-00")
	f.Add("cc-" + goodTrace + "-" + goodParent + "-01-more")
	f.Add("")
	f.Add(strings.Repeat("-", 60))
	f.Fuzz(func(t *testing.T, s string) {
		ctx, err := ParseTraceparent(s)
		if err != nil {
			if ctx != (Context{}) {
				t.Fatalf("error with non-zero context: %+v", ctx)
			}
			return
		}
		if !ctx.Valid() {
			t.Fatalf("accepted invalid context from %q", s)
		}
		// Re-rendering (always version 00) must reparse to the same IDs.
		back, err := ParseTraceparent(ctx.Traceparent())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", ctx.Traceparent(), err)
		}
		if back != ctx {
			t.Fatalf("round trip mismatch: %+v != %+v", back, ctx)
		}
	})
}

// collectEmitter records every exported span.
type collectEmitter struct {
	mu    sync.Mutex
	spans []Span
}

func (e *collectEmitter) Span(trace, span, parent, name string, seconds float64, attrs map[string]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.spans = append(e.spans, Span{Trace: trace, ID: span, Parent: parent, Name: name, DurationMs: seconds * 1e3, Attrs: attrs})
}

func TestSpanLifecycle(t *testing.T) {
	em := &collectEmitter{}
	tr := New(16, em)

	root := tr.Start("decision", Context{})
	rctx := root.Context()
	if !rctx.Valid() {
		t.Fatal("root context invalid")
	}
	if rctx.Flags&0x01 == 0 {
		t.Error("fresh trace should be sampled")
	}
	child := tr.Start("solve", rctx)
	cctx := child.Context()
	if cctx.Trace != rctx.Trace {
		t.Error("child did not inherit trace ID")
	}
	if cctx.Span == rctx.Span {
		t.Error("child must get a fresh span ID")
	}
	child.SetAttr("kind", "set_max_rate")
	child.SetAttrInt("rev", 7)
	child.SetAttrFloat("rate", 2.5)
	child.SetAttrBool("warm", true)
	child.End()
	child.SetAttr("late", "dropped") // after End: ignored
	child.End()                      // idempotent
	root.End()

	if started, finished := tr.Stats(); started != 2 || finished != 2 {
		t.Errorf("stats = %d/%d, want 2/2", started, finished)
	}
	spans := tr.Spans(Filter{})
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	// Oldest first: child ended before root.
	if spans[0].Name != "solve" || spans[1].Name != "decision" {
		t.Errorf("order = %s,%s; want solve,decision", spans[0].Name, spans[1].Name)
	}
	got := spans[0]
	if got.Parent != rctx.SpanHex() {
		t.Errorf("child parent = %q, want %q", got.Parent, rctx.SpanHex())
	}
	want := map[string]string{"kind": "set_max_rate", "rev": "7", "rate": "2.5", "warm": "true"}
	for k, v := range want {
		if got.Attrs[k] != v {
			t.Errorf("attr %s = %q, want %q", k, got.Attrs[k], v)
		}
	}
	if _, ok := got.Attrs["late"]; ok {
		t.Error("attribute set after End leaked")
	}
	em.mu.Lock()
	exported := len(em.spans)
	em.mu.Unlock()
	if exported != 2 {
		t.Errorf("emitter saw %d spans, want 2", exported)
	}
}

func TestStartAtBackdates(t *testing.T) {
	tr := New(4, nil)
	a := tr.StartAt("ingress", Context{}, time.Now().Add(-time.Second))
	a.End()
	s := tr.Spans(Filter{})[0]
	if s.DurationMs < 900 {
		t.Errorf("backdated span duration = %vms, want ≥900ms", s.DurationMs)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := New(3, nil)
	for i := 0; i < 5; i++ {
		a := tr.Start(fmt.Sprintf("s%d", i), Context{})
		a.End()
	}
	if tr.Len() != 3 || tr.Cap() != 3 {
		t.Fatalf("len/cap = %d/%d, want 3/3", tr.Len(), tr.Cap())
	}
	spans := tr.Spans(Filter{})
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ","); got != "s2,s3,s4" {
		t.Errorf("retained %s, want s2,s3,s4 (oldest first)", got)
	}
	if started, finished := tr.Stats(); started != 5 || finished != 5 {
		t.Errorf("stats = %d/%d, want 5/5", started, finished)
	}
}

func TestRingCapacityOne(t *testing.T) {
	tr := New(1, nil)
	for i := 0; i < 3; i++ {
		a := tr.Start(fmt.Sprintf("s%d", i), Context{})
		a.End()
	}
	spans := tr.Spans(Filter{})
	if len(spans) != 1 || spans[0].Name != "s2" {
		t.Errorf("cap-1 ring retained %+v, want just s2", spans)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := New(0, nil).Cap(); got != DefaultCapacity {
		t.Errorf("New(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
	if got := New(-5, nil).Cap(); got != DefaultCapacity {
		t.Errorf("New(-5).Cap() = %d, want %d", got, DefaultCapacity)
	}
}

func TestFilter(t *testing.T) {
	tr := New(8, nil)
	a := tr.Start("decision", Context{})
	a.SetAttr("commodity", "S1")
	a.End()
	b := tr.Start("solve", a.Context())
	b.End()
	c := tr.StartAt("slow", Context{}, time.Now().Add(-time.Second))
	c.End()

	if got := len(tr.Spans(Filter{Trace: a.Context().TraceHex()})); got != 2 {
		t.Errorf("trace filter matched %d, want 2", got)
	}
	if got := len(tr.Spans(Filter{Name: "solve"})); got != 1 {
		t.Errorf("name filter matched %d, want 1", got)
	}
	if got := len(tr.Spans(Filter{AttrKey: "commodity"})); got != 1 {
		t.Errorf("attr-key filter matched %d, want 1", got)
	}
	if got := len(tr.Spans(Filter{AttrKey: "commodity", AttrVal: "S1"})); got != 1 {
		t.Errorf("attr filter matched %d, want 1", got)
	}
	if got := len(tr.Spans(Filter{AttrKey: "commodity", AttrVal: "S2"})); got != 0 {
		t.Errorf("attr mismatch matched %d, want 0", got)
	}
	if got := len(tr.Spans(Filter{MinDuration: 500 * time.Millisecond})); got != 1 {
		t.Errorf("min-duration filter matched %d, want 1", got)
	}
}

// TestNilTracerAllocates pins the disabled path at zero allocations:
// observability that is off must cost nothing.
func TestNilTracerAllocates(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		a := tr.Start("decision", Context{})
		a.SetAttr("k", "v")
		a.SetAttrInt("n", 1)
		_ = a.Context()
		a.End()
		_ = tr.Spans(Filter{})
		_, _ = tr.Stats()
		_ = tr.Len()
		_ = tr.Cap()
	})
	if allocs != 0 {
		t.Errorf("nil tracer path allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentTracing hammers one tracer from many goroutines — the
// race detector (CI's server-race matrix covers this package) is the
// real assertion; the counts are a sanity floor.
func TestConcurrentTracing(t *testing.T) {
	tr := New(64, &collectEmitter{})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.Start("decision", Context{})
				child := tr.Start("solve", root.Context())
				child.SetAttrInt("i", int64(i))
				child.End()
				root.End()
				if i%10 == 0 {
					_ = tr.Spans(Filter{Name: "solve"})
					_, _ = tr.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	started, finished := tr.Stats()
	if want := uint64(2 * workers * perWorker); started != want || finished != want {
		t.Errorf("stats = %d/%d, want %d/%d", started, finished, want, want)
	}
	if tr.Len() != 64 {
		t.Errorf("ring len = %d, want full at 64", tr.Len())
	}
}
