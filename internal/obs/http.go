package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on duplicate names, and tests may start several servers.
var expvarOnce sync.Once

// publishExpvar mirrors the registry under expvar ("streamopt" key in
// /debug/vars) as a JSON object {metricKey: value}.
func publishExpvar(reg *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("streamopt", expvar.Func(func() any {
			out := make(map[string]any)
			for _, family := range reg.snapshot() {
				for _, m := range family {
					key := m.family
					if m.labels != "" {
						key += "{" + m.labels + "}"
					}
					switch m.kind {
					case "counter":
						out[key] = m.counter.Value()
					case "gauge":
						out[key] = m.gauge.Value()
					case "histogram":
						out[key] = map[string]any{
							"count": m.hist.Count(),
							"sum":   m.hist.Sum(),
						}
					}
				}
			}
			return out
		}))
	})
}

// Server is a live exposition endpoint bound to one registry.
type Server struct {
	ln   net.Listener
	http *http.Server
}

// Attach mounts the exposition endpoints on an existing mux:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (registry mirrored under "streamopt")
//	/debug/pprof/  runtime profiles (CPU, heap, mutex, ...)
//
// This is how processes that already own an HTTP listener (the
// admission server) expose the registry without a second port.
func Attach(mux *http.ServeMux, reg *Registry) {
	publishExpvar(reg)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts an HTTP server on addr exposing the Attach endpoints.
// It returns once the listener is bound, so a scrape can't race the
// solve starting; the accept loop runs in a goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: Serve needs a registry")
	}
	mux := http.NewServeMux()
	Attach(mux, reg)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, http: &http.Server{Handler: mux}}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections.
func (s *Server) Close() error { return s.http.Close() }
