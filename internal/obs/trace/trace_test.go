package trace

import (
	"testing"

	"repro/internal/obs"
)

func sample(iter int) obs.TraceSample {
	return obs.TraceSample{
		Iter: iter, Utility: float64(iter), Cost: 1,
		Admitted: []float64{float64(iter), 2},
	}
}

// TestNilRingIsSafe pins the nil-tracer contract.
func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.TraceIteration(sample(0))
	r.Reset()
	if r.Samples() != nil || r.Len() != 0 || r.Cap() != 0 || r.Stride() != 0 || r.Seen() != 0 {
		t.Fatal("nil ring must be inert")
	}
}

// TestStrideSampling keeps every stride-th iteration only.
func TestStrideSampling(t *testing.T) {
	r := New(100, 3)
	for i := 0; i < 10; i++ {
		r.TraceIteration(sample(i))
	}
	got := r.Samples()
	want := []int{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("retained %d samples, want %d: %+v", len(got), len(want), got)
	}
	for k, s := range got {
		if s.Iter != want[k] || s.Seq != uint64(want[k]) {
			t.Fatalf("sample %d = iter %d seq %d, want iter %d", k, s.Iter, s.Seq, want[k])
		}
	}
	if r.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", r.Seen())
	}
}

// TestWraparoundKeepsNewestInOrder fills past capacity and checks the
// oldest samples are evicted and order is preserved.
func TestWraparoundKeepsNewestInOrder(t *testing.T) {
	r := New(4, 1)
	for i := 0; i < 11; i++ {
		r.TraceIteration(sample(i))
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("retained %d samples, want 4", len(got))
	}
	for k, wantIter := range []int{7, 8, 9, 10} {
		if got[k].Iter != wantIter {
			t.Fatalf("after wrap, sample %d iter = %d, want %d (%+v)", k, got[k].Iter, wantIter, got)
		}
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("Len/Cap = %d/%d, want 4/4", r.Len(), r.Cap())
	}
}

// TestAdmittedIsCopied asserts the ring does not alias the recorder's
// admitted buffer (which engines reuse across iterations).
func TestAdmittedIsCopied(t *testing.T) {
	r := New(8, 1)
	admitted := []float64{1, 2}
	r.TraceIteration(obs.TraceSample{Iter: 0, Admitted: admitted})
	admitted[0] = 99
	if got := r.Samples()[0].Admitted[0]; got != 1 {
		t.Fatalf("sample aliases caller buffer: admitted[0] = %g, want 1", got)
	}
}

// TestResetClears restores an empty ring with the same shape.
func TestResetClears(t *testing.T) {
	r := New(4, 2)
	for i := 0; i < 9; i++ {
		r.TraceIteration(sample(i))
	}
	r.Reset()
	if r.Len() != 0 || r.Seen() != 0 {
		t.Fatalf("Reset left Len=%d Seen=%d", r.Len(), r.Seen())
	}
	r.TraceIteration(sample(0))
	if got := r.Samples(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("post-reset sampling broken: %+v", got)
	}
	if r.Cap() != 4 || r.Stride() != 2 {
		t.Fatalf("Reset changed shape: cap %d stride %d", r.Cap(), r.Stride())
	}
}

// TestRecorderFeedsRing is the integration contract: a recorder with a
// ring attached forwards per-iteration state, including the eta gauge
// and per-phase durations.
func TestRecorderFeedsRing(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	r := New(16, 1)
	rec.SetTracer(r)
	rec.SetEta(0.04)

	tm := rec.StartPhase(obs.PhaseForecast)
	tm.Done()
	rec.Iteration("gradient", 0, 10, 3, []float64{1.5}, true)
	rec.Iteration("gradient", 1, 11, 2, []float64{1.6}, false)

	got := r.Samples()
	if len(got) != 2 {
		t.Fatalf("ring has %d samples, want 2", len(got))
	}
	if got[0].Eta != 0.04 || got[0].Utility != 10 || got[0].Admitted[0] != 1.5 || !got[0].Feasible {
		t.Fatalf("bad first sample: %+v", got[0])
	}
	if got[0].PhaseSeconds[obs.PhaseForecast] <= 0 {
		t.Fatalf("first sample missing forecast phase time: %+v", got[0].PhaseSeconds)
	}
	// The accumulator must reset between iterations: no phase timing ran
	// before the second Iteration call.
	if got[1].PhaseSeconds[obs.PhaseForecast] != 0 {
		t.Fatalf("phase accumulator leaked across iterations: %+v", got[1].PhaseSeconds)
	}
	if got[1].Feasible {
		t.Fatal("second sample should be infeasible")
	}
}
