// Package trace is the solver introspection recorder: a bounded,
// sampled ring buffer of per-iteration solver state. A Ring attaches to
// an obs.Recorder (Recorder.SetTracer) and captures every stride-th
// TraceSample — admitted rates, utility, cost, step scale, and the
// per-phase wall-clock split of the iteration — overwriting the oldest
// sample once the capacity is reached, so memory stays fixed no matter
// how long the solver runs.
//
// The design constraint mirrors internal/obs: a nil *Ring is a valid,
// inert tracer, and the nil-recorder path through the engines remains
// zero-allocation (the Ring is only ever reached from an enabled
// recorder).
package trace

import (
	"sync"

	"repro/internal/obs"
)

// Sample is one retained trace row. Unlike obs.TraceSample, the
// Admitted slice is owned by the Sample (copied at capture time).
type Sample struct {
	// Seq is the 0-based index of this sample among all iterations
	// observed by the ring (not just the retained ones), so gaps from
	// sampling and wraparound remain visible.
	Seq uint64 `json:"seq"`
	// Iter is the engine's own iteration counter.
	Iter int `json:"iter"`
	// Utility is Σ_j U_j(a_j); Cost is A = Y + εD.
	Utility float64 `json:"utility"`
	Cost    float64 `json:"cost"`
	// Eta is the step scale at this iteration (fixed for the plain
	// engine, live for the adaptive controller).
	Eta      float64 `json:"eta"`
	Feasible bool    `json:"feasible"`
	// Admitted is a_j per commodity.
	Admitted []float64 `json:"admitted"`
	// PhaseSeconds is the iteration's wall-clock split across the Step
	// phases, indexed by obs.Phase (forecast, marginal, tagging, update).
	PhaseSeconds [obs.NumPhases]float64 `json:"phaseSeconds"`
}

// Ring is the bounded sampled recorder. Create with New; the zero value
// and nil are inert. Safe for one writer (the solver goroutine through
// obs.Recorder) and any number of concurrent readers.
type Ring struct {
	mu     sync.Mutex
	stride int
	buf    []Sample
	next   int    // write cursor
	filled bool   // buf has wrapped at least once
	seen   uint64 // iterations observed, sampled or not
}

// Defaults used by the daemons' flags.
const (
	DefaultCapacity = 4096
	DefaultStride   = 10
)

// New builds a ring holding up to capacity samples, keeping every
// stride-th observed iteration. capacity ≤ 0 uses DefaultCapacity;
// stride ≤ 0 uses DefaultStride; stride 1 keeps every iteration.
func New(capacity, stride int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	return &Ring{stride: stride, buf: make([]Sample, 0, capacity)}
}

// TraceIteration implements obs.Tracer: it samples every stride-th
// call, copying the admitted slice (which the recorder only lends for
// the duration of the call).
func (r *Ring) TraceIteration(s obs.TraceSample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.seen
	r.seen++
	if seq%uint64(r.stride) != 0 {
		return
	}
	smp := Sample{
		Seq: seq, Iter: s.Iter,
		Utility: s.Utility, Cost: s.Cost, Eta: s.Eta,
		Feasible:     s.Feasible,
		Admitted:     append([]float64(nil), s.Admitted...),
		PhaseSeconds: s.PhaseSeconds,
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, smp)
		return
	}
	r.buf[r.next] = smp
	r.next = (r.next + 1) % len(r.buf)
	r.filled = true
}

// Samples returns the retained samples, oldest first, as a copy safe to
// hold across further writes. Nil ring returns nil.
func (r *Ring) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.buf))
	if r.filled {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len reports how many samples are currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap reports the ring's fixed capacity (0 for a nil ring).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Stride reports the sampling stride (0 for a nil ring).
func (r *Ring) Stride() int {
	if r == nil {
		return 0
	}
	return r.stride
}

// Seen reports how many iterations the ring observed (sampled or not).
func (r *Ring) Seen() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Reset discards all samples and the observation counter, keeping the
// capacity and stride. The admission server resets the ring at the
// start of each solve so /debug/trace shows the latest convergence run.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next, r.filled, r.seen = 0, false, 0
}
