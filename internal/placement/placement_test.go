package placement

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/utility"
)

func servers(caps ...float64) []stream.ServerSpec {
	out := make([]stream.ServerSpec, len(caps))
	for i, c := range caps {
		out[i] = stream.ServerSpec{Name: name(i), Capacity: c}
	}
	return out
}

func name(i int) string { return string(rune('a' + i)) }

func chain(streamName string, lambda float64, tasks ...string) stream.StreamSpec {
	st := stream.StreamSpec{Name: streamName, MaxRate: lambda, Utility: utility.Linear{Slope: 1}}
	for _, t := range tasks {
		st.Tasks = append(st.Tasks, stream.Task{Name: t, Beta: 1, Cost: 1})
	}
	return st
}

func TestPlaceSingleStream(t *testing.T) {
	res, err := Place(
		servers(10, 50, 50),
		[]stream.StreamSpec{chain("s", 100, "A", "B")},
		Config{Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two unit-cost tasks; best pair of servers is the two 50s:
	// optimum = 50 (each stage on its own 50-capacity server).
	if res.Optimum < 50-1e-6 {
		t.Fatalf("optimum %g, want 50 (both big servers used)", res.Optimum)
	}
	if err := res.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment) != 2 {
		t.Fatalf("assignment uses %d servers, want 2", len(res.Assignment))
	}
	if _, usedSmall := res.Assignment["a"]; usedSmall {
		t.Fatal("placed a task on the capacity-10 server")
	}
}

func TestPlaceRespectsOneTaskPerStreamPerServer(t *testing.T) {
	res, err := Place(
		servers(100, 100, 100, 100),
		[]stream.StreamSpec{chain("s", 10, "A", "B", "C")},
		Config{Seed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	for server, tasks := range res.Assignment {
		if len(tasks) > 1 {
			t.Fatalf("server %s hosts %v: more than one task of the same stream", server, tasks)
		}
	}
}

func TestPlaceTwoStreamsShareServers(t *testing.T) {
	// 3 servers, two 2-task streams: servers must be shared across
	// streams (4 task instances > 3 servers) but never within one.
	res, err := Place(
		servers(40, 40, 40),
		[]stream.StreamSpec{
			chain("s1", 30, "A", "B"),
			chain("s2", 30, "C", "D"),
		},
		Config{Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Optimum <= 0 {
		t.Fatalf("optimum %g", res.Optimum)
	}
}

func TestPlaceReplication(t *testing.T) {
	res, err := Place(
		servers(30, 30, 30, 30, 30),
		[]stream.StreamSpec{chain("s", 100, "A", "B")},
		Config{Seed: 4, Replication: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Stage B is hosted twice: total capacity behind B is 60, source A
	// capped at 30 — optimum 30 (source-bound), and B's replicas exist.
	hostsOfB := 0
	for _, tasks := range res.Assignment {
		for _, task := range tasks {
			if task == "B" {
				hostsOfB++
			}
		}
	}
	if hostsOfB != 2 {
		t.Fatalf("task B hosted %d times, want 2", hostsOfB)
	}
	if res.Optimum < 30-1e-6 {
		t.Fatalf("optimum %g, want 30", res.Optimum)
	}
}

func TestPlaceBeatsWorstCase(t *testing.T) {
	// Heterogeneous capacities: the searched placement must beat the
	// deliberately bad one (everything on the tiny servers).
	svs := servers(100, 100, 2, 2)
	sts := []stream.StreamSpec{chain("s", 100, "A", "B")}
	res, err := Place(svs, sts, Config{Seed: 5, SwapBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][][]int{{{2}, {3}}} // both tasks on the capacity-2 servers
	badOpt, _, _, err := evaluate(svs, sts, bad, Config{Replication: 1, Bandwidth: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimum <= badOpt {
		t.Fatalf("search (%g) did not beat the worst case (%g)", res.Optimum, badOpt)
	}
	if res.Optimum < 100-1e-6 {
		t.Fatalf("optimum %g, want 100 on the two big servers", res.Optimum)
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(nil, nil, Config{}); err == nil {
		t.Fatal("empty inputs accepted")
	}
	// More task instances per stream than servers.
	_, err := Place(
		servers(10),
		[]stream.StreamSpec{chain("s", 1, "A", "B")},
		Config{Seed: 1},
	)
	if err == nil {
		t.Fatal("impossible placement accepted")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	run := func() float64 {
		res, err := Place(
			servers(40, 30, 20, 10),
			[]stream.StreamSpec{chain("s1", 50, "A", "B"), chain("s2", 50, "C", "D")},
			Config{Seed: 7},
		)
		if err != nil {
			t.Fatal(err)
		}
		return res.Optimum
	}
	if run() != run() {
		t.Fatal("same seed, different placement quality")
	}
}
