// Package placement tackles the problem §2 assumes away: "Effective
// placement of various tasks onto the physical network itself is an
// interesting problem ... Here, we assume the task to server assignment
// is given" (the paper defers to ref. [14]). This package produces that
// assignment: given servers with capacities and streams as ordered task
// chains, it builds a task→server mapping — greedy construction plus
// utility-guided local search, scoring candidates with the exact LP
// reference optimum (internal/refopt) of the resulting instance.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
)

// Config tunes the search.
type Config struct {
	// Replication is how many servers may host each non-source task
	// (the paper's Figure 1 hosts tasks B and C twice); default 1.
	// The first task of each stream is always placed on exactly one
	// server (the paper requires a unique source).
	Replication int
	// SwapBudget bounds the local-search moves evaluated; default 60.
	SwapBudget int
	// Seed drives move selection.
	Seed int64
	// Bandwidth assigns link bandwidths in the assembled problem;
	// default 1e9 (uncapacitated links — placement then optimizes CPU
	// contention only).
	Bandwidth float64
}

func (c *Config) setDefaults() {
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.SwapBudget <= 0 {
		c.SwapBudget = 60
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 1e9
	}
}

// Result is a placement and its quality.
type Result struct {
	// Assignment[serverName] lists the task names hosted there.
	Assignment map[string][]string
	// Spec is the assembled problem specification (feed to
	// stream.Assemble, or use Problem directly).
	Spec stream.AssemblySpec
	// Problem is the assembled, validated instance.
	Problem *stream.Problem
	// Optimum is the LP reference optimum of the placed instance — the
	// objective the search maximized.
	Optimum float64
	// Evaluations counts LP solves spent.
	Evaluations int
}

// Place searches for a task→server assignment maximizing the placed
// instance's max-utility optimum. Servers come with capacities only
// (their Tasks lists are ignored); streams define the task chains.
func Place(servers []stream.ServerSpec, streams []stream.StreamSpec, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if len(servers) == 0 || len(streams) == 0 {
		return nil, fmt.Errorf("placement: need servers and streams")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// assignment[streamIdx][stage] = server indices hosting that task.
	assignment := make([][][]int, len(streams))

	// Greedy construction: heaviest streams first; each stage goes to
	// the servers with the most remaining capacity score, never reusing
	// a server within one stream (the paper allows at most one task per
	// commodity per server).
	order := make([]int, len(streams))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return streams[order[a]].MaxRate > streams[order[b]].MaxRate
	})
	load := make([]float64, len(servers)) // crude expected-load score
	for _, si := range order {
		st := streams[si]
		assignment[si] = make([][]int, len(st.Tasks))
		used := make(map[int]bool, len(st.Tasks))
		for stage, task := range st.Tasks {
			want := cfg.Replication
			if stage == 0 {
				want = 1 // unique source
			}
			type cand struct {
				idx   int
				score float64
			}
			cands := make([]cand, 0, len(servers))
			for i, sv := range servers {
				if used[i] {
					continue
				}
				cands = append(cands, cand{idx: i, score: sv.Capacity - load[i]})
			}
			if len(cands) < want {
				return nil, fmt.Errorf("placement: stream %q stage %d needs %d free servers, have %d",
					st.Name, stage, want, len(cands))
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
			for k := 0; k < want; k++ {
				i := cands[k].idx
				assignment[si][stage] = append(assignment[si][stage], i)
				used[i] = true
				// Expected per-replica load if the stream split evenly.
				load[i] += st.MaxRate * task.Cost / float64(want)
			}
		}
	}

	res := &Result{}
	best, prob, spec, err := evaluate(servers, streams, assignment, cfg)
	if err != nil {
		return nil, err
	}
	res.Evaluations++

	// Local search: move one replica of one stage to a random unused
	// server; keep improvements.
	for move := 0; move < cfg.SwapBudget; move++ {
		si := rng.Intn(len(streams))
		stage := rng.Intn(len(streams[si].Tasks))
		slot := rng.Intn(len(assignment[si][stage]))
		inStream := make(map[int]bool)
		for _, hosts := range assignment[si] {
			for _, h := range hosts {
				inStream[h] = true
			}
		}
		var free []int
		for i := range servers {
			if !inStream[i] {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			break
		}
		oldHost := assignment[si][stage][slot]
		assignment[si][stage][slot] = free[rng.Intn(len(free))]

		cand, candProb, candSpec, err := evaluate(servers, streams, assignment, cfg)
		res.Evaluations++
		if err != nil || cand <= best {
			assignment[si][stage][slot] = oldHost // revert
			continue
		}
		best, prob, spec = cand, candProb, candSpec
	}

	res.Optimum = best
	res.Problem = prob
	res.Spec = spec
	res.Assignment = make(map[string][]string, len(servers))
	for _, sv := range spec.Servers {
		if len(sv.Tasks) > 0 {
			res.Assignment[sv.Name] = sv.Tasks
		}
	}
	return res, nil
}

// evaluate assembles the instance for an assignment and returns its LP
// optimum.
func evaluate(servers []stream.ServerSpec, streams []stream.StreamSpec, assignment [][][]int, cfg Config) (float64, *stream.Problem, stream.AssemblySpec, error) {
	spec := stream.AssemblySpec{DefaultBandwidth: cfg.Bandwidth}
	tasksOf := make([][]string, len(servers))
	for si, st := range streams {
		for stage, hosts := range assignment[si] {
			for _, h := range hosts {
				tasksOf[h] = append(tasksOf[h], st.Tasks[stage].Name)
			}
		}
	}
	for i, sv := range servers {
		spec.Servers = append(spec.Servers, stream.ServerSpec{
			Name:     sv.Name,
			Capacity: sv.Capacity,
			Tasks:    tasksOf[i],
		})
	}
	spec.Streams = streams
	prob, err := stream.Assemble(spec)
	if err != nil {
		return 0, nil, spec, err
	}
	x, err := transform.Build(prob, transform.Options{})
	if err != nil {
		return 0, nil, spec, err
	}
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		return 0, nil, spec, err
	}
	return ref.Utility, prob, spec, nil
}
