// Package utility provides the concave increasing utility functions the
// paper attaches to each commodity (§2), the utility-loss cost Y placed
// on dummy difference links (§3, eq. 1), and the convex barrier penalty
// functions D used to absorb capacity constraints into the objective.
package utility

import (
	"errors"
	"fmt"
	"math"
)

// Function is a concave, increasing utility of an admitted data rate.
// Value and Deriv must be defined for all rates in [0, λ]; Deriv must be
// non-increasing (concavity) and non-negative (monotonicity).
type Function interface {
	// Value returns U(rate).
	Value(rate float64) float64
	// Deriv returns U'(rate).
	Deriv(rate float64) float64
	// Name identifies the family for reports and serialization.
	Name() string
}

// Linear is U(a) = Slope·a. With Slope = 1 the total utility is total
// throughput — exactly the objective of the paper's §6 experiment.
type Linear struct {
	Slope float64
}

// Value implements Function.
func (u Linear) Value(rate float64) float64 { return u.Slope * rate }

// Deriv implements Function.
func (u Linear) Deriv(float64) float64 { return u.Slope }

// Name implements Function.
func (u Linear) Name() string { return "linear" }

// Log is U(a) = Weight·log(1 + a/Scale): proportional fairness shifted
// so that U(0)=0 and U'(0) is finite (Weight/Scale).
type Log struct {
	Weight float64
	Scale  float64
}

// Value implements Function.
func (u Log) Value(rate float64) float64 {
	return u.Weight * math.Log1p(rate/u.Scale)
}

// Deriv implements Function.
func (u Log) Deriv(rate float64) float64 {
	return u.Weight / (u.Scale + rate)
}

// Name implements Function.
func (u Log) Name() string { return "log" }

// Sqrt is U(a) = Weight·sqrt(a+Shift) − Weight·sqrt(Shift), an α-fair
// utility with α = 1/2, shifted so U(0)=0 and U'(0) finite when
// Shift > 0.
type Sqrt struct {
	Weight float64
	Shift  float64
}

// Value implements Function.
func (u Sqrt) Value(rate float64) float64 {
	return u.Weight * (math.Sqrt(rate+u.Shift) - math.Sqrt(u.Shift))
}

// Deriv implements Function.
func (u Sqrt) Deriv(rate float64) float64 {
	return u.Weight / (2 * math.Sqrt(rate+u.Shift))
}

// Name implements Function.
func (u Sqrt) Name() string { return "sqrt" }

// AlphaFair is the α-fair family U(a) = Weight·((a+Shift)^(1−α) −
// Shift^(1−α))/(1−α) for α ≠ 1; α = 1 is Log. α = 0 is Linear,
// α → ∞ approaches max-min fairness.
type AlphaFair struct {
	Weight float64
	Alpha  float64
	Shift  float64
}

// Value implements Function.
func (u AlphaFair) Value(rate float64) float64 {
	if u.Alpha == 1 {
		return u.Weight * math.Log1p(rate/u.Shift)
	}
	p := 1 - u.Alpha
	return u.Weight * (math.Pow(rate+u.Shift, p) - math.Pow(u.Shift, p)) / p
}

// Deriv implements Function.
func (u AlphaFair) Deriv(rate float64) float64 {
	return u.Weight * math.Pow(rate+u.Shift, -u.Alpha)
}

// Name implements Function.
func (u AlphaFair) Name() string { return "alphafair" }

// CappedLinear is U(a) = Slope·min(a, Cap): linear value up to a demand
// cap, flat after. Concave and increasing (weakly); its derivative is
// discontinuous at Cap, which exercises the optimizer's handling of
// kinked utilities.
type CappedLinear struct {
	Slope float64
	Cap   float64
}

// Value implements Function.
func (u CappedLinear) Value(rate float64) float64 {
	return u.Slope * math.Min(rate, u.Cap)
}

// Deriv implements Function.
func (u CappedLinear) Deriv(rate float64) float64 {
	if rate < u.Cap {
		return u.Slope
	}
	return 0
}

// Name implements Function.
func (u CappedLinear) Name() string { return "cappedlinear" }

// Loss is the utility-loss cost the paper places on the dummy
// difference link (eq. 1): Y(x) = U(λ) − U(λ−x) for rejected rate x.
// It is convex and increasing because U is concave and increasing.
type Loss struct {
	U      Function
	Lambda float64
}

// Value returns Y(x) = U(λ) − U(λ−x). x is clamped to [0, λ].
func (y Loss) Value(x float64) float64 {
	x = clamp(x, 0, y.Lambda)
	return y.U.Value(y.Lambda) - y.U.Value(y.Lambda-x)
}

// Deriv returns Y'(x) = U'(λ−x); at x = λ−a this equals U'(a), the
// marginal utility of admission the gradient algorithm balances against
// the marginal network cost.
func (y Loss) Deriv(x float64) float64 {
	x = clamp(x, 0, y.Lambda)
	return y.U.Deriv(y.Lambda - x)
}

// ErrNotConcave reports a utility whose sampled derivative increases.
var ErrNotConcave = errors.New("utility: derivative increases (not concave)")

// ErrNotIncreasing reports a utility with a negative sampled derivative.
var ErrNotIncreasing = errors.New("utility: negative derivative (not increasing)")

// Validate samples U on [0, hi] and checks monotonicity and concavity
// numerically. Intended for configuration-time validation of
// user-supplied utilities.
func Validate(u Function, hi float64) error {
	const samples = 64
	prev := math.Inf(1)
	for i := 0; i <= samples; i++ {
		r := hi * float64(i) / samples
		d := u.Deriv(r)
		if d < 0 {
			return fmt.Errorf("%w: U'(%g) = %g", ErrNotIncreasing, r, d)
		}
		if d > prev+1e-9 {
			return fmt.Errorf("%w: U'(%g) = %g > %g", ErrNotConcave, r, d, prev)
		}
		prev = d
	}
	return nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
