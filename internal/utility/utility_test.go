package utility

import (
	"math"
	"testing"
	"testing/quick"
)

// numDeriv is a central-difference numerical derivative used to verify
// analytic Deriv implementations.
func numDeriv(f func(float64) float64, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestLinear(t *testing.T) {
	u := Linear{Slope: 2.5}
	if got := u.Value(4); got != 10 {
		t.Fatalf("Value(4) = %g, want 10", got)
	}
	if got := u.Deriv(123); got != 2.5 {
		t.Fatalf("Deriv = %g, want 2.5", got)
	}
	if u.Value(0) != 0 {
		t.Fatal("U(0) != 0")
	}
}

func TestLogProperties(t *testing.T) {
	u := Log{Weight: 3, Scale: 2}
	if u.Value(0) != 0 {
		t.Fatalf("U(0) = %g, want 0", u.Value(0))
	}
	if got, want := u.Deriv(0), 1.5; !approxEq(got, want, 1e-12) {
		t.Fatalf("U'(0) = %g, want %g", got, want)
	}
}

func TestSqrtZeroValue(t *testing.T) {
	u := Sqrt{Weight: 2, Shift: 1}
	if u.Value(0) != 0 {
		t.Fatalf("U(0) = %g, want 0", u.Value(0))
	}
}

func TestAlphaFairReducesToLogAtAlphaOne(t *testing.T) {
	af := AlphaFair{Weight: 2, Alpha: 1, Shift: 3}
	lg := Log{Weight: 2, Scale: 3}
	for _, r := range []float64{0, 0.5, 1, 7, 42} {
		if !approxEq(af.Value(r), lg.Value(r), 1e-12) {
			t.Fatalf("alpha=1 Value(%g) = %g, log gives %g", r, af.Value(r), lg.Value(r))
		}
		if !approxEq(af.Deriv(r), lg.Deriv(r), 1e-12) {
			t.Fatalf("alpha=1 Deriv(%g) = %g, log gives %g", r, af.Deriv(r), lg.Deriv(r))
		}
	}
}

func TestCappedLinear(t *testing.T) {
	u := CappedLinear{Slope: 2, Cap: 5}
	if got := u.Value(3); got != 6 {
		t.Fatalf("Value(3) = %g, want 6", got)
	}
	if got := u.Value(9); got != 10 {
		t.Fatalf("Value(9) = %g, want 10 (capped)", got)
	}
	if got := u.Deriv(3); got != 2 {
		t.Fatalf("Deriv(3) = %g, want 2", got)
	}
	if got := u.Deriv(7); got != 0 {
		t.Fatalf("Deriv(7) = %g, want 0", got)
	}
}

// All families must have Deriv matching a numerical derivative of Value.
func TestDerivMatchesValue(t *testing.T) {
	funcs := []Function{
		Linear{Slope: 1.7},
		Log{Weight: 4, Scale: 3},
		Sqrt{Weight: 2, Shift: 0.5},
		AlphaFair{Weight: 1.5, Alpha: 2, Shift: 1},
		AlphaFair{Weight: 1.5, Alpha: 0.5, Shift: 1},
	}
	for _, u := range funcs {
		for _, r := range []float64{0.1, 1, 5, 20} {
			want := numDeriv(u.Value, r, 1e-6)
			got := u.Deriv(r)
			if !approxEq(got, want, 1e-4) {
				t.Errorf("%s: Deriv(%g) = %g, numeric %g", u.Name(), r, got, want)
			}
		}
	}
}

func TestValidateAcceptsConcave(t *testing.T) {
	for _, u := range []Function{
		Linear{Slope: 1},
		Log{Weight: 1, Scale: 1},
		Sqrt{Weight: 1, Shift: 0.1},
		CappedLinear{Slope: 1, Cap: 10},
	} {
		if err := Validate(u, 100); err != nil {
			t.Errorf("%s: Validate = %v, want nil", u.Name(), err)
		}
	}
}

type convexUtility struct{}

func (convexUtility) Value(r float64) float64 { return r * r }
func (convexUtility) Deriv(r float64) float64 { return 2 * r }
func (convexUtility) Name() string            { return "convex" }

type decreasingUtility struct{}

func (decreasingUtility) Value(r float64) float64 { return -r }
func (decreasingUtility) Deriv(float64) float64   { return -1 }
func (decreasingUtility) Name() string            { return "decreasing" }

func TestValidateRejectsBadUtilities(t *testing.T) {
	if err := Validate(convexUtility{}, 10); err == nil {
		t.Error("convex utility passed validation")
	}
	if err := Validate(decreasingUtility{}, 10); err == nil {
		t.Error("decreasing utility passed validation")
	}
}

func TestLossIdentity(t *testing.T) {
	// Y(λ−a) = U(λ) − U(a): rejecting λ−a loses exactly the utility gap.
	u := Log{Weight: 2, Scale: 1}
	y := Loss{U: u, Lambda: 10}
	for _, a := range []float64{0, 1, 5, 10} {
		want := u.Value(10) - u.Value(a)
		if got := y.Value(10 - a); !approxEq(got, want, 1e-12) {
			t.Fatalf("Y(λ−%g) = %g, want %g", a, got, want)
		}
	}
}

func TestLossDerivIsMarginalUtility(t *testing.T) {
	// Y'(λ−a) = U'(a): the marginal cost of one more rejected unit is
	// the marginal utility of the admitted rate. This is the identity
	// eq. (11) relies on.
	u := Sqrt{Weight: 3, Shift: 0.2}
	y := Loss{U: u, Lambda: 8}
	for _, a := range []float64{0.5, 2, 7.5} {
		if got, want := y.Deriv(8-a), u.Deriv(a); !approxEq(got, want, 1e-12) {
			t.Fatalf("Y'(λ−%g) = %g, want U'(%g) = %g", a, got, a, want)
		}
	}
}

func TestLossClampsDomain(t *testing.T) {
	y := Loss{U: Linear{Slope: 1}, Lambda: 5}
	if got := y.Value(-3); got != 0 {
		t.Fatalf("Y(-3) = %g, want 0", got)
	}
	if got := y.Value(100); got != y.Value(5) {
		t.Fatalf("Y(100) = %g, want Y(5) = %g", got, y.Value(5))
	}
}

func TestQuickLossConvexIncreasing(t *testing.T) {
	// For any concave U and 0 ≤ x1 < x2 ≤ λ: Y increasing and Y'
	// non-decreasing (convexity).
	f := func(w, s, x1, x2 float64) bool {
		w = 0.1 + math.Abs(math.Mod(w, 10))
		s = 0.1 + math.Abs(math.Mod(s, 10))
		const lambda = 10.0
		x1 = math.Abs(math.Mod(x1, lambda))
		x2 = math.Abs(math.Mod(x2, lambda))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y := Loss{U: Log{Weight: w, Scale: s}, Lambda: lambda}
		if y.Value(x2) < y.Value(x1)-1e-12 {
			return false
		}
		return y.Deriv(x2) >= y.Deriv(x1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalPenalty(t *testing.T) {
	var p Reciprocal
	if got := p.Value(0, 10); got != 0 {
		t.Fatalf("D(0) = %g, want 0 (offset-normalized)", got)
	}
	if !math.IsInf(p.Value(10, 10), 1) {
		t.Fatal("D(C) should be +Inf")
	}
	if !math.IsInf(p.Value(15, 10), 1) {
		t.Fatal("D(z>C) should be +Inf")
	}
	// D'(z) = 1/(C−z)^2
	if got, want := p.Deriv(6, 10), 1.0/16; !approxEq(got, want, 1e-12) {
		t.Fatalf("D'(6) = %g, want %g", got, want)
	}
}

func TestLogBarrierPenalty(t *testing.T) {
	var p LogBarrier
	if got := p.Value(0, 10); got != 0 {
		t.Fatalf("D(0) = %g, want 0", got)
	}
	if !math.IsInf(p.Value(10, 10), 1) {
		t.Fatal("D(C) should be +Inf")
	}
	if got, want := p.Deriv(5, 10), 0.2; !approxEq(got, want, 1e-12) {
		t.Fatalf("D'(5) = %g, want %g", got, want)
	}
}

func TestPenaltyDerivFiniteAtAndPastBarrier(t *testing.T) {
	for _, p := range []Penalty{Reciprocal{}, LogBarrier{}} {
		for _, z := range []float64{9.999999, 10, 11, 1e6} {
			d := p.Deriv(z, 10)
			if math.IsInf(d, 0) || math.IsNaN(d) {
				t.Errorf("%s: D'(%g) = %g, want finite", p.Name(), z, d)
			}
			if d <= 0 {
				t.Errorf("%s: D'(%g) = %g, want > 0", p.Name(), z, d)
			}
		}
	}
}

func TestPenaltyDerivMonotone(t *testing.T) {
	for _, p := range []Penalty{Reciprocal{}, LogBarrier{}} {
		prev := 0.0
		for z := 0.0; z < 9.9; z += 0.1 {
			d := p.Deriv(z, 10)
			if d < prev {
				t.Fatalf("%s: D' decreased at z=%g", p.Name(), z)
			}
			prev = d
		}
	}
}

func TestPenaltyDerivMatchesValue(t *testing.T) {
	for _, p := range []Penalty{Reciprocal{}, LogBarrier{}} {
		for _, z := range []float64{1, 4, 8, 9.5} {
			want := numDeriv(func(x float64) float64 { return p.Value(x, 10) }, z, 1e-7)
			got := p.Deriv(z, 10)
			if !approxEq(got, want, 1e-3) {
				t.Errorf("%s: D'(%g) = %g, numeric %g", p.Name(), z, got, want)
			}
		}
	}
}

func TestNonePenalty(t *testing.T) {
	var p None
	if p.Value(5, 10) != 0 || p.Deriv(5, 10) != 0 {
		t.Fatal("None penalty must be identically zero")
	}
}
