package utility

import "math"

// Penalty is a convex, increasing barrier on node resource usage z with
// capacity C: Value(z) → ∞ as z → C (§3). The gradient algorithm only
// ever consumes Deriv; Value is used for cost reporting.
//
// Implementations must behave sanely past the barrier: a transient
// routing overshoot can forecast z ≥ C, and the algorithm needs a very
// large — but finite and still increasing — derivative there to push
// the flow back out rather than NaN-poisoning the iteration. See
// DESIGN.md §6 ("barrier derivative clamping").
type Penalty interface {
	// Value returns D(z) given capacity c. +Inf for z ≥ c is allowed.
	Value(z, c float64) float64
	// Deriv returns D'(z) given capacity c, finite for all z ≥ 0.
	Deriv(z, c float64) float64
	// Name identifies the barrier family.
	Name() string
}

// barrierMargin is the fraction of capacity below C at which derivative
// evaluation is clamped: D' is evaluated at min(z, C·(1−barrierMargin)).
const barrierMargin = 1e-6

// Reciprocal is the paper's example barrier D(z) = 1/(C−z).
type Reciprocal struct{}

// Value implements Penalty. It subtracts the empty-system offset 1/C so
// that an idle node contributes zero cost, which makes reported costs
// comparable across topologies; derivatives are unaffected.
func (Reciprocal) Value(z, c float64) float64 {
	if z >= c {
		return math.Inf(1)
	}
	return 1/(c-z) - 1/c
}

// Deriv implements Penalty: D'(z) = 1/(C−z)², clamped near the barrier.
func (Reciprocal) Deriv(z, c float64) float64 {
	z = clampUsage(z, c)
	d := c - z
	return 1 / (d * d)
}

// Name implements Penalty.
func (Reciprocal) Name() string { return "reciprocal" }

// LogBarrier is D(z) = −log(1 − z/C), the classic interior-point
// barrier; gentler than Reciprocal far from capacity.
type LogBarrier struct{}

// Value implements Penalty.
func (LogBarrier) Value(z, c float64) float64 {
	if z >= c {
		return math.Inf(1)
	}
	return -math.Log(1 - z/c)
}

// Deriv implements Penalty: D'(z) = 1/(C−z), clamped near the barrier.
func (LogBarrier) Deriv(z, c float64) float64 {
	z = clampUsage(z, c)
	return 1 / (c - z)
}

// Name implements Penalty.
func (LogBarrier) Name() string { return "log" }

// None is the absence of a barrier: both Value and Deriv are zero. It
// exists for dummy nodes (infinite capacity ⇒ no penalty) and for
// ablations that disable barriers entirely.
type None struct{}

// Value implements Penalty.
func (None) Value(float64, float64) float64 { return 0 }

// Deriv implements Penalty.
func (None) Deriv(float64, float64) float64 { return 0 }

// Name implements Penalty.
func (None) Name() string { return "none" }

// clampUsage limits z to just below capacity so barrier derivatives stay
// finite under transient overshoot.
func clampUsage(z, c float64) float64 {
	lim := c * (1 - barrierMargin)
	if z > lim {
		return lim
	}
	return z
}
