package qsim

import (
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/randnet"
	"repro/internal/transform"
)

// solvedInstance returns a gradient-converged routing on a random §6
// style instance.
func solvedInstance(t *testing.T, seed int64) (*transform.Extended, *flow.Routing) {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: seed, Nodes: 20, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eng := gradient.New(x, gradient.Config{Eta: 0.04})
	if _, err := eng.Run(4000, nil); err != nil {
		t.Fatal(err)
	}
	return x, eng.Routing()
}

func TestStableUnderOptimizedRouting(t *testing.T) {
	// The barrier solution keeps f_i strictly below C_i, so the queueing
	// system is subcritical: total queue must stay bounded (no linear
	// growth over the horizon).
	x, r := solvedInstance(t, 2)
	res, err := Run(r, Config{Ticks: 4000})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.QueueTrace)
	if n < 10 {
		t.Fatalf("trace too short: %d", n)
	}
	early := mean(res.QueueTrace[n/4 : n/2])
	late := mean(res.QueueTrace[3*n/4:])
	if late > 2*early+1 {
		t.Fatalf("queues growing: early %g late %g", early, late)
	}
	_ = x
}

func TestDeliveredMatchesAdmittedRates(t *testing.T) {
	x, r := solvedInstance(t, 2)
	u := flow.Evaluate(r)
	res, err := Run(r, Config{Ticks: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x.Commodities {
		want := u.AdmittedRate(j)
		got := res.Delivered[j]
		if math.Abs(got-want) > 0.05*(1+want) {
			t.Fatalf("commodity %d: simulated delivery %g, optimizer admitted %g", j, got, want)
		}
		wantDrop := u.RejectedRate(j)
		if math.Abs(res.Dropped[j]-wantDrop) > 0.05*(1+wantDrop) {
			t.Fatalf("commodity %d: simulated drop %g, optimizer rejected %g", j, res.Dropped[j], wantDrop)
		}
	}
}

func TestOverloadedRoutingGrowsQueues(t *testing.T) {
	// Force full admission on an overloaded instance: queues at the
	// bottlenecks must grow roughly linearly.
	x, _ := solvedInstance(t, 2)
	r := flow.NewInitial(x)
	for j := range x.Commodities {
		c := &x.Commodities[j]
		r.SetAt(j, c.InputLink, 1)
		r.SetAt(j, c.DiffLink, 0)
	}
	// Verify this routing is actually infeasible (it admits λ ≫ C).
	if ok, _ := flow.Evaluate(r).Feasible(); ok {
		t.Skip("instance not overloaded at full admission")
	}
	res, err := Run(r, Config{Ticks: 4000})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.QueueTrace)
	early := mean(res.QueueTrace[:n/4])
	late := mean(res.QueueTrace[3*n/4:])
	if late < 2*early {
		t.Fatalf("expected growing queues under overload: early %g late %g", early, late)
	}
}

func TestPoissonArrivalsStillStable(t *testing.T) {
	// Bursty arrivals raise queue levels but the barrier headroom must
	// absorb them: delivery stays near the admitted rates.
	x, r := solvedInstance(t, 2)
	u := flow.Evaluate(r)
	res, err := Run(r, Config{Ticks: 8000, Arrivals: Poisson, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for j := range x.Commodities {
		want := u.AdmittedRate(j)
		if math.Abs(res.Delivered[j]-want) > 0.10*(1+want) {
			t.Fatalf("commodity %d: Poisson delivery %g, admitted %g", j, res.Delivered[j], want)
		}
	}
	if res.AvgDelayTicks <= 0 {
		t.Fatal("no delay estimate")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	_, r := solvedInstance(t, 3)
	a, err := Run(r, Config{Ticks: 1000, Arrivals: Poisson, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(r, Config{Ticks: 1000, Arrivals: Poisson, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgQueue != b.AvgQueue || a.PeakQueue != b.PeakQueue {
		t.Fatal("same seed, different run")
	}
	c, err := Run(r, Config{Ticks: 1000, Arrivals: Poisson, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgQueue == c.AvgQueue {
		t.Fatal("different seeds produced identical queues")
	}
}

func TestRejectsInvalidRouting(t *testing.T) {
	x, r := solvedInstance(t, 4)
	r.SetAt(0, x.Commodities[0].InputLink, 0.5) // break the simplex
	r.SetAt(0, x.Commodities[0].DiffLink, 0.2)
	if _, err := Run(r, Config{Ticks: 100}); err == nil {
		t.Fatal("invalid routing accepted")
	}
}

func TestMoreHeadroomLessDelay(t *testing.T) {
	// The §3 remark quantified: a larger ε keeps more headroom, which
	// shows up as smaller queues/delays in the simulated system under
	// the same bursty arrivals.
	p, err := randnet.Generate(randnet.Config{Seed: 2, Nodes: 20, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	delays := make(map[float64]float64, 2)
	for _, eps := range []float64{0.5, 0.02} {
		x, err := transform.Build(p, transform.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		eng := gradient.New(x, gradient.Config{Eta: 0.04})
		iters := 4000
		if eps < 0.1 {
			iters = 30000 // flatter landscape converges more slowly (T4)
		}
		if _, err := eng.Run(iters, nil); err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng.Routing(), Config{Ticks: 6000, Arrivals: Poisson, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		delays[eps] = res.AvgDelayTicks
	}
	if delays[0.5] >= delays[0.02] {
		t.Fatalf("more headroom did not reduce delay: eps=0.5 %g, eps=0.02 %g", delays[0.5], delays[0.02])
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
