// Package qsim is a discrete-time queueing simulator for the stream
// processing network: it takes a routing decision (typically the
// gradient algorithm's fixed point) and simulates the actual queue
// dynamics — stochastic arrivals, per-tick processor sharing under the
// node capacities, shrinkage at every hop — to validate that the
// optimizer's *rates* are achievable by a real system with bounded
// queues. The paper works entirely at the fluid (rate) level; this
// substrate is the testbed its evaluation implies: a feasible operating
// point with barrier headroom must yield stable queues, and an
// overloaded one must not (§2's motivation: "a load that exceeds the
// system capacity during times of stress").
package qsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/transform"
)

// Arrivals selects the source arrival process.
type Arrivals int

// Arrival processes.
const (
	// Deterministic injects exactly λ_j per tick.
	Deterministic Arrivals = iota + 1
	// Poisson injects a Poisson(λ_j) amount per tick (bursty).
	Poisson
)

// Config tunes a simulation run.
type Config struct {
	// Ticks is the simulated horizon; default 2000.
	Ticks int
	// Warmup ticks are excluded from averaged statistics; default 10%
	// of Ticks.
	Warmup int
	// Arrivals selects the arrival process; default Deterministic.
	Arrivals Arrivals
	// Seed drives the arrival randomness (Poisson only).
	Seed int64
	// Recorder, when non-nil, receives sampled tick summaries (queue
	// lengths, deliveries, drops) and a final stability report.
	Recorder *obs.Recorder
}

func (c *Config) setDefaults() {
	if c.Ticks <= 0 {
		c.Ticks = 2000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Ticks / 10
	}
	if c.Arrivals == 0 {
		c.Arrivals = Deterministic
	}
}

// Result aggregates a run.
type Result struct {
	// Delivered[j] is the average delivered rate at commodity j's sink
	// (source units per tick, post warmup).
	Delivered []float64
	// Dropped[j] is the average rate rejected at the dummy node.
	Dropped []float64
	// AvgQueue / PeakQueue are total buffered work across all node
	// queues (input units), averaged / maximized post warmup.
	AvgQueue  float64
	PeakQueue float64
	// AvgDelayTicks estimates end-to-end sojourn time by Little's law:
	// average total queue divided by total delivered rate (in delivered
	// units).
	AvgDelayTicks float64
	// QueueTrace samples total queued work every SampleEvery ticks.
	QueueTrace []float64
}

// visit is one entry of a node's inverted member list: commodity j is
// present at the node with local node index ln in X.Sub[j].
type visit struct {
	j  int32
	ln int32
}

// Run simulates the network under the given routing decision.
//
// Per tick: arrivals enter each dummy node; the dummy immediately
// splits them by its routing fractions (the difference-link share is
// dropped — that is admission control); every capacitated node then
// serves its queues with processor sharing — each queued commodity
// wants to forward its backlog split by φ, every unit forwarded over
// edge e costs c_e(j) resource, and when total demand exceeds the
// capacity all transfers scale down proportionally; forwarded work
// arrives at the head queue multiplied by β_e(j); sinks absorb.
//
// Queues are held in each commodity's Subgraph local indexing (O(member
// nodes) memory per commodity); a per-node inverted list of (commodity,
// local node) pairs replaces the old dense membership scans while
// visiting the same (node, commodity, edge) order.
func Run(r *flow.Routing, cfg Config) (*Result, error) {
	cfg.setDefaults()
	x := r.X
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("qsim: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nn := x.G.NumNodes()
	nc := x.NumCommodities()
	q := make([][]float64, nc)
	at := make([][]visit, nn)
	for j := range q {
		sg := &x.Sub[j]
		q[j] = make([]float64, sg.NumNodes())
		for ln, n := range sg.Nodes {
			at[n] = append(at[n], visit{j: int32(j), ln: int32(ln)})
		}
	}
	res := &Result{
		Delivered: make([]float64, nc),
		Dropped:   make([]float64, nc),
	}
	measured := 0

	for tick := 0; tick < cfg.Ticks; tick++ {
		tickDelivered, tickDropped := 0.0, 0.0
		// Arrivals + admission at the dummies.
		for j := 0; j < nc; j++ {
			c := &x.Commodities[j]
			sg := &x.Sub[j]
			amount := c.MaxRate
			if cfg.Arrivals == Poisson {
				amount = poisson(rng, c.MaxRate)
			}
			admitted := amount * r.Phi[j][sg.InputLink]
			dropped := amount - admitted
			q[j][sg.Source] += admitted
			tickDropped += dropped
			if tick >= cfg.Warmup {
				res.Dropped[j] += dropped
			}
		}

		// Service: snapshot queues so every node serves this tick's
		// backlog simultaneously (like the synchronous protocols).
		arrivals := make([][]float64, nc)
		for j := range arrivals {
			arrivals[j] = make([]float64, len(q[j]))
		}
		for n := 0; n < nn; n++ {
			node := graph.NodeID(n)
			if x.G.OutDegree(node) == 0 {
				continue
			}
			// Demand if every queue were fully forwarded this tick.
			demand := 0.0
			for _, v := range at[n] {
				if q[v.j][v.ln] <= 0 {
					continue
				}
				sg := &x.Sub[v.j]
				for _, le := range sg.Out(v.ln) {
					demand += q[v.j][v.ln] * r.Phi[v.j][le] * sg.Cost[le]
				}
			}
			if demand == 0 {
				continue
			}
			share := 1.0
			if capn := x.Capacity[n]; !math.IsInf(capn, 1) && demand > capn {
				share = capn / demand
			}
			for _, v := range at[n] {
				if q[v.j][v.ln] <= 0 {
					continue
				}
				sg := &x.Sub[v.j]
				served := 0.0
				for _, le := range sg.Out(v.ln) {
					xfer := q[v.j][v.ln] * r.Phi[v.j][le] * share
					served += xfer
					head := sg.Head[le]
					out := xfer * sg.Beta[le]
					if head == sg.Sink {
						tickDelivered += out
						if tick >= cfg.Warmup {
							res.Delivered[v.j] += out
						}
					} else {
						arrivals[v.j][head] += out
					}
				}
				q[v.j][v.ln] -= served
			}
		}
		for j := 0; j < nc; j++ {
			for ln := range q[j] {
				q[j][ln] += arrivals[j][ln]
			}
		}

		if tick >= cfg.Warmup {
			total := 0.0
			for j := 0; j < nc; j++ {
				for ln := range q[j] {
					total += q[j][ln]
				}
			}
			res.AvgQueue += total
			if total > res.PeakQueue {
				res.PeakQueue = total
			}
			measured++
			if sampleEvery := cfg.Ticks / 100; sampleEvery == 0 || tick%max(1, sampleEvery) == 0 {
				res.QueueTrace = append(res.QueueTrace, total)
				cfg.Recorder.QsimTick(tick, total, tickDelivered, tickDropped)
			}
		}
	}

	if measured > 0 {
		res.AvgQueue /= float64(measured)
		deliveredTotal := 0.0
		for j := 0; j < nc; j++ {
			res.Delivered[j] /= float64(measured)
			res.Dropped[j] /= float64(measured)
			deliveredTotal += res.Delivered[j]
		}
		if deliveredTotal > 0 {
			res.AvgDelayTicks = res.AvgQueue / deliveredTotal
		}
		// Delivered is counted in sink units; convert to source units
		// with the potentials so it is comparable to admitted rates.
		for j := 0; j < nc; j++ {
			if g := sinkPotential(x, j); g > 0 {
				res.Delivered[j] /= g
			}
		}
	}
	cfg.Recorder.QsimSummary(cfg.Ticks, res.AvgQueue, res.PeakQueue, res.AvgDelayTicks)
	return res, nil
}

// sinkPotential is the β path product from dummy to sink (Property 1).
func sinkPotential(x *transform.Extended, j int) float64 {
	sg := &x.Sub[j]
	g := make([]float64, sg.NumNodes())
	g[sg.Dummy] = 1
	for _, ln := range sg.Topo {
		if g[ln] == 0 {
			continue
		}
		for _, le := range sg.Out(ln) {
			if le == sg.DiffLink {
				continue
			}
			if head := sg.Head[le]; g[head] == 0 {
				g[head] = g[ln] * sg.Beta[le]
			}
		}
	}
	if g[sg.Sink] == 0 {
		return 1
	}
	return g[sg.Sink]
}

// poisson draws a Poisson(mean) sample. For large means it uses the
// normal approximation, which is plenty for load modeling.
func poisson(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return v
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
