// Package dist executes the paper's §5 gradient algorithm as message-
// passing node actors on internal/simnet: the flow-forecast wave runs
// downstream from the dummy sources, the marginal-cost wave runs
// upstream from the sinks with loop-freedom tags piggybacked, and each
// node then updates its routing variables purely from local state.
//
// The mathematics is intentionally re-derived node-locally (not shared
// with internal/gradient); the test suite asserts the two produce the
// same trajectory, which cross-validates both implementations, while
// simnet provides measured message and round counts for §6's O(L)
// discussion.
package dist

import (
	"fmt"
	"math"

	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transform"
)

// flowMsg carries the forecast flow arriving at the head of edge E.
type flowMsg struct {
	J      int
	E      graph.EdgeID
	Amount float64 // t_tail·φ_E·β_E
}

// rhoMsg carries the head's marginal input cost back to the tail of
// edge E, with the loop-freedom tag piggybacked.
type rhoMsg struct {
	J      int
	E      graph.EdgeID
	Rho    float64
	Tagged bool
}

// commodityState is one node's per-commodity protocol state. Node
// actors know their incident member edges and those edges' parameters
// only — the node-local view the paper's protocol assumes.
type commodityState struct {
	outEdges []graph.EdgeID // member out-edges (ascending edge ID)
	inEdges  []graph.EdgeID // member in-edges (ascending edge ID)

	phi  map[graph.EdgeID]float64
	beta map[graph.EdgeID]float64 // β_e(j) per member out-edge
	cost map[graph.EdgeID]float64 // c_e(j) per member out-edge

	// Forecast-wave state (reset each iteration).
	t        float64
	flowRecv int
	fEdge    map[graph.EdgeID]float64

	// Marginal-wave state (reset each iteration).
	rho     float64
	rhoRecv int
	rhoIn   map[graph.EdgeID]float64
	tagIn   map[graph.EdgeID]bool
	tagged  bool
}

// nodeState is one actor.
type nodeState struct {
	id  graph.NodeID
	f   float64 // total resource usage this iteration (all commodities)
	per []commodityState
}

// Runtime drives iterations of the distributed protocol.
type Runtime struct {
	X   *transform.Extended
	cfg gradient.Config

	nodes      []*nodeState
	net        *simnet.Net
	iter       int
	maxLatency int // round-budget multiplier for jittered networks

	// Per-iteration protocol cost of the most recent Step.
	LastRounds   int
	LastMessages int
}

// New prepares the actors with the paper-faithful initial routing.
func New(x *transform.Extended, cfg gradient.Config) *Runtime {
	return NewFrom(x, flow.NewInitial(x), cfg)
}

// NewWithLatency prepares the actors on a network with per-message
// delivery delays (rounds; see simnet.NewWithLatency). maxLatency must
// bound the latency function's values; it scales the per-wave round
// budget. The §5 protocol's *results* are invariant to latencies —
// every node waits for all of its wave inputs — so only the measured
// round counts change (asserted in tests).
func NewWithLatency(x *transform.Extended, cfg gradient.Config, latency func(simnet.Message) int, maxLatency int) *Runtime {
	rt := NewFrom(x, flow.NewInitial(x), cfg)
	rt.net = simnet.NewWithLatency(rt.handle, latency)
	if maxLatency > 1 {
		rt.maxLatency = maxLatency
	}
	return rt
}

// NewFrom prepares the actors with an explicit routing set.
func NewFrom(x *transform.Extended, r *flow.Routing, cfg gradient.Config) *Runtime {
	if cfg.Eta <= 0 {
		cfg.Eta = 0.04
	}
	rt := &Runtime{X: x, cfg: cfg, nodes: make([]*nodeState, x.G.NumNodes()), maxLatency: 1}
	// Scatter each commodity's sparse member subgraph into per-node
	// incident-edge lists; ascending local edge index is ascending
	// global edge ID, so the per-node order matches the filtered scans
	// this replaced.
	nc := x.NumCommodities()
	outAdj := make([]map[graph.NodeID][]graph.EdgeID, nc)
	inAdj := make([]map[graph.NodeID][]graph.EdgeID, nc)
	for j := 0; j < nc; j++ {
		sg := &x.Sub[j]
		outAdj[j] = make(map[graph.NodeID][]graph.EdgeID)
		inAdj[j] = make(map[graph.NodeID][]graph.EdgeID)
		for le, e := range sg.Edges {
			tail, head := sg.Nodes[sg.Tail[le]], sg.Nodes[sg.Head[le]]
			outAdj[j][tail] = append(outAdj[j][tail], e)
			inAdj[j][head] = append(inAdj[j][head], e)
		}
	}
	for n := range rt.nodes {
		node := graph.NodeID(n)
		st := &nodeState{id: node, per: make([]commodityState, nc)}
		for j := range x.Commodities {
			cs := &st.per[j]
			cs.phi = make(map[graph.EdgeID]float64)
			cs.outEdges = outAdj[j][node]
			cs.inEdges = inAdj[j][node]
			cs.beta = make(map[graph.EdgeID]float64, len(cs.outEdges))
			cs.cost = make(map[graph.EdgeID]float64, len(cs.outEdges))
			for _, e := range cs.outEdges {
				le := x.Sub[j].LocalEdge(e)
				cs.phi[e] = r.Phi[j][le]
				cs.beta[e] = x.Sub[j].Beta[le]
				cs.cost[e] = x.Sub[j].Cost[le]
			}
			cs.fEdge = make(map[graph.EdgeID]float64, len(cs.outEdges))
			cs.rhoIn = make(map[graph.EdgeID]float64, len(cs.outEdges))
			cs.tagIn = make(map[graph.EdgeID]bool, len(cs.outEdges))
		}
		rt.nodes[n] = st
	}
	rt.net = simnet.New(rt.handle)
	return rt
}

// Routing snapshots the current routing variables into a flow.Routing.
func (rt *Runtime) Routing() *flow.Routing {
	r := flow.NewZero(rt.X)
	for _, st := range rt.nodes {
		for j := range st.per {
			for _, e := range st.per[j].outEdges {
				r.SetAt(j, e, st.per[j].phi[e])
			}
		}
	}
	return r
}

// Step runs one full protocol iteration and reports the pre-update
// measurements (identical semantics to gradient.Engine.Step).
func (rt *Runtime) Step() (gradient.StepInfo, error) {
	x := rt.X
	rec := rt.cfg.Recorder
	rounds0, msgs0 := rt.net.Rounds(), rt.net.Messages()

	// ---- Phase 1: flow-forecast wave (downstream) ----
	tf := rec.StartPhase(obs.PhaseForecast)
	for _, st := range rt.nodes {
		st.f = 0
		for j := range st.per {
			cs := &st.per[j]
			cs.t = 0
			cs.flowRecv = 0
			for _, e := range cs.outEdges {
				cs.fEdge[e] = 0
			}
		}
	}
	// Sources of the wave: nodes with no member in-edges. The dummy
	// node seeds t = λ (eq. 2); all others start at t = 0.
	for _, st := range rt.nodes {
		for j := range st.per {
			cs := &st.per[j]
			if len(cs.inEdges) > 0 {
				continue
			}
			if st.id == x.Commodities[j].Dummy {
				cs.t = x.Commodities[j].MaxRate
			}
			rt.emitFlow(st, j)
		}
	}
	maxRounds := 4 * (x.G.NumNodes() + 2) * rt.maxLatency
	if err := rt.net.RunToQuiescence(maxRounds); err != nil {
		return gradient.StepInfo{}, fmt.Errorf("dist: forecast wave: %w", err)
	}
	tf.Done()

	info := rt.measure()

	// ---- Phase 2: marginal-cost wave (upstream) ----
	tm := rec.StartPhase(obs.PhaseMarginal)
	for _, st := range rt.nodes {
		for j := range st.per {
			cs := &st.per[j]
			cs.rho = 0
			cs.rhoRecv = 0
			cs.tagged = false
		}
	}
	// Sinks start the wave with rho = 0 (and no tag).
	for j := range x.Commodities {
		sink := rt.nodes[x.Commodities[j].Sink]
		rt.emitRho(sink, j)
	}
	if err := rt.net.RunToQuiescence(maxRounds); err != nil {
		return gradient.StepInfo{}, fmt.Errorf("dist: marginal wave: %w", err)
	}
	tm.Done()

	// ---- Phase 3: local routing update Γ ----
	tu := rec.StartPhase(obs.PhaseUpdate)
	for _, st := range rt.nodes {
		for j := range st.per {
			if st.id != x.Commodities[j].Sink {
				rt.updateNode(st, j)
			}
		}
	}
	tu.Done()

	rt.LastRounds = rt.net.Rounds() - rounds0
	rt.LastMessages = rt.net.Messages() - msgs0
	info.Iteration = rt.iter
	rt.iter++
	rec.Iteration("gradient-dist", info.Iteration, info.Utility, info.Cost, info.Admitted, info.Feasible)
	rec.Protocol("gradient-dist", info.Iteration, rt.LastMessages, rt.LastRounds)
	return info, nil
}

// handle dispatches a delivered message to the destination actor.
func (rt *Runtime) handle(msg simnet.Message, send func(to graph.NodeID, payload any)) {
	st := rt.nodes[msg.To]
	switch m := msg.Payload.(type) {
	case flowMsg:
		cs := &st.per[m.J]
		cs.t += m.Amount
		cs.flowRecv++
		if cs.flowRecv == len(cs.inEdges) {
			rt.emitFlowSend(st, m.J, send)
		}
	case rhoMsg:
		cs := &st.per[m.J]
		cs.rhoIn[m.E] = m.Rho
		cs.tagIn[m.E] = m.Tagged
		cs.rhoRecv++
		if cs.rhoRecv == len(cs.outEdges) {
			rt.computeRho(st, m.J)
			rt.emitRhoSend(st, m.J, send)
		}
	default:
		panic(fmt.Sprintf("dist: unknown payload %T", msg.Payload))
	}
}

// emitFlow forwards the node's commodity-j traffic via driver injection
// (used for wave sources, which receive no triggering message).
func (rt *Runtime) emitFlow(st *nodeState, j int) {
	rt.emitFlowSend(st, j, func(to graph.NodeID, payload any) {
		rt.net.Inject(st.id, to, payload)
	})
}

// emitFlowSend computes local usage and forwards flow on every member
// out-edge (eq. 3 and 4, node-locally).
func (rt *Runtime) emitFlowSend(st *nodeState, j int, send func(to graph.NodeID, payload any)) {
	x := rt.X
	if st.id == x.Commodities[j].Sink {
		return // sinks absorb
	}
	cs := &st.per[j]
	for _, e := range cs.outEdges {
		phi := cs.phi[e]
		fe := cs.t * phi * cs.cost[e]
		cs.fEdge[e] = fe
		st.f += fe
		send(x.G.Edge(e).To, flowMsg{J: j, E: e, Amount: cs.t * phi * cs.beta[e]})
	}
}

// emitRho starts the upstream wave at a sink via driver injection.
func (rt *Runtime) emitRho(st *nodeState, j int) {
	rt.emitRhoSend(st, j, func(to graph.NodeID, payload any) {
		rt.net.Inject(st.id, to, payload)
	})
}

// emitRhoSend broadcasts the node's rho and tag to every member
// in-edge tail.
func (rt *Runtime) emitRhoSend(st *nodeState, j int, send func(to graph.NodeID, payload any)) {
	cs := &st.per[j]
	for _, e := range cs.inEdges {
		send(rt.X.G.Edge(e).From, rhoMsg{J: j, E: e, Rho: cs.rho, Tagged: cs.tagged})
	}
}

// linkD is the per-link marginal of eq. 10/13 from local state:
// (ε·D'_i(f_i) + Y'_e)·c_e + β_e·rho_head.
func (rt *Runtime) linkD(st *nodeState, j int, e graph.EdgeID) float64 {
	x := rt.X
	cs := &st.per[j]
	dAdf := x.PenaltyDeriv(st.id, st.f) + x.LossDeriv(j, e, cs.fEdge[e])
	return dAdf*cs.cost[e] + cs.beta[e]*cs.rhoIn[e]
}

// computeRho evaluates eq. 9 and the §5 tag condition from received
// downstream values.
func (rt *Runtime) computeRho(st *nodeState, j int) {
	cs := &st.per[j]
	rho := 0.0
	for _, e := range cs.outEdges {
		rho += cs.phi[e] * rt.linkD(st, j, e)
	}
	cs.rho = rho
	for _, e := range cs.outEdges {
		if cs.phi[e] <= 0 {
			continue
		}
		if cs.tagIn[e] {
			cs.tagged = true
			break
		}
		// Scale-corrected improper-link test (see gradient.ComputeTags):
		// compare marginal costs per source unit.
		if cs.rho > cs.beta[e]*cs.rhoIn[e] || cs.t == 0 {
			continue
		}
		if cs.phi[e] >= rt.cfg.Eta/cs.t*(rt.linkD(st, j, e)-cs.rho) {
			cs.tagged = true
			break
		}
	}
	if rt.cfg.DisableBlocking {
		cs.tagged = false
	}
}

// updateNode applies Γ (eqs. 14–17) from purely local state.
func (rt *Runtime) updateNode(st *nodeState, j int) {
	cs := &st.per[j]
	blocked := func(e graph.EdgeID) bool {
		return !rt.cfg.DisableBlocking && cs.phi[e] == 0 && cs.tagIn[e]
	}
	best := graph.EdgeID(graph.Invalid)
	bestD := math.Inf(1)
	for _, e := range cs.outEdges {
		if blocked(e) {
			continue
		}
		if d := rt.linkD(st, j, e); d < bestD {
			bestD = d
			best = e
		}
	}
	if best == graph.Invalid {
		return
	}
	moved := 0.0
	for _, e := range cs.outEdges {
		if e == best {
			continue
		}
		if blocked(e) {
			cs.phi[e] = 0
			continue
		}
		a := rt.linkD(st, j, e) - bestD
		var delta float64
		if cs.t > 0 {
			delta = math.Min(cs.phi[e], rt.cfg.Eta*a/cs.t)
		} else {
			delta = cs.phi[e]
		}
		cs.phi[e] -= delta
		moved += delta
	}
	cs.phi[best] += moved
}

// measure assembles the StepInfo from node-local state only.
func (rt *Runtime) measure() gradient.StepInfo {
	x := rt.X
	info := gradient.StepInfo{
		Admitted: make([]float64, x.NumCommodities()),
		Feasible: true,
	}
	for j := range x.Commodities {
		c := &x.Commodities[j]
		dummy := rt.nodes[c.Dummy]
		a := c.MaxRate * dummy.per[j].phi[c.InputLink]
		info.Admitted[j] = a
		info.Utility += c.Utility.Value(a)
		info.Cost += x.LossValue(j, c.DiffLink, dummy.per[j].fEdge[c.DiffLink])
	}
	for _, st := range rt.nodes {
		info.Cost += x.PenaltyValue(st.id, st.f)
		if capn := x.Capacity[st.id]; !math.IsInf(capn, 1) && st.f > capn+1e-9 {
			info.Feasible = false
		}
	}
	return info
}
