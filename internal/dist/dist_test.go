package dist

import (
	"math"
	"repro/internal/simnet"
	"testing"

	"repro/internal/gradient"
	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/transform"
)

func buildRandom(t *testing.T, seed int64, layers, nodes, commodities int) *transform.Extended {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{
		Seed: seed, Layers: layers, Nodes: nodes, Commodities: commodities,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMatchesSynchronousEngineTrajectory(t *testing.T) {
	// The actor protocol must produce the exact trajectory of the
	// synchronous engine: same utility, cost and admitted rates at
	// every iteration (up to float summation-order noise).
	x := buildRandom(t, 5, 4, 20, 2)
	cfg := gradient.Config{Eta: 0.1}
	eng := gradient.New(x, cfg)
	rt := New(x, cfg)
	for i := 0; i < 60; i++ {
		want := eng.Step()
		got, err := rt.Step()
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if math.Abs(got.Utility-want.Utility) > 1e-6*(1+math.Abs(want.Utility)) {
			t.Fatalf("iteration %d: utility %g vs engine %g", i, got.Utility, want.Utility)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-6*(1+math.Abs(want.Cost)) {
			t.Fatalf("iteration %d: cost %g vs engine %g", i, got.Cost, want.Cost)
		}
		for j := range want.Admitted {
			if math.Abs(got.Admitted[j]-want.Admitted[j]) > 1e-6*(1+want.Admitted[j]) {
				t.Fatalf("iteration %d commodity %d: admitted %g vs %g",
					i, j, got.Admitted[j], want.Admitted[j])
			}
		}
	}
	// Final routing variables must agree too.
	re := eng.Routing()
	rd := rt.Routing()
	for j := range re.Phi {
		for e := range re.Phi[j] {
			if math.Abs(re.Phi[j][e]-rd.Phi[j][e]) > 1e-6 {
				t.Fatalf("phi[%d][%d] = %g vs engine %g", j, e, rd.Phi[j][e], re.Phi[j][e])
			}
		}
	}
}

func TestMessageCountMatchesEngineAccounting(t *testing.T) {
	x := buildRandom(t, 9, 4, 16, 2)
	cfg := gradient.Config{Eta: 0.1}
	eng := gradient.New(x, cfg)
	rt := New(x, cfg)
	eng.Step()
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.LastMessages, eng.Stats().Messages; got != want {
		t.Fatalf("measured messages %d, engine accounting %d", got, want)
	}
}

func TestRoundsScaleWithDepth(t *testing.T) {
	// §6: an iteration of the gradient algorithm needs O(L) sequential
	// message exchanges. Deep graphs must need more rounds per
	// iteration than shallow ones.
	shallow := buildRandom(t, 3, 3, 18, 2)
	deep := buildRandom(t, 3, 9, 18, 2)
	rs := New(shallow, gradient.Config{})
	rd := New(deep, gradient.Config{})
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Step(); err != nil {
		t.Fatal(err)
	}
	if rd.LastRounds <= rs.LastRounds {
		t.Fatalf("deep rounds %d not > shallow rounds %d", rd.LastRounds, rs.LastRounds)
	}
}

func TestRoundsMatchMemberDepth(t *testing.T) {
	// Rounds per iteration = 2 × (longest member path): one downstream
	// wave plus one upstream wave.
	x := buildRandom(t, 7, 5, 20, 2)
	depth := 0
	for j := range x.Commodities {
		l, err := x.G.LongestPathLen(func(e graph.EdgeID) bool { return x.MemberEdge(j, e) })
		if err != nil {
			t.Fatal(err)
		}
		if l > depth {
			depth = l
		}
	}
	rt := New(x, gradient.Config{})
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	if rt.LastRounds != 2*depth {
		t.Fatalf("rounds = %d, want 2·depth = %d", rt.LastRounds, 2*depth)
	}
}

func TestConvergesLikeEngine(t *testing.T) {
	// Long-horizon check: after 1500 iterations the actor protocol
	// lands where the synchronous engine lands (η = 0.2 oscillates
	// transiently on this instance, so compare endpoints rather than
	// demanding monotonicity).
	x := buildRandom(t, 11, 4, 16, 2)
	rt := New(x, gradient.Config{Eta: 0.2})
	eng := gradient.New(x, gradient.Config{Eta: 0.2})
	var last, engLast gradient.StepInfo
	for i := 0; i < 1500; i++ {
		info, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = info
		engLast = eng.Step()
	}
	if last.Utility <= 0 {
		t.Fatal("no utility after 1500 iterations")
	}
	if math.Abs(last.Utility-engLast.Utility) > 1e-3*(1+engLast.Utility) {
		t.Fatalf("final utility %g, engine %g", last.Utility, engLast.Utility)
	}
}

// deterministicJitter assigns every message a pseudo-random delay in
// [1, spread] from a hash of its endpoints and payload kind — stable
// across runs, different across edges.
func deterministicJitter(spread int) func(simnet.Message) int {
	return func(m simnet.Message) int {
		h := uint32(m.From)*2654435761 + uint32(m.To)*40503
		switch m.Payload.(type) {
		case flowMsg:
			h += 17
		case rhoMsg:
			h += 31
		}
		return 1 + int(h>>16)%spread
	}
}

func TestDelayInvariance(t *testing.T) {
	// Arbitrary per-message latencies must not change a single routing
	// decision: every node's wave computation waits for ALL of its
	// inputs, so the protocol result is a function of topology and
	// state only. Measured rounds, of course, grow.
	x := buildRandom(t, 21, 4, 18, 2)
	cfg := gradient.Config{Eta: 0.1}
	sync := New(x, cfg)
	jit := NewWithLatency(x, cfg, deterministicJitter(7), 7)
	var jitRounds, syncRounds int
	for i := 0; i < 40; i++ {
		a, err := sync.Step()
		if err != nil {
			t.Fatal(err)
		}
		b, err := jit.Step()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Utility-b.Utility) > 1e-9*(1+math.Abs(a.Utility)) {
			t.Fatalf("iteration %d: utility diverged under jitter: %g vs %g", i, b.Utility, a.Utility)
		}
		if math.Abs(a.Cost-b.Cost) > 1e-9*(1+math.Abs(a.Cost)) {
			t.Fatalf("iteration %d: cost diverged under jitter", i)
		}
		syncRounds, jitRounds = sync.LastRounds, jit.LastRounds
	}
	// Same messages...
	if sync.LastMessages != jit.LastMessages {
		t.Fatalf("message counts differ: %d vs %d", sync.LastMessages, jit.LastMessages)
	}
	// ...but slower waves.
	if jitRounds <= syncRounds {
		t.Fatalf("jittered rounds %d not above synchronous %d", jitRounds, syncRounds)
	}
	// Final routing must match (up to float summation-order noise:
	// jitter reorders message arrival, which reorders additions).
	rs, rj := sync.Routing(), jit.Routing()
	for j := range rs.Phi {
		for e := range rs.Phi[j] {
			if math.Abs(rs.Phi[j][e]-rj.Phi[j][e]) > 1e-9 {
				t.Fatalf("phi[%d][%d] differs under jitter", j, e)
			}
		}
	}
}
