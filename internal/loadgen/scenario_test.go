package loadgen

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every bundled scenario must parse, validate, compile, and re-marshal
// stably (Marshal∘Parse∘Marshal is a fixed point).
func TestExampleScenariosRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least 2 bundled scenarios, found %d", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := ParseScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			first, err := sc.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			sc2, err := ParseScenario(first)
			if err != nil {
				t.Fatalf("re-parse of marshaled form: %v", err)
			}
			second, err := sc2.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatal("marshal is not a fixed point of parse∘marshal")
			}
			if _, err := Compile(sc, 1); err != nil {
				t.Fatalf("compile: %v", err)
			}
		})
	}
}

// Invalid scenarios must fail with messages that name the offending
// element and say what to change.
func TestScenarioValidationErrors(t *testing.T) {
	base := `{
		"name": "t", "seed": 1, "epochs": 10,
		"cohorts": [{"name": "a", "count": 2,
			"arrival": {"type": "immediate"},
			"rate": {"type": "constant", "level": 5}}]
	}`
	cases := []struct {
		name, json, want string
	}{
		{"unknown field", `{"name": "t", "epochs": 10, "cohrts": []}`, "cohrts"},
		{"no name", `{"epochs": 10, "cohorts": [{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}]}`, "needs a name"},
		{"no epochs", `{"name": "t", "cohorts": [{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}]}`, "epochs"},
		{"no cohorts", `{"name": "t", "epochs": 5}`, "at least one cohort"},
		{"bad arrival", `{"name": "t", "epochs": 5, "cohorts": [{"name": "a", "count": 1, "arrival": {"type": "warp"}, "rate": {"type": "constant", "level": 1}}]}`, "warp"},
		{"bad rate type", `{"name": "t", "epochs": 5, "cohorts": [{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "quadratic"}}]}`, "quadratic"},
		{"undefined class", `{"name": "t", "epochs": 5, "cohorts": [{"name": "a", "count": 1, "class": "gold", "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}]}`, `undefined class "gold"`},
		{"dup cohort", `{"name": "t", "epochs": 5, "cohorts": [
			{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}},
			{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}]}`, "duplicate cohort"},
		{"too many members", `{"name": "t", "epochs": 5, "network": {"nodes": 6, "layers": 3},
			"cohorts": [{"name": "a", "count": 5, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}]}`, "raise network.nodes"},
		{"fault out of range", `{"name": "t", "epochs": 5,
			"cohorts": [{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}],
			"faults": [{"at": 9, "kind": "scale_capacity", "node": "n00", "factor": 0.5}]}`, "outside"},
		{"fault bad kind", `{"name": "t", "epochs": 5,
			"cohorts": [{"name": "a", "count": 1, "arrival": {"type": "immediate"}, "rate": {"type": "constant", "level": 1}}],
			"faults": [{"at": 1, "kind": "meteor"}]}`, "meteor"},
	}
	if _, err := ParseScenario([]byte(base)); err != nil {
		t.Fatalf("base scenario should be valid, got %v", err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(c.json))
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
