// Package loadgen is the scenario-driven workload generator for the
// admission service: it compiles declarative JSON scenarios — cohorts
// of commodities with arrival/departure processes, per-epoch rate
// trajectories drawn from internal/workload, weighted α-fair priority
// classes, and scripted node/link fault injection — into deterministic
// event streams, drives them against a live server (in-process or over
// HTTP) on a virtual clock, and sweeps offered load to locate the
// saturation knee where admission control starts rejecting.
//
// The paper's premise (§1) is bursty, unpredictable stream rates that
// force admission control; this package is the harness that produces
// those rates reproducibly. Everything is a pure function of the
// scenario (including its seed): the same scenario always compiles to
// a byte-identical event stream, so saturation sweeps and CI smoke
// runs are exactly replayable.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/workload"
)

// Scenario is the declarative workload description. The JSON form is
// what cmd/loadgen loads and what examples/scenarios/*.json hold.
type Scenario struct {
	// Name labels reports and metrics.
	Name string `json:"name"`
	// Seed drives every random draw: member arrival/departure times,
	// seeded rate processes, and the generated network (unless the
	// network declares its own seed). Same seed ⇒ same event stream.
	Seed int64 `json:"seed"`
	// Epochs is the virtual-clock horizon.
	Epochs int `json:"epochs"`
	// EpochMillis paces the driver: one epoch per this many wall-clock
	// milliseconds. 0 means as fast as possible (tests, throughput
	// benchmarks).
	EpochMillis int `json:"epochMillis,omitempty"`
	// Network describes the randnet-generated substrate the scenario
	// runs on. Every cohort member gets its own commodity template
	// (source, sink, DAG, Property-1 shrinkage factors) carved out of
	// this instance, so arrivals always validate.
	Network NetworkSpec `json:"network"`
	// Classes are the admission-priority classes cohorts reference:
	// weighted α-fair utilities (higher weight ⇒ higher priority at
	// the same α; α = 1 is proportional fairness, 0 is throughput).
	Classes []ClassSpec `json:"classes,omitempty"`
	// Cohorts are the commodity populations.
	Cohorts []CohortSpec `json:"cohorts"`
	// Faults are scripted capacity/bandwidth events (the E8 failure-
	// injection idiom, replayed at fixed epochs).
	Faults []FaultSpec `json:"faults,omitempty"`
}

// NetworkSpec parameterizes the randnet instance the scenario runs on.
type NetworkSpec struct {
	Nodes  int `json:"nodes,omitempty"`  // default 24
	Layers int `json:"layers,omitempty"` // default 3
	// Seed for the generated network; 0 means derive from the
	// scenario seed so one seed pins everything.
	Seed int64 `json:"seed,omitempty"`
}

// ClassSpec is one admission-priority class: the weighted α-fair
// utility U(a) = Weight·((a+Shift)^(1−α) − Shift^(1−α))/(1−α)
// (α = 1: Weight·log(1 + a/Shift)) attached to every member of the
// cohorts that reference it.
type ClassSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Alpha  float64 `json:"alpha,omitempty"` // default 1
	Shift  float64 `json:"shift,omitempty"` // default 1
}

// CohortSpec is one population of commodities sharing an arrival
// process, a rate process, and a priority class.
type CohortSpec struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Class names a ClassSpec; empty keeps the generated template's
	// utility (linear slope 1, the paper's max-throughput objective).
	Class   string         `json:"class,omitempty"`
	Arrival ArrivalSpec    `json:"arrival"`
	// Departure is optional; absent means members stay until the
	// horizon ends.
	Departure *DepartureSpec `json:"departure,omitempty"`
	Rate      RateSpec       `json:"rate"`
}

// ArrivalSpec places each cohort member's arrival epoch.
//
//   - "immediate": every member arrives at epoch 0.
//   - "flash":     every member arrives at At, staggered uniformly
//     over [At, At+Spread] — the flash-crowd burst.
//   - "poisson":   members arrive with exponential inter-arrival
//     times at Rate arrivals per epoch.
//   - "uniform":   each member arrives uniformly in [0, Epochs).
type ArrivalSpec struct {
	Type   string  `json:"type"`
	At     int     `json:"at,omitempty"`
	Spread int     `json:"spread,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
}

// DepartureSpec ends a member's session.
//
//   - "never":   the member stays until the horizon (same as omitting
//     the departure spec).
//   - "after":   the member departs exactly Dwell epochs after arrival.
//   - "poisson": the dwell is geometric with mean Dwell epochs.
type DepartureSpec struct {
	Type  string `json:"type"`
	Dwell int    `json:"dwell,omitempty"`
}

// RateSpec selects a workload.Process for the member's offered-rate
// trajectory; Type picks the family and the other fields parameterize
// it (only the fields of the chosen family are read).
type RateSpec struct {
	Type string `json:"type"`
	// constant
	Level float64 `json:"level,omitempty"`
	// steps (Levels, Period), sine reuses Period
	Levels []float64 `json:"levels,omitempty"`
	Period int       `json:"period,omitempty"`
	// onoff
	High   float64 `json:"high,omitempty"`
	Low    float64 `json:"low,omitempty"`
	OnLen  int     `json:"onLen,omitempty"`
	OffLen int     `json:"offLen,omitempty"`
	// mmpp (Rates, MeanDwell)
	Rates     []float64 `json:"rates,omitempty"`
	MeanDwell float64   `json:"meanDwell,omitempty"`
	// sine (Base, Amp, Period)
	Base float64 `json:"base,omitempty"`
	Amp  float64 `json:"amp,omitempty"`
	// spike (Base, Peak, Start, Ramp, Hold, Decay)
	Peak  float64 `json:"peak,omitempty"`
	Start int     `json:"start,omitempty"`
	Ramp  int     `json:"ramp,omitempty"`
	Hold  int     `json:"hold,omitempty"`
	Decay int     `json:"decay,omitempty"`
	// lognormal (Median, Sigma)
	Median float64 `json:"median,omitempty"`
	Sigma  float64 `json:"sigma,omitempty"`
}

// FaultSpec is one scripted capacity/bandwidth event.
//
// Kinds: "scale_capacity" (Node, Factor), "set_capacity" (Node,
// Value), "scale_bandwidth" (From, To, Factor), "set_bandwidth"
// (From, To, Value). Node names follow randnet's n00, n01, ...
// convention.
type FaultSpec struct {
	At     int     `json:"at"`
	Kind   string  `json:"kind"`
	Node   string  `json:"node,omitempty"`
	From   string  `json:"from,omitempty"`
	To     string  `json:"to,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// ParseScenario decodes and validates a scenario. Unknown fields are
// rejected so a typo'd knob fails loudly instead of silently running
// the default.
func ParseScenario(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("loadgen: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Marshal renders the scenario back to its canonical indented JSON
// form; Parse∘Marshal is stable (round-trip tested).
func (sc *Scenario) Marshal() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// setDefaults fills the documented defaults in place.
func (sc *Scenario) setDefaults() {
	if sc.Network.Nodes == 0 {
		sc.Network.Nodes = 24
	}
	if sc.Network.Layers == 0 {
		sc.Network.Layers = 3
	}
}

// Validate checks the scenario for structural problems with actionable
// messages: every error names the cohort/class/fault it comes from and
// what to change.
func (sc *Scenario) Validate() error {
	sc.setDefaults()
	if sc.Name == "" {
		return fmt.Errorf("loadgen: scenario needs a name")
	}
	if sc.Epochs <= 0 {
		return fmt.Errorf("loadgen: scenario %q: epochs must be positive, got %d", sc.Name, sc.Epochs)
	}
	if sc.EpochMillis < 0 {
		return fmt.Errorf("loadgen: scenario %q: epochMillis must be ≥ 0, got %d", sc.Name, sc.EpochMillis)
	}
	if len(sc.Cohorts) == 0 {
		return fmt.Errorf("loadgen: scenario %q: needs at least one cohort", sc.Name)
	}
	classes := map[string]ClassSpec{}
	for i, cl := range sc.Classes {
		if cl.Name == "" {
			return fmt.Errorf("loadgen: scenario %q: class %d needs a name", sc.Name, i)
		}
		if _, dup := classes[cl.Name]; dup {
			return fmt.Errorf("loadgen: scenario %q: duplicate class %q", sc.Name, cl.Name)
		}
		if cl.Weight <= 0 {
			return fmt.Errorf("loadgen: scenario %q: class %q: weight must be positive, got %g", sc.Name, cl.Name, cl.Weight)
		}
		if cl.Alpha < 0 {
			return fmt.Errorf("loadgen: scenario %q: class %q: alpha must be ≥ 0, got %g", sc.Name, cl.Name, cl.Alpha)
		}
		if cl.Shift < 0 {
			return fmt.Errorf("loadgen: scenario %q: class %q: shift must be ≥ 0, got %g", sc.Name, cl.Name, cl.Shift)
		}
		classes[cl.Name] = cl
	}
	total := 0
	seen := map[string]bool{}
	for i, co := range sc.Cohorts {
		if co.Name == "" {
			return fmt.Errorf("loadgen: scenario %q: cohort %d needs a name", sc.Name, i)
		}
		if seen[co.Name] {
			return fmt.Errorf("loadgen: scenario %q: duplicate cohort %q", sc.Name, co.Name)
		}
		seen[co.Name] = true
		if co.Count <= 0 {
			return fmt.Errorf("loadgen: scenario %q: cohort %q: count must be positive, got %d", sc.Name, co.Name, co.Count)
		}
		if co.Class != "" {
			if _, ok := classes[co.Class]; !ok {
				return fmt.Errorf("loadgen: scenario %q: cohort %q references undefined class %q (declare it under \"classes\")",
					sc.Name, co.Name, co.Class)
			}
		}
		if err := co.Arrival.validate(sc.Epochs); err != nil {
			return fmt.Errorf("loadgen: scenario %q: cohort %q: arrival: %w", sc.Name, co.Name, err)
		}
		if co.Departure != nil {
			if err := co.Departure.validate(); err != nil {
				return fmt.Errorf("loadgen: scenario %q: cohort %q: departure: %w", sc.Name, co.Name, err)
			}
		}
		if _, err := co.Rate.process(1); err != nil {
			return fmt.Errorf("loadgen: scenario %q: cohort %q: rate: %w", sc.Name, co.Name, err)
		}
		total += co.Count
	}
	if maxMembers := sc.Network.Nodes / sc.Network.Layers; total > maxMembers {
		return fmt.Errorf("loadgen: scenario %q: %d cohort members need %d first-layer source nodes but the %d-node/%d-layer network has only %d — raise network.nodes or lower counts",
			sc.Name, total, total, sc.Network.Nodes, sc.Network.Layers, maxMembers)
	}
	for i, f := range sc.Faults {
		if f.At < 0 || f.At >= sc.Epochs {
			return fmt.Errorf("loadgen: scenario %q: fault %d: at=%d outside [0,%d)", sc.Name, i, f.At, sc.Epochs)
		}
		switch f.Kind {
		case "scale_capacity":
			if f.Node == "" || f.Factor <= 0 {
				return fmt.Errorf("loadgen: scenario %q: fault %d: scale_capacity needs node and positive factor", sc.Name, i)
			}
		case "set_capacity":
			if f.Node == "" || f.Value <= 0 {
				return fmt.Errorf("loadgen: scenario %q: fault %d: set_capacity needs node and positive value", sc.Name, i)
			}
		case "scale_bandwidth":
			if f.From == "" || f.To == "" || f.Factor <= 0 {
				return fmt.Errorf("loadgen: scenario %q: fault %d: scale_bandwidth needs from, to, and positive factor", sc.Name, i)
			}
		case "set_bandwidth":
			if f.From == "" || f.To == "" || f.Value <= 0 {
				return fmt.Errorf("loadgen: scenario %q: fault %d: set_bandwidth needs from, to, and positive value", sc.Name, i)
			}
		default:
			return fmt.Errorf("loadgen: scenario %q: fault %d: unknown kind %q (want scale_capacity, set_capacity, scale_bandwidth, or set_bandwidth)",
				sc.Name, i, f.Kind)
		}
	}
	return nil
}

// class looks a class spec up by name (must exist — Validate checked).
func (sc *Scenario) class(name string) (ClassSpec, bool) {
	for _, cl := range sc.Classes {
		if cl.Name == name {
			return cl, true
		}
	}
	return ClassSpec{}, false
}

func (a ArrivalSpec) validate(epochs int) error {
	switch a.Type {
	case "immediate":
		return nil
	case "flash":
		if a.At < 0 || a.At >= epochs {
			return fmt.Errorf("flash burst at=%d outside [0,%d)", a.At, epochs)
		}
		if a.Spread < 0 {
			return fmt.Errorf("flash spread must be ≥ 0, got %d", a.Spread)
		}
		return nil
	case "poisson":
		if a.Rate <= 0 {
			return fmt.Errorf("poisson arrivals need rate > 0 (arrivals per epoch), got %g", a.Rate)
		}
		return nil
	case "uniform":
		return nil
	default:
		return fmt.Errorf("unknown type %q (want immediate, flash, poisson, or uniform)", a.Type)
	}
}

func (d DepartureSpec) validate() error {
	switch d.Type {
	case "never":
		return nil
	case "after", "poisson":
		if d.Dwell <= 0 {
			return fmt.Errorf("%s departure needs dwell > 0 epochs, got %d", d.Type, d.Dwell)
		}
		return nil
	default:
		return fmt.Errorf("unknown type %q (want never, after, or poisson)", d.Type)
	}
}

// process builds the workload.Process for one member; seeded families
// use the given seed.
func (r RateSpec) process(seed int64) (workload.Process, error) {
	switch r.Type {
	case "constant":
		if r.Level <= 0 {
			return nil, fmt.Errorf("constant rate needs level > 0, got %g", r.Level)
		}
		return workload.Constant{R: r.Level}, nil
	case "steps":
		if len(r.Levels) == 0 {
			return nil, fmt.Errorf("steps rate needs non-empty levels")
		}
		for _, l := range r.Levels {
			if l <= 0 {
				return nil, fmt.Errorf("steps levels must be positive, got %g", l)
			}
		}
		return workload.Steps{Levels: r.Levels, Period: r.Period}, nil
	case "onoff":
		if r.High <= 0 || r.Low <= 0 {
			return nil, fmt.Errorf("onoff rate needs high > 0 and low > 0 (the solver requires positive offered rates), got high=%g low=%g", r.High, r.Low)
		}
		return workload.OnOff{High: r.High, Low: r.Low, OnLen: r.OnLen, OffLen: r.OffLen}, nil
	case "mmpp":
		if len(r.Rates) == 0 {
			return nil, fmt.Errorf("mmpp rate needs non-empty rates")
		}
		for _, v := range r.Rates {
			if v <= 0 {
				return nil, fmt.Errorf("mmpp rates must be positive, got %g", v)
			}
		}
		return workload.NewMMPP(r.Rates, r.MeanDwell, seed), nil
	case "sine":
		if r.Base <= 0 || r.Amp < 0 || r.Amp >= r.Base {
			return nil, fmt.Errorf("sine rate needs base > 0 and 0 ≤ amp < base (rates must stay positive), got base=%g amp=%g", r.Base, r.Amp)
		}
		return workload.Sine{Base: r.Base, Amp: r.Amp, Period: r.Period}, nil
	case "spike":
		if r.Base <= 0 || r.Peak <= 0 {
			return nil, fmt.Errorf("spike rate needs base > 0 and peak > 0, got base=%g peak=%g", r.Base, r.Peak)
		}
		return workload.Spike{Base: r.Base, Peak: r.Peak, Start: r.Start, Ramp: r.Ramp, Hold: r.Hold, Decay: r.Decay}, nil
	case "lognormal":
		if r.Median <= 0 {
			return nil, fmt.Errorf("lognormal rate needs median > 0, got %g", r.Median)
		}
		return workload.NewLognormal(r.Median, r.Sigma, seed), nil
	default:
		return nil, fmt.Errorf("unknown type %q (want constant, steps, onoff, mmpp, sine, spike, or lognormal)", r.Type)
	}
}
