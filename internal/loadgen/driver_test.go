package loadgen

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func testServerOptions(rec *obs.Recorder) server.Options {
	return server.Options{
		Debounce:   -1, // solve immediately: deterministic generations
		MaxIters:   200,
		Recorder:   rec,
		HistoryCap: -1,
		Logf:       func(string, ...any) {},
	}
}

// The CI smoke test: drive the bundled flash-crowd scenario against an
// in-process server and check the whole pipeline — every compiled
// mutation applies, snapshots incorporate them, and per-decision
// latency lands in the existing histogram/metrics pipeline.
func TestDriveFlashCrowdInProcess(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	c, err := Compile(loadScenario(t, "flashcrowd.json"), 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(c.Base, testServerOptions(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := Run(c, InProc{S: srv}, DriverOptions{
		Recorder:    rec,
		SyncEvery:   1,
		SyncTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutations != c.Mutations() {
		t.Fatalf("applied %d mutations, compiled %d", res.Mutations, c.Mutations())
	}
	if res.Final.Generation == 0 || !res.Final.Feasible {
		t.Fatalf("final observation %+v: want a feasible published snapshot", res.Final)
	}
	if len(res.Samples) != c.Scenario.Epochs {
		t.Fatalf("%d samples, want %d", len(res.Samples), c.Scenario.Epochs)
	}
	measured := 0
	for _, s := range res.Samples {
		if s.LatencySeconds >= 0 {
			measured++
		}
	}
	if measured == 0 {
		t.Fatal("no epoch measured a decision latency")
	}
	// Latency flows through the same histogram the server's decision
	// spans feed — one pipeline for live and generated load.
	hist := reg.Histogram("streamopt_decision_latency_seconds", "", nil)
	if hist.Count() == 0 {
		t.Fatal("decision latency histogram is empty")
	}
	if got := reg.Counter("streamopt_loadgen_mutations_total", "").Value(); got != uint64(res.Mutations) {
		t.Fatalf("loadgen mutations counter = %d, want %d", got, res.Mutations)
	}
	if got := reg.Counter("streamopt_loadgen_epochs_total", "").Value(); got != uint64(c.Scenario.Epochs) {
		t.Fatalf("loadgen epochs counter = %d, want %d", got, c.Scenario.Epochs)
	}
	// During the burst the offered load must actually surge.
	var peak float64
	for _, s := range res.Samples {
		if s.Offered > peak {
			peak = s.Offered
		}
	}
	if base := res.Samples[5].Offered; peak < 3*base {
		t.Fatalf("flash crowd never surged: peak %g vs pre-burst %g", peak, base)
	}
}

// Two identical runs against identical servers must apply the same
// mutation sequence and land on the same final offered load.
func TestDriverIsReproducible(t *testing.T) {
	run := func() *RunResult {
		c, err := Compile(loadScenario(t, "churn.json"), 1)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(c.Base, testServerOptions(nil))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		res, err := Run(c, InProc{S: srv}, DriverOptions{SyncEvery: 1, SyncTimeout: 30 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Mutations != b.Mutations {
		t.Fatalf("mutation counts differ: %d vs %d", a.Mutations, b.Mutations)
	}
	for i := range a.Samples {
		if a.Samples[i].Offered != b.Samples[i].Offered || a.Samples[i].Active != b.Samples[i].Active {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
	if a.Final.Offered != b.Final.Offered {
		t.Fatalf("final offered differ: %g vs %g", a.Final.Offered, b.Final.Offered)
	}
}

// The driver must push well past 10k mutations/sec against the
// in-process backend when it isn't waiting on snapshots — the batch
// SetMaxRates path is what makes this possible.
func TestDriverThroughput(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "throughput", "seed": 3, "epochs": 3000,
		"network": {"nodes": 24, "layers": 3},
		"cohorts": [{
			"name": "hot", "count": 8,
			"arrival": {"type": "immediate"},
			"rate": {"type": "lognormal", "median": 5, "sigma": 0.5}
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Default debounce coalesces the mutation firehose into few solves;
	// the driver only syncs once at the end.
	srv, err := server.New(c.Base, server.Options{MaxIters: 100, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := Run(c, InProc{S: srv}, DriverOptions{SyncTimeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mutations < 20000 {
		t.Fatalf("scenario too small to measure: %d mutations", res.Mutations)
	}
	if res.MutationsPerSec < 10000 {
		t.Fatalf("driver sustained %.0f mutations/sec, want ≥ 10000", res.MutationsPerSec)
	}
}
