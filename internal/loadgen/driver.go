package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// Observation is the driver's view of one published snapshot, reduced
// to the aggregates the analyzer cares about.
type Observation struct {
	Generation int64   `json:"generation"`
	Rev        int64   `json:"rev"` // mutation revision the solve captured
	Utility    float64 `json:"utility"`
	Feasible   bool    `json:"feasible"`
	// Offered and Admitted are Σ_j λ_j and Σ_j a_j at solve time.
	Offered  float64 `json:"offered"`
	Admitted float64 `json:"admitted"`
}

// AdmittedFrac is Σa/Σλ, or 0 when nothing is offered.
func (o Observation) AdmittedFrac() float64 {
	if o.Offered <= 0 {
		return 0
	}
	return o.Admitted / o.Offered
}

// Backend is where compiled events land. Two implementations: InProc
// (a *server.Server in the same process — deterministic tests,
// throughput benchmarks) and HTTP (a live admissiond). Mutations
// return the server revision they produced, so the driver can wait for
// the snapshot that incorporates them.
type Backend interface {
	AddCommodity(spec []byte) (int64, error)
	RemoveCommodity(name string) (int64, error)
	// SetRates applies a whole epoch's rate changes as one mutation
	// batch: one solver wake however many commodities moved.
	SetRates(rates map[string]float64) (int64, error)
	SetCapacity(node string, capacity float64) (int64, error)
	ScaleCapacity(node string, factor float64) (int64, error)
	SetBandwidth(from, to string, bandwidth float64) (int64, error)
	ScaleBandwidth(from, to string, factor float64) (int64, error)
	// Observe is the latest published snapshot (zero Observation
	// before the first publish).
	Observe() (Observation, error)
	// WaitForGeneration blocks until a snapshot with generation ≥ gen
	// is published, returning its aggregates.
	WaitForGeneration(gen int64, timeout time.Duration) (Observation, error)
}

// InProc drives an in-process server directly — no serialization, no
// sockets, fully deterministic under test.
type InProc struct{ S *server.Server }

func (b InProc) AddCommodity(spec []byte) (int64, error) { return b.S.AddCommodityJSON(spec) }
func (b InProc) RemoveCommodity(name string) (int64, error) {
	return b.S.RemoveCommodity(name)
}
func (b InProc) SetRates(rates map[string]float64) (int64, error) { return b.S.SetMaxRates(rates) }
func (b InProc) SetCapacity(node string, c float64) (int64, error) {
	return b.S.SetCapacity(node, c)
}
func (b InProc) ScaleCapacity(node string, f float64) (int64, error) {
	return b.S.ScaleCapacity(node, f)
}
func (b InProc) SetBandwidth(from, to string, bw float64) (int64, error) {
	return b.S.SetBandwidth(from, to, bw)
}
func (b InProc) ScaleBandwidth(from, to string, f float64) (int64, error) {
	return b.S.ScaleBandwidth(from, to, f)
}

func (b InProc) Observe() (Observation, error) {
	if snap := b.S.Snapshot(); snap != nil {
		return observe(snap), nil
	}
	return Observation{}, nil
}

func (b InProc) WaitForGeneration(gen int64, timeout time.Duration) (Observation, error) {
	snap, err := b.S.WaitForGeneration(gen, timeout)
	if err != nil {
		return Observation{}, err
	}
	return observe(snap), nil
}

func observe(snap *server.Snapshot) Observation {
	o := Observation{
		Generation: snap.Generation,
		Rev:        snap.Rev,
		Utility:    snap.Utility,
		Feasible:   snap.Feasible,
	}
	for _, c := range snap.Commodities {
		o.Offered += c.Offered
		o.Admitted += c.Admitted
	}
	return o
}

// HTTP drives a live admissiond over its REST API.
type HTTP struct {
	Base   string // e.g. "http://localhost:8080"
	Client *http.Client
	// Poll is the snapshot-poll interval for WaitForGeneration;
	// default 10 ms.
	Poll time.Duration
}

func (b HTTP) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

// do sends one mutation and returns the server revision it produced.
func (b HTTP) do(method, path string, body []byte) (int64, error) {
	req, err := http.NewRequest(method, b.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("loadgen: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	var out struct {
		Rev int64 `json:"rev"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, fmt.Errorf("loadgen: %s %s: decode response: %w", method, path, err)
	}
	return out.Rev, nil
}

func (b HTTP) AddCommodity(spec []byte) (int64, error) { return b.do("POST", "/v1/commodities", spec) }
func (b HTTP) RemoveCommodity(name string) (int64, error) {
	return b.do("DELETE", "/v1/commodities/"+name, nil)
}
func (b HTTP) SetRates(rates map[string]float64) (int64, error) {
	body, err := json.Marshal(map[string]any{"rates": rates})
	if err != nil {
		return 0, err
	}
	return b.do("POST", "/v1/rates", body)
}
func (b HTTP) SetCapacity(node string, c float64) (int64, error) {
	body, _ := json.Marshal(map[string]float64{"capacity": c})
	return b.do("POST", "/v1/nodes/"+node+"/capacity", body)
}
func (b HTTP) ScaleCapacity(node string, f float64) (int64, error) {
	body, _ := json.Marshal(map[string]float64{"scale": f})
	return b.do("POST", "/v1/nodes/"+node+"/capacity", body)
}
func (b HTTP) SetBandwidth(from, to string, bw float64) (int64, error) {
	body, _ := json.Marshal(map[string]float64{"bandwidth": bw})
	return b.do("POST", "/v1/links/"+from+"/"+to+"/bandwidth", body)
}
func (b HTTP) ScaleBandwidth(from, to string, f float64) (int64, error) {
	body, _ := json.Marshal(map[string]float64{"scale": f})
	return b.do("POST", "/v1/links/"+from+"/"+to+"/bandwidth", body)
}

func (b HTTP) Observe() (Observation, error) {
	resp, err := b.client().Get(b.Base + "/v1/snapshot")
	if err != nil {
		return Observation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return Observation{}, nil // no snapshot yet
	}
	if resp.StatusCode != http.StatusOK {
		return Observation{}, fmt.Errorf("loadgen: GET /v1/snapshot: %s", resp.Status)
	}
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return Observation{}, err
	}
	return observe(&snap), nil
}

func (b HTTP) WaitForGeneration(gen int64, timeout time.Duration) (Observation, error) {
	poll := b.Poll
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		o, err := b.Observe()
		if err != nil {
			return Observation{}, err
		}
		if o.Generation >= gen {
			return o, nil
		}
		if time.Now().After(deadline) {
			return Observation{}, fmt.Errorf("loadgen: timeout waiting for generation %d (at %d)", gen, o.Generation)
		}
		time.Sleep(poll)
	}
}

// waitForRev blocks until a published snapshot's Rev reaches rev —
// i.e. until every mutation up to rev is reflected in a decision.
func waitForRev(be Backend, rev int64, timeout time.Duration) (Observation, error) {
	deadline := time.Now().Add(timeout)
	o, err := be.Observe()
	if err != nil {
		return Observation{}, err
	}
	for o.Rev < rev {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return Observation{}, fmt.Errorf("loadgen: timeout waiting for rev %d (snapshot at rev %d)", rev, o.Rev)
		}
		o, err = be.WaitForGeneration(o.Generation+1, remaining)
		if err != nil {
			return Observation{}, err
		}
	}
	return o, nil
}

// DriverOptions tunes Run.
type DriverOptions struct {
	// Recorder streams per-epoch progress (loadgen_epoch events, the
	// streamopt_loadgen_* gauges), per-sync decision latencies, and the
	// run summary. Nil disables.
	Recorder *obs.Recorder
	// SyncEvery makes the driver block for the snapshot incorporating
	// the epoch's mutations every N mutating epochs, measuring
	// ingest-to-publish latency. 0 means sync only once at the end
	// (maximum throughput); 1 measures every mutating epoch.
	SyncEvery int
	// SyncTimeout bounds each wait; default 10 s.
	SyncTimeout time.Duration
	// RealTime honors the scenario's epochMillis pacing on the wall
	// clock. False runs the virtual clock as fast as possible.
	RealTime bool
}

// EpochSample is one epoch's driver-side record.
type EpochSample struct {
	Epoch     int     `json:"epoch"`
	Active    int     `json:"active"`    // commodities present after this epoch
	Mutations int     `json:"mutations"` // mutations this epoch applied
	Offered   float64 `json:"offered"`   // Σλ after this epoch (driver-side)
	// Synced epochs carry the observed snapshot aggregates and the
	// ingest-to-publish latency; unsynced epochs have Latency < 0.
	Utility        float64 `json:"utility"`
	AdmittedFrac   float64 `json:"admittedFrac"`
	LatencySeconds float64 `json:"latencySeconds"`
}

// RunResult summarizes one driven scenario.
type RunResult struct {
	Samples   []EpochSample `json:"samples"`
	Mutations int           `json:"mutations"`
	Seconds   float64       `json:"seconds"`
	// MutationsPerSec is the applied-mutation throughput over the whole
	// run (the CI smoke floor checks this).
	MutationsPerSec float64 `json:"mutationsPerSec"`
	// Final is the snapshot that incorporates the run's last mutation.
	Final Observation `json:"final"`
}

// Run drives one compiled scenario against a backend, epoch by epoch:
// arrivals and faults apply individually, an epoch's rate changes
// coalesce into one SetRates batch, departures apply individually.
// Events apply in compiled order, so a run is as deterministic as the
// backend lets it be.
func Run(c *Compiled, be Backend, opts DriverOptions) (*RunResult, error) {
	if opts.SyncTimeout <= 0 {
		opts.SyncTimeout = 10 * time.Second
	}
	res := &RunResult{}
	offered := map[string]float64{} // driver-side view of λ by commodity
	var lastRev int64
	start := time.Now()
	cursor := 0
	syncDue := 0
	for epoch := 0; epoch < c.Scenario.Epochs; epoch++ {
		if opts.RealTime && c.Scenario.EpochMillis > 0 {
			wakeAt := start.Add(time.Duration(epoch*c.Scenario.EpochMillis) * time.Millisecond)
			if d := time.Until(wakeAt); d > 0 {
				time.Sleep(d)
			}
		}
		applied := 0
		rates := map[string]float64{}
		flushRates := func() error {
			if len(rates) == 0 {
				return nil
			}
			rev, err := be.SetRates(rates)
			if err != nil {
				return err
			}
			lastRev = rev
			applied += len(rates)
			for name, r := range rates {
				offered[name] = r
			}
			rates = map[string]float64{}
			return nil
		}
		epochStart := time.Now()
		for ; cursor < len(c.Events) && c.Events[cursor].Epoch == epoch; cursor++ {
			e := c.Events[cursor]
			var rev int64
			var err error
			switch e.Kind {
			case "rate":
				// Batched; flushed before any non-rate event so the
				// backend sees the compiled order.
				rates[e.Commodity] = e.Rate
				continue
			case "arrive":
				if err = flushRates(); err == nil {
					if rev, err = be.AddCommodity(e.Spec); err == nil {
						offered[e.Commodity] = e.Rate
					}
				}
			case "depart":
				if err = flushRates(); err == nil {
					if rev, err = be.RemoveCommodity(e.Commodity); err == nil {
						delete(offered, e.Commodity)
					}
				}
			case "scale_capacity":
				if err = flushRates(); err == nil {
					rev, err = be.ScaleCapacity(e.Node, e.Factor)
				}
			case "set_capacity":
				if err = flushRates(); err == nil {
					rev, err = be.SetCapacity(e.Node, e.Value)
				}
			case "scale_bandwidth":
				if err = flushRates(); err == nil {
					rev, err = be.ScaleBandwidth(e.From, e.To, e.Factor)
				}
			case "set_bandwidth":
				if err = flushRates(); err == nil {
					rev, err = be.SetBandwidth(e.From, e.To, e.Value)
				}
			default:
				err = fmt.Errorf("loadgen: unknown event kind %q", e.Kind)
			}
			if err != nil {
				return nil, fmt.Errorf("loadgen: epoch %d seq %d: %w", e.Epoch, e.Seq, err)
			}
			if rev > 0 {
				lastRev = rev
			}
			applied++
		}
		if err := flushRates(); err != nil {
			return nil, fmt.Errorf("loadgen: epoch %d: %w", epoch, err)
		}

		sample := EpochSample{
			Epoch:          epoch,
			Active:         len(offered),
			Mutations:      applied,
			Offered:        sum(offered),
			LatencySeconds: -1,
		}
		if applied > 0 {
			res.Mutations += applied
			syncDue++
			if opts.SyncEvery > 0 && syncDue >= opts.SyncEvery {
				syncDue = 0
				o, err := waitForRev(be, lastRev, opts.SyncTimeout)
				if err != nil {
					return nil, fmt.Errorf("loadgen: epoch %d: %w", epoch, err)
				}
				sample.LatencySeconds = time.Since(epochStart).Seconds()
				sample.Utility = o.Utility
				sample.AdmittedFrac = o.AdmittedFrac()
				res.Final = o
				opts.Recorder.DecisionLatency(sample.LatencySeconds)
			}
		}
		opts.Recorder.LoadgenEpoch(epoch, sample.Active, sample.Mutations,
			sample.Offered, sample.Utility, sample.AdmittedFrac)
		res.Samples = append(res.Samples, sample)
	}
	// Final barrier: the run only counts as done once a published
	// snapshot incorporates the last accepted mutation.
	if res.Mutations > 0 {
		o, err := waitForRev(be, lastRev, opts.SyncTimeout)
		if err != nil {
			return nil, fmt.Errorf("loadgen: final sync: %w", err)
		}
		res.Final = o
	}
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.MutationsPerSec = float64(res.Mutations) / res.Seconds
	}
	opts.Recorder.LoadgenSummary(c.Scenario.Epochs, res.Mutations, res.Seconds, res.MutationsPerSec)
	return res, nil
}

func sum(m map[string]float64) float64 {
	// Deterministic order so float addition is reproducible run to run.
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	for _, name := range names {
		total += m[name]
	}
	return total
}
