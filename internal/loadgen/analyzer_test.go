package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// findKnee on synthetic curves: a sweep that saturates must locate the
// knee where utility flattens while admission drops; a sweep that keeps
// admitting everything must report none.
func TestFindKneeSynthetic(t *testing.T) {
	saturating := []SweepPoint{
		{Scale: 0.25, Offered: 25, Utility: 10, AdmittedFrac: 0.99},
		{Scale: 0.5, Offered: 50, Utility: 20, AdmittedFrac: 0.98},
		{Scale: 1, Offered: 100, Utility: 29, AdmittedFrac: 0.97},
		{Scale: 2, Offered: 200, Utility: 31, AdmittedFrac: 0.60},
		{Scale: 4, Offered: 400, Utility: 31.5, AdmittedFrac: 0.30},
	}
	knee := findKnee(saturating)
	if knee == nil {
		t.Fatal("saturating sweep: no knee found")
	}
	if knee.Scale != 2 {
		t.Fatalf("knee at scale %g, want 2", knee.Scale)
	}
	if knee.Reason == "" {
		t.Fatal("knee carries no reason")
	}

	linear := []SweepPoint{
		{Scale: 0.5, Offered: 50, Utility: 10, AdmittedFrac: 0.99},
		{Scale: 1, Offered: 100, Utility: 20, AdmittedFrac: 0.99},
		{Scale: 2, Offered: 200, Utility: 40, AdmittedFrac: 0.98},
	}
	if k := findKnee(linear); k != nil {
		t.Fatalf("unsaturated sweep reported a knee: %+v", k)
	}
	if k := findKnee(saturating[:1]); k != nil {
		t.Fatal("single point cannot have a knee")
	}
}

// The acceptance bar: sweeping offered load over the bundled scenarios
// must locate a utility knee — admitted fraction falling while offered
// load still rises — on at least these two.
func TestSweepFindsKneeOnBundledScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep drives full scenarios; skipped in -short")
	}
	for _, name := range []string{"flashcrowd.json", "diurnal.json"} {
		t.Run(name, func(t *testing.T) {
			sc := loadScenario(t, name)
			rep, err := Sweep(sc, SweepOptions{
				Scales: []float64{0.25, 1, 4, 10},
				Server: testServerOptions(nil),
				Driver: DriverOptions{SyncEvery: 1, SyncTimeout: 30 * time.Second},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Points) != 4 {
				t.Fatalf("%d points, want 4", len(rep.Points))
			}
			for i := 1; i < len(rep.Points); i++ {
				if rep.Points[i].Offered <= rep.Points[i-1].Offered {
					t.Fatalf("offered load not rising across scales: %+v", rep.Points)
				}
			}
			if rep.Knee == nil {
				data, _ := rep.Marshal()
				t.Fatalf("no knee found; report:\n%s", data)
			}
			low, high := rep.Points[0], rep.Points[len(rep.Points)-1]
			if high.AdmittedFrac >= 0.95*low.AdmittedFrac {
				t.Fatalf("admission never dropped: low %.3f high %.3f", low.AdmittedFrac, high.AdmittedFrac)
			}
			for _, pt := range rep.Points {
				if pt.EventStreamSHA256 == "" {
					t.Fatal("point missing event-stream hash")
				}
				if pt.MeanLatency < 0 || pt.P95Latency < pt.MeanLatency {
					t.Fatalf("latency stats not measured: %+v", pt)
				}
			}
			// The report must round-trip as JSON (the nightly job's
			// artifact is consumed programmatically).
			data, err := rep.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			var back Report
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.Knee == nil || back.Knee.Scale != rep.Knee.Scale {
				t.Fatal("report did not round-trip")
			}
		})
	}
}
