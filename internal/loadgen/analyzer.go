package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/server"
)

// SweepPoint is one scale factor's aggregate outcome: the mean over
// the run's synced epochs plus the run's terminal observation.
type SweepPoint struct {
	Scale   float64 `json:"scale"`
	Offered float64 `json:"offered"` // mean Σλ across epochs
	// Utility and AdmittedFrac are means over synced epochs (terminal
	// values in FinalUtility/FinalAdmittedFrac).
	Utility           float64 `json:"utility"`
	AdmittedFrac      float64 `json:"admittedFrac"`
	FinalUtility      float64 `json:"finalUtility"`
	FinalAdmittedFrac float64 `json:"finalAdmittedFrac"`
	// MeanLatency/P95Latency summarize measured ingest-to-publish
	// decision latencies (seconds); -1 when nothing was measured.
	MeanLatency float64 `json:"meanLatencySeconds"`
	P95Latency  float64 `json:"p95LatencySeconds"`
	// Mutations and MutationsPerSec report driver throughput.
	Mutations       int     `json:"mutations"`
	MutationsPerSec float64 `json:"mutationsPerSec"`
	// EventStreamSHA256 pins the exact stream this point was driven
	// with, so a replay can prove byte identity.
	EventStreamSHA256 string `json:"eventStreamSha256"`
}

// Knee marks where the system saturates: utility gains flatten while
// offered load keeps rising and admission control sheds a growing
// fraction of it.
type Knee struct {
	Scale   float64 `json:"scale"`
	Offered float64 `json:"offered"`
	Utility float64 `json:"utility"`
	Reason  string  `json:"reason"`
}

// Report is the machine-readable sweep output (what the nightly soak
// job uploads).
type Report struct {
	Scenario string       `json:"scenario"`
	Seed     int64        `json:"seed"`
	Points   []SweepPoint `json:"points"`
	// Knee is nil when the sweep never saturated (all load admitted at
	// every scale) — that itself is a finding.
	Knee *Knee `json:"knee,omitempty"`
}

// Marshal renders the report as indented JSON.
func (r *Report) Marshal() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// SweepOptions tunes a saturation sweep.
type SweepOptions struct {
	// Scales are the offered-load multipliers to sweep; default
	// {0.25, 0.5, 1, 2, 4}.
	Scales []float64
	// Server configures each scale's fresh in-process server. Tests
	// use Debounce: -1 for immediate solves.
	Server server.Options
	// Driver configures each run; SyncEvery defaults to 1 so every
	// mutating epoch contributes a latency sample.
	Driver DriverOptions
	// Recorder receives a saturation_point event per scale. Nil
	// disables.
	Recorder *obs.Recorder
	// Backend, when non-nil, supplies the backend for each scale (e.g.
	// an HTTP target); the default builds a fresh in-process server
	// per scale from the compiled base problem.
	Backend func(c *Compiled) (Backend, func(), error)
}

// Sweep compiles the scenario at each scale factor, drives it, and
// reduces the runs to a saturation report with the utility knee
// located. Each scale gets a fresh backend so points are independent.
func Sweep(sc *Scenario, opts SweepOptions) (*Report, error) {
	scales := opts.Scales
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 1, 2, 4}
	}
	scales = append([]float64(nil), scales...)
	sort.Float64s(scales)
	if opts.Driver.SyncEvery == 0 {
		opts.Driver.SyncEvery = 1
	}
	rep := &Report{Scenario: sc.Name, Seed: sc.Seed}
	for _, scale := range scales {
		c, err := Compile(sc, scale)
		if err != nil {
			return nil, err
		}
		hash, err := c.EventStreamHash()
		if err != nil {
			return nil, err
		}
		be, cleanup, err := backendFor(c, opts)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep scale %g: %w", scale, err)
		}
		res, err := Run(c, be, opts.Driver)
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep scale %g: %w", scale, err)
		}
		pt := reduce(res, scale)
		pt.EventStreamSHA256 = hash
		rep.Points = append(rep.Points, pt)
		opts.Recorder.SaturationPoint(pt.Scale, pt.Offered, pt.Utility,
			pt.AdmittedFrac, pt.MeanLatency, pt.P95Latency)
	}
	rep.Knee = findKnee(rep.Points)
	return rep, nil
}

func backendFor(c *Compiled, opts SweepOptions) (Backend, func(), error) {
	if opts.Backend != nil {
		return opts.Backend(c)
	}
	srv, err := server.New(c.Base, opts.Server)
	if err != nil {
		return nil, nil, err
	}
	return InProc{S: srv}, func() { srv.Close() }, nil
}

// reduce folds one run into its sweep point.
func reduce(res *RunResult, scale float64) SweepPoint {
	pt := SweepPoint{
		Scale:             scale,
		FinalUtility:      res.Final.Utility,
		FinalAdmittedFrac: res.Final.AdmittedFrac(),
		Mutations:         res.Mutations,
		MutationsPerSec:   res.MutationsPerSec,
		MeanLatency:       -1,
		P95Latency:        -1,
	}
	var offered float64
	var latencies []float64
	synced := 0
	for _, s := range res.Samples {
		offered += s.Offered
		if s.LatencySeconds >= 0 {
			synced++
			pt.Utility += s.Utility
			pt.AdmittedFrac += s.AdmittedFrac
			latencies = append(latencies, s.LatencySeconds)
		}
	}
	if n := len(res.Samples); n > 0 {
		pt.Offered = offered / float64(n)
	}
	if synced > 0 {
		pt.Utility /= float64(synced)
		pt.AdmittedFrac /= float64(synced)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var total float64
		for _, l := range latencies {
			total += l
		}
		pt.MeanLatency = total / float64(len(latencies))
		idx := (95*len(latencies) + 99) / 100
		if idx > 0 {
			idx--
		}
		pt.P95Latency = latencies[idx]
	}
	return pt
}

// findKnee locates the first sweep point (in offered-load order) where
// the marginal utility per unit of extra offered load collapses below
// half the initial slope while the admitted fraction has dropped — the
// admission controller is now shedding a growing share of a still-
// rising offer. Returns nil if the sweep never saturates.
func findKnee(points []SweepPoint) *Knee {
	if len(points) < 2 {
		return nil
	}
	pts := append([]SweepPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Offered < pts[j].Offered })
	base := pts[0]
	dOff := pts[1].Offered - base.Offered
	if dOff <= 0 {
		return nil
	}
	initialSlope := (pts[1].Utility - base.Utility) / dOff
	for i := 1; i < len(pts); i++ {
		dOff := pts[i].Offered - pts[i-1].Offered
		if dOff <= 0 {
			continue
		}
		slope := (pts[i].Utility - pts[i-1].Utility) / dOff
		flat := initialSlope > 0 && slope < 0.5*initialSlope
		shedding := pts[i].AdmittedFrac < 0.95*base.AdmittedFrac
		if flat && shedding {
			return &Knee{
				Scale:   pts[i].Scale,
				Offered: pts[i].Offered,
				Utility: pts[i].Utility,
				Reason: fmt.Sprintf(
					"marginal utility %.4f/unit fell below half the initial %.4f/unit while admitted fraction dropped %.1f%% → %.1f%%",
					slope, initialSlope, 100*base.AdmittedFrac, 100*pts[i].AdmittedFrac),
			}
		}
	}
	return nil
}
