package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/randnet"
	"repro/internal/stream"
	"repro/internal/utility"
	"repro/internal/workload"
)

// minRate is the floor applied to every offered rate: the solver
// requires λ > 0, so processes that dip to zero clamp here.
const minRate = 1e-3

// Event is one compiled scenario action. The stream is totally ordered
// by (Epoch, Seq); Seq is the global position, so sorting is never
// needed. The JSON encoding is canonical: compiling the same scenario
// at the same scale always produces byte-identical streams.
type Event struct {
	Epoch int    `json:"epoch"`
	Seq   int    `json:"seq"`
	// Kind is one of "arrive", "rate", "depart", "scale_capacity",
	// "set_capacity", "scale_bandwidth", "set_bandwidth".
	Kind      string  `json:"kind"`
	Commodity string  `json:"commodity,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	// Spec is the full commodity JSON an arrival admits (the problem
	// schema's "commodities" element form).
	Spec   json.RawMessage `json:"spec,omitempty"`
	Node   string          `json:"node,omitempty"`
	From   string          `json:"from,omitempty"`
	To     string          `json:"to,omitempty"`
	Factor float64         `json:"factor,omitempty"`
	Value  float64         `json:"value,omitempty"`
}

// Compiled is one scenario rendered to a concrete base problem and a
// deterministic event stream at a given offered-load scale factor.
type Compiled struct {
	Scenario *Scenario
	// Scale multiplied every offered rate (the saturation sweep's
	// knob); 1 is the scenario as written.
	Scale float64
	// Base is the generated substrate with zero commodities: the
	// problem a fresh server starts from. Every sink and link a later
	// arrival needs already exists.
	Base *stream.Problem
	// Events is the stream, ordered by (Epoch, Seq).
	Events []Event
}

// member is one cohort member's compiled lifecycle.
type member struct {
	name    string
	arrive  int // epoch; >= Epochs means the member never shows up
	depart  int // exclusive; capped at Epochs
	proc    workload.Process
	current float64 // last emitted rate
}

// Compile renders the scenario to its event stream at the given scale
// factor (≤ 0 means 1). Everything downstream of the scenario seed is
// deterministic: the generated network, each member's arrival and
// departure epochs, and every rate draw.
func Compile(sc *Scenario, scale float64) (*Compiled, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = 1
	}
	total := 0
	for _, co := range sc.Cohorts {
		total += co.Count
	}
	netSeed := sc.Network.Seed
	if netSeed == 0 {
		netSeed = sc.Seed
	}
	// The substrate instance: one generated commodity per member, so
	// every member owns a source, a private sink, and a valid DAG with
	// Property-1 shrinkage factors.
	tmpl, err := randnet.Generate(randnet.Config{
		Nodes:       sc.Network.Nodes,
		Layers:      sc.Network.Layers,
		Commodities: total,
		Seed:        netSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: scenario %q: generate network: %w", sc.Name, err)
	}

	// Carve the generated commodities into cohort members: rename,
	// attach the cohort's class utility, and compile each lifecycle.
	members := make([]*member, 0, total)
	k := 0
	for _, co := range sc.Cohorts {
		cl, hasClass := sc.class(co.Class)
		for i := 0; i < co.Count; i++ {
			m := &member{name: fmt.Sprintf("%s-%d", co.Name, i+1)}
			tmpl.Commodities[k].Name = m.name
			if hasClass {
				alpha, shift := cl.Alpha, cl.Shift
				if alpha == 0 {
					alpha = 1
				}
				if shift == 0 {
					shift = 1
				}
				u := utility.AlphaFair{Weight: cl.Weight, Alpha: alpha, Shift: shift}
				if err := tmpl.SetUtility(m.name, u); err != nil {
					return nil, fmt.Errorf("loadgen: scenario %q: cohort %q class %q: %w", sc.Name, co.Name, co.Class, err)
				}
			}
			// One rng per member, derived from the scenario seed and
			// the member's global index: lifecycle draws and the rate
			// process are independent streams.
			seed := sc.Seed + int64(k+1)*1_000_003
			rng := rand.New(rand.NewSource(seed))
			m.proc, err = co.Rate.process(seed ^ 0x5DEECE66D)
			if err != nil {
				return nil, fmt.Errorf("loadgen: scenario %q: cohort %q: rate: %w", sc.Name, co.Name, err)
			}
			m.arrive, m.depart = lifecycle(co, i, rng, sc.Epochs)
			members = append(members, m)
			k++
		}
	}

	// Poisson cohorts draw cumulative inter-arrival times, which the
	// per-member rng cannot express member-by-member; fix those up with
	// one cohort-level pass.
	k = 0
	for ci, co := range sc.Cohorts {
		if co.Arrival.Type == "poisson" {
			rng := rand.New(rand.NewSource(sc.Seed + int64(ci+1)*7_919))
			at := 0.0
			for i := 0; i < co.Count; i++ {
				at += rng.ExpFloat64() / co.Arrival.Rate
				a := int(at)
				m := members[k+i]
				shift := a - m.arrive
				m.arrive = a
				if m.depart < sc.Epochs {
					m.depart += shift
				}
				if m.depart > sc.Epochs {
					m.depart = sc.Epochs
				}
			}
		}
		k += co.Count
	}

	// Base problem: the substrate network with zero commodities.
	base := tmpl.Clone()
	for _, m := range members {
		base.RemoveCommodity(m.name)
	}

	c := &Compiled{Scenario: sc, Scale: scale, Base: base}
	seq := 0
	push := func(e Event) {
		e.Seq = seq
		seq++
		c.Events = append(c.Events, e)
	}
	for epoch := 0; epoch < sc.Epochs; epoch++ {
		for _, m := range members {
			if m.arrive != epoch || m.depart <= epoch {
				continue
			}
			r := scaledRate(m.proc, epoch, scale)
			if err := tmpl.SetMaxRate(m.name, r); err != nil {
				return nil, fmt.Errorf("loadgen: scenario %q: %s: %w", sc.Name, m.name, err)
			}
			spec, err := tmpl.MarshalCommodityJSON(m.name)
			if err != nil {
				return nil, fmt.Errorf("loadgen: scenario %q: %s: %w", sc.Name, m.name, err)
			}
			m.current = r
			push(Event{Epoch: epoch, Kind: "arrive", Commodity: m.name, Rate: r, Spec: spec})
		}
		for _, m := range members {
			if epoch <= m.arrive || epoch >= m.depart {
				continue
			}
			if r := scaledRate(m.proc, epoch, scale); r != m.current {
				m.current = r
				push(Event{Epoch: epoch, Kind: "rate", Commodity: m.name, Rate: r})
			}
		}
		for _, f := range sc.Faults {
			if f.At != epoch {
				continue
			}
			push(Event{Epoch: epoch, Kind: f.Kind, Node: f.Node,
				From: f.From, To: f.To, Factor: f.Factor, Value: f.Value})
		}
		for _, m := range members {
			if m.depart == epoch && m.arrive < epoch {
				push(Event{Epoch: epoch, Kind: "depart", Commodity: m.name})
			}
		}
	}
	return c, nil
}

// lifecycle draws one member's [arrive, depart) interval. Departures
// are relative to the arrival; poisson-cohort arrivals are corrected
// by a cohort-level pass afterwards.
func lifecycle(co CohortSpec, i int, rng *rand.Rand, epochs int) (arrive, depart int) {
	switch co.Arrival.Type {
	case "immediate":
		arrive = 0
	case "flash":
		arrive = co.Arrival.At
		if co.Arrival.Spread > 0 {
			arrive += rng.Intn(co.Arrival.Spread + 1)
		}
	case "poisson":
		arrive = 0 // placeholder; cohort pass assigns the real epoch
	case "uniform":
		arrive = rng.Intn(epochs)
	}
	depart = epochs
	if d := co.Departure; d != nil {
		switch d.Type {
		case "after":
			depart = arrive + d.Dwell
		case "poisson":
			dwell := int(rng.ExpFloat64() * float64(d.Dwell))
			if dwell < 1 {
				dwell = 1
			}
			depart = arrive + dwell
		}
	}
	if depart > epochs {
		depart = epochs
	}
	return arrive, depart
}

// scaledRate evaluates the process at the epoch, applies the sweep
// scale, and clamps to the solver's positive-rate floor.
func scaledRate(p workload.Process, epoch int, scale float64) float64 {
	r := p.Rate(epoch) * scale
	if r < minRate {
		return minRate
	}
	return r
}

// EventStreamJSONL renders the stream as one JSON object per line —
// the canonical byte-identical form (same scenario, seed, and scale ⇒
// same bytes, always).
func (c *Compiled) EventStreamJSONL() ([]byte, error) {
	var out []byte
	for _, e := range c.Events {
		line, err := json.Marshal(e)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

// EventStreamHash is the hex SHA-256 of EventStreamJSONL — what sweep
// reports embed so replays can prove they drove the identical stream.
func (c *Compiled) EventStreamHash() (string, error) {
	data, err := c.EventStreamJSONL()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Mutations counts the driver-visible mutations in the stream (every
// event is exactly one problem mutation).
func (c *Compiled) Mutations() int { return len(c.Events) }
