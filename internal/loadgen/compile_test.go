package loadgen

import (
	"bytes"
	"os"
	"testing"
)

func loadScenario(t *testing.T, name string) *Scenario {
	t.Helper()
	data, err := os.ReadFile("../../examples/scenarios/" + name)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// The acceptance bar: compiling the same scenario with the same seed
// must reproduce a byte-identical event stream, run after run.
func TestCompileIsByteIdentical(t *testing.T) {
	for _, name := range []string{"flashcrowd.json", "diurnal.json", "churn.json"} {
		t.Run(name, func(t *testing.T) {
			a, err := Compile(loadScenario(t, name), 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Compile(loadScenario(t, name), 1)
			if err != nil {
				t.Fatal(err)
			}
			ja, err := a.EventStreamJSONL()
			if err != nil {
				t.Fatal(err)
			}
			jb, err := b.EventStreamJSONL()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ja, jb) {
				t.Fatal("same scenario+seed+scale compiled to different event streams")
			}
			ha, _ := a.EventStreamHash()
			hb, _ := b.EventStreamHash()
			if ha != hb || ha == "" {
				t.Fatalf("hash mismatch: %s vs %s", ha, hb)
			}

			// A different scale must change the stream (rates scale) but
			// not its shape (same event count, same kinds in order).
			c, err := Compile(loadScenario(t, name), 2)
			if err != nil {
				t.Fatal(err)
			}
			jc, _ := c.EventStreamJSONL()
			if bytes.Equal(ja, jc) {
				t.Fatal("scale 2 compiled to the same stream as scale 1")
			}
			if len(a.Events) != len(c.Events) {
				t.Fatalf("scale changed event count: %d vs %d", len(a.Events), len(c.Events))
			}
			for i := range a.Events {
				if a.Events[i].Kind != c.Events[i].Kind || a.Events[i].Commodity != c.Events[i].Commodity {
					t.Fatalf("scale changed event shape at %d", i)
				}
			}
		})
	}
}

// Structural invariants of a compiled stream: ordered by (epoch, seq),
// arrivals precede any other event for the commodity, departures are
// final, and the base problem starts empty.
func TestCompileEventInvariants(t *testing.T) {
	c, err := Compile(loadScenario(t, "flashcrowd.json"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Base.Commodities) != 0 {
		t.Fatalf("base problem has %d commodities, want 0", len(c.Base.Commodities))
	}
	if c.Mutations() != len(c.Events) {
		t.Fatal("Mutations() disagrees with event count")
	}
	arrived := map[string]bool{}
	departed := map[string]bool{}
	for i, e := range c.Events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.Epoch < c.Events[i-1].Epoch {
			t.Fatalf("event %d epoch %d precedes %d", i, e.Epoch, c.Events[i-1].Epoch)
		}
		if e.Epoch < 0 || e.Epoch >= c.Scenario.Epochs {
			t.Fatalf("event %d epoch %d outside horizon", i, e.Epoch)
		}
		switch e.Kind {
		case "arrive":
			if arrived[e.Commodity] {
				t.Fatalf("%s arrived twice", e.Commodity)
			}
			if len(e.Spec) == 0 {
				t.Fatalf("%s arrival carries no spec", e.Commodity)
			}
			if e.Rate <= 0 {
				t.Fatalf("%s arrival rate %g", e.Commodity, e.Rate)
			}
			arrived[e.Commodity] = true
		case "rate":
			if !arrived[e.Commodity] || departed[e.Commodity] {
				t.Fatalf("rate event for absent commodity %s", e.Commodity)
			}
			if e.Rate <= 0 {
				t.Fatalf("%s rate %g", e.Commodity, e.Rate)
			}
		case "depart":
			if !arrived[e.Commodity] || departed[e.Commodity] {
				t.Fatalf("depart event for absent commodity %s", e.Commodity)
			}
			departed[e.Commodity] = true
		}
	}
	// flashcrowd: 3 baseline members arrive at 0, 5 crowd members in the
	// burst window, and every crowd member departs before the horizon.
	if n := len(arrived); n != 8 {
		t.Fatalf("%d commodities arrived, want 8", n)
	}
	if n := len(departed); n != 5 {
		t.Fatalf("%d commodities departed, want 5 (the crowd)", n)
	}
}

// Arrival specs must admit cleanly onto the base problem — the driver
// depends on every compiled spec validating against the substrate.
func TestCompiledArrivalsAdmit(t *testing.T) {
	c, err := Compile(loadScenario(t, "churn.json"), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Base.Clone()
	admitted := 0
	for _, e := range c.Events {
		switch e.Kind {
		case "arrive":
			if _, err := p.AddCommodityFromJSON(e.Spec); err != nil {
				t.Fatalf("arrival %s failed to admit: %v", e.Commodity, err)
			}
			admitted++
		case "depart":
			if !p.RemoveCommodity(e.Commodity) {
				t.Fatalf("depart %s: not present", e.Commodity)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("churn scenario compiled no arrivals")
	}
}
