package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func addC(t *testing.T, p *Problem, coeffs map[int]float64, sense Sense, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(coeffs, sense, rhs); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

func TestSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6 -> x=4, y=0, obj 12.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	addC(t, p, map[int]float64{0: 1, 1: 1}, LE, 4)
	addC(t, p, map[int]float64{0: 1, 1: 3}, LE, 6)
	s := mustSolve(t, p)
	if !approx(s.Objective, 12) {
		t.Fatalf("obj = %g, want 12", s.Objective)
	}
	if !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Fatalf("x = %v, want [4 0]", s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x + y s.t. 2x + y ≤ 4, x + 2y ≤ 4 -> x=y=4/3, obj 8/3.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	addC(t, p, map[int]float64{0: 2, 1: 1}, LE, 4)
	addC(t, p, map[int]float64{0: 1, 1: 2}, LE, 4)
	s := mustSolve(t, p)
	if !approx(s.Objective, 8.0/3) {
		t.Fatalf("obj = %g, want 8/3", s.Objective)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max 2x + y s.t. x + y = 3, x ≤ 2 -> x=2, y=1, obj 5.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	addC(t, p, map[int]float64{0: 1, 1: 1}, EQ, 3)
	addC(t, p, map[int]float64{0: 1}, LE, 2)
	s := mustSolve(t, p)
	if !approx(s.Objective, 5) || !approx(s.X[0], 2) || !approx(s.X[1], 1) {
		t.Fatalf("got obj=%g x=%v, want 5 [2 1]", s.Objective, s.X)
	}
}

func TestGEConstraints(t *testing.T) {
	// max −x (i.e. minimize x) s.t. x ≥ 3 -> x=3.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	addC(t, p, map[int]float64{0: 1}, GE, 3)
	s := mustSolve(t, p)
	if !approx(s.X[0], 3) {
		t.Fatalf("x = %g, want 3", s.X[0])
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2 is x ≥ 2; max −x gives x=2.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	addC(t, p, map[int]float64{0: -1}, LE, -2)
	s := mustSolve(t, p)
	if !approx(s.X[0], 2) {
		t.Fatalf("x = %g, want 2", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	addC(t, p, map[int]float64{0: 1}, LE, 1)
	addC(t, p, map[int]float64{0: 1}, GE, 2)
	s, err := Solve(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	addC(t, p, map[int]float64{1: 1}, LE, 1)
	s, err := Solve(p)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Classic degenerate vertex: redundant constraints meeting at the
	// optimum. Must terminate (anti-cycling) and find obj = 1.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	addC(t, p, map[int]float64{0: 1, 1: 1}, LE, 1)
	addC(t, p, map[int]float64{0: 1, 1: 2}, LE, 1)
	addC(t, p, map[int]float64{0: 1}, LE, 1)
	s := mustSolve(t, p)
	if !approx(s.Objective, 1) {
		t.Fatalf("obj = %g, want 1", s.Objective)
	}
}

func TestBealeCycle(t *testing.T) {
	// Beale's classic cycling example for Dantzig's rule; the Bland
	// fallback must terminate it. max 0.75x1 − 150x2 + 0.02x3 − 6x4
	// s.t. 0.25x1 − 60x2 − 0.04x3 + 9x4 ≤ 0,
	//      0.5x1 − 90x2 − 0.02x3 + 3x4 ≤ 0, x3 ≤ 1. Optimum 0.05.
	p := NewProblem(4)
	p.SetObjective(0, 0.75)
	p.SetObjective(1, -150)
	p.SetObjective(2, 0.02)
	p.SetObjective(3, -6)
	addC(t, p, map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0)
	addC(t, p, map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0)
	addC(t, p, map[int]float64{2: 1}, LE, 1)
	s := mustSolve(t, p)
	if !approx(s.Objective, 0.05) {
		t.Fatalf("obj = %g, want 0.05", s.Objective)
	}
}

func TestZeroObjective(t *testing.T) {
	p := NewProblem(1)
	addC(t, p, map[int]float64{0: 1}, LE, 5)
	s := mustSolve(t, p)
	if !approx(s.Objective, 0) {
		t.Fatalf("obj = %g, want 0", s.Objective)
	}
}

func TestRejectsBadIndices(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective(5, 1); err == nil {
		t.Fatal("bad objective index accepted")
	}
	if err := p.AddConstraint(map[int]float64{7: 1}, LE, 1); err == nil {
		t.Fatal("bad constraint index accepted")
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 supplies (10, 20), 2 demands (15, 15); minimize cost
	// c = [[4,6],[2,3]] -> total 10·4 + 5·2 + 15·3 = 95.
	// Variables x_sd indexed s*2+d; maximize −cost.
	p := NewProblem(4)
	cost := []float64{4, 6, 2, 3}
	for v, c := range cost {
		p.SetObjective(v, -c)
	}
	addC(t, p, map[int]float64{0: 1, 1: 1}, LE, 10)
	addC(t, p, map[int]float64{2: 1, 3: 1}, LE, 20)
	addC(t, p, map[int]float64{0: 1, 2: 1}, EQ, 15)
	addC(t, p, map[int]float64{1: 1, 3: 1}, EQ, 15)
	s := mustSolve(t, p)
	if !approx(-s.Objective, 95) {
		t.Fatalf("cost = %g, want 95", -s.Objective)
	}
}

// TestQuickRandomLPsSatisfyKKTBasics checks on random feasible-by-
// construction LPs that the returned point is feasible and no simple
// coordinate improvement exists (local optimality along axes implied
// by simplex optimality).
func TestQuickRandomLPsSatisfyConstraints(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := 1 + r.Intn(6)
		p := NewProblem(n)
		for v := 0; v < n; v++ {
			p.SetObjective(v, r.Float64()*4-1)
		}
		for i := 0; i < m; i++ {
			coeffs := make(map[int]float64, n)
			for v := 0; v < n; v++ {
				coeffs[v] = r.Float64() // non-negative rows
			}
			// Positive rhs keeps origin feasible; objective may still
			// be unbounded if some column has all-zero coefficients,
			// which the non-negative row construction makes unlikely
			// but possible; accept Unbounded in that case.
			p.AddConstraint(coeffs, LE, 1+r.Float64()*10)
		}
		s, err := Solve(p)
		if err != nil {
			return errors.Is(err, ErrUnbounded)
		}
		// Feasibility check.
		for _, c := range p.constraints {
			lhs := 0.0
			for v, a := range c.coeffs {
				lhs += a * s.X[v]
			}
			if lhs > c.rhs+1e-6 {
				return false
			}
		}
		for _, xv := range s.X {
			if xv < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDualityGapZero verifies strong duality on random bounded
// LPs: solve the primal and the explicitly constructed dual; their
// optima must match.
func TestQuickDualityGapZero(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := 1 + r.Intn(4)
		// Primal: max c·x s.t. Ax ≤ b, x ≥ 0, with A > 0, b > 0, c ≥ 0:
		// always feasible (x=0) and bounded (A positive).
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = 0.1 + r.Float64()
			}
			b[i] = 0.5 + r.Float64()*5
		}
		for j := range c {
			c[j] = r.Float64() * 3
		}
		primal := NewProblem(n)
		for j, cv := range c {
			primal.SetObjective(j, cv)
		}
		for i := range A {
			coeffs := make(map[int]float64, n)
			for j, a := range A[i] {
				coeffs[j] = a
			}
			primal.AddConstraint(coeffs, LE, b[i])
		}
		ps, err := Solve(primal)
		if err != nil {
			return false
		}
		// Dual: min b·y s.t. Aᵀy ≥ c, y ≥ 0 == max −b·y.
		dual := NewProblem(m)
		for i, bv := range b {
			dual.SetObjective(i, -bv)
		}
		for j := 0; j < n; j++ {
			coeffs := make(map[int]float64, m)
			for i := 0; i < m; i++ {
				coeffs[i] = A[i][j]
			}
			dual.AddConstraint(coeffs, GE, c[j])
		}
		ds, err := Solve(dual)
		if err != nil {
			return false
		}
		return approx(ps.Objective, -ds.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDualsSimpleKnapsack(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4 (binding), x + 3y ≤ 6 (slack at the
	// optimum x=4,y=0): duals are y1 = 3, y2 = 0.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	addC(t, p, map[int]float64{0: 1, 1: 1}, LE, 4)
	addC(t, p, map[int]float64{0: 1, 1: 3}, LE, 6)
	s := mustSolve(t, p)
	if !approx(s.Duals[0], 3) || !approx(s.Duals[1], 0) {
		t.Fatalf("duals = %v, want [3 0]", s.Duals)
	}
}

func TestDualsMarginalValue(t *testing.T) {
	// The dual predicts the objective change from a small RHS bump.
	build := func(cap float64) *Problem {
		p := NewProblem(2)
		p.SetObjective(0, 1)
		p.SetObjective(1, 1)
		addC(t, p, map[int]float64{0: 2, 1: 1}, LE, cap)
		addC(t, p, map[int]float64{0: 1, 1: 2}, LE, 4)
		return p
	}
	base := mustSolve(t, build(4))
	const h = 1e-4
	bumped := mustSolve(t, build(4+h))
	predicted := base.Duals[0] * h
	actual := bumped.Objective - base.Objective
	if math.Abs(predicted-actual) > 1e-8 {
		t.Fatalf("dual %g predicts Δ %g, actual %g", base.Duals[0], predicted, actual)
	}
}

func TestDualsEqualityAndGE(t *testing.T) {
	// max 2x + y s.t. x + y = 3, x ≤ 2. Optimum (2,1), obj 5.
	// Duals: equality dual = 1 (one more unit of the equality RHS is
	// worth +1 via y), x-cap dual = 1 (worth 2 direct minus 1 displaced).
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 1)
	addC(t, p, map[int]float64{0: 1, 1: 1}, EQ, 3)
	addC(t, p, map[int]float64{0: 1}, LE, 2)
	s := mustSolve(t, p)
	if !approx(s.Duals[0], 1) || !approx(s.Duals[1], 1) {
		t.Fatalf("duals = %v, want [1 1]", s.Duals)
	}

	// min x s.t. x ≥ 3 (as max −x): dual of the ≥ constraint is −1.
	q := NewProblem(1)
	q.SetObjective(0, -1)
	addC(t, q, map[int]float64{0: 1}, GE, 3)
	sq := mustSolve(t, q)
	if !approx(sq.Duals[0], -1) {
		t.Fatalf("GE dual = %v, want -1", sq.Duals)
	}
}

// TestQuickComplementarySlackness: on random bounded LPs, y_i > 0 only
// on binding constraints, and duality holds: c·x = Σ y_i·b_i.
func TestQuickComplementarySlackness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := 1 + r.Intn(5)
		p := NewProblem(n)
		type row struct {
			coeffs map[int]float64
			rhs    float64
		}
		rows := make([]row, m)
		for j := 0; j < n; j++ {
			p.SetObjective(j, r.Float64()*3)
		}
		for i := 0; i < m; i++ {
			coeffs := make(map[int]float64, n)
			for j := 0; j < n; j++ {
				coeffs[j] = 0.1 + r.Float64()
			}
			rhs := 0.5 + r.Float64()*5
			rows[i] = row{coeffs, rhs}
			p.AddConstraint(coeffs, LE, rhs)
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		strong := 0.0
		for i, rw := range rows {
			lhs := 0.0
			for v, a := range rw.coeffs {
				lhs += a * s.X[v]
			}
			slack := rw.rhs - lhs
			if s.Duals[i] < -1e-9 {
				return false // LE duals must be non-negative
			}
			if s.Duals[i] > 1e-6 && slack > 1e-6 {
				return false // complementary slackness
			}
			strong += s.Duals[i] * rw.rhs
		}
		// Strong duality: optimal primal = y·b.
		return math.Abs(strong-s.Objective) <= 1e-6*(1+math.Abs(s.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
