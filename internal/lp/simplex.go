// Package lp is a dense two-phase primal simplex solver for linear
// programs, built for the reference-optimum baselines of §6 (the
// paper's horizontal "optimal total throughput" line is an LP optimum;
// the authors used an unnamed commercial solver, we use this one).
//
// The solver handles maximize c·x subject to Ax {≤,=,≥} b, x ≥ 0. It
// pivots by Dantzig's rule and falls back to Bland's rule after a run
// of degenerate pivots, which guarantees termination.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // Σ a_j x_j ≤ b
	GE                  // Σ a_j x_j ≥ b
	EQ                  // Σ a_j x_j = b
)

// Problem is a linear program over variables x_0..x_{n-1} ≥ 0.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
}

type constraint struct {
	coeffs map[int]float64
	sense  Sense
	rhs    float64
}

// NewProblem returns an empty maximization problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{numVars: n, objective: make([]float64, n)}
}

// NumVars reports the number of variables.
func (p *Problem) NumVars() int { return p.numVars }

// SetObjective sets the coefficient of x_v in the maximized objective.
func (p *Problem) SetObjective(v int, coeff float64) error {
	if v < 0 || v >= p.numVars {
		return fmt.Errorf("lp: no variable %d", v)
	}
	p.objective[v] = coeff
	return nil
}

// AddConstraint appends Σ coeffs[v]·x_v (sense) rhs.
func (p *Problem) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) error {
	cp := make(map[int]float64, len(coeffs))
	for v, a := range coeffs {
		if v < 0 || v >= p.numVars {
			return fmt.Errorf("lp: constraint references variable %d", v)
		}
		if a != 0 {
			cp[v] = a
		}
	}
	p.constraints = append(p.constraints, constraint{coeffs: cp, sense: sense, rhs: rhs})
	return nil
}

// Status classifies the solve outcome.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve when Status == Optimal.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Duals[i] is constraint i's dual value (shadow price): the rate at
	// which the optimum improves per unit of right-hand-side slack.
	// Non-negative for ≤ constraints, non-positive for ≥, free for =.
	// Read from the identity column's reduced cost at optimality.
	Duals []float64
}

// Sentinel errors for non-optimal outcomes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
	ErrStalled    = errors.New("lp: iteration limit exceeded")
)

const (
	tol = 1e-9
	// degenerateRun switches pivoting to Bland's rule after this many
	// consecutive zero-progress pivots.
	degenerateRun = 40
)

// Solve runs two-phase primal simplex.
func Solve(p *Problem) (*Solution, error) {
	t := newTableau(p)
	if err := t.phase1(); err != nil {
		return &Solution{Status: Infeasible}, err
	}
	if err := t.phase2(p.objective); err != nil {
		return &Solution{Status: Unbounded}, err
	}
	x := t.extract(p.numVars)
	obj := 0.0
	for v, c := range p.objective {
		obj += c * x[v]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Duals: t.duals(p)}, nil
}

// tableau is the dense simplex tableau: rows = constraints, columns =
// structural + slack/surplus + artificial variables, plus an rhs column
// and an objective row held separately.
type tableau struct {
	m, n     int // constraint rows, total columns (excl. rhs)
	rows     [][]float64
	rhs      []float64
	obj      []float64 // reduced-cost row (for maximization: pivot while obj[j] < -tol ... see note)
	objRHS   float64
	basis    []int
	artFirst int // first artificial column index; len(n) when none
	// idCol[i] is the column holding constraint i's +1 identity entry
	// (slack for ≤ after normalization, artificial otherwise); its
	// reduced cost at optimality is the constraint's dual value.
	idCol []int
	// flipped[i] records that constraint i's row was negated during
	// b ≥ 0 normalization (its dual flips sign back in duals()).
	flipped []bool
	// inPhase2 excludes artificial columns from entering the basis.
	inPhase2 bool
}

// newTableau builds the phase-1-ready tableau with b ≥ 0.
func newTableau(p *Problem) *tableau {
	m := len(p.constraints)
	// Column layout: structural | slack/surplus | artificial.
	extra := 0
	for _, c := range p.constraints {
		if c.sense != EQ {
			extra++
		}
	}
	nArt := 0
	for _, c := range p.constraints {
		rhs := c.rhs
		sense := c.sense
		if rhs < 0 {
			sense = flip(sense)
		}
		if sense != LE {
			nArt++
		}
	}
	n := p.numVars + extra + nArt
	t := &tableau{
		m: m, n: n,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		obj:      make([]float64, n),
		basis:    make([]int, m),
		idCol:    make([]int, m),
		flipped:  make([]bool, m),
		artFirst: p.numVars + extra,
	}
	slackCol := p.numVars
	artCol := t.artFirst
	for i, c := range p.constraints {
		row := make([]float64, n)
		sign := 1.0
		sense := c.sense
		if c.rhs < 0 {
			sign = -1
			sense = flip(sense)
		}
		for v, a := range c.coeffs {
			row[v] = sign * a
		}
		t.rhs[i] = sign * c.rhs
		t.flipped[i] = sign < 0
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			t.idCol[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			t.idCol[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			t.idCol[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// phase1 minimizes the sum of artificial variables; feasible iff the
// minimum is zero.
func (t *tableau) phase1() error {
	if t.artFirst == t.n {
		return nil // no artificials: the all-slack basis is feasible
	}
	// Maximize −Σ artificials. Reduced-cost row: start from −c where
	// c_j = −1 on artificials, then zero out basic columns.
	for j := range t.obj {
		t.obj[j] = 0
		if j >= t.artFirst {
			t.obj[j] = 1 // −c_j with c_j = −1
		}
	}
	t.objRHS = 0
	for i, b := range t.basis {
		if b >= t.artFirst {
			t.subtractRowFromObj(i)
		}
	}
	if err := t.iterate(false); err != nil {
		return err
	}
	if t.objRHS < -1e-7 {
		return fmt.Errorf("%w: artificial residual %g", ErrInfeasible, -t.objRHS)
	}
	// Pivot lingering artificials (at zero level) out of the basis
	// where possible; rows with no eligible column are redundant and
	// harmless.
	for i, b := range t.basis {
		if b < t.artFirst {
			continue
		}
		for j := 0; j < t.artFirst; j++ {
			if math.Abs(t.rows[i][j]) > tol {
				t.pivot(i, j)
				break
			}
		}
	}
	// Artificial columns stay in the tableau — their reduced costs at
	// optimality are the duals of their constraints — but phase 2 never
	// lets them re-enter the basis (chooseEntering stops at artFirst
	// once inPhase2 is set).
	t.inPhase2 = true
	return nil
}

// phase2 maximizes the real objective from the feasible basis.
func (t *tableau) phase2(objective []float64) error {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for v, c := range objective {
		t.obj[v] = -c
	}
	t.objRHS = 0
	for i, b := range t.basis {
		if b < len(objective) && objective[b] != 0 {
			t.addMultipleToObj(i, objective[b])
		}
	}
	return t.iterate(true)
}

// subtractRowFromObj performs obj -= rows[i] (rhs included).
func (t *tableau) subtractRowFromObj(i int) {
	for j := range t.obj {
		t.obj[j] -= t.rows[i][j]
	}
	t.objRHS -= t.rhs[i]
}

// addMultipleToObj performs obj += mult·rows[i] (rhs included).
func (t *tableau) addMultipleToObj(i int, mult float64) {
	for j := range t.obj {
		t.obj[j] += mult * t.rows[i][j]
	}
	t.objRHS += mult * t.rhs[i]
}

// iterate pivots until optimal. allowUnbounded selects the error for a
// missing ratio row (phase 1 is always bounded).
func (t *tableau) iterate(allowUnbounded bool) error {
	maxIters := 200*(t.m+t.n) + 5000
	degenerate := 0
	for iter := 0; iter < maxIters; iter++ {
		col := t.chooseEntering(degenerate >= degenerateRun)
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			if allowUnbounded {
				return ErrUnbounded
			}
			return fmt.Errorf("lp: phase-1 unbounded (internal error)")
		}
		if t.rhs[row] < tol {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(row, col)
	}
	return ErrStalled
}

// chooseEntering picks a column with negative reduced cost: the most
// negative (Dantzig) or the lowest-indexed (Bland, anti-cycling).
func (t *tableau) chooseEntering(bland bool) int {
	limit := t.n
	if t.inPhase2 {
		limit = t.artFirst
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.obj[j] < -tol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -tol
	for j := 0; j < limit; j++ {
		if t.obj[j] < bestVal {
			bestVal = t.obj[j]
			best = j
		}
	}
	return best
}

// chooseLeaving runs the minimum-ratio test; ties break toward the
// smallest basis index (part of Bland's rule).
func (t *tableau) chooseLeaving(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= tol {
			continue
		}
		ratio := t.rhs[i] / a
		if ratio < bestRatio-tol || (ratio < bestRatio+tol && (best < 0 || t.basis[i] < t.basis[best])) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	pr[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * t.rhs[row]
	}
	if f := t.obj[col]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[col] = 0
		t.objRHS -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// duals reads the constraint duals out of the optimal reduced-cost
// row: the identity column of constraint i carries y_i (negated back
// when normalization flipped the row).
func (t *tableau) duals(p *Problem) []float64 {
	// The reduced cost of constraint i's identity column (+e_i with
	// zero objective coefficient) is exactly the simplex multiplier
	// π_i = c_B·B⁻¹·e_i of the normalized row, which IS the dual:
	// ≥ 0 where the normalized row is ≤, ≤ 0 where it is ≥, free for =.
	// Rows negated during b ≥ 0 normalization carry the negated
	// multiplier, so those flip back.
	_ = p
	y := make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		v := t.obj[t.idCol[i]]
		if t.flipped[i] {
			v = -v
		}
		y[i] = v
	}
	return y
}

// extract reads the structural variable values out of the basis.
func (t *tableau) extract(numVars int) []float64 {
	x := make([]float64, numVars)
	for i, b := range t.basis {
		if b < numVars {
			x[b] = t.rhs[i]
		}
	}
	return x
}

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }
