package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestErrorEnvelope table-tests the uniform {"error": {code, message}}
// envelope and the 400/404/409 mapping across every mutation endpoint:
// malformed input → 400 invalid_argument, unknown targets → 404
// not_found, duplicate names and claimed resources → 409 conflict.
func TestErrorEnvelope(t *testing.T) {
	_, ts := startServer(t, nil)
	base := ts.URL

	// toyProblem has commodity c1 (a→t1), servers a/b, sinks t1/t2.
	cases := []struct {
		name     string
		method   string
		url      string
		body     string
		want     int
		wantCode string
	}{
		{"add malformed json", "POST", "/v1/commodities", `{"name":`, 400, "invalid_argument"},
		{"add unknown source", "POST", "/v1/commodities",
			`{"name":"cx","source":"ghost","sink":"t2","maxRate":1,"utility":{"type":"linear","slope":1},"edges":[]}`,
			404, "not_found"},
		{"add duplicate name", "POST", "/v1/commodities",
			`{"name":"c1","source":"a","sink":"t2","maxRate":1,"utility":{"type":"linear","slope":1},"edges":[{"from":"a","to":"b","beta":1,"cost":1},{"from":"b","to":"t2","beta":1,"cost":1}]}`,
			409, "conflict"},
		{"add claimed sink", "POST", "/v1/commodities",
			`{"name":"cx","source":"a","sink":"t1","maxRate":1,"utility":{"type":"linear","slope":1},"edges":[{"from":"a","to":"b","beta":1,"cost":1},{"from":"b","to":"t1","beta":1,"cost":1}]}`,
			409, "conflict"},
		{"delete unknown commodity", "DELETE", "/v1/commodities/ghost", "", 404, "not_found"},
		{"patch unknown commodity", "PATCH", "/v1/commodities/ghost", `{"maxRate":2}`, 404, "not_found"},
		{"patch empty body", "PATCH", "/v1/commodities/c1", `{}`, 400, "invalid_argument"},
		{"patch negative rate", "PATCH", "/v1/commodities/c1", `{"maxRate":-3}`, 400, "invalid_argument"},
		{"rates unknown commodity", "POST", "/v1/rates", `{"rates":{"ghost":2}}`, 404, "not_found"},
		{"rates empty batch", "POST", "/v1/rates", `{"rates":{}}`, 400, "invalid_argument"},
		{"capacity unknown node", "POST", "/v1/nodes/ghost/capacity", `{"capacity":5}`, 404, "not_found"},
		{"capacity no value", "POST", "/v1/nodes/a/capacity", `{}`, 400, "invalid_argument"},
		{"capacity both values", "POST", "/v1/nodes/a/capacity", `{"capacity":5,"scale":2}`, 400, "invalid_argument"},
		{"bandwidth unknown link", "POST", "/v1/links/a/ghost/bandwidth", `{"bandwidth":5}`, 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, base+tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			dec := json.NewDecoder(resp.Body)
			if err := dec.Decode(&e); err != nil {
				t.Fatalf("%s %s: body is not a JSON error envelope: %v", tc.method, tc.url, err)
			}
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = %d (%s), want %d", tc.method, tc.url, resp.StatusCode, e.Error.Message, tc.want)
			}
			if e.Error.Code != tc.wantCode {
				t.Fatalf("%s %s code = %q, want %q (message: %s)", tc.method, tc.url, e.Error.Code, tc.wantCode, e.Error.Message)
			}
			if e.Error.Message == "" {
				t.Fatalf("%s %s: envelope lacks a message", tc.method, tc.url)
			}
		})
	}
}
