package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/utility"
)

// toyProblem builds a two-server chain with one active commodity and a
// spare sink (t2) left free so tests can admit a second commodity at
// runtime:
//
//	a ──► b ──► t1   (c1: a→t1, λ=8)
//	      └───► t2   (free)
func toyProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	a, err := net.AddServer("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddServer("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := net.AddSink("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.AddSink("t2")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := net.AddLink(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	bt1, err := net.AddLink(b, t1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(b, t2, 10); err != nil {
		t.Fatal(err)
	}
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, ab, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, bt1, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func testOptions(rec *obs.Recorder) Options {
	return Options{
		MaxIters:      1500,
		StationaryTol: 1e-3,
		Debounce:      2 * time.Millisecond,
		Recorder:      rec,
		Logf:          func(string, ...any) {},
	}
}

const waitBudget = 20 * time.Second

// startServer spins up the service plus an httptest front end.
func startServer(t *testing.T, rec *obs.Recorder) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(toyProblem(t), testOptions(rec))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	var reg *obs.Registry
	if rec != nil {
		reg = rec.Registry()
	}
	ts := httptest.NewServer(s.Handler(reg))
	t.Cleanup(ts.Close)
	return s, ts
}

func doReq(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRateUpdateProducesNewWarmGeneration is the headline end-to-end
// flow: solve, PATCH a commodity's offered rate over HTTP, and observe
// a new snapshot generation with a changed admitted rate, solved from a
// warm start, with the obs counters distinguishing warm from cold.
func TestRateUpdateProducesNewWarmGeneration(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, ts := startServer(t, rec)

	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm {
		t.Fatal("first solve reported warm; must be cold")
	}
	if len(first.Commodities) != 1 || first.Commodities[0].Name != "c1" {
		t.Fatalf("unexpected commodities in snapshot: %+v", first.Commodities)
	}
	before := first.Commodities[0].Admitted
	if before <= 0 {
		t.Fatalf("nothing admitted on an uncongested toy network: %g", before)
	}

	// Halve the offered rate: the admitted rate must follow it down.
	resp, body := doReq(t, http.MethodPatch, ts.URL+"/v1/commodities/c1",
		map[string]any{"maxRate": 2.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status %d: %s", resp.StatusCode, body)
	}

	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Warm {
		t.Fatal("rate-only update should warm-start")
	}
	after := snap.Commodities[0].Admitted
	if after >= before {
		t.Fatalf("admitted rate did not track the rate cut: before %g, after %g", before, after)
	}
	if snap.Commodities[0].Offered != 2.0 {
		t.Fatalf("snapshot offered rate = %g, want 2", snap.Commodities[0].Offered)
	}

	// Counters must show exactly the story: ≥1 cold and ≥1 warm solve.
	var prom strings.Builder
	if err := rec.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`streamopt_server_solves_total{start="cold"} 1`,
		`streamopt_server_solves_total{start="warm"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, prom.String())
		}
	}

	// And the HTTP read path serves the same snapshot.
	resp, body = doReq(t, http.MethodGet, ts.URL+"/v1/admitted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/admitted status %d", resp.StatusCode)
	}
	var admitted struct {
		Generation  int64             `json:"generation"`
		Commodities []CommodityStatus `json:"commodities"`
	}
	if err := json.Unmarshal(body, &admitted); err != nil {
		t.Fatalf("admitted response does not parse: %v\n%s", err, body)
	}
	if admitted.Generation < snap.Generation {
		t.Fatalf("HTTP read behind waited snapshot: %d < %d", admitted.Generation, snap.Generation)
	}
}

// TestCommodityArrivalAndDepartureColdStart drives the membership
// endpoints: a POSTed arrival changes the extended topology, so the
// next solve cold-starts; a departure shrinks the admitted set again.
func TestCommodityArrivalAndDepartureColdStart(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, ts := startServer(t, rec)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	spec := map[string]any{
		"name": "c2", "source": "a", "sink": "t2", "maxRate": 4.0,
		"utility": map[string]any{"type": "log", "weight": 2.0, "scale": 1.0},
		"edges": []map[string]any{
			{"from": "a", "to": "b", "beta": 1, "cost": 1},
			{"from": "b", "to": "t2", "beta": 1, "cost": 1},
		},
	}
	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/commodities", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST commodity status %d: %s", resp.StatusCode, body)
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Warm {
		t.Fatal("solve after a topology change reported warm")
	}
	if len(snap.Commodities) != 2 {
		t.Fatalf("want 2 commodities after arrival, got %+v", snap.Commodities)
	}

	// A bad arrival must not poison the desired state: unknown sink.
	bad := map[string]any{
		"name": "c3", "source": "a", "sink": "nope", "maxRate": 1.0,
		"utility": map[string]any{"type": "linear", "slope": 1.0},
	}
	resp, _ = doReq(t, http.MethodPost, ts.URL+"/v1/commodities", bad)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad commodity accepted: status %d, want 404 for unknown sink", resp.StatusCode)
	}

	resp, body = doReq(t, http.MethodDelete, ts.URL+"/v1/commodities/c2", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", resp.StatusCode, body)
	}
	snap2, err := s.WaitForGeneration(snap.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Commodities) != 1 {
		t.Fatalf("want 1 commodity after departure, got %+v", snap2.Commodities)
	}
}

// TestFailureInjectionReducesAdmission cuts server b to 10% of its
// capacity ({"scale":0.1}, the E8 idiom) and checks the next snapshot
// admits less than before.
func TestFailureInjectionReducesAdmission(t *testing.T) {
	s, ts := startServer(t, nil)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	before := first.Commodities[0].Admitted

	resp, body := doReq(t, http.MethodPost, ts.URL+"/v1/nodes/b/capacity",
		map[string]any{"scale": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capacity cut status %d: %s", resp.StatusCode, body)
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commodities[0].Admitted >= before {
		t.Fatalf("admission did not drop after failure: %g -> %g",
			before, snap.Commodities[0].Admitted)
	}
	if !snap.Warm {
		t.Fatal("capacity change should rebind (same topology) and warm-start")
	}
}

// TestConcurrentReadsDuringSolves hammers the read endpoints from many
// goroutines while a mutation stream keeps solves in flight. Under
// -race this is the no-torn-snapshot guarantee; structurally we assert
// every response parses, is internally consistent (total utility equals
// the sum of per-commodity utilities), and generations never go
// backward on any one connection-free reader.
func TestConcurrentReadsDuringSolves(t *testing.T) {
	s, ts := startServer(t, nil)
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Mutators: alternate rate changes and capacity wobbles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rate := 4.0 + float64(i%5)
			if _, err := s.SetMaxRate("c1", rate); err != nil {
				t.Errorf("SetMaxRate: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	readErr := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/snapshot")
				if err != nil {
					readErr <- err
					return
				}
				var snap Snapshot
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil {
					readErr <- fmt.Errorf("snapshot decode: %w", err)
					return
				}
				if snap.Generation < lastGen {
					readErr <- fmt.Errorf("generation went backward: %d after %d", snap.Generation, lastGen)
					return
				}
				lastGen = snap.Generation
				var sum float64
				for _, c := range snap.Commodities {
					sum += c.Utility
				}
				if diff := snap.Utility - sum; diff > 1e-6 || diff < -1e-6 {
					readErr <- fmt.Errorf("torn snapshot: utility %g != Σ commodity utilities %g", snap.Utility, sum)
					return
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}
}

// TestBurstCoalescing fires a burst of rate updates and checks the
// debounce window folds them into far fewer solves than mutations.
func TestBurstCoalescing(t *testing.T) {
	s, err := New(toyProblem(t), Options{
		MaxIters:      1500,
		StationaryTol: 1e-3,
		Debounce:      30 * time.Millisecond,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	const burst = 25
	for i := 0; i < burst; i++ {
		if _, err := s.SetMaxRate("c1", 2+float64(i)*0.1); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	// The whole burst landed before the debounce window closed, so it
	// must have produced very few extra generations (1 is the ideal;
	// give scheduling slack up to 3).
	if extra := snap.Generation - first.Generation; extra > 3 {
		t.Fatalf("burst of %d mutations produced %d generations; debounce not coalescing", burst, extra)
	}
	if got := snap.Commodities[0].Offered; got != 2+float64(burst-1)*0.1 {
		t.Fatalf("snapshot offered rate %g does not reflect the last mutation", got)
	}
}

// TestCloseDrainsInFlightSolve closes the server mid-solve (huge
// iteration budget, no early stop) and checks Close returns promptly
// because the loop drains at an iteration boundary.
func TestCloseDrainsInFlightSolve(t *testing.T) {
	s, err := New(toyProblem(t), Options{
		MaxIters:      50_000_000, // would run for minutes if not drained
		StationaryTol: -1,
		Debounce:      -1,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the solve get going
	done := make(chan struct{})
	go func() { _ = s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain the in-flight solve")
	}
}
