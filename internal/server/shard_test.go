package server

import (
	"math"
	"testing"
	"time"

	"repro/internal/randnet"
	"repro/internal/shard"
	"repro/internal/stream"
)

// shardedOptions are tight solver settings on instances measured to
// reach stationarity well inside the budget, so utility parity between
// shard counts is a property of the decomposition, not of where two
// unconverged trajectories happened to stop.
func shardedOptions(shards int) Options {
	return Options{
		MaxIters:      12000,
		StationaryTol: 1e-4,
		Shards:        shards,
		PlacementSalt: 7,
		Debounce:      2 * time.Millisecond,
		Logf:          func(string, ...any) {},
	}
}

// churnProblem is a random instance whose gradient trajectory settles
// quickly at the default step size (measured: ~9.3k iterations to the
// 1e-4 stationarity gap).
func churnProblem(t *testing.T) *stream.Problem {
	t.Helper()
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 24, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShardedServerMatchesSingle boots the same problem into a
// 4-shard and a single-engine server and compares the first published
// snapshot: the dual decomposition must land within 0.1% of the
// single-engine utility.
func TestShardedServerMatchesSingle(t *testing.T) {
	p := churnProblem(t)
	var got [2]*Snapshot
	for i, shards := range []int{1, 4} {
		s, err := New(p, shardedOptions(shards))
		if err != nil {
			t.Fatal(err)
		}
		snap, err := s.WaitForGeneration(1, waitBudget)
		if cerr := s.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Converged {
			t.Fatalf("shards=%d: first solve did not converge (%d iterations)", shards, snap.Iterations)
		}
		got[i] = snap
	}
	rel := math.Abs(got[1].Utility-got[0].Utility) / math.Abs(got[0].Utility)
	if rel > 1e-3 {
		t.Fatalf("sharded utility %.9f vs single-engine %.9f (rel %.2e > 0.1%%)",
			got[1].Utility, got[0].Utility, rel)
	}
	if len(got[1].Commodities) != len(got[0].Commodities) {
		t.Fatalf("commodity counts differ: %d vs %d", len(got[1].Commodities), len(got[0].Commodities))
	}
	for i, c := range got[1].Commodities {
		if c.Name != got[0].Commodities[i].Name {
			t.Fatalf("commodity order differs at %d: %q vs %q", i, c.Name, got[0].Commodities[i].Name)
		}
	}
}

// TestShardedFlashCrowdChurn drives a 4-shard server through a flash
// crowd: half the commodities depart, then re-arrive, with a rate spike
// in between. Ownership follows the consistent hash, so each departure
// and arrival lands on its owner shard (dirtying only that shard) while
// the others keep their engines; the final state — identical to the
// initial problem — must re-converge to the single-engine utility.
func TestShardedFlashCrowdChurn(t *testing.T) {
	p := churnProblem(t)
	const shards = 4

	// The churn must actually move load between shards: the four
	// commodities must not all hash to one shard.
	owners := map[int]bool{}
	for _, c := range p.Commodities {
		owners[shard.Place(c.Name, 7, shards)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("all commodities hash to one shard; churn would not exercise the exchange")
	}

	// Marshal the departing commodities' specs up front so they can
	// re-arrive byte-identically.
	leave := []string{p.Commodities[0].Name, p.Commodities[2].Name}
	specs := map[string][]byte{}
	for _, name := range leave {
		spec, err := p.MarshalCommodityJSON(name)
		if err != nil {
			t.Fatal(err)
		}
		specs[name] = spec
	}
	stay := p.Commodities[1].Name

	s, err := New(p, shardedOptions(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	baseline := snap.Utility

	next := func() {
		t.Helper()
		gen := s.Snapshot().Generation
		if _, err := s.WaitForGeneration(gen+1, waitBudget); err != nil {
			t.Fatal(err)
		}
	}

	// Flash crowd departs.
	for _, name := range leave {
		if _, err := s.RemoveCommodity(name); err != nil {
			t.Fatal(err)
		}
	}
	next()
	if n := len(s.Snapshot().Commodities); n != 2 {
		t.Fatalf("after departures: %d commodities, want 2", n)
	}

	// A survivor spikes while the crowd is away.
	var stayRate float64
	for _, c := range p.Commodities {
		if c.Name == stay {
			stayRate = c.MaxRate
		}
	}
	if _, err := s.SetMaxRate(stay, stayRate*2); err != nil {
		t.Fatal(err)
	}
	next()

	// The crowd returns and the spike subsides: the desired state is
	// exactly the initial problem again.
	for _, name := range leave {
		if _, err := s.AddCommodityJSON(specs[name]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SetMaxRate(stay, stayRate); err != nil {
		t.Fatal(err)
	}
	next()

	final := s.Snapshot()
	if n := len(final.Commodities); n != len(p.Commodities) {
		t.Fatalf("after churn: %d commodities, want %d", n, len(p.Commodities))
	}
	if !final.Converged {
		t.Fatalf("final solve did not converge (%d iterations)", final.Iterations)
	}
	rel := math.Abs(final.Utility-baseline) / math.Abs(baseline)
	if rel > 1e-3 {
		t.Fatalf("post-churn utility %.9f vs pre-churn %.9f (rel %.2e > 0.1%%)",
			final.Utility, baseline, rel)
	}
}

// TestShardedZeroCommodities: a sharded server whose last commodity
// departs publishes an empty feasible snapshot and recovers when one
// arrives again.
func TestShardedZeroCommodities(t *testing.T) {
	p := churnProblem(t)
	spec, err := p.MarshalCommodityJSON(p.Commodities[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, shardedOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Commodities {
		if _, err := s.RemoveCommodity(c.Name); err != nil {
			t.Fatal(err)
		}
	}
	gen := s.Snapshot().Generation
	snap, err := s.WaitForGeneration(gen+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Commodities) != 0 || !snap.Feasible || snap.Utility != 0 {
		t.Fatalf("empty snapshot = %d commodities, feasible=%v, utility=%v", len(snap.Commodities), snap.Feasible, snap.Utility)
	}
	if _, err := s.AddCommodityJSON(spec); err != nil {
		t.Fatal(err)
	}
	gen = snap.Generation
	snap, err = s.WaitForGeneration(gen+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Commodities) != 1 || snap.Utility <= 0 {
		t.Fatalf("recovered snapshot = %d commodities, utility=%v", len(snap.Commodities), snap.Utility)
	}
}
