// Package server is the streaming admission service: a long-running
// process that owns a mutable stream.Problem, accepts commodity
// arrivals/departures, offered-rate and utility updates, and node/link
// capacity changes (failure injection), and keeps the joint
// admission-control + routing solution converged by re-solving with the
// paper's gradient algorithm — warm-started from the previous routing
// whenever the topology allows it.
//
// Concurrency model: mutations edit a private Problem under a mutex and
// wake the solver goroutine; the solver clones the problem (so later
// mutations never alias an in-flight solve), converges, and publishes
// an immutable Snapshot through an atomic pointer. Reads are lock-free
// and always see a complete snapshot — never a torn one — even while
// the next solve runs. Bursts of mutations are coalesced by a debounce
// window so N rapid-fire updates cost one re-solve, not N.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/obs/trace"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/transform"
)

// Options configures the service. The zero value is usable: paper
// defaults for the solver, a 25 ms debounce window, no observability.
type Options struct {
	// Solver knobs (see core.Options): penalty coefficient ε, step
	// scale η, per-solve iteration budget, and the Theorem-2
	// stationarity tolerance that ends a solve early once the routing
	// is optimal within tolerance.
	Epsilon       float64 // default 0.2
	Eta           float64 // default 0.04
	MaxIters      int     // default 4000
	StationaryTol float64 // default 1e-3; <0 disables early stopping
	// Workers bounds the solver's per-commodity wave pool
	// (gradient.Config.Workers); 0 means GOMAXPROCS (divided across
	// shards when Shards > 1).
	Workers int

	// Shards, when > 1, partitions commodities across that many
	// independent solver shards coupled by a periodic price-exchange
	// round (dual decomposition; see internal/shard). Each shard owns
	// its own extended problem and engine and solves only its commodity
	// subset against a damped estimate of the other shards' usage; a
	// coordinator merges per-shard usage into global congestion state
	// and rederives the barrier shadow prices between rounds. Shards ≤ 1
	// (the default) keeps the single-engine path, bit-for-bit identical
	// to previous releases.
	Shards int
	// PlacementSalt seeds the consistent-hash commodity→shard placement.
	// Recorded in the journal so replay re-boots with the identical
	// partition.
	PlacementSalt uint64
	// PriceExchangeEvery is how many gradient iterations each shard runs
	// between price-exchange rounds. Default 25. Only used when
	// Shards > 1.
	PriceExchangeEvery int
	// PriceDamping is the γ of the damped external-usage update in
	// (0, 1]; default 0.5. Only used when Shards > 1.
	PriceDamping float64

	// Debounce is how long the solver waits after a mutation for more
	// mutations before re-solving; bursts within the window coalesce
	// into one solve. Default 25 ms; <0 disables (solve immediately).
	Debounce time.Duration
	// MaxDebounce caps the total coalescing wait under a continuous
	// mutation stream so the snapshot never goes stale indefinitely.
	// Default 20×Debounce.
	MaxDebounce time.Duration

	// Recorder streams solve latencies, warm/cold restart counts, the
	// generation counter and the admitted-utility gauge through
	// internal/obs. Nil disables (zero overhead).
	Recorder *obs.Recorder
	// Trace, when non-nil, receives sampled per-iteration solver state
	// (utility, cost, step size, per-phase timings) across solves; the
	// ring is served on GET /debug/trace. Requires a Recorder — one is
	// created on a private registry if none was given.
	Trace *trace.Ring
	// Spans, when non-nil, traces the decision lifecycle: a root
	// "decision" span per accepted mutation (adopting the client's W3C
	// traceparent at HTTP ingress), children covering the coalescing
	// wait and the solve phases, closed at snapshot publish. The ring is
	// served on GET /debug/spans; finished spans also flow through the
	// Recorder's event sink as "span" JSONL records. Like Trace, it
	// requires a Recorder — one is created on a private registry if none
	// was given. Nil disables (zero overhead on every path).
	Spans *span.Tracer
	// HistoryCap bounds the retained snapshot generations served on
	// GET /history. Default 64; <0 disables history.
	HistoryCap int
	// FlipCap bounds the recent admitted↔rejected transition ring
	// served on GET /v1/flips. Default 256; <0 disables.
	FlipCap int
	// Logf receives warm-start fallback diagnostics and solve errors.
	// Nil means log.Printf.
	Logf func(format string, args ...any)

	// Journal, when non-nil, is the crash-safe flight recorder the
	// server writes through: a restart checkpoint at boot, one record
	// per accepted mutation, one digest per published snapshot, and a
	// full problem checkpoint every CheckpointEvery mutations. The
	// server appends but does not own the writer; the caller closes it
	// after Close. Nil disables (zero overhead on the mutation path).
	Journal *journal.Writer
	// CheckpointEvery is the periodic-checkpoint cadence in accepted
	// mutations. Default 256; <0 disables periodic checkpoints (the
	// boot checkpoint is always written).
	CheckpointEvery int

	// SLO, when >0, is the decision-latency objective: a published
	// batch whose worst mutation waited longer triggers an anomaly
	// capture (reason "slo_breach").
	SLO time.Duration
	// CaptureDir, when non-empty, enables anomaly-triggered diagnostics
	// bundles: on an SLO breach, an unexpected warm-start fallback, or
	// a solver divergence, the server dumps the journal tail, span
	// ring, iteration trace, and heap/goroutine profiles into a
	// timestamped subdirectory, atomically (write to tmp, rename).
	CaptureDir string
	// CaptureMinInterval rate-limits captures. Default 30s.
	CaptureMinInterval time.Duration

	// SolveGate, when non-nil, makes solving externally clocked: after
	// each wake+debounce the solver loop blocks until it receives a
	// token, and each token admits exactly one solve. The replay
	// verifier uses this to force one solve per recorded digest
	// regardless of wall-clock batching. Production servers leave it
	// nil.
	SolveGate <-chan struct{}
}

func (o *Options) setDefaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.2
	}
	if o.Eta <= 0 {
		o.Eta = 0.04
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 4000
	}
	if o.StationaryTol == 0 {
		o.StationaryTol = 1e-3
	}
	if o.Shards > 1 {
		if o.PriceExchangeEvery <= 0 {
			o.PriceExchangeEvery = 25
		}
		if o.PriceDamping <= 0 || o.PriceDamping > 1 {
			o.PriceDamping = 0.5
		}
	}
	if o.Debounce == 0 {
		o.Debounce = 25 * time.Millisecond
	}
	if o.MaxDebounce <= 0 {
		o.MaxDebounce = 20 * o.Debounce
	}
	if o.HistoryCap == 0 {
		o.HistoryCap = 64
	}
	if o.FlipCap == 0 {
		o.FlipCap = 256
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	if o.CaptureMinInterval <= 0 {
		o.CaptureMinInterval = 30 * time.Second
	}
	if (o.Trace != nil || o.Spans != nil) && o.Recorder == nil {
		o.Recorder = obs.NewRecorder(obs.NewRegistry(), nil)
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// CommodityStatus is one commodity's slice of a snapshot.
type CommodityStatus struct {
	Name     string  `json:"name"`
	Offered  float64 `json:"offered"`  // λ_j at solve time
	Admitted float64 `json:"admitted"` // a_j
	Utility  float64 `json:"utility"`  // U_j(a_j)
}

// Snapshot is one converged, immutable view of the system. Readers get
// the whole struct from one atomic load, so every field is consistent
// with every other; nothing in it is ever mutated after publication.
type Snapshot struct {
	// Generation counts published snapshots, starting at 1.
	Generation int64 `json:"generation"`
	// Rev is the mutation revision the solve captured; Server.Rev()
	// beyond this means mutations are pending or in flight.
	Rev int64 `json:"rev"`
	// Warm reports whether the solve warm-started from the previous
	// snapshot's routing (false: cold start from the initial routing).
	Warm bool `json:"warm"`
	// Iterations the solve ran; Converged whether the stationarity
	// tolerance was met within the budget. Drained reports a solve cut
	// short by server shutdown: its iteration count is wall-clock
	// truncation, not solver behavior, so replay verification skips it.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	Drained    bool `json:"drained,omitempty"`
	// SolveSeconds is the wall-clock of this solve.
	SolveSeconds float64 `json:"solveSeconds"`
	// Utility is Σ_j U_j(a_j); Feasible whether f_i ≤ C_i everywhere.
	Utility  float64 `json:"utility"`
	Feasible bool    `json:"feasible"`
	// Commodities reports per-commodity admission; Usage per-resource
	// allocation on the original network.
	Commodities []CommodityStatus `json:"commodities"`
	Usage       []core.NodeUsage  `json:"usage"`
	// Explain is the per-commodity bottleneck attribution at this
	// operating point: binding resources with shadow prices and the
	// marginal-utility-vs-path-cost gap (served on GET /explain).
	Explain []core.CommodityExplain `json:"explain,omitempty"`

	// routing seeds the next warm start; problem is the clone this
	// snapshot was solved on. Both are private to the solver loop and
	// never mutated after the solve.
	routing *flow.Routing
	problem *stream.Problem
}

// Server is the admission service. Create with New, mutate through the
// Add/Remove/Set methods (or the HTTP API in http.go), read through
// Snapshot, and stop with Close.
type Server struct {
	opts Options

	mu          sync.Mutex
	problem     *stream.Problem // desired state; edited under mu
	rev         int64           // bumped per accepted mutation
	pending     []*decision     // traced mutations awaiting a snapshot; under mu
	journalMuts int             // mutations journaled since boot; drives periodic checkpoints
	shardDirty  []bool          // shards the pending batch invalidates; under mu; nil unless sharded

	// coord owns the solver shards and their price exchange when
	// opts.Shards > 1; solver-goroutine only (mutations touch shardDirty,
	// never the coordinator). Nil in single-engine mode.
	coord *shard.Coordinator

	snap atomic.Pointer[Snapshot]
	gen  atomic.Int64

	histMu   sync.Mutex
	hist     []*Snapshot // ring of recent generations, cap HistoryCap
	histNext int
	histFull bool

	flipMu   sync.Mutex
	flips    []AdmissionFlip // ring of recent transitions, cap FlipCap
	flipNext int
	flipFull bool

	// phases aggregates the recorder's per-phase hooks across one solve
	// for the iterate span; solver-goroutine only.
	phases *phaseTee

	// Anomaly-capture state: a busy flag so overlapping triggers don't
	// stack bundle writers, the last capture time for rate limiting,
	// and a sequence number naming bundle directories.
	captureBusy atomic.Bool
	captureLast atomic.Int64 // unix nanos
	captureSeq  atomic.Int64

	wake   chan struct{} // 1-buffered mutation signal
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// decision is one traced mutation in flight: accepted (rev bumped) but
// not yet incorporated into a published snapshot. The root span opened
// at ingress; the coalesce child closes when a solve picks the batch
// up; the root closes at publish with the decision latency.
type decision struct {
	rev      int64
	received time.Time
	root     *span.Active
	coalesce *span.Active
}

// maxPendingDecisions bounds the traced-mutation backlog: if the solver
// cannot keep up, the oldest decisions are closed early (attribute
// dropped=true) rather than growing without bound.
const maxPendingDecisions = 4096

// AdmissionFlip is one commodity crossing the admitted↔rejected
// boundary between consecutive generations — the events streamtop
// tails. A commodity counts as rejected when its admitted rate is
// negligible against its offered rate (below 1% or absolute 1e-9).
type AdmissionFlip struct {
	Generation int64     `json:"generation"`
	Commodity  string    `json:"commodity"`
	Admitted   bool      `json:"admitted"` // new state
	Rate       float64   `json:"rate"`     // admitted rate a_j at the flip
	Offered    float64   `json:"offered"`
	Trace      string    `json:"trace,omitempty"` // triggering mutation batch's trace ID
	At         time.Time `json:"at"`
}

// rejected is the admitted↔rejected boundary used for flip detection.
func rejected(admitted, offered float64) bool {
	return admitted < 1e-9 || admitted < 0.01*offered
}

// phaseTee implements obs.Tracer: it sums the per-phase wall-clock of
// every iteration (fed by the recorder's StartPhase/Done hooks) so the
// solve's iterate span can carry the aggregate split, then forwards the
// sample to the user's trace ring. Solver-goroutine only — engines call
// TraceIteration from Step, and solveOnce drains between solves on the
// same goroutine.
type phaseTee struct {
	next  obs.Tracer
	phase [obs.NumPhases]float64
}

func (t *phaseTee) TraceIteration(s obs.TraceSample) {
	for p, sec := range s.PhaseSeconds {
		t.phase[p] += sec
	}
	if t.next != nil {
		t.next.TraceIteration(s)
	}
}

// take returns and resets the accumulated per-phase seconds.
func (t *phaseTee) take() [obs.NumPhases]float64 {
	ph := t.phase
	t.phase = [obs.NumPhases]float64{}
	return ph
}

// New starts the solver loop over an initial problem (which may have
// zero commodities — the service then idles until the first arrival).
// The problem is cloned; the caller's copy stays untouched.
func New(p *stream.Problem, opts Options) (*Server, error) {
	opts.setDefaults()
	if p == nil {
		return nil, fmt.Errorf("server: nil problem")
	}
	if len(p.Commodities) > 0 {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		problem: p.Clone(),
		wake:    make(chan struct{}, 1),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if opts.Shards > 1 {
		// Sharded mode: commodities are partitioned across independent
		// solver shards; all shards start dirty so the first solve builds
		// everything. Shard engines do not feed the iteration tracer —
		// they step concurrently, and the phase tee is single-goroutine.
		s.coord = shard.New(shard.Config{
			Shards:        opts.Shards,
			Salt:          opts.PlacementSalt,
			Epsilon:       opts.Epsilon,
			Eta:           opts.Eta,
			MaxIters:      opts.MaxIters,
			StationaryTol: opts.StationaryTol,
			Workers:       opts.Workers,
			ExchangeEvery: opts.PriceExchangeEvery,
			Damping:       opts.PriceDamping,
			Recorder:      opts.Recorder,
			Logf:          opts.Logf,
		})
		s.shardDirty = make([]bool, opts.Shards)
		for i := range s.shardDirty {
			s.shardDirty[i] = true
		}
	}
	if opts.Trace != nil || opts.Spans != nil {
		// Attach before the solver loop starts so every iteration of
		// every generation can be sampled. The tee keeps the per-solve
		// phase aggregate for the iterate span and forwards to the
		// user's trace ring, if any.
		s.phases = &phaseTee{}
		if opts.Trace != nil {
			s.phases.next = opts.Trace
		}
		opts.Recorder.SetTracer(s.phases)
	}
	if len(p.Commodities) > 0 {
		s.rev = 1
		s.signal()
	}
	if opts.Journal != nil {
		// The restart checkpoint marks a replay-run boundary: a fresh
		// server starts here, generations restart at 1, and the recorded
		// solver parameters make the replay's arithmetic identical.
		pj, err := s.problem.MarshalJSON()
		if err != nil {
			cancel()
			return nil, fmt.Errorf("server: journal boot checkpoint: %w", err)
		}
		rec := journal.Record{
			Kind: journal.KindCheckpoint,
			Rev:  s.rev,
			Checkpoint: &journal.Checkpoint{
				Problem: pj,
				Restart: true,
				Solver: &journal.SolverParams{
					Epsilon:       opts.Epsilon,
					Eta:           opts.Eta,
					MaxIters:      opts.MaxIters,
					StationaryTol: opts.StationaryTol,
					Workers:       opts.Workers,
					// Shard topology: zero for single-engine servers
					// (omitted from the record, keeping old journals
					// byte-compatible), recorded otherwise so replay
					// re-boots with the identical partition.
					Shards:             opts.Shards,
					PlacementSalt:      opts.PlacementSalt,
					PriceExchangeEvery: opts.PriceExchangeEvery,
					PriceDamping:       opts.PriceDamping,
				},
			},
		}
		if err := opts.Journal.Append(rec); err != nil {
			cancel()
			return nil, err
		}
		if err := opts.Journal.Sync(); err != nil {
			cancel()
			return nil, err
		}
	}
	go s.loop()
	return s, nil
}

// Close stops the solver loop, draining an in-flight solve: the loop
// notices the cancellation at the next iteration boundary, publishes
// what it has, and exits. Close blocks until then.
func (s *Server) Close() error {
	s.cancel()
	<-s.done
	return nil
}

// Snapshot returns the latest converged snapshot (nil before the first
// solve completes). The returned value is immutable and lock-free.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Rev returns the current mutation revision; a snapshot with a smaller
// Rev means a re-solve is pending or in flight.
func (s *Server) Rev() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// ProblemJSON serializes the current desired problem (the mutable
// state, not the last-solved clone).
func (s *Server) ProblemJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.problem.MarshalJSON()
}

// signal wakes the solver; non-blocking because wake is 1-buffered and
// one pending token already means "state is dirty".
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// ingress carries a mutation's arrival context: the client's W3C trace
// context (zero when no traceparent was sent — a fresh trace starts)
// and when the request was received (zero means now). The HTTP layer
// fills it from the request; direct API callers pass the zero value.
type ingress struct {
	tc span.Context
	at time.Time
}

// mutate applies fn transactionally: it runs against a clone of the
// desired problem, and only a nil error swaps the clone in, bumps the
// revision, opens the decision's trace, journals the mutation, and
// wakes the solver. A failed mutation leaves no trace. Registering the
// decision under mu is what makes attribution exact: the solver also
// captures (problem, rev, pending) under mu, so a decision is always
// either in the batch of the solve that saw its revision, or still
// pending. payload is the journal payload (callers marshal it only
// when journaling is on, keeping the disabled path allocation-free);
// it is ignored when Journal is nil.
//
// touched names the commodities the mutation affects, so sharded
// servers rebuild only their owner shards; nil means network-wide
// (capacity/bandwidth changes shift every shard's barrier) and dirties
// all shards. Ignored in single-engine mode.
func (s *Server) mutate(ing ingress, kind, target string, payload []byte, touched []string, fn func(p *stream.Problem) error) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.problem.Clone()
	if err := fn(next); err != nil {
		return s.rev, err
	}
	s.problem = next
	s.rev++
	s.markDirtyLocked(touched)
	s.opts.Recorder.ServerMutation(kind, target)
	s.trackDecisionLocked(ing, kind, target)
	if s.opts.Journal != nil {
		s.journalMutationLocked(ing, kind, target, payload)
	}
	s.signal()
	return s.rev, nil
}

// markDirtyLocked records which shards the accepted mutation
// invalidates, for the next sharded solve's incremental Apply. Callers
// hold s.mu; a single-engine server has no dirty set to maintain.
func (s *Server) markDirtyLocked(touched []string) {
	if s.coord == nil {
		return
	}
	if touched == nil {
		for i := range s.shardDirty {
			s.shardDirty[i] = true
		}
		return
	}
	for _, name := range touched {
		s.shardDirty[shard.Place(name, s.opts.PlacementSalt, s.opts.Shards)] = true
	}
}

// journalMutationLocked appends one accepted mutation to the flight
// recorder and writes the periodic full checkpoint when due. Journal
// errors are logged, not propagated: the mutation was already applied,
// and losing observability must not fail admission. Callers hold s.mu,
// which orders records by revision.
func (s *Server) journalMutationLocked(ing ingress, op, target string, payload []byte) {
	trace := ing.tc.TraceHex()
	if n := len(s.pending); n > 0 && s.pending[n-1].rev == s.rev {
		trace = s.pending[n-1].root.Context().TraceHex()
	}
	err := s.opts.Journal.Append(journal.Record{
		Kind:     journal.KindMutation,
		Rev:      s.rev,
		Trace:    trace,
		Mutation: &journal.Mutation{Op: op, Target: target, Payload: payload},
	})
	if err != nil {
		s.opts.Logf("server: journal append failed at rev %d: %v", s.rev, err)
		return
	}
	s.journalMuts++
	if s.opts.CheckpointEvery > 0 && s.journalMuts%s.opts.CheckpointEvery == 0 {
		pj, err := s.problem.MarshalJSON()
		if err != nil {
			s.opts.Logf("server: journal checkpoint marshal failed at rev %d: %v", s.rev, err)
			return
		}
		err = s.opts.Journal.Append(journal.Record{
			Kind:       journal.KindCheckpoint,
			Rev:        s.rev,
			Checkpoint: &journal.Checkpoint{Problem: pj},
		})
		if err != nil {
			s.opts.Logf("server: journal checkpoint failed at rev %d: %v", s.rev, err)
		}
	}
}

// trackDecisionLocked opens the decision-lifecycle spans for one
// accepted mutation: the root "decision" span (under the client's
// traceparent when given), an "ingress" child backdated to the request
// arrival, and the open "coalesce" child the solver closes when it
// picks the mutation up. Callers hold s.mu; a nil tracer is free.
// Decisions are also tracked (with nil spans — every Active method
// no-ops on nil) when a latency SLO is set, so publish can measure
// batch latency without requiring span tracing.
func (s *Server) trackDecisionLocked(ing ingress, kind, target string) {
	tr := s.opts.Spans
	if tr == nil && s.opts.SLO <= 0 {
		return
	}
	at := ing.at
	if at.IsZero() {
		at = time.Now()
	}
	root := tr.StartAt("decision", ing.tc, at)
	root.SetAttr("kind", kind)
	root.SetAttr("target", target)
	root.SetAttrInt("rev", s.rev)
	in := tr.StartAt("ingress", root.Context(), at)
	in.SetAttr("kind", kind)
	in.End()
	co := tr.Start("coalesce", root.Context())
	s.pending = append(s.pending, &decision{rev: s.rev, received: at, root: root, coalesce: co})
	if len(s.pending) > maxPendingDecisions {
		d := s.pending[0]
		s.pending = append(s.pending[:0], s.pending[1:]...)
		d.coalesce.End()
		d.root.SetAttrBool("dropped", true)
		d.root.End()
	}
}

// AddCommodityJSON admits a new commodity described in the problem
// schema's JSON form (see internal/stream). The extended topology
// changes, so the next solve cold-starts.
func (s *Server) AddCommodityJSON(spec []byte) (int64, error) {
	return s.addCommodityJSON(ingress{}, spec)
}

func (s *Server) addCommodityJSON(ing ingress, spec []byte) (int64, error) {
	var meta struct {
		Name string `json:"name"`
	}
	_ = json.Unmarshal(spec, &meta) // best-effort label; full parse validates
	return s.mutate(ing, "add_commodity", meta.Name, spec, []string{meta.Name}, func(p *stream.Problem) error {
		_, err := p.AddCommodityFromJSON(spec)
		return err
	})
}

// RemoveCommodity ends a commodity's session.
func (s *Server) RemoveCommodity(name string) (int64, error) {
	return s.removeCommodity(ingress{}, name)
}

func (s *Server) removeCommodity(ing ingress, name string) (int64, error) {
	return s.mutate(ing, "remove_commodity", name, nil, []string{name}, func(p *stream.Problem) error {
		if !p.RemoveCommodity(name) {
			return fmt.Errorf("server: unknown commodity %q", name)
		}
		return nil
	})
}

// SetMaxRate updates a commodity's offered rate λ_j. Same topology, so
// the next solve warm-starts.
func (s *Server) SetMaxRate(name string, rate float64) (int64, error) {
	return s.setMaxRate(ingress{}, name, rate)
}

func (s *Server) setMaxRate(ing ingress, name string, rate float64) (int64, error) {
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.RatePayload{Rate: rate})
	}
	return s.mutate(ing, "set_rate", name, payload, []string{name}, func(p *stream.Problem) error {
		return p.SetMaxRate(name, rate)
	})
}

// SetMaxRates updates many commodities' offered rates in one mutation:
// one problem clone, one revision bump, one solver wake for the whole
// batch. This is the load-driver hot path — per-commodity SetMaxRate
// costs a full problem clone each, so an epoch's worth of rate updates
// goes through here. All-or-nothing: any unknown commodity or invalid
// rate rejects the entire batch. Names are applied in sorted order so
// the first error is deterministic.
func (s *Server) SetMaxRates(rates map[string]float64) (int64, error) {
	return s.setMaxRates(ingress{}, rates)
}

func (s *Server) setMaxRates(ing ingress, rates map[string]float64) (int64, error) {
	if len(rates) == 0 {
		return s.Rev(), fmt.Errorf("server: empty rate batch")
	}
	names := make([]string, 0, len(rates))
	for name := range rates {
		names = append(names, name)
	}
	sort.Strings(names)
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.RatesPayload{Rates: rates})
	}
	return s.mutate(ing, "set_rates", fmt.Sprintf("batch:%d", len(rates)), payload, names, func(p *stream.Problem) error {
		for _, name := range names {
			if err := p.SetMaxRate(name, rates[name]); err != nil {
				return err
			}
		}
		return nil
	})
}

// SetUtilityJSON replaces a commodity's utility function (its admission
// weight/priority) from the schema's utility JSON form.
func (s *Server) SetUtilityJSON(name string, spec []byte) (int64, error) {
	return s.setUtilityJSON(ingress{}, name, spec)
}

func (s *Server) setUtilityJSON(ing ingress, name string, spec []byte) (int64, error) {
	return s.mutate(ing, "set_utility", name, spec, []string{name}, func(p *stream.Problem) error {
		u, err := stream.ParseUtilityJSON(spec)
		if err != nil {
			return err
		}
		return p.SetUtility(name, u)
	})
}

// SetCapacity changes a processing node's capacity — the failure/
// recovery injection primitive (E8 semantics: cut to a fraction, later
// restore).
func (s *Server) SetCapacity(node string, capacity float64) (int64, error) {
	return s.setCapacity(ingress{}, node, capacity)
}

func (s *Server) setCapacity(ing ingress, node string, capacity float64) (int64, error) {
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.CapacityPayload{Capacity: capacity})
	}
	return s.mutate(ing, "set_capacity", node, payload, nil, func(p *stream.Problem) error {
		return p.Net.SetCapacity(node, capacity)
	})
}

// SetBandwidth changes a link's bandwidth.
func (s *Server) SetBandwidth(from, to string, bandwidth float64) (int64, error) {
	return s.setBandwidth(ingress{}, from, to, bandwidth)
}

func (s *Server) setBandwidth(ing ingress, from, to string, bandwidth float64) (int64, error) {
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.LinkPayload{From: from, To: to, Bandwidth: bandwidth})
	}
	return s.mutate(ing, "set_bandwidth", from+"->"+to, payload, nil, func(p *stream.Problem) error {
		return p.Net.SetBandwidth(from, to, bandwidth)
	})
}

// ScaleCapacity multiplies a node's capacity by factor — the E8
// failure-injection idiom (0.25 models a three-quarter outage, a later
// 4.0 restores it).
func (s *Server) ScaleCapacity(node string, factor float64) (int64, error) {
	return s.scaleCapacity(ingress{}, node, factor)
}

func (s *Server) scaleCapacity(ing ingress, node string, factor float64) (int64, error) {
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.ScalePayload{Factor: factor})
	}
	return s.mutate(ing, "scale_capacity", node, payload, nil, func(p *stream.Problem) error {
		id, ok := p.Net.NodeByName(node)
		if !ok {
			return fmt.Errorf("server: unknown node %q", node)
		}
		return p.Net.SetCapacity(node, p.Net.Capacity[id]*factor)
	})
}

// ScaleBandwidth multiplies a link's bandwidth by factor.
func (s *Server) ScaleBandwidth(from, to string, factor float64) (int64, error) {
	return s.scaleBandwidth(ingress{}, from, to, factor)
}

func (s *Server) scaleBandwidth(ing ingress, from, to string, factor float64) (int64, error) {
	var payload []byte
	if s.opts.Journal != nil {
		payload, _ = json.Marshal(journal.LinkPayload{From: from, To: to, Factor: factor})
	}
	return s.mutate(ing, "scale_bandwidth", from+"->"+to, payload, nil, func(p *stream.Problem) error {
		f, ok := p.Net.NodeByName(from)
		if !ok {
			return fmt.Errorf("server: unknown node %q", from)
		}
		t, ok := p.Net.NodeByName(to)
		if !ok {
			return fmt.Errorf("server: unknown node %q", to)
		}
		e := p.Net.G.EdgeBetween(f, t)
		if e < 0 {
			return fmt.Errorf("server: no link (%s,%s)", from, to)
		}
		return p.Net.SetBandwidth(from, to, p.Net.Bandwidth[e]*factor)
	})
}

// loop is the solver goroutine: wait for a mutation, coalesce the
// burst, solve, publish, repeat.
func (s *Server) loop() {
	defer close(s.done)
	defer s.abandonPending()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
		s.debounce()
		if s.opts.SolveGate != nil {
			select {
			case <-s.ctx.Done():
				return
			case <-s.opts.SolveGate:
			}
		}
		s.solveOnce()
	}
}

// Kick wakes the solver loop as if a mutation had arrived, without
// changing any state. Paired with SolveGate it lets an external clock
// (the replay verifier) drive solves one at a time: Kick, then send a
// gate token, then wait for the generation. Extra kicks are harmless —
// the wake channel is 1-buffered and solves happen only on gate tokens.
func (s *Server) Kick() { s.signal() }

// abandonPending closes the spans of decisions the server shut down
// before answering, so a drained close leaves no dangling spans.
func (s *Server) abandonPending() {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, d := range batch {
		d.coalesce.End()
		d.root.SetAttrBool("abandoned", true)
		d.root.End()
	}
}

// debounce waits until mutations stop arriving for Debounce (or
// MaxDebounce total), so a burst of rate updates triggers one re-solve.
func (s *Server) debounce() {
	if s.opts.Debounce <= 0 {
		return
	}
	quiet := time.NewTimer(s.opts.Debounce)
	defer quiet.Stop()
	most := time.NewTimer(s.opts.MaxDebounce)
	defer most.Stop()
	for {
		select {
		case <-s.wake:
			if !quiet.Stop() {
				<-quiet.C
			}
			quiet.Reset(s.opts.Debounce)
		case <-quiet.C:
			return
		case <-most.C:
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// solveOnce clones the desired problem, takes the pending traced
// mutations it will incorporate, re-solves (warm when the extended
// topology is unchanged), and publishes a new snapshot. The solve's
// phases — build, engine init (warm-or-cold), iterate, publish — are
// child spans of a "solve" span parented to the first coalesced
// mutation's decision trace.
func (s *Server) solveOnce() {
	if s.coord != nil {
		s.solveOnceSharded()
		return
	}
	s.mu.Lock()
	p := s.problem.Clone()
	rev := s.rev
	// Every pending decision has rev ≤ s.rev, so this solve will
	// incorporate all of them: take the whole batch.
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()

	tr := s.opts.Spans
	var solveSpan *span.Active
	if tr != nil {
		parent := span.Context{}
		if len(batch) > 0 {
			parent = batch[0].root.Context()
		}
		solveSpan = tr.Start("solve", parent)
		solveSpan.SetAttrInt("rev", rev)
		solveSpan.SetAttrInt("mutations_coalesced", int64(len(batch)))
		for _, d := range batch {
			d.coalesce.SetAttrInt("mutations_coalesced", int64(len(batch)))
			d.coalesce.End()
			if d != batch[0] {
				// Coalesced siblings record which trace carries the
				// shared solve subtree.
				d.root.SetAttr("solve_trace", solveSpan.Context().TraceHex())
			}
		}
	}

	start := time.Now()
	if len(p.Commodities) == 0 {
		// Nothing to admit: publish an empty snapshot so readers see
		// the departure take effect.
		s.publish(&Snapshot{
			Rev: rev, Warm: false, Converged: true, Feasible: true,
			SolveSeconds: time.Since(start).Seconds(),
			problem:      p,
		}, false, 0, batch, solveSpan)
		return
	}

	bs := tr.Start("build", solveSpan.Context())
	x, err := transform.Build(p, transform.Options{Epsilon: s.opts.Epsilon})
	bs.End()
	if err == nil {
		s.opts.Recorder.BuildFootprint(-1, x.BuildBytes(), len(p.Commodities))
	}
	if err != nil {
		// Mutations are validated before acceptance, so this is a bug,
		// not an operator error; keep the last good snapshot and log.
		s.opts.Logf("server: transform failed at rev %d: %v", rev, err)
		solveSpan.SetAttr("error", err.Error())
		solveSpan.End()
		for _, d := range batch {
			d.root.SetAttr("error", err.Error())
			d.root.End()
		}
		return
	}

	cfg := gradient.Config{Eta: s.opts.Eta, Workers: s.opts.Workers, Recorder: s.opts.Recorder}
	es := tr.Start("engine_init", solveSpan.Context())
	eng, warm := s.newEngine(x, cfg)
	startKind := "cold"
	if warm {
		startKind = "warm"
	}
	es.SetAttr("start", startKind)
	es.End()
	solveSpan.SetAttr("start", startKind)

	if s.phases != nil {
		s.phases.take() // discard any leftovers from an aborted solve
	}
	it := tr.Start("iterate", solveSpan.Context())
	iterations, converged, drained := 0, false, false
	var det gradient.DivergenceDetector
	const stationaryEvery = 25
	for i := 0; i < s.opts.MaxIters; i++ {
		if s.ctx.Err() != nil {
			drained = true
			break // drain: publish what we have and let loop exit
		}
		info := eng.Step()
		iterations++
		if err := det.Observe(info); err != nil {
			s.opts.Recorder.Divergence("server", info.Iteration, err.Error())
			s.opts.Logf("server: solve diverged at rev %d: %v", rev, err)
			s.maybeCapture("divergence", fmt.Sprintf("rev %d: %v", rev, err))
			break
		}
		if s.opts.StationaryTol > 0 && i%stationaryEvery == stationaryEvery-1 {
			rep := gradient.CheckStationarity(flow.Evaluate(eng.Routing()))
			if rep.MaxUsedGap <= s.opts.StationaryTol {
				converged = true
				break
			}
		}
	}
	it.SetAttrInt("iterations", int64(iterations))
	it.SetAttrBool("converged", converged)
	if it != nil && s.phases != nil {
		// Aggregate per-phase split from the recorder's phase hooks.
		for ph, sec := range s.phases.take() {
			it.SetAttrFloat("phase_"+obs.Phase(ph).String()+"_s", sec)
		}
	}
	it.End()

	u := eng.Solution()
	feasible, _ := u.Feasible()
	snap := &Snapshot{
		Rev:          rev,
		Warm:         warm,
		Iterations:   iterations,
		Converged:    converged,
		Drained:      drained,
		SolveSeconds: time.Since(start).Seconds(),
		Utility:      u.Utility(),
		Feasible:     feasible,
		Usage:        core.UsageReport(p, x, u),
		Explain:      core.Explain(p, x, u),
		routing:      eng.Routing(),
		problem:      p,
	}
	for j := range x.Commodities {
		c := &x.Commodities[j]
		a := u.AdmittedRate(j)
		snap.Commodities = append(snap.Commodities, CommodityStatus{
			Name:     c.Name,
			Offered:  c.MaxRate,
			Admitted: a,
			Utility:  c.Utility.Value(a),
		})
	}
	s.publish(snap, warm, iterations, batch, solveSpan)
}

// solveOnceSharded is solveOnce for a sharded server: instead of one
// engine over the full problem, the coordinator rebuilds the shards the
// batch dirtied (warm where topology allows) and runs price-exchange
// rounds until the decomposition converges. The snapshot is stitched
// from the per-shard results — one immutable global view under the
// same generation counter, history ring, flip detection, and journal
// digests as the single-engine path.
func (s *Server) solveOnceSharded() {
	s.mu.Lock()
	p := s.problem.Clone()
	rev := s.rev
	batch := s.pending
	s.pending = nil
	dirty := s.shardDirty
	s.shardDirty = make([]bool, s.opts.Shards)
	s.mu.Unlock()

	tr := s.opts.Spans
	var solveSpan *span.Active
	if tr != nil {
		parent := span.Context{}
		if len(batch) > 0 {
			parent = batch[0].root.Context()
		}
		solveSpan = tr.Start("solve", parent)
		solveSpan.SetAttrInt("rev", rev)
		solveSpan.SetAttrInt("mutations_coalesced", int64(len(batch)))
		solveSpan.SetAttrInt("shards", int64(s.opts.Shards))
		for _, d := range batch {
			d.coalesce.SetAttrInt("mutations_coalesced", int64(len(batch)))
			d.coalesce.End()
			if d != batch[0] {
				d.root.SetAttr("solve_trace", solveSpan.Context().TraceHex())
			}
		}
	}

	start := time.Now()
	if len(p.Commodities) == 0 {
		s.coord.Clear(p)
		s.publish(&Snapshot{
			Rev: rev, Warm: false, Converged: true, Feasible: true,
			SolveSeconds: time.Since(start).Seconds(),
			problem:      p,
		}, false, 0, batch, solveSpan)
		return
	}

	bs := tr.Start("build", solveSpan.Context())
	warm, err := s.coord.Apply(p, dirty)
	bs.End()
	if err != nil {
		// Mutations are validated before acceptance, so this is a bug,
		// not an operator error; keep the last good snapshot and log.
		s.opts.Logf("server: sharded build failed at rev %d: %v", rev, err)
		solveSpan.SetAttr("error", err.Error())
		solveSpan.End()
		for _, d := range batch {
			d.root.SetAttr("error", err.Error())
			d.root.End()
		}
		return
	}
	startKind := "cold"
	if warm {
		startKind = "warm"
	}
	solveSpan.SetAttr("start", startKind)

	it := tr.Start("iterate", solveSpan.Context())
	res := s.coord.Solve(s.ctx)
	it.SetAttrInt("iterations", int64(res.Iterations))
	it.SetAttrInt("rounds", int64(res.Rounds))
	it.SetAttrBool("converged", res.Converged)
	it.End()
	if res.Err != nil {
		s.opts.Recorder.Divergence("server", res.Iterations, res.Err.Error())
		s.opts.Logf("server: sharded solve diverged at rev %d: %v", rev, res.Err)
		s.maybeCapture("divergence", fmt.Sprintf("rev %d: %v", rev, res.Err))
	}

	snap := &Snapshot{
		Rev:          rev,
		Warm:         warm,
		Iterations:   res.Iterations,
		Converged:    res.Converged,
		Drained:      res.Drained,
		SolveSeconds: time.Since(start).Seconds(),
		Utility:      res.Utility,
		Feasible:     res.Feasible,
		Usage:        s.coord.UsageReport(),
		Explain:      s.coord.Explain(),
		problem:      p,
	}
	for gi, cs := range s.coord.Commodities() {
		snap.Commodities = append(snap.Commodities, CommodityStatus{
			Name:     cs.Name,
			Offered:  cs.Offered,
			Admitted: cs.Admitted,
			Utility:  p.Commodities[gi].Utility.Value(cs.Admitted),
		})
	}
	s.publish(snap, warm, res.Iterations, batch, solveSpan)
}

// newEngine warm-starts from the previous snapshot's routing when it
// rebinds onto x, and cold-starts otherwise — expected whenever the
// topology changed (errors.Is flow.ErrTopologyChanged), logged loudly
// when it didn't.
func (s *Server) newEngine(x *transform.Extended, cfg gradient.Config) (*gradient.Engine, bool) {
	prev := s.snap.Load()
	if prev != nil && prev.routing != nil {
		eng, err := gradient.NewFrom(x, prev.routing, cfg)
		if err == nil {
			return eng, true
		}
		if errors.Is(err, flow.ErrTopologyChanged) || errors.Is(err, flow.ErrWorkspaceShape) {
			// Both mean the previous routing's shape no longer fits the
			// rebuilt problem (membership or workspace rows changed) —
			// recoverable by starting cold.
			s.opts.Logf("server: cold start (expected): %v", err)
		} else {
			s.opts.Logf("server: warm start failed unexpectedly, falling back to cold: %v", err)
			s.maybeCapture("cold_fallback", err.Error())
		}
	}
	return gradient.New(x, cfg), false
}

// publish assigns the next generation, swaps the snapshot in, appends
// it to the history ring, emits the generation's observability events
// (solve summary, per-commodity attribution, trace fill level,
// admission flips), and closes the decision lifecycle: every mutation
// in the incorporated batch observes streamopt_decision_latency_seconds
// and ends its root span stamped with the generation that answered it.
func (s *Server) publish(snap *Snapshot, warm bool, iterations int, batch []*decision, solveSpan *span.Active) {
	ps := s.opts.Spans.Start("publish", solveSpan.Context())
	prev := s.snap.Load()
	snap.Generation = s.gen.Add(1)
	s.snap.Store(snap)
	s.recordHistory(snap)
	rec := s.opts.Recorder
	rec.ServerSolve(snap.Generation, warm, snap.SolveSeconds, snap.Utility, iterations)
	for _, ce := range snap.Explain {
		bottleneck, price := "", 0.0
		if len(ce.Binding) > 0 {
			bottleneck = ce.Binding[0].Name
			price = ce.Binding[0].Price
		}
		rec.Attribution(snap.Generation, ce.Name, ce.Admitted, ce.Gap, bottleneck, price)
	}
	if t := s.opts.Trace; t != nil {
		rec.ServerTrace(snap.Generation, t.Len(), t.Cap(), t.Stride())
	}

	trigger := ""
	if len(batch) > 0 {
		trigger = batch[0].root.Context().TraceHex()
	}
	var flips []AdmissionFlip
	if prev != nil && (s.opts.FlipCap >= 0 || s.opts.Journal != nil) {
		flips = DiffFlips(prev, snap)
	}
	s.recordFlips(flips, trigger)
	if s.opts.Journal != nil {
		err := s.opts.Journal.Append(journal.Record{
			Kind:   journal.KindDigest,
			Rev:    snap.Rev,
			Trace:  trigger,
			Digest: snap.JournalDigest(flips),
		})
		if err != nil {
			s.opts.Logf("server: journal digest failed at generation %d: %v", snap.Generation, err)
		}
	}

	maxLat := 0.0
	for _, d := range batch {
		lat := time.Since(d.received).Seconds()
		if lat > maxLat {
			maxLat = lat
		}
		rec.DecisionLatency(lat)
		d.root.SetAttrInt("generation", snap.Generation)
		d.root.SetAttrFloat("decision_latency_s", lat)
		d.root.End()
	}
	if s.opts.SLO > 0 && maxLat > s.opts.SLO.Seconds() {
		s.maybeCapture("slo_breach", fmt.Sprintf(
			"decision latency %.3fs over SLO %v at generation %d", maxLat, s.opts.SLO, snap.Generation))
	}
	ps.End()
	solveSpan.SetAttrInt("generation", snap.Generation)
	solveSpan.End()
}

// DiffFlips returns the admitted↔rejected transitions between two
// consecutive snapshots, in next's commodity order. Trace and At are
// left zero; the live server stamps them when recording, and the
// replay verifier compares the (commodity, direction) sequence.
func DiffFlips(prev, next *Snapshot) []AdmissionFlip {
	if prev == nil {
		return nil
	}
	was := make(map[string]bool, len(prev.Commodities))
	for _, c := range prev.Commodities {
		was[c.Name] = !rejected(c.Admitted, c.Offered)
	}
	var flips []AdmissionFlip
	for _, c := range next.Commodities {
		admitted := !rejected(c.Admitted, c.Offered)
		before, known := was[c.Name]
		if !known || before == admitted {
			continue
		}
		flips = append(flips, AdmissionFlip{
			Generation: next.Generation,
			Commodity:  c.Name,
			Admitted:   admitted,
			Rate:       c.Admitted,
			Offered:    c.Offered,
		})
	}
	return flips
}

// JournalDigest summarizes the snapshot as a flight-recorder digest:
// the scalar trajectory (generation, utility, convergence) plus the
// canonical admitted-set hash and the flips this generation caused.
func (snap *Snapshot) JournalDigest(flips []AdmissionFlip) *journal.Digest {
	entries := make([]journal.AdmittedEntry, len(snap.Commodities))
	for i, c := range snap.Commodities {
		entries[i] = journal.AdmittedEntry{Name: c.Name, Rate: c.Admitted}
	}
	d := &journal.Digest{
		Generation:   snap.Generation,
		Warm:         snap.Warm,
		Iterations:   snap.Iterations,
		Converged:    snap.Converged,
		Drained:      snap.Drained,
		Feasible:     snap.Feasible,
		Utility:      snap.Utility,
		Commodities:  len(snap.Commodities),
		AdmittedHash: journal.AdmittedHash(entries),
	}
	for _, f := range flips {
		d.Flips = append(d.Flips, journal.Flip{Commodity: f.Commodity, Admitted: f.Admitted})
	}
	return d
}

// recordFlips records pre-computed transitions — to the bounded ring
// served on GET /v1/flips, the streamopt_admission_flips_total counter,
// and the event sink — attributed to the triggering batch's trace ID.
func (s *Server) recordFlips(flips []AdmissionFlip, trigger string) {
	if s.opts.FlipCap < 0 || len(flips) == 0 {
		return
	}
	now := time.Now()
	for _, f := range flips {
		f.Trace = trigger
		f.At = now
		s.appendFlip(f)
		s.opts.Recorder.AdmissionFlip(f.Generation, f.Commodity, f.Admitted, f.Rate, trigger)
	}
}

// appendFlip adds one transition to the bounded flip ring.
func (s *Server) appendFlip(f AdmissionFlip) {
	s.flipMu.Lock()
	defer s.flipMu.Unlock()
	if s.flips == nil {
		s.flips = make([]AdmissionFlip, s.opts.FlipCap)
	}
	s.flips[s.flipNext] = f
	s.flipNext++
	if s.flipNext == len(s.flips) {
		s.flipNext = 0
		s.flipFull = true
	}
}

// Flips returns the retained admission transitions, oldest first.
func (s *Server) Flips() []AdmissionFlip {
	s.flipMu.Lock()
	defer s.flipMu.Unlock()
	if s.flips == nil {
		return nil
	}
	var out []AdmissionFlip
	if s.flipFull {
		out = append(out, s.flips[s.flipNext:]...)
	}
	out = append(out, s.flips[:s.flipNext]...)
	return out
}

// recordHistory appends the snapshot to the bounded generation ring.
func (s *Server) recordHistory(snap *Snapshot) {
	if s.opts.HistoryCap < 0 {
		return
	}
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.hist == nil {
		s.hist = make([]*Snapshot, s.opts.HistoryCap)
	}
	s.hist[s.histNext] = snap
	s.histNext++
	if s.histNext == len(s.hist) {
		s.histNext = 0
		s.histFull = true
	}
}

// History returns the retained snapshot generations, oldest first.
func (s *Server) History() []*Snapshot {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.hist == nil {
		return nil
	}
	var out []*Snapshot
	if s.histFull {
		out = append(out, s.hist[s.histNext:]...)
	}
	out = append(out, s.hist[:s.histNext]...)
	return out
}

// WaitForGeneration blocks until a snapshot with Generation ≥ gen is
// published, or the timeout expires. Mutating and then waiting for
// (previous generation)+1 is the read-your-write recipe tests and
// scripted demos use; a coalesced burst of mutations still lands in
// that one next generation.
//
// Semantics under concurrent publishes: generations are assigned and
// stored by the single solver goroutine, so the published generation is
// monotone and a successful return carries the first snapshot this
// waiter observed at or past gen (possibly further along if publishes
// raced the wake-up — never behind). On timeout or server close the
// error is non-nil and the latest published snapshot (nil if none yet)
// is returned alongside it, so callers can degrade to stale-but-safe
// reads instead of losing the state they already had.
func (s *Server) WaitForGeneration(gen int64, timeout time.Duration) (*Snapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		snap := s.snap.Load()
		if snap != nil && snap.Generation >= gen {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return snap, fmt.Errorf("server: no snapshot generation ≥ %d within %v", gen, timeout)
		}
		select {
		case <-s.ctx.Done():
			return s.snap.Load(), fmt.Errorf("server: closed while waiting for generation %d", gen)
		case <-time.After(time.Millisecond):
		}
	}
}
