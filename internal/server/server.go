// Package server is the streaming admission service: a long-running
// process that owns a mutable stream.Problem, accepts commodity
// arrivals/departures, offered-rate and utility updates, and node/link
// capacity changes (failure injection), and keeps the joint
// admission-control + routing solution converged by re-solving with the
// paper's gradient algorithm — warm-started from the previous routing
// whenever the topology allows it.
//
// Concurrency model: mutations edit a private Problem under a mutex and
// wake the solver goroutine; the solver clones the problem (so later
// mutations never alias an in-flight solve), converges, and publishes
// an immutable Snapshot through an atomic pointer. Reads are lock-free
// and always see a complete snapshot — never a torn one — even while
// the next solve runs. Bursts of mutations are coalesced by a debounce
// window so N rapid-fire updates cost one re-solve, not N.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/stream"
	"repro/internal/transform"
)

// Options configures the service. The zero value is usable: paper
// defaults for the solver, a 25 ms debounce window, no observability.
type Options struct {
	// Solver knobs (see core.Options): penalty coefficient ε, step
	// scale η, per-solve iteration budget, and the Theorem-2
	// stationarity tolerance that ends a solve early once the routing
	// is optimal within tolerance.
	Epsilon       float64 // default 0.2
	Eta           float64 // default 0.04
	MaxIters      int     // default 4000
	StationaryTol float64 // default 1e-3; <0 disables early stopping
	// Workers bounds the solver's per-commodity wave pool
	// (gradient.Config.Workers); 0 means GOMAXPROCS.
	Workers int

	// Debounce is how long the solver waits after a mutation for more
	// mutations before re-solving; bursts within the window coalesce
	// into one solve. Default 25 ms; <0 disables (solve immediately).
	Debounce time.Duration
	// MaxDebounce caps the total coalescing wait under a continuous
	// mutation stream so the snapshot never goes stale indefinitely.
	// Default 20×Debounce.
	MaxDebounce time.Duration

	// Recorder streams solve latencies, warm/cold restart counts, the
	// generation counter and the admitted-utility gauge through
	// internal/obs. Nil disables (zero overhead).
	Recorder *obs.Recorder
	// Trace, when non-nil, receives sampled per-iteration solver state
	// (utility, cost, step size, per-phase timings) across solves; the
	// ring is served on GET /debug/trace. Requires a Recorder — one is
	// created on a private registry if none was given.
	Trace *trace.Ring
	// HistoryCap bounds the retained snapshot generations served on
	// GET /history. Default 64; <0 disables history.
	HistoryCap int
	// Logf receives warm-start fallback diagnostics and solve errors.
	// Nil means log.Printf.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.2
	}
	if o.Eta <= 0 {
		o.Eta = 0.04
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 4000
	}
	if o.StationaryTol == 0 {
		o.StationaryTol = 1e-3
	}
	if o.Debounce == 0 {
		o.Debounce = 25 * time.Millisecond
	}
	if o.MaxDebounce <= 0 {
		o.MaxDebounce = 20 * o.Debounce
	}
	if o.HistoryCap == 0 {
		o.HistoryCap = 64
	}
	if o.Trace != nil && o.Recorder == nil {
		o.Recorder = obs.NewRecorder(obs.NewRegistry(), nil)
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
}

// CommodityStatus is one commodity's slice of a snapshot.
type CommodityStatus struct {
	Name     string  `json:"name"`
	Offered  float64 `json:"offered"`  // λ_j at solve time
	Admitted float64 `json:"admitted"` // a_j
	Utility  float64 `json:"utility"`  // U_j(a_j)
}

// Snapshot is one converged, immutable view of the system. Readers get
// the whole struct from one atomic load, so every field is consistent
// with every other; nothing in it is ever mutated after publication.
type Snapshot struct {
	// Generation counts published snapshots, starting at 1.
	Generation int64 `json:"generation"`
	// Rev is the mutation revision the solve captured; Server.Rev()
	// beyond this means mutations are pending or in flight.
	Rev int64 `json:"rev"`
	// Warm reports whether the solve warm-started from the previous
	// snapshot's routing (false: cold start from the initial routing).
	Warm bool `json:"warm"`
	// Iterations the solve ran; Converged whether the stationarity
	// tolerance was met within the budget.
	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`
	// SolveSeconds is the wall-clock of this solve.
	SolveSeconds float64 `json:"solveSeconds"`
	// Utility is Σ_j U_j(a_j); Feasible whether f_i ≤ C_i everywhere.
	Utility  float64 `json:"utility"`
	Feasible bool    `json:"feasible"`
	// Commodities reports per-commodity admission; Usage per-resource
	// allocation on the original network.
	Commodities []CommodityStatus `json:"commodities"`
	Usage       []core.NodeUsage  `json:"usage"`
	// Explain is the per-commodity bottleneck attribution at this
	// operating point: binding resources with shadow prices and the
	// marginal-utility-vs-path-cost gap (served on GET /explain).
	Explain []core.CommodityExplain `json:"explain,omitempty"`

	// routing seeds the next warm start; problem is the clone this
	// snapshot was solved on. Both are private to the solver loop and
	// never mutated after the solve.
	routing *flow.Routing
	problem *stream.Problem
}

// Server is the admission service. Create with New, mutate through the
// Add/Remove/Set methods (or the HTTP API in http.go), read through
// Snapshot, and stop with Close.
type Server struct {
	opts Options

	mu      sync.Mutex
	problem *stream.Problem // desired state; edited under mu
	rev     int64           // bumped per accepted mutation

	snap atomic.Pointer[Snapshot]
	gen  atomic.Int64

	histMu   sync.Mutex
	hist     []*Snapshot // ring of recent generations, cap HistoryCap
	histNext int
	histFull bool

	wake   chan struct{} // 1-buffered mutation signal
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// New starts the solver loop over an initial problem (which may have
// zero commodities — the service then idles until the first arrival).
// The problem is cloned; the caller's copy stays untouched.
func New(p *stream.Problem, opts Options) (*Server, error) {
	opts.setDefaults()
	if p == nil {
		return nil, fmt.Errorf("server: nil problem")
	}
	if len(p.Commodities) > 0 {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.Trace != nil {
		// Attach before the solver loop starts so every iteration of
		// every generation can be sampled.
		opts.Recorder.SetTracer(opts.Trace)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		problem: p.Clone(),
		wake:    make(chan struct{}, 1),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
	if len(p.Commodities) > 0 {
		s.rev = 1
		s.signal()
	}
	go s.loop()
	return s, nil
}

// Close stops the solver loop, draining an in-flight solve: the loop
// notices the cancellation at the next iteration boundary, publishes
// what it has, and exits. Close blocks until then.
func (s *Server) Close() error {
	s.cancel()
	<-s.done
	return nil
}

// Snapshot returns the latest converged snapshot (nil before the first
// solve completes). The returned value is immutable and lock-free.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Rev returns the current mutation revision; a snapshot with a smaller
// Rev means a re-solve is pending or in flight.
func (s *Server) Rev() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

// ProblemJSON serializes the current desired problem (the mutable
// state, not the last-solved clone).
func (s *Server) ProblemJSON() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.problem.MarshalJSON()
}

// signal wakes the solver; non-blocking because wake is 1-buffered and
// one pending token already means "state is dirty".
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// mutate applies fn transactionally: it runs against a clone of the
// desired problem, and only a nil error swaps the clone in, bumps the
// revision, and wakes the solver. A failed mutation leaves no trace.
func (s *Server) mutate(kind, target string, fn func(p *stream.Problem) error) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.problem.Clone()
	if err := fn(next); err != nil {
		return s.rev, err
	}
	s.problem = next
	s.rev++
	s.opts.Recorder.ServerMutation(kind, target)
	s.signal()
	return s.rev, nil
}

// AddCommodityJSON admits a new commodity described in the problem
// schema's JSON form (see internal/stream). The extended topology
// changes, so the next solve cold-starts.
func (s *Server) AddCommodityJSON(spec []byte) (int64, error) {
	var meta struct {
		Name string `json:"name"`
	}
	_ = json.Unmarshal(spec, &meta) // best-effort label; full parse validates
	return s.mutate("add_commodity", meta.Name, func(p *stream.Problem) error {
		_, err := p.AddCommodityFromJSON(spec)
		return err
	})
}

// RemoveCommodity ends a commodity's session.
func (s *Server) RemoveCommodity(name string) (int64, error) {
	return s.mutate("remove_commodity", name, func(p *stream.Problem) error {
		if !p.RemoveCommodity(name) {
			return fmt.Errorf("server: unknown commodity %q", name)
		}
		return nil
	})
}

// SetMaxRate updates a commodity's offered rate λ_j. Same topology, so
// the next solve warm-starts.
func (s *Server) SetMaxRate(name string, rate float64) (int64, error) {
	return s.mutate("set_rate", name, func(p *stream.Problem) error {
		return p.SetMaxRate(name, rate)
	})
}

// SetUtilityJSON replaces a commodity's utility function (its admission
// weight/priority) from the schema's utility JSON form.
func (s *Server) SetUtilityJSON(name string, spec []byte) (int64, error) {
	return s.mutate("set_utility", name, func(p *stream.Problem) error {
		u, err := stream.ParseUtilityJSON(spec)
		if err != nil {
			return err
		}
		return p.SetUtility(name, u)
	})
}

// SetCapacity changes a processing node's capacity — the failure/
// recovery injection primitive (E8 semantics: cut to a fraction, later
// restore).
func (s *Server) SetCapacity(node string, capacity float64) (int64, error) {
	return s.mutate("set_capacity", node, func(p *stream.Problem) error {
		return p.Net.SetCapacity(node, capacity)
	})
}

// SetBandwidth changes a link's bandwidth.
func (s *Server) SetBandwidth(from, to string, bandwidth float64) (int64, error) {
	return s.mutate("set_bandwidth", from+"->"+to, func(p *stream.Problem) error {
		return p.Net.SetBandwidth(from, to, bandwidth)
	})
}

// ScaleCapacity multiplies a node's capacity by factor — the E8
// failure-injection idiom (0.25 models a three-quarter outage, a later
// 4.0 restores it).
func (s *Server) ScaleCapacity(node string, factor float64) (int64, error) {
	return s.mutate("scale_capacity", node, func(p *stream.Problem) error {
		id, ok := p.Net.NodeByName(node)
		if !ok {
			return fmt.Errorf("server: unknown node %q", node)
		}
		return p.Net.SetCapacity(node, p.Net.Capacity[id]*factor)
	})
}

// ScaleBandwidth multiplies a link's bandwidth by factor.
func (s *Server) ScaleBandwidth(from, to string, factor float64) (int64, error) {
	return s.mutate("scale_bandwidth", from+"->"+to, func(p *stream.Problem) error {
		f, ok := p.Net.NodeByName(from)
		if !ok {
			return fmt.Errorf("server: unknown node %q", from)
		}
		t, ok := p.Net.NodeByName(to)
		if !ok {
			return fmt.Errorf("server: unknown node %q", to)
		}
		e := p.Net.G.EdgeBetween(f, t)
		if e < 0 {
			return fmt.Errorf("server: no link (%s,%s)", from, to)
		}
		return p.Net.SetBandwidth(from, to, p.Net.Bandwidth[e]*factor)
	})
}

// loop is the solver goroutine: wait for a mutation, coalesce the
// burst, solve, publish, repeat.
func (s *Server) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
		s.debounce()
		s.solveOnce()
	}
}

// debounce waits until mutations stop arriving for Debounce (or
// MaxDebounce total), so a burst of rate updates triggers one re-solve.
func (s *Server) debounce() {
	if s.opts.Debounce <= 0 {
		return
	}
	quiet := time.NewTimer(s.opts.Debounce)
	defer quiet.Stop()
	most := time.NewTimer(s.opts.MaxDebounce)
	defer most.Stop()
	for {
		select {
		case <-s.wake:
			if !quiet.Stop() {
				<-quiet.C
			}
			quiet.Reset(s.opts.Debounce)
		case <-quiet.C:
			return
		case <-most.C:
			return
		case <-s.ctx.Done():
			return
		}
	}
}

// solveOnce clones the desired problem, re-solves (warm when the
// extended topology is unchanged), and publishes a new snapshot.
func (s *Server) solveOnce() {
	s.mu.Lock()
	p := s.problem.Clone()
	rev := s.rev
	s.mu.Unlock()

	start := time.Now()
	if len(p.Commodities) == 0 {
		// Nothing to admit: publish an empty snapshot so readers see
		// the departure take effect.
		s.publish(&Snapshot{
			Rev: rev, Warm: false, Converged: true, Feasible: true,
			SolveSeconds: time.Since(start).Seconds(),
			problem:      p,
		}, false, 0)
		return
	}

	x, err := transform.Build(p, transform.Options{Epsilon: s.opts.Epsilon})
	if err != nil {
		// Mutations are validated before acceptance, so this is a bug,
		// not an operator error; keep the last good snapshot and log.
		s.opts.Logf("server: transform failed at rev %d: %v", rev, err)
		return
	}

	cfg := gradient.Config{Eta: s.opts.Eta, Workers: s.opts.Workers, Recorder: s.opts.Recorder}
	eng, warm := s.newEngine(x, cfg)

	iterations, converged := 0, false
	var det gradient.DivergenceDetector
	const stationaryEvery = 25
	for i := 0; i < s.opts.MaxIters; i++ {
		if s.ctx.Err() != nil {
			break // drain: publish what we have and let loop exit
		}
		info := eng.Step()
		iterations++
		if err := det.Observe(info); err != nil {
			s.opts.Recorder.Divergence("server", info.Iteration, err.Error())
			s.opts.Logf("server: solve diverged at rev %d: %v", rev, err)
			break
		}
		if s.opts.StationaryTol > 0 && i%stationaryEvery == stationaryEvery-1 {
			rep := gradient.CheckStationarity(flow.Evaluate(eng.Routing()))
			if rep.MaxUsedGap <= s.opts.StationaryTol {
				converged = true
				break
			}
		}
	}

	u := eng.Solution()
	feasible, _ := u.Feasible()
	snap := &Snapshot{
		Rev:          rev,
		Warm:         warm,
		Iterations:   iterations,
		Converged:    converged,
		SolveSeconds: time.Since(start).Seconds(),
		Utility:      u.Utility(),
		Feasible:     feasible,
		Usage:        core.UsageReport(p, x, u),
		Explain:      core.Explain(p, x, u),
		routing:      eng.Routing(),
		problem:      p,
	}
	for j := range x.Commodities {
		c := &x.Commodities[j]
		a := u.AdmittedRate(j)
		snap.Commodities = append(snap.Commodities, CommodityStatus{
			Name:     c.Name,
			Offered:  c.MaxRate,
			Admitted: a,
			Utility:  c.Utility.Value(a),
		})
	}
	s.publish(snap, warm, iterations)
}

// newEngine warm-starts from the previous snapshot's routing when it
// rebinds onto x, and cold-starts otherwise — expected whenever the
// topology changed (errors.Is flow.ErrTopologyChanged), logged loudly
// when it didn't.
func (s *Server) newEngine(x *transform.Extended, cfg gradient.Config) (*gradient.Engine, bool) {
	prev := s.snap.Load()
	if prev != nil && prev.routing != nil {
		eng, err := gradient.NewFrom(x, prev.routing, cfg)
		if err == nil {
			return eng, true
		}
		if errors.Is(err, flow.ErrTopologyChanged) {
			s.opts.Logf("server: cold start (expected): %v", err)
		} else {
			s.opts.Logf("server: warm start failed unexpectedly, falling back to cold: %v", err)
		}
	}
	return gradient.New(x, cfg), false
}

// publish assigns the next generation, swaps the snapshot in, appends
// it to the history ring, and emits the generation's observability
// events (solve summary, per-commodity attribution, trace fill level).
func (s *Server) publish(snap *Snapshot, warm bool, iterations int) {
	snap.Generation = s.gen.Add(1)
	s.snap.Store(snap)
	s.recordHistory(snap)
	rec := s.opts.Recorder
	rec.ServerSolve(snap.Generation, warm, snap.SolveSeconds, snap.Utility, iterations)
	for _, ce := range snap.Explain {
		bottleneck, price := "", 0.0
		if len(ce.Binding) > 0 {
			bottleneck = ce.Binding[0].Name
			price = ce.Binding[0].Price
		}
		rec.Attribution(snap.Generation, ce.Name, ce.Admitted, ce.Gap, bottleneck, price)
	}
	if t := s.opts.Trace; t != nil {
		rec.ServerTrace(snap.Generation, t.Len(), t.Cap(), t.Stride())
	}
}

// recordHistory appends the snapshot to the bounded generation ring.
func (s *Server) recordHistory(snap *Snapshot) {
	if s.opts.HistoryCap < 0 {
		return
	}
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.hist == nil {
		s.hist = make([]*Snapshot, s.opts.HistoryCap)
	}
	s.hist[s.histNext] = snap
	s.histNext++
	if s.histNext == len(s.hist) {
		s.histNext = 0
		s.histFull = true
	}
}

// History returns the retained snapshot generations, oldest first.
func (s *Server) History() []*Snapshot {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.hist == nil {
		return nil
	}
	var out []*Snapshot
	if s.histFull {
		out = append(out, s.hist[s.histNext:]...)
	}
	out = append(out, s.hist[:s.histNext]...)
	return out
}

// WaitForGeneration blocks until a snapshot with Generation ≥ gen is
// published, or the timeout expires. Mutating and then waiting for
// (previous generation)+1 is the read-your-write recipe tests and
// scripted demos use; a coalesced burst of mutations still lands in
// that one next generation.
func (s *Server) WaitForGeneration(gen int64, timeout time.Duration) (*Snapshot, error) {
	deadline := time.Now().Add(timeout)
	for {
		if snap := s.snap.Load(); snap != nil && snap.Generation >= gen {
			return snap, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: no snapshot generation ≥ %d within %v", gen, timeout)
		}
		select {
		case <-s.ctx.Done():
			return nil, fmt.Errorf("server: closed while waiting for generation %d", gen)
		case <-time.After(time.Millisecond):
		}
	}
}
