package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Handler returns the service's HTTP API. Reads are served lock-free
// from the latest snapshot; writes validate against a clone and only
// commit on success. When reg is non-nil the obs exposition endpoints
// (/metrics, /debug/vars, /debug/pprof) are mounted on the same mux.
//
// Every request passes through the metrics middleware: per-route
// streamopt_http_requests_total{route,code} and latency histograms,
// plus a structured request-log event (method/path/status/duration/
// trace ID) through the recorder's sink. Mutation routes honor the W3C
// `traceparent` header: when span tracing is on (Options.Spans), the
// accepted mutation's decision trace continues the client's trace, and
// the full ingress→coalesce→solve→publish tree is queryable on
// GET /debug/spans?trace=<id>.
//
//	GET    /healthz                        liveness (alias /v1/healthz)
//	GET    /readyz                         readiness: 200 once the first snapshot published
//	GET    /v1/snapshot                    full converged snapshot
//	GET    /v1/admitted                    per-commodity admitted rates
//	GET    /v1/usage                       per-server/link utilization
//	GET    /v1/flips                       recent admitted↔rejected transitions
//	GET    /v1/problem                     current problem (schema JSON)
//	GET    /explain?commodity=NAME|IDX     bottleneck attribution (all when omitted)
//	GET    /history                        generation-over-generation diffs (since/limit filters)
//	GET    /debug/trace                    sampled per-iteration solver trace
//	GET    /debug/spans                    decision-lifecycle spans (trace/commodity/min_ms filters)
//	GET    /debug/bundles                  anomaly-capture diagnostics bundles (404 when capture is off)
//	POST   /v1/commodities                 admit a commodity (schema JSON)
//	DELETE /v1/commodities/{name}          remove a commodity
//	PATCH  /v1/commodities/{name}          {"maxRate": λ} and/or {"utility": {...}}
//	POST   /v1/rates                       {"rates": {name: λ, ...}} batch update, one re-solve
//	POST   /v1/nodes/{name}/capacity       {"capacity": C} or {"scale": f}
//	POST   /v1/links/{from}/{to}/bandwidth {"bandwidth": B} or {"scale": f}
func (s *Server) Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		obs.Attach(mux, reg)
	}
	span.Attach(mux, s.opts.Spans) // serves 404 when tracing is off

	healthz := func(w http.ResponseWriter, _ *http.Request) {
		var gen int64
		if snap := s.Snapshot(); snap != nil {
			gen = snap.Generation
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "generation": gen, "rev": s.Rev()})
	}
	mux.HandleFunc("GET /healthz", healthz)
	mux.HandleFunc("GET /v1/healthz", healthz)

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "generation": snap.Generation})
	})

	mux.HandleFunc("GET /v1/flips", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"flips": s.Flips()})
	})

	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no snapshot yet"))
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	mux.HandleFunc("GET /v1/admitted", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no snapshot yet"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation":  snap.Generation,
			"utility":     snap.Utility,
			"commodities": snap.Commodities,
		})
	})

	mux.HandleFunc("GET /v1/usage", func(w http.ResponseWriter, _ *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no snapshot yet"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"generation": snap.Generation,
			"feasible":   snap.Feasible,
			"usage":      snap.Usage,
		})
	})

	mux.HandleFunc("GET /explain", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no snapshot yet"))
			return
		}
		q := r.URL.Query().Get("commodity")
		if q == "" {
			writeJSON(w, http.StatusOK, map[string]any{
				"generation": snap.Generation,
				"explain":    snap.Explain,
			})
			return
		}
		idx, idxErr := strconv.Atoi(q)
		for j, ce := range snap.Explain {
			if ce.Name == q || (idxErr == nil && j == idx) {
				writeJSON(w, http.StatusOK, map[string]any{
					"generation": snap.Generation,
					"explain":    ce,
				})
				return
			}
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown commodity %q", q))
	})

	mux.HandleFunc("GET /history", func(w http.ResponseWriter, r *http.Request) {
		// Malformed or unknown filters are client errors, not silently
		// ignored: a typo'd ?sinse=40 must not quietly return everything.
		since, limit := int64(0), -1
		for key, vals := range r.URL.Query() {
			val := vals[len(vals)-1]
			switch key {
			case "since":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					writeError(w, http.StatusBadRequest, fmt.Errorf("invalid since %q: want a non-negative generation", val))
					return
				}
				since = n
			case "limit":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					writeError(w, http.StatusBadRequest, fmt.Errorf("invalid limit %q: want a non-negative count", val))
					return
				}
				limit = n
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown query parameter %q (want since, limit)", key))
				return
			}
		}
		entries := s.historyDiffs()
		if since > 0 {
			cut := 0
			for cut < len(entries) && entries[cut].Generation < since {
				cut++
			}
			entries = entries[cut:]
		}
		if limit >= 0 && len(entries) > limit {
			// Keep the newest entries: the tail is what a poller wants.
			entries = entries[len(entries)-limit:]
		}
		writeJSON(w, http.StatusOK, map[string]any{"generations": entries})
	})

	mux.HandleFunc("GET /debug/bundles", func(w http.ResponseWriter, _ *http.Request) {
		if s.opts.CaptureDir == "" {
			writeError(w, http.StatusNotFound, errors.New("capture not enabled (Options.CaptureDir)"))
			return
		}
		bundles, err := s.Bundles()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dir": s.opts.CaptureDir, "bundles": bundles})
	})

	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		t := s.opts.Trace
		if t == nil {
			writeError(w, http.StatusNotFound, errors.New("tracing not enabled (Options.Trace)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"capacity": t.Cap(),
			"stride":   t.Stride(),
			"seen":     t.Seen(),
			"samples":  t.Samples(),
		})
	})

	mux.HandleFunc("GET /v1/problem", func(w http.ResponseWriter, _ *http.Request) {
		data, err := s.ProblemJSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})

	mux.HandleFunc("POST /v1/commodities", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			return
		}
		rev, err := s.addCommodityJSON(ingressFrom(r), body)
		if err != nil {
			writeError(w, statusForMutation(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"rev": rev})
	})

	mux.HandleFunc("DELETE /v1/commodities/{name}", func(w http.ResponseWriter, r *http.Request) {
		rev, err := s.removeCommodity(ingressFrom(r), r.PathValue("name"))
		if err != nil {
			writeError(w, statusForMutation(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev})
	})

	mux.HandleFunc("PATCH /v1/commodities/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body, err := readBody(w, r)
		if err != nil {
			return
		}
		var patch struct {
			MaxRate *float64        `json:"maxRate"`
			Utility json.RawMessage `json:"utility"`
		}
		if err := json.Unmarshal(body, &patch); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if patch.MaxRate == nil && patch.Utility == nil {
			writeError(w, http.StatusBadRequest, errors.New("patch must set maxRate and/or utility"))
			return
		}
		ing := ingressFrom(r)
		var rev int64
		if patch.MaxRate != nil {
			if rev, err = s.setMaxRate(ing, name, *patch.MaxRate); err != nil {
				writeError(w, statusForMutation(err), err)
				return
			}
		}
		if patch.Utility != nil {
			if rev, err = s.setUtilityJSON(ing, name, patch.Utility); err != nil {
				writeError(w, statusForMutation(err), err)
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev})
	})

	mux.HandleFunc("POST /v1/rates", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			return
		}
		var in struct {
			Rates map[string]float64 `json:"rates"`
		}
		if err := json.Unmarshal(body, &in); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rev, err := s.setMaxRates(ingressFrom(r), in.Rates)
		if err != nil {
			writeError(w, statusForMutation(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev, "applied": len(in.Rates)})
	})

	mux.HandleFunc("POST /v1/nodes/{name}/capacity", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		abs, scale, ok := parseResize(w, r)
		if !ok {
			return
		}
		ing := ingressFrom(r)
		var rev int64
		var err error
		if scale != 0 {
			rev, err = s.scaleCapacity(ing, name, scale)
		} else {
			rev, err = s.setCapacity(ing, name, abs)
		}
		if err != nil {
			writeError(w, statusForMutation(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev})
	})

	mux.HandleFunc("POST /v1/links/{from}/{to}/bandwidth", func(w http.ResponseWriter, r *http.Request) {
		from, to := r.PathValue("from"), r.PathValue("to")
		abs, scale, ok := parseResize(w, r)
		if !ok {
			return
		}
		ing := ingressFrom(r)
		var rev int64
		var err error
		if scale != 0 {
			rev, err = s.scaleBandwidth(ing, from, to, scale)
		} else {
			rev, err = s.setBandwidth(ing, from, to, abs)
		}
		if err != nil {
			writeError(w, statusForMutation(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev})
	})

	return s.instrument(mux)
}

// ingressKey carries the request's ingress through the context from the
// instrumentation middleware (which parses traceparent and stamps the
// arrival time once) to the mutation handlers.
type ingressKey struct{}

// ingressFrom recovers the ingress stashed by the middleware; a handler
// invoked outside instrument (e.g. straight from a test mux) degrades
// to an untraced ingress stamped now.
func ingressFrom(r *http.Request) ingress {
	if ing, ok := r.Context().Value(ingressKey{}).(ingress); ok {
		return ing
	}
	return ingress{at: time.Now()}
}

// statusWriter captures the response code for the request metrics;
// handlers that never call WriteHeader implicitly answer 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the API mux with the observability middleware: it
// parses the W3C traceparent header once and stashes the resulting
// ingress in the request context, then records per-route request
// counters and latency histograms (streamopt_http_requests_total,
// streamopt_http_request_seconds) and emits one http_request event per
// served request through the recorder's sink. The route label is the
// mux pattern (e.g. "PATCH /v1/commodities/{name}"), not the raw path,
// so label cardinality stays bounded.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ing := ingress{at: start}
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tc, err := span.ParseTraceparent(tp); err == nil {
				ing.tc = tc
			}
		}
		r = r.WithContext(context.WithValue(r.Context(), ingressKey{}, ing))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(sw, r)
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		s.opts.Recorder.HTTPRequest(route, r.Method, r.URL.Path, sw.code,
			time.Since(start).Seconds(), ing.tc.TraceHex())
	})
}

// Serve binds addr and serves Handler(reg) until the returned
// HTTPServer is closed. Use addr ":0" to let the kernel pick a port.
func (s *Server) Serve(addr string, reg *obs.Registry) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &HTTPServer{ln: ln, http: &http.Server{Handler: s.Handler(reg)}}
	go func() { _ = h.http.Serve(ln) }()
	return h, nil
}

// HTTPServer is one bound listener serving the admission API.
type HTTPServer struct {
	ln   net.Listener
	http *http.Server
}

// Addr reports the bound address (useful with ":0").
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close stops the listener and open connections.
func (h *HTTPServer) Close() error { return h.http.Close() }

// resize payload shared by the capacity and bandwidth endpoints:
// exactly one of an absolute value or a multiplicative scale (the E8
// failure-injection idiom, e.g. {"scale": 0.25} cuts to a quarter).
func parseResize(w http.ResponseWriter, r *http.Request) (abs, scale float64, ok bool) {
	body, err := readBody(w, r)
	if err != nil {
		return 0, 0, false
	}
	var in struct {
		Capacity  float64 `json:"capacity"`
		Bandwidth float64 `json:"bandwidth"`
		Scale     float64 `json:"scale"`
	}
	if err := json.Unmarshal(body, &in); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return 0, 0, false
	}
	abs = in.Capacity
	if in.Bandwidth != 0 {
		abs = in.Bandwidth
	}
	if (abs != 0) == (in.Scale != 0) {
		writeError(w, http.StatusBadRequest,
			errors.New("set exactly one of capacity/bandwidth or scale"))
		return 0, 0, false
	}
	return abs, in.Scale, true
}

const maxBodyBytes = 1 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, err
	}
	return body, nil
}

// HistoryEntry is one retained generation in the GET /history response,
// with its deltas against the previous retained generation: how much
// total utility and each commodity's admitted rate moved when the
// snapshot was republished. A commodity arriving (departing) between
// generations shows its full (negated) rate as the delta.
type HistoryEntry struct {
	Generation   int64   `json:"generation"`
	Rev          int64   `json:"rev"`
	Warm         bool    `json:"warm"`
	Iterations   int     `json:"iterations"`
	SolveSeconds float64 `json:"solveSeconds"`
	Utility      float64 `json:"utility"`
	DeltaUtility float64 `json:"deltaUtility"`
	// Admitted maps commodity name to admitted rate at this generation;
	// DeltaAdmitted to the change since the previous retained one.
	Admitted      map[string]float64 `json:"admitted"`
	DeltaAdmitted map[string]float64 `json:"deltaAdmitted,omitempty"`
}

// historyDiffs renders the snapshot history ring as generation-over-
// generation diffs, oldest first.
func (s *Server) historyDiffs() []HistoryEntry {
	snaps := s.History()
	out := make([]HistoryEntry, 0, len(snaps))
	var prev *Snapshot
	for _, snap := range snaps {
		e := HistoryEntry{
			Generation:   snap.Generation,
			Rev:          snap.Rev,
			Warm:         snap.Warm,
			Iterations:   snap.Iterations,
			SolveSeconds: snap.SolveSeconds,
			Utility:      snap.Utility,
			Admitted:     make(map[string]float64, len(snap.Commodities)),
		}
		for _, c := range snap.Commodities {
			e.Admitted[c.Name] = c.Admitted
		}
		if prev != nil {
			e.DeltaUtility = snap.Utility - prev.Utility
			e.DeltaAdmitted = make(map[string]float64, len(e.Admitted))
			for name, rate := range e.Admitted {
				e.DeltaAdmitted[name] = rate
			}
			for _, c := range prev.Commodities {
				e.DeltaAdmitted[c.Name] -= c.Admitted
			}
		}
		out = append(out, e)
		prev = snap
	}
	return out
}

// statusForMutation maps a rejected mutation to its HTTP status:
// unknown targets (commodities, nodes, links) → 404, duplicate names
// and already-claimed resources → 409, every other validation failure
// → 400.
func statusForMutation(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "unknown"):
		return http.StatusNotFound
	case strings.Contains(msg, "duplicate"), strings.Contains(msg, "already"):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error envelope every endpoint returns:
// {"error": {"code": "...", "message": "..."}}. Code is a stable
// machine-readable slug derived from the HTTP status; message is the
// human-readable cause.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorCode maps an HTTP status to the envelope's stable code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]apiError{"error": {Code: errorCode(status), Message: err.Error()}})
}
