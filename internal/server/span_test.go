package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// startTracedServer is startServer with decision-span tracing enabled.
func startTracedServer(t *testing.T, rec *obs.Recorder, spanCap int) (*Server, *span.Tracer, *httptest.Server) {
	t.Helper()
	tr := span.New(spanCap, rec)
	opts := testOptions(rec)
	opts.Spans = tr
	s, err := New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	var reg *obs.Registry
	if rec != nil {
		reg = rec.Registry()
	}
	ts := httptest.NewServer(s.Handler(reg))
	t.Cleanup(ts.Close)
	return s, tr, ts
}

const clientTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// TestDecisionLifecycleSpans is the acceptance demo as a test: POST a
// rate mutation carrying a W3C traceparent, then read back the full
// ingress → coalesce → solve-phases → publish tree from /debug/spans
// under the client's trace ID, with decision latency populated.
func TestDecisionLifecycleSpans(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, _, ts := startTracedServer(t, rec, 256)

	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("PATCH", ts.URL+"/v1/commodities/c1",
		strings.NewReader(`{"maxRate": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status = %d", resp.StatusCode)
	}
	if _, err := s.WaitForGeneration(first.Generation+1, waitBudget); err != nil {
		t.Fatal(err)
	}

	const wantTrace = "0af7651916cd43dd8448eb211c80319c"
	resp, body := doReq(t, "GET", ts.URL+"/debug/spans?trace="+wantTrace, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/spans status = %d: %s", resp.StatusCode, body)
	}
	var page struct {
		Spans []span.Span `json:"spans"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	byName := map[string]span.Span{}
	for _, sp := range page.Spans {
		if sp.Trace != wantTrace {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.Trace, wantTrace)
		}
		byName[sp.Name] = sp
	}
	for _, name := range []string{"decision", "ingress", "coalesce", "solve", "build", "engine_init", "iterate", "publish"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing %q span in trace (got %d spans)", name, len(page.Spans))
		}
	}
	if t.Failed() {
		t.Fatalf("spans: %+v", page.Spans)
	}

	// Parent links: decision continues the client's span; ingress,
	// coalesce and solve hang under decision; phases under solve.
	dec := byName["decision"]
	if dec.Parent != "b7ad6b7169203331" {
		t.Errorf("decision parent = %q, want the client's span ID", dec.Parent)
	}
	for _, name := range []string{"ingress", "coalesce", "solve"} {
		if got := byName[name].Parent; got != dec.ID {
			t.Errorf("%s parent = %q, want decision %q", name, got, dec.ID)
		}
	}
	for _, name := range []string{"build", "engine_init", "iterate", "publish"} {
		if got := byName[name].Parent; got != byName["solve"].ID {
			t.Errorf("%s parent = %q, want solve %q", name, got, byName["solve"].ID)
		}
	}

	// The root records which generation resolved it and its latency.
	if dec.Attrs["generation"] == "" {
		t.Error("decision span missing generation attr")
	}
	if dec.Attrs["decision_latency_s"] == "" {
		t.Error("decision span missing decision_latency_s attr")
	}
	if dec.Attrs["kind"] != "set_rate" {
		t.Errorf("decision kind = %q, want set_rate", dec.Attrs["kind"])
	}
	if byName["solve"].Attrs["mutations_coalesced"] == "" {
		t.Error("solve span missing mutations_coalesced attr")
	}
	if byName["iterate"].Attrs["iterations"] == "" {
		t.Error("iterate span missing iterations attr")
	}
	if st := byName["engine_init"].Attrs["start"]; st != "warm" && st != "cold" {
		t.Errorf("engine_init start = %q, want warm|cold", st)
	}

	// The decision-latency histogram saw the decision.
	var metrics strings.Builder
	if err := rec.Registry().WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), "streamopt_decision_latency_seconds_count") ||
		strings.Contains(metrics.String(), "streamopt_decision_latency_seconds_count 0\n") {
		t.Error("decision latency histogram not populated")
	}
}

// TestUntracedMutationStartsFreshTrace verifies a mutation without a
// traceparent still gets a full decision tree under a server-minted
// trace ID.
func TestUntracedMutationStartsFreshTrace(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, tr, ts := startTracedServer(t, rec, 256)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := doReq(t, "PATCH", ts.URL+"/v1/commodities/c1", map[string]any{"maxRate": 6.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH status = %d", resp.StatusCode)
	}
	if _, err := s.WaitForGeneration(first.Generation+1, waitBudget); err != nil {
		t.Fatal(err)
	}
	roots := tr.Spans(span.Filter{Name: "decision"})
	if len(roots) == 0 {
		t.Fatal("no decision span recorded")
	}
	root := roots[len(roots)-1]
	if root.Trace == "" || root.Parent != "" {
		t.Errorf("fresh-trace root = trace %q parent %q, want minted trace and no parent", root.Trace, root.Parent)
	}
}

// TestHealthAndReadyEndpoints covers liveness (always 200) and
// readiness flipping once the first snapshot publishes.
func TestHealthAndReadyEndpoints(t *testing.T) {
	// A handler over a server that never solved: ready must be 503,
	// healthz still 200.
	cold := &Server{}
	cold.opts.Logf = func(string, ...any) {}
	ch := cold.Handler(nil)
	for path, want := range map[string]int{"/healthz": 200, "/v1/healthz": 200, "/readyz": 503} {
		rr := httptest.NewRecorder()
		ch.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != want {
			t.Errorf("cold %s = %d, want %d", path, rr.Code, want)
		}
	}

	// A served first snapshot flips readiness.
	s, ts := startServer(t, nil)
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, "GET", ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after first snapshot = %d", resp.StatusCode)
	}
	var ready struct {
		Ready      bool  `json:"ready"`
		Generation int64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.Generation < 1 {
		t.Errorf("readyz payload = %+v", ready)
	}
}

// TestAdmissionFlips drives c1 across the admitted↔rejected boundary
// by crushing node a's capacity and restoring it, and checks both the
// in-memory ring and the /v1/flips endpoint, including the triggering
// trace ID.
func TestAdmissionFlips(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, _, ts := startTracedServer(t, rec, 256)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if rejected(first.Commodities[0].Admitted, first.Commodities[0].Offered) {
		t.Fatalf("c1 should start admitted, snapshot %+v", first.Commodities[0])
	}

	req, err := http.NewRequest("POST", ts.URL+"/v1/nodes/a/capacity",
		strings.NewReader(`{"capacity": 0.0001}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capacity POST status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(waitBudget)
	gen := first.Generation
	for {
		snap, err := s.WaitForGeneration(gen+1, waitBudget)
		if err != nil {
			t.Fatal(err)
		}
		gen = snap.Generation
		if rejected(snap.Commodities[0].Admitted, snap.Commodities[0].Offered) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("c1 never became rejected; admitted=%v", snap.Commodities[0].Admitted)
		}
	}

	flips := s.Flips()
	if len(flips) == 0 {
		t.Fatal("no admission flips recorded")
	}
	last := flips[len(flips)-1]
	if last.Commodity != "c1" || last.Admitted {
		t.Errorf("flip = %+v, want c1 → rejected", last)
	}
	if last.Trace != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("flip trace = %q, want the client's trace ID", last.Trace)
	}

	// Restore capacity: flips back to admitted.
	resp, _ = doReq(t, "POST", ts.URL+"/v1/nodes/a/capacity", map[string]any{"capacity": 10.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore POST status = %d", resp.StatusCode)
	}
	deadline = time.Now().Add(waitBudget)
	for {
		snap, err := s.WaitForGeneration(gen+1, waitBudget)
		if err != nil {
			t.Fatal(err)
		}
		gen = snap.Generation
		if !rejected(snap.Commodities[0].Admitted, snap.Commodities[0].Offered) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("c1 never re-admitted")
		}
	}
	flips = s.Flips()
	last = flips[len(flips)-1]
	if last.Commodity != "c1" || !last.Admitted {
		t.Errorf("restore flip = %+v, want c1 → admitted", last)
	}

	resp, body := doReq(t, "GET", ts.URL+"/v1/flips", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/flips = %d", resp.StatusCode)
	}
	var page struct {
		Flips []AdmissionFlip `json:"flips"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Flips) != len(flips) {
		t.Errorf("endpoint returned %d flips, ring has %d", len(page.Flips), len(flips))
	}
}

// TestHTTPMiddlewareMetrics checks the per-route counters, latency
// histograms and request-log events the middleware produces.
func TestHTTPMiddlewareMetrics(t *testing.T) {
	var buf syncBuffer
	rec := obs.NewRecorder(obs.NewRegistry(), obs.NewJSONLSink(&buf))
	s, ts := startServer(t, rec)
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/admitted", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/admitted = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", ts.URL+"/no/such/route", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmatched route = %d", resp.StatusCode)
	}

	var metrics strings.Builder
	if err := rec.Registry().WritePrometheus(&metrics); err != nil {
		t.Fatal(err)
	}
	text := metrics.String()
	for _, want := range []string{
		"streamopt_http_requests_total",
		`route="GET /v1/admitted"`,
		`code="200"`,
		`route="unmatched"`,
		"streamopt_http_request_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// The sink saw http_request events, the traced one carrying the
	// client's trace ID.
	var sawTraced bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Type  string `json:"type"`
			Route string `json:"route"`
			Trace string `json:"trace"`
			Code  int    `json:"code"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Type == "http_request" && ev.Route == "GET /v1/admitted" &&
			ev.Trace == "0af7651916cd43dd8448eb211c80319c" && ev.Code == 200 {
			sawTraced = true
		}
	}
	if !sawTraced {
		t.Errorf("no traced http_request event in sink:\n%s", buf.String())
	}
}

// syncBuffer is a strings.Builder safe for the sink's concurrent Emit.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestWaitForGenerationTimeoutReturnsLatest pins the audited contract:
// on timeout the call reports the newest published snapshot alongside
// the error, so callers can degrade to stale-but-consistent data.
func TestWaitForGenerationTimeoutReturnsLatest(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, _ := startServer(t, rec)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.WaitForGeneration(first.Generation+1000, 20*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if snap == nil {
		t.Fatal("timeout must still return the latest snapshot")
	}
	if snap.Generation < first.Generation {
		t.Errorf("returned generation %d older than observed %d", snap.Generation, first.Generation)
	}
}

// TestWaitForGenerationPublishRace interleaves waiters with concurrent
// publishes; under -race (CI runs this package with -count=5) it
// doubles as the publish/wait memory-safety check.
func TestWaitForGenerationPublishRace(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, _ := startServer(t, rec)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	// Each round races several waiters for the next generation against
	// the mutation that produces it. Mutations coalesce, so targets are
	// derived from the currently published generation, which every
	// publish strictly advances.
	const rounds, waiters = 10, 4
	gen := first.Generation
	for i := 0; i < rounds; i++ {
		target := gen + 1
		var wg sync.WaitGroup
		errs := make(chan error, waiters+1)
		for w := 0; w < waiters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				snap, err := s.WaitForGeneration(target, waitBudget)
				if err != nil {
					errs <- fmt.Errorf("wait %d: %w", target, err)
					return
				}
				if snap.Generation < target {
					errs <- fmt.Errorf("wait %d returned older generation %d", target, snap.Generation)
				}
			}()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.SetMaxRate("c1", 4+float64(i%5)); err != nil {
				errs <- fmt.Errorf("mutate %d: %w", i, err)
			}
		}(i)
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		gen = s.Snapshot().Generation
	}
}
