package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/span"
)

// Anomaly-triggered diagnostics capture. When the server detects a
// decision-latency SLO breach, an unexpected warm-start fallback, or a
// solver divergence, it dumps a bundle — journal tail, span ring,
// iteration trace samples, heap and goroutine profiles — into a
// timestamped subdirectory of Options.CaptureDir. The dump runs on its
// own goroutine (the solver never blocks on profile serialization), at
// most one at a time, rate-limited by CaptureMinInterval, and writes
// through a temp directory renamed into place so readers never see a
// half-written bundle.

// captureTailRecords bounds the journal records dumped into a bundle.
const captureTailRecords = 256

// BundleInfo describes one finished capture bundle, as listed by
// GET /debug/bundles.
type BundleInfo struct {
	Name       string    `json:"name"`
	Reason     string    `json:"reason"`
	Detail     string    `json:"detail,omitempty"`
	Generation int64     `json:"generation"`
	Rev        int64     `json:"rev"`
	At         time.Time `json:"at"`
	Files      []string  `json:"files"`
}

// maybeCapture fires a diagnostics dump for the named reason unless
// capture is disabled, another dump is in flight, or one finished less
// than CaptureMinInterval ago. Never blocks the caller.
func (s *Server) maybeCapture(reason, detail string) {
	if s.opts.CaptureDir == "" {
		return
	}
	now := time.Now().UnixNano()
	last := s.captureLast.Load()
	if last != 0 && now-last < int64(s.opts.CaptureMinInterval) {
		return
	}
	if !s.captureBusy.CompareAndSwap(false, true) {
		return
	}
	s.captureLast.Store(now)
	gen, rev := int64(0), int64(0)
	if snap := s.snap.Load(); snap != nil {
		gen, rev = snap.Generation, snap.Rev
	}
	seq := s.captureSeq.Add(1)
	go func() {
		defer s.captureBusy.Store(false)
		name, err := s.writeBundle(seq, reason, detail, gen, rev)
		if err != nil {
			s.opts.Logf("server: capture %q failed: %v", reason, err)
			return
		}
		s.opts.Recorder.Capture(reason, name)
		s.opts.Logf("server: captured diagnostics bundle %s (%s)", name, reason)
	}()
}

// writeBundle assembles one bundle in a temp directory and renames it
// into place. Returns the bundle's directory name.
func (s *Server) writeBundle(seq int64, reason, detail string, gen, rev int64) (string, error) {
	name := fmt.Sprintf("cap-%06d-%s", seq, reason)
	tmp := filepath.Join(s.opts.CaptureDir, "."+name+".tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	info := BundleInfo{
		Name:       name,
		Reason:     reason,
		Detail:     detail,
		Generation: gen,
		Rev:        rev,
		At:         time.Now().UTC(),
	}

	writeFile := func(file string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		info.Files = append(info.Files, file)
		return nil
	}

	if w := s.opts.Journal; w != nil {
		err := writeFile("journal-tail.jsonl", func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, r := range w.Tail(captureTailRecords) {
				if err := enc.Encode(r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	if tr := s.opts.Spans; tr != nil {
		err := writeFile("spans.jsonl", func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, sp := range tr.Spans(span.Filter{}) {
				if err := enc.Encode(sp); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	if ring := s.opts.Trace; ring != nil {
		err := writeFile("trace.jsonl", func(f *os.File) error {
			enc := json.NewEncoder(f)
			for _, sample := range ring.Samples() {
				if err := enc.Encode(sample); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	err := writeFile("heap.pprof", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	})
	if err != nil {
		return "", err
	}
	err = writeFile("goroutine.pprof", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 0)
	})
	if err != nil {
		return "", err
	}

	info.Files = append(info.Files, "meta.json") // the manifest lists itself
	meta, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(tmp, "meta.json"), meta, 0o644); err != nil {
		return "", err
	}

	if err := os.Rename(tmp, filepath.Join(s.opts.CaptureDir, name)); err != nil {
		return "", err
	}
	return name, nil
}

// Bundles lists the finished capture bundles in the capture directory,
// oldest first. A missing directory (nothing captured yet) is an empty
// list.
func (s *Server) Bundles() ([]BundleInfo, error) {
	if s.opts.CaptureDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.opts.CaptureDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []BundleInfo
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		meta, err := os.ReadFile(filepath.Join(s.opts.CaptureDir, e.Name(), "meta.json"))
		if err != nil {
			continue // half-written bundles are invisible by design
		}
		var info BundleInfo
		if err := json.Unmarshal(meta, &info); err != nil {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
