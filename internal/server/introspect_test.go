package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// explainResponse mirrors the GET /explain?commodity= payload.
type explainResponse struct {
	Generation int64                 `json:"generation"`
	Explain    core.CommodityExplain `json:"explain"`
}

// TestExplainEndpoint overloads the toy network (λ ≫ capacity) and
// checks the attribution names a binding resource with a positive
// shadow price — the acceptance criterion for /explain.
func TestExplainEndpoint(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	s, ts := startServer(t, rec)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	// Offer triple the chain's capacity so admission is capacity-cut.
	if _, err := s.SetMaxRate("c1", 30); err != nil {
		t.Fatal(err)
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commodities[0].Admitted >= 29 {
		t.Fatalf("instance not capacity-limited: admitted %g of 30", snap.Commodities[0].Admitted)
	}

	for _, query := range []string{"c1", "0"} {
		resp, body := doReq(t, http.MethodGet, ts.URL+"/explain?commodity="+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /explain?commodity=%s status %d: %s", query, resp.StatusCode, body)
		}
		var er explainResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("explain response does not parse: %v\n%s", err, body)
		}
		ce := er.Explain
		if ce.Name != "c1" || ce.Offered != 30 {
			t.Fatalf("explain for %q: %+v", query, ce)
		}
		if ce.Admitted <= 0 {
			t.Fatalf("explain reports nothing admitted: %+v", ce)
		}
		if ce.MarginalUtility <= 0 || ce.PathCost <= 0 {
			t.Fatalf("admission marginals missing: %+v", ce)
		}
		if len(ce.Binding) == 0 {
			t.Fatalf("capacity-constrained commodity has no binding resource: %+v", ce)
		}
		top := ce.Binding[0]
		if top.Price <= 0 || top.Name == "" || (top.Kind != "server" && top.Kind != "link") {
			t.Fatalf("bad binding entry: %+v", top)
		}
	}

	// No query: all commodities.
	resp, body := doReq(t, http.MethodGet, ts.URL+"/explain", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain status %d", resp.StatusCode)
	}
	var all struct {
		Generation int64                   `json:"generation"`
		Explain    []core.CommodityExplain `json:"explain"`
	}
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Explain) != 1 {
		t.Fatalf("explain-all entries = %d, want 1", len(all.Explain))
	}

	// Unknown commodity: 404.
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/explain?commodity=ghost", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown commodity status %d, want 404", resp.StatusCode)
	}

	// Every published generation increments the attribution counter.
	c := rec.Registry().Counter("streamopt_attributions_total", "")
	if c.Value() == 0 {
		t.Fatal("no attribution events recorded across solves")
	}
}

// TestHistoryEndpoint checks /history reports generation-over-generation
// utility and admitted-rate diffs after a rate cut.
func TestHistoryEndpoint(t *testing.T) {
	s, ts := startServer(t, nil)
	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetMaxRate("c1", 2); err != nil {
		t.Fatal(err)
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := doReq(t, http.MethodGet, ts.URL+"/history", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /history status %d: %s", resp.StatusCode, body)
	}
	var hist struct {
		Generations []HistoryEntry `json:"generations"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		t.Fatalf("history response does not parse: %v\n%s", err, body)
	}
	if len(hist.Generations) < 2 {
		t.Fatalf("history entries = %d, want ≥ 2", len(hist.Generations))
	}
	for i := 1; i < len(hist.Generations); i++ {
		if hist.Generations[i].Generation <= hist.Generations[i-1].Generation {
			t.Fatalf("history not oldest-first: %+v", hist.Generations)
		}
	}
	last := hist.Generations[len(hist.Generations)-1]
	prev := hist.Generations[len(hist.Generations)-2]
	if last.Generation != snap.Generation {
		t.Fatalf("latest history generation %d != snapshot %d", last.Generation, snap.Generation)
	}
	wantDU := last.Utility - prev.Utility
	if diff := last.DeltaUtility - wantDU; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("deltaUtility %g, want %g", last.DeltaUtility, wantDU)
	}
	wantDA := last.Admitted["c1"] - prev.Admitted["c1"]
	if diff := last.DeltaAdmitted["c1"] - wantDA; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("deltaAdmitted[c1] %g, want %g", last.DeltaAdmitted["c1"], wantDA)
	}
	// The rate cut must show as a drop.
	if last.DeltaAdmitted["c1"] >= 0 {
		t.Fatalf("rate cut did not show as negative admitted delta: %+v", last)
	}
}

// TestHistoryRingBounded drives more generations than HistoryCap and
// checks only the newest survive, oldest-first.
func TestHistoryRingBounded(t *testing.T) {
	opts := testOptions(nil)
	opts.HistoryCap = 3
	s, err := New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	last := gen.Generation
	for i := 0; i < 5; i++ {
		if _, err := s.SetMaxRate("c1", 3+float64(i)); err != nil {
			t.Fatal(err)
		}
		snap, err := s.WaitForGeneration(last+1, waitBudget)
		if err != nil {
			t.Fatal(err)
		}
		last = snap.Generation
	}
	hist := s.History()
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want cap 3", len(hist))
	}
	if hist[len(hist)-1].Generation != last {
		t.Fatalf("newest generation %d missing from history tail %d",
			last, hist[len(hist)-1].Generation)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Generation <= hist[i-1].Generation {
			t.Fatal("history ring not oldest-first after wraparound")
		}
	}
}

// TestDebugTraceEndpoint wires a trace ring into the server and checks
// /debug/trace serves sampled per-iteration solver state.
func TestDebugTraceEndpoint(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	opts := testOptions(rec)
	opts.Trace = trace.New(256, 1)
	s, err := New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s.Handler(rec.Registry()))
	t.Cleanup(ts.Close)

	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}

	resp, body := doReq(t, http.MethodGet, ts.URL+"/debug/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace status %d: %s", resp.StatusCode, body)
	}
	var tr struct {
		Capacity int            `json:"capacity"`
		Stride   int            `json:"stride"`
		Seen     uint64         `json:"seen"`
		Samples  []trace.Sample `json:"samples"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("trace response does not parse: %v\n%s", err, body)
	}
	if tr.Capacity != 256 || tr.Stride != 1 {
		t.Fatalf("trace shape = cap %d stride %d", tr.Capacity, tr.Stride)
	}
	if len(tr.Samples) == 0 || tr.Seen == 0 {
		t.Fatal("trace ring empty after a solve")
	}
	s0 := tr.Samples[0]
	if s0.Eta != 0.04 {
		t.Fatalf("trace sample eta = %g, want the default 0.04", s0.Eta)
	}
	if len(s0.Admitted) != 1 {
		t.Fatalf("trace sample admitted = %v, want 1 commodity", s0.Admitted)
	}
	// Per-iteration phase durations must be populated somewhere in the
	// trace (the first iterations always run all four phases).
	var phased bool
	for _, ph := range s0.PhaseSeconds {
		if ph > 0 {
			phased = true
		}
	}
	if !phased {
		t.Fatalf("trace sample carries no phase timings: %+v", s0)
	}

	// The trace fill-level gauge follows the ring.
	g := rec.Registry().Gauge("streamopt_trace_samples", "")
	if g.Value() == 0 {
		t.Fatal("streamopt_trace_samples gauge not updated on publish")
	}
}

// TestDebugTraceDisabled: without Options.Trace the endpoint 404s.
func TestDebugTraceDisabled(t *testing.T) {
	_, ts := startServer(t, nil)
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/debug/trace", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/trace without a ring: status %d, want 404", resp.StatusCode)
	}
}
