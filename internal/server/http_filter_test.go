package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/span"
)

// TestQueryParamValidation is the table test for the strict query-
// parameter contract: malformed or unknown filters on GET /history and
// GET /debug/spans answer 400, never a silently unfiltered 200.
func TestQueryParamValidation(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	tracer := span.New(64, nil)
	opts := testOptions(rec)
	opts.Spans = tracer
	s, err := New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	h, err := s.Serve("127.0.0.1:0", rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	base := "http://" + h.Addr()

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"history plain", "/history", http.StatusOK},
		{"history since", "/history?since=1", http.StatusOK},
		{"history limit", "/history?limit=5", http.StatusOK},
		{"history both", "/history?since=1&limit=2", http.StatusOK},
		{"history limit zero", "/history?limit=0", http.StatusOK},
		{"history since junk", "/history?since=banana", http.StatusBadRequest},
		{"history since negative", "/history?since=-3", http.StatusBadRequest},
		{"history limit junk", "/history?limit=1.5", http.StatusBadRequest},
		{"history unknown param", "/history?sinse=40", http.StatusBadRequest},
		{"spans plain", "/debug/spans", http.StatusOK},
		{"spans name", "/debug/spans?name=solve", http.StatusOK},
		{"spans min_ms", "/debug/spans?min_ms=0.5", http.StatusOK},
		{"spans trace valid", "/debug/spans?trace=0123456789abcdef0123456789abcdef", http.StatusOK},
		{"spans trace short", "/debug/spans?trace=abc123", http.StatusBadRequest},
		{"spans trace uppercase", "/debug/spans?trace=0123456789ABCDEF0123456789ABCDEF", http.StatusBadRequest},
		{"spans min_ms junk", "/debug/spans?min_ms=fast", http.StatusBadRequest},
		{"spans min_ms negative", "/debug/spans?min_ms=-1", http.StatusBadRequest},
		{"spans unknown param", "/debug/spans?comodity=c1", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(base + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s = %d, want %d (body: %s)", tc.url, resp.StatusCode, tc.want, body)
			}
			if tc.want == http.StatusBadRequest {
				var e struct {
					Error struct {
						Code    string `json:"code"`
						Message string `json:"message"`
					} `json:"error"`
				}
				if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
					t.Fatalf("400 body lacks structured error envelope: %s", body)
				}
				if e.Error.Code != "invalid_argument" {
					t.Fatalf("400 code = %q, want invalid_argument (body: %s)", e.Error.Code, body)
				}
			}
		})
	}
}

// TestHistoryFilters drives a few generations and checks since/limit
// semantics.
func TestHistoryFilters(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	s, err := New(toyProblem(t), testOptions(rec))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	h, err := s.Serve("127.0.0.1:0", rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })

	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	gen := first.Generation
	for i := 0; i < 3; i++ {
		if _, err := s.SetMaxRate("c1", 4+float64(i)); err != nil {
			t.Fatal(err)
		}
		snap, err := s.WaitForGeneration(gen+1, waitBudget)
		if err != nil {
			t.Fatal(err)
		}
		gen = snap.Generation
	}

	get := func(url string) []HistoryEntry {
		t.Helper()
		resp, err := http.Get("http://" + h.Addr() + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		var out struct {
			Generations []HistoryEntry `json:"generations"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Generations
	}

	all := get("/history")
	if len(all) < 4 {
		t.Fatalf("retained %d generations, want >= 4", len(all))
	}
	since := get("/history?since=3")
	for _, e := range since {
		if e.Generation < 3 {
			t.Fatalf("since=3 returned generation %d", e.Generation)
		}
	}
	limited := get("/history?limit=2")
	if len(limited) != 2 {
		t.Fatalf("limit=2 returned %d entries", len(limited))
	}
	// limit keeps the newest tail.
	if limited[len(limited)-1].Generation != all[len(all)-1].Generation {
		t.Fatal("limit dropped the newest generation")
	}
	if got := get("/history?limit=0"); len(got) != 0 {
		t.Fatalf("limit=0 returned %d entries", len(got))
	}
}
