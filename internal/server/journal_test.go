package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// startJournaledServer builds a server writing through a journal in a
// temp dir, returning both plus the dir.
func startJournaledServer(t *testing.T, opts Options) (*Server, *journal.Writer, string) {
	t.Helper()
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts.Journal = jw
	s, err := New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = s.Close()
		_ = jw.Close()
	})
	return s, jw, dir
}

func TestServerJournalsTrajectory(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	s, jw, dir := startJournaledServer(t, testOptions(rec))

	first, err := s.WaitForGeneration(1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetMaxRate("c1", 4); err != nil {
		t.Fatal(err)
	}
	snap, err := s.WaitForGeneration(first.Generation+1, waitBudget)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatal("clean shutdown left a torn tail")
	}
	if len(log.Records) == 0 || log.Records[0].Kind != journal.KindCheckpoint {
		t.Fatalf("journal does not open with a checkpoint: %+v", log.Records[:1])
	}
	boot := log.Records[0].Checkpoint
	if !boot.Restart || boot.Solver == nil {
		t.Fatalf("boot checkpoint = %+v", boot)
	}
	if boot.Solver.MaxIters != 1500 || boot.Solver.Epsilon != 0.2 {
		t.Fatalf("boot solver params = %+v", boot.Solver)
	}
	if log.Records[0].Rev != 1 {
		t.Fatalf("boot checkpoint rev = %d, want 1", log.Records[0].Rev)
	}

	var muts, digests []journal.Record
	for _, r := range log.Records {
		switch r.Kind {
		case journal.KindMutation:
			muts = append(muts, r)
		case journal.KindDigest:
			digests = append(digests, r)
		}
	}
	if len(muts) != 1 {
		t.Fatalf("journaled %d mutations, want 1", len(muts))
	}
	m := muts[0]
	if m.Rev != 2 || m.Mutation.Op != journal.OpSetRate || m.Mutation.Target != "c1" {
		t.Fatalf("mutation record = %+v", m)
	}
	var pl journal.RatePayload
	if err := json.Unmarshal(m.Mutation.Payload, &pl); err != nil || pl.Rate != 4 {
		t.Fatalf("mutation payload = %s (%v)", m.Mutation.Payload, err)
	}
	if len(digests) < 2 {
		t.Fatalf("journaled %d digests, want >= 2", len(digests))
	}
	last := digests[len(digests)-1].Digest
	if last.Generation != snap.Generation || last.Utility != snap.Utility {
		t.Fatalf("last digest = %+v, snapshot gen %d utility %v", last, snap.Generation, snap.Utility)
	}
	if want := snap.JournalDigest(nil).AdmittedHash; last.AdmittedHash != want {
		t.Fatalf("digest hash %s, recomputed %s", last.AdmittedHash, want)
	}

	// The journal recovers to the server's final desired problem.
	recd, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := recd.Problem.CommodityByName("c1")
	if c.MaxRate != 4 {
		t.Fatalf("recovered MaxRate = %v", c.MaxRate)
	}
}

func TestServerPeriodicCheckpoints(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	opts := testOptions(rec)
	opts.CheckpointEvery = 2
	s, jw, dir := startJournaledServer(t, opts)

	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.SetMaxRate("c1", 3+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()
	_ = jw.Close()

	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	periodic := 0
	for _, r := range log.Records {
		if r.Kind == journal.KindCheckpoint && !r.Checkpoint.Restart {
			periodic++
		}
	}
	if periodic != 2 { // 5 mutations at every-2 cadence → after #2 and #4
		t.Fatalf("wrote %d periodic checkpoints, want 2", periodic)
	}
	// Recovery still lands on the final state regardless of which
	// checkpoint it starts from.
	recd, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := recd.Problem.CommodityByName("c1")
	if c.MaxRate != 7 {
		t.Fatalf("recovered MaxRate = %v, want 7", c.MaxRate)
	}
}

func TestAnomalyCaptureOnSLOBreach(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	opts := testOptions(rec)
	opts.SLO = time.Nanosecond // every decision breaches
	opts.CaptureDir = filepath.Join(t.TempDir(), "bundles")
	s, _, _ := startJournaledServer(t, opts)
	h, err := s.Serve("127.0.0.1:0", rec.Registry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })

	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetMaxRate("c1", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(2, waitBudget); err != nil {
		t.Fatal(err)
	}

	// The capture goroutine is async; poll for the bundle.
	deadline := time.Now().Add(waitBudget)
	var bundles []BundleInfo
	for {
		bundles, err = s.Bundles()
		if err != nil {
			t.Fatal(err)
		}
		if len(bundles) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no capture bundle appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b := bundles[0]
	if b.Reason != "slo_breach" {
		t.Fatalf("bundle reason = %q", b.Reason)
	}
	for _, want := range []string{"journal-tail.jsonl", "heap.pprof", "goroutine.pprof", "meta.json"} {
		found := false
		for _, f := range b.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("bundle lacks %s (has %v)", want, b.Files)
		}
		if _, err := os.Stat(filepath.Join(opts.CaptureDir, b.Name, want)); err != nil {
			t.Fatalf("bundle file missing on disk: %v", err)
		}
	}

	// Counted and listable.
	if v := rec.Registry().Counter("streamopt_capture_total", "", "reason", "slo_breach").Value(); v < 1 {
		t.Fatalf("capture counter = %d", v)
	}
	resp, err := http.Get("http://" + h.Addr() + "/debug/bundles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundles = %d", resp.StatusCode)
	}
	var out struct {
		Bundles []BundleInfo `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Bundles) == 0 || out.Bundles[0].Reason != "slo_breach" {
		t.Fatalf("listed bundles = %+v", out.Bundles)
	}
}

func TestBundlesEndpointDisabled(t *testing.T) {
	rec := obs.NewRecorder(nil, nil)
	s, ts := startServer(t, rec)
	_ = s
	resp, err := http.Get(ts.URL + "/debug/bundles")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/bundles without CaptureDir = %d, want 404", resp.StatusCode)
	}
}
