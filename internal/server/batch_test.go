package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// One SetMaxRates call must cost one revision (one clone, one solver
// wake) no matter how many commodities it touches, and the next
// generation must reflect every rate in the batch.
func TestSetMaxRatesBatchIsOneMutation(t *testing.T) {
	s, err := New(toyProblem(t), testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WaitForGeneration(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	revBefore := s.Rev()
	rev, err := s.SetMaxRates(map[string]float64{"c1": 3.5})
	if err != nil {
		t.Fatal(err)
	}
	if rev != revBefore+1 {
		t.Fatalf("rev = %d, want %d (one bump per batch)", rev, revBefore+1)
	}
	snap, err := s.WaitForGeneration(2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Commodities) != 1 || snap.Commodities[0].Offered != 3.5 {
		t.Fatalf("offered = %+v, want c1 at 3.5", snap.Commodities)
	}
}

// A batch containing any invalid entry must reject atomically: no rate
// in the batch may be applied.
func TestSetMaxRatesBatchIsAtomic(t *testing.T) {
	s, err := New(toyProblem(t), testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WaitForGeneration(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	revBefore := s.Rev()
	if _, err := s.SetMaxRates(map[string]float64{"c1": 3, "ghost": 4}); err == nil {
		t.Fatal("batch with unknown commodity should fail")
	} else if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("error should name the bad commodity, got %v", err)
	}
	if _, err := s.SetMaxRates(map[string]float64{"c1": -1}); err == nil {
		t.Fatal("batch with invalid rate should fail")
	}
	if _, err := s.SetMaxRates(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if got := s.Rev(); got != revBefore {
		t.Fatalf("rev moved to %d on failed batches, want %d", got, revBefore)
	}
	data, err := s.ProblemJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"maxRate": 8`) {
		t.Fatal("failed batch leaked a rate change into the problem")
	}
}

func TestBatchRatesHTTP(t *testing.T) {
	s, err := New(toyProblem(t), testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.WaitForGeneration(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler(nil))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/rates", "application/json",
		bytes.NewReader([]byte(`{"rates": {"c1": 5.25}}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var out struct {
		Rev     int64 `json:"rev"`
		Applied int   `json:"applied"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Applied != 1 || out.Rev == 0 {
		t.Fatalf("response = %+v, want applied=1 and a rev", out)
	}
	snap, err := s.WaitForGeneration(2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Commodities[0].Offered != 5.25 {
		t.Fatalf("offered = %g, want 5.25", snap.Commodities[0].Offered)
	}

	// Unknown commodity → 404, invalid body → 400.
	for _, c := range []struct {
		body string
		want int
	}{
		{`{"rates": {"ghost": 1}}`, http.StatusNotFound},
		{`{"rates": {}}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/rates", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("POST %q: status = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}
