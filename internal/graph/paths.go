package graph

// Path is a sequence of node IDs connected by edges.
type Path []NodeID

// EnumeratePaths returns every simple path from src to dst using edges
// for which keep is true, up to the given limit (0 = no limit). Paths
// are produced in deterministic (lexicographic-by-edge-order) order.
// Intended for tests and for Property-1 validation on small graphs;
// the number of paths can be exponential in general.
func (g *Graph) EnumeratePaths(src, dst NodeID, keep func(EdgeID) bool, limit int) []Path {
	var (
		paths   []Path
		current = Path{src}
		onPath  = make([]bool, g.NumNodes())
	)
	onPath[src] = true
	var rec func(u NodeID) bool // returns false when limit reached
	rec = func(u NodeID) bool {
		if u == dst {
			cp := make(Path, len(current))
			copy(cp, current)
			paths = append(paths, cp)
			return limit == 0 || len(paths) < limit
		}
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			if onPath[v] {
				continue
			}
			onPath[v] = true
			current = append(current, v)
			ok := rec(v)
			current = current[:len(current)-1]
			onPath[v] = false
			if !ok {
				return false
			}
		}
		return true
	}
	rec(src)
	return paths
}

// PathEdges converts a path into its edge IDs; it returns ok=false if
// some consecutive pair is not connected.
func (g *Graph) PathEdges(p Path) ([]EdgeID, bool) {
	if len(p) < 2 {
		return nil, true
	}
	edges := make([]EdgeID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		e := g.EdgeBetween(p[i], p[i+1])
		if e == Invalid {
			return nil, false
		}
		edges = append(edges, e)
	}
	return edges, true
}
