package graph

import "errors"

// ErrCycle is returned when a topological order is requested on a graph
// (or subgraph) that contains a directed cycle.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order of all nodes, or ErrCycle.
func (g *Graph) TopoSort() ([]NodeID, error) {
	keep := func(EdgeID) bool { return true }
	return g.TopoSortFiltered(keep)
}

// TopoSortFiltered returns a topological order of all nodes considering
// only edges for which keep(e) is true. It returns ErrCycle when the
// kept subgraph is cyclic. Kahn's algorithm; ties broken by node ID so
// the order is deterministic.
func (g *Graph) TopoSortFiltered(keep func(EdgeID) bool) ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for e, edge := range g.edges {
		if keep(EdgeID(e)) {
			indeg[edge.To]++
		}
	}
	// Min-ID-first frontier for determinism. A simple sorted insertion
	// queue is fine at the graph sizes the simulator uses.
	frontier := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(frontier) > 0 {
		// Pop the smallest ID.
		minAt := 0
		for i, v := range frontier {
			if v < frontier[minAt] {
				minAt = i
			}
		}
		u := frontier[minAt]
		frontier[minAt] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, u)
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the kept subgraph has no directed cycle.
func (g *Graph) IsAcyclic(keep func(EdgeID) bool) bool {
	_, err := g.TopoSortFiltered(keep)
	return err == nil
}

// ReachableFrom returns the set of nodes reachable from src (inclusive)
// following edges for which keep is true.
func (g *Graph) ReachableFrom(src NodeID, keep func(EdgeID) bool) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CoReachableTo returns the set of nodes from which dst is reachable
// (inclusive) following edges for which keep is true.
func (g *Graph) CoReachableTo(dst NodeID, keep func(EdgeID) bool) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{dst}
	seen[dst] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].From
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// LongestPathLen returns the number of edges on the longest path in the
// kept subgraph, which must be acyclic (ErrCycle otherwise). This is
// the quantity L in the paper's O(L) message-round analysis (§6).
func (g *Graph) LongestPathLen(keep func(EdgeID) bool) (int, error) {
	order, err := g.TopoSortFiltered(keep)
	if err != nil {
		return 0, err
	}
	depth := make([]int, g.NumNodes())
	best := 0
	for _, u := range order {
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			if d := depth[u] + 1; d > depth[v] {
				depth[v] = d
				if d > best {
					best = d
				}
			}
		}
	}
	return best, nil
}
