package graph

import "errors"

// ErrCycle is returned when a topological order is requested on a graph
// (or subgraph) that contains a directed cycle.
var ErrCycle = errors.New("graph: cycle detected")

// TopoSort returns a topological order of all nodes, or ErrCycle.
func (g *Graph) TopoSort() ([]NodeID, error) {
	keep := func(EdgeID) bool { return true }
	return g.TopoSortFiltered(keep)
}

// TopoSortFiltered returns a topological order of all nodes considering
// only edges for which keep(e) is true. It returns ErrCycle when the
// kept subgraph is cyclic. Kahn's algorithm; ties broken by node ID so
// the order is deterministic. The frontier is a min-heap on node ID:
// wide graphs (many simultaneous zero-indegree nodes — e.g. thousands
// of commodity sources) keep the whole width in the frontier, so a
// linear-scan pop would make the sort quadratic.
func (g *Graph) TopoSortFiltered(keep func(EdgeID) bool) ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for e, edge := range g.edges {
		if keep(EdgeID(e)) {
			indeg[edge.To]++
		}
	}
	// Two frontier fronts: the initially-free nodes are generated in
	// ascending ID order and consumed by index, while nodes freed
	// during the sweep go through a min-heap. Popping the smaller head
	// of the two preserves exact min-ID-first order while keeping the
	// (often dominant) initially-free majority at O(1) per node —
	// filtered sorts keep only one commodity's edges, leaving nearly
	// every node free from the start.
	initial := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			initial = append(initial, NodeID(i))
		}
	}
	var freed nodeMinHeap
	next := 0
	order := make([]NodeID, 0, n)
	for next < len(initial) || len(freed) > 0 {
		var u NodeID
		if next < len(initial) && (len(freed) == 0 || initial[next] < freed[0]) {
			u = initial[next]
			next++
		} else {
			u = freed.pop()
		}
		order = append(order, u)
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			indeg[v]--
			if indeg[v] == 0 {
				freed.push(v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// nodeMinHeap is a binary min-heap of node IDs backing the topological
// sort's deterministic min-ID-first frontier.
type nodeMinHeap []NodeID

func (h *nodeMinHeap) push(v NodeID) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *nodeMinHeap) pop() NodeID {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l] < s[min] {
			min = l
		}
		if r < len(s) && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// IsAcyclic reports whether the kept subgraph has no directed cycle.
func (g *Graph) IsAcyclic(keep func(EdgeID) bool) bool {
	_, err := g.TopoSortFiltered(keep)
	return err == nil
}

// ReachableFrom returns the set of nodes reachable from src (inclusive)
// following edges for which keep is true.
func (g *Graph) ReachableFrom(src NodeID, keep func(EdgeID) bool) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// CoReachableTo returns the set of nodes from which dst is reachable
// (inclusive) following edges for which keep is true.
func (g *Graph) CoReachableTo(dst NodeID, keep func(EdgeID) bool) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []NodeID{dst}
	seen[dst] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].From
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// LongestPathLen returns the number of edges on the longest path in the
// kept subgraph, which must be acyclic (ErrCycle otherwise). This is
// the quantity L in the paper's O(L) message-round analysis (§6).
func (g *Graph) LongestPathLen(keep func(EdgeID) bool) (int, error) {
	order, err := g.TopoSortFiltered(keep)
	if err != nil {
		return 0, err
	}
	depth := make([]int, g.NumNodes())
	best := 0
	for _, u := range order {
		for _, e := range g.out[u] {
			if !keep(e) {
				continue
			}
			v := g.edges[e].To
			if d := depth[u] + 1; d > depth[v] {
				depth[v] = d
				if d > best {
					best = d
				}
			}
		}
	}
	return best, nil
}
