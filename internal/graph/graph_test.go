package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, from, to NodeID) EdgeID {
	t.Helper()
	e, err := g.AddEdge(from, to)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
	}
	return e
}

// diamond builds 0 -> {1,2} -> 3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4, 4)
	g.AddNodes(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(0, 0)
	for want := 0; want < 5; want++ {
		if got := g.AddNode(); got != NodeID(want) {
			t.Fatalf("AddNode = %d, want %d", got, want)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAddNodesReturnsFirstID(t *testing.T) {
	g := New(0, 0)
	g.AddNode()
	first := g.AddNodes(3)
	if first != 1 {
		t.Fatalf("AddNodes first = %d, want 1", first)
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
}

func TestAddEdgeRejectsDuplicates(t *testing.T) {
	g := New(2, 1)
	g.AddNodes(2)
	mustEdge(t, g, 0, 1)
	if _, err := g.AddEdge(0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate AddEdge err = %v, want ErrDuplicateEdge", err)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(1, 0)
	g.AddNode()
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsUnknownNodes(t *testing.T) {
	g := New(1, 0)
	g.AddNode()
	if _, err := g.AddEdge(0, 7); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
	if _, err := g.AddEdge(-1, 0); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("err = %v, want ErrNoSuchNode", err)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := diamond(t)
	if e := g.EdgeBetween(0, 1); e == Invalid {
		t.Fatal("EdgeBetween(0,1) = Invalid, want an edge")
	}
	if e := g.EdgeBetween(1, 0); e != Invalid {
		t.Fatalf("EdgeBetween(1,0) = %d, want Invalid", e)
	}
	if e := g.EdgeBetween(0, 3); e != Invalid {
		t.Fatalf("EdgeBetween(0,3) = %d, want Invalid", e)
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := diamond(t)
	if got := g.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Fatalf("InDegree(3) = %d, want 2", got)
	}
	if got := g.OutDegree(3); got != 0 {
		t.Fatalf("OutDegree(3) = %d, want 0", got)
	}
	for _, e := range g.Out(0) {
		if g.Edge(e).From != 0 {
			t.Fatalf("edge %d in Out(0) has From=%d", e, g.Edge(e).From)
		}
	}
	for _, e := range g.In(3) {
		if g.Edge(e).To != 3 {
			t.Fatalf("edge %d in In(3) has To=%d", e, g.Edge(e).To)
		}
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(EdgeID(e))
		if pos[edge.From] >= pos[edge.To] {
			t.Fatalf("edge (%d,%d) violates topological order %v", edge.From, edge.To, order)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := New(3, 3)
	g.AddNodes(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestTopoSortFilteredBreaksCycle(t *testing.T) {
	g := New(3, 3)
	g.AddNodes(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	back := mustEdge(t, g, 2, 0)
	order, err := g.TopoSortFiltered(func(e EdgeID) bool { return e != back })
	if err != nil {
		t.Fatalf("filtered sort: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("order has %d nodes, want 3", len(order))
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond(t)
	first, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d: order %v != %v", i, again, first)
			}
		}
	}
}

func TestIsAcyclic(t *testing.T) {
	g := diamond(t)
	all := func(EdgeID) bool { return true }
	if !g.IsAcyclic(all) {
		t.Fatal("diamond reported cyclic")
	}
	mustEdge(t, g, 3, 0)
	if g.IsAcyclic(all) {
		t.Fatal("cycle not detected")
	}
}

func TestReachability(t *testing.T) {
	g := diamond(t)
	extra := g.AddNode() // disconnected node 4
	all := func(EdgeID) bool { return true }
	fromZero := g.ReachableFrom(0, all)
	for n := NodeID(0); n <= 3; n++ {
		if !fromZero[n] {
			t.Fatalf("node %d not reachable from 0", n)
		}
	}
	if fromZero[extra] {
		t.Fatal("disconnected node reported reachable")
	}
	toSink := g.CoReachableTo(3, all)
	for n := NodeID(0); n <= 3; n++ {
		if !toSink[n] {
			t.Fatalf("node %d not co-reachable to 3", n)
		}
	}
	if toSink[extra] {
		t.Fatal("disconnected node reported co-reachable")
	}
}

func TestReachabilityRespectsFilter(t *testing.T) {
	g := diamond(t)
	// Drop both edges into node 3.
	keep := func(e EdgeID) bool { return g.Edge(e).To != 3 }
	r := g.ReachableFrom(0, keep)
	if r[3] {
		t.Fatal("node 3 reachable despite filtered edges")
	}
	if !r[1] || !r[2] {
		t.Fatal("nodes 1,2 should stay reachable")
	}
}

func TestLongestPathLen(t *testing.T) {
	g := New(5, 5)
	g.AddNodes(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 0, 4)
	mustEdge(t, g, 4, 3)
	all := func(EdgeID) bool { return true }
	l, err := g.LongestPathLen(all)
	if err != nil {
		t.Fatal(err)
	}
	if l != 3 {
		t.Fatalf("LongestPathLen = %d, want 3", l)
	}
}

func TestLongestPathLenCycle(t *testing.T) {
	g := New(2, 2)
	g.AddNodes(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	all := func(EdgeID) bool { return true }
	if _, err := g.LongestPathLen(all); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestEnumeratePathsDiamond(t *testing.T) {
	g := diamond(t)
	all := func(EdgeID) bool { return true }
	paths := g.EnumeratePaths(0, 3, all, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("path %v does not go 0->3", p)
		}
		if _, ok := g.PathEdges(p); !ok {
			t.Fatalf("path %v not edge-connected", p)
		}
	}
}

func TestEnumeratePathsLimit(t *testing.T) {
	g := diamond(t)
	all := func(EdgeID) bool { return true }
	paths := g.EnumeratePaths(0, 3, all, 1)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (limit)", len(paths))
	}
}

func TestEnumeratePathsNoPath(t *testing.T) {
	g := diamond(t)
	all := func(EdgeID) bool { return true }
	if paths := g.EnumeratePaths(3, 0, all, 0); len(paths) != 0 {
		t.Fatalf("got %d paths from 3 to 0, want 0", len(paths))
	}
}

func TestPathEdgesRejectsBrokenPath(t *testing.T) {
	g := diamond(t)
	if _, ok := g.PathEdges(Path{0, 3}); ok {
		t.Fatal("PathEdges accepted a non-adjacent pair")
	}
	if _, ok := g.PathEdges(Path{2}); !ok {
		t.Fatal("single-node path should be valid")
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	// Mutating the clone must not affect the original.
	c.AddNode()
	mustEdge(t, c, 3, 4)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatal("mutating clone affected original")
	}
	for e := 0; e < g.NumEdges(); e++ {
		if g.Edge(EdgeID(e)) != c.Edge(EdgeID(e)) {
			t.Fatalf("edge %d differs after clone", e)
		}
	}
}

// randomDAG builds a random DAG by only adding forward edges in a
// random permutation, so TopoSort must always succeed on it.
func randomDAG(r *rand.Rand, n int, p float64) *Graph {
	g := New(n, n*n/4)
	g.AddNodes(n)
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				// Ignore error: duplicates cannot occur here.
				_, _ = g.AddEdge(NodeID(perm[i]), NodeID(perm[j]))
			}
		}
	}
	return g
}

func TestQuickTopoSortValidOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(30), 0.3)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[NodeID]int, len(order))
		for i, n := range order {
			pos[n] = i
		}
		if len(pos) != g.NumNodes() {
			return false
		}
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(EdgeID(e))
			if pos[edge.From] >= pos[edge.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReachabilityAgreesWithPaths(t *testing.T) {
	all := func(EdgeID) bool { return true }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(10), 0.35)
		src := NodeID(r.Intn(g.NumNodes()))
		reach := g.ReachableFrom(src, all)
		for n := 0; n < g.NumNodes(); n++ {
			paths := g.EnumeratePaths(src, NodeID(n), all, 1)
			hasPath := len(paths) > 0 || NodeID(n) == src
			if reach[n] != hasPath {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoReachableIsReverseReachable(t *testing.T) {
	all := func(EdgeID) bool { return true }
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(20), 0.3)
		dst := NodeID(r.Intn(g.NumNodes()))
		co := g.CoReachableTo(dst, all)
		for n := 0; n < g.NumNodes(); n++ {
			fwd := g.ReachableFrom(NodeID(n), all)
			if co[n] != fwd[dst] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// referenceTopoSort is the O(n²) min-ID-first Kahn's algorithm the
// two-front frontier replaced: pop the smallest zero-indegree ID by
// linear scan. It defines the order contract the fast path must match
// exactly — solver trajectories depend on it bitwise.
func referenceTopoSort(g *Graph, keep func(EdgeID) bool) ([]NodeID, error) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for e := 0; e < g.NumEdges(); e++ {
		if keep(EdgeID(e)) {
			indeg[g.Edge(EdgeID(e)).To]++
		}
	}
	frontier := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(frontier) > 0 {
		minAt := 0
		for i, v := range frontier {
			if v < frontier[minAt] {
				minAt = i
			}
		}
		u := frontier[minAt]
		frontier[minAt] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, u)
		for _, e := range g.Out(u) {
			if !keep(e) {
				continue
			}
			v := g.Edge(e).To
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// TestQuickTopoSortMatchesReference pins the heap-frontier sort to the
// naive min-ID-first order on random DAGs, both unfiltered and under a
// random edge filter (the per-commodity subgraph case where most nodes
// start free).
func TestQuickTopoSortMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(40), 0.3)
		kept := make([]bool, g.NumEdges())
		for e := range kept {
			kept[e] = r.Float64() < 0.5
		}
		for _, keep := range []func(EdgeID) bool{
			func(EdgeID) bool { return true },
			func(e EdgeID) bool { return kept[e] },
		} {
			want, err1 := referenceTopoSort(g, keep)
			got, err2 := g.TopoSortFiltered(keep)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				continue
			}
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
