// Package graph provides the directed-graph substrate used by the
// stream-processing model: adjacency bookkeeping, DAG validation,
// topological ordering, and reachability queries.
//
// Nodes are dense integer IDs assigned by the graph; callers keep their
// own name→ID maps (internal/stream does exactly that). Edges are also
// dense integer IDs so per-edge attributes (bandwidth, shrinkage,
// consumption) can live in parallel slices owned by the caller.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes-1.
type NodeID int

// EdgeID identifies an edge within one Graph. IDs are dense: 0..NumEdges-1.
type EdgeID int

// Invalid is returned by lookups that find nothing.
const Invalid = -1

// Edge is a directed edge From -> To.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is a mutable directed graph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation.
type Graph struct {
	edges []Edge
	out   [][]EdgeID // out[n] = edges leaving n
	in    [][]EdgeID // in[n]  = edges entering n
	index map[Edge]EdgeID
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		edges: make([]Edge, 0, m),
		out:   make([][]EdgeID, 0, n),
		in:    make([][]EdgeID, 0, n),
		index: make(map[Edge]EdgeID, m),
	}
}

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.out) - 1)
}

// AddNodes appends n nodes and returns the ID of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.out))
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return first
}

// ErrDuplicateEdge is returned by AddEdge for an edge that already exists.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ErrNoSuchNode is returned when an endpoint is out of range.
var ErrNoSuchNode = errors.New("graph: no such node")

// AddEdge inserts the directed edge from -> to and returns its ID.
// Self-loops are rejected: the stream model never needs them and they
// would break per-commodity DAG validation.
func (g *Graph) AddEdge(from, to NodeID) (EdgeID, error) {
	if !g.HasNode(from) || !g.HasNode(to) {
		return Invalid, fmt.Errorf("%w: edge (%d,%d)", ErrNoSuchNode, from, to)
	}
	if from == to {
		return Invalid, fmt.Errorf("graph: self-loop on node %d", from)
	}
	key := Edge{From: from, To: to}
	if _, ok := g.index[key]; ok {
		return Invalid, fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, from, to)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, key)
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.index[key] = id
	return id, nil
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// HasNode reports whether n is a valid node ID.
func (g *Graph) HasNode(n NodeID) bool { return n >= 0 && int(n) < len(g.out) }

// Edge returns the endpoints of edge e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// EdgeBetween returns the edge from -> to, or Invalid if absent.
func (g *Graph) EdgeBetween(from, to NodeID) EdgeID {
	if id, ok := g.index[Edge{From: from, To: to}]; ok {
		return id
	}
	return Invalid
}

// Out returns the IDs of edges leaving n. The slice is owned by the
// graph; callers must not modify it.
func (g *Graph) Out(n NodeID) []EdgeID { return g.out[n] }

// In returns the IDs of edges entering n. The slice is owned by the
// graph; callers must not modify it.
func (g *Graph) In(n NodeID) []EdgeID { return g.in[n] }

// OutDegree reports the number of edges leaving n.
func (g *Graph) OutDegree(n NodeID) int { return len(g.out[n]) }

// InDegree reports the number of edges entering n.
func (g *Graph) InDegree(n NodeID) int { return len(g.in[n]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.NumNodes(), g.NumEdges())
	c.AddNodes(g.NumNodes())
	for _, e := range g.edges {
		if _, err := c.AddEdge(e.From, e.To); err != nil {
			// The source graph cannot contain duplicates or bad
			// endpoints, so this is unreachable.
			panic(err)
		}
	}
	return c
}
