// Package journal is the admission server's crash-safe flight
// recorder: an append-only log of every accepted mutation and every
// published snapshot digest, with periodic full stream.Problem
// checkpoints, size-based segment rotation, a configurable fsync
// policy, and recovery that tolerates a torn tail record.
//
// The on-disk format is a directory of numbered segment files
// ("journal-00000000.wal", "journal-00000001.wal", ...). Each segment
// is a sequence of length-prefixed, CRC-framed JSON records:
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//
// and always begins with a header record naming the journal instance,
// the segment index, and an optional compiled-workload SHA-256 for
// provenance. A process killed mid-write leaves at most one partial
// frame at the tail of its last segment; readers detect it (length or
// CRC check fails) and drop it. Recovery then appends a fresh segment
// over the tear without rewriting old bytes, so a tear is tolerated
// both at the journal's overall tail and at the tail of any segment
// whose successor was opened by a different writer. A bad frame
// anywhere else is real corruption and fails the read: the writer
// syncs a segment before rotating, so nothing legitimate tears
// mid-history under a single writer.
//
// Three record kinds carry the decision trajectory:
//
//   - checkpoint: a full problem serialization at a revision. The
//     server writes one at boot (Restart=true, carrying its effective
//     solver parameters) and every CheckpointEvery accepted mutations.
//   - mutation: one accepted mutation batch — rev, wall+monotonic
//     time, operation kind, target, payload, and the decision trace ID.
//   - digest: one published snapshot — generation, rev, warm/cold,
//     iterations, convergence, utility, a hash of the admitted set,
//     and the admission flips it caused.
//
// Because the solver is bitwise-deterministic (PR 4), replaying the
// mutations of a journal through a fresh server — one solve per
// recorded digest — must reproduce every digest exactly; internal/
// replay and cmd/replay turn that into a verification gate.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/stream"
)

// Version is the on-disk format version stamped into segment headers.
const Version = 1

// Kind discriminates journal records.
type Kind string

// The record kinds.
const (
	KindHeader     Kind = "header"
	KindCheckpoint Kind = "checkpoint"
	KindMutation   Kind = "mutation"
	KindDigest     Kind = "digest"
)

// Mutation operation names. These match the `kind` labels
// internal/server feeds the obs recorder, so a journal and an event
// stream from the same run agree on vocabulary.
const (
	OpAddCommodity    = "add_commodity"
	OpRemoveCommodity = "remove_commodity"
	OpSetRate         = "set_rate"
	OpSetRates        = "set_rates"
	OpSetUtility      = "set_utility"
	OpSetCapacity     = "set_capacity"
	OpSetBandwidth    = "set_bandwidth"
	OpScaleCapacity   = "scale_capacity"
	OpScaleBandwidth  = "scale_bandwidth"
)

// Record is one journal entry. Exactly one of Header, Checkpoint,
// Mutation, Digest is set, per Kind. The Writer stamps WallUnixNano
// and MonoNanos (nanoseconds since the writer opened) on append when
// they are zero, so records rewritten from an existing journal keep
// their original clocks.
type Record struct {
	Kind         Kind   `json:"kind"`
	Rev          int64  `json:"rev,omitempty"`
	WallUnixNano int64  `json:"wallUnixNano,omitempty"`
	MonoNanos    int64  `json:"monoNanos,omitempty"`
	Trace        string `json:"trace,omitempty"`

	Header     *Header     `json:"header,omitempty"`
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	Mutation   *Mutation   `json:"mutation,omitempty"`
	Digest     *Digest     `json:"digest,omitempty"`
}

// Header opens every segment.
type Header struct {
	Version   int    `json:"version"`
	JournalID string `json:"journalId"` // random per Writer; ties segments of one run together
	Segment   int    `json:"segment"`
	// StreamSHA is the compiled workload's event-stream SHA-256 when
	// the journal was recorded by a loadgen drive — provenance linking
	// the journal to the exact scenario bytes that produced it.
	StreamSHA string `json:"streamSha,omitempty"`
}

// SolverParams are the server's effective solver knobs, recorded on
// restart checkpoints so a replay solves with identical arithmetic.
type SolverParams struct {
	Epsilon       float64 `json:"epsilon"`
	Eta           float64 `json:"eta"`
	MaxIters      int     `json:"maxIters"`
	StationaryTol float64 `json:"stationaryTol"`
	// Workers is informational: PR 4 guarantees bitwise-identical
	// trajectories at any worker count.
	Workers int `json:"workers,omitempty"`

	// Shard topology of the recording server: shard count, placement
	// salt, and the price-exchange cadence/damping of the dual
	// decomposition. Zero on single-engine servers (and on journals
	// from before sharding existed — the omitted fields decode to the
	// unsharded defaults), so replay re-boots every run with the
	// topology that recorded it.
	Shards             int     `json:"shards,omitempty"`
	PlacementSalt      uint64  `json:"placementSalt,omitempty"`
	PriceExchangeEvery int     `json:"priceExchangeEvery,omitempty"`
	PriceDamping       float64 `json:"priceDamping,omitempty"`
}

// Checkpoint is a full problem serialization at Record.Rev. Restart
// marks the first checkpoint of a server run (fresh boot or recovery);
// replay starts a fresh in-proc server there, and generations restart
// at 1 — matching what the real restarted server did. Non-restart
// checkpoints are recovery accelerators and replay cross-checks.
type Checkpoint struct {
	Problem json.RawMessage `json:"problem"`
	Restart bool            `json:"restart,omitempty"`
	Solver  *SolverParams   `json:"solver,omitempty"` // set on restart checkpoints
}

// Mutation is one accepted mutation batch.
type Mutation struct {
	Op      string          `json:"op"`
	Target  string          `json:"target,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Flip is one admitted↔rejected transition a generation caused, in
// snapshot commodity order.
type Flip struct {
	Commodity string `json:"commodity"`
	Admitted  bool   `json:"admitted"`
}

// Digest summarizes one published snapshot. Utility round-trips
// exactly through JSON (Go encodes the shortest representation that
// parses back to the same float64), so replay compares it with ==.
type Digest struct {
	Generation int64 `json:"generation"`
	Warm       bool  `json:"warm,omitempty"`
	Iterations int   `json:"iterations,omitempty"`
	Converged  bool  `json:"converged,omitempty"`
	// Drained marks a solve cut short by server shutdown: its
	// iteration count reflects when the drain landed, not solver
	// behavior, so replay verification skips the digest (it is always
	// the last of its run).
	Drained      bool    `json:"drained,omitempty"`
	Feasible     bool    `json:"feasible,omitempty"`
	Utility      float64 `json:"utility"`
	Commodities  int     `json:"commodities"`
	AdmittedHash string  `json:"admittedHash"`
	Flips        []Flip  `json:"flips,omitempty"`
}

// Mutation payload shapes. internal/server marshals these when
// journaling is on; Apply and the replay driver decode them.

// RatePayload carries OpSetRate.
type RatePayload struct {
	Rate float64 `json:"rate"`
}

// RatesPayload carries OpSetRates. Go's JSON encoder writes map keys
// sorted, so the recorded bytes are deterministic for a given batch.
type RatesPayload struct {
	Rates map[string]float64 `json:"rates"`
}

// CapacityPayload carries OpSetCapacity.
type CapacityPayload struct {
	Capacity float64 `json:"capacity"`
}

// ScalePayload carries OpScaleCapacity.
type ScalePayload struct {
	Factor float64 `json:"factor"`
}

// LinkPayload carries OpSetBandwidth (Bandwidth set) and
// OpScaleBandwidth (Factor set). The endpoints live in the payload —
// not parsed out of the "from->to" target label — so names containing
// "->" cannot corrupt a replay.
type LinkPayload struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
}

// AdmittedEntry is one commodity's admitted rate, input to
// AdmittedHash.
type AdmittedEntry struct {
	Name string
	Rate float64
}

// AdmittedHash is the canonical hash of an admitted set: SHA-256 over
// name-sorted (name, exact float64 bits) pairs. Two snapshots hash
// equal iff every commodity's admitted rate is bit-identical.
func AdmittedHash(entries []AdmittedEntry) string {
	sorted := make([]AdmittedEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := sha256.New()
	var buf [8]byte
	for _, e := range sorted {
		_, _ = h.Write([]byte(e.Name))
		_, _ = h.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Rate))
		_, _ = h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Apply replays one recorded mutation against a problem — the exact
// operation internal/server performed when it accepted the record.
// Recovery uses it to roll a checkpoint forward; mutations were
// validated before they were journaled, so an error here means the
// journal does not match the checkpoint (corruption or version skew).
func Apply(p *stream.Problem, m *Mutation) error {
	if m == nil {
		return fmt.Errorf("journal: nil mutation")
	}
	switch m.Op {
	case OpAddCommodity:
		_, err := p.AddCommodityFromJSON(m.Payload)
		return err
	case OpRemoveCommodity:
		if !p.RemoveCommodity(m.Target) {
			return fmt.Errorf("journal: unknown commodity %q", m.Target)
		}
		return nil
	case OpSetRate:
		var pl RatePayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		return p.SetMaxRate(m.Target, pl.Rate)
	case OpSetRates:
		var pl RatesPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		names := make([]string, 0, len(pl.Rates))
		for name := range pl.Rates {
			names = append(names, name)
		}
		sort.Strings(names) // same order server.SetMaxRates applies
		for _, name := range names {
			if err := p.SetMaxRate(name, pl.Rates[name]); err != nil {
				return err
			}
		}
		return nil
	case OpSetUtility:
		u, err := stream.ParseUtilityJSON(m.Payload)
		if err != nil {
			return err
		}
		return p.SetUtility(m.Target, u)
	case OpSetCapacity:
		var pl CapacityPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		return p.Net.SetCapacity(m.Target, pl.Capacity)
	case OpScaleCapacity:
		var pl ScalePayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		id, ok := p.Net.NodeByName(m.Target)
		if !ok {
			return fmt.Errorf("journal: unknown node %q", m.Target)
		}
		return p.Net.SetCapacity(m.Target, p.Net.Capacity[id]*pl.Factor)
	case OpSetBandwidth:
		var pl LinkPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		return p.Net.SetBandwidth(pl.From, pl.To, pl.Bandwidth)
	case OpScaleBandwidth:
		var pl LinkPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return fmt.Errorf("journal: %s payload: %w", m.Op, err)
		}
		f, ok := p.Net.NodeByName(pl.From)
		if !ok {
			return fmt.Errorf("journal: unknown node %q", pl.From)
		}
		t, ok := p.Net.NodeByName(pl.To)
		if !ok {
			return fmt.Errorf("journal: unknown node %q", pl.To)
		}
		e := p.Net.G.EdgeBetween(f, t)
		if e < 0 {
			return fmt.Errorf("journal: no link (%s,%s)", pl.From, pl.To)
		}
		return p.Net.SetBandwidth(pl.From, pl.To, p.Net.Bandwidth[e]*pl.Factor)
	default:
		return fmt.Errorf("journal: unknown mutation op %q", m.Op)
	}
}

// Framing constants.
const (
	frameHeaderLen = 8        // 4B length + 4B CRC32-C
	maxRecordBytes = 64 << 20 // sanity bound; a full checkpoint stays far below
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame renders one record as a framed byte slice.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	out := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	copy(out[frameHeaderLen:], payload)
	return out, nil
}
