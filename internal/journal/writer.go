package journal

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// FsyncPolicy controls when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) flushes+fsyncs when an append finds
	// FsyncEvery elapsed since the last sync — bounded data loss at
	// near-zero steady-state cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs every append. Durable to the last record,
	// pays a disk round-trip per mutation.
	FsyncAlways
	// FsyncNever leaves flushing to segment rotation and Close. A
	// crash loses the whole buffered tail; fine for benchmarks and
	// replay fixtures.
	FsyncNever
)

// ParseFsyncPolicy maps the CLI spelling ("interval", "always",
// "never") to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want interval, always, or never)", s)
}

// Options configures a Writer. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size. Default 64 MiB.
	SegmentBytes int64
	// Fsync is the durability policy; FsyncEvery is the interval for
	// FsyncInterval (default 100ms).
	Fsync      FsyncPolicy
	FsyncEvery time.Duration
	// StreamSHA is stamped into every segment header (see Header).
	StreamSHA string
	// TailRecords bounds the in-memory ring of recent records served
	// by Tail for diagnostics bundles. Default 256; <0 disables.
	TailRecords int
	// Registry, when non-nil, receives the journal gauges/counters
	// (streamopt_journal_*): appended records/bytes, fsyncs, current
	// segment, and the unsynced lag behind the last fsync.
	Registry *obs.Registry
}

func (o *Options) setDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.TailRecords == 0 {
		o.TailRecords = 256
	}
}

// Writer appends framed records to the journal directory. Safe for
// concurrent use: the server appends mutations under its own mutex and
// digests from the solver goroutine.
type Writer struct {
	dir   string
	opts  Options
	id    string
	birth time.Time

	mu       sync.Mutex
	f        *os.File
	buf      *bufio.Writer
	seg      int
	segSize  int64
	lagBytes int64 // appended but not yet fsynced
	lagRecs  int
	lastSync time.Time
	closed   bool

	tail     []Record
	tailNext int
	tailFull bool

	mRecords  *obs.Counter
	mBytes    *obs.Counter
	mFsyncs   *obs.Counter
	mSegment  *obs.Gauge
	mLagBytes *obs.Gauge
	mLagRecs  *obs.Gauge
}

// Create opens a writer over dir, creating it if needed. An existing
// journal is continued: the writer starts a fresh segment after the
// highest existing one and never rewrites old bytes, so recovery after
// a crash appends to the same history it just read.
func Create(dir string, opts Options) (*Writer, error) {
	opts.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	next := 0
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, fmt.Errorf("journal: id: %w", err)
	}
	w := &Writer{
		dir:      dir,
		opts:     opts,
		id:       hex.EncodeToString(idb[:]),
		birth:    time.Now(),
		seg:      next - 1, // openSegment increments
		lastSync: time.Now(),
	}
	if opts.TailRecords > 0 {
		w.tail = make([]Record, opts.TailRecords)
	}
	if reg := opts.Registry; reg != nil {
		w.mRecords = reg.Counter("streamopt_journal_records_total", "Records appended to the flight-recorder journal.")
		w.mBytes = reg.Counter("streamopt_journal_bytes_total", "Bytes appended to the flight-recorder journal.")
		w.mFsyncs = reg.Counter("streamopt_journal_fsyncs_total", "Journal fsync calls.")
		w.mSegment = reg.Gauge("streamopt_journal_segment", "Current journal segment index.")
		w.mLagBytes = reg.Gauge("streamopt_journal_unsynced_bytes", "Journal bytes appended but not yet fsynced.")
		w.mLagRecs = reg.Gauge("streamopt_journal_unsynced_records", "Journal records appended but not yet fsynced.")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// Dir reports the journal directory.
func (w *Writer) Dir() string { return w.dir }

// SegmentName renders a segment index as its file name.
func SegmentName(seg int) string { return fmt.Sprintf("journal-%08d.wal", seg) }

// openSegmentLocked starts the next segment and writes its header.
func (w *Writer) openSegmentLocked() error {
	w.seg++
	path := filepath.Join(w.dir, SegmentName(w.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.f = f
	w.buf = bufio.NewWriterSize(f, 1<<16)
	w.segSize = 0
	if w.mSegment != nil {
		w.mSegment.Set(float64(w.seg))
	}
	if err := w.appendLocked(&Record{
		Kind: KindHeader,
		Header: &Header{
			Version:   Version,
			JournalID: w.id,
			Segment:   w.seg,
			StreamSHA: w.opts.StreamSHA,
		},
	}); err != nil {
		return err
	}
	// Make the new segment's existence durable: fsync the directory so
	// a crash right after rotation cannot orphan the file name.
	if d, err := os.Open(w.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Append stamps and writes one record, applying the fsync policy and
// rotating segments as configured.
func (w *Writer) Append(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: writer closed")
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.syncLocked(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	return w.appendLocked(&rec)
}

// appendLocked frames and buffers one record, then applies the fsync
// policy.
func (w *Writer) appendLocked(rec *Record) error {
	if rec.WallUnixNano == 0 {
		rec.WallUnixNano = time.Now().UnixNano()
	}
	if rec.MonoNanos == 0 {
		rec.MonoNanos = time.Since(w.birth).Nanoseconds()
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := w.buf.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.segSize += int64(len(frame))
	w.lagBytes += int64(len(frame))
	w.lagRecs++
	if w.tail != nil {
		w.tail[w.tailNext] = *rec
		w.tailNext++
		if w.tailNext == len(w.tail) {
			w.tailNext = 0
			w.tailFull = true
		}
	}
	if w.mRecords != nil {
		w.mRecords.Inc()
		w.mBytes.Add(len(frame))
		w.mLagBytes.Set(float64(w.lagBytes))
		w.mLagRecs.Set(float64(w.lagRecs))
	}
	switch w.opts.Fsync {
	case FsyncAlways:
		return w.syncLocked()
	case FsyncInterval:
		if time.Since(w.lastSync) >= w.opts.FsyncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// Sync flushes buffered records and fsyncs the current segment.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w.lagBytes, w.lagRecs = 0, 0
	w.lastSync = time.Now()
	if w.mFsyncs != nil {
		w.mFsyncs.Inc()
		w.mLagBytes.Set(0)
		w.mLagRecs.Set(0)
	}
	return nil
}

// Lag reports the bytes and records appended since the last fsync —
// the most that a crash right now would lose.
func (w *Writer) Lag() (bytes int64, records int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lagBytes, w.lagRecs
}

// Segment reports the current segment index.
func (w *Writer) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Tail returns up to n of the most recently appended records, oldest
// first — the in-memory ring diagnostics bundles dump without touching
// the disk files.
func (w *Writer) Tail(n int) []Record {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tail == nil || n <= 0 {
		return nil
	}
	var out []Record
	if w.tailFull {
		out = append(out, w.tail[w.tailNext:]...)
	}
	out = append(out, w.tail[:w.tailNext]...)
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Close syncs and closes the current segment. The writer is unusable
// afterwards.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: %w", cerr)
	}
	return err
}
