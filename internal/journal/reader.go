package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// Segments lists the segment indices present in dir, ascending. A
// missing directory is an empty journal, not an error.
func Segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".wal"))
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// HasJournal reports whether dir holds at least one journal segment.
func HasJournal(dir string) (bool, error) {
	segs, err := Segments(dir)
	return len(segs) > 0, err
}

// Log is a fully read journal.
type Log struct {
	Dir      string
	Segments []int
	Headers  []Header
	// Records holds the checkpoint/mutation/digest records in file
	// order (headers separated out above).
	Records []Record
	// Truncated reports that a torn frame was found — and dropped — at
	// the journal's tail: the expected shape after a crash mid-append.
	Truncated bool
	// TornSegments lists every segment whose tail held a dropped torn
	// frame. Beyond the overall tail, a tear is legal exactly when the
	// next segment was opened by a different writer (a restart after
	// the crash that tore it); same-writer mid-journal tears are
	// corruption, because the writer syncs a segment before rotating.
	TornSegments []int
}

// StreamSHA returns the compiled-workload hash from the first header
// ("" when the journal was not recorded by a loadgen drive).
func (l *Log) StreamSHA() string {
	if len(l.Headers) == 0 {
		return ""
	}
	return l.Headers[0].StreamSHA
}

// ReadDir reads every segment of the journal at dir. A torn tail
// record is tolerated in the last segment (Log.Truncated) and in any
// segment whose successor was opened by a different writer — the
// shape a crash leaves after the daemon restarts and appends a fresh
// segment over the tear. A tear followed by the same writer's next
// segment is corruption and fails: the writer syncs a segment before
// rotating, so nothing legitimate tears there.
func ReadDir(dir string) (*Log, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: no segments in %s", dir)
	}
	// Read every segment up front: a tear's legality depends on who
	// wrote the segment after it.
	type segData struct {
		recs []Record
		torn *tear
	}
	data := make([]segData, len(segs))
	for i, seg := range segs {
		recs, torn, err := readSegment(filepath.Join(dir, SegmentName(seg)))
		if err != nil {
			return nil, err
		}
		data[i] = segData{recs: recs, torn: torn}
	}
	// A trailing segment with no complete records is a boot crash: the
	// writer created the file (and fsynced the directory) but died
	// before its buffered header reached disk. Drop it — possibly
	// repeatedly, if a crash loop left several.
	log := &Log{Dir: dir, Segments: segs}
	for len(data) > 0 && len(data[len(data)-1].recs) == 0 {
		log.Truncated = true
		log.TornSegments = append(log.TornSegments, segs[len(data)-1])
		data = data[:len(data)-1]
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("journal: no complete records in %s", dir)
	}
	headerOf := func(i int) (*Header, error) {
		recs := data[i].recs
		if len(recs) == 0 {
			// Mid-journal empty segment: an abandoned boot-crash file
			// with a later boot's segment after it. Nothing was lost —
			// the dead writer never wrote a durable record.
			return nil, nil
		}
		if recs[0].Kind != KindHeader || recs[0].Header == nil {
			return nil, fmt.Errorf("journal: segment %d lacks a header record", segs[i])
		}
		if recs[0].Header.Segment != segs[i] {
			return nil, fmt.Errorf("journal: segment %d header names segment %d", segs[i], recs[0].Header.Segment)
		}
		return recs[0].Header, nil
	}
	for i := range data {
		hdr, err := headerOf(i)
		if err != nil {
			return nil, err
		}
		if hdr == nil {
			log.TornSegments = append(log.TornSegments, segs[i])
			continue
		}
		if t := data[i].torn; t != nil {
			last := i == len(data)-1
			if !last {
				next, err := headerOf(i + 1)
				if err != nil {
					return nil, err
				}
				// A nil next header is itself a dead writer's empty
				// segment — a different writer by construction.
				if next != nil && next.JournalID == hdr.JournalID {
					return nil, fmt.Errorf("journal: %s at %s:%d (mid-journal corruption)",
						t.why, SegmentName(segs[i]), t.off)
				}
			}
			log.Truncated = log.Truncated || last
			log.TornSegments = append(log.TornSegments, segs[i])
		}
		log.Headers = append(log.Headers, *hdr)
		for _, r := range data[i].recs[1:] {
			if r.Kind == KindHeader {
				return nil, fmt.Errorf("journal: segment %d has a stray mid-segment header", segs[i])
			}
			log.Records = append(log.Records, r)
		}
	}
	return log, nil
}

// tear locates a dropped torn frame within a segment.
type tear struct {
	off int
	why string
}

// readSegment decodes one segment file. A short or CRC-failing frame
// terminates the read cleanly with the tear's position; ReadDir
// decides whether that tear is a tolerable crash artifact or
// mid-journal corruption.
func readSegment(path string) (recs []Record, torn *tear, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return recs, &tear{off, "partial frame header"}, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			return recs, &tear{off, "implausible frame length"}, nil
		}
		if len(data)-off-frameHeaderLen < n {
			return recs, &tear{off, "partial frame payload"}, nil
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, &tear{off, "frame CRC mismatch"}, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The CRC passed, so these are the bytes that were written;
			// an undecodable record is corruption (or version skew)
			// wherever it sits.
			return nil, nil, fmt.Errorf("journal: undecodable record at %s:%d: %w", filepath.Base(path), off, err)
		}
		recs = append(recs, rec)
		off += frameHeaderLen + n
	}
	return recs, nil, nil
}

// Recovered is the reconstructed server state after a crash: the last
// checkpoint rolled forward through every later journaled mutation.
type Recovered struct {
	Log *Log
	// Problem is the desired problem at the journal tail — what the
	// crashed server held under its mutex, minus any unsynced loss.
	Problem *stream.Problem
	// Rev is the revision of Problem (the last checkpoint's or last
	// mutation's revision, whichever is later).
	Rev int64
	// CheckpointRev and MutationsApplied describe the roll-forward.
	CheckpointRev    int64
	MutationsApplied int
	// Solver holds the solver knobs and shard topology from the newest
	// restart checkpoint, so a recovering server can boot with the same
	// configuration that recorded the journal tail. Nil on journals
	// whose restart checkpoints predate solver-param recording.
	Solver *SolverParams
}

// Recover reads the journal and rebuilds the problem the server should
// boot with: parse the newest checkpoint, then Apply every mutation
// journaled after it. The caller starts a fresh server over the result
// and keeps appending to the same directory; the server's boot
// checkpoint (Restart=true) marks the epoch boundary for replay.
func Recover(dir string) (*Recovered, error) {
	log, err := ReadDir(dir)
	if err != nil {
		return nil, err
	}
	cpIdx := -1
	var solver *SolverParams
	for i, r := range log.Records {
		if r.Kind == KindCheckpoint {
			cpIdx = i
			if r.Checkpoint.Solver != nil {
				solver = r.Checkpoint.Solver
			}
		}
	}
	if cpIdx < 0 {
		return nil, fmt.Errorf("journal: no checkpoint in %s", dir)
	}
	cp := log.Records[cpIdx]
	p, err := stream.ParseProblem(cp.Checkpoint.Problem)
	if err != nil {
		return nil, fmt.Errorf("journal: checkpoint at rev %d: %w", cp.Rev, err)
	}
	out := &Recovered{Log: log, Problem: p, Rev: cp.Rev, CheckpointRev: cp.Rev, Solver: solver}
	for _, r := range log.Records[cpIdx+1:] {
		if r.Kind != KindMutation {
			continue
		}
		if err := Apply(p, r.Mutation); err != nil {
			return nil, fmt.Errorf("journal: replaying mutation rev %d (%s %s): %w",
				r.Rev, r.Mutation.Op, r.Mutation.Target, err)
		}
		out.Rev = r.Rev
		out.MutationsApplied++
	}
	return out, nil
}

// CopyTo re-appends records through a fresh writer — the test hook for
// building fixture journals (e.g. deliberately corrupting one digest to
// prove the replay verifier pinpoints it). Timestamps are preserved:
// Append only stamps zero clocks.
func CopyTo(w *Writer, recs []Record) error {
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}
