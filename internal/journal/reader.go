package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// Segments lists the segment indices present in dir, ascending. A
// missing directory is an empty journal, not an error.
func Segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".wal"))
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// HasJournal reports whether dir holds at least one journal segment.
func HasJournal(dir string) (bool, error) {
	segs, err := Segments(dir)
	return len(segs) > 0, err
}

// Log is a fully read journal.
type Log struct {
	Dir      string
	Segments []int
	Headers  []Header
	// Records holds the checkpoint/mutation/digest records in file
	// order (headers separated out above).
	Records []Record
	// Truncated reports that a torn frame was found — and dropped — at
	// the tail of the last segment: the expected shape after a crash
	// mid-append.
	Truncated bool
}

// StreamSHA returns the compiled-workload hash from the first header
// ("" when the journal was not recorded by a loadgen drive).
func (l *Log) StreamSHA() string {
	if len(l.Headers) == 0 {
		return ""
	}
	return l.Headers[0].StreamSHA
}

// ReadDir reads every segment of the journal at dir. A torn tail
// record in the last segment is tolerated (Log.Truncated); a bad frame
// anywhere else is corruption and fails.
func ReadDir(dir string) (*Log, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: no segments in %s", dir)
	}
	log := &Log{Dir: dir, Segments: segs}
	for i, seg := range segs {
		last := i == len(segs)-1
		recs, truncated, err := readSegment(filepath.Join(dir, SegmentName(seg)), last)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 || recs[0].Kind != KindHeader || recs[0].Header == nil {
			return nil, fmt.Errorf("journal: segment %d lacks a header record", seg)
		}
		if recs[0].Header.Segment != seg {
			return nil, fmt.Errorf("journal: segment %d header names segment %d", seg, recs[0].Header.Segment)
		}
		log.Headers = append(log.Headers, *recs[0].Header)
		for _, r := range recs[1:] {
			if r.Kind == KindHeader {
				return nil, fmt.Errorf("journal: segment %d has a stray mid-segment header", seg)
			}
			log.Records = append(log.Records, r)
		}
		log.Truncated = log.Truncated || truncated
	}
	return log, nil
}

// readSegment decodes one segment file. When last is true, a short or
// CRC-failing frame at the tail terminates the read cleanly (truncated
// = true) instead of failing: that is what a crash mid-append leaves
// behind. The same anomaly in a non-last segment is real corruption.
func readSegment(path string, last bool) (recs []Record, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("journal: %w", err)
	}
	off := 0
	torn := func(at int, why string) ([]Record, bool, error) {
		if last {
			return recs, true, nil
		}
		return nil, false, fmt.Errorf("journal: %s at %s:%d (mid-journal corruption)", why, filepath.Base(path), at)
	}
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return torn(off, "partial frame header")
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			return torn(off, "implausible frame length")
		}
		if len(data)-off-frameHeaderLen < n {
			return torn(off, "partial frame payload")
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return torn(off, "frame CRC mismatch")
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The CRC passed, so these are the bytes that were written;
			// an undecodable record is corruption (or version skew)
			// wherever it sits.
			return nil, false, fmt.Errorf("journal: undecodable record at %s:%d: %w", filepath.Base(path), off, err)
		}
		recs = append(recs, rec)
		off += frameHeaderLen + n
	}
	return recs, false, nil
}

// Recovered is the reconstructed server state after a crash: the last
// checkpoint rolled forward through every later journaled mutation.
type Recovered struct {
	Log *Log
	// Problem is the desired problem at the journal tail — what the
	// crashed server held under its mutex, minus any unsynced loss.
	Problem *stream.Problem
	// Rev is the revision of Problem (the last checkpoint's or last
	// mutation's revision, whichever is later).
	Rev int64
	// CheckpointRev and MutationsApplied describe the roll-forward.
	CheckpointRev    int64
	MutationsApplied int
}

// Recover reads the journal and rebuilds the problem the server should
// boot with: parse the newest checkpoint, then Apply every mutation
// journaled after it. The caller starts a fresh server over the result
// and keeps appending to the same directory; the server's boot
// checkpoint (Restart=true) marks the epoch boundary for replay.
func Recover(dir string) (*Recovered, error) {
	log, err := ReadDir(dir)
	if err != nil {
		return nil, err
	}
	cpIdx := -1
	for i, r := range log.Records {
		if r.Kind == KindCheckpoint {
			cpIdx = i
		}
	}
	if cpIdx < 0 {
		return nil, fmt.Errorf("journal: no checkpoint in %s", dir)
	}
	cp := log.Records[cpIdx]
	p, err := stream.ParseProblem(cp.Checkpoint.Problem)
	if err != nil {
		return nil, fmt.Errorf("journal: checkpoint at rev %d: %w", cp.Rev, err)
	}
	out := &Recovered{Log: log, Problem: p, Rev: cp.Rev, CheckpointRev: cp.Rev}
	for _, r := range log.Records[cpIdx+1:] {
		if r.Kind != KindMutation {
			continue
		}
		if err := Apply(p, r.Mutation); err != nil {
			return nil, fmt.Errorf("journal: replaying mutation rev %d (%s %s): %w",
				r.Rev, r.Mutation.Op, r.Mutation.Target, err)
		}
		out.Rev = r.Rev
		out.MutationsApplied++
	}
	return out, nil
}

// CopyTo re-appends records through a fresh writer — the test hook for
// building fixture journals (e.g. deliberately corrupting one digest to
// prove the replay verifier pinpoints it). Timestamps are preserved:
// Append only stamps zero clocks.
func CopyTo(w *Writer, recs []Record) error {
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}
