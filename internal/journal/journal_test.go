package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/utility"
)

// toyProblem builds the same two-server chain the server tests use.
func toyProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	a, err := net.AddServer("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddServer("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := net.AddSink("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.AddSink("t2")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := net.AddLink(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	bt1, err := net.AddLink(b, t1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(b, t2, 10); err != nil {
		t.Fatal(err)
	}
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, ab, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, bt1, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{StreamSHA: "cafe", Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{
			Problem: pj, Restart: true,
			Solver: &SolverParams{Epsilon: 0.05, Eta: 0.1, MaxIters: 500, StationaryTol: 1e-3},
		}},
		{Kind: KindMutation, Rev: 2, Trace: "0123456789abcdef0123456789abcdef", Mutation: &Mutation{
			Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 4}),
		}},
		{Kind: KindDigest, Rev: 2, Digest: &Digest{
			Generation: 1, Warm: true, Iterations: 42, Converged: true, Feasible: true,
			Utility: 3.25, Commodities: 1, AdmittedHash: "abc",
			Flips: []Flip{{Commodity: "c1", Admitted: true}},
		}},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated {
		t.Fatal("clean journal reported truncated")
	}
	if len(log.Headers) != 1 || log.Headers[0].Version != Version || log.Headers[0].Segment != 0 {
		t.Fatalf("headers = %+v", log.Headers)
	}
	if got := log.StreamSHA(); got != "cafe" {
		t.Fatalf("StreamSHA = %q, want cafe", got)
	}
	if len(log.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(log.Records))
	}
	cp := log.Records[0]
	if cp.Kind != KindCheckpoint || !cp.Checkpoint.Restart || cp.Checkpoint.Solver.MaxIters != 500 {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if cp.WallUnixNano == 0 || cp.MonoNanos == 0 {
		t.Fatal("writer did not stamp clocks")
	}
	mu := log.Records[1]
	if mu.Kind != KindMutation || mu.Mutation.Op != OpSetRate || mu.Trace == "" {
		t.Fatalf("mutation = %+v", mu)
	}
	dg := log.Records[2]
	if dg.Kind != KindDigest || dg.Digest.Utility != 3.25 || len(dg.Digest.Flips) != 1 {
		t.Fatalf("digest = %+v", dg)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 512, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		err := w.Append(Record{Kind: KindMutation, Rev: int64(i + 1), Mutation: &Mutation{
			Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: float64(i)}),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.Segment() < 2 {
		t.Fatalf("expected rotation past segment 1, at %d", w.Segment())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Segments) != len(log.Headers) {
		t.Fatalf("%d segments, %d headers", len(log.Segments), len(log.Headers))
	}
	if len(log.Segments) < 3 {
		t.Fatalf("expected >=3 segments, got %v", log.Segments)
	}
	for i, h := range log.Headers {
		if h.Segment != log.Segments[i] {
			t.Fatalf("header %d names segment %d", log.Segments[i], h.Segment)
		}
		if h.JournalID != log.Headers[0].JournalID {
			t.Fatal("segments of one run disagree on journal ID")
		}
	}
	if len(log.Records) != n {
		t.Fatalf("got %d records across segments, want %d", len(log.Records), n)
	}
	for i, r := range log.Records {
		if r.Rev != int64(i+1) {
			t.Fatalf("record %d has rev %d", i, r.Rev)
		}
	}
}

func TestCreateContinuesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	w1, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(Record{Kind: KindMutation, Rev: 1, Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Segment() != 1 {
		t.Fatalf("second writer started at segment %d, want 1", w2.Segment())
	}
	if err := w2.Append(Record{Kind: KindMutation, Rev: 2, Mutation: &Mutation{Op: OpRemoveCommodity, Target: "y"}}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 2 || log.Records[1].Rev != 2 {
		t.Fatalf("stitched records = %+v", log.Records)
	}
	if log.Headers[0].JournalID == log.Headers[1].JournalID {
		t.Fatal("distinct runs share a journal ID")
	}
}

func TestTailRing(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{TailRecords: 4, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 10; i++ {
		if err := w.Append(Record{Kind: KindMutation, Rev: int64(i), Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	tail := w.Tail(3)
	if len(tail) != 3 {
		t.Fatalf("Tail(3) returned %d records", len(tail))
	}
	for i, r := range tail {
		if want := int64(8 + i); r.Rev != want {
			t.Fatalf("tail[%d].Rev = %d, want %d", i, r.Rev, want)
		}
	}
	if got := w.Tail(100); len(got) != 4 {
		t.Fatalf("Tail(100) returned %d records, want ring size 4", len(got))
	}
}

func TestLagAndSync(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, err := Create(dir, Options{Fsync: FsyncInterval, FsyncEvery: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// The segment header was synced by openSegment's policy only if due;
	// with a huge interval the header itself may be unsynced. Establish a
	// baseline with an explicit Sync.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if b, r := w.Lag(); b != 0 || r != 0 {
		t.Fatalf("lag after sync = %d bytes, %d records", b, r)
	}
	if err := w.Append(Record{Kind: KindMutation, Rev: 1, Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}}); err != nil {
		t.Fatal(err)
	}
	b, r := w.Lag()
	if b <= 0 || r != 1 {
		t.Fatalf("lag after append = %d bytes, %d records", b, r)
	}
	if g := reg.Gauge("streamopt_journal_unsynced_records", "").Value(); g != 1 {
		t.Fatalf("unsynced_records gauge = %v", g)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if b, r := w.Lag(); b != 0 || r != 0 {
		t.Fatalf("lag after sync = %d bytes, %d records", b, r)
	}
	if g := reg.Gauge("streamopt_journal_unsynced_bytes", "").Value(); g != 0 {
		t.Fatalf("unsynced_bytes gauge = %v", g)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestAdmittedHash(t *testing.T) {
	a := []AdmittedEntry{{Name: "b", Rate: 2}, {Name: "a", Rate: 1}}
	b := []AdmittedEntry{{Name: "a", Rate: 1}, {Name: "b", Rate: 2}}
	if AdmittedHash(a) != AdmittedHash(b) {
		t.Fatal("hash depends on input order")
	}
	c := []AdmittedEntry{{Name: "a", Rate: 1}, {Name: "b", Rate: 2.0000000000000004}}
	if AdmittedHash(b) == AdmittedHash(c) {
		t.Fatal("hash misses a one-ulp rate change")
	}
	if AdmittedHash(nil) == "" {
		t.Fatal("empty set should still hash")
	}
}

func TestApplyOps(t *testing.T) {
	p := toyProblem(t)

	if err := Apply(p, &Mutation{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 5})}); err != nil {
		t.Fatal(err)
	}
	c, _ := p.CommodityByName("c1")
	if c.MaxRate != 5 {
		t.Fatalf("MaxRate = %v after set_rate", c.MaxRate)
	}

	if err := Apply(p, &Mutation{Op: OpSetRates, Payload: mustJSON(t, RatesPayload{Rates: map[string]float64{"c1": 6}})}); err != nil {
		t.Fatal(err)
	}
	if c.MaxRate != 6 {
		t.Fatalf("MaxRate = %v after set_rates", c.MaxRate)
	}

	if err := Apply(p, &Mutation{Op: OpSetUtility, Target: "c1", Payload: []byte(`{"type":"log","weight":2,"scale":1}`)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Utility.(utility.Log); !ok {
		t.Fatalf("utility = %T after set_utility", c.Utility)
	}

	if err := Apply(p, &Mutation{Op: OpSetCapacity, Target: "a", Payload: mustJSON(t, CapacityPayload{Capacity: 20})}); err != nil {
		t.Fatal(err)
	}
	aID, _ := p.Net.NodeByName("a")
	if p.Net.Capacity[aID] != 20 {
		t.Fatalf("capacity = %v after set_capacity", p.Net.Capacity[aID])
	}

	if err := Apply(p, &Mutation{Op: OpScaleCapacity, Target: "a", Payload: mustJSON(t, ScalePayload{Factor: 0.5})}); err != nil {
		t.Fatal(err)
	}
	if p.Net.Capacity[aID] != 10 {
		t.Fatalf("capacity = %v after scale_capacity", p.Net.Capacity[aID])
	}

	if err := Apply(p, &Mutation{Op: OpSetBandwidth, Payload: mustJSON(t, LinkPayload{From: "a", To: "b", Bandwidth: 30})}); err != nil {
		t.Fatal(err)
	}
	aid, _ := p.Net.NodeByName("a")
	bid, _ := p.Net.NodeByName("b")
	e := p.Net.G.EdgeBetween(aid, bid)
	if p.Net.Bandwidth[e] != 30 {
		t.Fatalf("bandwidth = %v after set_bandwidth", p.Net.Bandwidth[e])
	}

	if err := Apply(p, &Mutation{Op: OpScaleBandwidth, Payload: mustJSON(t, LinkPayload{From: "a", To: "b", Factor: 2})}); err != nil {
		t.Fatal(err)
	}
	if p.Net.Bandwidth[e] != 60 {
		t.Fatalf("bandwidth = %v after scale_bandwidth", p.Net.Bandwidth[e])
	}

	cjson, err := p.MarshalCommodityJSON("c1")
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(p, &Mutation{Op: OpRemoveCommodity, Target: "c1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.CommodityByName("c1"); ok {
		t.Fatal("c1 survived remove_commodity")
	}
	if err := Apply(p, &Mutation{Op: OpAddCommodity, Target: "c1", Payload: cjson}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.CommodityByName("c1"); !ok {
		t.Fatal("c1 missing after add_commodity")
	}

	if err := Apply(p, &Mutation{Op: "warp_time"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := Apply(p, &Mutation{Op: OpRemoveCommodity, Target: "ghost"}); err == nil {
		t.Fatal("removing unknown commodity accepted")
	}
}

// TestCopyToPreservesClocks proves the fixture-rewrite hook keeps the
// original timestamps, so a rewritten journal replays with the recorded
// timeline.
func TestCopyToPreservesClocks(t *testing.T) {
	src := t.TempDir()
	w, err := Create(src, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindMutation, Rev: 1, Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	w2, err := Create(dst, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := CopyTo(w2, orig.Records); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	copied, err := ReadDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(copied.Records) != 1 {
		t.Fatalf("copied %d records", len(copied.Records))
	}
	if copied.Records[0].WallUnixNano != orig.Records[0].WallUnixNano ||
		copied.Records[0].MonoNanos != orig.Records[0].MonoNanos {
		t.Fatal("CopyTo restamped clocks")
	}
}

func TestReadDirRejectsMissingHeader(t *testing.T) {
	dir := t.TempDir()
	// A segment whose first record is a mutation, not a header.
	frame, err := encodeFrame(&Record{Kind: KindMutation, Rev: 1, WallUnixNano: 1, MonoNanos: 1,
		Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, SegmentName(0)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("headerless segment accepted")
	}
}
