package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeJournal records a checkpoint of the toy problem plus mutations,
// returning the directory.
func writeJournal(t *testing.T, opts Options, muts []Mutation) string {
	t.Helper()
	dir := t.TempDir()
	w, err := Create(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{Problem: pj, Restart: true}}); err != nil {
		t.Fatal(err)
	}
	for i := range muts {
		if err := w.Append(Record{Kind: KindMutation, Rev: int64(i + 2), Mutation: &muts[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRecoverRollsForward(t *testing.T) {
	dir := writeJournal(t, Options{Fsync: FsyncNever}, []Mutation{
		{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 3})},
		{Op: OpSetCapacity, Target: "b", Payload: mustJSON(t, CapacityPayload{Capacity: 7})},
	})
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointRev != 1 || rec.Rev != 3 || rec.MutationsApplied != 2 {
		t.Fatalf("recovered cpRev=%d rev=%d applied=%d", rec.CheckpointRev, rec.Rev, rec.MutationsApplied)
	}
	c, ok := rec.Problem.CommodityByName("c1")
	if !ok || c.MaxRate != 3 {
		t.Fatalf("recovered c1 = %+v", c)
	}
	bID, _ := rec.Problem.Net.NodeByName("b")
	if rec.Problem.Net.Capacity[bID] != 7 {
		t.Fatalf("recovered capacity(b) = %v", rec.Problem.Net.Capacity[bID])
	}
}

// TestRecoverSurfacesSolverParams writes a restart checkpoint carrying
// shard topology followed by a plain checkpoint without one, and makes
// sure recovery surfaces the topology so a rebooting daemon can adopt
// it.
func TestRecoverSurfacesSolverParams(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(toyProblem(t))
	if err != nil {
		t.Fatal(err)
	}
	sp := &SolverParams{Epsilon: 0.2, Eta: 0.04, MaxIters: 100, Shards: 4, PlacementSalt: 7, PriceExchangeEvery: 25, PriceDamping: 0.5}
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{Problem: pj, Restart: true, Solver: sp}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 2, Checkpoint: &Checkpoint{Problem: pj}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointRev != 2 {
		t.Fatalf("recovered from checkpoint rev %d, want 2", rec.CheckpointRev)
	}
	if rec.Solver == nil || rec.Solver.Shards != 4 || rec.Solver.PlacementSalt != 7 {
		t.Fatalf("recovered solver params = %+v, want shard topology from restart checkpoint", rec.Solver)
	}
}

// TestRecoverPrefersLastCheckpoint writes two checkpoints and makes
// sure recovery rolls forward from the newest one only.
func TestRecoverPrefersLastCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj1, _ := json.Marshal(p)
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{Problem: pj1, Restart: true}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindMutation, Rev: 2, Mutation: &Mutation{
		Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 2})}}); err != nil {
		t.Fatal(err)
	}
	// Periodic checkpoint capturing the rate-2 state.
	if err := Apply(p, &Mutation{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 2})}); err != nil {
		t.Fatal(err)
	}
	pj2, _ := json.Marshal(p)
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 2, Checkpoint: &Checkpoint{Problem: pj2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindMutation, Rev: 3, Mutation: &Mutation{
		Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 9})}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointRev != 2 || rec.MutationsApplied != 1 || rec.Rev != 3 {
		t.Fatalf("recovered cpRev=%d rev=%d applied=%d", rec.CheckpointRev, rec.Rev, rec.MutationsApplied)
	}
	c, _ := rec.Problem.CommodityByName("c1")
	if c.MaxRate != 9 {
		t.Fatalf("recovered MaxRate = %v, want 9", c.MaxRate)
	}
}

// appendGarbage simulates a crash mid-append: a partial frame at the
// tail of the named segment.
func appendGarbage(t *testing.T, dir string, seg int, garbage []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(seg)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	// Three torn-tail shapes: partial frame header, partial payload
	// after a plausible length, and a full frame with a corrupted CRC.
	full, err := encodeFrame(&Record{Kind: KindMutation, Rev: 99, WallUnixNano: 1, MonoNanos: 1,
		Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), full...)
	corrupted[5] ^= 0xff // flip a CRC byte
	cases := map[string][]byte{
		"partial header":  {0x01, 0x02, 0x03},
		"partial payload": full[:len(full)-3],
		"crc mismatch":    corrupted,
	}
	for name, garbage := range cases {
		t.Run(name, func(t *testing.T) {
			dir := writeJournal(t, Options{Fsync: FsyncNever}, []Mutation{
				{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 3})},
			})
			appendGarbage(t, dir, 0, garbage)
			log, err := ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !log.Truncated {
				t.Fatal("torn tail not reported")
			}
			if len(log.Records) != 2 {
				t.Fatalf("got %d records before the tear, want 2", len(log.Records))
			}
			rec, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := rec.Problem.CommodityByName("c1")
			if c.MaxRate != 3 {
				t.Fatalf("recovered MaxRate = %v", c.MaxRate)
			}
		})
	}
}

// TestMidJournalCorruptionFails: a torn frame at the tail of a segment
// whose successor was written by the SAME writer cannot be a crash
// artifact — the writer syncs a segment before rotating — so the read
// must fail instead of silently dropping records.
func TestMidJournalCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 600, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj, _ := json.Marshal(p)
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{Problem: pj, Restart: true}}); err != nil {
		t.Fatal(err)
	}
	rev := int64(1)
	for w.Segment() == 0 {
		rev++
		if err := w.Append(Record{Kind: KindMutation, Rev: rev, Mutation: &Mutation{
			Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 3})}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear segment 0: segment 1 carries the same JournalID, so this is
	// corruption, not a crash+restart boundary.
	appendGarbage(t, dir, 0, []byte{0xde, 0xad})
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("mid-journal corruption accepted")
	}
}

// TestCrashRestartCrashRecovers is the double-crash cycle: a crash
// tears the journal tail, recovery appends a fresh segment over the
// tear without truncating it, and a second crash tears the new tail.
// Every restart must keep reading the full history — the tear healed
// by a new-writer segment is a tolerated crash scar, not corruption.
func TestCrashRestartCrashRecovers(t *testing.T) {
	dir := writeJournal(t, Options{Fsync: FsyncNever}, []Mutation{
		{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 3})},
	})
	rate := 3.0
	for crash := 0; crash < 3; crash++ {
		appendGarbage(t, dir, crash, []byte{0x01, 0x02, 0x03}) // SIGKILL mid-append
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("recovery after crash %d: %v", crash+1, err)
		}
		c, ok := rec.Problem.CommodityByName("c1")
		if !ok || c.MaxRate != rate {
			t.Fatalf("after crash %d: recovered MaxRate = %v, want %v", crash+1, c.MaxRate, rate)
		}
		// Restart: a fresh writer appends a boot checkpoint and another
		// mutation to a new segment over the untruncated tear.
		w, err := Create(dir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		pj, err := json.Marshal(rec.Problem)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(Record{Kind: KindCheckpoint, Rev: rec.Rev, Checkpoint: &Checkpoint{Problem: pj, Restart: true}}); err != nil {
			t.Fatal(err)
		}
		rate++
		if err := w.Append(Record{Kind: KindMutation, Rev: rec.Rev + 1, Mutation: &Mutation{
			Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: rate})}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.TornSegments) != 3 {
		t.Fatalf("TornSegments = %v, want the three crash scars", log.TornSegments)
	}
	if log.Truncated {
		t.Fatal("intact tail reported truncated")
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := rec.Problem.CommodityByName("c1")
	if c.MaxRate != rate {
		t.Fatalf("final recovered MaxRate = %v, want %v", c.MaxRate, rate)
	}
}

// TestBootCrashEmptySegmentTolerated: a crash between segment creation
// and the first header flush leaves an empty .wal file. Trailing empty
// segments are dropped as truncation; a mid-journal empty segment (a
// crash-looped boot before a successful one) is skipped.
func TestBootCrashEmptySegmentTolerated(t *testing.T) {
	dir := writeJournal(t, Options{Fsync: FsyncNever}, []Mutation{
		{Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: 3})},
	})
	// Boot crash: segment 1 exists but holds nothing durable.
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated || len(log.Records) != 2 {
		t.Fatalf("trailing empty segment: Truncated=%v records=%d", log.Truncated, len(log.Records))
	}
	// The next boot succeeds and appends segment 2 around the empty one.
	w, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj, _ := json.Marshal(p)
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 3, Checkpoint: &Checkpoint{Problem: pj, Restart: true}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	log, err = ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if log.Truncated || len(log.Records) != 3 {
		t.Fatalf("mid-journal empty segment: Truncated=%v records=%d", log.Truncated, len(log.Records))
	}
	if _, err := Recover(dir); err != nil {
		t.Fatal(err)
	}
}

// TestRotationBoundaryRecovery crashes (torn tail) right after a
// rotation and recovers across the segment boundary.
func TestRotationBoundaryRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{SegmentBytes: 600, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p := toyProblem(t)
	pj, _ := json.Marshal(p)
	if err := w.Append(Record{Kind: KindCheckpoint, Rev: 1, Checkpoint: &Checkpoint{Problem: pj, Restart: true}}); err != nil {
		t.Fatal(err)
	}
	var lastRev int64 = 1
	for w.Segment() == 0 {
		lastRev++
		if err := w.Append(Record{Kind: KindMutation, Rev: lastRev, Mutation: &Mutation{
			Op: OpSetRate, Target: "c1", Payload: mustJSON(t, RatePayload{Rate: float64(lastRev)})}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	appendGarbage(t, dir, w.Segment(), []byte{0x42})

	log, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated {
		t.Fatal("torn tail after rotation not reported")
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rev != lastRev {
		t.Fatalf("recovered rev %d, want %d", rec.Rev, lastRev)
	}
	c, _ := rec.Problem.CommodityByName("c1")
	if c.MaxRate != float64(lastRev) {
		t.Fatalf("recovered MaxRate = %v, want %d", c.MaxRate, lastRev)
	}
}

func TestRecoverRequiresCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindMutation, Rev: 1, Mutation: &Mutation{Op: OpRemoveCommodity, Target: "x"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("recovery without a checkpoint accepted")
	}
}

func TestHasJournal(t *testing.T) {
	dir := t.TempDir()
	ok, err := HasJournal(dir)
	if err != nil || ok {
		t.Fatalf("empty dir: HasJournal = %v, %v", ok, err)
	}
	ok, err = HasJournal(filepath.Join(dir, "missing"))
	if err != nil || ok {
		t.Fatalf("missing dir: HasJournal = %v, %v", ok, err)
	}
	w, err := Create(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ok, err = HasJournal(dir)
	if err != nil || !ok {
		t.Fatalf("after Create: HasJournal = %v, %v", ok, err)
	}
}
