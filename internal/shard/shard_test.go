package shard

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/stream"
	"repro/internal/transform"
)

func TestPlaceStable(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		counts := make([]int, shards)
		for i := 0; i < 1000; i++ {
			name := fmt.Sprintf("commodity-%d", i)
			s := Place(name, 42, shards)
			if s < 0 || s >= shards {
				t.Fatalf("Place(%q, 42, %d) = %d out of range", name, shards, s)
			}
			if again := Place(name, 42, shards); again != s {
				t.Fatalf("Place not deterministic: %d vs %d", s, again)
			}
			counts[s]++
		}
		// Jump hash should spread 1000 names roughly evenly.
		for s, n := range counts {
			if n == 0 {
				t.Fatalf("shards=%d: shard %d owns no commodities", shards, s)
			}
		}
	}
}

func TestPlaceSaltChangesPartition(t *testing.T) {
	movedBySalt := 0
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("c%d", i)
		if Place(name, 1, 8) != Place(name, 2, 8) {
			movedBySalt++
		}
	}
	if movedBySalt == 0 {
		t.Fatal("changing the salt moved no commodity; salt is not mixed into the hash")
	}
}

// TestPlaceConsistentGrowth checks the jump-hash minimal-movement
// property: growing the shard count only ever moves commodities onto
// the new shards, never between existing ones.
func TestPlaceConsistentGrowth(t *testing.T) {
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("c%d", i)
		before := Place(name, 7, 4)
		after := Place(name, 7, 5)
		if after != before && after != 4 {
			t.Fatalf("%q moved %d→%d when growing 4→5 shards", name, before, after)
		}
	}
}

// solveUnsharded runs a single full-problem engine to stationarity
// (or the iteration budget) and returns its utility.
func solveUnsharded(t *testing.T, p *stream.Problem, eta, tol float64, maxIters int) float64 {
	t.Helper()
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	eng := gradient.New(x, gradient.Config{Eta: eta})
	for i := 0; i < maxIters; i++ {
		eng.Step()
		if i%25 == 24 {
			rep := gradient.CheckStationarity(flow.Evaluate(eng.Routing()))
			if rep.MaxUsedGap <= tol {
				break
			}
		}
	}
	return eng.Solution().Utility()
}

// solveSharded boots a coordinator over p with the given shard count
// and runs one full solve from cold.
func solveSharded(t *testing.T, p *stream.Problem, shards int, eta, tol float64, maxIters int) Result {
	t.Helper()
	c := New(Config{
		Shards:        shards,
		Salt:          7,
		Eta:           eta,
		MaxIters:      maxIters,
		StationaryTol: tol,
	})
	dirty := make([]bool, shards)
	for i := range dirty {
		dirty[i] = true
	}
	if _, err := c.Apply(p, dirty); err != nil {
		t.Fatal(err)
	}
	return c.Solve(context.Background())
}

// TestShardedMatchesUnsharded is the dual-decomposition convergence
// property: for N ∈ {2,4,8} the sharded final utility must land within
// 0.1% of the unsharded solve on the E4 paper instance, the E6
// many-commodity instance, and a seed sweep.
//
// Step size, stationarity tolerance, and iteration budget are
// calibrated per instance so that BOTH solves actually reach
// stationarity: the fixed-step gradient oscillates on some random
// instances at the default Eta (e.g. the E6 instance needs 0.01), and
// a parity comparison between two unconverged trajectories is
// meaningless. Seeds whose unsharded trajectory never settles at any
// tested step size (e.g. seed 1 of the 24-node family) are excluded.
func TestShardedMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-instance convergence sweep")
	}
	instances := []struct {
		name     string
		cfg      randnet.Config
		eta, tol float64
		maxIters int
	}{
		{"paper-e4", randnet.Config{Seed: 2, Nodes: 40, Commodities: 3}, 0.04, 1e-3, 30000},
		{"many-commodity-e6", randnet.Config{Seed: 5, Nodes: 32, Layers: 4, Commodities: 8}, 0.01, 5e-3, 40000},
		{"sweep-seed2", randnet.Config{Seed: 2, Nodes: 24, Commodities: 4}, 0.04, 1e-3, 12000},
		{"sweep-seed3", randnet.Config{Seed: 3, Nodes: 24, Commodities: 4}, 0.04, 1e-3, 40000},
		{"sweep-seed5", randnet.Config{Seed: 5, Nodes: 24, Commodities: 4}, 0.04, 1e-4, 12000},
	}

	for _, inst := range instances {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			t.Parallel()
			p, err := randnet.Generate(inst.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := solveUnsharded(t, p, inst.eta, inst.tol, inst.maxIters)
			for _, shards := range []int{2, 4, 8} {
				res := solveSharded(t, p, shards, inst.eta, inst.tol, inst.maxIters)
				rel := math.Abs(res.Utility-want) / math.Abs(want)
				if rel > 1e-3 {
					t.Errorf("shards=%d: utility %.9f vs unsharded %.9f (rel %.2e > 0.1%%, converged=%v rounds=%d iters=%d)",
						shards, res.Utility, want, rel, res.Converged, res.Rounds, res.Iterations)
				}
				if res.Err != nil {
					t.Errorf("shards=%d: divergence: %v", shards, res.Err)
				}
			}
		})
	}
}

// TestShardedDeterministic: two coordinators over the same problem and
// config produce bitwise-identical trajectories — the property replay
// verification of sharded runs rests on.
func TestShardedDeterministic(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 3, Nodes: 32, Layers: 4, Commodities: 6})
	if err != nil {
		t.Fatal(err)
	}
	a := solveSharded(t, p, 4, 0.04, 1e-4, 2000)
	b := solveSharded(t, p, 4, 0.04, 1e-4, 2000)
	if a.Utility != b.Utility || a.Iterations != b.Iterations || a.Rounds != b.Rounds {
		t.Fatalf("non-deterministic sharded solve: %+v vs %+v", a, b)
	}
	ca := solveShardedCoordinator(t, p, 4, 2000)
	for gi, st := range ca.Commodities() {
		cb := solveShardedCoordinator(t, p, 4, 2000).Commodities()[gi]
		if st.Admitted != cb.Admitted {
			t.Fatalf("commodity %q admitted %v vs %v", st.Name, st.Admitted, cb.Admitted)
		}
	}
}

// TestShardedReplayBitwiseIdentical: at Shards ∈ {1, 4}, re-running the
// coordinator with the same config on the same problem reproduces the
// Result.Utility and every per-commodity admitted rate bit for bit, on
// the E4 paper instance, the E6 many-commodity instance, and the seed
// sweep. With the sparse per-commodity subgraphs this is the end-to-end
// determinism contract: subset build, local evaluation, and the
// dual-price exchange must all be fixed-order.
func TestShardedReplayBitwiseIdentical(t *testing.T) {
	instances := []struct {
		name string
		cfg  randnet.Config
	}{
		{"paper-e4", randnet.Config{Seed: 2, Nodes: 40, Commodities: 3}},
		{"many-commodity-e6", randnet.Config{Seed: 5, Nodes: 32, Layers: 4, Commodities: 8}},
		{"sweep-seed2", randnet.Config{Seed: 2, Nodes: 24, Commodities: 4}},
		{"sweep-seed3", randnet.Config{Seed: 3, Nodes: 24, Commodities: 4}},
		{"sweep-seed5", randnet.Config{Seed: 5, Nodes: 24, Commodities: 4}},
	}
	for _, inst := range instances {
		inst := inst
		t.Run(inst.name, func(t *testing.T) {
			t.Parallel()
			p, err := randnet.Generate(inst.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4} {
				a := solveSharded(t, p, shards, 0.04, 1e-4, 1500)
				b := solveSharded(t, p, shards, 0.04, 1e-4, 1500)
				if a.Utility != b.Utility || a.Iterations != b.Iterations || a.Rounds != b.Rounds {
					t.Fatalf("shards=%d: replay drifted: %+v vs %+v", shards, a, b)
				}
				ca := solveShardedCoordinator(t, p, shards, 1500).Commodities()
				cb := solveShardedCoordinator(t, p, shards, 1500).Commodities()
				if len(ca) != len(cb) {
					t.Fatalf("shards=%d: commodity count %d vs %d", shards, len(ca), len(cb))
				}
				for gi := range ca {
					if ca[gi].Admitted != cb[gi].Admitted {
						t.Fatalf("shards=%d commodity %q: admitted %v vs %v",
							shards, ca[gi].Name, ca[gi].Admitted, cb[gi].Admitted)
					}
				}
			}
		})
	}
}

func solveShardedCoordinator(t *testing.T, p *stream.Problem, shards, maxIters int) *Coordinator {
	t.Helper()
	c := New(Config{Shards: shards, Salt: 7, MaxIters: maxIters, StationaryTol: 1e-4})
	dirty := make([]bool, shards)
	for i := range dirty {
		dirty[i] = true
	}
	if _, err := c.Apply(p, dirty); err != nil {
		t.Fatal(err)
	}
	c.Solve(context.Background())
	return c
}

// TestShardedIncrementalWarm: after a rate change dirtying one shard,
// only that shard rebuilds (warm), and the re-solve still settles to
// the unsharded optimum of the updated problem.
func TestShardedIncrementalWarm(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 5, Nodes: 24, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	c := New(Config{Shards: shards, Salt: 7, MaxIters: 12000, StationaryTol: 1e-4})
	all := make([]bool, shards)
	for i := range all {
		all[i] = true
	}
	if _, err := c.Apply(p, all); err != nil {
		t.Fatal(err)
	}
	c.Solve(context.Background())

	// Halve one commodity's offered rate; only its owner shard is dirty.
	name := p.Commodities[0].Name
	next := p.Clone()
	if err := next.SetMaxRate(name, p.Commodities[0].MaxRate/2); err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, shards)
	dirty[Place(name, 7, shards)] = true
	warm, err := c.Apply(next, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("single-shard rate change should warm-start its rebuild")
	}
	res := c.Solve(context.Background())

	want := solveUnsharded(t, next, 0.04, 1e-4, 12000)
	rel := math.Abs(res.Utility-want) / math.Abs(want)
	if rel > 1e-3 {
		t.Fatalf("after incremental re-solve: utility %.9f vs %.9f (rel %.2e)", res.Utility, want, rel)
	}
}

// TestSubsetBuildSharedPrefix: subset builds over the same network
// share the identical node prefix (names, kinds, capacities), the
// invariant cross-shard usage exchange depends on.
func TestSubsetBuildSharedPrefix(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 9, Nodes: 16, Layers: 4, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := transform.Build(p, transform.Options{Epsilon: 0.2, Commodities: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if full.SharedNodes != sub.SharedNodes {
		t.Fatalf("SharedNodes %d vs %d", full.SharedNodes, sub.SharedNodes)
	}
	for n := 0; n < full.SharedNodes; n++ {
		if full.Names[n] != sub.Names[n] || full.Kinds[n] != sub.Kinds[n] || full.Capacity[n] != sub.Capacity[n] {
			t.Fatalf("shared prefix diverges at node %d: %q/%v/%v vs %q/%v/%v",
				n, full.Names[n], full.Kinds[n], full.Capacity[n], sub.Names[n], sub.Kinds[n], sub.Capacity[n])
		}
	}
	if got := len(sub.Commodities); got != 2 {
		t.Fatalf("subset build has %d commodities, want 2", got)
	}
	if sub.Commodities[0].Name != p.Commodities[1].Name || sub.Commodities[1].Name != p.Commodities[3].Name {
		t.Fatalf("subset commodities %q,%q", sub.Commodities[0].Name, sub.Commodities[1].Name)
	}
}

// TestExternalUsageShiftsPrices: installing external usage on a subset
// build must raise the barrier's marginal price exactly as if the flow
// were local.
func TestExternalUsageShiftsPrices(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 9, Nodes: 16, Layers: 4, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2, Commodities: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	var node int = -1
	for n := 0; n < x.SharedNodes; n++ {
		if !math.IsInf(x.Capacity[n], 1) {
			node = n
			break
		}
	}
	if node < 0 {
		t.Fatal("no capacitated shared node")
	}
	base := x.PenaltyDeriv(graph.NodeID(node), 1.0)
	ext := make([]float64, x.SharedNodes)
	ext[node] = 2.5
	x.SetExternal(ext)
	shifted := x.PenaltyDeriv(graph.NodeID(node), 1.0)
	direct := x.Epsilon * x.Penalty.Deriv(3.5, x.Capacity[node])
	if shifted != direct {
		t.Fatalf("external price %v != direct evaluation %v", shifted, direct)
	}
	if shifted <= base {
		t.Fatalf("external usage did not raise the marginal price: %v <= %v", shifted, base)
	}
}
