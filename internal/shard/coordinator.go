package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// Config tunes a sharded solve. The zero value of the solver knobs
// reproduces the admission server's defaults; Shards must be ≥ 1.
type Config struct {
	// Shards is the number of solver shards commodities are partitioned
	// across.
	Shards int
	// Salt seeds the consistent-hash commodity→shard placement; a
	// recorded (Shards, Salt) pair replays to the identical partition.
	Salt uint64

	// Solver knobs, matching server.Options / core.Options semantics.
	Epsilon       float64         // barrier coefficient ε; 0 → 0.2
	Penalty       utility.Penalty // barrier family; nil → reciprocal
	Eta           float64         // step scale η; 0 → 0.04
	MaxIters      int             // per-shard per-solve budget; 0 → 4000
	StationaryTol float64         // Theorem-2 tolerance; 0 → 1e-3, <0 disables
	// Workers bounds each shard engine's wave pool. 0 → GOMAXPROCS
	// divided across shards (every value yields the same trajectory).
	Workers int

	// ExchangeEvery is how many gradient iterations a shard runs
	// between price-exchange rounds. 0 → 25.
	ExchangeEvery int
	// Damping is the γ of the damped external-usage update
	// ext ← ext + γ·(target − ext); 0 → 0.5. Values in (0,1] keep the
	// exchange a contraction toward the global fixed point.
	Damping float64
	// UsageTol is the relative per-node settle tolerance on external
	// usage: a round whose damped updates all fall below
	// UsageTol·max(1, C_i) counts as settled. 0 → 1e-4.
	UsageTol float64

	// Recorder receives the streamopt_shard_* metrics. Nil disables.
	Recorder *obs.Recorder
	// Logf receives warm-start fallback and divergence diagnostics.
	// Nil discards.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.2
	}
	if c.Eta <= 0 {
		c.Eta = 0.04
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 4000
	}
	if c.StationaryTol == 0 {
		c.StationaryTol = 1e-3
	}
	if c.ExchangeEvery <= 0 {
		c.ExchangeEvery = 25
	}
	if c.Damping <= 0 || c.Damping > 1 {
		c.Damping = 0.5
	}
	if c.UsageTol <= 0 {
		c.UsageTol = 1e-4
	}
	if c.Workers <= 0 {
		w := runtime.GOMAXPROCS(0) / c.Shards
		if w < 1 {
			w = 1
		}
		c.Workers = w
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// UsageSummary is the message a shard sends the coordinator after an
// advance: flow through the shared node prefix plus solve accounting.
// Together with PriceUpdate it is the entire shard boundary — nothing
// else crosses it, so a future multi-process deployment serializes
// exactly these two shapes.
type UsageSummary struct {
	Shard      int       `json:"shard"`
	Usage      []float64 `json:"usage"`
	Utility    float64   `json:"utility"`
	Iterations int       `json:"iterations"`
	Stationary bool      `json:"stationary"`
}

// PriceUpdate is the message the coordinator broadcasts after merging
// usage summaries: the damped external-usage vector the shard must
// price its barrier against, and the barrier shadow prices
// ε·D'_i(F_i) at the merged operating point.
type PriceUpdate struct {
	Round    int       `json:"round"`
	External []float64 `json:"external"`
	Prices   []float64 `json:"prices"`
}

// ShardStatus is one shard's slice of a Result.
type ShardStatus struct {
	Shard       int     `json:"shard"`
	Commodities int     `json:"commodities"`
	Iterations  int     `json:"iterations"`
	Warm        bool    `json:"warm"`
	Stationary  bool    `json:"stationary"`
	Utility     float64 `json:"utility"`
}

// CommodityState is one commodity's admission outcome, stitched back
// into global commodity order.
type CommodityState struct {
	Name     string
	Offered  float64
	Admitted float64
}

// Result is the outcome of one sharded solve.
type Result struct {
	// Utility is Σ_j U_j(a_j) over all shards.
	Utility float64
	// Iterations is the total gradient iterations across shards this
	// solve; Rounds the price-exchange rounds.
	Iterations int
	Rounds     int
	// Converged means every shard reached Theorem-2 stationarity and
	// the external-usage exchange settled within tolerance.
	Converged bool
	// Drained reports a solve cut short by shutdown.
	Drained bool
	// Feasible is f_i ≤ C_i at the merged global usage.
	Feasible bool
	// Err is the first shard divergence observed, if any.
	Err    error
	Shards []ShardStatus
}

// Coordinator owns N solver shards and runs the dual-decomposition
// price exchange between them. It is not safe for concurrent use; the
// admission server drives it from its single solver goroutine.
type Coordinator struct {
	cfg     Config
	p       *stream.Problem
	runners []*runner
	shared  int // shared node prefix length; 0 until first build
	merged  []float64
	prices  []float64
	parts   [][]float64 // merge scratch, one entry per built runner
}

// runner is one solver shard: its own subset transform, workspace and
// engine. All fields are touched only by the coordinator (sequentially)
// or by the runner's own advance goroutine (exclusively), never both at
// once.
type runner struct {
	id  int
	cfg *Config

	x   *transform.Extended
	eng *gradient.Engine
	u   *flow.Usage

	names []string
	local map[string]int

	ext      []float64 // damped external usage, installed on x.External
	own      []float64 // shared usage after the last advance
	admitted []float64 // a_j per local commodity after the last advance
	utility  float64

	iters      int // iterations this solve
	det        gradient.DivergenceDetector
	stationary bool
	extMoved   bool
	diverged   bool
	divergeErr error
	warm       bool // last rebuild warm-started
	stepped    bool // last advance performed ≥1 iteration
	seconds    float64
}

// New creates a coordinator with empty shards; Apply installs the first
// problem.
func New(cfg Config) *Coordinator {
	cfg.setDefaults()
	c := &Coordinator{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		c.runners = append(c.runners, &runner{id: i, cfg: &c.cfg})
	}
	return c
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// Clear drops every shard's engine and subset — the zero-commodity
// state. The next Apply rebuilds dirty shards from scratch.
func (c *Coordinator) Clear(p *stream.Problem) {
	c.p = p
	for _, r := range c.runners {
		r.x, r.eng, r.u = nil, nil, nil
		r.names = r.names[:0]
		r.local = nil
		clear(r.own)
		clear(r.ext)
		r.admitted = r.admitted[:0]
		r.utility = 0
		r.stationary = true
		r.diverged, r.divergeErr = false, nil
	}
	if c.merged != nil {
		clear(c.merged)
		clear(c.prices)
	}
}

// Apply installs a new desired problem and rebuilds the dirty shards
// (dirty[i] true means shard i's commodity set or the shared network
// parameters changed since its extended problem was built). It returns
// whether every rebuild warm-started from the shard's previous routing.
// Clean shards keep their engines and warm state untouched.
func (c *Coordinator) Apply(p *stream.Problem, dirty []bool) (warm bool, err error) {
	c.p = p
	subsets := make([][]int, c.cfg.Shards)
	for gi := range p.Commodities {
		s := Place(p.Commodities[gi].Name, c.cfg.Salt, c.cfg.Shards)
		subsets[s] = append(subsets[s], gi)
	}
	// Rebuild dirty shards concurrently: each rebuild only reads the
	// shared problem and writes its own runner, and subset builds are
	// the dominant cost of a topology change at large commodity counts.
	warms := make([]bool, len(c.runners))
	errs := make([]error, len(c.runners))
	var wg sync.WaitGroup
	for i, r := range c.runners {
		if i < len(dirty) && !dirty[i] {
			warms[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, r *runner) {
			defer wg.Done()
			warms[i], errs[i] = r.rebuild(p, subsets[i])
		}(i, r)
	}
	wg.Wait()
	warm = true
	for i := range c.runners {
		if errs[i] != nil {
			return false, errs[i]
		}
		if !warms[i] {
			warm = false
		}
	}
	if c.shared == 0 {
		for _, r := range c.runners {
			if r.x != nil {
				c.shared = r.x.SharedNodes
				break
			}
		}
		c.merged = make([]float64, c.shared)
		c.prices = make([]float64, c.shared)
	}
	return warm, nil
}

// rebuild reconstructs the shard's extended problem over subset and
// rebinds the previous routing onto it when the subset topology allows
// a warm start.
func (r *runner) rebuild(p *stream.Problem, subset []int) (warm bool, err error) {
	if subset == nil {
		subset = []int{}
	}
	x, err := transform.Build(p, transform.Options{
		Penalty:     r.cfg.Penalty,
		Epsilon:     r.cfg.Epsilon,
		Commodities: subset,
	})
	if err != nil {
		return false, err
	}
	r.cfg.Recorder.BuildFootprint(r.id, x.BuildBytes(), len(subset))
	if r.ext == nil {
		r.ext = make([]float64, x.SharedNodes)
		r.own = make([]float64, x.SharedNodes)
	}
	x.SetExternal(r.ext)

	r.names = r.names[:0]
	r.local = make(map[string]int, len(x.Commodities))
	for j := range x.Commodities {
		r.names = append(r.names, x.Commodities[j].Name)
		r.local[x.Commodities[j].Name] = j
	}
	r.admitted = make([]float64, len(x.Commodities))
	r.diverged, r.divergeErr = false, nil

	if len(x.Commodities) == 0 {
		r.x, r.eng, r.u = x, nil, nil
		clear(r.own)
		r.utility = 0
		r.stationary = true
		r.warm = true
		return true, nil
	}

	gcfg := gradient.Config{Eta: r.cfg.Eta, Workers: r.cfg.Workers}
	warm = false
	if r.eng != nil {
		eng, err := gradient.NewFrom(x, r.eng.Routing(), gcfg)
		if err == nil {
			r.eng, warm = eng, true
		} else if !errors.Is(err, flow.ErrTopologyChanged) {
			r.cfg.Logf("shard %d: warm start failed unexpectedly, falling back to cold: %v", r.id, err)
		}
	}
	if !warm {
		r.eng = gradient.New(x, gcfg)
	}
	r.x = x
	r.u = flow.NewUsage(x)
	r.stationary = false
	r.warm = warm
	return warm, nil
}

// Solve runs price-exchange rounds until every shard is stationary and
// the external-usage exchange has settled, the per-shard iteration
// budgets are exhausted, or ctx is cancelled (drain). The whole round
// structure is deterministic: shards advance in parallel but merge in
// fixed shard order, so a given (shard state, mutation batch) always
// produces the identical trajectory — the property replay verification
// depends on.
func (c *Coordinator) Solve(ctx context.Context) Result {
	res := Result{}
	for _, r := range c.runners {
		r.iters = 0
		r.seconds = 0
		r.det = gradient.DivergenceDetector{}
		if r.diverged {
			// Retry a previously diverged shard, mirroring the
			// single-engine server's per-solve fresh detector.
			r.diverged = false
			r.stationary = false
		}
	}
	var anyX *transform.Extended
	for _, r := range c.runners {
		if r.x != nil {
			anyX = r.x
			break
		}
	}
	if anyX == nil {
		res.Converged, res.Feasible = true, true
		return res
	}

	maxRounds := 8*(c.cfg.MaxIters/c.cfg.ExchangeEvery+1) + 256
	for {
		if ctx.Err() != nil {
			res.Drained = true
			break
		}
		stepped := c.advanceAll(ctx)
		res.Rounds++
		c.merge(anyX)
		moved, maxDelta := c.updateExternals(anyX)
		c.cfg.Recorder.PriceExchange(c.cfg.Shards, maxDelta)

		allStationary, anyDiverged := true, false
		for _, r := range c.runners {
			if r.diverged {
				anyDiverged = true
			} else if r.eng != nil && !r.stationary {
				allStationary = false
			}
		}
		if anyDiverged && res.Err == nil {
			for _, r := range c.runners {
				if r.divergeErr != nil {
					res.Err = r.divergeErr
					break
				}
			}
		}
		if allStationary && !moved {
			res.Converged = !anyDiverged
			break
		}
		if !stepped && !moved {
			break // budgets exhausted and exchange frozen
		}
		if res.Rounds >= maxRounds {
			break
		}
	}

	for _, r := range c.runners {
		res.Iterations += r.iters
		res.Utility += r.utility
		res.Shards = append(res.Shards, ShardStatus{
			Shard:       r.id,
			Commodities: len(r.names),
			Iterations:  r.iters,
			Warm:        r.warm,
			Stationary:  r.stationary,
			Utility:     r.utility,
		})
	}
	res.Feasible, _ = flow.FeasibleShared(anyX, c.merged)
	return res
}

// advanceAll runs every shard's advance concurrently and reports
// whether any shard performed at least one gradient iteration. Each
// runner touches only its own state, so the only synchronization needed
// is the join; the subsequent merge reads the results sequentially in
// shard order.
func (c *Coordinator) advanceAll(ctx context.Context) (stepped bool) {
	var wg sync.WaitGroup
	for _, r := range c.runners {
		wg.Add(1)
		go func(r *runner) {
			defer wg.Done()
			start := time.Now()
			r.stepped = r.advance(ctx)
			r.seconds += time.Since(start).Seconds()
		}(r)
	}
	wg.Wait()
	now := float64(time.Now().UnixNano()) / 1e9
	for _, r := range c.runners {
		if r.stepped {
			stepped = true
		}
		c.cfg.Recorder.ShardAdvance(r.id, r.seconds, r.iters, len(r.names), r.stepped, now)
	}
	return stepped
}

// advance runs up to ExchangeEvery gradient iterations against the
// shard's current external-usage vector, refreshing its usage summary.
// A shard that is already stationary and whose external usage has not
// moved since skips entirely.
func (r *runner) advance(ctx context.Context) (stepped bool) {
	if r.eng == nil || r.diverged {
		return false
	}
	if r.stationary && !r.extMoved {
		return false
	}
	tol := r.cfg.StationaryTol
	r.evaluate()
	if tol > 0 {
		rep := gradient.CheckStationarity(r.u)
		if rep.MaxUsedGap <= tol {
			r.stationary = true
			r.extMoved = false
			r.capture()
			return false
		}
	}
	r.stationary = false
	n := r.cfg.ExchangeEvery
	if left := r.cfg.MaxIters - r.iters; left < n {
		n = left
	}
	if n <= 0 {
		r.extMoved = false
		r.capture()
		return false
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		info := r.eng.Step()
		r.iters++
		stepped = true
		if err := r.det.Observe(info); err != nil {
			r.diverged = true
			r.divergeErr = err
			r.cfg.Logf("shard %d: solve diverged: %v", r.id, err)
			break
		}
	}
	r.evaluate()
	r.extMoved = false
	r.capture()
	return stepped
}

// evaluate refreshes the runner's usage workspace from the engine's
// current routing. The workspace is rebuilt alongside the engine, so a
// shape mismatch means a stale workspace survived a rebuild race; it
// is recovered by reallocating (flow.ErrWorkspaceShape is typed for
// exactly this), not by crashing the shard.
func (r *runner) evaluate() {
	if err := flow.TryEvaluateInto(r.u, r.eng.Routing()); err != nil {
		r.cfg.Logf("shard %d: stale usage workspace, reallocating: %v", r.id, err)
		r.u = flow.NewUsage(r.eng.X)
		flow.EvaluateInto(r.u, r.eng.Routing())
	}
}

// capture refreshes the runner's usage summary — shared-prefix flow,
// utility, per-commodity admitted rates — from the current evaluation.
func (r *runner) capture() {
	r.u.SharedUsage(r.own)
	r.utility = r.u.Utility()
	for j := range r.admitted {
		r.admitted[j] = r.u.AdmittedRate(j)
	}
}

// Summaries returns the latest per-shard usage messages (aliasing the
// runners' buffers; callers must not retain them across rounds).
func (c *Coordinator) Summaries() []UsageSummary {
	out := make([]UsageSummary, 0, len(c.runners))
	for _, r := range c.runners {
		out = append(out, UsageSummary{
			Shard: r.id, Usage: r.own, Utility: r.utility,
			Iterations: r.iters, Stationary: r.stationary,
		})
	}
	return out
}

// merge folds the per-shard usage summaries into the global congestion
// view and rederives the barrier shadow prices at the merged operating
// point, in fixed shard order for a deterministic reduction.
func (c *Coordinator) merge(anyX *transform.Extended) {
	c.parts = c.parts[:0]
	for _, r := range c.runners {
		if r.own != nil {
			c.parts = append(c.parts, r.own)
		}
	}
	flow.MergeShared(c.merged, c.parts...)
	gradient.ShadowPrices(anyX, c.merged, c.prices)
}

// updateExternals applies the damped update
// ext_s ← ext_s + γ·((F − own_s) − ext_s) per shard and reports whether
// any per-node change exceeded the settle tolerance (relative to the
// node's capacity scale).
func (c *Coordinator) updateExternals(anyX *transform.Extended) (moved bool, maxDelta float64) {
	γ := c.cfg.Damping
	for _, r := range c.runners {
		if r.ext == nil {
			continue
		}
		shardMax := 0.0
		for i := range r.ext {
			target := c.merged[i] - r.own[i]
			if target < 0 {
				target = 0
			}
			d := γ * (target - r.ext[i])
			r.ext[i] += d
			scale := 1.0
			if cc := anyX.Capacity[i]; cc > 1 && !isInf(cc) {
				scale = cc
			}
			if rel := abs(d) / scale; rel > shardMax {
				shardMax = rel
			}
		}
		if shardMax > maxDelta {
			maxDelta = shardMax
		}
		if shardMax > c.cfg.UsageTol {
			r.extMoved = true
			moved = true
		}
	}
	return moved, maxDelta
}

// Prices returns a copy of the barrier shadow prices λ_i = ε·D'_i(F_i)
// at the latest merged operating point.
func (c *Coordinator) Prices() []float64 {
	return append([]float64(nil), c.prices...)
}

// Merged returns a copy of the latest merged global usage.
func (c *Coordinator) Merged() []float64 {
	return append([]float64(nil), c.merged...)
}

// Commodities stitches per-commodity admission state back into the
// global commodity order of the problem last Applied.
func (c *Coordinator) Commodities() []CommodityState {
	if c.p == nil {
		return nil
	}
	out := make([]CommodityState, 0, len(c.p.Commodities))
	for gi := range c.p.Commodities {
		cm := c.p.Commodities[gi]
		st := CommodityState{Name: cm.Name, Offered: cm.MaxRate}
		r := c.runners[Place(cm.Name, c.cfg.Salt, c.cfg.Shards)]
		if j, ok := r.local[cm.Name]; ok && j < len(r.admitted) {
			st.Admitted = r.admitted[j]
		}
		out = append(out, st)
	}
	return out
}

// UsageReport maps the merged global usage back onto the original
// network — the sharded equivalent of core.UsageReport.
func (c *Coordinator) UsageReport() []core.NodeUsage {
	for _, r := range c.runners {
		if r.x != nil {
			return core.UsageReportShared(c.p, r.x, c.merged)
		}
	}
	return nil
}

// Explain stitches the per-shard bottleneck attributions into global
// commodity order. Each shard attributes at its own final evaluation,
// whose marginals already price congestion at the merged operating
// point through the external term.
func (c *Coordinator) Explain() []core.CommodityExplain {
	if c.p == nil {
		return nil
	}
	byName := make(map[string]core.CommodityExplain)
	for _, r := range c.runners {
		if r.eng == nil || r.u == nil {
			continue
		}
		for _, ce := range core.Explain(c.p, r.x, r.u) {
			byName[ce.Name] = ce
		}
	}
	out := make([]core.CommodityExplain, 0, len(c.p.Commodities))
	for gi := range c.p.Commodities {
		if ce, ok := byName[c.p.Commodities[gi].Name]; ok {
			out = append(out, ce)
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func isInf(v float64) bool { return v > 1e308 }
