// Package shard horizontally partitions the admission problem's
// commodities across independent solver shards coupled only by a
// periodic price-exchange round (dual decomposition). Per-commodity
// routing variables couple solely through shared capacity rows — the
// node-usage sums inside the barrier penalties ε·D_i — so each shard
// can run the paper's gradient algorithm on its own commodity subset
// against a fixed estimate of everyone else's usage, and a coordinator
// closes the loop: it merges per-shard usage summaries into global
// congestion state, rederives the barrier shadow prices ε·D'_i at the
// merged operating point, and feeds each shard a damped external-usage
// update. The fixed point of that exchange is a stationary point of
// the undecomposed objective, so the sharded solve converges to the
// unsharded optimum within tolerance.
//
// The shard boundary is deliberately message-shaped: the only state
// crossing it is usage vectors over the shared node prefix and the
// derived price vectors, the clean seam for a later multi-process
// deployment.
package shard

// Place returns the shard owning a commodity under jump consistent
// hashing (Lamping & Veach) of the FNV-1a hash of the name, seeded by
// salt. Placement depends only on (name, salt, shards): commodity
// arrivals and departures never move other commodities, and a recorded
// (shards, salt) pair replays to the identical partition.
func Place(name string, salt uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return jump(hashName(name, salt), shards)
}

// hashName is FNV-1a over the 8 salt bytes (little-endian) followed by
// the name bytes.
func hashName(name string, salt uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (salt >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// jump is the jump-consistent-hash bucket function: O(ln buckets),
// no state, minimal movement when the bucket count changes.
func jump(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
