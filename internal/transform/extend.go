// Package transform implements the paper's §3 problem transformation:
//
//  1. every physical link (i,k) becomes a *bandwidth node* n_ik with
//     capacity B_ik, unifying link and CPU constraints into one
//     per-node resource constraint (Figure 2);
//  2. every commodity j gets a *dummy node* s̄_j feeding the admitted
//     rate over a dummy input link (s̄_j, s_j) and the rejected rate
//     over a dummy difference link (s̄_j, sink_j) whose cost is the
//     utility loss Y (Figure 3, eq. 1);
//  3. capacity constraints move into the objective through convex
//     barrier penalties ε·D_i (Penalty).
//
// The result is the routing problem min A = Y + ε·D that internal/flow,
// internal/gradient and internal/backpressure operate on.
package transform

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/utility"
)

// NodeKind classifies nodes of the extended graph.
type NodeKind int

// Extended-graph node kinds.
const (
	Proc      NodeKind = iota + 1 // original processing node
	Bandwidth                     // n_ik for a physical link
	Dummy                         // s̄_j super-source
	SinkNode                      // original sink
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case Proc:
		return "proc"
	case Bandwidth:
		return "bandwidth"
	case Dummy:
		return "dummy"
	case SinkNode:
		return "sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Commodity is a commodity on the extended graph: traffic λ arrives at
// the dummy node; the admitted share reaches Sink through the network
// and the rejected share through the difference link.
type Commodity struct {
	Name    string
	Dummy   graph.NodeID // s̄_j: where external traffic r arrives
	Source  graph.NodeID // s_j mapped into the extended graph
	Sink    graph.NodeID
	MaxRate float64
	Utility utility.Function
	Loss    utility.Loss // cost of the difference link

	InputLink graph.EdgeID // (s̄_j, s_j)
	DiffLink  graph.EdgeID // (s̄_j, sink_j)
}

// Extended is the transformed problem instance.
type Extended struct {
	G     *graph.Graph
	Names []string
	Kinds []NodeKind
	// Capacity per node; +Inf for dummy nodes and sinks.
	Capacity []float64
	// Penalty is the barrier family D; Epsilon scales it (cost = ε·D).
	Penalty utility.Penalty
	Epsilon float64

	Commodities []Commodity

	// SharedNodes is the length of the node prefix shared by every
	// build over the same network: the N original nodes followed by the
	// M bandwidth nodes, in identical ID order regardless of which
	// commodity subset was built. Dummy nodes (per-commodity,
	// uncapacitated) follow and differ between subset builds, so
	// cross-shard usage exchange is defined over [0, SharedNodes).
	SharedNodes int

	// Subset, when non-nil, maps local commodity index -> index into
	// the source Problem's commodity list (Options.Commodities echoed
	// back). Nil for a full build.
	Subset []int

	// External[i] is flow through shared node i contributed by
	// commodities outside this build (other shards). The barrier is
	// evaluated at own + external usage, so the marginal wave prices
	// congestion at the global operating point. Nil (the single-shard
	// case) means zero external flow everywhere and leaves every code
	// path bitwise-identical to an unsharded build.
	External []float64

	// Member[j][e] reports whether extended edge e is usable by
	// commodity j (trimmed to edges on some source→sink path).
	Member [][]bool
	// Beta[j][e] and Cost[j][e] are the per-commodity edge parameters;
	// zero where Member is false.
	Beta [][]float64
	Cost [][]float64

	// OrigNode maps extended node -> original node (graph.Invalid for
	// bandwidth and dummy nodes). OrigEdge maps extended edge -> the
	// original physical edge it derives from (graph.Invalid for dummy
	// links); Wire marks the (n_ik, k) half whose flow is the physical
	// wire flow.
	OrigNode []graph.NodeID
	OrigEdge []graph.EdgeID
	Wire     []bool

	// Topo[j] is a topological order of the nodes restricted to
	// commodity j's member edges; every member subgraph is a DAG, so
	// routing restricted to member edges is loop-free by construction.
	Topo [][]graph.NodeID

	// CSR-style member adjacency, built once by Build: for commodity j
	// the member out-edges of node n are
	// outEdges[j][outIdx[j][n]:outIdx[j][n+1]], in ascending edge-ID
	// order (the same order a G.Out(n) scan filtered by Member[j]
	// produces, so floating-point accumulation over it is bit-identical
	// to the filtered scan). The hot solver loops iterate these flat
	// slices through MemberOut/MemberIn instead of re-filtering the
	// full adjacency every wave. revTopo[j] caches Topo[j] reversed for
	// the upstream (marginal-cost) waves.
	outIdx   [][]int32
	outEdges [][]graph.EdgeID
	inIdx    [][]int32
	inEdges  [][]graph.EdgeID
	revTopo  [][]graph.NodeID
}

// Options configures the transformation.
type Options struct {
	// Penalty is the barrier family; nil means utility.Reciprocal (the
	// paper's example D(z) = 1/(C−z)).
	Penalty utility.Penalty
	// Epsilon scales the penalty term (the paper's ε; §6 uses 0.2).
	// Zero or negative means 0.2.
	Epsilon float64
	// Commodities restricts the build to the given indices into
	// p.Commodities (ascending, no duplicates). Nil builds all of them.
	// The shared node prefix (originals + bandwidth nodes) is identical
	// across subset builds over the same network; only the dummy nodes
	// and per-commodity tables shrink.
	Commodities []int
}

// Build constructs the extended problem from a validated stream.Problem.
// The resulting graph has N+M+J nodes and 2M+2J edges, as stated in §3.
func Build(p *stream.Problem, opts Options) (*Extended, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Penalty == nil {
		opts.Penalty = utility.Reciprocal{}
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.2
	}

	incl := opts.Commodities
	if incl != nil {
		for i, gi := range incl {
			if gi < 0 || gi >= len(p.Commodities) {
				return nil, fmt.Errorf("transform: commodity index %d out of range [0,%d)", gi, len(p.Commodities))
			}
			if i > 0 && gi <= incl[i-1] {
				return nil, fmt.Errorf("transform: commodity indices must be strictly ascending")
			}
		}
	}

	og := p.Net.G
	n, m := og.NumNodes(), og.NumEdges()
	j := len(p.Commodities)
	if incl != nil {
		j = len(incl)
	}
	x := &Extended{
		G:           graph.New(n+m+j, 2*m+2*j),
		Penalty:     opts.Penalty,
		Epsilon:     opts.Epsilon,
		SharedNodes: n + m,
	}
	if incl != nil {
		x.Subset = append([]int(nil), incl...)
	}

	addNode := func(name string, kind NodeKind, capacity float64, orig graph.NodeID) graph.NodeID {
		id := x.G.AddNode()
		x.Names = append(x.Names, name)
		x.Kinds = append(x.Kinds, kind)
		x.Capacity = append(x.Capacity, capacity)
		x.OrigNode = append(x.OrigNode, orig)
		return id
	}
	addEdge := func(from, to graph.NodeID, orig graph.EdgeID, wire bool) (graph.EdgeID, error) {
		e, err := x.G.AddEdge(from, to)
		if err != nil {
			return graph.Invalid, err
		}
		x.OrigEdge = append(x.OrigEdge, orig)
		x.Wire = append(x.Wire, wire)
		return e, nil
	}

	// Original nodes first, preserving IDs.
	for i := 0; i < n; i++ {
		kind := Proc
		capacity := p.Net.Capacity[i]
		if p.Net.Kinds[i] == stream.Sink {
			kind = SinkNode
			capacity = math.Inf(1)
		}
		addNode(p.Net.Names[i], kind, capacity, graph.NodeID(i))
	}

	// Bandwidth nodes: one per physical edge, capacity B_ik.
	bwNode := make([]graph.NodeID, m)
	procHalf := make([]graph.EdgeID, m) // (i, n_ik)
	wireHalf := make([]graph.EdgeID, m) // (n_ik, k)
	for e := 0; e < m; e++ {
		edge := og.Edge(graph.EdgeID(e))
		name := fmt.Sprintf("bw:%s>%s", p.Net.Names[edge.From], p.Net.Names[edge.To])
		bwNode[e] = addNode(name, Bandwidth, p.Net.Bandwidth[e], graph.Invalid)
		var err error
		if procHalf[e], err = addEdge(edge.From, bwNode[e], graph.EdgeID(e), false); err != nil {
			return nil, err
		}
		if wireHalf[e], err = addEdge(bwNode[e], edge.To, graph.EdgeID(e), true); err != nil {
			return nil, err
		}
	}

	order := incl
	if order == nil {
		order = make([]int, j)
		for i := range order {
			order[i] = i
		}
	}

	// Dummy nodes and links: one super-source per included commodity.
	for _, gi := range order {
		c := p.Commodities[gi]
		d := addNode("dummy:"+c.Name, Dummy, math.Inf(1), graph.Invalid)
		input, err := addEdge(d, c.Source, graph.Invalid, false)
		if err != nil {
			return nil, err
		}
		diff, err := addEdge(d, c.SinkID, graph.Invalid, false)
		if err != nil {
			return nil, err
		}
		x.Commodities = append(x.Commodities, Commodity{
			Name:      c.Name,
			Dummy:     d,
			Source:    c.Source,
			Sink:      c.SinkID,
			MaxRate:   c.MaxRate,
			Utility:   c.Utility,
			Loss:      utility.Loss{U: c.Utility, Lambda: c.MaxRate},
			InputLink: input,
			DiffLink:  diff,
		})
	}

	// Per-commodity edge parameters. A commodity may use extended edge
	// (i, n_ik) with the original β and c, and (n_ik, k) with β=1, c=1
	// (one bandwidth unit transfers one flow unit). Dummy links use
	// β=1, c=1 so the difference-link usage equals the rejected rate.
	ext := x.G.NumEdges()
	x.Member = make([][]bool, j)
	x.Beta = make([][]float64, j)
	x.Cost = make([][]float64, j)
	for ci, gi := range order {
		c := p.Commodities[gi]
		member := make([]bool, ext)
		beta := make([]float64, ext)
		cost := make([]float64, ext)
		for e, params := range c.Edges {
			member[procHalf[e]] = true
			beta[procHalf[e]] = params.Beta
			cost[procHalf[e]] = params.Cost
			member[wireHalf[e]] = true
			beta[wireHalf[e]] = 1
			cost[wireHalf[e]] = 1
		}
		xc := x.Commodities[ci]
		for _, e := range []graph.EdgeID{xc.InputLink, xc.DiffLink} {
			member[e] = true
			beta[e] = 1
			cost[e] = 1
		}
		x.Member[ci] = member
		x.Beta[ci] = beta
		x.Cost[ci] = cost
	}

	x.trimToUseful()

	// Topological orders per commodity member subgraph; Build fails if
	// any is cyclic, which Validate should already have excluded.
	x.Topo = make([][]graph.NodeID, j)
	for ci := range x.Commodities {
		member := x.Member[ci]
		order, err := x.G.TopoSortFiltered(func(e graph.EdgeID) bool { return member[e] })
		if err != nil {
			return nil, fmt.Errorf("transform: commodity %q: %w", x.Commodities[ci].Name, err)
		}
		x.Topo[ci] = order
	}
	x.buildMemberAdjacency()
	return x, nil
}

// buildMemberAdjacency precomputes the flat per-commodity member
// adjacency (MemberOut/MemberIn) and the reverse topological orders.
// Must run after trimToUseful and the Topo construction so the edge
// sets and orders are final.
func (x *Extended) buildMemberAdjacency() {
	nc, nn := len(x.Commodities), x.G.NumNodes()
	x.outIdx = make([][]int32, nc)
	x.outEdges = make([][]graph.EdgeID, nc)
	x.inIdx = make([][]int32, nc)
	x.inEdges = make([][]graph.EdgeID, nc)
	x.revTopo = make([][]graph.NodeID, nc)
	for j := 0; j < nc; j++ {
		member := x.Member[j]
		count := 0
		for e := range member {
			if member[e] {
				count++
			}
		}
		outIdx := make([]int32, nn+1)
		outEdges := make([]graph.EdgeID, 0, count)
		inIdx := make([]int32, nn+1)
		inEdges := make([]graph.EdgeID, 0, count)
		for n := 0; n < nn; n++ {
			outIdx[n] = int32(len(outEdges))
			for _, e := range x.G.Out(graph.NodeID(n)) {
				if member[e] {
					outEdges = append(outEdges, e)
				}
			}
			inIdx[n] = int32(len(inEdges))
			for _, e := range x.G.In(graph.NodeID(n)) {
				if member[e] {
					inEdges = append(inEdges, e)
				}
			}
		}
		outIdx[nn] = int32(len(outEdges))
		inIdx[nn] = int32(len(inEdges))
		x.outIdx[j], x.outEdges[j] = outIdx, outEdges
		x.inIdx[j], x.inEdges[j] = inIdx, inEdges

		rev := make([]graph.NodeID, len(x.Topo[j]))
		for i, n := range x.Topo[j] {
			rev[len(rev)-1-i] = n
		}
		x.revTopo[j] = rev
	}
}

// MemberOut returns commodity j's member out-edges of node n in
// ascending edge-ID order. The slice aliases the precomputed adjacency;
// callers must not modify it.
func (x *Extended) MemberOut(j int, n graph.NodeID) []graph.EdgeID {
	idx := x.outIdx[j]
	return x.outEdges[j][idx[n]:idx[n+1]]
}

// MemberIn returns commodity j's member in-edges of node n in ascending
// edge-ID order. The slice aliases the precomputed adjacency; callers
// must not modify it.
func (x *Extended) MemberIn(j int, n graph.NodeID) []graph.EdgeID {
	idx := x.inIdx[j]
	return x.inEdges[j][idx[n]:idx[n+1]]
}

// RevTopo returns the cached reverse of Topo[j], the processing order of
// the upstream marginal-cost wave. Callers must not modify it.
func (x *Extended) RevTopo(j int) []graph.NodeID { return x.revTopo[j] }

// trimToUseful drops member edges that cannot carry source→sink flow
// (tail unreachable from the dummy node or head unable to reach the
// sink). Flow routed onto such an edge would strand at a dead end and
// violate flow balance, so the optimizers never consider them.
func (x *Extended) trimToUseful() {
	for ci := range x.Commodities {
		c := &x.Commodities[ci]
		member := x.Member[ci]
		keep := func(e graph.EdgeID) bool { return member[e] }
		reach := x.G.ReachableFrom(c.Dummy, keep)
		coreach := x.G.CoReachableTo(c.Sink, keep)
		for e := 0; e < x.G.NumEdges(); e++ {
			if !member[e] {
				continue
			}
			edge := x.G.Edge(graph.EdgeID(e))
			if !reach[edge.From] || !coreach[edge.To] {
				member[e] = false
				x.Beta[ci][e] = 0
				x.Cost[ci][e] = 0
			}
		}
	}
}

// NumCommodities reports the number of commodities.
func (x *Extended) NumCommodities() int { return len(x.Commodities) }

// IsDiffLink reports whether edge e is the difference link of commodity j.
func (x *Extended) IsDiffLink(j int, e graph.EdgeID) bool {
	return x.Commodities[j].DiffLink == e
}

// PenaltyValue returns ε·D_i(z + External_i) for node i, zero for
// uncapacitated nodes (dummies and sinks). With External set (sharded
// solves) the barrier is evaluated at the global operating point: own
// flow z plus the flow other shards route through the same node.
func (x *Extended) PenaltyValue(i graph.NodeID, z float64) float64 {
	c := x.Capacity[i]
	if math.IsInf(c, 1) {
		return 0
	}
	if int(i) < len(x.External) {
		z += x.External[i]
	}
	return x.Epsilon * x.Penalty.Value(z, c)
}

// PenaltyDeriv returns ε·D'_i(z + External_i) for node i, zero for
// uncapacitated nodes. This is the ∂A_i/∂f_ik of eq. (11) for
// non-difference links; under sharding it is the external-price term of
// the marginal wave — congestion priced at global, not shard-local,
// usage.
func (x *Extended) PenaltyDeriv(i graph.NodeID, z float64) float64 {
	c := x.Capacity[i]
	if math.IsInf(c, 1) {
		return 0
	}
	if int(i) < len(x.External) {
		z += x.External[i]
	}
	return x.Epsilon * x.Penalty.Deriv(z, c)
}

// SetExternal installs ext (length ≤ SharedNodes; usually exactly
// SharedNodes) as the external-usage vector the barrier adds to own
// flow. The slice is retained, not copied, so a coordinator can update
// it in place between solve rounds as long as no wave is running. Nil
// restores the unsharded behaviour.
func (x *Extended) SetExternal(ext []float64) { x.External = ext }

// LossValue returns Y_(i,k)(z): the utility loss when edge e carries z,
// nonzero only on difference links (eq. 1).
func (x *Extended) LossValue(j int, e graph.EdgeID, z float64) float64 {
	if !x.IsDiffLink(j, e) {
		return 0
	}
	return x.Commodities[j].Loss.Value(z)
}

// LossDeriv returns Y'_(i,k)(z) — eq. (11)'s U'_k(λ_k − f_ik) branch.
func (x *Extended) LossDeriv(j int, e graph.EdgeID, z float64) float64 {
	if !x.IsDiffLink(j, e) {
		return 0
	}
	return x.Commodities[j].Loss.Deriv(z)
}
