// Package transform implements the paper's §3 problem transformation:
//
//  1. every physical link (i,k) becomes a *bandwidth node* n_ik with
//     capacity B_ik, unifying link and CPU constraints into one
//     per-node resource constraint (Figure 2);
//  2. every commodity j gets a *dummy node* s̄_j feeding the admitted
//     rate over a dummy input link (s̄_j, s_j) and the rejected rate
//     over a dummy difference link (s̄_j, sink_j) whose cost is the
//     utility loss Y (Figure 3, eq. 1);
//  3. capacity constraints move into the objective through convex
//     barrier penalties ε·D_i (Penalty).
//
// The result is the routing problem min A = Y + ε·D that internal/flow,
// internal/gradient and internal/backpressure operate on.
//
// Per-commodity state is held sparsely: each commodity carries a
// Subgraph over only its member nodes and edges (local index maps,
// parameters, topo order, CSR adjacency), so building and iterating J
// commodities costs O(Σ_j member_j), not O(J·(n+m)).
package transform

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/utility"
)

// NodeKind classifies nodes of the extended graph.
type NodeKind int

// Extended-graph node kinds.
const (
	Proc      NodeKind = iota + 1 // original processing node
	Bandwidth                     // n_ik for a physical link
	Dummy                         // s̄_j super-source
	SinkNode                      // original sink
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case Proc:
		return "proc"
	case Bandwidth:
		return "bandwidth"
	case Dummy:
		return "dummy"
	case SinkNode:
		return "sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Commodity is a commodity on the extended graph: traffic λ arrives at
// the dummy node; the admitted share reaches Sink through the network
// and the rejected share through the difference link.
type Commodity struct {
	Name    string
	Dummy   graph.NodeID // s̄_j: where external traffic r arrives
	Source  graph.NodeID // s_j mapped into the extended graph
	Sink    graph.NodeID
	MaxRate float64
	Utility utility.Function
	Loss    utility.Loss // cost of the difference link

	InputLink graph.EdgeID // (s̄_j, s_j)
	DiffLink  graph.EdgeID // (s̄_j, sink_j)
}

// Extended is the transformed problem instance.
type Extended struct {
	G     *graph.Graph
	Names []string
	Kinds []NodeKind
	// Capacity per node; +Inf for dummy nodes and sinks.
	Capacity []float64
	// Penalty is the barrier family D; Epsilon scales it (cost = ε·D).
	Penalty utility.Penalty
	Epsilon float64

	Commodities []Commodity

	// SharedNodes is the length of the node prefix shared by every
	// build over the same network: the N original nodes followed by the
	// M bandwidth nodes, in identical ID order regardless of which
	// commodity subset was built. Dummy nodes (per-commodity,
	// uncapacitated) follow and differ between subset builds, so
	// cross-shard usage exchange is defined over [0, SharedNodes).
	SharedNodes int

	// Subset, when non-nil, maps local commodity index -> index into
	// the source Problem's commodity list (Options.Commodities echoed
	// back). Nil for a full build.
	Subset []int

	// External[i] is flow through shared node i contributed by
	// commodities outside this build (other shards). The barrier is
	// evaluated at own + external usage, so the marginal wave prices
	// congestion at the global operating point. Nil (the single-shard
	// case) means zero external flow everywhere and leaves every code
	// path bitwise-identical to an unsharded build.
	External []float64

	// Sub[j] is commodity j's member subgraph in compact local
	// indexing: parameters, topo order, and adjacency over only the
	// edges the commodity can use, trimmed to dummy→sink paths. This is
	// the only per-commodity representation; global-indexed queries go
	// through MemberEdge/MemberEdges/EdgeBeta/EdgeCost.
	Sub []Subgraph

	// OrigNode maps extended node -> original node (graph.Invalid for
	// bandwidth and dummy nodes). OrigEdge maps extended edge -> the
	// original physical edge it derives from (graph.Invalid for dummy
	// links); Wire marks the (n_ik, k) half whose flow is the physical
	// wire flow.
	OrigNode []graph.NodeID
	OrigEdge []graph.EdgeID
	Wire     []bool
}

// Options configures the transformation.
type Options struct {
	// Penalty is the barrier family; nil means utility.Reciprocal (the
	// paper's example D(z) = 1/(C−z)).
	Penalty utility.Penalty
	// Epsilon scales the penalty term (the paper's ε; §6 uses 0.2).
	// Zero or negative means 0.2.
	Epsilon float64
	// Commodities restricts the build to the given indices into
	// p.Commodities (ascending, no duplicates). Nil builds all of them.
	// The shared node prefix (originals + bandwidth nodes) is identical
	// across subset builds over the same network; only the dummy nodes
	// and per-commodity subgraphs shrink. Validation is restricted to
	// the included commodities, so a subset build's cost is proportional
	// to the subset's footprint.
	Commodities []int
}

// Build constructs the extended problem from a validated stream.Problem.
// The resulting graph has N+M+J nodes and 2M+2J edges, as stated in §3.
func Build(p *stream.Problem, opts Options) (*Extended, error) {
	incl := opts.Commodities
	if incl != nil {
		for i, gi := range incl {
			if gi < 0 || gi >= len(p.Commodities) {
				return nil, fmt.Errorf("transform: commodity index %d out of range [0,%d)", gi, len(p.Commodities))
			}
			if i > 0 && gi <= incl[i-1] {
				return nil, fmt.Errorf("transform: commodity indices must be strictly ascending")
			}
		}
	}
	if err := p.ValidateSubset(incl); err != nil {
		return nil, err
	}
	if opts.Penalty == nil {
		opts.Penalty = utility.Reciprocal{}
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.2
	}

	og := p.Net.G
	n, m := og.NumNodes(), og.NumEdges()
	j := len(p.Commodities)
	if incl != nil {
		j = len(incl)
	}
	x := &Extended{
		G:           graph.New(n+m+j, 2*m+2*j),
		Penalty:     opts.Penalty,
		Epsilon:     opts.Epsilon,
		SharedNodes: n + m,
	}
	if incl != nil {
		x.Subset = append([]int(nil), incl...)
	}

	addNode := func(name string, kind NodeKind, capacity float64, orig graph.NodeID) graph.NodeID {
		id := x.G.AddNode()
		x.Names = append(x.Names, name)
		x.Kinds = append(x.Kinds, kind)
		x.Capacity = append(x.Capacity, capacity)
		x.OrigNode = append(x.OrigNode, orig)
		return id
	}
	addEdge := func(from, to graph.NodeID, orig graph.EdgeID, wire bool) (graph.EdgeID, error) {
		e, err := x.G.AddEdge(from, to)
		if err != nil {
			return graph.Invalid, err
		}
		x.OrigEdge = append(x.OrigEdge, orig)
		x.Wire = append(x.Wire, wire)
		return e, nil
	}

	// Original nodes first, preserving IDs.
	for i := 0; i < n; i++ {
		kind := Proc
		capacity := p.Net.Capacity[i]
		if p.Net.Kinds[i] == stream.Sink {
			kind = SinkNode
			capacity = math.Inf(1)
		}
		addNode(p.Net.Names[i], kind, capacity, graph.NodeID(i))
	}

	// Bandwidth nodes: one per physical edge, capacity B_ik.
	bwNode := make([]graph.NodeID, m)
	procHalf := make([]graph.EdgeID, m) // (i, n_ik)
	wireHalf := make([]graph.EdgeID, m) // (n_ik, k)
	for e := 0; e < m; e++ {
		edge := og.Edge(graph.EdgeID(e))
		name := fmt.Sprintf("bw:%s>%s", p.Net.Names[edge.From], p.Net.Names[edge.To])
		bwNode[e] = addNode(name, Bandwidth, p.Net.Bandwidth[e], graph.Invalid)
		var err error
		if procHalf[e], err = addEdge(edge.From, bwNode[e], graph.EdgeID(e), false); err != nil {
			return nil, err
		}
		if wireHalf[e], err = addEdge(bwNode[e], edge.To, graph.EdgeID(e), true); err != nil {
			return nil, err
		}
	}

	order := incl
	if order == nil {
		order = make([]int, j)
		for i := range order {
			order[i] = i
		}
	}

	// Dummy nodes and links: one super-source per included commodity.
	for _, gi := range order {
		c := p.Commodities[gi]
		d := addNode("dummy:"+c.Name, Dummy, math.Inf(1), graph.Invalid)
		input, err := addEdge(d, c.Source, graph.Invalid, false)
		if err != nil {
			return nil, err
		}
		diff, err := addEdge(d, c.SinkID, graph.Invalid, false)
		if err != nil {
			return nil, err
		}
		x.Commodities = append(x.Commodities, Commodity{
			Name:      c.Name,
			Dummy:     d,
			Source:    c.Source,
			Sink:      c.SinkID,
			MaxRate:   c.MaxRate,
			Utility:   c.Utility,
			Loss:      utility.Loss{U: c.Utility, Lambda: c.MaxRate},
			InputLink: input,
			DiffLink:  diff,
		})
	}

	// Per-commodity sparse subgraphs: parameters, trim, topo order, and
	// CSR adjacency over only the member edges. A commodity may use
	// extended edge (i, n_ik) with the original β and c, and (n_ik, k)
	// with β=1, c=1 (one bandwidth unit transfers one flow unit). Dummy
	// links use β=1, c=1 so the difference-link usage equals the
	// rejected rate.
	x.Sub = make([]Subgraph, j)
	for ci, gi := range order {
		if err := buildSubgraph(x, ci, p.Commodities[gi], procHalf, wireHalf); err != nil {
			return nil, err
		}
	}
	return x, nil
}

// buildSubgraph assembles commodity ci's Subgraph from the stream
// commodity's edge map: candidate member edges in ascending global
// order, the reach/co-reach trim (edges that cannot carry dummy→sink
// flow are dropped — flow routed onto them would strand at a dead end
// and violate flow balance), then local topo order and CSR adjacency.
// Cost is O(k log k) in the commodity's own edge count.
func buildSubgraph(x *Extended, ci int, sc *stream.Commodity, procHalf, wireHalf []graph.EdgeID) error {
	xc := &x.Commodities[ci]

	phys := make([]graph.EdgeID, 0, len(sc.Edges))
	for e := range sc.Edges {
		phys = append(phys, e)
	}
	sort.Slice(phys, func(a, b int) bool { return phys[a] < phys[b] })

	// Candidate member edges in ascending extended-ID order: the
	// (procHalf, wireHalf) pairs follow physical edge order, and the
	// dummy links have the largest IDs of all.
	ne := 2*len(phys) + 2
	s := Subgraph{
		Edges: make([]graph.EdgeID, 0, ne),
		Beta:  make([]float64, 0, ne),
		Cost:  make([]float64, 0, ne),
	}
	for _, e := range phys {
		params := sc.Edges[e]
		s.Edges = append(s.Edges, procHalf[e], wireHalf[e])
		s.Beta = append(s.Beta, params.Beta, 1)
		s.Cost = append(s.Cost, params.Cost, 1)
	}
	s.Edges = append(s.Edges, xc.InputLink, xc.DiffLink)
	s.Beta = append(s.Beta, 1, 1)
	s.Cost = append(s.Cost, 1, 1)

	if err := finishSubgraph(x, ci, &s); err != nil {
		return err
	}
	x.Sub[ci] = s
	return nil
}

// finishSubgraph derives everything past the (Edges, Beta, Cost)
// candidate arrays: node set, endpoints, trim, final compaction, topo
// order, CSR, and the distinguished local indexes.
func finishSubgraph(x *Extended, ci int, s *Subgraph) error {
	xc := &x.Commodities[ci]
	s.indexNodes(x.G)
	s.buildCSR()

	// Trim: keep only edges whose tail is reachable from the dummy and
	// whose head co-reaches the sink, walking local adjacency only.
	dummy := s.LocalNode(xc.Dummy)
	sink := s.LocalNode(xc.Sink)
	if dummy < 0 || sink < 0 {
		return fmt.Errorf("transform: commodity %q: dummy or sink not in member subgraph", xc.Name)
	}
	reach := s.reachable(dummy, s.Out, s.Head)
	coreach := s.reachable(sink, s.In, s.Tail)
	kept := 0
	for le := range s.Edges {
		if reach[s.Tail[le]] && coreach[s.Head[le]] {
			kept++
		}
	}
	if kept != len(s.Edges) {
		edges := make([]graph.EdgeID, 0, kept)
		beta := make([]float64, 0, kept)
		cost := make([]float64, 0, kept)
		for le := range s.Edges {
			if reach[s.Tail[le]] && coreach[s.Head[le]] {
				edges = append(edges, s.Edges[le])
				beta = append(beta, s.Beta[le])
				cost = append(cost, s.Cost[le])
			}
		}
		s.Edges, s.Beta, s.Cost = edges, beta, cost
		s.indexNodes(x.G)
		s.buildCSR()
	}

	if err := s.topoSort(); err != nil {
		return fmt.Errorf("transform: commodity %q: %w", xc.Name, err)
	}

	s.Dummy = s.LocalNode(xc.Dummy)
	s.Source = s.LocalNode(xc.Source)
	s.Sink = s.LocalNode(xc.Sink)
	s.InputLink = s.LocalEdge(xc.InputLink)
	s.DiffLink = s.LocalEdge(xc.DiffLink)
	if s.Dummy < 0 || s.Source < 0 || s.Sink < 0 || s.InputLink < 0 || s.DiffLink < 0 {
		return fmt.Errorf("transform: commodity %q: dummy links trimmed away (sink unreachable?)", xc.Name)
	}
	return nil
}

// indexNodes (re)derives the sorted member node set and the local
// Tail/Head arrays from the current edge list.
func (s *Subgraph) indexNodes(g *graph.Graph) {
	ends := make([]graph.NodeID, 0, 2*len(s.Edges))
	for _, ge := range s.Edges {
		ed := g.Edge(ge)
		ends = append(ends, ed.From, ed.To)
	}
	sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })
	s.Nodes = s.Nodes[:0]
	for i, n := range ends {
		if i == 0 || n != ends[i-1] {
			s.Nodes = append(s.Nodes, n)
		}
	}
	s.Tail = make([]int32, len(s.Edges))
	s.Head = make([]int32, len(s.Edges))
	for le, ge := range s.Edges {
		ed := g.Edge(ge)
		s.Tail[le] = s.LocalNode(ed.From)
		s.Head[le] = s.LocalNode(ed.To)
	}
}

// reachable runs a DFS from start over adj (Out with Head, or In with
// Tail for the co-reachability direction).
func (s *Subgraph) reachable(start int32, adj func(int32) []int32, to []int32) []bool {
	seen := make([]bool, len(s.Nodes))
	stack := []int32{start}
	seen[start] = true
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, le := range adj(l) {
			v := to[le]
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// MemberEdge reports whether extended edge e is usable by commodity j
// (trimmed to edges on some dummy→sink path). O(log member edges);
// hot loops iterate Sub[j] locally instead of probing this.
func (x *Extended) MemberEdge(j int, e graph.EdgeID) bool {
	return x.Sub[j].LocalEdge(e) >= 0
}

// MemberEdges returns commodity j's member edges as ascending extended
// edge IDs. The slice aliases the subgraph's local→global map; callers
// must not modify it.
func (x *Extended) MemberEdges(j int) []graph.EdgeID { return x.Sub[j].Edges }

// EdgeBeta returns β_e(j), zero when e is not a member edge of j.
// O(log member edges); hot loops read Sub[j].Beta locally.
func (x *Extended) EdgeBeta(j int, e graph.EdgeID) float64 {
	if le := x.Sub[j].LocalEdge(e); le >= 0 {
		return x.Sub[j].Beta[le]
	}
	return 0
}

// EdgeCost returns c_e(j), zero when e is not a member edge of j.
// O(log member edges); hot loops read Sub[j].Cost locally.
func (x *Extended) EdgeCost(j int, e graph.EdgeID) float64 {
	if le := x.Sub[j].LocalEdge(e); le >= 0 {
		return x.Sub[j].Cost[le]
	}
	return 0
}

// BuildBytes reports the total heap footprint of the per-commodity
// subgraphs — the quantity behind the streamopt_build_bytes gauge.
// O(Σ member) builds make this proportional to the commodities'
// combined path footprint rather than J·(n+m).
func (x *Extended) BuildBytes() int64 {
	var total int64
	for j := range x.Sub {
		total += x.Sub[j].Bytes()
	}
	return total
}

// NumCommodities reports the number of commodities.
func (x *Extended) NumCommodities() int { return len(x.Commodities) }

// IsDiffLink reports whether edge e is the difference link of commodity j.
func (x *Extended) IsDiffLink(j int, e graph.EdgeID) bool {
	return x.Commodities[j].DiffLink == e
}

// PenaltyValue returns ε·D_i(z + External_i) for node i, zero for
// uncapacitated nodes (dummies and sinks). With External set (sharded
// solves) the barrier is evaluated at the global operating point: own
// flow z plus the flow other shards route through the same node.
func (x *Extended) PenaltyValue(i graph.NodeID, z float64) float64 {
	c := x.Capacity[i]
	if math.IsInf(c, 1) {
		return 0
	}
	if int(i) < len(x.External) {
		z += x.External[i]
	}
	return x.Epsilon * x.Penalty.Value(z, c)
}

// PenaltyDeriv returns ε·D'_i(z + External_i) for node i, zero for
// uncapacitated nodes. This is the ∂A_i/∂f_ik of eq. (11) for
// non-difference links; under sharding it is the external-price term of
// the marginal wave — congestion priced at global, not shard-local,
// usage.
func (x *Extended) PenaltyDeriv(i graph.NodeID, z float64) float64 {
	c := x.Capacity[i]
	if math.IsInf(c, 1) {
		return 0
	}
	if int(i) < len(x.External) {
		z += x.External[i]
	}
	return x.Epsilon * x.Penalty.Deriv(z, c)
}

// SetExternal installs ext (length ≤ SharedNodes; usually exactly
// SharedNodes) as the external-usage vector the barrier adds to own
// flow. The slice is retained, not copied, so a coordinator can update
// it in place between solve rounds as long as no wave is running. Nil
// restores the unsharded behaviour.
func (x *Extended) SetExternal(ext []float64) { x.External = ext }

// LossValue returns Y_(i,k)(z): the utility loss when edge e carries z,
// nonzero only on difference links (eq. 1).
func (x *Extended) LossValue(j int, e graph.EdgeID, z float64) float64 {
	if !x.IsDiffLink(j, e) {
		return 0
	}
	return x.Commodities[j].Loss.Value(z)
}

// LossDeriv returns Y'_(i,k)(z) — eq. (11)'s U'_k(λ_k − f_ik) branch.
func (x *Extended) LossDeriv(j int, e graph.EdgeID, z float64) float64 {
	if !x.IsDiffLink(j, e) {
		return 0
	}
	return x.Commodities[j].Loss.Deriv(z)
}
