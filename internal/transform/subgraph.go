package transform

import (
	"sort"

	"repro/internal/graph"
)

// Subgraph is one commodity's member subgraph in compact local indexing:
// every array is sized by the commodity's member node/edge counts
// (typically O(path length)), never by the full extended graph. Local
// node and edge indexes are assigned in ascending global-ID order, so
// Nodes and Edges double as the sorted local→global maps and global→
// local lookups are binary searches. All hot solver loops (flow
// forecast, marginal/tag/update waves, back-pressure, the queueing
// simulator, the LP reference) iterate these local arrays; the dense
// per-commodity tables the package used to carry (Member/Beta/Cost rows
// over every extended edge) no longer exist.
//
// Determinism contract: Topo orders the member nodes exactly as the
// member subsequence of a full-graph graph.TopoSortFiltered restricted
// to this commodity's edges. Both are Kahn's algorithm with a
// min-node-ID-first frontier, and a non-member node has no kept edges —
// it can never delay or advance a member node's indegree — so the
// min-global-ID-first local sort visits member nodes in the same
// relative order the filtered full-graph sort does. Out lists are in
// ascending global edge-ID order, matching a filtered G.Out scan.
// Floating-point accumulation over (Topo, Out) is therefore
// bit-identical to the dense-table scan it replaced.
type Subgraph struct {
	// Nodes maps local node index → extended-graph node ID, strictly
	// ascending. Only nodes incident to a surviving member edge appear.
	Nodes []graph.NodeID
	// Edges maps local edge index → extended-graph edge ID, strictly
	// ascending. Only edges on some dummy→sink path survive (the trim
	// the dense representation used to apply in place).
	Edges []graph.EdgeID

	// Beta and Cost are the per-edge parameters, indexed by local edge.
	Beta []float64
	Cost []float64

	// Tail and Head are each local edge's endpoints as local node
	// indexes.
	Tail []int32
	Head []int32

	// Topo is the member-DAG topological order over local node indexes
	// (see the determinism contract above). revTopo caches its reverse
	// for the upstream marginal wave.
	Topo    []int32
	revTopo []int32

	// CSR adjacency over local indexes: the out-edges of local node l
	// are outEdges[outIdx[l]:outIdx[l+1]], ascending (global) edge
	// order; likewise inEdges/inIdx.
	outIdx   []int32
	outEdges []int32
	inIdx    []int32
	inEdges  []int32

	// Local node indexes of the commodity's distinguished nodes.
	Dummy  int32
	Source int32
	Sink   int32
	// Local edge indexes of the dummy input and difference links.
	InputLink int32
	DiffLink  int32
}

// NumNodes reports the member node count.
func (s *Subgraph) NumNodes() int { return len(s.Nodes) }

// NumEdges reports the member edge count.
func (s *Subgraph) NumEdges() int { return len(s.Edges) }

// Out returns the local out-edge indexes of local node l in ascending
// global edge-ID order. The slice aliases the CSR arrays; callers must
// not modify it.
func (s *Subgraph) Out(l int32) []int32 {
	return s.outEdges[s.outIdx[l]:s.outIdx[l+1]]
}

// In returns the local in-edge indexes of local node l in ascending
// global edge-ID order. The slice aliases the CSR arrays; callers must
// not modify it.
func (s *Subgraph) In(l int32) []int32 {
	return s.inEdges[s.inIdx[l]:s.inIdx[l+1]]
}

// RevTopo returns the cached reverse of Topo, the processing order of
// the upstream marginal-cost wave. Callers must not modify it.
func (s *Subgraph) RevTopo() []int32 { return s.revTopo }

// LocalNode returns the local index of extended node n, or -1 when n is
// not a member node. O(log member nodes).
func (s *Subgraph) LocalNode(n graph.NodeID) int32 {
	i := sort.Search(len(s.Nodes), func(i int) bool { return s.Nodes[i] >= n })
	if i < len(s.Nodes) && s.Nodes[i] == n {
		return int32(i)
	}
	return -1
}

// LocalEdge returns the local index of extended edge e, or -1 when e is
// not a member edge. O(log member edges).
func (s *Subgraph) LocalEdge(e graph.EdgeID) int32 {
	i := sort.Search(len(s.Edges), func(i int) bool { return s.Edges[i] >= e })
	if i < len(s.Edges) && s.Edges[i] == e {
		return int32(i)
	}
	return -1
}

// Depth returns the number of edges on the longest member path — the L
// in the paper's O(L) message-round analysis, computed locally in
// O(member edges).
func (s *Subgraph) Depth() int {
	depth := make([]int32, len(s.Nodes))
	best := int32(0)
	for _, l := range s.Topo {
		for _, le := range s.Out(l) {
			h := s.Head[le]
			if d := depth[l] + 1; d > depth[h] {
				depth[h] = d
				if d > best {
					best = d
				}
			}
		}
	}
	return int(best)
}

// Bytes reports the heap footprint of this subgraph's arrays — the
// per-commodity build memory the streamopt_build_bytes gauge surfaces.
func (s *Subgraph) Bytes() int64 {
	const (
		idSize  = 8 // graph.NodeID / graph.EdgeID are int
		f64Size = 8
		i32Size = 4
	)
	n := int64(len(s.Nodes))*idSize + int64(len(s.Edges))*idSize
	n += int64(len(s.Beta)+len(s.Cost)) * f64Size
	n += int64(len(s.Tail)+len(s.Head)+len(s.Topo)+len(s.revTopo)) * i32Size
	n += int64(len(s.outIdx)+len(s.outEdges)+len(s.inIdx)+len(s.inEdges)) * i32Size
	return n
}

// buildCSR fills the CSR adjacency from Tail/Head. Edges are processed
// in ascending local (= global) order, so each per-node list comes out
// ascending.
func (s *Subgraph) buildCSR() {
	nn, ne := len(s.Nodes), len(s.Edges)
	s.outIdx = make([]int32, nn+1)
	s.inIdx = make([]int32, nn+1)
	for le := 0; le < ne; le++ {
		s.outIdx[s.Tail[le]+1]++
		s.inIdx[s.Head[le]+1]++
	}
	for l := 0; l < nn; l++ {
		s.outIdx[l+1] += s.outIdx[l]
		s.inIdx[l+1] += s.inIdx[l]
	}
	s.outEdges = make([]int32, ne)
	s.inEdges = make([]int32, ne)
	outNext := append([]int32(nil), s.outIdx[:nn]...)
	inNext := append([]int32(nil), s.inIdx[:nn]...)
	for le := 0; le < ne; le++ {
		t, h := s.Tail[le], s.Head[le]
		s.outEdges[outNext[t]] = int32(le)
		outNext[t]++
		s.inEdges[inNext[h]] = int32(le)
		inNext[h]++
	}
}

// topoSort computes Topo/revTopo with Kahn's algorithm and a min-heap
// frontier over local indexes. Local index order is global node-ID
// order, so min-local-first equals the min-global-ID-first tie-break of
// graph.TopoSortFiltered. Returns graph.ErrCycle on a cyclic member
// subgraph.
func (s *Subgraph) topoSort() error {
	nn := len(s.Nodes)
	indeg := make([]int32, nn)
	for _, h := range s.Head {
		indeg[h]++
	}
	// An ascending array satisfies the heap property, so the initial
	// frontier needs no sift-up pass.
	var frontier int32Heap
	for l := 0; l < nn; l++ {
		if indeg[l] == 0 {
			frontier = append(frontier, int32(l))
		}
	}
	s.Topo = make([]int32, 0, nn)
	for len(frontier) > 0 {
		l := frontier.pop()
		s.Topo = append(s.Topo, l)
		for _, le := range s.Out(l) {
			h := s.Head[le]
			indeg[h]--
			if indeg[h] == 0 {
				frontier.push(h)
			}
		}
	}
	if len(s.Topo) != nn {
		return graph.ErrCycle
	}
	s.revTopo = make([]int32, nn)
	for i, l := range s.Topo {
		s.revTopo[nn-1-i] = l
	}
	return nil
}

// int32Heap is a binary min-heap of local indexes backing the local
// topological sort's deterministic min-first frontier.
type int32Heap []int32

func (h *int32Heap) push(v int32) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *int32Heap) pop() int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l] < s[min] {
			min = l
		}
		if r < len(s) && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
