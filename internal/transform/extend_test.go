package transform

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/randnet"
	"repro/internal/stream"
	"repro/internal/utility"
)

// twoPathProblem builds src -> {a, b} -> sink with distinct parameters.
func twoPathProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 10)
	a, _ := net.AddServer("a", 8)
	b, _ := net.AddServer("b", 6)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 20)
	e2, _ := net.AddLink(src, b, 30)
	e3, _ := net.AddLink(a, sink, 40)
	e4, _ := net.AddLink(b, sink, 50)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 5, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Property 1: 0.5*4 == 2*1.
	for e, params := range map[graph.EdgeID]stream.EdgeParams{
		e1: {Beta: 0.5, Cost: 2},
		e2: {Beta: 2, Cost: 3},
		e3: {Beta: 4, Cost: 1},
		e4: {Beta: 1, Cost: 5},
	} {
		if err := p.SetEdge(c, e, params); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func mustBuild(t *testing.T, p *stream.Problem, opts Options) *Extended {
	t.Helper()
	x, err := Build(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestBuildSizesMatchPaperFormula(t *testing.T) {
	// §3: N nodes, M edges, J commodities -> N+M+J nodes, 2M+2J edges.
	p := twoPathProblem(t)
	n, m, j := p.Net.G.NumNodes(), p.Net.G.NumEdges(), len(p.Commodities)
	x := mustBuild(t, p, Options{})
	if got, want := x.G.NumNodes(), n+m+j; got != want {
		t.Fatalf("extended nodes = %d, want N+M+J = %d", got, want)
	}
	if got, want := x.G.NumEdges(), 2*m+2*j; got != want {
		t.Fatalf("extended edges = %d, want 2M+2J = %d", got, want)
	}
}

func TestBuildPreservesOriginalNodeIDs(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	for i := 0; i < p.Net.G.NumNodes(); i++ {
		if x.OrigNode[i] != graph.NodeID(i) {
			t.Fatalf("node %d maps to %d", i, x.OrigNode[i])
		}
		if x.Names[i] != p.Net.Names[i] {
			t.Fatalf("node %d renamed %q -> %q", i, p.Net.Names[i], x.Names[i])
		}
	}
}

func TestBandwidthNodes(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	og := p.Net.G
	count := 0
	for n := 0; n < x.G.NumNodes(); n++ {
		if x.Kinds[n] != Bandwidth {
			continue
		}
		count++
		node := graph.NodeID(n)
		// Exactly one in and one out edge, same original edge.
		if x.G.InDegree(node) != 1 || x.G.OutDegree(node) != 1 {
			t.Fatalf("bandwidth node %q degree in=%d out=%d", x.Names[n], x.G.InDegree(node), x.G.OutDegree(node))
		}
		in, out := x.G.In(node)[0], x.G.Out(node)[0]
		if x.OrigEdge[in] != x.OrigEdge[out] {
			t.Fatalf("bandwidth node %q spans different original edges", x.Names[n])
		}
		if x.Wire[in] || !x.Wire[out] {
			t.Fatalf("bandwidth node %q wire marking wrong", x.Names[n])
		}
		// Capacity equals the original bandwidth.
		orig := x.OrigEdge[in]
		if x.Capacity[n] != p.Net.Bandwidth[orig] {
			t.Fatalf("bandwidth node %q capacity %g, want %g", x.Names[n], x.Capacity[n], p.Net.Bandwidth[orig])
		}
		// The wire half transfers one-for-one: β = c = 1.
		if x.EdgeBeta(0, out) != 1 || x.EdgeCost(0, out) != 1 {
			t.Fatalf("wire half beta=%g cost=%g, want 1,1", x.EdgeBeta(0, out), x.EdgeCost(0, out))
		}
		// The processing half inherits the original parameters.
		edge := og.Edge(orig)
		want := p.Commodities[0].Edges[orig]
		if x.EdgeBeta(0, in) != want.Beta || x.EdgeCost(0, in) != want.Cost {
			t.Fatalf("proc half (%d,%d) beta=%g cost=%g, want %+v", edge.From, edge.To, x.EdgeBeta(0, in), x.EdgeCost(0, in), want)
		}
	}
	if count != og.NumEdges() {
		t.Fatalf("bandwidth nodes = %d, want %d", count, og.NumEdges())
	}
}

func TestDummyNodes(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		c := &x.Commodities[j]
		if x.Kinds[c.Dummy] != Dummy {
			t.Fatalf("dummy node kind = %v", x.Kinds[c.Dummy])
		}
		if !math.IsInf(x.Capacity[c.Dummy], 1) {
			t.Fatalf("dummy capacity = %g, want +Inf", x.Capacity[c.Dummy])
		}
		if x.G.Edge(c.InputLink).From != c.Dummy || x.G.Edge(c.InputLink).To != c.Source {
			t.Fatal("input link endpoints wrong")
		}
		if x.G.Edge(c.DiffLink).From != c.Dummy || x.G.Edge(c.DiffLink).To != c.Sink {
			t.Fatal("difference link endpoints wrong")
		}
		// Both dummy links carry flow one-for-one.
		for _, e := range []graph.EdgeID{c.InputLink, c.DiffLink} {
			if x.EdgeBeta(j, e) != 1 || x.EdgeCost(j, e) != 1 {
				t.Fatalf("dummy link beta=%g cost=%g, want 1,1", x.EdgeBeta(j, e), x.EdgeCost(j, e))
			}
		}
	}
}

func TestPenaltyZeroOnUncapacitatedNodes(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{Epsilon: 0.2})
	d := x.Commodities[0].Dummy
	if x.PenaltyValue(d, 1e12) != 0 || x.PenaltyDeriv(d, 1e12) != 0 {
		t.Fatal("dummy node has nonzero penalty")
	}
	sink := x.Commodities[0].Sink
	if x.PenaltyValue(sink, 1e12) != 0 {
		t.Fatal("sink has nonzero penalty")
	}
}

func TestPenaltyScaledByEpsilon(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{Epsilon: 0.5})
	src, _ := p.Net.NodeByName("src")
	want := 0.5 * (utility.Reciprocal{}).Value(5, 10)
	if got := x.PenaltyValue(src, 5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PenaltyValue = %g, want %g", got, want)
	}
	wantD := 0.5 * (utility.Reciprocal{}).Deriv(5, 10)
	if got := x.PenaltyDeriv(src, 5); math.Abs(got-wantD) > 1e-12 {
		t.Fatalf("PenaltyDeriv = %g, want %g", got, wantD)
	}
}

func TestDefaultOptions(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	if x.Epsilon != 0.2 {
		t.Fatalf("default epsilon = %g, want 0.2 (§6)", x.Epsilon)
	}
	if x.Penalty.Name() != "reciprocal" {
		t.Fatalf("default penalty = %q, want reciprocal", x.Penalty.Name())
	}
}

func TestLossOnDiffLinkOnly(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	c := &x.Commodities[0]
	// Linear utility, slope 1: Y(x) = x, Y'(x) = 1.
	if got := x.LossValue(0, c.DiffLink, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("LossValue(diff, 2) = %g, want 2", got)
	}
	if got := x.LossDeriv(0, c.DiffLink, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("LossDeriv(diff, 2) = %g, want 1", got)
	}
	if x.LossValue(0, c.InputLink, 2) != 0 || x.LossDeriv(0, c.InputLink, 2) != 0 {
		t.Fatal("loss nonzero on input link")
	}
}

func TestMemberSubgraphsAreDAGs(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		if !x.G.IsAcyclic(func(e graph.EdgeID) bool { return x.MemberEdge(j, e) }) {
			t.Fatalf("commodity %d member subgraph cyclic", j)
		}
		if len(x.Sub[j].Topo) != x.Sub[j].NumNodes() {
			t.Fatalf("commodity %d topo order incomplete", j)
		}
	}
}

func TestTrimDropsDeadEnds(t *testing.T) {
	// src -> a -> sink plus a dead-end src -> b (b has no member path
	// to the sink): the b edge must be trimmed out.
	net := stream.NewNetwork()
	src, _ := net.AddServer("src", 10)
	a, _ := net.AddServer("a", 10)
	b, _ := net.AddServer("b", 10)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 10)
	e2, _ := net.AddLink(a, sink, 10)
	e3, _ := net.AddLink(src, b, 10)
	p := stream.NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 1, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.EdgeID{e1, e2, e3} {
		if err := p.SetEdge(c, e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	x := mustBuild(t, p, Options{})
	// Find the proc half of the dead-end edge: src -> bw:src>b.
	deadEnds := 0
	for e := 0; e < x.G.NumEdges(); e++ {
		if x.OrigEdge[e] == e3 && x.MemberEdge(0, graph.EdgeID(e)) {
			deadEnds++
		}
	}
	if deadEnds != 0 {
		t.Fatalf("dead-end edge still member (%d halves)", deadEnds)
	}
	_ = b
}

func TestBuildRejectsInvalidProblem(t *testing.T) {
	p := stream.NewProblem(stream.NewNetwork())
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestNodeKindString(t *testing.T) {
	for kind, want := range map[NodeKind]string{
		Proc: "proc", Bandwidth: "bandwidth", Dummy: "dummy", SinkNode: "sink",
	} {
		if kind.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(kind), kind.String(), want)
		}
	}
	if got := NodeKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestSubgraphAdjacencyMatchesFilteredScan(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 7, Nodes: 20, Commodities: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		sg := &x.Sub[j]
		for n := 0; n < x.G.NumNodes(); n++ {
			node := graph.NodeID(n)
			var wantOut, wantIn []graph.EdgeID
			for _, e := range x.G.Out(node) {
				if x.MemberEdge(j, e) {
					wantOut = append(wantOut, e)
				}
			}
			for _, e := range x.G.In(node) {
				if x.MemberEdge(j, e) {
					wantIn = append(wantIn, e)
				}
			}
			ln := sg.LocalNode(node)
			var gotOut, gotIn []graph.EdgeID
			if ln >= 0 {
				for _, le := range sg.Out(ln) {
					gotOut = append(gotOut, sg.Edges[le])
				}
				for _, le := range sg.In(ln) {
					gotIn = append(gotIn, sg.Edges[le])
				}
			} else if len(wantOut) > 0 || len(wantIn) > 0 {
				t.Fatalf("commodity %d node %d: not a member node but has member edges", j, n)
			}
			if !equalEdges(gotOut, wantOut) {
				t.Fatalf("commodity %d node %d: local out = %v, filtered scan = %v", j, n, gotOut, wantOut)
			}
			if !equalEdges(gotIn, wantIn) {
				t.Fatalf("commodity %d node %d: local in = %v, filtered scan = %v", j, n, gotIn, wantIn)
			}
		}
	}
}

// TestLocalGlobalRoundTrip checks the local↔global index maps are exact
// inverses: LocalEdge(Edges[le]) == le and LocalNode(Nodes[ln]) == ln
// for every member element, and -1 for every non-member element.
func TestLocalGlobalRoundTrip(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 11, Nodes: 24, Commodities: 4})
	if err != nil {
		t.Fatal(err)
	}
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		sg := &x.Sub[j]
		for le, e := range sg.Edges {
			if got := sg.LocalEdge(e); got != int32(le) {
				t.Fatalf("commodity %d: LocalEdge(Edges[%d]=%d) = %d", j, le, e, got)
			}
		}
		for ln, n := range sg.Nodes {
			if got := sg.LocalNode(n); got != int32(ln) {
				t.Fatalf("commodity %d: LocalNode(Nodes[%d]=%d) = %d", j, ln, n, got)
			}
		}
		for e := 0; e < x.G.NumEdges(); e++ {
			le := sg.LocalEdge(graph.EdgeID(e))
			member := x.MemberEdge(j, graph.EdgeID(e))
			if (le >= 0) != member {
				t.Fatalf("commodity %d edge %d: LocalEdge = %d, MemberEdge = %v", j, e, le, member)
			}
			if le >= 0 && sg.Edges[le] != graph.EdgeID(e) {
				t.Fatalf("commodity %d edge %d: round trip gives %d", j, e, sg.Edges[le])
			}
		}
	}
}

// TestLocalTopoMatchesFilteredSort verifies the ordering contract the
// bitwise-identity argument rests on: the member-node subsequence of
// the full-graph min-ID-first filtered topo sort, restricted to nodes
// that actually appear in the subgraph, equals the local topo order
// mapped back to global IDs.
func TestLocalTopoMatchesFilteredSort(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 3, Nodes: 18, Commodities: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		sg := &x.Sub[j]
		full, err := x.G.TopoSortFiltered(func(e graph.EdgeID) bool { return x.MemberEdge(j, e) })
		if err != nil {
			t.Fatal(err)
		}
		var want []graph.NodeID
		for _, n := range full {
			if sg.LocalNode(n) >= 0 {
				want = append(want, n)
			}
		}
		if len(want) != len(sg.Topo) {
			t.Fatalf("commodity %d: filtered sort has %d member nodes, local topo %d", j, len(want), len(sg.Topo))
		}
		for i, ln := range sg.Topo {
			if sg.Nodes[ln] != want[i] {
				t.Fatalf("commodity %d: local topo[%d] = node %d, filtered sort = %d",
					j, i, sg.Nodes[ln], want[i])
			}
		}
	}
}

func TestRevTopoIsReversedTopo(t *testing.T) {
	p := twoPathProblem(t)
	x := mustBuild(t, p, Options{})
	for j := range x.Commodities {
		sg := &x.Sub[j]
		topo, rev := sg.Topo, sg.RevTopo()
		if len(rev) != len(topo) {
			t.Fatalf("commodity %d: RevTopo has %d nodes, Topo has %d", j, len(rev), len(topo))
		}
		for i, n := range topo {
			if rev[len(rev)-1-i] != n {
				t.Fatalf("commodity %d: RevTopo[%d] = %d, want Topo[%d] = %d",
					j, len(rev)-1-i, rev[len(rev)-1-i], i, n)
			}
		}
	}
}

func equalEdges(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
