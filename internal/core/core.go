// Package core is the public face of the library: it joins the model
// (internal/stream), the §3 transformation (internal/transform), the
// paper's gradient algorithm (internal/gradient, and its message-
// passing twin internal/dist), the back-pressure baseline
// (internal/backpressure) and the LP reference optimum
// (internal/refopt) behind one Solve call that returns admitted rates,
// per-node allocations on the original network, and a convergence
// trace.
//
// Quick start:
//
//	problem, _ := stream.Figure1(stream.Figure1Config{...})
//	result, err := core.Solve(problem, core.Options{})
//	fmt.Println(result.Utility, result.Admitted)
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/backpressure"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/gradient"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

// Algorithm selects the solver.
type Algorithm string

// Available algorithms.
const (
	// Gradient is the paper's §5 distributed gradient-based algorithm
	// (synchronous engine).
	Gradient Algorithm = "gradient"
	// GradientDistributed runs the same algorithm as message-passing
	// actors on the simulated network, with measured protocol costs.
	GradientDistributed Algorithm = "gradient-dist"
	// GradientAdaptive runs the gradient algorithm under backtracking
	// step-size control (no η tuning required; cost is monotone).
	GradientAdaptive Algorithm = "gradient-adaptive"
	// BackPressure is the §6 baseline from the authors' earlier work.
	BackPressure Algorithm = "backpressure"
	// Reference solves the exact optimum by linear programming (PWL
	// approximation for concave utilities).
	Reference Algorithm = "reference"
)

// Options configures Solve. The zero value reproduces the paper's §6
// settings (gradient algorithm, ε = 0.2, η = 0.04).
type Options struct {
	Algorithm Algorithm // default Gradient

	// Shared transformation knobs (§3).
	Epsilon float64         // penalty coefficient ε; default 0.2
	Penalty utility.Penalty // barrier family; default reciprocal

	// Iteration budget; default 5000 for gradient, 200000 for
	// back-pressure (the §6 scale difference).
	MaxIters int
	// SampleEvery keeps every k-th trace point (and always the last);
	// default keeps all for gradient, every 100th for back-pressure.
	SampleEvery int
	// StopAtFraction, when positive, computes the reference optimum and
	// stops as soon as utility reaches the fraction (e.g. 0.95).
	StopAtFraction float64
	// StationaryTol, when positive, stops the gradient algorithms once
	// Theorem 2's necessary optimality condition holds within the
	// tolerance (gradient.CheckStationarity's MaxUsedGap), checked
	// every 50 iterations. Grounded convergence detection without a
	// reference solve.
	StationaryTol float64

	// Gradient knobs (§5).
	Eta             float64 // step scale η; default 0.04
	DisableBlocking bool
	// Workers bounds the engine's per-commodity wave pool
	// (gradient.Config.Workers); zero means GOMAXPROCS. The trajectory
	// is identical for any value.
	Workers int

	// Back-pressure knobs ([6]).
	BufferCap float64
	Damping   float64

	// Reference knobs.
	Segments int

	// WithReference also computes the LP optimum for comparison even
	// when not needed for stopping.
	WithReference bool

	// Recorder, when non-nil, streams per-iteration metrics and JSONL
	// events from the selected solver (see internal/obs). Nil — the
	// default — adds no per-iteration work or allocations.
	Recorder *obs.Recorder

	// Explain, when true, attaches a per-commodity bottleneck
	// attribution (Result.Explain) derived from the final flow
	// evaluation: binding resources with shadow prices and the
	// marginal-utility-vs-path-cost gap. Gradient-family algorithms
	// only (the others do not expose a flow evaluation).
	Explain bool
}

// TracePoint is one sample of the convergence curve (Figure 4).
type TracePoint struct {
	Iteration int
	Utility   float64
	Cost      float64 // A = Y + εD; zero for algorithms without it
}

// NodeUsage reports one original-network element's allocation.
type NodeUsage struct {
	Name        string
	Kind        string // "server" or "link"
	Capacity    float64
	Usage       float64
	Utilization float64 // Usage/Capacity
}

// ResourcePrice is the shadow price of one original-network resource at
// the LP optimum: the marginal total-utility value of one extra unit of
// its capacity (Kelly-style congestion price).
type ResourcePrice struct {
	Name  string
	Kind  string // "server" or "link"
	Price float64
}

// ExplainBinding is one saturated resource in a commodity's
// attribution, mapped back to the original network.
type ExplainBinding struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "server" or "link"
	Utilization float64 `json:"utilization"`
	// Price is the resource's live shadow price ε·D'_i(f_i): the
	// marginal cost it adds per unit of flow through it.
	Price float64 `json:"price"`
}

// CommodityExplain answers "why is this commodity admitted at this
// rate?": the admission marginals of §5 plus the binding resources.
type CommodityExplain struct {
	Name     string  `json:"name"`
	Offered  float64 `json:"offered"`
	Admitted float64 `json:"admitted"`
	Utility  float64 `json:"utility"`
	// MarginalUtility is U'_j(a_j); PathCost the marginal cost of
	// admitting one more unit; Gap their difference (≈0 when admission
	// is capacity-priced, positive when fully admitted with headroom).
	MarginalUtility float64 `json:"marginalUtility"`
	PathCost        float64 `json:"pathCost"`
	Gap             float64 `json:"gap"`
	// Binding lists saturated resources, highest shadow price first;
	// empty when the commodity is limited only by its offered rate.
	Binding []ExplainBinding `json:"binding"`
}

// Result is the outcome of Solve.
type Result struct {
	Algorithm Algorithm
	// Utility is Σ_j U_j(a_j) at the returned operating point.
	Utility float64
	// Admitted is the admission rate a_j per commodity (source units).
	Admitted []float64
	// Commodity names aligned with Admitted.
	Commodities []string
	// Iterations actually executed.
	Iterations int
	// ReferenceUtility is the LP optimum when computed (else NaN).
	ReferenceUtility float64
	// ReachedTargetAt is the first iteration whose utility reached
	// StopAtFraction×reference (-1 when not applicable or never).
	ReachedTargetAt int
	// Trace samples the convergence curve.
	Trace []TracePoint
	// Usage reports per-server and per-link allocations on the
	// original network (not populated for Reference/BackPressure).
	Usage []NodeUsage
	// Messages and Rounds are protocol costs (gradient accounting or
	// simnet measurements; back-pressure buffer exchanges).
	Messages int
	Rounds   int
	// Prices lists resources with positive shadow price at the LP
	// optimum (populated whenever the reference optimum is computed),
	// sorted by price descending.
	Prices []ResourcePrice
	// Explain is the per-commodity bottleneck attribution (only when
	// Options.Explain is set and the algorithm exposes a final flow
	// evaluation).
	Explain []CommodityExplain
}

// ErrUnknownAlgorithm is returned for an unrecognized Options.Algorithm.
var ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

// Solve validates and transforms the problem, runs the selected
// algorithm, and assembles the report.
func Solve(p *stream.Problem, opts Options) (*Result, error) {
	x, err := transform.Build(p, transform.Options{
		Penalty: opts.Penalty,
		Epsilon: opts.Epsilon,
	})
	if err != nil {
		return nil, err
	}
	return SolveExtended(p, x, opts)
}

// SolveExtended runs on an already-built extended problem; callers that
// sweep algorithm parameters over one instance use this to avoid
// rebuilding (and re-validating) the transformation.
func SolveExtended(p *stream.Problem, x *transform.Extended, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = Gradient
	}

	res := &Result{
		Algorithm:        opts.Algorithm,
		ReferenceUtility: math.NaN(),
		ReachedTargetAt:  -1,
	}
	for _, c := range x.Commodities {
		res.Commodities = append(res.Commodities, c.Name)
	}

	target := math.Inf(1)
	if opts.StopAtFraction > 0 || opts.WithReference || opts.Algorithm == Reference {
		ref, err := refopt.Solve(x, refopt.Options{Segments: opts.Segments})
		if err != nil {
			return nil, err
		}
		res.ReferenceUtility = ref.Utility
		res.Prices = collectPrices(p, x, ref)
		if opts.StopAtFraction > 0 {
			target = opts.StopAtFraction * ref.Utility
		}
		if opts.Algorithm == Reference {
			res.Utility = ref.Utility
			res.Admitted = ref.Admitted
			return res, nil
		}
	}

	switch opts.Algorithm {
	case Gradient:
		return res, solveGradient(p, x, opts, target, res)
	case GradientAdaptive:
		return res, solveAdaptive(p, x, opts, target, res)
	case GradientDistributed:
		return res, solveDistributed(p, x, opts, target, res)
	case BackPressure:
		return res, solveBackPressure(x, opts, target, res)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, opts.Algorithm)
	}
}

func gradientDefaults(opts *Options) {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 5000
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 1
	}
}

func solveGradient(p *stream.Problem, x *transform.Extended, opts Options, target float64, res *Result) error {
	gradientDefaults(&opts)
	eng := gradient.New(x, gradient.Config{Eta: opts.Eta, DisableBlocking: opts.DisableBlocking, Workers: opts.Workers, Recorder: opts.Recorder})
	var det gradient.DivergenceDetector
	for i := 0; i < opts.MaxIters; i++ {
		info := eng.Step()
		recordTrace(res, opts, i, opts.MaxIters, TracePoint{
			Iteration: info.Iteration, Utility: info.Utility, Cost: info.Cost,
		})
		if err := det.Observe(info); err != nil {
			opts.Recorder.Divergence(string(Gradient), info.Iteration, err.Error())
			return err
		}
		if res.ReachedTargetAt < 0 && info.Utility >= target {
			res.ReachedTargetAt = info.Iteration
			break
		}
		if opts.StationaryTol > 0 && i%50 == 49 {
			rep := gradient.CheckStationarity(flow.Evaluate(eng.Routing()))
			if rep.MaxUsedGap <= opts.StationaryTol {
				break
			}
		}
	}
	st := eng.Stats()
	res.Iterations = st.Iterations
	res.Messages = st.Messages
	res.Rounds = st.Rounds
	finishFromUsage(p, x, eng.Solution(), res, opts.Explain)
	return nil
}

func solveAdaptive(p *stream.Problem, x *transform.Extended, opts Options, target float64, res *Result) error {
	gradientDefaults(&opts)
	eng := gradient.NewAdaptive(x, gradient.AdaptiveConfig{
		InitialEta:      opts.Eta,
		DisableBlocking: opts.DisableBlocking,
		Workers:         opts.Workers,
		Recorder:        opts.Recorder,
	})
	for i := 0; i < opts.MaxIters; i++ {
		info := eng.Step()
		recordTrace(res, opts, i, opts.MaxIters, TracePoint{
			Iteration: info.Iteration, Utility: info.Utility, Cost: info.Cost,
		})
		res.Iterations++
		if res.ReachedTargetAt < 0 && info.Utility >= target {
			res.ReachedTargetAt = info.Iteration
			break
		}
	}
	finishFromUsage(p, x, eng.Solution(), res, opts.Explain)
	return nil
}

func solveDistributed(p *stream.Problem, x *transform.Extended, opts Options, target float64, res *Result) error {
	gradientDefaults(&opts)
	rt := dist.New(x, gradient.Config{Eta: opts.Eta, DisableBlocking: opts.DisableBlocking, Recorder: opts.Recorder})
	var det gradient.DivergenceDetector
	for i := 0; i < opts.MaxIters; i++ {
		info, err := rt.Step()
		if err != nil {
			return err
		}
		res.Messages += rt.LastMessages
		res.Rounds += rt.LastRounds
		res.Iterations++
		recordTrace(res, opts, i, opts.MaxIters, TracePoint{
			Iteration: info.Iteration, Utility: info.Utility, Cost: info.Cost,
		})
		if err := det.Observe(info); err != nil {
			opts.Recorder.Divergence(string(GradientDistributed), info.Iteration, err.Error())
			return err
		}
		if res.ReachedTargetAt < 0 && info.Utility >= target {
			res.ReachedTargetAt = info.Iteration
			break
		}
	}
	finishFromUsage(p, x, flow.Evaluate(rt.Routing()), res, opts.Explain)
	return nil
}

func solveBackPressure(x *transform.Extended, opts Options, target float64, res *Result) error {
	if opts.MaxIters <= 0 {
		opts.MaxIters = 200000
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 100
	}
	eng := backpressure.New(x, backpressure.Config{
		BufferCap: opts.BufferCap,
		Damping:   opts.Damping,
		Recorder:  opts.Recorder,
	})
	var last backpressure.StepInfo
	for i := 0; i < opts.MaxIters; i++ {
		last = eng.Step()
		res.Iterations++
		recordTrace(res, opts, i, opts.MaxIters, TracePoint{
			Iteration: last.Iteration, Utility: last.Cumulative,
		})
		if res.ReachedTargetAt < 0 && last.Cumulative >= target {
			res.ReachedTargetAt = last.Iteration
			break
		}
	}
	res.Utility = last.Cumulative
	res.Admitted = make([]float64, x.NumCommodities())
	for j := range res.Admitted {
		res.Admitted[j] = eng.AverageRate(j)
	}
	res.Messages = eng.TotalMessages()
	res.Rounds = res.Iterations // O(1) exchange rounds per iteration
	return nil
}

// recordTrace appends a sample obeying SampleEvery, always keeping the
// final iteration.
func recordTrace(res *Result, opts Options, i, maxIters int, tp TracePoint) {
	if i%opts.SampleEvery == 0 || i == maxIters-1 {
		res.Trace = append(res.Trace, tp)
	}
}

// finishFromUsage fills utility, admitted rates and the original-graph
// usage report from a final flow evaluation.
func finishFromUsage(p *stream.Problem, x *transform.Extended, u *flow.Usage, res *Result, explain bool) {
	res.Utility = u.Utility()
	res.Admitted = make([]float64, x.NumCommodities())
	for j := range res.Admitted {
		res.Admitted[j] = u.AdmittedRate(j)
	}
	res.Usage = UsageReport(p, x, u)
	if explain {
		res.Explain = Explain(p, x, u)
	}
}

// Explain maps gradient.AttributeAll back onto the original network:
// one entry per commodity with its admission marginals and its binding
// servers/links named as the operator knows them. The admission server
// publishes this per snapshot (the /explain endpoint); Solve embeds it
// in Result.Explain when Options.Explain is set.
func Explain(p *stream.Problem, x *transform.Extended, u *flow.Usage) []CommodityExplain {
	out := make([]CommodityExplain, 0, x.NumCommodities())
	for _, at := range gradient.AttributeAll(u) {
		ce := CommodityExplain{
			Name:            x.Commodities[at.Commodity].Name,
			Offered:         at.Offered,
			Admitted:        at.Admitted,
			Utility:         at.Utility,
			MarginalUtility: at.MarginalUtility,
			PathCost:        at.PathCost,
			Gap:             at.Gap,
		}
		for _, bn := range at.Binding {
			name, kind, ok := resourceName(p, x, bn.Node)
			if !ok {
				continue // dummy-layer node; never capacitated
			}
			ce.Binding = append(ce.Binding, ExplainBinding{
				Name: name, Kind: kind,
				Utilization: bn.Utilization, Price: bn.Price,
			})
		}
		out = append(out, ce)
	}
	return out
}

// resourceName maps an extended node back to an original server or
// link name (the same mapping UsageReport uses).
func resourceName(p *stream.Problem, x *transform.Extended, n graph.NodeID) (name, kind string, ok bool) {
	switch x.Kinds[n] {
	case transform.Proc:
		return x.Names[n], "server", true
	case transform.Bandwidth:
		orig := x.OrigEdge[x.G.Out(n)[0]]
		edge := p.Net.G.Edge(orig)
		return p.Net.Names[edge.From] + "->" + p.Net.Names[edge.To], "link", true
	}
	return "", "", false
}

// UsageReport maps a flow evaluation back onto the original network:
// one entry per server (extended Proc node) and per link (extended
// Bandwidth node), with capacity, usage, and utilization. The admission
// server publishes this per snapshot; Solve embeds it in Result.Usage.
func UsageReport(p *stream.Problem, x *transform.Extended, u *flow.Usage) []NodeUsage {
	var usage []NodeUsage
	for n := 0; n < x.G.NumNodes(); n++ {
		node := graph.NodeID(n)
		switch x.Kinds[n] {
		case transform.Proc:
			usage = append(usage, NodeUsage{
				Name:        x.Names[n],
				Kind:        "server",
				Capacity:    x.Capacity[n],
				Usage:       u.FNode[n],
				Utilization: u.FNode[n] / x.Capacity[n],
			})
		case transform.Bandwidth:
			orig := x.OrigEdge[x.G.Out(node)[0]]
			edge := p.Net.G.Edge(orig)
			usage = append(usage, NodeUsage{
				Name:        p.Net.Names[edge.From] + "->" + p.Net.Names[edge.To],
				Kind:        "link",
				Capacity:    x.Capacity[n],
				Usage:       u.FNode[n],
				Utilization: u.FNode[n] / x.Capacity[n],
			})
		}
	}
	return usage
}

// UsageReportShared is UsageReport over a merged shared-usage vector: a
// sharded solve has no single flow evaluation covering every commodity,
// but the Proc and Bandwidth nodes all live in the shared node prefix,
// so the per-resource report is assembled from the coordinator's merged
// global usage instead of a Usage's FNode. x may be any shard's build
// over the same network (the prefix layout is identical across subset
// builds); merged must have length x.SharedNodes.
func UsageReportShared(p *stream.Problem, x *transform.Extended, merged []float64) []NodeUsage {
	var usage []NodeUsage
	for n := 0; n < len(merged); n++ {
		node := graph.NodeID(n)
		switch x.Kinds[n] {
		case transform.Proc:
			usage = append(usage, NodeUsage{
				Name:        x.Names[n],
				Kind:        "server",
				Capacity:    x.Capacity[n],
				Usage:       merged[n],
				Utilization: merged[n] / x.Capacity[n],
			})
		case transform.Bandwidth:
			orig := x.OrigEdge[x.G.Out(node)[0]]
			edge := p.Net.G.Edge(orig)
			usage = append(usage, NodeUsage{
				Name:        p.Net.Names[edge.From] + "->" + p.Net.Names[edge.To],
				Kind:        "link",
				Capacity:    x.Capacity[n],
				Usage:       merged[n],
				Utilization: merged[n] / x.Capacity[n],
			})
		}
	}
	return usage
}

// collectPrices maps the reference optimum's positive shadow prices
// back onto original servers and links, sorted by price descending.
func collectPrices(p *stream.Problem, x *transform.Extended, ref *refopt.Result) []ResourcePrice {
	var prices []ResourcePrice
	for n, price := range ref.ShadowPrice {
		if price <= 1e-9 {
			continue
		}
		node := graph.NodeID(n)
		switch x.Kinds[n] {
		case transform.Proc:
			prices = append(prices, ResourcePrice{Name: x.Names[n], Kind: "server", Price: price})
		case transform.Bandwidth:
			orig := x.OrigEdge[x.G.Out(node)[0]]
			edge := p.Net.G.Edge(orig)
			prices = append(prices, ResourcePrice{
				Name:  p.Net.Names[edge.From] + "->" + p.Net.Names[edge.To],
				Kind:  "link",
				Price: price,
			})
		}
	}
	sort.Slice(prices, func(a, b int) bool { return prices[a].Price > prices[b].Price })
	return prices
}
