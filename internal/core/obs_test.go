package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestSolveWithRecorder runs every iterative algorithm with an enabled
// recorder and checks that iteration events and metrics come out.
func TestSolveWithRecorder(t *testing.T) {
	for _, alg := range []Algorithm{Gradient, GradientAdaptive, GradientDistributed, BackPressure} {
		t.Run(string(alg), func(t *testing.T) {
			var buf bytes.Buffer
			rec := obs.NewRecorder(obs.NewRegistry(), obs.NewJSONLSink(&buf))
			res, err := Solve(figure1(t), Options{
				Algorithm: alg,
				MaxIters:  50,
				Recorder:  rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if res.Iterations != 50 {
				t.Fatalf("iterations = %d, want 50", res.Iterations)
			}
			if got := rec.Registry().Counter("streamopt_iterations_total", "").Value(); got != 50 {
				t.Fatalf("iterations counter = %d, want 50", got)
			}

			iterEvents := 0
			sc := bufio.NewScanner(&buf)
			for sc.Scan() {
				var e obs.Event
				if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
					t.Fatalf("invalid JSONL %q: %v", sc.Text(), err)
				}
				if e.Type == obs.EventIteration {
					iterEvents++
					if e.Alg == "" {
						t.Fatalf("iteration event missing alg: %+v", e)
					}
					if e.Feasible == nil {
						t.Fatalf("iteration event missing feasible: %+v", e)
					}
				}
			}
			if iterEvents != 50 {
				t.Fatalf("got %d iteration events, want 50", iterEvents)
			}
		})
	}
}

// TestSolveWithoutRecorderStillWorks pins the nil default.
func TestSolveWithoutRecorderStillWorks(t *testing.T) {
	if _, err := Solve(figure1(t), Options{MaxIters: 10}); err != nil {
		t.Fatal(err)
	}
}
