package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/randnet"
	"repro/internal/stream"
)

func figure1(t *testing.T) *stream.Problem {
	t.Helper()
	p, err := stream.Figure1(stream.Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       30,
		MaxRate2:       30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveDefaultsToGradient(t *testing.T) {
	res, err := Solve(figure1(t), Options{MaxIters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Gradient {
		t.Fatalf("algorithm = %q, want gradient", res.Algorithm)
	}
	if res.Utility <= 0 {
		t.Fatalf("utility = %g, want > 0", res.Utility)
	}
	if len(res.Admitted) != 2 || len(res.Commodities) != 2 {
		t.Fatalf("admitted/commodities = %v/%v", res.Admitted, res.Commodities)
	}
	if res.Iterations != 2000 {
		t.Fatalf("iterations = %d, want 2000", res.Iterations)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestSolveReference(t *testing.T) {
	res, err := Solve(figure1(t), Options{Algorithm: Reference})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.ReferenceUtility) || res.Utility != res.ReferenceUtility {
		t.Fatalf("reference utility mismatch: %g vs %g", res.Utility, res.ReferenceUtility)
	}
}

func TestGradientNeverBeatsReference(t *testing.T) {
	ref, err := Solve(figure1(t), Options{Algorithm: Reference})
	if err != nil {
		t.Fatal(err)
	}
	grad, err := Solve(figure1(t), Options{MaxIters: 4000, Eta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if grad.Utility > ref.Utility+1e-6 {
		t.Fatalf("gradient %g exceeds reference %g", grad.Utility, ref.Utility)
	}
	if grad.Utility < 0.85*ref.Utility {
		t.Fatalf("gradient %g below 85%% of reference %g", grad.Utility, ref.Utility)
	}
}

func TestStopAtFraction(t *testing.T) {
	res, err := Solve(figure1(t), Options{
		MaxIters:       20000,
		Eta:            0.2,
		StopAtFraction: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReachedTargetAt < 0 {
		t.Fatal("target never reached")
	}
	if res.Iterations >= 20000 {
		t.Fatal("did not stop early")
	}
	if math.IsNaN(res.ReferenceUtility) {
		t.Fatal("reference not recorded")
	}
}

func TestSolveBackPressure(t *testing.T) {
	res, err := Solve(figure1(t), Options{
		Algorithm: BackPressure,
		MaxIters:  20000,
		Damping:   0.25,
		BufferCap: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility <= 0 {
		t.Fatalf("utility = %g", res.Utility)
	}
	if res.Rounds != res.Iterations {
		t.Fatalf("back-pressure rounds %d != iterations %d (O(1) claim)", res.Rounds, res.Iterations)
	}
	if res.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestSolveDistributedMatchesGradient(t *testing.T) {
	p, err := randnet.Generate(randnet.Config{Seed: 4, Nodes: 16, Layers: 4, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Solve(p, Options{MaxIters: 300, Eta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Options{Algorithm: GradientDistributed, MaxIters: 300, Eta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Utility-b.Utility) > 1e-6*(1+a.Utility) {
		t.Fatalf("engine %g vs actors %g", a.Utility, b.Utility)
	}
	if a.Messages != b.Messages {
		t.Fatalf("message accounting %d vs measured %d", a.Messages, b.Messages)
	}
}

func TestUsageReport(t *testing.T) {
	res, err := Solve(figure1(t), Options{MaxIters: 3000, Eta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	servers, links := 0, 0
	for _, u := range res.Usage {
		switch u.Kind {
		case "server":
			servers++
		case "link":
			links++
		}
		if u.Utilization > 1+1e-9 {
			t.Fatalf("%s over capacity: %g", u.Name, u.Utilization)
		}
		if u.Utilization < 0 {
			t.Fatalf("%s negative utilization", u.Name)
		}
	}
	if servers != 8 {
		t.Fatalf("servers in report = %d, want 8", servers)
	}
	if links == 0 {
		t.Fatal("no links in report")
	}
}

func TestSolveAdaptive(t *testing.T) {
	res, err := Solve(figure1(t), Options{
		Algorithm:     GradientAdaptive,
		MaxIters:      3000,
		WithReference: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility <= 0 || res.Utility > res.ReferenceUtility+1e-6 {
		t.Fatalf("adaptive utility %g vs reference %g", res.Utility, res.ReferenceUtility)
	}
	// Monotone cost by construction.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cost > res.Trace[i-1].Cost+1e-9 {
			t.Fatalf("adaptive cost rose at trace index %d", i)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	_, err := Solve(figure1(t), Options{Algorithm: "simulated-annealing"})
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestSampleEvery(t *testing.T) {
	res, err := Solve(figure1(t), Options{MaxIters: 1000, SampleEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 11 {
		t.Fatalf("trace samples = %d, want 11", len(res.Trace))
	}
	if res.Trace[len(res.Trace)-1].Iteration != 999 {
		t.Fatal("final iteration not sampled")
	}
}

func TestInvalidProblemRejected(t *testing.T) {
	p := stream.NewProblem(stream.NewNetwork())
	if _, err := Solve(p, Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestPricesReportedWithReference(t *testing.T) {
	res, err := Solve(figure1(t), Options{Algorithm: Reference})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Prices) == 0 {
		t.Fatal("no shadow prices on an overloaded instance")
	}
	for i, pr := range res.Prices {
		if pr.Price <= 0 {
			t.Fatalf("non-positive price %g reported", pr.Price)
		}
		if i > 0 && pr.Price > res.Prices[i-1].Price {
			t.Fatal("prices not sorted descending")
		}
		if pr.Kind != "server" && pr.Kind != "link" {
			t.Fatalf("unknown kind %q", pr.Kind)
		}
	}
}

func TestSolveExplain(t *testing.T) {
	// Figure 1 at these rates is capacity-limited: both commodities are
	// partially rejected, so the attribution must name bottlenecks.
	res, err := Solve(figure1(t), Options{MaxIters: 4000, Eta: 0.2, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explain) != 2 {
		t.Fatalf("explain entries = %d, want 2", len(res.Explain))
	}
	for j, ce := range res.Explain {
		if ce.Name != res.Commodities[j] {
			t.Fatalf("explain[%d] name %q != commodity %q", j, ce.Name, res.Commodities[j])
		}
		if math.Abs(ce.Admitted-res.Admitted[j]) > 1e-9 {
			t.Fatalf("explain[%d] admitted %g != result %g", j, ce.Admitted, res.Admitted[j])
		}
		if ce.Admitted < ce.Offered-1 {
			// Partially rejected: a bottleneck must be named, on the
			// original network, with a positive shadow price.
			if len(ce.Binding) == 0 {
				t.Fatalf("explain[%d] rejected traffic but has no binding resource: %+v", j, ce)
			}
			top := ce.Binding[0]
			if top.Price <= 0 || (top.Kind != "server" && top.Kind != "link") || top.Name == "" {
				t.Fatalf("explain[%d] bad binding entry %+v", j, top)
			}
		}
	}

	// Off by default.
	plain, err := Solve(figure1(t), Options{MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil {
		t.Fatal("Explain populated without Options.Explain")
	}
}

func TestStationaryTolStopsEarly(t *testing.T) {
	res, err := Solve(figure1(t), Options{
		MaxIters:      50000,
		Eta:           0.2,
		StationaryTol: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 50000 {
		t.Fatal("stationarity detection never fired")
	}
	if res.Utility <= 0 {
		t.Fatalf("stopped at utility %g", res.Utility)
	}
}
