// Package workload provides the source-rate processes used to drive
// the dynamic-tracking experiments. The paper's §1 motivates bursty,
// unpredictable stream rates; its optimization consumes only the
// offered rates λ_j, so any process producing the same rate trajectory
// exercises the same code paths (see DESIGN.md §4, substitutions).
package workload

import (
	"math"
	"math/rand"
)

// Process yields an offered rate per epoch. Implementations must be
// deterministic functions of (seed, epoch history): calling Rate for
// epochs 0,1,2,... in order always reproduces the same trajectory.
type Process interface {
	// Rate returns λ for the given epoch; epochs are queried in
	// nondecreasing order.
	Rate(epoch int) float64
	// Name identifies the process family.
	Name() string
}

// Constant offers a fixed rate.
type Constant struct {
	R float64
}

// Rate implements Process.
func (c Constant) Rate(int) float64 { return c.R }

// Name implements Process.
func (c Constant) Name() string { return "constant" }

// Steps cycles through a fixed list of levels, holding each for Period
// epochs. Useful for reproducible load steps.
type Steps struct {
	Levels []float64
	Period int
}

// Rate implements Process.
func (s Steps) Rate(epoch int) float64 {
	if len(s.Levels) == 0 {
		return 0
	}
	if epoch < 0 {
		// A negative epoch would index out of range (Go's % keeps the
		// dividend's sign); clamp to the first phase.
		epoch = 0
	}
	p := s.Period
	if p <= 0 {
		p = 1
	}
	return s.Levels[(epoch/p)%len(s.Levels)]
}

// Name implements Process.
func (s Steps) Name() string { return "steps" }

// OnOff alternates between High (for OnLen epochs) and Low (for
// OffLen): the classic bursty source.
type OnOff struct {
	High, Low     float64
	OnLen, OffLen int
}

// Rate implements Process.
func (o OnOff) Rate(epoch int) float64 {
	if epoch < 0 {
		// Negative epochs would land in a negative remainder and pick
		// the wrong phase; clamp to the start of the first on-period.
		epoch = 0
	}
	on, off := o.OnLen, o.OffLen
	if on <= 0 {
		on = 1
	}
	if off <= 0 {
		off = 1
	}
	if epoch%(on+off) < on {
		return o.High
	}
	return o.Low
}

// Name implements Process.
func (o OnOff) Name() string { return "onoff" }

// MMPP is a Markov-modulated rate process: it holds one of Rates and
// jumps to a uniformly random other state with probability 1/MeanDwell
// each epoch. This is the standard bursty-traffic model; determinism
// comes from the seed.
type MMPP struct {
	rates     []float64
	meanDwell float64
	rng       *rand.Rand
	state     int
	lastEpoch int
}

// NewMMPP builds an MMPP over the given rates.
func NewMMPP(rates []float64, meanDwell float64, seed int64) *MMPP {
	if meanDwell < 1 {
		meanDwell = 1
	}
	return &MMPP{
		rates:     append([]float64(nil), rates...),
		meanDwell: meanDwell,
		rng:       rand.New(rand.NewSource(seed)),
		lastEpoch: -1,
	}
}

// Rate implements Process.
func (m *MMPP) Rate(epoch int) float64 {
	if len(m.rates) == 0 {
		return 0
	}
	for m.lastEpoch < epoch {
		m.lastEpoch++
		if m.lastEpoch == 0 {
			continue // initial state holds for epoch 0
		}
		if m.rng.Float64() < 1/m.meanDwell && len(m.rates) > 1 {
			next := m.rng.Intn(len(m.rates) - 1)
			if next >= m.state {
				next++
			}
			m.state = next
		}
	}
	return m.rates[m.state]
}

// Name implements Process.
func (m *MMPP) Name() string { return "mmpp" }

// Sine modulates smoothly between Base−Amp and Base+Amp with the given
// period; a gentle diurnal-style load curve.
type Sine struct {
	Base, Amp float64
	Period    int
}

// Rate implements Process.
func (s Sine) Rate(epoch int) float64 {
	p := s.Period
	if p <= 0 {
		p = 1
	}
	v := s.Base + s.Amp*math.Sin(2*math.Pi*float64(epoch)/float64(p))
	if v < 0 {
		return 0
	}
	return v
}

// Name implements Process.
func (s Sine) Name() string { return "sine" }

// Spike is a one-shot flash crowd: Base rate until Start, a linear ramp
// over Ramp epochs up to Peak, a hold of Hold epochs, a linear decay
// over Decay epochs back to Base, and Base forever after. Unlike OnOff
// it never repeats — it models the paper's §1 "sudden burst" scenario
// as a single event at a known epoch, which makes saturation sweeps
// reproducible without any randomness.
type Spike struct {
	Base, Peak        float64
	Start             int // first epoch of the ramp
	Ramp, Hold, Decay int // zero Ramp/Decay means an instant edge
}

// Rate implements Process.
func (s Spike) Rate(epoch int) float64 {
	e := epoch - s.Start
	if e < 0 {
		return s.Base
	}
	hold := s.Hold
	if s.Ramp <= 0 && hold <= 0 && s.Decay <= 0 {
		hold = 1 // an all-zero spike still fires for one epoch
	}
	if e < s.Ramp {
		return s.Base + (s.Peak-s.Base)*float64(e+1)/float64(s.Ramp+1)
	}
	e -= max(s.Ramp, 0)
	if e < hold {
		return s.Peak
	}
	e -= max(hold, 0)
	if e < s.Decay {
		return s.Peak - (s.Peak-s.Base)*float64(e+1)/float64(s.Decay+1)
	}
	return s.Base
}

// Name implements Process.
func (s Spike) Name() string { return "spike" }

// Lognormal draws an independent heavy-tailed rate each epoch:
// rate = Median·exp(Sigma·Z) with Z standard normal, so the median is
// Median and the tail weight grows with Sigma. Like MMPP, determinism
// comes from the seed and epochs must be queried in nondecreasing
// order; skipped-over epochs still consume their draws so trajectories
// are identical whether or not every epoch is read.
type Lognormal struct {
	median    float64
	sigma     float64
	rng       *rand.Rand
	lastEpoch int
	last      float64
}

// NewLognormal builds a lognormal process with the given median rate
// and log-space standard deviation sigma (clamped to ≥ 0).
func NewLognormal(median, sigma float64, seed int64) *Lognormal {
	if sigma < 0 {
		sigma = 0
	}
	return &Lognormal{
		median:    median,
		sigma:     sigma,
		rng:       rand.New(rand.NewSource(seed)),
		lastEpoch: -1,
	}
}

// Rate implements Process.
func (l *Lognormal) Rate(epoch int) float64 {
	if epoch < 0 {
		return l.median
	}
	for l.lastEpoch < epoch {
		l.lastEpoch++
		l.last = l.median * math.Exp(l.sigma*l.rng.NormFloat64())
	}
	return l.last
}

// Name implements Process.
func (l *Lognormal) Name() string { return "lognormal" }
