package workload

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	p := Constant{R: 7}
	for _, e := range []int{0, 1, 100} {
		if p.Rate(e) != 7 {
			t.Fatalf("Rate(%d) = %g, want 7", e, p.Rate(e))
		}
	}
}

func TestStepsCycle(t *testing.T) {
	p := Steps{Levels: []float64{1, 2, 3}, Period: 2}
	want := []float64{1, 1, 2, 2, 3, 3, 1, 1}
	for e, w := range want {
		if got := p.Rate(e); got != w {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
}

func TestStepsEmptyAndZeroPeriod(t *testing.T) {
	if (Steps{}).Rate(3) != 0 {
		t.Fatal("empty Steps should yield 0")
	}
	p := Steps{Levels: []float64{5, 6}}
	if p.Rate(0) != 5 || p.Rate(1) != 6 {
		t.Fatal("zero period should default to 1")
	}
}

func TestOnOff(t *testing.T) {
	p := OnOff{High: 10, Low: 1, OnLen: 3, OffLen: 2}
	want := []float64{10, 10, 10, 1, 1, 10, 10, 10, 1, 1}
	for e, w := range want {
		if got := p.Rate(e); got != w {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
}

func TestMMPPDeterministicAndValid(t *testing.T) {
	rates := []float64{5, 20, 60}
	a := NewMMPP(rates, 10, 42)
	b := NewMMPP(rates, 10, 42)
	inSet := func(v float64) bool {
		for _, r := range rates {
			if r == v {
				return true
			}
		}
		return false
	}
	changes := 0
	prev := -1.0
	for e := 0; e < 2000; e++ {
		va, vb := a.Rate(e), b.Rate(e)
		if va != vb {
			t.Fatalf("epoch %d: same seed diverged (%g vs %g)", e, va, vb)
		}
		if !inSet(va) {
			t.Fatalf("epoch %d: rate %g not in state set", e, va)
		}
		if prev >= 0 && va != prev {
			changes++
		}
		prev = va
	}
	// Mean dwell 10 over 2000 epochs: expect ~200 transitions; accept a
	// wide band.
	if changes < 100 || changes > 320 {
		t.Fatalf("state changes = %d, want ≈ 200", changes)
	}
}

func TestMMPPSkippingEpochsMatchesSequential(t *testing.T) {
	a := NewMMPP([]float64{1, 2}, 5, 7)
	b := NewMMPP([]float64{1, 2}, 5, 7)
	for e := 0; e < 100; e++ {
		a.Rate(e)
	}
	want := a.Rate(100)
	if got := b.Rate(100); got != want {
		t.Fatalf("skip-ahead Rate(100) = %g, sequential %g", got, want)
	}
}

func TestSineBoundsAndPeriod(t *testing.T) {
	p := Sine{Base: 10, Amp: 4, Period: 40}
	for e := 0; e < 200; e++ {
		v := p.Rate(e)
		if v < 6-1e-9 || v > 14+1e-9 {
			t.Fatalf("Rate(%d) = %g outside [6,14]", e, v)
		}
	}
	if math.Abs(p.Rate(0)-p.Rate(40)) > 1e-9 {
		t.Fatal("period mismatch")
	}
}

func TestSineClampsNegative(t *testing.T) {
	p := Sine{Base: 1, Amp: 5, Period: 4}
	for e := 0; e < 8; e++ {
		if p.Rate(e) < 0 {
			t.Fatalf("negative rate at %d", e)
		}
	}
}

func TestNames(t *testing.T) {
	for want, p := range map[string]Process{
		"constant": Constant{R: 1},
		"steps":    Steps{Levels: []float64{1}},
		"onoff":    OnOff{High: 1, Low: 0},
		"mmpp":     NewMMPP([]float64{1}, 2, 1),
		"sine":     Sine{Base: 1, Amp: 0, Period: 2},
	} {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMMPPSingleStateNeverChanges(t *testing.T) {
	p := NewMMPP([]float64{7}, 2, 3)
	for e := 0; e < 100; e++ {
		if p.Rate(e) != 7 {
			t.Fatalf("single-state MMPP changed at epoch %d", e)
		}
	}
}

func TestMMPPEmpty(t *testing.T) {
	p := NewMMPP(nil, 2, 3)
	if p.Rate(5) != 0 {
		t.Fatal("empty MMPP should yield 0")
	}
}

func TestMMPPMinimumDwell(t *testing.T) {
	// meanDwell < 1 clamps to 1 (change candidate every epoch) without
	// panicking.
	p := NewMMPP([]float64{1, 2}, 0.1, 9)
	for e := 0; e < 50; e++ {
		v := p.Rate(e)
		if v != 1 && v != 2 {
			t.Fatalf("rate %g outside state set", v)
		}
	}
}
