package workload

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	p := Constant{R: 7}
	for _, e := range []int{0, 1, 100} {
		if p.Rate(e) != 7 {
			t.Fatalf("Rate(%d) = %g, want 7", e, p.Rate(e))
		}
	}
}

func TestStepsCycle(t *testing.T) {
	p := Steps{Levels: []float64{1, 2, 3}, Period: 2}
	want := []float64{1, 1, 2, 2, 3, 3, 1, 1}
	for e, w := range want {
		if got := p.Rate(e); got != w {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
}

func TestStepsEmptyAndZeroPeriod(t *testing.T) {
	if (Steps{}).Rate(3) != 0 {
		t.Fatal("empty Steps should yield 0")
	}
	p := Steps{Levels: []float64{5, 6}}
	if p.Rate(0) != 5 || p.Rate(1) != 6 {
		t.Fatal("zero period should default to 1")
	}
}

func TestOnOff(t *testing.T) {
	p := OnOff{High: 10, Low: 1, OnLen: 3, OffLen: 2}
	want := []float64{10, 10, 10, 1, 1, 10, 10, 10, 1, 1}
	for e, w := range want {
		if got := p.Rate(e); got != w {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
}

func TestMMPPDeterministicAndValid(t *testing.T) {
	rates := []float64{5, 20, 60}
	a := NewMMPP(rates, 10, 42)
	b := NewMMPP(rates, 10, 42)
	inSet := func(v float64) bool {
		for _, r := range rates {
			if r == v {
				return true
			}
		}
		return false
	}
	changes := 0
	prev := -1.0
	for e := 0; e < 2000; e++ {
		va, vb := a.Rate(e), b.Rate(e)
		if va != vb {
			t.Fatalf("epoch %d: same seed diverged (%g vs %g)", e, va, vb)
		}
		if !inSet(va) {
			t.Fatalf("epoch %d: rate %g not in state set", e, va)
		}
		if prev >= 0 && va != prev {
			changes++
		}
		prev = va
	}
	// Mean dwell 10 over 2000 epochs: expect ~200 transitions; accept a
	// wide band.
	if changes < 100 || changes > 320 {
		t.Fatalf("state changes = %d, want ≈ 200", changes)
	}
}

func TestMMPPSkippingEpochsMatchesSequential(t *testing.T) {
	a := NewMMPP([]float64{1, 2}, 5, 7)
	b := NewMMPP([]float64{1, 2}, 5, 7)
	for e := 0; e < 100; e++ {
		a.Rate(e)
	}
	want := a.Rate(100)
	if got := b.Rate(100); got != want {
		t.Fatalf("skip-ahead Rate(100) = %g, sequential %g", got, want)
	}
}

func TestSineBoundsAndPeriod(t *testing.T) {
	p := Sine{Base: 10, Amp: 4, Period: 40}
	for e := 0; e < 200; e++ {
		v := p.Rate(e)
		if v < 6-1e-9 || v > 14+1e-9 {
			t.Fatalf("Rate(%d) = %g outside [6,14]", e, v)
		}
	}
	if math.Abs(p.Rate(0)-p.Rate(40)) > 1e-9 {
		t.Fatal("period mismatch")
	}
}

func TestSineClampsNegative(t *testing.T) {
	p := Sine{Base: 1, Amp: 5, Period: 4}
	for e := 0; e < 8; e++ {
		if p.Rate(e) < 0 {
			t.Fatalf("negative rate at %d", e)
		}
	}
}

func TestNames(t *testing.T) {
	for want, p := range map[string]Process{
		"constant":  Constant{R: 1},
		"steps":     Steps{Levels: []float64{1}},
		"onoff":     OnOff{High: 1, Low: 0},
		"mmpp":      NewMMPP([]float64{1}, 2, 1),
		"sine":      Sine{Base: 1, Amp: 0, Period: 2},
		"spike":     Spike{Base: 1, Peak: 2, Start: 0},
		"lognormal": NewLognormal(1, 0.5, 1),
	} {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// Regression: Steps.Rate on a negative epoch used to index Levels with
// a negative value ((epoch/p)%len keeps the dividend's sign) — a panic
// for most epochs and the wrong phase for multiples of p·len.
func TestStepsNegativeEpochClamps(t *testing.T) {
	p := Steps{Levels: []float64{1, 2, 3}, Period: 2}
	for _, e := range []int{-1, -2, -5, -6, -100} {
		if got := p.Rate(e); got != 1 {
			t.Fatalf("Rate(%d) = %g, want first level 1", e, got)
		}
	}
}

// Regression: OnOff.Rate on a negative epoch computed a negative
// remainder and could report the on-rate deep inside what should be a
// well-defined cycle; negative epochs now clamp to the first on-phase.
func TestOnOffNegativeEpochClamps(t *testing.T) {
	p := OnOff{High: 10, Low: 1, OnLen: 2, OffLen: 3}
	for _, e := range []int{-1, -3, -4, -50} {
		if got := p.Rate(e); got != 10 {
			t.Fatalf("Rate(%d) = %g, want on-rate 10 (clamped to epoch 0)", e, got)
		}
	}
}

func TestSpikeShape(t *testing.T) {
	p := Spike{Base: 5, Peak: 25, Start: 3, Ramp: 3, Hold: 2, Decay: 4}
	want := []float64{
		5, 5, 5, // before the spike
		10, 15, 20, // ramp: base + 20·(1/4, 2/4, 3/4)
		25, 25, // hold
		21, 17, 13, 9, // decay: peak − 20·(1/5, 2/5, 3/5, 4/5)
		5, 5, // back to base
	}
	for e, w := range want {
		if got := p.Rate(e); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
	if p.Rate(-4) != 5 {
		t.Fatal("negative epoch should sit at base")
	}
}

func TestSpikeInstantEdges(t *testing.T) {
	p := Spike{Base: 1, Peak: 9, Start: 2, Hold: 3}
	want := []float64{1, 1, 9, 9, 9, 1, 1}
	for e, w := range want {
		if got := p.Rate(e); got != w {
			t.Fatalf("Rate(%d) = %g, want %g", e, got, w)
		}
	}
	// An all-zero-duration spike still fires for exactly one epoch.
	one := Spike{Base: 1, Peak: 9, Start: 5}
	if one.Rate(4) != 1 || one.Rate(5) != 9 || one.Rate(6) != 1 {
		t.Fatalf("zero-duration spike = %g,%g,%g, want 1,9,1",
			one.Rate(4), one.Rate(5), one.Rate(6))
	}
}

func TestLognormalDeterministicAndPositive(t *testing.T) {
	a := NewLognormal(10, 0.8, 42)
	b := NewLognormal(10, 0.8, 42)
	above := 0
	for e := 0; e < 2000; e++ {
		va, vb := a.Rate(e), b.Rate(e)
		if va != vb {
			t.Fatalf("epoch %d: same seed diverged (%g vs %g)", e, va, vb)
		}
		if va <= 0 || math.IsNaN(va) || math.IsInf(va, 0) {
			t.Fatalf("epoch %d: invalid rate %g", e, va)
		}
		if va > 10 {
			above++
		}
	}
	// Median 10: roughly half the draws land above it.
	if above < 800 || above > 1200 {
		t.Fatalf("draws above median = %d/2000, want ≈ 1000", above)
	}
}

func TestLognormalSkippingEpochsMatchesSequential(t *testing.T) {
	a := NewLognormal(5, 0.5, 7)
	b := NewLognormal(5, 0.5, 7)
	for e := 0; e < 100; e++ {
		a.Rate(e)
	}
	if got, want := b.Rate(100), a.Rate(100); got != want {
		t.Fatalf("skip-ahead Rate(100) = %g, sequential %g", got, want)
	}
	if NewLognormal(5, 0.5, 7).Rate(-3) != 5 {
		t.Fatal("negative epoch should return the median")
	}
}

func TestLognormalZeroSigmaIsConstant(t *testing.T) {
	p := NewLognormal(4, -1, 3) // negative sigma clamps to 0
	for e := 0; e < 20; e++ {
		if got := p.Rate(e); got != 4 {
			t.Fatalf("Rate(%d) = %g, want 4", e, got)
		}
	}
}

// TestGoldenTrajectories pins the first rates of every Process
// implementation: the same configuration (and seed, for the random
// ones) must reproduce these exact trajectories forever — the scenario
// compiler's byte-identical event streams depend on it. Seeded values
// come from math/rand's fixed generator, stable for a fixed seed.
func TestGoldenTrajectories(t *testing.T) {
	const n = 8
	cases := []struct {
		proc Process
		want [n]float64
	}{
		{Constant{R: 3}, [n]float64{3, 3, 3, 3, 3, 3, 3, 3}},
		{Steps{Levels: []float64{1, 4}, Period: 3}, [n]float64{1, 1, 1, 4, 4, 4, 1, 1}},
		{OnOff{High: 9, Low: 2, OnLen: 2, OffLen: 2}, [n]float64{9, 9, 2, 2, 9, 9, 2, 2}},
		{Sine{Base: 10, Amp: 10, Period: 4}, [n]float64{10, 20, 10, 0, 10, 20, 10, 0}},
		{Spike{Base: 1, Peak: 5, Start: 2, Ramp: 1, Hold: 2, Decay: 1}, [n]float64{1, 1, 3, 5, 5, 3, 1, 1}},
	}
	for _, c := range cases {
		for e := 0; e < n; e++ {
			if got := c.proc.Rate(e); math.Abs(got-c.want[e]) > 1e-9 {
				t.Errorf("%s: Rate(%d) = %g, want %g", c.proc.Name(), e, got, c.want[e])
			}
		}
	}
	// Seeded processes: a trajectory must be bit-identical across two
	// instances (the compiler relies on this) and stable under replay.
	for _, mk := range []func() Process{
		func() Process { return NewMMPP([]float64{2, 8, 32}, 4, 99) },
		func() Process { return NewLognormal(10, 1.2, 99) },
	} {
		a, b := mk(), mk()
		var traj [64]float64
		for e := range traj {
			traj[e] = a.Rate(e)
			if vb := b.Rate(e); vb != traj[e] {
				t.Fatalf("%s: epoch %d diverged across instances (%g vs %g)",
					a.Name(), e, traj[e], vb)
			}
		}
		c := mk()
		for e := range traj {
			if vc := c.Rate(e); vc != traj[e] {
				t.Fatalf("%s: replay diverged at epoch %d", a.Name(), e)
			}
		}
	}
}

func TestMMPPSingleStateNeverChanges(t *testing.T) {
	p := NewMMPP([]float64{7}, 2, 3)
	for e := 0; e < 100; e++ {
		if p.Rate(e) != 7 {
			t.Fatalf("single-state MMPP changed at epoch %d", e)
		}
	}
}

func TestMMPPEmpty(t *testing.T) {
	p := NewMMPP(nil, 2, 3)
	if p.Rate(5) != 0 {
		t.Fatal("empty MMPP should yield 0")
	}
}

func TestMMPPMinimumDwell(t *testing.T) {
	// meanDwell < 1 clamps to 1 (change candidate every epoch) without
	// panicking.
	p := NewMMPP([]float64{1, 2}, 0.1, 9)
	for e := 0; e < 50; e++ {
		v := p.Rate(e)
		if v != 1 && v != 2 {
			t.Fatalf("rate %g outside state set", v)
		}
	}
}
