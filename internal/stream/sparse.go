package stream

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// commodityIndex is a sparse local view of one commodity's subgraph
// G_j: sorted member edge/node lists with local endpoints and CSR
// out-adjacency. Validation and potential sweeps walk these arrays, so
// checking a commodity costs O(k log k) in its own edge count instead
// of O(n+m) full-graph passes — the difference between O(Σ member) and
// O(J·(n+m)) when validating many commodities.
type commodityIndex struct {
	edges []graph.EdgeID // ascending
	nodes []graph.NodeID // ascending, endpoints of edges
	tail  []int32        // local tail per local edge
	head  []int32        // local head per local edge

	outIdx   []int32
	outEdges []int32
}

func indexCommodity(g *graph.Graph, c *Commodity) *commodityIndex {
	ci := &commodityIndex{edges: make([]graph.EdgeID, 0, len(c.Edges))}
	for e := range c.Edges {
		ci.edges = append(ci.edges, e)
	}
	sort.Slice(ci.edges, func(a, b int) bool { return ci.edges[a] < ci.edges[b] })

	ends := make([]graph.NodeID, 0, 2*len(ci.edges))
	for _, e := range ci.edges {
		ed := g.Edge(e)
		ends = append(ends, ed.From, ed.To)
	}
	sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })
	for i, n := range ends {
		if i == 0 || n != ends[i-1] {
			ci.nodes = append(ci.nodes, n)
		}
	}

	ci.tail = make([]int32, len(ci.edges))
	ci.head = make([]int32, len(ci.edges))
	for le, e := range ci.edges {
		ed := g.Edge(e)
		ci.tail[le] = ci.localNode(ed.From)
		ci.head[le] = ci.localNode(ed.To)
	}

	nn := len(ci.nodes)
	ci.outIdx = make([]int32, nn+1)
	for _, t := range ci.tail {
		ci.outIdx[t+1]++
	}
	for l := 0; l < nn; l++ {
		ci.outIdx[l+1] += ci.outIdx[l]
	}
	ci.outEdges = make([]int32, len(ci.edges))
	next := append([]int32(nil), ci.outIdx[:nn]...)
	for le := range ci.edges {
		t := ci.tail[le]
		ci.outEdges[next[t]] = int32(le)
		next[t]++
	}
	return ci
}

func (ci *commodityIndex) localNode(n graph.NodeID) int32 {
	i := sort.Search(len(ci.nodes), func(i int) bool { return ci.nodes[i] >= n })
	if i < len(ci.nodes) && ci.nodes[i] == n {
		return int32(i)
	}
	return -1
}

func (ci *commodityIndex) out(l int32) []int32 {
	return ci.outEdges[ci.outIdx[l]:ci.outIdx[l+1]]
}

// topo returns the member nodes in topological order (local indexes),
// min-node-ID-first like graph.TopoSortFiltered restricted to the
// member edges, or graph.ErrCycle.
func (ci *commodityIndex) topo() ([]int32, error) {
	nn := len(ci.nodes)
	indeg := make([]int32, nn)
	for _, h := range ci.head {
		indeg[h]++
	}
	var frontier minHeap32
	for l := 0; l < nn; l++ {
		if indeg[l] == 0 {
			frontier = append(frontier, int32(l))
		}
	}
	order := make([]int32, 0, nn)
	for len(frontier) > 0 {
		l := frontier.pop()
		order = append(order, l)
		for _, le := range ci.out(l) {
			h := ci.head[le]
			indeg[h]--
			if indeg[h] == 0 {
				frontier.push(h)
			}
		}
	}
	if len(order) != nn {
		return nil, graph.ErrCycle
	}
	return order, nil
}

// reachableFrom marks the member nodes reachable from start (inclusive)
// over member edges.
func (ci *commodityIndex) reachableFrom(start int32) []bool {
	seen := make([]bool, len(ci.nodes))
	if start < 0 {
		return seen
	}
	seen[start] = true
	stack := []int32{start}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, le := range ci.out(l) {
			h := ci.head[le]
			if !seen[h] {
				seen[h] = true
				stack = append(stack, h)
			}
		}
	}
	return seen
}

// potentials computes the node potentials g_n(j) over the member nodes
// (local indexing), assigning each reachable node on its first in-edge
// in topo/edge order and checking Property 1 on every later in-edge —
// the same visit order as a full-graph filtered sweep, so the assigned
// products are identical.
func (ci *commodityIndex) potentials(p *Problem, c *Commodity) ([]float64, []bool, error) {
	order, err := ci.topo()
	if err != nil {
		return nil, nil, err
	}
	pot := make([]float64, len(ci.nodes))
	for i := range pot {
		pot[i] = 1
	}
	src := ci.localNode(c.Source)
	reach := ci.reachableFrom(src)
	assigned := make([]bool, len(ci.nodes))
	if src >= 0 {
		assigned[src] = true // g_{s_j}(j) = 1 by definition
	}
	const tol = 1e-9
	for _, u := range order {
		if !reach[u] {
			continue
		}
		for _, le := range ci.out(u) {
			v := ci.head[le]
			want := pot[u] * c.Edges[ci.edges[le]].Beta
			if assigned[v] {
				if relDiff(pot[v], want) > tol {
					return nil, nil, fmt.Errorf("property 1 violated at node %q: potentials %g vs %g",
						p.Net.name(ci.nodes[v]), pot[v], want)
				}
				continue
			}
			pot[v] = want
			assigned[v] = true
		}
	}
	return pot, reach, nil
}

// minHeap32 is a binary min-heap of local node indexes.
type minHeap32 []int32

func (h *minHeap32) push(v int32) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *minHeap32) pop() int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l] < s[min] {
			min = l
		}
		if r < len(s) && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
