package stream

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/utility"
)

func defaultFigure1(t *testing.T) *Problem {
	t.Helper()
	p, err := Figure1(Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       5,
		MaxRate2:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFigure1Validates(t *testing.T) {
	p := defaultFigure1(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Topology(t *testing.T) {
	p := defaultFigure1(t)
	// 8 servers + 2 sinks.
	if got := p.Net.G.NumNodes(); got != 10 {
		t.Fatalf("nodes = %d, want 10", got)
	}
	if len(p.Commodities) != 2 {
		t.Fatalf("commodities = %d, want 2", len(p.Commodities))
	}

	id := func(name string) graph.NodeID {
		n, ok := p.Net.NodeByName(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		return n
	}
	s1 := p.Commodities[0]
	if s1.Name != "S1" || s1.Source != id("server1") {
		t.Fatalf("S1 source = %v, want server1", s1.Source)
	}
	// The solid-link subgraph of Figure 1:
	// 1->2, 1->3, 2->4, 2->5, 3->4, 3->5, 4->6, 5->6, 6->sink1.
	wantS1 := [][2]string{
		{"server1", "server2"}, {"server1", "server3"},
		{"server2", "server4"}, {"server2", "server5"},
		{"server3", "server4"}, {"server3", "server5"},
		{"server4", "server6"}, {"server5", "server6"},
		{"server6", "sink:S1"},
	}
	if len(s1.Edges) != len(wantS1) {
		t.Fatalf("S1 has %d edges, want %d", len(s1.Edges), len(wantS1))
	}
	for _, w := range wantS1 {
		e := p.Net.G.EdgeBetween(id(w[0]), id(w[1]))
		if e == graph.Invalid {
			t.Fatalf("missing link %s->%s", w[0], w[1])
		}
		if !s1.UsesEdge(e) {
			t.Fatalf("S1 does not use %s->%s", w[0], w[1])
		}
	}

	// The dashed-link subgraph: 7->3, 3->5, 5->8, 8->sink2.
	s2 := p.Commodities[1]
	if s2.Source != id("server7") {
		t.Fatalf("S2 source = %v, want server7", s2.Source)
	}
	wantS2 := [][2]string{
		{"server7", "server3"}, {"server3", "server5"},
		{"server5", "server8"}, {"server8", "sink:S2"},
	}
	if len(s2.Edges) != len(wantS2) {
		t.Fatalf("S2 has %d edges, want %d", len(s2.Edges), len(wantS2))
	}
	for _, w := range wantS2 {
		e := p.Net.G.EdgeBetween(id(w[0]), id(w[1]))
		if e == graph.Invalid || !s2.UsesEdge(e) {
			t.Fatalf("S2 missing %s->%s", w[0], w[1])
		}
	}
}

func TestFigure1SharedLinkDifferentParams(t *testing.T) {
	// Link server3->server5 is used by both streams (task B->C for S1,
	// task E->F for S2); per-commodity parameters must be independent.
	p, err := Figure1(Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       5,
		MaxRate2:       5,
		TaskBeta:       map[string]float64{"B": 0.5, "E": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	n3, _ := p.Net.NodeByName("server3")
	n5, _ := p.Net.NodeByName("server5")
	e := p.Net.G.EdgeBetween(n3, n5)
	if e == graph.Invalid {
		t.Fatal("link server3->server5 missing")
	}
	if got := p.Commodities[0].Edges[e].Beta; got != 0.5 {
		t.Fatalf("S1 beta on shared link = %g, want 0.5", got)
	}
	if got := p.Commodities[1].Edges[e].Beta; got != 2 {
		t.Fatalf("S2 beta on shared link = %g, want 2", got)
	}
}

func TestAssembleRejectsAmbiguousSource(t *testing.T) {
	_, err := Assemble(AssemblySpec{
		Servers: []ServerSpec{
			{Name: "x", Capacity: 1, Tasks: []string{"A"}},
			{Name: "y", Capacity: 1, Tasks: []string{"A"}},
		},
		Streams: []StreamSpec{{
			Name:    "s",
			Tasks:   []Task{{Name: "A", Beta: 1, Cost: 1}},
			MaxRate: 1,
			Utility: utility.Linear{Slope: 1},
		}},
	})
	if err == nil {
		t.Fatal("ambiguous source accepted")
	}
}

func TestAssembleRejectsUnhostedTask(t *testing.T) {
	_, err := Assemble(AssemblySpec{
		Servers: []ServerSpec{{Name: "x", Capacity: 1, Tasks: []string{"A"}}},
		Streams: []StreamSpec{{
			Name: "s",
			Tasks: []Task{
				{Name: "A", Beta: 1, Cost: 1},
				{Name: "B", Beta: 1, Cost: 1},
			},
			MaxRate: 1,
			Utility: utility.Linear{Slope: 1},
		}},
	})
	if err == nil {
		t.Fatal("unhosted task accepted")
	}
}

func TestAssembleRejectsEmptyStream(t *testing.T) {
	_, err := Assemble(AssemblySpec{
		Servers: []ServerSpec{{Name: "x", Capacity: 1}},
		Streams: []StreamSpec{{Name: "s", MaxRate: 1, Utility: utility.Linear{Slope: 1}}},
	})
	if err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestAssembleCustomBandwidth(t *testing.T) {
	p, err := Assemble(AssemblySpec{
		Servers: []ServerSpec{
			{Name: "x", Capacity: 1, Tasks: []string{"A"}},
			{Name: "y", Capacity: 1, Tasks: []string{"B"}},
		},
		Streams: []StreamSpec{{
			Name: "s",
			Tasks: []Task{
				{Name: "A", Beta: 1, Cost: 1},
				{Name: "B", Beta: 1, Cost: 1},
			},
			MaxRate: 1,
			Utility: utility.Linear{Slope: 1},
		}},
		LinkBandwidth: func(from, to string) float64 {
			if from == "x" && to == "y" {
				return 42
			}
			return 7
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := p.Net.NodeByName("x")
	y, _ := p.Net.NodeByName("y")
	e := p.Net.G.EdgeBetween(x, y)
	if p.Net.Bandwidth[e] != 42 {
		t.Fatalf("bandwidth(x,y) = %g, want 42", p.Net.Bandwidth[e])
	}
}

func TestFigure1Property1WithShrinkage(t *testing.T) {
	// Per-task β guarantees Property 1 by construction even with
	// nontrivial shrinkage.
	p, err := Figure1(Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       5,
		MaxRate2:       5,
		TaskBeta:       map[string]float64{"A": 0.5, "B": 2, "C": 0.25, "D": 3},
		TaskCost:       map[string]float64{"A": 2, "B": 1, "C": 4, "D": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pot, err := p.Potentials(p.Commodities[0])
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := p.Net.NodeByName("sink:S1")
	want := 0.5 * 2 * 0.25 * 3
	if diff := pot[sink] - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("g(sink) = %g, want %g", pot[sink], want)
	}
}

func TestProblemJSONRoundTrip(t *testing.T) {
	p, err := Figure1(Figure1Config{
		ServerCapacity: 10,
		Bandwidth:      100,
		MaxRate1:       5,
		MaxRate2:       7,
		TaskBeta:       map[string]float64{"B": 0.5, "E": 2},
		TaskCost:       map[string]float64{"A": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProblem(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Net.G.NumNodes() != p.Net.G.NumNodes() || q.Net.G.NumEdges() != p.Net.G.NumEdges() {
		t.Fatal("round trip changed topology size")
	}
	if len(q.Commodities) != len(p.Commodities) {
		t.Fatal("round trip changed commodity count")
	}
	for i, c := range p.Commodities {
		qc := q.Commodities[i]
		if qc.Name != c.Name || qc.MaxRate != c.MaxRate {
			t.Fatalf("commodity %d metadata changed", i)
		}
		if len(qc.Edges) != len(c.Edges) {
			t.Fatalf("commodity %d edge count changed", i)
		}
		for e, params := range c.Edges {
			// Edge IDs are assigned in file order, which MarshalJSON
			// writes in ID order, so IDs are stable across round trips.
			if qc.Edges[e] != params {
				t.Fatalf("commodity %d edge %d params changed: %+v vs %+v", i, e, qc.Edges[e], params)
			}
		}
	}
	data2, err := q.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("JSON not stable across round trips")
	}
}

func TestParseProblemRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"bad kind":     `{"nodes":[{"name":"a","kind":"quantum"}]}`,
		"unknown node": `{"nodes":[{"name":"a","kind":"processing","capacity":1}],"links":[{"from":"a","to":"zz","bandwidth":1}]}`,
		"bad utility": `{"nodes":[{"name":"a","kind":"processing","capacity":1},{"name":"s","kind":"sink"}],
			"links":[{"from":"a","to":"s","bandwidth":1}],
			"commodities":[{"name":"c","source":"a","sink":"s","maxRate":1,"utility":{"type":"nope"},"edges":[]}]}`,
		"missing link": `{"nodes":[{"name":"a","kind":"processing","capacity":1},{"name":"b","kind":"processing","capacity":1},{"name":"s","kind":"sink"}],
			"links":[{"from":"a","to":"s","bandwidth":1}],
			"commodities":[{"name":"c","source":"a","sink":"s","maxRate":1,"utility":{"type":"linear","slope":1},
				"edges":[{"from":"a","to":"b","beta":1,"cost":1}]}]}`,
	}
	for name, data := range cases {
		if _, err := ParseProblem([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
