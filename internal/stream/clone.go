package stream

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/utility"
)

// This file holds the deep-copy and in-place mutation surface the
// admission server (internal/server) edits problems through: the server
// owns one mutable Problem under a lock, Clones it per solve so the
// solver never aliases the copy being edited, and applies rate,
// utility, capacity and membership updates between solves. None of the
// methods are safe for concurrent use with each other; callers
// serialize externally.

// Clone returns a deep copy of the network: the graph, every attribute
// slice, and the name index are fresh allocations, so no mutation of
// the clone is observable through the original (and vice versa).
func (n *Network) Clone() *Network {
	c := &Network{
		G:         n.G.Clone(),
		Names:     append([]string(nil), n.Names...),
		Kinds:     append([]NodeKind(nil), n.Kinds...),
		Capacity:  append([]float64(nil), n.Capacity...),
		Bandwidth: append([]float64(nil), n.Bandwidth...),
		byName:    make(map[string]graph.NodeID, len(n.byName)),
	}
	for name, id := range n.byName {
		c.byName[name] = id
	}
	return c
}

// Clone returns a deep copy of the commodity. The Edges map is copied;
// the Utility function is shared, which is safe because every
// utility.Function in this module is an immutable value type.
func (c *Commodity) Clone() *Commodity {
	d := *c
	d.Edges = make(map[graph.EdgeID]EdgeParams, len(c.Edges))
	for e, params := range c.Edges {
		d.Edges[e] = params
	}
	return &d
}

// Clone returns a deep copy of the problem: network, commodities, and
// every per-edge parameter map. Mutating the clone (rates, capacities,
// edge sets, commodity membership) never leaks into the original.
func (p *Problem) Clone() *Problem {
	c := &Problem{Net: p.Net.Clone()}
	c.Commodities = make([]*Commodity, len(p.Commodities))
	for i, cm := range p.Commodities {
		c.Commodities[i] = cm.Clone()
	}
	return c
}

// CommodityByName finds a commodity by name.
func (p *Problem) CommodityByName(name string) (*Commodity, bool) {
	for _, c := range p.Commodities {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// RemoveCommodity deletes the named commodity, reporting whether it
// existed. The network is untouched: edges stay, they just lose that
// commodity's parameters.
func (p *Problem) RemoveCommodity(name string) bool {
	for i, c := range p.Commodities {
		if c.Name == name {
			p.Commodities = append(p.Commodities[:i], p.Commodities[i+1:]...)
			return true
		}
	}
	return false
}

// SetMaxRate updates a commodity's offered rate λ_j.
func (p *Problem) SetMaxRate(name string, rate float64) error {
	c, ok := p.CommodityByName(name)
	if !ok {
		return fmt.Errorf("stream: unknown commodity %q", name)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("stream: commodity %q: max rate must be positive and finite, got %g", name, rate)
	}
	c.MaxRate = rate
	return nil
}

// SetUtility replaces a commodity's utility function, validating it
// against the commodity's current offered rate.
func (p *Problem) SetUtility(name string, u utility.Function) error {
	c, ok := p.CommodityByName(name)
	if !ok {
		return fmt.Errorf("stream: unknown commodity %q", name)
	}
	if u == nil {
		return fmt.Errorf("stream: commodity %q: nil utility", name)
	}
	if err := utility.Validate(u, c.MaxRate); err != nil {
		return fmt.Errorf("stream: commodity %q: %v", name, err)
	}
	c.Utility = u
	return nil
}

// SetCapacity updates a processing node's computing capacity C_u. This
// is the failure-injection primitive the E8 experiment and the
// admission server share: cutting a capacity models a partial node
// failure, restoring it models recovery.
func (n *Network) SetCapacity(name string, capacity float64) error {
	id, ok := n.byName[name]
	if !ok {
		return fmt.Errorf("stream: unknown node %q", name)
	}
	if n.Kinds[id] != Processing {
		return fmt.Errorf("stream: node %q is a sink, not a processing node", name)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("stream: node %q: capacity must be positive and finite, got %g", name, capacity)
	}
	n.Capacity[id] = capacity
	return nil
}

// SetBandwidth updates a link's bandwidth B_ik, identified by endpoint
// names.
func (n *Network) SetBandwidth(from, to string, bandwidth float64) error {
	f, ok := n.byName[from]
	if !ok {
		return fmt.Errorf("stream: unknown node %q", from)
	}
	t, ok := n.byName[to]
	if !ok {
		return fmt.Errorf("stream: unknown node %q", to)
	}
	e := n.G.EdgeBetween(f, t)
	if e < 0 {
		return fmt.Errorf("stream: no link (%s,%s)", from, to)
	}
	if bandwidth <= 0 || math.IsNaN(bandwidth) || math.IsInf(bandwidth, 0) {
		return fmt.Errorf("stream: link (%s,%s): bandwidth must be positive and finite, got %g", from, to, bandwidth)
	}
	n.Bandwidth[e] = bandwidth
	return nil
}
