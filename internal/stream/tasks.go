package stream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/utility"
)

// Task describes one operator of a stream: executing it on one unit of
// input consumes Cost resource units and emits Beta units of output.
type Task struct {
	Name string
	Beta float64
	Cost float64
}

// StreamSpec is a pipeline of tasks forming one commodity, as in
// Figure 1 (stream S1 = A→B→C→D).
type StreamSpec struct {
	Name    string
	Tasks   []Task
	MaxRate float64
	Utility utility.Function
}

// ServerSpec is one server with its capacity and assigned task names
// (the paper's T_i sets, e.g. T3 = {B, E}).
type ServerSpec struct {
	Name     string
	Capacity float64
	Tasks    []string
}

// AssemblySpec turns a task→server assignment into a Problem: the
// per-commodity DAG of Figure 1 is derived by connecting every server
// hosting stage p of a stream to every server hosting stage p+1, and
// the last stage to a per-stream sink.
type AssemblySpec struct {
	Servers []ServerSpec
	Streams []StreamSpec
	// LinkBandwidth returns the bandwidth of a link; links are created
	// lazily as stream stages require them. Nil means DefaultBandwidth.
	LinkBandwidth func(from, to string) float64
	// DefaultBandwidth is used when LinkBandwidth is nil.
	DefaultBandwidth float64
}

// Assemble builds the Problem. The source of each stream is the server
// hosting its first task; ambiguous first stages (several servers host
// the first task) are rejected because the paper gives each commodity a
// unique source node.
func Assemble(spec AssemblySpec) (*Problem, error) {
	if spec.DefaultBandwidth <= 0 {
		spec.DefaultBandwidth = 1e9
	}
	bw := spec.LinkBandwidth
	if bw == nil {
		bw = func(_, _ string) float64 { return spec.DefaultBandwidth }
	}

	net := NewNetwork()
	hosts := make(map[string][]graph.NodeID) // task name -> hosting servers
	for _, s := range spec.Servers {
		id, err := net.AddServer(s.Name, s.Capacity)
		if err != nil {
			return nil, err
		}
		for _, task := range s.Tasks {
			hosts[task] = append(hosts[task], id)
		}
	}

	p := NewProblem(net)
	for _, st := range spec.Streams {
		if len(st.Tasks) == 0 {
			return nil, fmt.Errorf("stream: %q has no tasks", st.Name)
		}
		first := hosts[st.Tasks[0].Name]
		if len(first) == 0 {
			return nil, fmt.Errorf("stream: %q: task %q hosted nowhere", st.Name, st.Tasks[0].Name)
		}
		if len(first) > 1 {
			return nil, fmt.Errorf("stream: %q: first task %q hosted on %d servers; the source must be unique",
				st.Name, st.Tasks[0].Name, len(first))
		}
		sink, err := net.AddSink("sink:" + st.Name)
		if err != nil {
			return nil, err
		}
		c, err := p.AddCommodity(st.Name, first[0], sink, st.MaxRate, st.Utility)
		if err != nil {
			return nil, err
		}
		// Connect stage p to stage p+1, and the last stage to the sink.
		prev := first
		for stage := 1; stage <= len(st.Tasks); stage++ {
			var next []graph.NodeID
			if stage == len(st.Tasks) {
				next = []graph.NodeID{sink}
			} else {
				next = hosts[st.Tasks[stage].Name]
				if len(next) == 0 {
					return nil, fmt.Errorf("stream: %q: task %q hosted nowhere", st.Name, st.Tasks[stage].Name)
				}
			}
			task := st.Tasks[stage-1] // task executed at the tail
			for _, from := range prev {
				for _, to := range next {
					e := net.G.EdgeBetween(from, to)
					if e == graph.Invalid {
						e, err = net.AddLink(from, to, bw(net.Names[from], net.Names[to]))
						if err != nil {
							return nil, err
						}
					}
					if err := p.SetEdge(c, e, EdgeParams{Beta: task.Beta, Cost: task.Cost}); err != nil {
						return nil, err
					}
				}
			}
			prev = next
		}
	}
	return p, nil
}

// Figure1 builds the paper's running example (Figure 1): 8 servers, two
// streams S1 = A→B→C→D and S2 = G→E→F→H with the assignment
// T1={A} T2={B} T3={B,E} T4={C} T5={C,F} T6={D} T7={G} T8={H}.
// Capacities, bandwidths, rates and task parameters are not given in
// the paper; callers pass them in. Utility defaults to throughput.
type Figure1Config struct {
	ServerCapacity float64            // capacity of every server
	Bandwidth      float64            // bandwidth of every link
	MaxRate1       float64            // λ for stream S1
	MaxRate2       float64            // λ for stream S2
	TaskBeta       map[string]float64 // per-task β; missing tasks get 1
	TaskCost       map[string]float64 // per-task cost; missing tasks get 1
}

// Figure1 assembles the Figure-1 problem instance.
func Figure1(cfg Figure1Config) (*Problem, error) {
	beta := func(t string) float64 {
		if v, ok := cfg.TaskBeta[t]; ok {
			return v
		}
		return 1
	}
	cost := func(t string) float64 {
		if v, ok := cfg.TaskCost[t]; ok {
			return v
		}
		return 1
	}
	task := func(name string) Task {
		return Task{Name: name, Beta: beta(name), Cost: cost(name)}
	}
	spec := AssemblySpec{
		DefaultBandwidth: cfg.Bandwidth,
		Servers: []ServerSpec{
			{Name: "server1", Capacity: cfg.ServerCapacity, Tasks: []string{"A"}},
			{Name: "server2", Capacity: cfg.ServerCapacity, Tasks: []string{"B"}},
			{Name: "server3", Capacity: cfg.ServerCapacity, Tasks: []string{"B", "E"}},
			{Name: "server4", Capacity: cfg.ServerCapacity, Tasks: []string{"C"}},
			{Name: "server5", Capacity: cfg.ServerCapacity, Tasks: []string{"C", "F"}},
			{Name: "server6", Capacity: cfg.ServerCapacity, Tasks: []string{"D"}},
			{Name: "server7", Capacity: cfg.ServerCapacity, Tasks: []string{"G"}},
			{Name: "server8", Capacity: cfg.ServerCapacity, Tasks: []string{"H"}},
		},
		Streams: []StreamSpec{
			{
				Name:    "S1",
				Tasks:   []Task{task("A"), task("B"), task("C"), task("D")},
				MaxRate: cfg.MaxRate1,
				Utility: utility.Linear{Slope: 1},
			},
			{
				Name:    "S2",
				Tasks:   []Task{task("G"), task("E"), task("F"), task("H")},
				MaxRate: cfg.MaxRate2,
				Utility: utility.Linear{Slope: 1},
			},
		},
	}
	return Assemble(spec)
}
