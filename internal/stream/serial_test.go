package stream

import (
	"bytes"
	"testing"

	"repro/internal/utility"
)

// chainProblem builds a→b→t1 with one commodity and a spare sink t2.
func serialChainProblem(t *testing.T) *Problem {
	t.Helper()
	net := NewNetwork()
	a, _ := net.AddServer("a", 10)
	b, _ := net.AddServer("b", 10)
	t1, _ := net.AddSink("t1")
	t2, _ := net.AddSink("t2")
	ab, _ := net.AddLink(a, b, 10)
	bt1, _ := net.AddLink(b, t1, 10)
	if _, err := net.AddLink(b, t2, 10); err != nil {
		t.Fatal(err)
	}
	p := NewProblem(net)
	c, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, ab, EdgeParams{Beta: 0.5, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, bt1, EdgeParams{Beta: 1, Cost: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// MarshalCommodityJSON must produce exactly what AddCommodityFromJSON
// accepts (the scenario compiler's arrival templates depend on the
// round trip), deterministically.
func TestMarshalCommodityJSONRoundTrip(t *testing.T) {
	p := serialChainProblem(t)
	spec, err := p.MarshalCommodityJSON("c1")
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := p.MarshalCommodityJSON("c1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spec, spec2) {
		t.Fatal("MarshalCommodityJSON is not deterministic")
	}

	// Re-admit the same commodity (renamed, onto the free sink t2) on a
	// copy whose original departed.
	q := p.Clone()
	if !q.RemoveCommodity("c1") {
		t.Fatal("remove failed")
	}
	renamed := bytes.Replace(spec, []byte(`"name":"c1"`), []byte(`"name":"c2"`), 1)
	renamed = bytes.Replace(renamed, []byte(`"sink":"t1"`), []byte(`"sink":"t2"`), 1)
	renamed = bytes.Replace(renamed, []byte(`"to":"t1"`), []byte(`"to":"t2"`), 1)
	c, err := q.AddCommodityFromJSON(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c2" || c.MaxRate != 8 || len(c.Edges) != 2 {
		t.Fatalf("round-tripped commodity = %+v", c)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}

	if _, err := p.MarshalCommodityJSON("ghost"); err == nil {
		t.Fatal("unknown commodity should error")
	}
}
