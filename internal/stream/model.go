// Package stream defines the paper's stream-processing model (§2): a
// capacitated network of servers and sinks, commodities (query streams)
// with per-edge shrinkage factors and processing costs, concave
// utilities of admitted rates, and the task→server assignment view of
// Figure 1.
package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/utility"
)

// NodeKind distinguishes processing nodes (set P in the paper, which
// includes sources) from sinks (set J, which only receive data).
type NodeKind int

// Node kinds.
const (
	Processing NodeKind = iota + 1
	Sink
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case Processing:
		return "processing"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Network is the physical graph G0 = (N0, E0): processing nodes with
// computing capacity C_u and links with bandwidth B_ik.
type Network struct {
	G         *graph.Graph
	Names     []string // per node
	Kinds     []NodeKind
	Capacity  []float64 // per node; ignored for sinks
	Bandwidth []float64 // per edge

	byName map[string]graph.NodeID
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		G:      graph.New(0, 0),
		byName: make(map[string]graph.NodeID),
	}
}

// AddServer adds a processing node with the given capacity.
func (n *Network) AddServer(name string, capacity float64) (graph.NodeID, error) {
	return n.addNode(name, Processing, capacity)
}

// AddSink adds a sink node. Sinks cannot process and must have no
// outgoing links.
func (n *Network) AddSink(name string) (graph.NodeID, error) {
	return n.addNode(name, Sink, 0)
}

func (n *Network) addNode(name string, kind NodeKind, capacity float64) (graph.NodeID, error) {
	if _, ok := n.byName[name]; ok {
		return graph.Invalid, fmt.Errorf("stream: duplicate node name %q", name)
	}
	if kind == Processing && (capacity <= 0 || math.IsNaN(capacity)) {
		return graph.Invalid, fmt.Errorf("stream: node %q: capacity must be positive, got %g", name, capacity)
	}
	id := n.G.AddNode()
	n.Names = append(n.Names, name)
	n.Kinds = append(n.Kinds, kind)
	n.Capacity = append(n.Capacity, capacity)
	n.byName[name] = id
	return id, nil
}

// AddLink adds a directed link with the given bandwidth.
func (n *Network) AddLink(from, to graph.NodeID, bandwidth float64) (graph.EdgeID, error) {
	if bandwidth <= 0 || math.IsNaN(bandwidth) {
		return graph.Invalid, fmt.Errorf("stream: link (%s,%s): bandwidth must be positive, got %g",
			n.name(from), n.name(to), bandwidth)
	}
	if n.G.HasNode(from) && n.Kinds[from] == Sink {
		return graph.Invalid, fmt.Errorf("stream: sink %q cannot have outgoing links", n.name(from))
	}
	e, err := n.G.AddEdge(from, to)
	if err != nil {
		return graph.Invalid, err
	}
	n.Bandwidth = append(n.Bandwidth, bandwidth)
	return e, nil
}

// NodeByName looks a node up by name.
func (n *Network) NodeByName(name string) (graph.NodeID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

func (n *Network) name(id graph.NodeID) string {
	if n.G.HasNode(id) {
		return n.Names[id]
	}
	return fmt.Sprintf("#%d", id)
}

// EdgeParams are the per-commodity per-edge parameters: processing one
// unit of the commodity at the edge's tail consumes Cost units of the
// tail's resource and produces Beta units of flow on the edge.
type EdgeParams struct {
	Beta float64 // shrinkage (<1) / expansion (>1) factor, > 0
	Cost float64 // resource units per input unit, > 0
}

// Commodity is one query stream: a source, a sink, a maximum offered
// rate λ, a utility of the admitted rate, and the per-edge parameters
// on the edges of its DAG G_j.
type Commodity struct {
	Name    string
	Source  graph.NodeID
	SinkID  graph.NodeID
	MaxRate float64
	Utility utility.Function

	// Edges maps the edges of the commodity's subgraph G_j to their
	// parameters. Edges absent from the map are not usable by this
	// commodity.
	Edges map[graph.EdgeID]EdgeParams
}

// UsesEdge reports whether edge e belongs to the commodity's subgraph.
func (c *Commodity) UsesEdge(e graph.EdgeID) bool {
	_, ok := c.Edges[e]
	return ok
}

// Problem is a complete problem instance: the network plus the
// commodities to be admitted, routed, and allocated.
type Problem struct {
	Net         *Network
	Commodities []*Commodity
}

// NewProblem wraps a network into an empty problem.
func NewProblem(net *Network) *Problem {
	return &Problem{Net: net}
}

// AddCommodity registers a commodity. Parameters are attached afterward
// with SetEdge.
func (p *Problem) AddCommodity(name string, source, sink graph.NodeID, maxRate float64, u utility.Function) (*Commodity, error) {
	if !p.Net.G.HasNode(source) || !p.Net.G.HasNode(sink) {
		return nil, fmt.Errorf("stream: commodity %q: unknown source or sink", name)
	}
	if p.Net.Kinds[source] != Processing {
		return nil, fmt.Errorf("stream: commodity %q: source %q is not a processing node", name, p.Net.name(source))
	}
	if p.Net.Kinds[sink] != Sink {
		return nil, fmt.Errorf("stream: commodity %q: sink %q is not a sink node", name, p.Net.name(sink))
	}
	if maxRate <= 0 || math.IsNaN(maxRate) {
		return nil, fmt.Errorf("stream: commodity %q: max rate must be positive, got %g", name, maxRate)
	}
	if u == nil {
		return nil, fmt.Errorf("stream: commodity %q: nil utility", name)
	}
	for _, c := range p.Commodities {
		if c.Name == name {
			return nil, fmt.Errorf("stream: duplicate commodity name %q", name)
		}
		if c.SinkID == sink {
			return nil, fmt.Errorf("stream: commodity %q: sink %q already used by %q", name, p.Net.name(sink), c.Name)
		}
	}
	c := &Commodity{
		Name:    name,
		Source:  source,
		SinkID:  sink,
		MaxRate: maxRate,
		Utility: u,
		Edges:   make(map[graph.EdgeID]EdgeParams),
	}
	p.Commodities = append(p.Commodities, c)
	return c, nil
}

// SetEdge attaches edge e to commodity c's subgraph with the given
// parameters.
func (p *Problem) SetEdge(c *Commodity, e graph.EdgeID, params EdgeParams) error {
	if int(e) < 0 || int(e) >= p.Net.G.NumEdges() {
		return fmt.Errorf("stream: commodity %q: unknown edge %d", c.Name, e)
	}
	if params.Beta <= 0 || math.IsNaN(params.Beta) {
		return fmt.Errorf("stream: commodity %q edge %d: beta must be positive, got %g", c.Name, e, params.Beta)
	}
	if params.Cost <= 0 || math.IsNaN(params.Cost) {
		return fmt.Errorf("stream: commodity %q edge %d: cost must be positive, got %g", c.Name, e, params.Cost)
	}
	c.Edges[e] = params
	return nil
}

// errValidate is the sentinel wrapped by every Validate failure.
var errValidate = errors.New("stream: invalid problem")

// Validate checks the structural assumptions of §2:
//   - every commodity subgraph G_j is a DAG,
//   - the sink is reachable from the source within G_j,
//   - sinks never appear as edge tails in any G_j,
//   - Property 1: the product of β along every source→node path is
//     path-independent (checked via node potentials g_n(j)),
//   - utilities are concave and increasing on [0, λ_j].
//
// Each commodity is checked on a sparse local index of its own
// subgraph, so the total cost is O(Σ_j member_j), not O(J·(n+m)).
func (p *Problem) Validate() error {
	return p.ValidateSubset(nil)
}

// ValidateSubset runs Validate's checks restricted to the commodities
// at the given indices into p.Commodities (all of them when incl is
// nil). Subset builds (sharding) validate only their own commodities,
// keeping a shard's cost proportional to its own footprint.
func (p *Problem) ValidateSubset(incl []int) error {
	if len(p.Commodities) == 0 {
		return fmt.Errorf("%w: no commodities", errValidate)
	}
	if incl == nil {
		for _, c := range p.Commodities {
			if err := p.validateCommodity(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, gi := range incl {
		if gi < 0 || gi >= len(p.Commodities) {
			return fmt.Errorf("%w: commodity index %d out of range [0,%d)", errValidate, gi, len(p.Commodities))
		}
		if err := p.validateCommodity(p.Commodities[gi]); err != nil {
			return err
		}
	}
	return nil
}

func (p *Problem) validateCommodity(c *Commodity) error {
	g := p.Net.G
	ci := indexCommodity(g, c)
	if _, err := ci.topo(); err != nil {
		return fmt.Errorf("%w: commodity %q subgraph is cyclic", errValidate, c.Name)
	}
	for le, e := range ci.edges {
		if p.Net.Kinds[ci.nodes[ci.tail[le]]] == Sink {
			return fmt.Errorf("%w: commodity %q: edge %d leaves sink %q",
				errValidate, c.Name, e, p.Net.name(ci.nodes[ci.tail[le]]))
		}
	}
	sink := ci.localNode(c.SinkID)
	reach := ci.reachableFrom(ci.localNode(c.Source))
	if sink < 0 || !reach[sink] {
		return fmt.Errorf("%w: commodity %q: sink %q unreachable from source %q",
			errValidate, c.Name, p.Net.name(c.SinkID), p.Net.name(c.Source))
	}
	if _, _, err := ci.potentials(p, c); err != nil {
		return fmt.Errorf("%w: commodity %q: %v", errValidate, c.Name, err)
	}
	if err := utility.Validate(c.Utility, c.MaxRate); err != nil {
		return fmt.Errorf("%w: commodity %q: %v", errValidate, c.Name, err)
	}
	return nil
}

// Potentials computes the node potentials g_n(j) of §2: the product of
// β along any path from the source to n. It returns an error if two
// paths disagree, i.e. Property 1 is violated. Unreachable nodes get
// potential 1, matching the paper's convention. The sweep runs on a
// sparse local index of the commodity's subgraph and scatters into the
// full-width result, so it costs O(member), not O(n+m).
func (p *Problem) Potentials(c *Commodity) ([]float64, error) {
	g := p.Net.G
	ci := indexCommodity(g, c)
	local, reach, err := ci.potentials(p, c)
	if err != nil {
		return nil, err
	}
	pot := make([]float64, g.NumNodes())
	for i := range pot {
		pot[i] = 1
	}
	for l, n := range ci.nodes {
		if reach[l] {
			pot[n] = local[l]
		}
	}
	return pot, nil
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(a) + math.Abs(b))
}
