package stream

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/utility"
)

// chainProblem builds src -> mid -> sink with one commodity.
func chainProblem(t *testing.T, beta1, beta2 float64) (*Problem, *Commodity) {
	t.Helper()
	net := NewNetwork()
	src, err := net.AddServer("src", 10)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := net.AddServer("mid", 10)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := net.AddSink("sink")
	if err != nil {
		t.Fatal(err)
	}
	e1, err := net.AddLink(src, mid, 100)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := net.AddLink(mid, sink, 100)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 5, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e1, EdgeParams{Beta: beta1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e2, EdgeParams{Beta: beta2, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestNetworkBasics(t *testing.T) {
	net := NewNetwork()
	a, err := net.AddServer("a", 7)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := net.NodeByName("a"); !ok || id != a {
		t.Fatalf("NodeByName(a) = %d,%v", id, ok)
	}
	if _, ok := net.NodeByName("nope"); ok {
		t.Fatal("NodeByName(nope) found something")
	}
	if _, err := net.AddServer("a", 3); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := net.AddServer("neg", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestSinkCannotHaveOutgoingLinks(t *testing.T) {
	net := NewNetwork()
	s, _ := net.AddSink("s")
	a, _ := net.AddServer("a", 1)
	if _, err := net.AddLink(s, a, 1); err == nil {
		t.Fatal("link out of a sink accepted")
	}
}

func TestAddLinkRejectsBadBandwidth(t *testing.T) {
	net := NewNetwork()
	a, _ := net.AddServer("a", 1)
	b, _ := net.AddServer("b", 1)
	if _, err := net.AddLink(a, b, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestAddCommodityChecksRoles(t *testing.T) {
	net := NewNetwork()
	a, _ := net.AddServer("a", 1)
	b, _ := net.AddServer("b", 1)
	s, _ := net.AddSink("s")
	p := NewProblem(net)
	if _, err := p.AddCommodity("x", s, s, 1, utility.Linear{Slope: 1}); err == nil {
		t.Fatal("sink as source accepted")
	}
	if _, err := p.AddCommodity("x", a, b, 1, utility.Linear{Slope: 1}); err == nil {
		t.Fatal("processing node as sink accepted")
	}
	if _, err := p.AddCommodity("x", a, s, -2, utility.Linear{Slope: 1}); err == nil {
		t.Fatal("negative max rate accepted")
	}
	if _, err := p.AddCommodity("x", a, s, 1, nil); err == nil {
		t.Fatal("nil utility accepted")
	}
	if _, err := p.AddCommodity("x", a, s, 1, utility.Linear{Slope: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddCommodity("x", a, s, 1, utility.Linear{Slope: 1}); err == nil {
		t.Fatal("duplicate commodity name accepted")
	}
	if _, err := p.AddCommodity("y", b, s, 1, utility.Linear{Slope: 1}); err == nil {
		t.Fatal("shared sink accepted")
	}
}

func TestSetEdgeValidatesParams(t *testing.T) {
	p, c := chainProblem(t, 1, 1)
	if err := p.SetEdge(c, 0, EdgeParams{Beta: -1, Cost: 1}); err == nil {
		t.Fatal("negative beta accepted")
	}
	if err := p.SetEdge(c, 0, EdgeParams{Beta: 1, Cost: 0}); err == nil {
		t.Fatal("zero cost accepted")
	}
	if err := p.SetEdge(c, 99, EdgeParams{Beta: 1, Cost: 1}); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestValidateAcceptsChain(t *testing.T) {
	p, _ := chainProblem(t, 0.5, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnreachableSink(t *testing.T) {
	p, c := chainProblem(t, 1, 1)
	delete(c.Edges, 1) // drop mid->sink from the commodity subgraph
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable-sink error", err)
	}
}

func TestValidateRejectsCyclicSubgraph(t *testing.T) {
	p, c := chainProblem(t, 1, 1)
	// Add a back edge mid -> src and include it in the subgraph.
	mid, _ := p.Net.NodeByName("mid")
	src, _ := p.Net.NodeByName("src")
	e, err := p.Net.AddLink(mid, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c, e, EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cyclic error", err)
	}
}

func TestValidateRejectsNoCommodities(t *testing.T) {
	p := NewProblem(NewNetwork())
	if err := p.Validate(); err == nil {
		t.Fatal("empty problem accepted")
	}
}

// diamondProblem builds src -> {a,b} -> sink where both branches exist.
func diamondProblem(t *testing.T, betaSrcA, betaSrcB, betaA, betaB float64) (*Problem, *Commodity) {
	t.Helper()
	net := NewNetwork()
	src, _ := net.AddServer("src", 10)
	a, _ := net.AddServer("a", 10)
	b, _ := net.AddServer("b", 10)
	sink, _ := net.AddSink("sink")
	e1, _ := net.AddLink(src, a, 100)
	e2, _ := net.AddLink(src, b, 100)
	e3, _ := net.AddLink(a, sink, 100)
	e4, _ := net.AddLink(b, sink, 100)
	p := NewProblem(net)
	c, err := p.AddCommodity("S", src, sink, 5, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	for e, beta := range map[graph.EdgeID]float64{e1: betaSrcA, e2: betaSrcB, e3: betaA, e4: betaB} {
		if err := p.SetEdge(c, e, EdgeParams{Beta: beta, Cost: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return p, c
}

func TestProperty1Holds(t *testing.T) {
	// Path products: 0.5*4 = 2*1 = 2 -> consistent.
	p, c := diamondProblem(t, 0.5, 2, 4, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	pot, err := p.Potentials(c)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := p.Net.NodeByName("src")
	sink, _ := p.Net.NodeByName("sink")
	if pot[src] != 1 {
		t.Fatalf("g(src) = %g, want 1", pot[src])
	}
	if pot[sink] != 2 {
		t.Fatalf("g(sink) = %g, want 2", pot[sink])
	}
}

func TestProperty1Violated(t *testing.T) {
	// Path products: 0.5*4 = 2 vs 2*2 = 4 -> inconsistent.
	p, _ := diamondProblem(t, 0.5, 2, 4, 2)
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "property 1") {
		t.Fatalf("err = %v, want Property 1 violation", err)
	}
}

func TestPotentialsUnreachableNodesGetOne(t *testing.T) {
	p, c := chainProblem(t, 0.5, 0.5)
	// Add an isolated server not reachable by the commodity.
	if _, err := p.Net.AddServer("island", 3); err != nil {
		t.Fatal(err)
	}
	pot, err := p.Potentials(c)
	if err != nil {
		t.Fatal(err)
	}
	island, _ := p.Net.NodeByName("island")
	if pot[island] != 1 {
		t.Fatalf("g(island) = %g, want 1 (paper's convention)", pot[island])
	}
}

func TestPotentialsMultiplyAlongChain(t *testing.T) {
	p, c := chainProblem(t, 0.5, 3)
	pot, err := p.Potentials(c)
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := p.Net.NodeByName("mid")
	sink, _ := p.Net.NodeByName("sink")
	if pot[mid] != 0.5 {
		t.Fatalf("g(mid) = %g, want 0.5", pot[mid])
	}
	if pot[sink] != 1.5 {
		t.Fatalf("g(sink) = %g, want 1.5", pot[sink])
	}
}

func TestNodeKindString(t *testing.T) {
	if Processing.String() != "processing" || Sink.String() != "sink" {
		t.Fatal("NodeKind.String mismatch")
	}
	if got := NodeKind(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown kind string = %q", got)
	}
}
