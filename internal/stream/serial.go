package stream

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/utility"
)

// The JSON schema used by cmd/netgen and cmd/streamopt. Names (not
// integer IDs) identify nodes so files are diff-friendly and stable
// under regeneration.

type problemJSON struct {
	Nodes       []nodeJSON      `json:"nodes"`
	Links       []linkJSON      `json:"links"`
	Commodities []commodityJSON `json:"commodities"`
}

type nodeJSON struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"` // "processing" | "sink"
	Capacity float64 `json:"capacity,omitempty"`
}

type linkJSON struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	Bandwidth float64 `json:"bandwidth"`
}

type commodityJSON struct {
	Name    string          `json:"name"`
	Source  string          `json:"source"`
	Sink    string          `json:"sink"`
	MaxRate float64         `json:"maxRate"`
	Utility utilityJSON     `json:"utility"`
	Edges   []edgeParamJSON `json:"edges"`
}

type utilityJSON struct {
	Type   string  `json:"type"`
	Slope  float64 `json:"slope,omitempty"`
	Weight float64 `json:"weight,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	Shift  float64 `json:"shift,omitempty"`
	Alpha  float64 `json:"alpha,omitempty"`
	Cap    float64 `json:"cap,omitempty"`
}

type edgeParamJSON struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Beta float64 `json:"beta"`
	Cost float64 `json:"cost"`
}

// MarshalJSON implements json.Marshaler for Problem.
func (p *Problem) MarshalJSON() ([]byte, error) {
	out := problemJSON{}
	g := p.Net.G
	for n := 0; n < g.NumNodes(); n++ {
		nj := nodeJSON{Name: p.Net.Names[n], Kind: p.Net.Kinds[n].String()}
		if p.Net.Kinds[n] == Processing {
			nj.Capacity = p.Net.Capacity[n]
		}
		out.Nodes = append(out.Nodes, nj)
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(graph.EdgeID(e))
		out.Links = append(out.Links, linkJSON{
			From:      p.Net.Names[edge.From],
			To:        p.Net.Names[edge.To],
			Bandwidth: p.Net.Bandwidth[e],
		})
	}
	for _, c := range p.Commodities {
		uj, err := marshalUtility(c.Utility)
		if err != nil {
			return nil, fmt.Errorf("commodity %q: %w", c.Name, err)
		}
		cj := commodityJSON{
			Name:    c.Name,
			Source:  p.Net.Names[c.Source],
			Sink:    p.Net.Names[c.SinkID],
			MaxRate: c.MaxRate,
			Utility: uj,
		}
		// Deterministic edge order: by edge ID.
		for e := 0; e < g.NumEdges(); e++ {
			params, ok := c.Edges[graph.EdgeID(e)]
			if !ok {
				continue
			}
			edge := g.Edge(graph.EdgeID(e))
			cj.Edges = append(cj.Edges, edgeParamJSON{
				From: p.Net.Names[edge.From],
				To:   p.Net.Names[edge.To],
				Beta: params.Beta,
				Cost: params.Cost,
			})
		}
		out.Commodities = append(out.Commodities, cj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ParseProblem decodes a problem from its JSON form and validates it.
func ParseProblem(data []byte) (*Problem, error) {
	var in problemJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("stream: parse problem: %w", err)
	}
	net := NewNetwork()
	for _, nj := range in.Nodes {
		var err error
		switch nj.Kind {
		case "processing":
			_, err = net.AddServer(nj.Name, nj.Capacity)
		case "sink":
			_, err = net.AddSink(nj.Name)
		default:
			err = fmt.Errorf("stream: node %q: unknown kind %q", nj.Name, nj.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, lj := range in.Links {
		from, ok := net.NodeByName(lj.From)
		if !ok {
			return nil, fmt.Errorf("stream: link: unknown node %q", lj.From)
		}
		to, ok := net.NodeByName(lj.To)
		if !ok {
			return nil, fmt.Errorf("stream: link: unknown node %q", lj.To)
		}
		if _, err := net.AddLink(from, to, lj.Bandwidth); err != nil {
			return nil, err
		}
	}
	p := NewProblem(net)
	for _, cj := range in.Commodities {
		src, ok := net.NodeByName(cj.Source)
		if !ok {
			return nil, fmt.Errorf("stream: commodity %q: unknown source %q", cj.Name, cj.Source)
		}
		dst, ok := net.NodeByName(cj.Sink)
		if !ok {
			return nil, fmt.Errorf("stream: commodity %q: unknown sink %q", cj.Name, cj.Sink)
		}
		u, err := parseUtility(cj.Utility)
		if err != nil {
			return nil, fmt.Errorf("stream: commodity %q: %w", cj.Name, err)
		}
		c, err := p.AddCommodity(cj.Name, src, dst, cj.MaxRate, u)
		if err != nil {
			return nil, err
		}
		for _, ej := range cj.Edges {
			from, ok := net.NodeByName(ej.From)
			if !ok {
				return nil, fmt.Errorf("stream: commodity %q: unknown node %q", cj.Name, ej.From)
			}
			to, ok := net.NodeByName(ej.To)
			if !ok {
				return nil, fmt.Errorf("stream: commodity %q: unknown node %q", cj.Name, ej.To)
			}
			e := net.G.EdgeBetween(from, to)
			if e < 0 {
				return nil, fmt.Errorf("stream: commodity %q: no link (%s,%s)", cj.Name, ej.From, ej.To)
			}
			if err := p.SetEdge(c, e, EdgeParams{Beta: ej.Beta, Cost: ej.Cost}); err != nil {
				return nil, err
			}
		}
	}
	// A commodity-free instance is a legal live-server starting state
	// (admissiond idles until the first arrival), so only validate the
	// structural assumptions when there is something to check.
	if len(p.Commodities) > 0 {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func marshalUtility(u utility.Function) (utilityJSON, error) {
	switch v := u.(type) {
	case utility.Linear:
		return utilityJSON{Type: "linear", Slope: v.Slope}, nil
	case utility.Log:
		return utilityJSON{Type: "log", Weight: v.Weight, Scale: v.Scale}, nil
	case utility.Sqrt:
		return utilityJSON{Type: "sqrt", Weight: v.Weight, Shift: v.Shift}, nil
	case utility.AlphaFair:
		return utilityJSON{Type: "alphafair", Weight: v.Weight, Alpha: v.Alpha, Shift: v.Shift}, nil
	case utility.CappedLinear:
		return utilityJSON{Type: "cappedlinear", Slope: v.Slope, Cap: v.Cap}, nil
	default:
		return utilityJSON{}, fmt.Errorf("utility %q is not serializable", u.Name())
	}
}

func parseUtility(uj utilityJSON) (utility.Function, error) {
	switch uj.Type {
	case "linear":
		return utility.Linear{Slope: uj.Slope}, nil
	case "log":
		return utility.Log{Weight: uj.Weight, Scale: uj.Scale}, nil
	case "sqrt":
		return utility.Sqrt{Weight: uj.Weight, Shift: uj.Shift}, nil
	case "alphafair":
		return utility.AlphaFair{Weight: uj.Weight, Alpha: uj.Alpha, Shift: uj.Shift}, nil
	case "cappedlinear":
		return utility.CappedLinear{Slope: uj.Slope, Cap: uj.Cap}, nil
	default:
		return nil, fmt.Errorf("unknown utility type %q", uj.Type)
	}
}

// MarshalCommodityJSON serializes one commodity in the problem schema's
// "commodities" element form — exactly the JSON AddCommodityFromJSON
// (and POST /v1/commodities) accepts, with edges in deterministic edge-
// ID order. The scenario compiler uses this to turn a generated
// instance's commodities into arrival templates.
func (p *Problem) MarshalCommodityJSON(name string) ([]byte, error) {
	c, ok := p.CommodityByName(name)
	if !ok {
		return nil, fmt.Errorf("stream: unknown commodity %q", name)
	}
	uj, err := marshalUtility(c.Utility)
	if err != nil {
		return nil, fmt.Errorf("commodity %q: %w", c.Name, err)
	}
	g := p.Net.G
	cj := commodityJSON{
		Name:    c.Name,
		Source:  p.Net.Names[c.Source],
		Sink:    p.Net.Names[c.SinkID],
		MaxRate: c.MaxRate,
		Utility: uj,
	}
	for e := 0; e < g.NumEdges(); e++ {
		params, ok := c.Edges[graph.EdgeID(e)]
		if !ok {
			continue
		}
		edge := g.Edge(graph.EdgeID(e))
		cj.Edges = append(cj.Edges, edgeParamJSON{
			From: p.Net.Names[edge.From],
			To:   p.Net.Names[edge.To],
			Beta: params.Beta,
			Cost: params.Cost,
		})
	}
	return json.Marshal(cj)
}

// ParseUtilityJSON decodes one utility spec from the same JSON form the
// problem schema uses ({"type":"log","weight":...}). It does not
// validate concavity/monotonicity against a rate range; callers that
// attach the result to a commodity go through Problem.SetUtility, which
// does.
func ParseUtilityJSON(data []byte) (utility.Function, error) {
	var uj utilityJSON
	if err := json.Unmarshal(data, &uj); err != nil {
		return nil, fmt.Errorf("stream: parse utility: %w", err)
	}
	return parseUtility(uj)
}

// AddCommodityFromJSON parses one commodity in the problem schema's
// "commodities" element form, registers it (source, sink, rate,
// utility, per-edge parameters), and validates it against the §2
// structural assumptions. On error the problem may hold the partially
// added commodity; callers that need transactional semantics apply this
// to a Clone and swap on success (internal/server does exactly that).
func (p *Problem) AddCommodityFromJSON(data []byte) (*Commodity, error) {
	var cj commodityJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("stream: parse commodity: %w", err)
	}
	src, ok := p.Net.NodeByName(cj.Source)
	if !ok {
		return nil, fmt.Errorf("stream: commodity %q: unknown source %q", cj.Name, cj.Source)
	}
	dst, ok := p.Net.NodeByName(cj.Sink)
	if !ok {
		return nil, fmt.Errorf("stream: commodity %q: unknown sink %q", cj.Name, cj.Sink)
	}
	u, err := parseUtility(cj.Utility)
	if err != nil {
		return nil, fmt.Errorf("stream: commodity %q: %w", cj.Name, err)
	}
	c, err := p.AddCommodity(cj.Name, src, dst, cj.MaxRate, u)
	if err != nil {
		return nil, err
	}
	for _, ej := range cj.Edges {
		from, ok := p.Net.NodeByName(ej.From)
		if !ok {
			return nil, fmt.Errorf("stream: commodity %q: unknown node %q", cj.Name, ej.From)
		}
		to, ok := p.Net.NodeByName(ej.To)
		if !ok {
			return nil, fmt.Errorf("stream: commodity %q: unknown node %q", cj.Name, ej.To)
		}
		e := p.Net.G.EdgeBetween(from, to)
		if e < 0 {
			return nil, fmt.Errorf("stream: commodity %q: no link (%s,%s)", cj.Name, ej.From, ej.To)
		}
		if err := p.SetEdge(c, e, EdgeParams{Beta: ej.Beta, Cost: ej.Cost}); err != nil {
			return nil, err
		}
	}
	if err := p.validateCommodity(c); err != nil {
		return nil, err
	}
	return c, nil
}
