package stream

import (
	"reflect"
	"testing"

	"repro/internal/utility"
)

func figure1ForClone(t *testing.T) *Problem {
	t.Helper()
	p, err := Figure1(Figure1Config{
		ServerCapacity: 10, Bandwidth: 10, MaxRate1: 5, MaxRate2: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProblemCloneIsDeep mutates every mutable surface of the clone —
// rates, utilities, capacities, bandwidths, edge parameters, commodity
// membership, even new nodes/links — and asserts the original is
// byte-for-byte unchanged. The admission server edits clones under its
// lock while solves read the original, so any aliasing here is a data
// race there.
func TestProblemCloneIsDeep(t *testing.T) {
	p := figure1ForClone(t)
	before, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	c := p.Clone()

	// Mutate scalar parameters through the helper surface.
	if err := c.SetMaxRate("S1", 42); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUtility("S2", utility.Log{Weight: 3, Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Net.SetCapacity("server1", 99); err != nil {
		t.Fatal(err)
	}
	link := c.Net.G.Edge(0)
	if err := c.Net.SetBandwidth(c.Net.Names[link.From], c.Net.Names[link.To], 77); err != nil {
		t.Fatal(err)
	}

	// Mutate the per-commodity edge-parameter maps directly.
	for e := range c.Commodities[0].Edges {
		c.Commodities[0].Edges[e] = EdgeParams{Beta: 9, Cost: 9}
	}

	// Structural mutations: drop a commodity, grow the network.
	if !c.RemoveCommodity("S2") {
		t.Fatal("RemoveCommodity(S2) = false")
	}
	nid, err := c.Net.AddServer("extra", 5)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := c.Net.NodeByName("server1")
	if _, err := c.Net.AddLink(s1, nid, 5); err != nil {
		t.Fatal(err)
	}

	after, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("clone mutations leaked into the original:\nbefore: %s\nafter:  %s", before, after)
	}
	// And the other direction: mutating the original must not show in a
	// fresh clone taken earlier.
	c2 := p.Clone()
	p.Commodities[0].MaxRate = 1234
	if c2.Commodities[0].MaxRate == 1234 {
		t.Fatal("original mutation leaked into clone")
	}
}

// TestCloneSemanticallyEqual checks the clone starts out equivalent:
// same serialization and same name index.
func TestCloneSemanticallyEqual(t *testing.T) {
	p := figure1ForClone(t)
	c := p.Clone()
	pj, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cj, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(pj) != string(cj) {
		t.Fatalf("clone serializes differently:\n%s\nvs\n%s", pj, cj)
	}
	if !reflect.DeepEqual(p.Net.byName, c.Net.byName) {
		t.Fatal("clone name index differs")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone fails validation: %v", err)
	}
}

func TestMutationHelperErrors(t *testing.T) {
	p := figure1ForClone(t)
	cases := []struct {
		name string
		err  error
	}{
		{"unknown commodity rate", p.SetMaxRate("nope", 5)},
		{"non-positive rate", p.SetMaxRate("S1", 0)},
		{"unknown commodity utility", p.SetUtility("nope", utility.Linear{Slope: 1})},
		{"nil utility", p.SetUtility("S1", nil)},
		{"unknown node", p.Net.SetCapacity("nope", 5)},
		{"sink capacity", p.Net.SetCapacity("sink:S1", 5)},
		{"non-positive capacity", p.Net.SetCapacity("server1", -1)},
		{"unknown link", p.Net.SetBandwidth("server1", "server8", 5)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}
