package experiments

import (
	"math"
	"testing"
)

// small keeps the suite fast; the full scale runs in cmd/experiments.
func small() Scale {
	return Scale{GradIters: 1500, BPIters: 8000, Nodes: 20, Commodities: 2}
}

func TestLogSampled(t *testing.T) {
	want := map[int]bool{
		0: true, 1: true, 5: true, 9: true, 10: true, 11: false,
		20: true, 99: false, 100: true, 110: false, 200: true,
		1000: true, 1100: false, 2000: true,
	}
	for iter, w := range want {
		if got := logSampled(iter); got != w {
			t.Errorf("logSampled(%d) = %v, want %v", iter, got, w)
		}
	}
}

func TestRunF4Shape(t *testing.T) {
	res, err := RunF4(42, small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal <= 0 {
		t.Fatalf("optimal = %g", res.Optimal)
	}
	if len(res.Gradient) == 0 || len(res.BackPres) == 0 {
		t.Fatal("empty curves")
	}
	// Gradient curve starts at zero utility (everything rejected) and
	// ends near the optimum, never exceeding it.
	if res.Gradient[0].Utility != 0 {
		t.Fatalf("gradient starts at %g, want 0", res.Gradient[0].Utility)
	}
	last := res.Gradient[len(res.Gradient)-1].Utility
	if last > res.Optimal+1e-6 {
		t.Fatalf("gradient exceeded the optimum: %g > %g", last, res.Optimal)
	}
	if last < 0.7*res.Optimal {
		t.Fatalf("gradient final %g below 70%% of optimum %g", last, res.Optimal)
	}
	// Back-pressure cumulative curve never exceeds the optimum either.
	for _, pt := range res.BackPres {
		if pt.Utility > res.Optimal+1e-6 {
			t.Fatalf("BP cumulative %g exceeds optimum %g", pt.Utility, res.Optimal)
		}
	}
}

func TestRunF4GradientFasterThanBP(t *testing.T) {
	// The headline claim: gradient reaches 95% far sooner (when both
	// reach it within budget).
	sc := Scale{GradIters: 4000, BPIters: 120000, Nodes: 24, Commodities: 2}
	res, err := RunF4(1, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.GradHit95 < 0 {
		t.Skip("gradient did not reach 95% within reduced budget")
	}
	if res.BPHit95 > 0 && res.BPHit95 <= res.GradHit95 {
		t.Fatalf("BP hit 95%% at %d, not slower than gradient %d", res.BPHit95, res.GradHit95)
	}
}

func TestRunT1(t *testing.T) {
	rows, err := RunT1([]int64{1, 2}, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Optimal <= 0 {
			t.Fatalf("seed %d: optimal %g", r.Seed, r.Optimal)
		}
	}
}

func TestRunT2EtaTradeoff(t *testing.T) {
	rows, err := RunT2(42, []float64{0.01, 0.08, 1000}, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger (sane) eta converges at least as fast when both hit.
	if rows[0].Hit95 > 0 && rows[1].Hit95 > 0 && rows[1].Hit95 > rows[0].Hit95 {
		t.Fatalf("eta=0.08 slower (%d) than eta=0.01 (%d)", rows[1].Hit95, rows[0].Hit95)
	}
	// The absurd eta must not converge cleanly to the optimum: it
	// either diverges, ends infeasible (utility "above" the optimum by
	// overload is not convergence), or lands short.
	bad := rows[2]
	if !bad.Diverged && bad.Feasible && bad.FinalPct > 0.99 {
		t.Fatalf("eta=1000 converged cleanly (%.3f of optimum)", bad.FinalPct)
	}
	if bad.Hit95 >= 0 {
		t.Fatalf("eta=1000 credited with feasible 95%% at iteration %d", bad.Hit95)
	}
}

func TestRunT3DepthScaling(t *testing.T) {
	rows, err := RunT3(3, []int{3, 8}, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].GradRoundsIter <= rows[0].GradRoundsIter {
		t.Fatalf("gradient rounds did not grow with depth: %+v", rows)
	}
	for _, r := range rows {
		if r.BPRoundsIter != 1 {
			t.Fatalf("BP rounds per iteration = %d, want 1", r.BPRoundsIter)
		}
		if r.GradRoundsIter != 2*r.Depth {
			t.Fatalf("gradient rounds %d != 2×depth %d", r.GradRoundsIter, 2*r.Depth)
		}
	}
}

func TestRunT4EpsilonTradeoff(t *testing.T) {
	rows, err := RunT4(42, []float64{0.5, 0.05}, small())
	if err != nil {
		t.Fatal(err)
	}
	// Smaller ε gets closer to the optimum but keeps less headroom.
	if rows[1].FinalPct <= rows[0].FinalPct {
		t.Fatalf("smaller eps not closer to optimum: %+v", rows)
	}
	if rows[1].MinSlack >= rows[0].MinSlack {
		t.Fatalf("smaller eps did not reduce headroom: %+v", rows)
	}
	for _, r := range rows {
		if r.MinSlack < 0 {
			t.Fatalf("eps=%g: infeasible operating point (slack %g)", r.Epsilon, r.MinSlack)
		}
	}
}

func TestRunE5FairnessGap(t *testing.T) {
	res, err := RunE5(42, small())
	if err != nil {
		t.Fatal(err)
	}
	// Max-utility must beat the max-throughput point in utility terms,
	// and the gradient algorithm must land between them... at least
	// above throughput and at most the reference.
	if res.RefUtility < res.ThroughputUtility-1e-9 {
		t.Fatalf("reference %g below throughput point %g", res.RefUtility, res.ThroughputUtility)
	}
	if res.GradUtility > res.RefUtility+1e-6 {
		t.Fatalf("gradient %g exceeds reference %g", res.GradUtility, res.RefUtility)
	}
	if res.GradUtility < 0.8*res.RefUtility {
		t.Fatalf("gradient %g below 80%% of reference %g", res.GradUtility, res.RefUtility)
	}
}

func TestRunE6GammaZeroIsClassicalFlow(t *testing.T) {
	rows, err := RunE6(42, []float64{0, 1}, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Optimal <= 0 {
			t.Fatalf("gamma %g: optimal %g", r.Gamma, r.Optimal)
		}
		if r.GradOptRatio < 0.7 || r.GradOptRatio > 1+1e-9 {
			t.Fatalf("gamma %g: gradient/optimal = %g", r.Gamma, r.GradOptRatio)
		}
		if r.CPUBound+r.NetBound == 0 {
			t.Fatalf("gamma %g: nothing binds at the optimum (not overloaded?)", r.Gamma)
		}
	}
}

func TestRunE7WarmTracksBetter(t *testing.T) {
	rows, err := RunE7(42, 4, 400, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	warmSum, coldSum := 0.0, 0.0
	for _, r := range rows[1:] { // epoch 0 is identical by construction
		warmSum += r.WarmUtil / r.Optimal
		coldSum += r.ColdUtil / r.Optimal
		if r.WarmUtil > r.Optimal+1e-6 || r.ColdUtil > r.Optimal+1e-6 {
			t.Fatalf("epoch %d exceeds optimal", r.Epoch)
		}
	}
	// Warm must track at least as well as cold (a hair of float noise
	// is tolerated: at this reduced scale the two can effectively tie).
	if warmSum < coldSum-0.01 {
		t.Fatalf("warm start tracked worse: %g vs %g", warmSum, coldSum)
	}
	if math.Abs(rows[0].WarmUtil-rows[0].ColdUtil) > 1e-9 {
		t.Fatal("epoch 0 warm and cold should coincide")
	}
}

func TestNames(t *testing.T) {
	for _, n := range Names() {
		if !ValidName(n) {
			t.Fatalf("name %q not valid", n)
		}
	}
	if ValidName("nope") {
		t.Fatal("bogus name accepted")
	}
}

func TestRunE8FailureRecovery(t *testing.T) {
	rows, err := RunE8(2, []float64{0.2}, Scale{GradIters: 3000, BPIters: 100, Nodes: 20, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.FailedNode == "" {
		t.Fatal("no failed node recorded")
	}
	if r.PostOptimal <= 0 || r.PostOptimal > r.PreUtility*3 {
		t.Fatalf("post-failure optimum %g implausible vs pre %g", r.PostOptimal, r.PreUtility)
	}
	if r.RecoverIters < 0 {
		t.Fatal("warm restart never reached 95% of the post-failure optimum")
	}
	if r.ColdIters >= 0 && r.RecoverIters > r.ColdIters {
		t.Fatalf("warm recovery (%d) slower than cold start (%d)", r.RecoverIters, r.ColdIters)
	}
}
