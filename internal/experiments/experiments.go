// Package experiments regenerates every table and figure of the
// paper's evaluation (§6) plus the quantitative claims promoted to
// experiments in DESIGN.md §5: F4 (the convergence figure), T1
// (iterations to 95%), T2 (η sweep), T3 (message rounds vs depth), T4
// (ε sweep), E5 (concave utilities), E6 (shrinkage ablation), and E7
// (dynamic tracking). cmd/experiments prints them; bench_test.go times
// them.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/backpressure"
	"repro/internal/dist"
	"repro/internal/gradient"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
	"repro/internal/workload"
)

// Scale shrinks iteration budgets for tests and quick runs; 1 is the
// full paper-scale run.
type Scale struct {
	// GradIters and BPIters bound the two algorithms' iteration counts.
	GradIters int
	BPIters   int
	// Nodes and Commodities override the instance size (0 = §6's 40/3).
	Nodes       int
	Commodities int
	// Rec, when non-nil, streams per-iteration metrics and events from
	// every engine the experiments construct, so a full paper-scale run
	// is observable live (cmd/experiments -metrics-addr / -events-out).
	Rec *obs.Recorder
}

// DefaultScale is the full §6 configuration.
func DefaultScale() Scale {
	return Scale{GradIters: 20000, BPIters: 150000}
}

func (s *Scale) setDefaults() {
	if s.GradIters <= 0 {
		s.GradIters = 20000
	}
	if s.BPIters <= 0 {
		s.BPIters = 150000
	}
	if s.Nodes <= 0 {
		s.Nodes = 40
	}
	if s.Commodities <= 0 {
		s.Commodities = 3
	}
}

// instance generates the §6 instance for a seed.
func (s Scale) instance(seed int64) (*transform.Extended, error) {
	p, err := randnet.Generate(randnet.Config{
		Seed: seed, Nodes: s.Nodes, Commodities: s.Commodities,
	})
	if err != nil {
		return nil, err
	}
	return transform.Build(p, transform.Options{Epsilon: 0.2})
}

// Point is one sample of a convergence curve.
type Point struct {
	Iteration int
	Utility   float64
}

// logSampled keeps points at log-spaced iterations (1,2,..,10,20,..).
func logSampled(iter int) bool {
	if iter <= 0 {
		return iter == 0
	}
	mag := 1
	for iter >= mag*10 {
		mag *= 10
	}
	return iter%mag == 0
}

// F4Result reproduces Figure 4: gradient and back-pressure convergence
// toward the LP optimum on the 40-node, 3-commodity random instance.
type F4Result struct {
	Seed     int64
	Optimal  float64 // LP optimum (horizontal line)
	Gradient []Point // log-sampled utility curve
	BackPres []Point // log-sampled cumulative-utility curve
	// First iteration reaching 95% (resp. 90%) of Optimal; -1 if never.
	GradHit95 int
	BPHit95   int
	GradHit90 int
	BPHit90   int
}

// RunF4 executes the Figure 4 experiment (ε = 0.2, η = 0.04 as §6).
func RunF4(seed int64, scale Scale) (*F4Result, error) {
	scale.setDefaults()
	x, err := scale.instance(seed)
	if err != nil {
		return nil, err
	}
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		return nil, err
	}
	res := &F4Result{
		Seed: seed, Optimal: ref.Utility,
		GradHit95: -1, BPHit95: -1, GradHit90: -1, BPHit90: -1,
	}

	eng := gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
	for i := 0; i < scale.GradIters; i++ {
		info := eng.Step()
		if logSampled(i) || i == scale.GradIters-1 {
			res.Gradient = append(res.Gradient, Point{Iteration: i, Utility: info.Utility})
		}
		if res.GradHit95 < 0 && info.Utility >= 0.95*ref.Utility {
			res.GradHit95 = i
		}
		if res.GradHit90 < 0 && info.Utility >= 0.90*ref.Utility {
			res.GradHit90 = i
		}
	}

	bp := backpressure.New(x, backpressure.Config{Recorder: scale.Rec})
	for i := 0; i < scale.BPIters; i++ {
		info := bp.Step()
		if logSampled(i) || i == scale.BPIters-1 {
			res.BackPres = append(res.BackPres, Point{Iteration: i, Utility: info.Cumulative})
		}
		if res.BPHit95 < 0 && info.Cumulative >= 0.95*ref.Utility {
			res.BPHit95 = i
		}
		if res.BPHit90 < 0 && info.Cumulative >= 0.90*ref.Utility {
			res.BPHit90 = i
		}
	}
	return res, nil
}

// T1Row is one seed's iterations-to-target comparison. The 95% target
// matches §6's criterion; the 90% target is reported as well because
// the ε = 0.2 barrier plateau sits between 90% and 97% of the LP
// optimum depending on the instance (see T4), so some seeds never
// clear 95% at ε = 0.2 no matter how long they run.
type T1Row struct {
	Seed      int64
	Optimal   float64
	GradHit95 int
	BPHit95   int
	GradHit90 int
	BPHit90   int
	Ratio     float64 // BP/gradient at the 90% target; NaN when missed
}

// RunT1 repeats the §6 convergence-speed claim over several seeds.
func RunT1(seeds []int64, scale Scale) ([]T1Row, error) {
	scale.setDefaults()
	rows := make([]T1Row, 0, len(seeds))
	for _, seed := range seeds {
		f4, err := RunF4(seed, scale)
		if err != nil {
			return nil, err
		}
		row := T1Row{
			Seed: seed, Optimal: f4.Optimal,
			GradHit95: f4.GradHit95, BPHit95: f4.BPHit95,
			GradHit90: f4.GradHit90, BPHit90: f4.BPHit90,
			Ratio: math.NaN(),
		}
		if row.GradHit90 > 0 && row.BPHit90 > 0 {
			row.Ratio = float64(row.BPHit90) / float64(row.GradHit90)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// T2Row is one η setting's convergence behavior.
type T2Row struct {
	Eta      float64
	Hit95    int     // -1 = never within budget
	FinalPct float64 // final utility / optimal
	Feasible bool    // final point satisfies every capacity constraint
	Diverged bool
}

// RunT2 sweeps the scale factor η (§5–6: small η safe but slow, large η
// fast but unstable).
func RunT2(seed int64, etas []float64, scale Scale) ([]T2Row, error) {
	scale.setDefaults()
	x, err := scale.instance(seed)
	if err != nil {
		return nil, err
	}
	ref, err := refopt.Solve(x, refopt.Options{})
	if err != nil {
		return nil, err
	}
	rows := make([]T2Row, 0, len(etas))
	for _, eta := range etas {
		eng := gradient.New(x, gradient.Config{Eta: eta, Recorder: scale.Rec})
		row := T2Row{Eta: eta, Hit95: -1}
		final := 0.0
		var det gradient.DivergenceDetector
		for i := 0; i < scale.GradIters; i++ {
			info := eng.Step()
			if det.Observe(info) != nil {
				row.Diverged = true
				break
			}
			final = info.Utility
			row.Feasible = info.Feasible
			// Only a feasible point counts as having converged: a huge
			// η can show utility above the optimum by overloading nodes.
			if row.Hit95 < 0 && info.Feasible && info.Utility >= 0.95*ref.Utility {
				row.Hit95 = i
			}
		}
		row.FinalPct = final / ref.Utility
		rows = append(rows, row)
	}
	return rows, nil
}

// T3Row measures protocol cost versus graph depth: per-iteration
// message rounds, and — answering §7's open question of which
// algorithm converges faster in wall-clock terms — the TOTAL number of
// sequential message rounds until 90% of the optimum, which multiplies
// iterations by rounds-per-iteration.
type T3Row struct {
	Layers         int
	Depth          int // longest member path in the extended graph
	GradRoundsIter int // measured simnet rounds per gradient iteration
	BPRoundsIter   int // always 1: one buffer exchange round
	GradMsgsIter   int
	BPMsgsIter     int
	// Iterations to a feasible point at 90% of the LP optimum.
	GradIters90 int
	BPIters90   int
	// Total sequential rounds = iterations × rounds/iteration; -1 when
	// the target was missed within budget.
	GradTotalRounds int
	BPTotalRounds   int
}

// RunT3 sweeps graph depth; the §6 discussion says the gradient
// algorithm pays O(L) sequential exchanges per iteration while
// back-pressure pays O(1).
func RunT3(seed int64, layerSweep []int, scale Scale) ([]T3Row, error) {
	scale.setDefaults()
	rows := make([]T3Row, 0, len(layerSweep))
	for _, layers := range layerSweep {
		nodes := scale.Nodes
		if nodes < 2*layers {
			nodes = 2 * layers
		}
		p, err := randnet.Generate(randnet.Config{
			Seed: seed, Nodes: nodes, Layers: layers, Commodities: 2,
		})
		if err != nil {
			return nil, err
		}
		x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
		if err != nil {
			return nil, err
		}
		depth := 0
		for j := range x.Commodities {
			if l := x.Sub[j].Depth(); l > depth {
				depth = l
			}
		}
		rt := dist.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
		if _, err := rt.Step(); err != nil {
			return nil, err
		}
		bp := backpressure.New(x, backpressure.Config{Recorder: scale.Rec})
		bpInfo := bp.Step()
		row := T3Row{
			Layers:          layers,
			Depth:           depth,
			GradRoundsIter:  rt.LastRounds,
			BPRoundsIter:    1,
			GradMsgsIter:    rt.LastMessages,
			BPMsgsIter:      bpInfo.Messages,
			GradIters90:     -1,
			BPIters90:       -1,
			GradTotalRounds: -1,
			BPTotalRounds:   -1,
		}

		// Wall-clock comparison: total sequential rounds to 90%.
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			return nil, err
		}
		eng := gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
		if _, hit, err := eng.RunToTarget(ref.Utility, 0.90, scale.GradIters); err == nil && hit >= 0 {
			row.GradIters90 = hit
			row.GradTotalRounds = hit * row.GradRoundsIter
		}
		for i := 1; i < scale.BPIters; i++ {
			if bp.Step().Cumulative >= 0.90*ref.Utility {
				row.BPIters90 = i
				row.BPTotalRounds = i
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// T4Row is one ε setting's optimality/headroom trade-off.
type T4Row struct {
	Epsilon  float64
	FinalPct float64 // utility / LP optimum
	MinSlack float64 // min_i (C_i−f_i)/C_i: barrier-kept headroom
}

// RunT4 sweeps the penalty coefficient ε (§3: ε trades closeness to the
// true optimum against capacity headroom kept free for bursts and
// failures).
func RunT4(seed int64, epsilons []float64, scale Scale) ([]T4Row, error) {
	scale.setDefaults()
	p, err := randnet.Generate(randnet.Config{
		Seed: seed, Nodes: scale.Nodes, Commodities: scale.Commodities,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]T4Row, 0, len(epsilons))
	for _, eps := range epsilons {
		x, err := transform.Build(p, transform.Options{Epsilon: eps})
		if err != nil {
			return nil, err
		}
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			return nil, err
		}
		// A smaller ε flattens the cost landscape, so the gradient
		// iteration needs proportionally more steps to settle; scale
		// the budget by 0.2/ε relative to the §6 baseline.
		iters := int(float64(scale.GradIters) * math.Max(1, 0.2/eps))
		eng := gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
		if _, err := eng.Run(iters, nil); err != nil {
			return nil, err
		}
		u := eng.Solution()
		_, slack := u.Feasible()
		rows = append(rows, T4Row{
			Epsilon:  eps,
			FinalPct: u.Utility() / ref.Utility,
			MinSlack: slack,
		})
	}
	return rows, nil
}

// E5Result compares max-utility against max-throughput operation under
// concave (log) utilities on an overloaded instance.
type E5Result struct {
	// Reference (PWL-LP) max-utility operating point.
	RefUtility  float64
	RefAdmitted []float64
	// Gradient algorithm's operating point.
	GradUtility  float64
	GradAdmitted []float64
	// The max-THROUGHPUT point's utility (same network, linear
	// objective), showing the fairness gap.
	ThroughputUtility  float64
	ThroughputAdmitted []float64
}

// e5Problem builds a deliberately *contended* instance: every
// commodity must cross a shared two-stage core whose total capacity is
// far below the offered load, so max-throughput and max-utility
// genuinely disagree. (A plain randnet instance usually bottlenecks
// each commodity on private near-source resources, where the two
// objectives coincide.)
func e5Problem(scale Scale, u func(j int) utility.Function) (*stream.Problem, error) {
	net := stream.NewNetwork()
	p := stream.NewProblem(net)
	// Shared core: two stages of three nodes each.
	var stage1, stage2 []graph.NodeID
	for i := 0; i < 3; i++ {
		a, err := net.AddServer(fmt.Sprintf("core-a%d", i), 8)
		if err != nil {
			return nil, err
		}
		bnode, err := net.AddServer(fmt.Sprintf("core-b%d", i), 8)
		if err != nil {
			return nil, err
		}
		stage1 = append(stage1, a)
		stage2 = append(stage2, bnode)
	}
	coreEdges := make([]graph.EdgeID, 0, 9)
	for _, a := range stage1 {
		for _, bnode := range stage2 {
			e, err := net.AddLink(a, bnode, 50)
			if err != nil {
				return nil, err
			}
			coreEdges = append(coreEdges, e)
		}
	}
	offered := []float64{80, 30, 12}
	for j, lambda := range offered {
		name := fmt.Sprintf("S%d", j+1)
		src, err := net.AddServer("src-"+name, 1000)
		if err != nil {
			return nil, err
		}
		sink, err := net.AddSink("sink-" + name)
		if err != nil {
			return nil, err
		}
		c, err := p.AddCommodity(name, src, sink, lambda, u(j))
		if err != nil {
			return nil, err
		}
		set := func(e graph.EdgeID, params stream.EdgeParams) error {
			return p.SetEdge(c, e, params)
		}
		for _, a := range stage1 {
			e, err := net.AddLink(src, a, 200)
			if err != nil {
				return nil, err
			}
			if err := set(e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
				return nil, err
			}
		}
		for _, bnode := range stage2 {
			e, err := net.AddLink(bnode, sink, 200)
			if err != nil {
				return nil, err
			}
			if err := set(e, stream.EdgeParams{Beta: 0.5, Cost: 1}); err != nil {
				return nil, err
			}
		}
		for _, e := range coreEdges {
			if err := set(e, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// RunE5 runs the concave-utility admission-control experiment.
func RunE5(seed int64, scale Scale) (*E5Result, error) {
	scale.setDefaults()
	_ = seed // the contended topology is fixed by design
	mkProblem := func(u func(j int) utility.Function) (*stream.Problem, error) {
		return e5Problem(scale, u)
	}
	logU := func(int) utility.Function { return utility.Log{Weight: 10, Scale: 1} }

	p, err := mkProblem(logU)
	if err != nil {
		return nil, err
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.05})
	if err != nil {
		return nil, err
	}
	ref, err := refopt.Solve(x, refopt.Options{Segments: 256})
	if err != nil {
		return nil, err
	}
	// Weight-10 log utilities have U'(0) = 10, so marginals — and with
	// them the effective step η·a — are an order of magnitude larger
	// than in the linear experiments; η scales down accordingly
	// (§5's stability condition).
	eng := gradient.New(x, gradient.Config{Eta: 0.01, Recorder: scale.Rec})
	if _, err := eng.Run(scale.GradIters, nil); err != nil {
		return nil, err
	}
	sol := eng.Solution()

	// Max-throughput point on the SAME network (linear objective), then
	// evaluate the log utility of its admitted rates.
	pt, err := mkProblem(func(int) utility.Function { return utility.Linear{Slope: 1} })
	if err != nil {
		return nil, err
	}
	xt, err := transform.Build(pt, transform.Options{Epsilon: 0.05})
	if err != nil {
		return nil, err
	}
	tput, err := refopt.Solve(xt, refopt.Options{})
	if err != nil {
		return nil, err
	}
	tputUtil := 0.0
	for j, a := range tput.Admitted {
		tputUtil += x.Commodities[j].Utility.Value(a)
	}

	res := &E5Result{
		RefUtility:         ref.Utility,
		RefAdmitted:        ref.Admitted,
		GradUtility:        sol.Utility(),
		ThroughputUtility:  tputUtil,
		ThroughputAdmitted: tput.Admitted,
	}
	for j := range x.Commodities {
		res.GradAdmitted = append(res.GradAdmitted, sol.AdmittedRate(j))
	}
	return res, nil
}

// E6Row is one shrinkage-intensity setting.
type E6Row struct {
	Gamma float64 // β' = β^γ: 0 = classical conservation, 1 = §6 setting
	// LP-optimal utility and which resource binds at the optimum.
	Optimal      float64
	CPUBound     int // capacitated servers with ≥99% utilization
	NetBound     int // links with ≥99% utilization
	GradUtility  float64
	GradOptRatio float64
}

// RunE6 sweeps shrinkage intensity by exponentiating the node
// potentials: γ = 0 removes shrinkage entirely (classical
// multicommodity flow), γ = 1 is the generated instance, larger γ
// amplifies expansion/shrinkage. Property 1 is preserved for every γ.
func RunE6(seed int64, gammas []float64, scale Scale) ([]E6Row, error) {
	scale.setDefaults()
	rows := make([]E6Row, 0, len(gammas))
	for _, gamma := range gammas {
		p, err := randnet.Generate(randnet.Config{
			Seed: seed, Nodes: scale.Nodes, Commodities: scale.Commodities,
		})
		if err != nil {
			return nil, err
		}
		for _, c := range p.Commodities {
			for e, params := range c.Edges {
				params.Beta = math.Pow(params.Beta, gamma)
				c.Edges[e] = params
			}
		}
		x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
		if err != nil {
			return nil, err
		}
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			return nil, err
		}
		row := E6Row{Gamma: gamma, Optimal: ref.Utility}
		// Count binding resources at the LP optimum.
		usage := make([]float64, x.G.NumNodes())
		for j := range x.Commodities {
			sg := &x.Sub[j]
			for le, e := range sg.Edges {
				usage[sg.Nodes[sg.Tail[le]]] += ref.EdgeInput[j][e] * sg.Cost[le]
			}
		}
		for n := 0; n < x.G.NumNodes(); n++ {
			capn := x.Capacity[n]
			if math.IsInf(capn, 1) {
				continue
			}
			if usage[n] >= 0.99*capn {
				if x.Kinds[n] == transform.Bandwidth {
					row.NetBound++
				} else {
					row.CPUBound++
				}
			}
		}
		// Amplified shrinkage (β up to g-ratio^γ) steepens the cost
		// landscape — marginal costs propagate multiplied by β, and the
		// curvature grows with the square of the path gain — so the §5
		// stability condition demands η shrinking exponentially in γ,
		// and the smaller steps need proportionally more iterations.
		iters := int(float64(scale.GradIters) * math.Pow(4, gamma))
		if iters > 400000 {
			iters = 400000
		}
		eng := gradient.New(x, gradient.Config{Eta: 0.04 * math.Pow(4, -gamma), Recorder: scale.Rec})
		if _, err := eng.Run(iters, nil); err != nil {
			return nil, err
		}
		row.GradUtility = eng.Solution().Utility()
		row.GradOptRatio = row.GradUtility / ref.Utility
		rows = append(rows, row)
	}
	return rows, nil
}

// E7Epoch is one epoch of the dynamic-tracking experiment.
type E7Epoch struct {
	Epoch    int
	Lambda   float64 // offered rate of the modulated commodity
	Optimal  float64
	WarmUtil float64 // warm-started gradient after IterBudget iterations
	ColdUtil float64 // cold-started gradient after the same budget
}

// RunE7 modulates one commodity's offered rate by a step process and
// re-optimizes each epoch under a fixed iteration budget, warm-started
// from the previous routing versus cold-started, demonstrating the
// algorithm's tracking behavior (§1 motivation).
func RunE7(seed int64, epochs, iterBudget int, scale Scale) ([]E7Epoch, error) {
	scale.setDefaults()
	// Levels below and above the network's S1 capacity so the optimum
	// itself moves between epochs.
	proc := workload.Steps{Levels: []float64{8, 40, 16, 60}, Period: 1}

	build := func(lambda float64) (*transform.Extended, error) {
		p, err := randnet.Generate(randnet.Config{
			Seed: seed, Nodes: scale.Nodes, Commodities: scale.Commodities,
		})
		if err != nil {
			return nil, err
		}
		p.Commodities[0].MaxRate = lambda
		return transform.Build(p, transform.Options{Epsilon: 0.2})
	}

	var (
		out  []E7Epoch
		warm *gradient.Engine
	)
	for epoch := 0; epoch < epochs; epoch++ {
		lambda := proc.Rate(epoch)
		x, err := build(lambda)
		if err != nil {
			return nil, err
		}
		ref, err := refopt.Solve(x, refopt.Options{})
		if err != nil {
			return nil, err
		}
		cold := gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
		if warm == nil {
			warm = gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
		} else {
			// Carry the routing across the rate change. The topology is
			// identical, so routing vectors are index-compatible.
			warm, err = gradient.NewFrom(x, warm.Routing(), gradient.Config{Eta: 0.04, Recorder: scale.Rec})
			if err != nil {
				return nil, err
			}
		}
		if _, err := warm.Run(iterBudget, nil); err != nil {
			return nil, err
		}
		if _, err := cold.Run(iterBudget, nil); err != nil {
			return nil, err
		}
		out = append(out, E7Epoch{
			Epoch:    epoch,
			Lambda:   lambda,
			Optimal:  ref.Utility,
			WarmUtil: warm.Solution().Utility(),
			ColdUtil: cold.Solution().Utility(),
		})
	}
	return out, nil
}

// Names of all experiments, for CLI help.
func Names() []string {
	return []string{"F4", "T1", "T2", "T3", "T4", "E5", "E6", "E7", "E8"}
}

// ValidName reports whether the name is a known experiment.
func ValidName(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}
