package experiments

import (
	"fmt"
	"math"

	"repro/internal/gradient"
	"repro/internal/randnet"
	"repro/internal/refopt"
	"repro/internal/stream"
	"repro/internal/transform"
)

// E8Row is one ε setting of the failure-recovery experiment.
type E8Row struct {
	Epsilon float64
	// FailedNode is the (busiest) server whose capacity was cut.
	FailedNode string
	// PreUtility / PostOptimal bracket the disruption.
	PreUtility  float64
	PostOptimal float64
	// FeasibleIters is the warm-restart iteration count until the
	// routing stops overloading the degraded network — §3's claim is
	// that barrier headroom shortens exactly this phase.
	FeasibleIters int
	// RecoverIters is the warm-restart iteration count to a feasible
	// point within 85% of the post-failure optimum; ColdIters the same
	// from a cold start. -1 when the budget ran out.
	RecoverIters int
	ColdIters    int
}

// RunE8 probes §3's remark that barrier headroom buys "faster recovery
// in the case of node or link failures": converge, cut the busiest
// server to 25% of its capacity, and measure how fast a warm restart
// reaches 95% of the new optimum compared with a cold start, across ε.
func RunE8(seed int64, epsilons []float64, scale Scale) ([]E8Row, error) {
	scale.setDefaults()
	rows := make([]E8Row, 0, len(epsilons))
	for _, eps := range epsilons {
		row, err := runE8One(seed, eps, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runE8One(seed int64, eps float64, scale Scale) (*E8Row, error) {
	gen := func() (*stream.Problem, error) {
		return randnet.Generate(randnet.Config{
			Seed: seed, Nodes: scale.Nodes, Commodities: scale.Commodities,
		})
	}
	p, err := gen()
	if err != nil {
		return nil, err
	}
	x, err := transform.Build(p, transform.Options{Epsilon: eps})
	if err != nil {
		return nil, err
	}

	// Converge on the healthy network.
	pre := gradient.New(x, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
	if _, err := pre.Run(scale.GradIters, nil); err != nil {
		return nil, err
	}
	sol := pre.Solution()

	// Fail the busiest server (highest absolute usage).
	worst, worstUsage := -1, 0.0
	for n, f := range sol.FNode {
		if x.Kinds[n] != transform.Proc {
			continue
		}
		if f > worstUsage {
			worstUsage = f
			worst = n
		}
	}
	if worst < 0 {
		return nil, fmt.Errorf("experiments: no loaded server to fail")
	}

	failed, err := gen()
	if err != nil {
		return nil, err
	}
	failed.Net.Capacity[worst] *= 0.25
	xf, err := transform.Build(failed, transform.Options{Epsilon: eps})
	if err != nil {
		return nil, err
	}
	ref, err := refopt.Solve(xf, refopt.Options{})
	if err != nil {
		return nil, err
	}

	row := &E8Row{
		Epsilon:       eps,
		FailedNode:    x.Names[worst],
		PreUtility:    sol.Utility(),
		PostOptimal:   ref.Utility,
		FeasibleIters: -1,
		RecoverIters:  -1,
		ColdIters:     -1,
	}

	// Recovery means the operating point is feasible on the DEGRADED
	// network *and* within 85% of its new optimum: right after the
	// failure the carried-over routing still overloads the failed node,
	// so utility alone would declare victory at iteration zero. The
	// 85% target keeps the large-ε rows meaningful (the ε = 0.5 barrier
	// plateau sits below 90% of the LP optimum, see T4).
	budget := int(float64(scale.GradIters) * math.Max(1, 0.2/eps))
	warm, err := gradient.NewFrom(xf, pre.Routing(), gradient.Config{Eta: 0.04, Recorder: scale.Rec})
	if err != nil {
		return nil, err
	}
	row.FeasibleIters, row.RecoverIters = runToFeasibleTarget(warm, 0.85*ref.Utility, budget)
	cold := gradient.New(xf, gradient.Config{Eta: 0.04, Recorder: scale.Rec})
	_, row.ColdIters = runToFeasibleTarget(cold, 0.85*ref.Utility, budget)
	return row, nil
}

// runToFeasibleTarget iterates until the measured point is feasible
// with utility ≥ target, returning the first feasible iteration and
// the first feasible-and-at-target iteration (-1 on budget exhaustion).
func runToFeasibleTarget(eng *gradient.Engine, target float64, budget int) (feasibleAt, targetAt int) {
	feasibleAt, targetAt = -1, -1
	for i := 0; i < budget; i++ {
		info := eng.Step()
		if !info.Feasible {
			continue
		}
		if feasibleAt < 0 {
			feasibleAt = i
		}
		if info.Utility >= target {
			targetAt = i
			return feasibleAt, targetAt
		}
	}
	return feasibleAt, targetAt
}
