// Package simnet is a small deterministic message-passing simulator:
// nodes exchange messages over synchronous rounds (a message sent in
// round r is delivered in round r+1), and the network counts rounds and
// messages. internal/dist runs the paper's §5 protocols on it so the
// per-iteration message-cost claims of §6 (gradient O(L) rounds,
// back-pressure O(1)) are measured rather than asserted.
package simnet

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Message is a payload in flight between two nodes.
type Message struct {
	From    graph.NodeID
	To      graph.NodeID
	Payload any
}

// Handler processes one delivered message at a node. send enqueues a
// message for delivery next round; it may be called any number of
// times.
type Handler func(msg Message, send func(to graph.NodeID, payload any))

// Net is the simulated network. The zero value is not usable; call New.
type Net struct {
	handler Handler
	latency func(Message) int
	// queue[d] holds messages due d rounds from now (queue[0] = next
	// round). A slice ring keeps in-round delivery order deterministic.
	queue   [][]Message
	inQueue int

	rounds   int
	messages int
}

// New creates a network whose nodes all run the given handler
// (node-specific behavior dispatches on Message.To inside the handler).
// Messages take exactly one round; use NewWithLatency for jitter.
func New(handler Handler) *Net {
	return NewWithLatency(handler, nil)
}

// NewWithLatency creates a network where each message's delivery delay
// (in rounds, ≥ 1) is chosen by the latency function; nil means one
// round for everything. A deterministic latency function keeps the
// whole simulation deterministic. This models asynchronous networks:
// the §5 protocols must produce identical results under any latencies
// because every node waits for all of its wave inputs (tested in
// internal/dist).
func NewWithLatency(handler Handler, latency func(Message) int) *Net {
	return &Net{handler: handler, latency: latency}
}

// Inject queues a message attributed to the given sender. Used by
// drivers to start protocol waves.
func (n *Net) Inject(from, to graph.NodeID, payload any) {
	n.enqueue(Message{From: from, To: to, Payload: payload})
}

func (n *Net) enqueue(msg Message) {
	delay := 1
	if n.latency != nil {
		if d := n.latency(msg); d > 1 {
			delay = d
		}
	}
	for len(n.queue) < delay {
		n.queue = append(n.queue, nil)
	}
	n.queue[delay-1] = append(n.queue[delay-1], msg)
	n.inQueue++
}

// ErrNotQuiescent is returned when RunToQuiescence hits its round cap.
var ErrNotQuiescent = errors.New("simnet: round limit reached with messages still in flight")

// RunToQuiescence delivers rounds of messages until none remain,
// counting rounds and messages. Delivery within a round follows queue
// insertion order, so runs are deterministic whenever handlers and the
// latency function are.
func (n *Net) RunToQuiescence(maxRounds int) error {
	for r := 0; r < maxRounds; r++ {
		if n.inQueue == 0 {
			return nil
		}
		var current []Message
		if len(n.queue) > 0 {
			current = n.queue[0]
			n.queue = n.queue[1:]
			n.inQueue -= len(current)
		}
		n.rounds++
		for _, msg := range current {
			n.messages++
			n.handler(msg, func(to graph.NodeID, payload any) {
				n.enqueue(Message{From: msg.To, To: to, Payload: payload})
			})
		}
	}
	if n.inQueue == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d pending", ErrNotQuiescent, n.inQueue)
}

// Rounds reports delivery rounds executed so far.
func (n *Net) Rounds() int { return n.rounds }

// Messages reports messages delivered so far.
func (n *Net) Messages() int { return n.messages }
