package simnet

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

func TestDeliversInRounds(t *testing.T) {
	// A relay chain 0 -> 1 -> 2 -> 3: each hop is one round.
	var got []graph.NodeID
	n := New(func(msg Message, send func(to graph.NodeID, payload any)) {
		got = append(got, msg.To)
		if msg.To < 3 {
			send(msg.To+1, msg.Payload)
		}
	})
	n.Inject(0, 1, "x")
	if err := n.RunToQuiescence(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", got)
	}
	if n.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", n.Rounds())
	}
	if n.Messages() != 3 {
		t.Fatalf("messages = %d, want 3", n.Messages())
	}
}

func TestParallelMessagesShareARound(t *testing.T) {
	n := New(func(msg Message, send func(to graph.NodeID, payload any)) {})
	n.Inject(0, 1, "a")
	n.Inject(0, 2, "b")
	n.Inject(0, 3, "c")
	if err := n.RunToQuiescence(10); err != nil {
		t.Fatal(err)
	}
	if n.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1 (parallel delivery)", n.Rounds())
	}
	if n.Messages() != 3 {
		t.Fatalf("messages = %d, want 3", n.Messages())
	}
}

func TestRoundLimit(t *testing.T) {
	// A message ping-pong never quiesces; the cap must trip.
	n := New(func(msg Message, send func(to graph.NodeID, payload any)) {
		send(msg.From, msg.Payload)
	})
	n.Inject(0, 1, "ping")
	err := n.RunToQuiescence(5)
	if !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("err = %v, want ErrNotQuiescent", err)
	}
}

func TestQuiescentStartIsNoop(t *testing.T) {
	n := New(func(msg Message, send func(to graph.NodeID, payload any)) {
		t.Fatal("handler called with no messages")
	})
	if err := n.RunToQuiescence(3); err != nil {
		t.Fatal(err)
	}
	if n.Rounds() != 0 || n.Messages() != 0 {
		t.Fatal("counted phantom traffic")
	}
}

func TestDeterministicOrderWithinRound(t *testing.T) {
	run := func() []string {
		var log []string
		n := New(func(msg Message, send func(to graph.NodeID, payload any)) {
			log = append(log, msg.Payload.(string))
		})
		n.Inject(0, 1, "a")
		n.Inject(0, 1, "b")
		n.Inject(0, 2, "c")
		if err := n.RunToQuiescence(5); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for k := range first {
			if first[k] != again[k] {
				t.Fatalf("order differs between runs: %v vs %v", first, again)
			}
		}
	}
}
