package replay

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/utility"
)

const waitBudget = 20 * time.Second

// toyProblem builds the two-server chain the server tests use: servers
// a, b (capacity 10), sinks t1, t2, one commodity a→t1.
func toyProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	a, err := net.AddServer("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddServer("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := net.AddSink("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.AddSink("t2")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := net.AddLink(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	bt1, err := net.AddLink(b, t1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(b, t2, 10); err != nil {
		t.Fatal(err)
	}
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, ab, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, bt1, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func serverOptions() server.Options {
	return server.Options{
		MaxIters:      1500,
		StationaryTol: 1e-3,
		Debounce:      2 * time.Millisecond,
		Logf:          func(string, ...any) {},
	}
}

// record runs one journaled server lifetime in dir, applying mutate,
// and returns the journal writer closed.
func record(t *testing.T, dir string, p *stream.Problem, mutate func(s *server.Server)) {
	t.Helper()
	jw, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts := serverOptions()
	opts.Journal = jw
	opts.CheckpointEvery = 2
	s, err := server.New(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	mutate(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitNext waits for the generation after the current snapshot's.
func waitNext(t *testing.T, s *server.Server) {
	t.Helper()
	gen := int64(0)
	if snap := s.Snapshot(); snap != nil {
		gen = snap.Generation
	}
	if _, err := s.WaitForGeneration(gen+1, waitBudget); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanRecording(t *testing.T) {
	dir := t.TempDir()
	spec, err := json.Marshal(map[string]any{
		"name": "c2", "source": "a", "sink": "t2", "maxRate": 4.0,
		"utility": map[string]any{"type": "log", "weight": 2.0, "scale": 1.0},
		"edges": []map[string]any{
			{"from": "a", "to": "b", "beta": 1, "cost": 1},
			{"from": "b", "to": "t2", "beta": 1, "cost": 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.AddCommodityJSON(spec); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetCapacity("b", 6); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetMaxRates(map[string]float64{"c1": 5, "c2": 3}); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.RemoveCommodity("c2"); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	rep, err := Verify(dir, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("replay diverged from recording")
	}
	if rep.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", rep.Runs)
	}
	if rep.Mutations != 5 {
		t.Fatalf("Mutations = %d, want 5", rep.Mutations)
	}
	if rep.Digests < 6 { // boot solve + one per awaited mutation
		t.Fatalf("Digests = %d, want >= 6", rep.Digests)
	}
	if rep.CheckpointsVerified < 1 {
		t.Fatalf("CheckpointsVerified = %d, want >= 1", rep.CheckpointsVerified)
	}
	if rep.Truncated {
		t.Fatal("clean recording reported truncated")
	}
}

// TestVerifyPinpointsCorruptedDigest corrupts one recorded digest's
// utility and asserts the diff report names exactly that generation.
func TestVerifyPinpointsCorruptedDigest(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetMaxRate("c1", 6); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records
	var corruptGen int64 = -1
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == journal.KindDigest {
			recs[i].Digest.Utility += 1.0
			corruptGen = recs[i].Digest.Generation
			break
		}
	}
	if corruptGen < 0 {
		t.Fatal("recording holds no digests")
	}
	bad := t.TempDir()
	w, err := journal.Create(bad, journal.Options{Fsync: journal.FsyncNever, StreamSHA: log.StreamSHA()})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.CopyTo(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(bad, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("corrupted digest verified clean")
	}
	found := false
	for _, m := range rep.Mismatches {
		if m.Field == "utility" {
			found = true
			if m.Generation != corruptGen {
				t.Fatalf("mismatch pinpoints generation %d, corrupted %d", m.Generation, corruptGen)
			}
		}
	}
	if !found {
		t.Fatalf("no utility mismatch reported: %+v", rep.Mismatches)
	}
	// Later generations still verify: only the corrupted one diverges.
	for _, m := range rep.Mismatches {
		if m.Generation != corruptGen {
			t.Fatalf("unexpected mismatch at generation %d: %s", m.Generation, m)
		}
	}
}

// TestVerifyMultiRun records two server lifetimes into the same
// journal directory — the second boots from recovered state — and
// verifies both runs replay cleanly.
func TestVerifyMultiRun(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	recd, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	record(t, dir, recd.Problem, func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 7); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	rep, err := Verify(dir, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("multi-run replay diverged")
	}
	if rep.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", rep.Runs)
	}
}

// TestVerifyRejectsHeadlessJournal: a journal that does not open with
// a restart checkpoint cannot be replayed.
func TestVerifyRejectsHeadlessJournal(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append(journal.Record{
		Kind: journal.KindMutation,
		Rev:  2,
		Mutation: &journal.Mutation{
			Op: journal.OpSetRate, Target: "c1",
			Payload: []byte(`{"rate":4}`),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir, Options{}); err == nil {
		t.Fatal("headless journal verified without error")
	}
}
