package replay

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/utility"
)

const waitBudget = 20 * time.Second

// toyProblem builds the two-server chain the server tests use: servers
// a, b (capacity 10), sinks t1, t2, one commodity a→t1.
func toyProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	a, err := net.AddServer("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddServer("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := net.AddSink("t1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := net.AddSink("t2")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := net.AddLink(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	bt1, err := net.AddLink(b, t1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddLink(b, t2, 10); err != nil {
		t.Fatal(err)
	}
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, ab, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, bt1, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func serverOptions() server.Options {
	return server.Options{
		MaxIters:      1500,
		StationaryTol: 1e-3,
		Debounce:      2 * time.Millisecond,
		Logf:          func(string, ...any) {},
	}
}

// record runs one journaled server lifetime in dir, applying mutate,
// and returns the journal writer closed.
func record(t *testing.T, dir string, p *stream.Problem, mutate func(s *server.Server)) {
	t.Helper()
	jw, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts := serverOptions()
	opts.Journal = jw
	opts.CheckpointEvery = 2
	s, err := server.New(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	mutate(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitNext waits for the generation after the current snapshot's.
func waitNext(t *testing.T, s *server.Server) {
	t.Helper()
	gen := int64(0)
	if snap := s.Snapshot(); snap != nil {
		gen = snap.Generation
	}
	if _, err := s.WaitForGeneration(gen+1, waitBudget); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCleanRecording(t *testing.T) {
	dir := t.TempDir()
	spec, err := json.Marshal(map[string]any{
		"name": "c2", "source": "a", "sink": "t2", "maxRate": 4.0,
		"utility": map[string]any{"type": "log", "weight": 2.0, "scale": 1.0},
		"edges": []map[string]any{
			{"from": "a", "to": "b", "beta": 1, "cost": 1},
			{"from": "b", "to": "t2", "beta": 1, "cost": 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.AddCommodityJSON(spec); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetCapacity("b", 6); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetMaxRates(map[string]float64{"c1": 5, "c2": 3}); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.RemoveCommodity("c2"); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	rep, err := Verify(dir, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("replay diverged from recording")
	}
	if rep.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", rep.Runs)
	}
	if rep.Mutations != 5 {
		t.Fatalf("Mutations = %d, want 5", rep.Mutations)
	}
	if rep.Digests < 6 { // boot solve + one per awaited mutation
		t.Fatalf("Digests = %d, want >= 6", rep.Digests)
	}
	if rep.CheckpointsVerified < 1 {
		t.Fatalf("CheckpointsVerified = %d, want >= 1", rep.CheckpointsVerified)
	}
	if rep.Truncated {
		t.Fatal("clean recording reported truncated")
	}
}

// TestVerifyShardedRecording journals a 4-shard server's run and
// replays it: the restart checkpoint carries the shard count, placement
// salt, and price-exchange cadence, so the verifier re-boots the
// identical partition and the dual-decomposition trajectory reproduces
// every digest bit-for-bit.
func TestVerifyShardedRecording(t *testing.T) {
	dir := t.TempDir()
	spec, err := json.Marshal(map[string]any{
		"name": "c2", "source": "a", "sink": "t2", "maxRate": 4.0,
		"utility": map[string]any{"type": "log", "weight": 2.0, "scale": 1.0},
		"edges": []map[string]any{
			{"from": "a", "to": "b", "beta": 1, "cost": 1},
			{"from": "b", "to": "t2", "beta": 1, "cost": 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	opts := serverOptions()
	opts.Journal = jw
	opts.CheckpointEvery = 2
	opts.Shards = 4
	opts.PlacementSalt = 7
	s, err := server.New(toyProblem(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetMaxRate("c1", 4); err != nil {
		t.Fatal(err)
	}
	waitNext(t, s)
	if _, err := s.AddCommodityJSON(spec); err != nil {
		t.Fatal(err)
	}
	waitNext(t, s)
	if _, err := s.SetCapacity("b", 6); err != nil {
		t.Fatal(err)
	}
	waitNext(t, s)
	if _, err := s.RemoveCommodity("c2"); err != nil {
		t.Fatal(err)
	}
	waitNext(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("sharded replay diverged from recording")
	}
	if rep.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", rep.Runs)
	}
	if rep.Mutations != 4 {
		t.Fatalf("Mutations = %d, want 4", rep.Mutations)
	}
}

// TestVerifyPinpointsCorruptedDigest corrupts one recorded digest's
// utility and asserts the diff report names exactly that generation.
func TestVerifyPinpointsCorruptedDigest(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
		if _, err := s.SetMaxRate("c1", 6); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records
	var corruptGen int64 = -1
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == journal.KindDigest {
			recs[i].Digest.Utility += 1.0
			corruptGen = recs[i].Digest.Generation
			break
		}
	}
	if corruptGen < 0 {
		t.Fatal("recording holds no digests")
	}
	bad := t.TempDir()
	w, err := journal.Create(bad, journal.Options{Fsync: journal.FsyncNever, StreamSHA: log.StreamSHA()})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.CopyTo(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(bad, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("corrupted digest verified clean")
	}
	found := false
	for _, m := range rep.Mismatches {
		if m.Field == "utility" {
			found = true
			if m.Generation != corruptGen {
				t.Fatalf("mismatch pinpoints generation %d, corrupted %d", m.Generation, corruptGen)
			}
		}
	}
	if !found {
		t.Fatalf("no utility mismatch reported: %+v", rep.Mismatches)
	}
	// Later generations still verify: only the corrupted one diverges.
	for _, m := range rep.Mismatches {
		if m.Generation != corruptGen {
			t.Fatalf("unexpected mismatch at generation %d: %s", m.Generation, m)
		}
	}
}

// TestVerifyCheckpointDuringSolve reproduces the live interleaving
// where a periodic checkpoint is journaled (under the server mutex, at
// mutation acceptance) before the digest of a solve that captured an
// earlier revision lands from the solver goroutine. The verifier must
// not let the checkpoint drag the replayed state past the solve
// boundary: the digest still has to verify against the revision its
// solve captured.
func TestVerifyCheckpointDuringSolve(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		for _, rate := range []float64{4, 6, 5} {
			if _, err := s.SetMaxRate("c1", rate); err != nil {
				t.Fatal(err)
			}
			waitNext(t, s)
		}
	})

	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records
	// The serialized recording holds ..., digest(N), mutation(M),
	// checkpoint(M), ... with N < M. Hoist the mutation+checkpoint pair
	// ahead of the digest — a legal interleaving of the live server
	// (the mutation arrived, and checkpointed, while the rev-N solve
	// was still in flight).
	cp := -1
	for i, r := range recs {
		if r.Kind == journal.KindCheckpoint && !r.Checkpoint.Restart {
			cp = i
			break
		}
	}
	if cp < 2 || recs[cp-1].Kind != journal.KindMutation || recs[cp-1].Rev != recs[cp].Rev ||
		recs[cp-2].Kind != journal.KindDigest || recs[cp-2].Rev >= recs[cp].Rev {
		t.Fatalf("recording shape unexpected around first periodic checkpoint (index %d)", cp)
	}
	reordered := append([]journal.Record(nil), recs[:cp-2]...)
	reordered = append(reordered, recs[cp-1], recs[cp], recs[cp-2])
	reordered = append(reordered, recs[cp+1:]...)

	raced := t.TempDir()
	w, err := journal.Create(raced, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.CopyTo(w, reordered); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(raced, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("checkpoint journaled mid-solve broke verification")
	}
	if rep.CheckpointsVerified < 1 {
		t.Fatalf("CheckpointsVerified = %d, want >= 1", rep.CheckpointsVerified)
	}
}

// TestVerifyTailMutations: mutations journaled after the last digest
// of a run (accepted mid-solve, never published before shutdown) must
// still be applied and apply-checked, and counted as the unverified
// tail.
func TestVerifyTailMutations(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})
	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lastRev := int64(0)
	for _, r := range log.Records {
		if r.Rev > lastRev {
			lastRev = r.Rev
		}
	}

	// makeTail rebuilds the journal with extra mutations inserted just
	// before the final digest — the live shape: they were accepted and
	// journaled while the last solve was in flight, so the run ends
	// with a digest whose rev trails them, and no later digest ever
	// covers them.
	lastDigest := -1
	for i, r := range log.Records {
		if r.Kind == journal.KindDigest {
			lastDigest = i
		}
	}
	if lastDigest < 0 {
		t.Fatal("recording holds no digests")
	}
	makeTail := func(muts ...journal.Record) string {
		t.Helper()
		recs := append([]journal.Record(nil), log.Records[:lastDigest]...)
		recs = append(recs, muts...)
		recs = append(recs, log.Records[lastDigest:]...)
		out := t.TempDir()
		w, err := journal.Create(out, journal.Options{Fsync: journal.FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if err := journal.CopyTo(w, recs); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	good := makeTail(
		journal.Record{Kind: journal.KindMutation, Rev: lastRev + 1, Mutation: &journal.Mutation{
			Op: journal.OpSetRate, Target: "c1", Payload: []byte(`{"rate":7}`)}},
		journal.Record{Kind: journal.KindMutation, Rev: lastRev + 2, Mutation: &journal.Mutation{
			Op: journal.OpSetCapacity, Target: "b", Payload: []byte(`{"capacity":9}`)}},
	)
	rep, err := Verify(good, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("tail mutations broke verification")
	}
	if rep.UnverifiedTailMutations != 2 {
		t.Fatalf("UnverifiedTailMutations = %d, want 2", rep.UnverifiedTailMutations)
	}

	// A tail mutation that no longer applies must surface as a
	// mismatch — proof the tail is exercised, not skipped.
	bad := makeTail(journal.Record{Kind: journal.KindMutation, Rev: lastRev + 1,
		Mutation: &journal.Mutation{Op: journal.OpRemoveCommodity, Target: "ghost"}})
	rep, err = Verify(bad, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("unappliable tail mutation verified clean")
	}
	found := false
	for _, m := range rep.Mismatches {
		if m.Field == "apply" && m.Rev == lastRev+1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no apply mismatch for the tail mutation: %+v", rep.Mismatches)
	}
}

// TestVerifyMultiRun records two server lifetimes into the same
// journal directory — the second boots from recovered state — and
// verifies both runs replay cleanly.
func TestVerifyMultiRun(t *testing.T) {
	dir := t.TempDir()
	record(t, dir, toyProblem(t), func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 4); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	recd, err := journal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	record(t, dir, recd.Problem, func(s *server.Server) {
		if _, err := s.SetMaxRate("c1", 7); err != nil {
			t.Fatal(err)
		}
		waitNext(t, s)
	})

	rep, err := Verify(dir, Options{Timeout: waitBudget})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, m := range rep.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("multi-run replay diverged")
	}
	if rep.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", rep.Runs)
	}
}

// TestVerifyRejectsHeadlessJournal: a journal that does not open with
// a restart checkpoint cannot be replayed.
func TestVerifyRejectsHeadlessJournal(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append(journal.Record{
		Kind: journal.KindMutation,
		Rev:  2,
		Mutation: &journal.Mutation{
			Op: journal.OpSetRate, Target: "c1",
			Payload: []byte(`{"rate":4}`),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir, Options{}); err == nil {
		t.Fatal("headless journal verified without error")
	}
}
