// Package replay re-drives a recorded flight-recorder journal through
// a fresh in-proc admission server and verifies the replayed decision
// trajectory — utility per generation, admitted sets, flip sequences —
// against the recorded digests, bit for bit.
//
// The journal partitions into runs at restart checkpoints (one per
// server boot). For each run the verifier starts a cold server with
// the recorded solver parameters and an external solve gate, then
// walks the run's records in file order: mutations queue up; a digest
// record flushes every queued mutation with revision ≤ the digest's,
// admits exactly one solve through the gate, and compares the
// published snapshot's digest to the recorded one. Because the solver
// is bitwise-deterministic and the gate reproduces the live run's
// solve boundaries (each digest names the revision its solve
// captured), every comparison is exact — a mismatch means the journal
// and the code disagree, not that timing drifted. Periodic non-restart
// checkpoints double as cross-checks: the replayed problem's canonical
// JSON must equal the recorded checkpoint bytes. They queue alongside
// mutations and are checked only once a flush passes their revision:
// checkpoints are journaled at mutation acceptance while digests land
// from the solver goroutine, so a checkpoint at rev M may precede the
// digest of a solve that captured rev N < M in file order, and eager
// verification would push the replayed state past that solve.
package replay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/stream"
)

// Options tunes a verification.
type Options struct {
	// Workers overrides the recorded worker-pool bound (0 keeps the
	// recording's; the trajectory is identical either way — PR 4).
	Workers int
	// Speed paces the replay against the recorded wall-clock: 1 plays
	// mutations in real recorded time, 2 at double speed, 0 (default)
	// as fast as possible.
	Speed float64
	// Timeout bounds each replayed solve. Default 30s.
	Timeout time.Duration
	// Logf receives progress; nil is silent.
	Logf func(format string, args ...any)
}

// Mismatch is one divergence between the recorded and replayed
// trajectories, pinpointed to a run and generation.
type Mismatch struct {
	Run        int    `json:"run"`
	Generation int64  `json:"generation,omitempty"`
	Rev        int64  `json:"rev,omitempty"`
	Field      string `json:"field"`
	Recorded   string `json:"recorded"`
	Replayed   string `json:"replayed"`
}

func (m Mismatch) String() string {
	return fmt.Sprintf("run %d generation %d rev %d: %s: recorded %s, replayed %s",
		m.Run, m.Generation, m.Rev, m.Field, m.Recorded, m.Replayed)
}

// Report is the verification outcome.
type Report struct {
	Dir       string `json:"dir"`
	StreamSHA string `json:"streamSha,omitempty"`
	// Truncated reports the journal ended in a torn tail record (the
	// crash-loss window; everything before it still verifies).
	Truncated bool `json:"truncated,omitempty"`
	Runs      int  `json:"runs"`
	Mutations int  `json:"mutations"`
	Digests   int  `json:"digests"`
	// CheckpointsVerified counts the periodic checkpoints whose problem
	// bytes matched the replayed state exactly.
	CheckpointsVerified int `json:"checkpointsVerified"`
	// UnverifiedTailMutations counts mutations journaled after the last
	// digest of their run — accepted but never incorporated into a
	// published snapshot before the recording stopped.
	UnverifiedTailMutations int `json:"unverifiedTailMutations"`
	// DrainedDigests counts recorded solves truncated by server
	// shutdown; their iteration counts are wall-clock artifacts and are
	// excluded from verification.
	DrainedDigests int        `json:"drainedDigests,omitempty"`
	Mismatches     []Mismatch `json:"mismatches"`
	Seconds        float64    `json:"seconds"`
}

// Ok reports a clean verification.
func (r *Report) Ok() bool { return len(r.Mismatches) == 0 }

// Verify reads the journal at dir and replays every run against the
// recorded digests. The error covers unreadable or structurally
// invalid journals; trajectory divergences land in Report.Mismatches.
func Verify(dir string, opts Options) (*Report, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	log, err := journal.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep := &Report{Dir: dir, StreamSHA: log.StreamSHA(), Truncated: log.Truncated}

	runs, err := splitRuns(log.Records)
	if err != nil {
		return nil, err
	}
	rep.Runs = len(runs)
	for i, run := range runs {
		logf("replay: run %d/%d: %d records", i+1, len(runs), len(run))
		if err := verifyRun(i, run, opts, rep, logf); err != nil {
			return nil, fmt.Errorf("replay: run %d: %w", i, err)
		}
	}
	rep.Seconds = time.Since(start).Seconds()
	return rep, nil
}

// splitRuns partitions the record stream at restart checkpoints. Every
// journal written through server.New begins with one.
func splitRuns(recs []journal.Record) ([][]journal.Record, error) {
	var runs [][]journal.Record
	for _, r := range recs {
		if r.Kind == journal.KindCheckpoint && r.Checkpoint.Restart {
			runs = append(runs, nil)
		}
		if len(runs) == 0 {
			return nil, fmt.Errorf("journal does not begin with a restart checkpoint (first record: %s rev %d)", r.Kind, r.Rev)
		}
		runs[len(runs)-1] = append(runs[len(runs)-1], r)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("journal holds no records")
	}
	return runs, nil
}

// verifyRun replays one server lifetime. Structural failures (a
// mutation that no longer applies, a revision that drifts) abort the
// run with a mismatch recorded; value divergences (utility, admitted
// hash, flips) are recorded and the replay continues.
func verifyRun(runIdx int, run []journal.Record, opts Options, rep *Report, logf func(string, ...any)) error {
	boot := run[0]
	p, err := stream.ParseProblem(boot.Checkpoint.Problem)
	if err != nil {
		return fmt.Errorf("restart checkpoint: %w", err)
	}
	sp := boot.Checkpoint.Solver
	if sp == nil {
		return fmt.Errorf("restart checkpoint lacks solver parameters")
	}
	workers := sp.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	gate := make(chan struct{})
	srv, err := server.New(p, server.Options{
		Epsilon:       sp.Epsilon,
		Eta:           sp.Eta,
		MaxIters:      sp.MaxIters,
		StationaryTol: sp.StationaryTol,
		Workers:       workers,
		// Recorded shard topology: a sharded run replays against the
		// identical partition and exchange cadence; zero fields re-boot
		// the single-engine path.
		Shards:             sp.Shards,
		PlacementSalt:      sp.PlacementSalt,
		PriceExchangeEvery: sp.PriceExchangeEvery,
		PriceDamping:       sp.PriceDamping,
		Debounce:           -1, // replay batches by recorded revision, not wall-clock
		HistoryCap:         -1,
		FlipCap:            -1,
		SolveGate:          gate,
		Logf:               func(string, ...any) {},
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if got := srv.Rev(); got != boot.Rev {
		rep.Mismatches = append(rep.Mismatches, Mismatch{
			Run: runIdx, Rev: boot.Rev, Field: "boot_rev",
			Recorded: fmt.Sprint(boot.Rev), Replayed: fmt.Sprint(got),
		})
		return nil
	}

	structural := func(m Mismatch) {
		m.Run = runIdx
		rep.Mismatches = append(rep.Mismatches, m)
	}

	var (
		queue    []journal.Record // mutations and checkpoints not yet reached by a flush
		prevSnap *server.Snapshot
		prevWall int64
	)
	// flush walks the queue — mutations and periodic checkpoints, in
	// journal order — applying and verifying every record with revision
	// ≤ rev. Checkpoints are journaled under the server mutex at
	// mutation acceptance, while digests land later from the solver
	// goroutine, so a checkpoint at rev M can precede the digest of a
	// solve that captured rev N < M in file order; verifying the
	// checkpoint only when a flush passes rev M keeps the replayed
	// state from running ahead of the solve boundaries. A returned
	// errDiverged means a mismatch was already recorded and the run is
	// over; any other error is operational.
	flush := func(rev int64) error {
		for len(queue) > 0 && queue[0].Rev <= rev {
			q := queue[0]
			queue = queue[1:]
			switch q.Kind {
			case journal.KindMutation:
				got, err := applyMutation(srv, q.Mutation)
				if err != nil {
					structural(Mismatch{Rev: q.Rev, Field: "apply", Recorded: "applies cleanly",
						Replayed: fmt.Sprintf("%s %s: %v", q.Mutation.Op, q.Mutation.Target, err)})
					return errDiverged
				}
				if got != q.Rev {
					structural(Mismatch{Rev: q.Rev, Field: "apply",
						Recorded: fmt.Sprintf("rev %d (%s %s)", q.Rev, q.Mutation.Op, q.Mutation.Target),
						Replayed: fmt.Sprintf("rev drift: replayed rev %d", got)})
					return errDiverged
				}
				rep.Mutations++

			case journal.KindCheckpoint:
				got, err := srv.ProblemJSON()
				if err != nil {
					return err
				}
				// The journal stores the problem compacted (json.Marshal
				// compacts embedded RawMessage); canonicalize both sides.
				var buf bytes.Buffer
				if err := json.Compact(&buf, got); err != nil {
					return err
				}
				got = buf.Bytes()
				if !bytes.Equal(got, q.Checkpoint.Problem) {
					structural(Mismatch{Rev: q.Rev, Field: "checkpoint_problem",
						Recorded: fmt.Sprintf("%d bytes", len(q.Checkpoint.Problem)),
						Replayed: fmt.Sprintf("%d bytes (differs)", len(got))})
					return errDiverged
				}
				rep.CheckpointsVerified++
			}
		}
		return nil
	}

	for _, r := range run {
		if opts.Speed > 0 && r.WallUnixNano > 0 {
			if prevWall > 0 && r.WallUnixNano > prevWall {
				time.Sleep(time.Duration(float64(r.WallUnixNano-prevWall) / opts.Speed))
			}
			prevWall = r.WallUnixNano
		}
		switch r.Kind {
		case journal.KindMutation:
			queue = append(queue, r)

		case journal.KindCheckpoint:
			if r.Checkpoint.Restart {
				continue // the boot checkpoint that opened this run
			}
			queue = append(queue, r)

		case journal.KindDigest:
			rec := r.Digest
			if rec.Drained {
				// The recording's final solve was truncated by the
				// shutdown drain at an arbitrary wall-clock point; its
				// iteration count is not reproducible, so the trajectory
				// ends at the previous digest.
				rep.DrainedDigests++
				continue
			}
			if err := flush(r.Rev); err != nil {
				if err == errDiverged {
					return nil
				}
				return err
			}
			// One recorded digest = one solve: wake the loop, admit one
			// solve through the gate, wait for the generation.
			srv.Kick()
			select {
			case gate <- struct{}{}:
			case <-time.After(opts.Timeout):
				structural(Mismatch{Generation: rec.Generation, Rev: r.Rev, Field: "solve_gate",
					Recorded: "solver accepts a solve", Replayed: "gate send timed out"})
				return nil
			}
			snap, err := srv.WaitForGeneration(rec.Generation, opts.Timeout)
			if err != nil {
				structural(Mismatch{Generation: rec.Generation, Rev: r.Rev, Field: "publish",
					Recorded: fmt.Sprintf("generation %d publishes", rec.Generation), Replayed: err.Error()})
				return nil
			}
			if snap.Generation != rec.Generation {
				structural(Mismatch{Generation: rec.Generation, Rev: r.Rev, Field: "generation",
					Recorded: fmt.Sprint(rec.Generation), Replayed: fmt.Sprint(snap.Generation)})
				return nil
			}
			got := snap.JournalDigest(server.DiffFlips(prevSnap, snap))
			prevSnap = snap
			compareDigest(runIdx, r.Rev, rec, got, snap, rep)
			rep.Digests++
		}
	}
	// Records journaled after the last digest were never solved for in
	// the recording: apply the mutations (they must still apply —
	// recovery depends on it) and cross-check any queued checkpoints,
	// but there is no digest to verify against. Flush past every
	// revision — the run's last record is usually a digest whose rev
	// trails the mutations journaled during that final solve.
	if len(queue) > 0 {
		before := rep.Mutations
		err := flush(math.MaxInt64)
		rep.UnverifiedTailMutations += rep.Mutations - before
		if err == errDiverged {
			return nil
		}
		return err
	}
	return nil
}

// errDiverged signals that a flush recorded a structural mismatch and
// the run cannot continue; the mismatch is already in the report.
var errDiverged = errors.New("replay: trajectory diverged")

// compareDigest checks every recorded field against the replayed
// snapshot; each divergence is an independent mismatch so the report
// pinpoints exactly what moved.
func compareDigest(run int, rev int64, rec, got *journal.Digest, snap *server.Snapshot, rep *Report) {
	add := func(field, recorded, replayed string) {
		rep.Mismatches = append(rep.Mismatches, Mismatch{
			Run: run, Generation: rec.Generation, Rev: rev,
			Field: field, Recorded: recorded, Replayed: replayed,
		})
	}
	if snap.Rev != rev {
		add("rev", fmt.Sprint(rev), fmt.Sprint(snap.Rev))
	}
	if got.Utility != rec.Utility {
		add("utility", fmt.Sprintf("%.17g", rec.Utility), fmt.Sprintf("%.17g", got.Utility))
	}
	if got.AdmittedHash != rec.AdmittedHash {
		add("admitted_hash", rec.AdmittedHash, got.AdmittedHash)
	}
	if got.Commodities != rec.Commodities {
		add("commodities", fmt.Sprint(rec.Commodities), fmt.Sprint(got.Commodities))
	}
	if got.Warm != rec.Warm {
		add("warm", fmt.Sprint(rec.Warm), fmt.Sprint(got.Warm))
	}
	if got.Iterations != rec.Iterations {
		add("iterations", fmt.Sprint(rec.Iterations), fmt.Sprint(got.Iterations))
	}
	if got.Converged != rec.Converged {
		add("converged", fmt.Sprint(rec.Converged), fmt.Sprint(got.Converged))
	}
	if got.Feasible != rec.Feasible {
		add("feasible", fmt.Sprint(rec.Feasible), fmt.Sprint(got.Feasible))
	}
	if !flipsEqual(rec.Flips, got.Flips) {
		add("flips", flipsString(rec.Flips), flipsString(got.Flips))
	}
}

func flipsEqual(a, b []journal.Flip) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func flipsString(fs []journal.Flip) string {
	if len(fs) == 0 {
		return "none"
	}
	b, _ := json.Marshal(fs)
	return string(b)
}

// applyMutation maps one recorded mutation onto the server's API,
// returning the revision the server assigned.
func applyMutation(srv *server.Server, m *journal.Mutation) (int64, error) {
	switch m.Op {
	case journal.OpAddCommodity:
		return srv.AddCommodityJSON(m.Payload)
	case journal.OpRemoveCommodity:
		return srv.RemoveCommodity(m.Target)
	case journal.OpSetRate:
		var pl journal.RatePayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.SetMaxRate(m.Target, pl.Rate)
	case journal.OpSetRates:
		var pl journal.RatesPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.SetMaxRates(pl.Rates)
	case journal.OpSetUtility:
		return srv.SetUtilityJSON(m.Target, m.Payload)
	case journal.OpSetCapacity:
		var pl journal.CapacityPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.SetCapacity(m.Target, pl.Capacity)
	case journal.OpScaleCapacity:
		var pl journal.ScalePayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.ScaleCapacity(m.Target, pl.Factor)
	case journal.OpSetBandwidth:
		var pl journal.LinkPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.SetBandwidth(pl.From, pl.To, pl.Bandwidth)
	case journal.OpScaleBandwidth:
		var pl journal.LinkPayload
		if err := json.Unmarshal(m.Payload, &pl); err != nil {
			return 0, err
		}
		return srv.ScaleBandwidth(pl.From, pl.To, pl.Factor)
	default:
		return 0, fmt.Errorf("unknown mutation op %q", m.Op)
	}
}
