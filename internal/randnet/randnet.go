// Package randnet generates the synthetic random instances of §6: a
// random network of processing nodes with capacities and bandwidths
// drawn U[1,100], per-commodity shrinkage factors derived from node
// potentials g ~ U[1,10] (so Property 1 holds by construction), and
// resource consumption rates U[1,5].
//
// The paper does not specify the topology beyond "synthetic (random)
// network containing 40 nodes" with per-commodity DAGs; we use layered
// random DAGs (nodes spread over layers, forward edges between nearby
// layers) with guaranteed source→sink connectivity per commodity. Layer
// count controls graph depth, which experiment T3 sweeps.
package randnet

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/utility"
)

// Config parameterizes generation. Zero values select the §6 defaults.
type Config struct {
	Nodes       int // processing nodes; default 40
	Commodities int // default 3
	Layers      int // default 5
	// EdgeProb is the probability of a link between nodes in adjacent
	// layers; default 0.5. SkipProb is the probability of a link
	// skipping one layer; default 0.15.
	EdgeProb float64
	SkipProb float64
	// TaskFraction is the probability that an interior node hosts a
	// given commodity's task (i.e. joins that commodity's DAG); default
	// 0.7. A random source→sink chain is always force-hosted so every
	// commodity is connected.
	TaskFraction float64
	// Capacity and bandwidth ranges; defaults U[1,100] (§6).
	CapMin, CapMax float64
	BwMin, BwMax   float64
	// Node-potential range for shrinkage factors; default U[1,10] (§6).
	GMin, GMax float64
	// Resource-consumption range; default U[1,5] (§6).
	CostMin, CostMax float64
	// Offered-rate range; the paper studies overload, so the default
	// U[50,100] typically exceeds what the network can carry.
	LambdaMin, LambdaMax float64
	// Utility selects each commodity's utility; default linear slope 1
	// (total throughput, §6).
	Utility func(j int) utility.Function
	// Seed drives the deterministic generator.
	Seed int64
}

func (c *Config) setDefaults() {
	setInt := func(p *int, v int) {
		if *p <= 0 {
			*p = v
		}
	}
	setF := func(p *float64, v float64) {
		if *p <= 0 {
			*p = v
		}
	}
	setInt(&c.Nodes, 40)
	setInt(&c.Commodities, 3)
	setInt(&c.Layers, 5)
	setF(&c.EdgeProb, 0.5)
	setF(&c.SkipProb, 0.15)
	setF(&c.TaskFraction, 0.7)
	setF(&c.CapMin, 1)
	setF(&c.CapMax, 100)
	setF(&c.BwMin, 1)
	setF(&c.BwMax, 100)
	setF(&c.GMin, 1)
	setF(&c.GMax, 10)
	setF(&c.CostMin, 1)
	setF(&c.CostMax, 5)
	setF(&c.LambdaMin, 50)
	setF(&c.LambdaMax, 100)
	if c.Utility == nil {
		c.Utility = func(int) utility.Function { return utility.Linear{Slope: 1} }
	}
}

// Generate builds a random problem instance. The same Config (including
// Seed) always yields the same instance.
func Generate(cfg Config) (*stream.Problem, error) {
	cfg.setDefaults()
	if cfg.Layers < 2 {
		return nil, fmt.Errorf("randnet: need at least 2 layers, got %d", cfg.Layers)
	}
	if cfg.Nodes < cfg.Layers {
		return nil, fmt.Errorf("randnet: %d nodes cannot fill %d layers", cfg.Nodes, cfg.Layers)
	}
	if cfg.Commodities > cfg.Nodes/cfg.Layers {
		return nil, fmt.Errorf("randnet: %d commodities need %d first-layer nodes, layer has %d",
			cfg.Commodities, cfg.Commodities, cfg.Nodes/cfg.Layers)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	uni := func(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

	net := stream.NewNetwork()

	// Layered processing nodes.
	layers := make([][]graph.NodeID, cfg.Layers)
	for i := 0; i < cfg.Nodes; i++ {
		l := i * cfg.Layers / cfg.Nodes
		id, err := net.AddServer(fmt.Sprintf("n%02d", i), uni(cfg.CapMin, cfg.CapMax))
		if err != nil {
			return nil, err
		}
		layers[l] = append(layers[l], id)
	}

	// Forward links between adjacent layers (probability EdgeProb) and
	// one-layer skips (SkipProb); then patch connectivity so every
	// interior node has at least one in-link and one out-link.
	addLink := func(from, to graph.NodeID) error {
		if net.G.EdgeBetween(from, to) != graph.Invalid {
			return nil
		}
		_, err := net.AddLink(from, to, uni(cfg.BwMin, cfg.BwMax))
		return err
	}
	for l := 0; l+1 < cfg.Layers; l++ {
		for _, u := range layers[l] {
			for _, v := range layers[l+1] {
				if r.Float64() < cfg.EdgeProb {
					if err := addLink(u, v); err != nil {
						return nil, err
					}
				}
			}
			if l+2 < cfg.Layers {
				for _, v := range layers[l+2] {
					if r.Float64() < cfg.SkipProb {
						if err := addLink(u, v); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	for l := 0; l+1 < cfg.Layers; l++ {
		for _, u := range layers[l] {
			if net.G.OutDegree(u) == 0 {
				v := layers[l+1][r.Intn(len(layers[l+1]))]
				if err := addLink(u, v); err != nil {
					return nil, err
				}
			}
		}
		for _, v := range layers[l+1] {
			if net.G.InDegree(v) == 0 {
				u := layers[l][r.Intn(len(layers[l]))]
				if err := addLink(u, v); err != nil {
					return nil, err
				}
			}
		}
	}

	// Sinks (one per commodity) fed from the last layer.
	p := stream.NewProblem(net)
	firstLayer := layers[0]
	lastLayer := layers[cfg.Layers-1]
	srcPerm := r.Perm(len(firstLayer))
	for j := 0; j < cfg.Commodities; j++ {
		name := fmt.Sprintf("S%d", j+1)
		sink, err := net.AddSink("sink:" + name)
		if err != nil {
			return nil, err
		}
		source := firstLayer[srcPerm[j]]
		// Every last-layer node may deliver to this sink.
		for _, u := range lastLayer {
			if err := addLink(u, sink); err != nil {
				return nil, err
			}
		}

		// Hosting set: the source, a guaranteed random chain through
		// the layers, and each remaining node with prob TaskFraction.
		hosts := make([]bool, net.G.NumNodes())
		hosts[source] = true
		hosts[sink] = true
		prev := source
		for l := 1; l < cfg.Layers; l++ {
			candidates := successorsInLayer(net.G, prev, layers[l])
			if len(candidates) == 0 {
				// No direct link from the chain node into this layer:
				// create one (keeps every commodity connected).
				v := layers[l][r.Intn(len(layers[l]))]
				if err := addLink(prev, v); err != nil {
					return nil, err
				}
				candidates = []graph.NodeID{v}
			}
			next := candidates[r.Intn(len(candidates))]
			hosts[next] = true
			prev = next
		}
		for _, layer := range layers[1:] {
			for _, u := range layer {
				if !hosts[u] && r.Float64() < cfg.TaskFraction {
					hosts[u] = true
				}
			}
		}

		// Potentials g ~ U[GMin,GMax]; β_ik = g_k/g_i (Property 1 by
		// construction). The source potential normalizes to 1
		// implicitly since only ratios matter.
		g := make([]float64, net.G.NumNodes())
		for i := range g {
			g[i] = uni(cfg.GMin, cfg.GMax)
		}
		lambda := uni(cfg.LambdaMin, cfg.LambdaMax)
		com, err := p.AddCommodity(name, source, sink, lambda, cfg.Utility(j))
		if err != nil {
			return nil, err
		}
		for e := 0; e < net.G.NumEdges(); e++ {
			edge := net.G.Edge(graph.EdgeID(e))
			if !hosts[edge.From] || !hosts[edge.To] {
				continue
			}
			if net.Kinds[edge.To] == stream.Sink && edge.To != sink {
				continue
			}
			params := stream.EdgeParams{
				Beta: g[edge.To] / g[edge.From],
				Cost: uni(cfg.CostMin, cfg.CostMax),
			}
			if err := p.SetEdge(com, graph.EdgeID(e), params); err != nil {
				return nil, err
			}
		}
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("randnet: generated instance invalid: %w", err)
	}
	return p, nil
}

// successorsInLayer lists the direct successors of u inside the layer.
func successorsInLayer(g *graph.Graph, u graph.NodeID, layer []graph.NodeID) []graph.NodeID {
	inLayer := make(map[graph.NodeID]bool, len(layer))
	for _, v := range layer {
		inLayer[v] = true
	}
	var out []graph.NodeID
	for _, e := range g.Out(u) {
		if v := g.Edge(e).To; inLayer[v] {
			out = append(out, v)
		}
	}
	return out
}
