package randnet

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/transform"
)

func TestGenerateSparseValidAndSized(t *testing.T) {
	cfg := Config{Seed: 11, Nodes: 30, Layers: 5, Commodities: 200}
	p, err := GenerateSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Commodities) != cfg.Commodities {
		t.Fatalf("commodities = %d, want %d", len(p.Commodities), cfg.Commodities)
	}
	procs, sinks := 0, 0
	for _, k := range p.Net.Kinds {
		switch k {
		case stream.Processing:
			procs++
		case stream.Sink:
			sinks++
		}
	}
	if procs != cfg.Nodes {
		t.Fatalf("processing nodes = %d, want %d", procs, cfg.Nodes)
	}
	if sinks != cfg.Commodities {
		t.Fatalf("sinks = %d, want one per commodity (%d)", sinks, cfg.Commodities)
	}
	// The whole point of the sparse family: edge count grows with
	// J·Layers, not J². Every commodity adds at most Layers core links
	// plus its private sink link.
	if max := cfg.Commodities * cfg.Layers; p.Net.G.NumEdges() > max {
		t.Fatalf("edges = %d, want ≤ %d (chains only)", p.Net.G.NumEdges(), max)
	}
}

func TestGenerateSparseDeterministic(t *testing.T) {
	cfg := Config{Seed: 4, Nodes: 24, Layers: 4, Commodities: 50}
	a, err := GenerateSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.G.NumEdges() != b.Net.G.NumEdges() || a.Net.G.NumNodes() != b.Net.G.NumNodes() {
		t.Fatalf("topology differs across identical seeds: %d/%d vs %d/%d edges/nodes",
			a.Net.G.NumEdges(), a.Net.G.NumNodes(), b.Net.G.NumEdges(), b.Net.G.NumNodes())
	}
	for j := range a.Commodities {
		if a.Commodities[j].MaxRate != b.Commodities[j].MaxRate {
			t.Fatalf("commodity %d rate %v vs %v", j, a.Commodities[j].MaxRate, b.Commodities[j].MaxRate)
		}
	}
}

// TestGenerateSparseMemberSubgraphsSmall: each commodity's member
// subgraph after the extended-graph transform is a chain — O(Layers)
// nodes and edges — independent of the total commodity count. This is
// the invariant that makes the sparse Subgraph representation O(member
// edges) instead of O(n+m) per commodity.
func TestGenerateSparseMemberSubgraphsSmall(t *testing.T) {
	cfg := Config{Seed: 9, Nodes: 36, Layers: 6, Commodities: 120}
	p, err := GenerateSparse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := transform.Build(p, transform.Options{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Chain of Layers core hops + sink hop, each hop a node + bandwidth
	// node pair in the extended graph, plus dummy/input/diff overhead.
	maxNodes := 2*(cfg.Layers+2) + 3
	maxEdges := 2*(cfg.Layers+1) + 3
	for j := range x.Sub {
		sg := &x.Sub[j]
		if sg.NumNodes() > maxNodes || sg.NumEdges() > maxEdges {
			t.Fatalf("commodity %d subgraph %d nodes/%d edges, want ≤ %d/%d",
				j, sg.NumNodes(), sg.NumEdges(), maxNodes, maxEdges)
		}
	}
	// Footprint must be O(member edges): per-commodity bytes bounded by
	// a constant for this chain-shaped family.
	if per := float64(x.BuildBytes()) / float64(len(p.Commodities)); per > 4096 {
		t.Fatalf("build footprint %.0f bytes/commodity, want ≤ 4096", per)
	}
}

func TestGenerateSparseRejectsBadConfigs(t *testing.T) {
	if _, err := GenerateSparse(Config{Seed: 1, Nodes: 20, Layers: 1, Commodities: 5}); err == nil {
		t.Fatal("Layers=1 accepted")
	}
	if _, err := GenerateSparse(Config{Seed: 1, Nodes: 3, Layers: 5, Commodities: 5}); err == nil {
		t.Fatal("Nodes < Layers accepted")
	}
}
