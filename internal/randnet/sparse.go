package randnet

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stream"
)

// GenerateSparse builds a many-commodity instance over a small shared
// processing core: each commodity is one random chain through the
// layered core (one hosting node per layer) plus a private sink, so its
// member subgraph is O(Layers) edges regardless of how many commodities
// share the network. This is the regime the sparse Subgraph
// representation targets — J in the tens of thousands, per-commodity
// footprint a short path — which Generate cannot reach because it
// links every last-layer node to every sink (O(J²) edges) and requires
// one exclusive first-layer source per commodity.
//
// Config is interpreted as in Generate except that Commodities is
// unconstrained by Nodes, EdgeProb/SkipProb/TaskFraction are ignored
// (links exist exactly where some commodity's chain needs them), and
// sources are drawn with replacement from the first layer.
func GenerateSparse(cfg Config) (*stream.Problem, error) {
	cfg.setDefaults()
	if cfg.Layers < 2 {
		return nil, fmt.Errorf("randnet: need at least 2 layers, got %d", cfg.Layers)
	}
	if cfg.Nodes < cfg.Layers {
		return nil, fmt.Errorf("randnet: %d nodes cannot fill %d layers", cfg.Nodes, cfg.Layers)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	uni := func(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

	net := stream.NewNetwork()
	layers := make([][]graph.NodeID, cfg.Layers)
	for i := 0; i < cfg.Nodes; i++ {
		l := i * cfg.Layers / cfg.Nodes
		id, err := net.AddServer(fmt.Sprintf("n%02d", i), uni(cfg.CapMin, cfg.CapMax))
		if err != nil {
			return nil, err
		}
		layers[l] = append(layers[l], id)
	}
	addLink := func(from, to graph.NodeID) (graph.EdgeID, error) {
		if e := net.G.EdgeBetween(from, to); e != graph.Invalid {
			return e, nil
		}
		return net.AddLink(from, to, uni(cfg.BwMin, cfg.BwMax))
	}

	p := stream.NewProblem(net)
	for j := 0; j < cfg.Commodities; j++ {
		name := fmt.Sprintf("S%d", j+1)
		sink, err := net.AddSink("sink:" + name)
		if err != nil {
			return nil, err
		}
		chain := make([]graph.NodeID, cfg.Layers+1)
		for l := 0; l < cfg.Layers; l++ {
			chain[l] = layers[l][r.Intn(len(layers[l]))]
		}
		chain[cfg.Layers] = sink
		edges := make([]graph.EdgeID, cfg.Layers)
		for l := 0; l+1 < len(chain); l++ {
			e, err := addLink(chain[l], chain[l+1])
			if err != nil {
				return nil, err
			}
			edges[l] = e
		}
		com, err := p.AddCommodity(name, chain[0], sink, uni(cfg.LambdaMin, cfg.LambdaMax), cfg.Utility(j))
		if err != nil {
			return nil, err
		}
		// Potentials per chain node; β_ik = g_k/g_i gives Property 1 by
		// construction (trivially path-independent on a chain).
		g := make([]float64, len(chain))
		for i := range g {
			g[i] = uni(cfg.GMin, cfg.GMax)
		}
		for l, e := range edges {
			params := stream.EdgeParams{
				Beta: g[l+1] / g[l],
				Cost: uni(cfg.CostMin, cfg.CostMax),
			}
			if err := p.SetEdge(com, e, params); err != nil {
				return nil, err
			}
		}
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("randnet: generated sparse instance invalid: %w", err)
	}
	return p, nil
}
