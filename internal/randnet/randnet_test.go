package randnet

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/transform"
	"repro/internal/utility"
)

func TestGenerateDefaultIsValid(t *testing.T) {
	p, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// §6 headline shape: 40 processing nodes + 3 sinks, 3 commodities.
	procs, sinks := 0, 0
	for _, k := range p.Net.Kinds {
		switch k {
		case stream.Processing:
			procs++
		case stream.Sink:
			sinks++
		}
	}
	if procs != 40 {
		t.Fatalf("processing nodes = %d, want 40", procs)
	}
	if sinks != 3 || len(p.Commodities) != 3 {
		t.Fatalf("sinks = %d, commodities = %d, want 3,3", sinks, len(p.Commodities))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("same seed produced different instances")
	}
	c, err := Generate(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestGenerateParameterRanges(t *testing.T) {
	p, err := Generate(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for n, kind := range p.Net.Kinds {
		if kind != stream.Processing {
			continue
		}
		if c := p.Net.Capacity[n]; c < 1 || c > 100 {
			t.Fatalf("node %d capacity %g outside U[1,100]", n, c)
		}
	}
	for e := 0; e < p.Net.G.NumEdges(); e++ {
		if b := p.Net.Bandwidth[e]; b < 1 || b > 100 {
			t.Fatalf("edge %d bandwidth %g outside U[1,100]", e, b)
		}
	}
	for _, c := range p.Commodities {
		if c.MaxRate < 50 || c.MaxRate > 100 {
			t.Fatalf("lambda %g outside default U[50,100]", c.MaxRate)
		}
		for e, params := range c.Edges {
			if params.Cost < 1 || params.Cost > 5 {
				t.Fatalf("edge %d cost %g outside U[1,5]", e, params.Cost)
			}
			// β = g_k/g_i with g ∈ [1,10]: ratio within [0.1, 10].
			if params.Beta < 0.1-1e-12 || params.Beta > 10+1e-12 {
				t.Fatalf("edge %d beta %g outside [0.1,10]", e, params.Beta)
			}
		}
	}
}

func TestGeneratePotentialsWithinRange(t *testing.T) {
	// Potentials rebuilt from β must be consistent (Property 1) — this
	// is implicitly validated by Generate, but verify the reconstruction
	// succeeds and spans sensible ratios.
	p, err := Generate(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Commodities {
		pot, err := p.Potentials(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range pot {
			if g <= 0 || math.IsNaN(g) {
				t.Fatalf("potential %g", g)
			}
		}
	}
}

func TestGenerateDepthTracksLayers(t *testing.T) {
	shallow, err := Generate(Config{Seed: 5, Layers: 3, Nodes: 24})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Generate(Config{Seed: 5, Layers: 12, Nodes: 24, Commodities: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := func(graph.EdgeID) bool { return true }
	ls, err := shallow.Net.G.LongestPathLen(all)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := deep.Net.G.LongestPathLen(all)
	if err != nil {
		t.Fatal(err)
	}
	if ld <= ls {
		t.Fatalf("deep graph depth %d not greater than shallow %d", ld, ls)
	}
}

func TestGenerateTransformsCleanly(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := transform.Build(p, transform.Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateCustomUtility(t *testing.T) {
	p, err := Generate(Config{Seed: 2, Utility: func(j int) utility.Function {
		return utility.Log{Weight: float64(j + 1), Scale: 1}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range p.Commodities {
		lg, ok := c.Utility.(utility.Log)
		if !ok || lg.Weight != float64(j+1) {
			t.Fatalf("commodity %d utility = %#v", j, c.Utility)
		}
	}
}

func TestGenerateRejectsBadConfigs(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, Layers: 1, Nodes: 10}); err == nil {
		t.Fatal("single layer accepted")
	}
	if _, err := Generate(Config{Seed: 1, Nodes: 4, Layers: 8}); err == nil {
		t.Fatal("more layers than nodes accepted")
	}
	if _, err := Generate(Config{Seed: 1, Nodes: 10, Layers: 5, Commodities: 5}); err == nil {
		t.Fatal("too many commodities accepted")
	}
}

func TestGenerateDistinctSources(t *testing.T) {
	p, err := Generate(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.NodeID]bool)
	for _, c := range p.Commodities {
		if seen[c.Source] {
			t.Fatal("two commodities share a source")
		}
		seen[c.Source] = true
	}
}
