// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §5 for the index). Without flags it
// runs everything at paper scale; -run selects one experiment, -quick
// shrinks budgets for a fast smoke pass.
//
//	go run ./cmd/experiments              # everything, paper scale
//	go run ./cmd/experiments -run F4      # just Figure 4
//	go run ./cmd/experiments -quick       # reduced budgets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		run         = flag.String("run", "", "experiment to run (default all): "+strings.Join(experiments.Names(), ","))
		seed        = flag.Int64("seed", 2, "instance seed")
		quick       = flag.Bool("quick", false, "reduced iteration budgets")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while experiments run (e.g. :9090)")
		eventsOut   = flag.String("events-out", "", "write per-iteration JSONL events to this file")
	)
	flag.Parse()
	if err := realMain(*run, *seed, *quick, *metricsAddr, *eventsOut); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, seed int64, quick bool, metricsAddr, eventsOut string) error {
	scale := experiments.DefaultScale()
	if quick {
		scale = experiments.Scale{GradIters: 3000, BPIters: 30000}
	}
	if metricsAddr != "" || eventsOut != "" {
		var sink obs.Sink
		if eventsOut != "" {
			fs, err := obs.NewFileSink(eventsOut)
			if err != nil {
				return err
			}
			sink = fs
		}
		rec := obs.NewRecorder(obs.NewRegistry(), sink)
		defer rec.Close()
		if metricsAddr != "" {
			srv, err := obs.Serve(metricsAddr, rec.Registry())
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "experiments: serving /metrics, /debug/vars, /debug/pprof on %s\n", srv.Addr())
		}
		scale.Rec = rec
	}
	if run != "" && !experiments.ValidName(run) {
		return fmt.Errorf("unknown experiment %q (have %s)", run, strings.Join(experiments.Names(), ","))
	}
	want := func(name string) bool { return run == "" || run == name }

	if want("F4") {
		if err := printF4(seed, scale); err != nil {
			return err
		}
	}
	if want("T1") {
		if err := printT1(scale); err != nil {
			return err
		}
	}
	if want("T2") {
		if err := printT2(seed, scale); err != nil {
			return err
		}
	}
	if want("T3") {
		if err := printT3(seed, scale); err != nil {
			return err
		}
	}
	if want("T4") {
		if err := printT4(seed, scale); err != nil {
			return err
		}
	}
	if want("E5") {
		if err := printE5(seed, scale); err != nil {
			return err
		}
	}
	if want("E6") {
		if err := printE6(seed, scale); err != nil {
			return err
		}
	}
	if want("E7") {
		if err := printE7(seed, scale); err != nil {
			return err
		}
	}
	if want("E8") {
		if err := printE8(seed, scale); err != nil {
			return err
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func hitStr(hit int) string {
	if hit < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", hit)
}

func printF4(seed int64, scale experiments.Scale) error {
	header("F4: Figure 4 — convergence, gradient vs back-pressure vs LP optimum")
	res, err := experiments.RunF4(seed, scale)
	if err != nil {
		return err
	}
	fmt.Printf("seed %d, 40 nodes, 3 commodities, eps=0.2, eta=0.04\n", seed)
	fmt.Printf("optimal total utility (LP): %.3f\n", res.Optimal)
	fmt.Printf("iterations to 95%% of optimal: gradient %s, back-pressure %s\n",
		hitStr(res.GradHit95), hitStr(res.BPHit95))
	w := tw()
	fmt.Fprintln(w, "iter\tgradient\tback-pressure\toptimal")
	bp := make(map[int]float64, len(res.BackPres))
	for _, p := range res.BackPres {
		bp[p.Iteration] = p.Utility
	}
	for _, p := range res.Gradient {
		line := fmt.Sprintf("%d\t%.3f\t", p.Iteration, p.Utility)
		if v, ok := bp[p.Iteration]; ok {
			line += fmt.Sprintf("%.3f", v)
		} else {
			line += "-"
		}
		fmt.Fprintf(w, "%s\t%.3f\n", line, res.Optimal)
	}
	// Back-pressure extends far beyond the gradient budget.
	lastGrad := res.Gradient[len(res.Gradient)-1].Iteration
	for _, p := range res.BackPres {
		if p.Iteration > lastGrad {
			fmt.Fprintf(w, "%d\t-\t%.3f\t%.3f\n", p.Iteration, p.Utility, res.Optimal)
		}
	}
	return w.Flush()
}

func printT1(scale experiments.Scale) error {
	header("T1: iterations to 95% of optimal across seeds")
	rows, err := experiments.RunT1([]int64{1, 2, 3, 4, 5}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "seed\toptimal\tgrad@90%\tbp@90%\tratio\tgrad@95%\tbp@95%")
	for _, r := range rows {
		ratio := "-"
		if r.Ratio == r.Ratio { // not NaN
			ratio = fmt.Sprintf("%.0fx", r.Ratio)
		}
		fmt.Fprintf(w, "%d\t%.2f\t%s\t%s\t%s\t%s\t%s\n",
			r.Seed, r.Optimal, hitStr(r.GradHit90), hitStr(r.BPHit90), ratio,
			hitStr(r.GradHit95), hitStr(r.BPHit95))
	}
	return w.Flush()
}

func printT2(seed int64, scale experiments.Scale) error {
	header("T2: step-scale η sweep (speed vs stability, §5)")
	rows, err := experiments.RunT2(seed,
		[]float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "eta\thit95\tfinal/opt\tfeasible\tdiverged")
	for _, r := range rows {
		fmt.Fprintf(w, "%.3f\t%s\t%.3f\t%v\t%v\n",
			r.Eta, hitStr(r.Hit95), r.FinalPct, r.Feasible, r.Diverged)
	}
	return w.Flush()
}

func printT3(seed int64, scale experiments.Scale) error {
	header("T3: per-iteration protocol cost vs graph depth (§6 discussion)")
	rows, err := experiments.RunT3(seed, []int{3, 6, 9, 12, 18, 24}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "layers\tdepth L\tgrad rounds/iter\tbp rounds/iter\tgrad iters@90%\tbp iters@90%\tgrad TOTAL rounds\tbp TOTAL rounds")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\n",
			r.Layers, r.Depth, r.GradRoundsIter, r.BPRoundsIter,
			hitStr(r.GradIters90), hitStr(r.BPIters90),
			hitStr(r.GradTotalRounds), hitStr(r.BPTotalRounds))
	}
	return w.Flush()
}

func printT4(seed int64, scale experiments.Scale) error {
	header("T4: penalty coefficient ε sweep (optimality vs headroom, §3)")
	rows, err := experiments.RunT4(seed, []float64{0.5, 0.2, 0.1, 0.05, 0.02}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "eps\tutility/opt\tmin headroom")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%.3f\t%.3f\n", r.Epsilon, r.FinalPct, r.MinSlack)
	}
	return w.Flush()
}

func printE5(seed int64, scale experiments.Scale) error {
	header("E5: concave (log) utilities — max-utility vs max-throughput")
	res, err := experiments.RunE5(seed, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "operating point\tutility\tadmitted rates")
	fmt.Fprintf(w, "max-utility (PWL-LP)\t%.3f\t%s\n", res.RefUtility, rates(res.RefAdmitted))
	fmt.Fprintf(w, "gradient algorithm\t%.3f\t%s\n", res.GradUtility, rates(res.GradAdmitted))
	fmt.Fprintf(w, "max-throughput point\t%.3f\t%s\n", res.ThroughputUtility, rates(res.ThroughputAdmitted))
	return w.Flush()
}

func rates(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func printE6(seed int64, scale experiments.Scale) error {
	header("E6: shrinkage-intensity ablation (β' = β^γ)")
	rows, err := experiments.RunE6(seed, []float64{0, 0.5, 1, 1.5, 2}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "gamma\toptimal\tCPU-bound\tlink-bound\tgradient\tgrad/opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%.2f\t%d\t%d\t%.2f\t%.3f\n",
			r.Gamma, r.Optimal, r.CPUBound, r.NetBound, r.GradUtility, r.GradOptRatio)
	}
	return w.Flush()
}

func printE7(seed int64, scale experiments.Scale) error {
	header("E7: dynamic offered-rate tracking — warm vs cold start")
	iterBudget := 500
	rows, err := experiments.RunE7(seed, 8, iterBudget, scale)
	if err != nil {
		return err
	}
	fmt.Printf("per-epoch iteration budget: %d\n", iterBudget)
	w := tw()
	fmt.Fprintln(w, "epoch\tlambda(S1)\toptimal\twarm\tcold\twarm/opt\tcold/opt")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.0f\t%.2f\t%.2f\t%.2f\t%.3f\t%.3f\n",
			r.Epoch, r.Lambda, r.Optimal, r.WarmUtil, r.ColdUtil,
			r.WarmUtil/r.Optimal, r.ColdUtil/r.Optimal)
	}
	return w.Flush()
}

func printE8(seed int64, scale experiments.Scale) error {
	header("E8: failure recovery — warm restart vs cold start across ε (§3 headroom)")
	rows, err := experiments.RunE8(seed, []float64{0.5, 0.2, 0.05}, scale)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "eps\tfailed node\tpre-failure U\tpost optimum\tfeasible-again\trecover@85%\tcold@85%")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%s\t%.2f\t%.2f\t%s\t%s\t%s\n",
			r.Epsilon, r.FailedNode, r.PreUtility, r.PostOptimal,
			hitStr(r.FeasibleIters), hitStr(r.RecoverIters), hitStr(r.ColdIters))
	}
	return w.Flush()
}
