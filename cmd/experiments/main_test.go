package main

import "testing"

func TestRealMainRejectsUnknownExperiment(t *testing.T) {
	if err := realMain("F99", 1, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainRunsT3Quick(t *testing.T) {
	// T3 is the cheapest experiment: a single iteration per depth.
	if err := realMain("T3", 3, true); err != nil {
		t.Fatal(err)
	}
}
