package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestRealMainRejectsUnknownExperiment(t *testing.T) {
	if err := realMain("F99", 1, true, "", ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainRunsT3Quick(t *testing.T) {
	// T3 is the cheapest experiment: a single iteration per depth.
	if err := realMain("T3", 3, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainEventsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := realMain("T3", 3, true, "", path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid event line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no events written")
	}
}
