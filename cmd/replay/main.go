// Command replay verifies a flight-recorder journal: it loads each
// run's restart checkpoint, re-drives the recorded mutations through
// an in-proc admission server at max (or recorded wall-clock) speed,
// and checks the replayed decision trajectory — utility per
// generation, admitted-set hashes, flip sequences — against the
// recorded digests.
//
//	go run ./cmd/replay -journal journaldir
//	go run ./cmd/replay -journal journaldir -speed 1 -out report.json
//
// Exit status: 0 clean, 1 trajectory mismatches (the report pinpoints
// each diverging generation), 2 unreadable or structurally invalid
// journal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/replay"
)

type cliConfig struct {
	journal string
	workers int
	speed   float64
	timeout time.Duration
	out     string
	quiet   bool

	stdout io.Writer
	stderr io.Writer
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.journal, "journal", "", "journal directory to verify (required)")
	flag.IntVar(&cfg.workers, "workers", 0, "override the recorded solver worker bound (0 = as recorded)")
	flag.Float64Var(&cfg.speed, "speed", 0, "replay pacing against recorded wall-clock (1 = real time, 2 = double speed, 0 = max speed)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-solve replay timeout")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report to this file as well as stdout")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress progress lines")
	flag.Parse()
	cfg.stdout, cfg.stderr = os.Stdout, os.Stderr
	code, err := realMain(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func realMain(cfg cliConfig) (int, error) {
	if cfg.journal == "" {
		return 0, fmt.Errorf("-journal is required")
	}
	opts := replay.Options{
		Workers: cfg.workers,
		Speed:   cfg.speed,
		Timeout: cfg.timeout,
	}
	if !cfg.quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(cfg.stderr, format+"\n", args...)
		}
	}
	rep, err := replay.Verify(cfg.journal, opts)
	if err != nil {
		return 0, err
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(cfg.stdout, string(blob))
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, append(blob, '\n'), 0o644); err != nil {
			return 0, err
		}
	}
	if !rep.Ok() {
		fmt.Fprintf(cfg.stderr, "replay: %d trajectory mismatch(es):\n", len(rep.Mismatches))
		for _, m := range rep.Mismatches {
			fmt.Fprintf(cfg.stderr, "  %s\n", m)
		}
		return 1, nil
	}
	fmt.Fprintf(cfg.stderr, "replay: verified %d run(s), %d digest(s), %d mutation(s), %d checkpoint(s): no mismatches\n",
		rep.Runs, rep.Digests, rep.Mutations, rep.CheckpointsVerified)
	return 0, nil
}
