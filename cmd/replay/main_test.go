package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/utility"
)

const waitBudget = 20 * time.Second

func toyProblem(t *testing.T) *stream.Problem {
	t.Helper()
	net := stream.NewNetwork()
	a, err := net.AddServer("a", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddServer("b", 10)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := net.AddSink("t1")
	if err != nil {
		t.Fatal(err)
	}
	ab, err := net.AddLink(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	bt1, err := net.AddLink(b, t1, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := stream.NewProblem(net)
	c1, err := p.AddCommodity("c1", a, t1, 8, utility.Linear{Slope: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, ab, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetEdge(c1, bt1, stream.EdgeParams{Beta: 1, Cost: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// recordJournal runs a short journaled server session in dir.
func recordJournal(t *testing.T, dir string) {
	t.Helper()
	jw, err := journal.Create(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(toyProblem(t), server.Options{
		MaxIters:      1500,
		StationaryTol: 1e-3,
		Debounce:      2 * time.Millisecond,
		Journal:       jw,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(1, waitBudget); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SetMaxRate("c1", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitForGeneration(2, waitBudget); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainVerifiesCleanJournal(t *testing.T) {
	dir := t.TempDir()
	recordJournal(t, dir)
	out := filepath.Join(t.TempDir(), "report.json")

	var stdout, stderr bytes.Buffer
	code, err := realMain(cliConfig{
		journal: dir,
		timeout: waitBudget,
		out:     out,
		quiet:   true,
		stdout:  &stdout,
		stderr:  &stderr,
	})
	if err != nil {
		t.Fatalf("realMain: %v (stderr: %s)", err, stderr.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var rep struct {
		Runs       int   `json:"runs"`
		Digests    int   `json:"digests"`
		Mismatches []any `json:"mismatches"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, stdout.String())
	}
	if rep.Runs != 1 || rep.Digests < 2 || len(rep.Mismatches) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	// -out wrote the same report.
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"runs": 1`)) {
		t.Fatalf("-out report missing runs: %s", blob)
	}
}

func TestRealMainExitsNonzeroOnMismatch(t *testing.T) {
	dir := t.TempDir()
	recordJournal(t, dir)

	// Corrupt the last digest's utility and rewrite the journal.
	log, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := log.Records
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == journal.KindDigest {
			recs[i].Digest.Utility += 1
			break
		}
	}
	bad := t.TempDir()
	w, err := journal.Create(bad, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.CopyTo(w, recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code, err := realMain(cliConfig{
		journal: bad,
		timeout: waitBudget,
		quiet:   true,
		stdout:  &stdout,
		stderr:  &stderr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("utility")) {
		t.Fatalf("mismatch report does not name the field: %s", stderr.String())
	}
}

func TestRealMainRequiresJournalFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	_, err := realMain(cliConfig{stdout: &stdout, stderr: &stderr})
	if err == nil {
		t.Fatal("missing -journal accepted")
	}
}

func TestRealMainBadJournal(t *testing.T) {
	var stdout, stderr bytes.Buffer
	_, err := realMain(cliConfig{
		journal: filepath.Join(t.TempDir(), "empty"),
		quiet:   true,
		stdout:  &stdout,
		stderr:  &stderr,
	})
	if err == nil {
		t.Fatal("empty journal dir verified without error")
	}
}
